package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"remac/internal/engine"
	"remac/internal/httpapi"
	"remac/internal/serve"
)

// testHandler builds the same mux main() serves, over an in-process
// server the assertions can read directly.
func testHandler(t *testing.T) (*serve.Server, *http.ServeMux) {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2})
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	mux := httpapi.NewServeMux(srv, httpapi.NewQueryBuilder(engine.RecoveryPolicy{}), httpapi.ServeHandlerConfig{})
	return srv, mux
}

// TestInvalidateRejectsNonPOST: GET/PUT/DELETE on /invalidate are 405.
func TestInvalidateRejectsNonPOST(t *testing.T) {
	_, mux := testHandler(t)
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(method, "/invalidate?dataset=cri1", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /invalidate = %d, want 405", method, rec.Code)
		}
	}
}

// TestInvalidateRejectsMissingDataset: POST without a dataset — absent,
// empty, or whitespace — is 400 with a structured JSON body carrying the
// request id; nothing is invalidated.
func TestInvalidateRejectsMissingDataset(t *testing.T) {
	srv, mux := testHandler(t)
	for _, target := range []string{"/invalidate", "/invalidate?dataset=", "/invalidate?dataset=%20%20"} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, target, nil)
		req.Header.Set(httpapi.RequestIDHeader, "rid-inv")
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", target, rec.Code)
			continue
		}
		var body httpapi.ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("POST %s: error body is not JSON: %v", target, err)
		}
		if body.RequestID != "rid-inv" || body.Error == "" {
			t.Errorf("POST %s: error body %+v lacks request id or message", target, body)
		}
	}
	if v := srv.DatasetVersion(""); v != 0 {
		t.Fatalf("rejected invalidation still bumped a version: %d", v)
	}
}

// TestInvalidateBumpsVersion: a valid POST bumps the dataset version
// (whitespace around the name is trimmed) and reports it.
func TestInvalidateBumpsVersion(t *testing.T) {
	srv, mux := testHandler(t)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invalidate?dataset=%20cri1%20", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /invalidate = %d, want 200: %s", rec.Code, rec.Body)
	}
	var body struct {
		Dataset string `json:"dataset"`
		Version int64  `json:"version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Dataset != "cri1" || body.Version != 1 {
		t.Fatalf("invalidate reply = %+v, want cri1 at version 1", body)
	}
	if v := srv.DatasetVersion("cri1"); v != 1 {
		t.Fatalf("server version = %d, want 1", v)
	}
}

// TestRequestIDPropagation: a client-sent X-Request-ID is echoed on the
// response header and inside error bodies; absent one, the server
// generates an id and still echoes it.
func TestRequestIDPropagation(t *testing.T) {
	_, mux := testHandler(t)

	// Bad query (unknown dataset): the error body carries the client's id.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"algorithm":"DFP","dataset":"no-such-dataset"}`))
	req.Header.Set(httpapi.RequestIDHeader, "client-id-7")
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad-dataset query = %d, want 400", rec.Code)
	}
	if got := rec.Header().Get(httpapi.RequestIDHeader); got != "client-id-7" {
		t.Fatalf("response header id = %q, want the client's", got)
	}
	var body httpapi.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != "client-id-7" {
		t.Fatalf("error body request_id = %q, want client-id-7", body.RequestID)
	}

	// No client id: one is generated, echoed on the header and in the
	// success body.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"algorithm":"DFP","dataset":"cri1","iterations":2}`))
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d, want 200: %s", rec.Code, rec.Body)
	}
	gen := rec.Header().Get(httpapi.RequestIDHeader)
	if gen == "" {
		t.Fatal("no generated request id on the response header")
	}
	var qr httpapi.QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RequestID != gen {
		t.Fatalf("body request_id %q != header id %q", qr.RequestID, gen)
	}

	// /stats echoes too.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodGet, "/stats", nil)
	req.Header.Set(httpapi.RequestIDHeader, "stats-id")
	mux.ServeHTTP(rec, req)
	if got := rec.Header().Get(httpapi.RequestIDHeader); got != "stats-id" {
		t.Fatalf("/stats header id = %q, want stats-id", got)
	}
}
