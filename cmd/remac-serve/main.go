// remac-serve exposes the concurrent query-serving subsystem
// (internal/serve) over HTTP: a thin stdlib JSON front-end for submitting
// DML workloads against the generated datasets and reading aggregate
// server metrics.
//
// Usage:
//
//	remac-serve                          # listen on :8356
//	remac-serve -addr :9000 -workers 8   # custom bind and pool size
//
// Endpoints:
//
//	POST /query   {"algorithm":"DFP","dataset":"cri2","iterations":5}
//	              or {"script":"...","dataset":"cri1"} — custom scripts see
//	              the dataset's standard symbols (A, b, H0, x0).
//	              Optional: "strategy" ("adaptive", "none", "explicit",
//	              "conservative", "aggressive", "automatic"),
//	              "timeout_ms", "no_plan_cache", "no_intermediate_cache".
//	GET  /stats   aggregate metrics snapshot (QPS, latency percentiles,
//	              cache hit rates, queue depth, resilience counters) as JSON.
//	GET  /healthz liveness probe: 200 while the process and pool are up.
//	GET  /readyz  readiness probe: 200 when admitting, 503 (+Retry-After)
//	              while draining, breaker-open, or queue-saturated.
//	POST /invalidate?dataset=cri2  bump a dataset version, dropping its
//	              cached intermediates.
//
// Query failures map to distinct statuses by resilience class: 400 for
// compile errors, 422 for divergent loops (max iterations), 503 with a
// Retry-After header for overload/shed/draining, 504 for canceled or
// timed-out queries, and 500 only for execution failures and recovered
// panics. Error bodies are structured JSON ({"error", "class", "query_id",
// "stage", "retry_after_sec"}).
//
// SIGINT/SIGTERM stop admission, drain in-flight queries, then exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"remac/internal/algorithms"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/opt"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// queryRequest is the POST /query body.
type queryRequest struct {
	Algorithm  string `json:"algorithm,omitempty"`
	Script     string `json:"script,omitempty"`
	Dataset    string `json:"dataset"`
	Iterations int    `json:"iterations,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	TimeoutMS  int    `json:"timeout_ms,omitempty"`
	// MaxIterations caps loop iterations; a program still running at the
	// cap fails with 422 (max-iterations class).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Recovery selects the recovery policy for this query: "lineage",
	// "checkpoint", "coded" or "coded:k,n". Empty uses the server's
	// -recovery default.
	Recovery string `json:"recovery,omitempty"`

	NoPlanCache         bool `json:"no_plan_cache,omitempty"`
	NoIntermediateCache bool `json:"no_intermediate_cache,omitempty"`
}

// valueSummary reports a result variable without shipping its cells.
type valueSummary struct {
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	Frobenius float64 `json:"frobenius_norm"`
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Values           map[string]valueSummary `json:"values"`
	Iterations       int                     `json:"iterations"`
	SimulatedSec     float64                 `json:"simulated_sec"`
	ComputeSec       float64                 `json:"compute_sec"`
	TransmitSec      float64                 `json:"transmit_sec"`
	CompileSec       float64                 `json:"compile_sec"`
	WallSec          float64                 `json:"wall_sec"`
	PlanCacheHit     bool                    `json:"plan_cache_hit"`
	IntermediateHits int                     `json:"intermediate_hits"`
	IntermediateMiss int                     `json:"intermediate_misses"`
	SharedHits       int                     `json:"shared_hits,omitempty"`
	SharedProduced   int                     `json:"shared_produced,omitempty"`
	CodedRecoveries  int                     `json:"coded_recoveries,omitempty"`
	DecodeSec        float64                 `json:"decode_sec,omitempty"`
	EncodeFLOP       float64                 `json:"encode_flop,omitempty"`
	SelectedKeys     []string                `json:"selected_keys,omitempty"`
}

func parseStrategy(s string) (opt.Strategy, error) {
	switch s {
	case "", "adaptive":
		return opt.Adaptive, nil
	case "none", "no-elimination":
		return opt.NoElimination, nil
	case "explicit":
		return opt.Explicit, nil
	case "conservative":
		return opt.Conservative, nil
	case "aggressive":
		return opt.Aggressive, nil
	case "automatic":
		return opt.Automatic, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// handler adapts the in-process serve API to HTTP. Dataset inputs are
// generated once and shared read-only across queries.
type handler struct {
	srv *serve.Server
	// recovery is the server-wide default recovery policy (-recovery),
	// applied to queries that do not carry their own.
	recovery engine.RecoveryPolicy

	mu   sync.Mutex
	data map[string]*data.Dataset
}

func (h *handler) dataset(name string) (*data.Dataset, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if d, ok := h.data[name]; ok {
		return d, nil
	}
	d, err := data.Load(name)
	if err != nil {
		return nil, err
	}
	h.data[name] = d
	return d, nil
}

// buildQuery resolves a request into a serve.Query with the dataset's
// inputs bound.
func (h *handler) buildQuery(req queryRequest) (serve.Query, error) {
	var q serve.Query
	if (req.Algorithm == "") == (req.Script == "") {
		return q, errors.New("exactly one of algorithm or script is required")
	}
	if req.Dataset == "" {
		return q, errors.New("dataset is required")
	}
	ds, err := h.dataset(req.Dataset)
	if err != nil {
		return q, err
	}
	iters := req.Iterations
	alg := algorithms.Name(req.Algorithm)
	script := req.Script
	if req.Algorithm != "" {
		if iters == 0 {
			iters = algorithms.DefaultIterations(alg)
		}
		script, err = algorithms.Script(alg, iters)
		if err != nil {
			return q, err
		}
	} else if iters == 0 {
		iters = 15
	}
	ins := map[string]engine.Input{}
	if alg == algorithms.GNMF {
		w, wh := ds.GNMFFactors(10)
		ins["V"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["W0"] = engine.Input{Data: w, VRows: ds.VRows, VCols: 10}
		ins["H0"] = engine.Input{Data: wh, VRows: 10, VCols: ds.VCols}
	} else {
		ins["A"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["b"] = engine.Input{Data: ds.Label(), VRows: ds.VRows, VCols: 1}
		ins["H0"] = engine.Input{Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols}
		ins["x0"] = engine.Input{Data: ds.InitialX(), VRows: ds.VCols, VCols: 1}
	}
	q = serve.NewQuery(script, ins)
	q.Dataset = req.Dataset
	q.Iterations = iters
	q.Strategy, err = parseStrategy(req.Strategy)
	if err != nil {
		return q, err
	}
	q.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	q.MaxIterations = req.MaxIterations
	q.Recovery = h.recovery
	if req.Recovery != "" {
		q.Recovery, err = engine.ParseRecovery(req.Recovery)
		if err != nil {
			return q, err
		}
	}
	q.NoPlanCache = req.NoPlanCache
	q.NoIntermediateCache = req.NoIntermediateCache
	return q, nil
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := h.buildQuery(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := h.srv.Do(r.Context(), q)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := queryResponse{
		Values:           map[string]valueSummary{},
		Iterations:       res.Iterations,
		SimulatedSec:     res.SimulatedSec,
		ComputeSec:       res.ComputeSec,
		TransmitSec:      res.TransmitSec,
		CompileSec:       res.CompileSec,
		WallSec:          res.WallSec,
		PlanCacheHit:     res.PlanCacheHit,
		IntermediateHits: res.IntermediateHits,
		IntermediateMiss: res.IntermediateMisses,
		SharedHits:       res.SharedHits,
		SharedProduced:   res.SharedProduced,
		CodedRecoveries:  res.CodedRecoveries,
		DecodeSec:        res.DecodeSec,
		EncodeFLOP:       res.EncodeFLOP,
		SelectedKeys:     res.SelectedKeys,
	}
	for name, m := range res.Values {
		resp.Values[name] = valueSummary{Rows: m.Rows(), Cols: m.Cols(), Frobenius: m.FrobeniusNorm()}
	}
	writeJSON(w, resp)
}

// errorResponse is the structured JSON body of a failed query.
type errorResponse struct {
	Error         string  `json:"error"`
	Class         string  `json:"class,omitempty"`
	QueryID       uint64  `json:"query_id,omitempty"`
	Stage         string  `json:"stage,omitempty"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// writeError maps a serving failure to its HTTP status via the resilience
// taxonomy: 400 compile, 422 max-iterations, 503 overload/closed (with
// Retry-After), 504 canceled, 500 execution/internal.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	body := errorResponse{Error: err.Error()}
	retryAfter := time.Duration(0)
	var qe *resilience.QueryError
	switch {
	case errors.As(err, &qe):
		status = qe.Class.HTTPStatus()
		body.Class = qe.Class.String()
		body.QueryID = qe.QueryID
		body.Stage = qe.Stage
		retryAfter = qe.RetryAfter
		if qe.Class == resilience.Overloaded && retryAfter <= 0 {
			retryAfter = time.Second
		}
	case errors.Is(err, serve.ErrClosed):
		// Draining: tell clients to find another instance shortly.
		status = http.StatusServiceUnavailable
		body.Class = "closed"
		retryAfter = time.Second
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable
		body.Class = resilience.Overloaded.String()
		retryAfter = time.Second
	case errors.Is(err, engine.ErrCanceled):
		status = http.StatusGatewayTimeout
		body.Class = resilience.Canceled.String()
	case errors.Is(err, engine.ErrMaxIterations):
		status = http.StatusUnprocessableEntity
		body.Class = resilience.MaxIterations.String()
	}
	if retryAfter > 0 {
		secs := int(retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		body.RetryAfterSec = retryAfter.Seconds()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		log.Printf("encode error response: %v", err)
	}
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, h.srv.Healthz())
}

func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	hz := h.srv.Readyz()
	if !hz.OK {
		if hz.RetryAfterSec > 0 {
			secs := int(hz.RetryAfterSec)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(hz); err != nil {
			log.Printf("encode readyz: %v", err)
		}
		return
	}
	writeJSON(w, hz)
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, h.srv.Metrics())
}

func (h *handler) invalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	ds := r.URL.Query().Get("dataset")
	if ds == "" {
		http.Error(w, "dataset parameter required", http.StatusBadRequest)
		return
	}
	h.srv.InvalidateDataset(ds)
	writeJSON(w, map[string]any{"dataset": ds, "version": h.srv.DatasetVersion(ds)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8356", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth")
	timeout := flag.Duration("timeout", 0, "default per-query deadline (0: none)")
	planEntries := flag.Int("plan-cache", 128, "compiled-plan cache entries (negative: disabled)")
	interBudget := flag.Int64("inter-budget", 4<<30, "intermediate cache budget in modelled bytes (negative: disabled)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "MQO batching window: queries admitted within it share loop-constant producer executions (0: disabled)")
	retries := flag.Int("retries", 0, "max execution attempts per query (0: default 3, negative: no retries)")
	hedge := flag.Bool("hedge", false, "hedge straggler queries past the p95 latency")
	noBreaker := flag.Bool("no-breaker", false, "disable the admission circuit breaker / load shedder")
	recoveryFlag := flag.String("recovery", "", "default recovery policy for queries that do not set one: lineage, checkpoint, coded or coded:k,n")
	flag.Parse()

	recovery, err := engine.ParseRecovery(*recoveryFlag)
	if err != nil {
		log.Fatalf("-recovery: %v", err)
	}

	srv := serve.New(serve.Config{
		Workers:                 *workers,
		QueueDepth:              *queue,
		DefaultTimeout:          *timeout,
		PlanCacheEntries:        *planEntries,
		IntermediateBudgetBytes: *interBudget,
		BatchWindow:             *batchWindow,
		Retry:                   resilience.RetryPolicy{MaxAttempts: *retries},
		Hedge:                   resilience.HedgePolicy{Enabled: *hedge},
		NoBreaker:               *noBreaker,
	})
	h := &handler{srv: srv, recovery: recovery, data: map[string]*data.Dataset{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.query)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/readyz", h.readyz)
	mux.HandleFunc("/invalidate", h.invalidate)
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("remac-serve listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v; draining", sig)
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("server shutdown: %v", err)
	}
	log.Print("drained; exiting")
}
