// remac-serve exposes the concurrent query-serving subsystem
// (internal/serve) over HTTP: a thin stdlib JSON front-end for submitting
// DML workloads against the generated datasets and reading aggregate
// server metrics. The route wiring lives in httpapi.NewServeMux, shared
// with the gateway's remote-shard transport, so a RemoteInstance always
// talks to exactly the handler this binary runs.
//
// Usage:
//
//	remac-serve                          # listen on :8356
//	remac-serve -addr :9000 -workers 8   # custom bind and pool size
//
// Endpoints:
//
//	POST /query   {"algorithm":"DFP","dataset":"cri2","iterations":5}
//	              or {"script":"...","dataset":"cri1"} — custom scripts see
//	              the dataset's standard symbols (A, b, H0, x0).
//	              Optional: "strategy" ("adaptive", "none", "explicit",
//	              "conservative", "aggressive", "automatic"),
//	              "timeout_ms", "no_plan_cache", "no_intermediate_cache".
//	              Bodies are capped (-max-body, default 1 MiB → 413); an
//	              X-Idempotency-Key header makes retried submissions
//	              replay the committed result instead of re-executing.
//	GET  /stats   aggregate metrics snapshot (QPS, latency percentiles,
//	              cache hit rates, queue depth, resilience counters) as JSON.
//	GET  /healthz liveness probe: 200 while the process and pool are up.
//	GET  /readyz  readiness probe: 200 when admitting, 503 (+Retry-After)
//	              while draining, breaker-open, or queue-saturated.
//	POST /invalidate?dataset=cri2  bump a dataset version, dropping its
//	              cached intermediates. Non-POST methods get 405; a missing
//	              or blank dataset parameter gets 400.
//	GET  /version?dataset=cri2  read the dataset's current version — the
//	              acknowledgment a gateway's invalidation catch-up polls.
//
// Every response echoes an X-Request-ID header — the client's, or a
// generated one — and failed queries carry it in their JSON bodies too, so
// a request can be correlated across a gateway tier, this server and the
// audit plane.
//
// Query failures map to distinct statuses by resilience class: 400 for
// compile errors, 413 for oversized bodies, 422 for divergent loops (max
// iterations), 503 with a Retry-After header for overload/shed/draining,
// 504 for canceled or timed-out queries, and 500 only for execution
// failures and recovered panics. Error bodies are structured JSON
// ({"error", "class", "query_id", "stage", "retry_after_sec",
// "request_id"}).
//
// SIGINT/SIGTERM stop admission, drain in-flight queries, then exit.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"remac/internal/engine"
	"remac/internal/httpapi"
	"remac/internal/resilience"
	"remac/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8356", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth")
	timeout := flag.Duration("timeout", 0, "default per-query deadline (0: none)")
	planEntries := flag.Int("plan-cache", 128, "compiled-plan cache entries (negative: disabled)")
	interBudget := flag.Int64("inter-budget", 4<<30, "intermediate cache budget in modelled bytes (negative: disabled)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "MQO batching window: queries admitted within it share loop-constant producer executions (0: disabled)")
	retries := flag.Int("retries", 0, "max execution attempts per query (0: default 3, negative: no retries)")
	hedge := flag.Bool("hedge", false, "hedge straggler queries past the p95 latency")
	noBreaker := flag.Bool("no-breaker", false, "disable the admission circuit breaker / load shedder")
	recoveryFlag := flag.String("recovery", "", "default recovery policy for queries that do not set one: lineage, checkpoint, coded or coded:k,n")
	shard := flag.String("shard", "", "shard label for this instance in metrics snapshots (set by a gateway tier)")
	idemEntries := flag.Int("idem-window", 0, "idempotent-replay window entries (0: default 1024, negative: disabled)")
	maxBody := flag.Int64("max-body", 0, "max POST /query body bytes (0: 1 MiB default, negative: unbounded)")
	flag.Parse()

	recovery, err := engine.ParseRecovery(*recoveryFlag)
	if err != nil {
		log.Fatalf("-recovery: %v", err)
	}

	srv := serve.New(serve.Config{
		Workers:                 *workers,
		QueueDepth:              *queue,
		DefaultTimeout:          *timeout,
		PlanCacheEntries:        *planEntries,
		IntermediateBudgetBytes: *interBudget,
		BatchWindow:             *batchWindow,
		Retry:                   resilience.RetryPolicy{MaxAttempts: *retries},
		Hedge:                   resilience.HedgePolicy{Enabled: *hedge},
		NoBreaker:               *noBreaker,
		ShardID:                 *shard,
		IdempotencyWindow:       *idemEntries,
	})
	mux := httpapi.NewServeMux(srv, httpapi.NewQueryBuilder(recovery), httpapi.ServeHandlerConfig{
		MaxBodyBytes: *maxBody,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("remac-serve listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v; draining", sig)
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("server shutdown: %v", err)
	}
	log.Print("drained; exiting")
}
