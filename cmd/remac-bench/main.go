// remac-bench regenerates the paper's evaluation tables and figures on the
// simulated cluster.
//
// Usage:
//
//	remac-bench                     # run every experiment
//	remac-bench -experiment fig9    # run one (table2, fig3a, fig3b, fig8a,
//	                                # fig8b, fig9, fig10a, fig10b, fig11,
//	                                # fig12, fig13, options, opstats, faults,
//	                                # serve, chaos, integrity)
//	remac-bench -trace out.json     # also dump every run's operator spans
//	                                # as JSON lines
//	remac-bench -json out.json      # also write the selected tables as a
//	                                # machine-readable JSON array
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"remac/internal/bench"
	"remac/internal/engine"
)

func main() {
	experiment := flag.String("experiment", "", "experiment ID to run (default: all)")
	traceFile := flag.String("trace", "", "write every run's operator spans to this file as JSON lines")
	jsonFile := flag.String("json", "", "write the selected tables to this file as JSON")
	faultSeed := flag.Int64("fault-seed", bench.FaultSeed, "fault schedule seed of the faults experiment")
	recovery := flag.String("recovery", "", "recovery policy of the coded arm of the faults experiment (coded or coded:k,n)")
	chaosSeed := flag.Int64("chaos-seed", bench.ChaosSeed, "storm schedule seed of the chaos experiment")
	integritySeed := flag.Int64("integrity-seed", bench.IntegritySeed, "corruption schedule seed of the integrity experiment")
	flag.Parse()

	bench.FaultSeed = *faultSeed
	bench.ChaosSeed = *chaosSeed
	bench.IntegritySeed = *integritySeed
	if *recovery != "" {
		rp, err := engine.ParseRecovery(*recovery)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bench.CodedRecovery = rp
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		bench.TraceTo(f)
	}

	ids := bench.IDs
	if *experiment != "" {
		if _, ok := bench.Experiments[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", *experiment, bench.IDs)
			os.Exit(2)
		}
		ids = []string{*experiment}
	}
	var tables []*bench.Table
	for _, id := range ids {
		start := time.Now()
		table, err := bench.Experiments[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tables = append(tables, table)
		fmt.Print(table.String())
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, tables); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
