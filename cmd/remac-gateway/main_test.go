package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"remac/internal/engine"
	"remac/internal/gateway"
	"remac/internal/httpapi"
	"remac/internal/serve"
)

func testHandler(t *testing.T, cfg gateway.Config) (*handler, *http.ServeMux) {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Serve.Workers == 0 {
		cfg.Serve = serve.Config{Workers: 2}
	}
	gw := gateway.New(cfg)
	t.Cleanup(func() { gw.Shutdown(context.Background()) })
	h := &handler{gw: gw, builder: httpapi.NewQueryBuilder(engine.RecoveryPolicy{})}
	return h, newMux(h)
}

// TestGatewayQueryEndToEnd: a query through the HTTP front-end reports
// the serving shard and request id; the audit endpoint shows it.
func TestGatewayQueryEndToEnd(t *testing.T) {
	_, mux := testHandler(t, gateway.Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"algorithm":"DFP","dataset":"cri1","iterations":2,"tenant":"alice"}`))
	req.Header.Set(httpapi.RequestIDHeader, "e2e-1")
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	var resp httpapi.QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != "e2e-1" || resp.Shard == "" || resp.Spilled {
		t.Fatalf("response routing metadata = %+v", resp)
	}
	if len(resp.Values) == 0 {
		t.Fatal("no result values")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/audit?n=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("audit = %d", rec.Code)
	}
	var audit struct {
		Events []gateway.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &audit); err != nil {
		t.Fatal(err)
	}
	if len(audit.Events) != 1 {
		t.Fatalf("audit tail has %d events, want 1", len(audit.Events))
	}
	e := audit.Events[0]
	if e.Tenant != "alice" || e.RequestID != "e2e-1" || e.Outcome != "ok" {
		t.Fatalf("audit event = %+v", e)
	}
}

// TestGatewayTenantHeaderWins: X-Tenant overrides the body field.
func TestGatewayTenantHeaderWins(t *testing.T) {
	h, mux := testHandler(t, gateway.Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"algorithm":"DFP","dataset":"cri1","iterations":2,"tenant":"body-tenant"}`))
	req.Header.Set(httpapi.TenantHeader, "header-tenant")
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	st := h.gw.Stats()
	if _, ok := st.Tenants["header-tenant"]; !ok {
		t.Fatalf("tenants = %v, want header-tenant", st.Tenants)
	}
}

// TestGatewayQuotaRejectionHTTP: an over-quota tenant gets 429 with
// Retry-After and a structured body naming the quota class.
func TestGatewayQuotaRejectionHTTP(t *testing.T) {
	_, mux := testHandler(t, gateway.Config{
		Quotas: map[string]gateway.TenantQuota{"noisy": {QPS: 0.001, Burst: 1}},
	})
	body := `{"algorithm":"DFP","dataset":"cri1","iterations":2}`
	do := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
		req.Header.Set(httpapi.TenantHeader, "noisy")
		mux.ServeHTTP(rec, req)
		return rec
	}
	if rec := do(); rec.Code != http.StatusOK {
		t.Fatalf("first query = %d: %s", rec.Code, rec.Body)
	}
	rec := do()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota query = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er httpapi.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Class != "quota" || er.RequestID == "" {
		t.Fatalf("429 body = %+v, want quota class with request id", er)
	}
}

// TestGatewayInvalidateHTTP: the same 405/400 hardening as remac-serve,
// and a valid POST reports the fanned-out shard versions.
func TestGatewayInvalidateHTTP(t *testing.T) {
	_, mux := testHandler(t, gateway.Config{})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/invalidate?dataset=cri1", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /invalidate = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invalidate?dataset=", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty dataset = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invalidate?dataset=cri1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /invalidate = %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		Dataset       string  `json:"dataset"`
		Version       int64   `json:"version"`
		ShardVersions []int64 `json:"shard_versions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Version != 1 || len(body.ShardVersions) != 2 {
		t.Fatalf("invalidate reply = %+v", body)
	}
	for i, v := range body.ShardVersions {
		if v != 1 {
			t.Fatalf("shard %d at version %d after fan-out reply, want 1", i, v)
		}
	}
}

// TestParseQuota covers the -quota flag grammar.
func TestParseQuota(t *testing.T) {
	name, q, err := parseQuota("noisy=0.5:1:2")
	if err != nil || name != "noisy" || q.QPS != 0.5 || q.Burst != 1 || q.MaxConcurrent != 2 {
		t.Fatalf("parseQuota full = %q %+v %v", name, q, err)
	}
	if _, q, err = parseQuota("t=4"); err != nil || q.QPS != 4 || q.Burst != 0 {
		t.Fatalf("parseQuota qps-only = %+v %v", q, err)
	}
	for _, bad := range []string{"", "noquota", "=1", "t=", "t=x", "t=1:y", "t=1:2:3:4", "t=-1"} {
		if _, _, err := parseQuota(bad); err == nil {
			t.Errorf("parseQuota(%q) accepted", bad)
		}
	}
}

// TestHealthQuorum: a fleet below its ready quorum answers 503 with a
// Retry-After hint on both health endpoints, and /stats exposes each
// shard's lifecycle state so an operator can see why.
func TestHealthQuorum(t *testing.T) {
	_, mux := testHandler(t, gateway.Config{Shards: 1, ReadyQuorum: 2})
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s below quorum = %d, want 503: %s", path, rec.Code, rec.Body)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: 503 without Retry-After", path)
		}
		var hz gateway.Health
		if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		if hz.OK || hz.ReadyShards != 1 || hz.Quorum != 2 {
			t.Fatalf("%s health = %+v, want !OK with 1/2 quorum", path, hz)
		}
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var st gateway.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.PerShard) != 1 || st.PerShard[0].Lifecycle.State != "healthy" {
		t.Fatalf("stats lifecycle = %+v, want one healthy shard", st.PerShard)
	}
}

// TestHealthAtQuorum: with quorum satisfied, both endpoints answer 200.
func TestHealthAtQuorum(t *testing.T) {
	_, mux := testHandler(t, gateway.Config{Shards: 2, ReadyQuorum: 2})
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s at quorum = %d, want 200: %s", path, rec.Code, rec.Body)
		}
	}
}
