// remac-gateway fronts a sharded serving tier (internal/gateway): N
// in-process serve.Server shards behind a consistent-hash router with
// per-tenant admission quotas, acknowledged cross-shard invalidation, an
// audit plane, and a shard lifecycle monitor that detects dead shards
// (active probes plus passive failure windows), fails queries over to the
// next ring shard, ejects and respawns the dead instance, and readmits it
// only after its dataset versions catch back up.
//
// Usage:
//
//	remac-gateway -shards 3                          # 3 shards on :8357
//	remac-gateway -shards 4 -spill 2 \
//	    -quota noisy=0.5:1:1 -quota batch=10:20:8    # per-tenant quotas
//	remac-gateway -shards 4 -failover 2 \
//	    -probe-interval 500ms -eject-after 2         # aggressive failover
//	remac-gateway -shards 0 \
//	    -shard http://10.0.0.2:8356 \
//	    -shard http://10.0.0.3:8356                  # remote shard fleet
//
// Remote shards (-shard URLs, repeatable) are remac-serve processes the
// gateway reaches over HTTP: queries, health probes, invalidation fan-out
// and version catch-up all travel the wire, with per-attempt timeouts
// carved from the query deadline, a gateway-wide retry budget
// (-retry-budget / -retry-refill), and idempotency keys so a retried
// query whose response was lost replays the committed result instead of
// executing twice. Mixed fleets (-shards N -shard URL...) put local and
// remote instances behind the same ring and lifecycle monitor.
//
// Endpoints:
//
//	POST /query   same body as remac-serve, plus tenant identity via the
//	              X-Tenant header or a "tenant" JSON field. Replies carry
//	              the serving shard, whether the query spilled off its home
//	              shard or failed over off a dead one, and the request id.
//	GET  /stats   aggregate view: merged cross-shard snapshot, per-shard
//	              (including lifecycle state) and per-tenant breakdowns,
//	              routing/failover/audit counters.
//	POST /invalidate?dataset=cri2  acknowledged fan-out: bumps the version
//	              on every shard before replying, so no live shard serves
//	              the old version once the response arrives.
//	GET  /audit   most recent audit events, including membership
//	              transitions (?n= bounds the tail).
//	GET  /healthz fleet liveness; GET /readyz readiness. Both report 503
//	              once ejections drop the live-shard count below
//	              -ready-quorum.
//
// Tenants over their token-bucket QPS or concurrency quota receive 429
// with Retry-After and a structured JSON body; whole-tier overload is
// 503; a query whose deadline runs out across attempts is 504. Every
// response echoes X-Request-ID (client-sent or generated).
//
// SIGINT/SIGTERM drain every shard, flush the audit queue, then exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"remac/internal/engine"
	"remac/internal/gateway"
	"remac/internal/httpapi"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// handler adapts the gateway API to HTTP.
type handler struct {
	gw      *gateway.Gateway
	builder *httpapi.QueryBuilder
	// maxBody caps POST /query bodies (0: httpapi.MaxQueryBodyBytes;
	// negative: unbounded).
	maxBody int64
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	rid := httpapi.RequestID(r)
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	req, ok := httpapi.DecodeQuery(w, r, rid, h.maxBody)
	if !ok {
		return
	}
	q, err := h.builder.Build(req)
	if err != nil {
		httpapi.WriteError(w, rid, &resilience.QueryError{Class: resilience.Compile, Stage: "request", Err: err})
		return
	}
	// A client-pinned idempotency key survives client-side retries across
	// gateway connections; without one, the gateway stamps the request id
	// so its own spill-over/failover retries stay replay-safe.
	if key := strings.TrimSpace(r.Header.Get(httpapi.IdempotencyKeyHeader)); key != "" {
		q.IdempotencyKey = key
	}
	res, err := h.gw.Do(r.Context(), gateway.Request{
		Tenant:    httpapi.Tenant(r, req),
		RequestID: rid,
		Query:     q,
	})
	if err != nil {
		httpapi.WriteError(w, rid, err)
		return
	}
	resp := httpapi.BuildResponse(res.QueryResult)
	resp.RequestID = res.RequestID
	resp.Shard = res.ShardID
	resp.Spilled = res.Spilled
	resp.Failover = res.Failover
	httpapi.WriteJSON(w, rid, resp)
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	rid := httpapi.RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	httpapi.WriteJSON(w, rid, h.gw.Stats())
}

func (h *handler) invalidate(w http.ResponseWriter, r *http.Request) {
	rid := httpapi.RequestID(r)
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	ds := strings.TrimSpace(r.URL.Query().Get("dataset"))
	if ds == "" {
		httpapi.WriteError(w, rid, &resilience.QueryError{
			Class: resilience.Compile, Stage: "request", Err: fmt.Errorf("dataset parameter required"),
		})
		return
	}
	v := h.gw.InvalidateDataset(ds)
	httpapi.WriteJSON(w, rid, map[string]any{
		"dataset": ds, "version": v, "shard_versions": h.gw.ShardVersions(ds),
	})
}

func (h *handler) audit(w http.ResponseWriter, r *http.Request) {
	rid := httpapi.RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			httpapi.WriteError(w, rid, &resilience.QueryError{
				Class: resilience.Compile, Stage: "request", Err: fmt.Errorf("n must be a non-negative integer"),
			})
			return
		}
		n = v
	}
	events := h.gw.Audit(n)
	if events == nil {
		events = []gateway.Event{}
	}
	httpapi.WriteJSON(w, rid, map[string]any{"events": events})
}

// writeHealth renders a fleet probe payload: 200 while the live-shard
// quorum holds, 503 with Retry-After once ejections have broken it.
func writeHealth(w http.ResponseWriter, rid string, hz gateway.Health) {
	if hz.OK {
		httpapi.WriteJSON(w, rid, hz)
		return
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set(httpapi.RequestIDHeader, rid)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(hz); err != nil {
		log.Printf("encode health: %v", err)
	}
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	rid := httpapi.RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeHealth(w, rid, h.gw.Healthz())
}

func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	rid := httpapi.RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeHealth(w, rid, h.gw.Readyz())
}

// newMux wires the handler's routes (shared with the tests).
func newMux(h *handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.query)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/invalidate", h.invalidate)
	mux.HandleFunc("/audit", h.audit)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/readyz", h.readyz)
	return mux
}

// parseQuota parses one -quota value: "tenant=qps[:burst[:concurrent]]".
func parseQuota(spec string) (string, gateway.TenantQuota, error) {
	name, rest, ok := strings.Cut(spec, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" || rest == "" {
		return "", gateway.TenantQuota{}, fmt.Errorf("quota %q: want tenant=qps[:burst[:concurrent]]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) > 3 {
		return "", gateway.TenantQuota{}, fmt.Errorf("quota %q: too many fields", spec)
	}
	var q gateway.TenantQuota
	var err error
	if q.QPS, err = strconv.ParseFloat(parts[0], 64); err != nil || q.QPS < 0 {
		return "", gateway.TenantQuota{}, fmt.Errorf("quota %q: bad qps %q", spec, parts[0])
	}
	if len(parts) > 1 {
		if q.Burst, err = strconv.Atoi(parts[1]); err != nil || q.Burst < 0 {
			return "", gateway.TenantQuota{}, fmt.Errorf("quota %q: bad burst %q", spec, parts[1])
		}
	}
	if len(parts) > 2 {
		if q.MaxConcurrent, err = strconv.Atoi(parts[2]); err != nil || q.MaxConcurrent < 0 {
			return "", gateway.TenantQuota{}, fmt.Errorf("quota %q: bad concurrent %q", spec, parts[2])
		}
	}
	return name, q, nil
}

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	shards := flag.Int("shards", 2, "number of in-process serving shards")
	spill := flag.Int("spill", 1, "alternate shards to try when the home shard is overloaded (negative: none)")
	failover := flag.Int("failover", 1, "alternate shards to try when a shard fails a query with an internal error (negative: none)")
	probeInterval := flag.Duration("probe-interval", time.Second, "active health probe period (0: probing disabled)")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failed probes before a shard is ejected (negative: active detection off)")
	passiveFailures := flag.Int("passive-failures", 3, "consecutive internal-class query failures before passive ejection (negative: off)")
	rejoinProbes := flag.Int("rejoin-probes", 2, "consecutive caught-up probes before a rejoining shard is readmitted")
	readyQuorum := flag.Int("ready-quorum", 1, "minimum live shards for /healthz and /readyz to report 200")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per shard on the consistent-hash ring")
	seed := flag.Uint64("seed", 0, "ring placement seed")
	workers := flag.Int("workers", 0, "worker pool size per shard (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth per shard")
	timeout := flag.Duration("timeout", 0, "default per-query deadline (0: none)")
	planEntries := flag.Int("plan-cache", 128, "compiled-plan cache entries per shard (negative: disabled)")
	interBudget := flag.Int64("inter-budget", 4<<30, "intermediate cache budget per shard in modelled bytes (negative: disabled)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "MQO batching window per shard (0: disabled)")
	recoveryFlag := flag.String("recovery", "", "default recovery policy: lineage, checkpoint, coded or coded:k,n")
	auditDepth := flag.Int("audit-depth", 1024, "audit queue depth (negative: audit plane disabled)")
	auditTail := flag.Int("audit-tail", 256, "audit events kept for GET /audit")
	quotas := map[string]gateway.TenantQuota{}
	flag.Func("quota", "per-tenant quota tenant=qps[:burst[:concurrent]] (repeatable)", func(spec string) error {
		name, q, err := parseQuota(spec)
		if err != nil {
			return err
		}
		quotas[name] = q
		return nil
	})
	defaultQuota := flag.String("default-quota", "", "quota for tenants without a -quota entry: qps[:burst[:concurrent]] (empty: unlimited)")
	var remotes []string
	flag.Func("shard", "remote shard base URL, e.g. http://host:8356 (repeatable; joins the fleet alongside the -shards in-process instances)", func(u string) error {
		u = strings.TrimSpace(u)
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("shard %q: want an http(s) base URL", u)
		}
		remotes = append(remotes, u)
		return nil
	})
	maxBody := flag.Int64("max-body", 0, "max POST /query body bytes (0: 1 MiB default, negative: unbounded)")
	retryBudget := flag.Float64("retry-budget", 64, "gateway-wide wire retry budget: token bucket capacity shared by all remote shards (<=0: default 64)")
	retryRefill := flag.Float64("retry-refill", 0.1, "retry budget tokens restored per successful wire query")
	attemptTimeout := flag.Duration("attempt-timeout", 10*time.Second, "per-attempt wire timeout for remote shards (carved from the query deadline)")
	wireRetries := flag.Int("wire-retries", 2, "wire-level retries per query against a remote shard (negative: disabled)")
	flag.Parse()

	recovery, err := engine.ParseRecovery(*recoveryFlag)
	if err != nil {
		log.Fatalf("-recovery: %v", err)
	}
	var def gateway.TenantQuota
	if *defaultQuota != "" {
		if _, def, err = parseQuota("default=" + *defaultQuota); err != nil {
			log.Fatalf("-default-quota: %v", err)
		}
	}

	gcfg := gateway.Config{
		Shards:          *shards,
		VirtualNodes:    *vnodes,
		Seed:            *seed,
		SpillOver:       *spill,
		Failover:        *failover,
		ProbeInterval:   *probeInterval,
		EjectAfter:      *ejectAfter,
		PassiveFailures: *passiveFailures,
		RejoinProbes:    *rejoinProbes,
		ReadyQuorum:     *readyQuorum,
		DefaultTimeout:  *timeout,
		Quotas:          quotas,
		DefaultQuota:    def,
		AuditDepth:      *auditDepth,
		AuditTail:       *auditTail,
		Serve: serve.Config{
			Workers:                 *workers,
			QueueDepth:              *queue,
			PlanCacheEntries:        *planEntries,
			IntermediateBudgetBytes: *interBudget,
			BatchWindow:             *batchWindow,
		},
	}
	var gw *gateway.Gateway
	if len(remotes) == 0 {
		gw = gateway.New(gcfg)
	} else {
		// Mixed fleet: -shards in-process instances plus one RemoteInstance
		// per -shard URL, all behind the same ring, lifecycle monitor and
		// wire retry budget. The deadline lift New() performs is replicated
		// here: shard-level timeouts move up into the gateway's so every
		// spill-over/failover attempt shares one budget.
		if gcfg.DefaultTimeout == 0 {
			gcfg.DefaultTimeout = gcfg.Serve.DefaultTimeout
		}
		gcfg.Serve.DefaultTimeout = 0
		budget := gateway.NewRetryBudget(*retryBudget, *retryRefill)
		spawnLocal := func(id string) gateway.Instance {
			scfg := gcfg.Serve
			scfg.ShardID = id
			return serve.New(scfg)
		}
		spawnRemote := func(baseURL, id string) gateway.Instance {
			return gateway.NewRemote(gateway.RemoteConfig{
				BaseURL:        baseURL,
				ShardID:        id,
				AttemptTimeout: *attemptTimeout,
				Retries:        *wireRetries,
				Budget:         budget,
			})
		}
		locals := *shards
		if locals < 0 {
			locals = 0
		}
		instances := make([]gateway.Instance, 0, locals+len(remotes))
		for i := 0; i < locals; i++ {
			instances = append(instances, spawnLocal(fmt.Sprintf("shard-%d", i)))
		}
		for _, u := range remotes {
			instances = append(instances, spawnRemote(u, ""))
		}
		gcfg.Respawn = func(shard int, id string) gateway.Instance {
			if shard < locals {
				return spawnLocal(id)
			}
			// A remote respawn is a fresh client against the same URL —
			// the process out there has its own supervisor.
			return spawnRemote(remotes[shard-locals], id)
		}
		gw = gateway.NewWithInstances(gcfg, instances)
	}
	h := &handler{gw: gw, builder: httpapi.NewQueryBuilder(recovery), maxBody: *maxBody}
	httpSrv := &http.Server{Addr: *addr, Handler: newMux(h)}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("remac-gateway listening on %s (%d shards)", *addr, gw.Shards())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v; draining", sig)
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := gw.Shutdown(ctx); err != nil {
		log.Printf("gateway shutdown: %v", err)
	}
	log.Print("drained; exiting")
}
