// remac-explain dumps the optimizer's view of a workload: the coordinate
// system (Figure 4), every CSE/LSE option the block-wise search found, and
// the combination the chosen strategy applied.
//
// Usage:
//
//	remac-explain -workload DFP -dataset cri2 -strategy adaptive
package main

import (
	"flag"
	"fmt"
	"os"

	"remac"
)

func main() {
	workload := flag.String("workload", "DFP", "workload: GD, DFP, BFGS, GNMF, PartialDFP")
	dsName := flag.String("dataset", "cri2", "dataset name")
	strategy := flag.String("strategy", "adaptive", "planning strategy")
	estimator := flag.String("estimator", "MNC", "MD, MNC, Sample")
	flag.Parse()

	iterations := remac.WorkloadIterations(*workload)
	ds, err := remac.LoadDataset(*dsName)
	fatal(err)
	inputs, err := ds.Inputs(*workload)
	fatal(err)
	script, err := remac.WorkloadScript(*workload, iterations)
	fatal(err)

	prog, err := remac.Compile(script, inputs, remac.Config{
		Strategy:   remac.Strategy(*strategy),
		Estimator:  remac.Estimator(*estimator),
		Iterations: iterations,
	})
	fatal(err)
	fmt.Print(prog.Explain())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
