// remac-explain dumps the optimizer's view of a workload: the coordinate
// system (Figure 4), every CSE/LSE option the block-wise search found, the
// combination the chosen strategy applied, and — after executing the plan —
// the per-statement simulated-cost table.
//
// Usage:
//
//	remac-explain -workload DFP -dataset cri2 -strategy adaptive
package main

import (
	"flag"
	"fmt"
	"os"

	"remac"
)

func main() {
	workload := flag.String("workload", "DFP", "workload: GD, DFP, BFGS, GNMF, PartialDFP")
	dsName := flag.String("dataset", "cri2", "dataset name")
	strategy := flag.String("strategy", "adaptive", "planning strategy")
	estimator := flag.String("estimator", "MNC", "MD, MNC, Sample")
	nodes := flag.Int("nodes", 0, "cluster size override (0 = default profile; one node hosts the driver)")
	flag.Parse()

	iterations := remac.WorkloadIterations(*workload)
	ds, err := remac.LoadDataset(*dsName)
	fatal(err)
	inputs, err := ds.Inputs(*workload)
	fatal(err)
	script, err := remac.WorkloadScript(*workload, iterations)
	fatal(err)

	clusterCfg := remac.DefaultCluster()
	if *nodes != 0 {
		clusterCfg.Nodes = *nodes
	}
	if err := clusterCfg.Validate(); err != nil {
		fatal(fmt.Errorf("invalid cluster configuration: %w", err))
	}
	prog, err := remac.Compile(script, inputs, remac.Config{
		Strategy:   remac.Strategy(*strategy),
		Estimator:  remac.Estimator(*estimator),
		Cluster:    clusterCfg,
		Iterations: iterations,
	})
	fatal(err)
	fmt.Print(prog.Explain())

	_, tr, err := prog.RunTraced()
	fatal(err)
	fmt.Printf("\nsimulated cost by statement (%d iterations):\n", iterations)
	fmt.Printf("%-24s %6s %8s %12s %12s %12s\n",
		"statement", "execs", "ops", "compute(s)", "transmit(s)", "total(s)")
	for _, sc := range tr.StatementCosts() {
		fmt.Printf("%-24s %6d %8d %12.3f %12.3f %12.3f\n",
			sc.Statement, sc.Executions, sc.Ops, sc.ComputeSeconds, sc.TransmitSeconds,
			sc.ComputeSeconds+sc.TransmitSeconds)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
