// remac runs a built-in workload on a built-in dataset under a chosen
// planning strategy and reports the simulated execution profile.
//
// Usage:
//
//	remac -workload DFP -dataset cri2 -strategy adaptive -iterations 15
//	remac -workload DFP -faults 60 -fault-seed 7 -checkpoint
//	remac -workload DFP -corrupt-rate 120 -verify abft -nan-guard iter
package main

import (
	"flag"
	"fmt"
	"os"

	"remac"
)

func main() {
	workload := flag.String("workload", "DFP", "workload: GD, DFP, BFGS, GNMF, PartialDFP")
	dsName := flag.String("dataset", "cri2", "dataset: cri1..3, red1..3, zipf-0.0..zipf-2.8")
	strategy := flag.String("strategy", "adaptive", "none, explicit, conservative, aggressive, automatic, adaptive")
	estimator := flag.String("estimator", "MNC", "MD, MNC, Sample")
	iterations := flag.Int("iterations", 0, "loop trip count (0 = workload default)")
	singleNode := flag.Bool("single-node", false, "use the single-node cluster profile")
	nodes := flag.Int("nodes", 0, "cluster size override (0 = profile default; one node hosts the driver)")
	faults := flag.Float64("faults", 0, "inject r worker failures, 2r transmission errors and r stragglers per simulated hour of work")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed (same seed + rates = same schedule)")
	checkpoint := flag.Bool("checkpoint", false, "persist loop-hoisted intermediates to DFS so failures recover them by re-reading (alias for -recovery checkpoint)")
	recovery := flag.String("recovery", "", "recovery policy: lineage (default), checkpoint, coded or coded:k,n (k-of-n erasure-coded recovery)")
	corruptRate := flag.Float64("corrupt-rate", 0, "inject r silent payload corruptions per simulated hour of work")
	verify := flag.String("verify", "off", "integrity verification: off, digest (block checksums), abft (digest + multiply checksum vectors)")
	nanGuard := flag.String("nan-guard", "off", "non-finite scan cadence: off, iter (loop variables each iteration), op (every operator output)")
	traceFile := flag.String("trace", "", "write the run's operator spans to this file as JSON lines")
	flag.Parse()

	if *iterations == 0 {
		*iterations = remac.WorkloadIterations(*workload)
	}
	ds, err := remac.LoadDataset(*dsName)
	fatal(err)
	inputs, err := ds.Inputs(*workload)
	fatal(err)
	script, err := remac.WorkloadScript(*workload, *iterations)
	fatal(err)

	clusterCfg := remac.DefaultCluster()
	if *singleNode {
		clusterCfg = remac.SingleNodeCluster()
	}
	if *nodes != 0 {
		clusterCfg.Nodes = *nodes
	}
	if err := clusterCfg.Validate(); err != nil {
		fatal(fmt.Errorf("invalid cluster configuration: %w", err))
	}
	prog, err := remac.Compile(script, inputs, remac.Config{
		Strategy:   remac.Strategy(*strategy),
		Estimator:  remac.Estimator(*estimator),
		Cluster:    clusterCfg,
		Iterations: *iterations,
	})
	fatal(err)

	opts := remac.RunOptions{Recovery: *recovery, Checkpoint: *checkpoint, Verify: *verify, NaNGuard: *nanGuard}
	if *faults > 0 || *corruptRate > 0 {
		opts.Faults = &remac.FaultConfig{
			Seed:                  *faultSeed,
			WorkerFailuresPerHour: *faults,
			TransmitErrorsPerHour: 2 * *faults,
			StragglersPerHour:     *faults,
			CorruptionsPerHour:    *corruptRate,
		}
	}

	var report *remac.Report
	if *traceFile != "" {
		var tr *remac.RunTrace
		report, tr, err = prog.RunTracedWithOptions(opts)
		fatal(err)
		f, err := os.Create(*traceFile)
		fatal(err)
		fatal(tr.WriteJSONL(f))
		fatal(f.Close())
	} else {
		report, err = prog.RunWithOptions(opts)
		fatal(err)
	}

	fmt.Printf("%s on %s, strategy %s, %d iterations\n", *workload, *dsName, *strategy, report.Iterations)
	fmt.Printf("  compile             %10.3f s (real)\n", report.CompileSeconds)
	fmt.Printf("  input partition     %10.1f s (simulated)\n", report.InputPartitionSeconds)
	fmt.Printf("  execution           %10.1f s (simulated: %.1f compute + %.1f transmission)\n",
		report.SimulatedSeconds-report.InputPartitionSeconds, report.ComputeSeconds, report.TransmitSeconds)
	if *faults > 0 {
		fmt.Printf("  fault recovery      %10.1f s (simulated: %d retries, %d worker failures, %.2f recompute GFLOP)\n",
			report.RecoverySeconds, report.Retries, report.FailedWorkers, report.RecomputeFLOP/1e9)
	}
	if report.CodedRecoveries > 0 || report.EncodeFLOP > 0 {
		fmt.Printf("  coded recovery      %10.1f s decode (simulated: %d k-of-n decodes, %.2f encode GFLOP)\n",
			report.DecodeSeconds, report.CodedRecoveries, report.EncodeFLOP/1e9)
	}
	if *corruptRate > 0 || *verify != "off" {
		detected := report.CorruptionsDetectedDigest + report.CorruptionsDetectedABFT
		fmt.Printf("  integrity           %10.1f s verification (simulated); %d corruptions, %d detected (%d digest, %d abft), %d repairs (%.1f s)\n",
			report.VerifySeconds, report.CorruptionsInjected, detected,
			report.CorruptionsDetectedDigest, report.CorruptionsDetectedABFT,
			report.IntegrityRepairs, report.RepairSeconds)
	}
	if keys := prog.SelectedKeys(); len(keys) > 0 {
		fmt.Printf("  applied options     %v\n", keys)
	}
	for _, prim := range []string{"collect", "broadcast", "shuffle", "dfs"} {
		fmt.Printf("  %-10s bytes    %10.2f GB\n", prim, report.BytesByPrimitive[prim]/(1<<30))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
