package remac

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"remac/internal/cluster"
	"remac/internal/costgraph"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/lang"
	"remac/internal/opt"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// Strategy selects how elimination options are applied.
type Strategy string

// The six planner configurations of the paper's evaluation.
const (
	// NoElimination disables CSE/LSE entirely (the paper's SystemDS*).
	NoElimination Strategy = "none"
	// Explicit applies identical-subtree CSE only (stock SystemDS).
	Explicit Strategy = "explicit"
	// Conservative applies options that follow the original execution order.
	Conservative Strategy = "conservative"
	// Aggressive applies every applicable option, order-changing first.
	Aggressive Strategy = "aggressive"
	// Automatic applies as many block-wise options as possible.
	Automatic Strategy = "automatic"
	// Adaptive is ReMac's cost-based combination (the default).
	Adaptive Strategy = "adaptive"
)

// Estimator selects the sparsity estimator of the cost model (§4.2).
type Estimator string

// Available estimators.
const (
	// MD is the metadata-based estimator (fast, assumes uniform nonzeros).
	MD Estimator = "MD"
	// MNC is the structure-exploiting count-sketch estimator (ReMac's
	// reported configuration).
	MNC Estimator = "MNC"
	// Sample estimates from subsampled count sketches.
	Sample Estimator = "Sample"
)

// Combiner selects how adaptive elimination combines options (Fig 10).
type Combiner string

// Available combiners.
const (
	// DP is the dynamic-programming probing of §4.3 (the default).
	DP Combiner = "DP"
	// EnumDFS is brute-force depth-first enumeration.
	EnumDFS Combiner = "Enum-DFS"
	// EnumBFS is brute-force breadth-first enumeration.
	EnumBFS Combiner = "Enum-BFS"
)

// ClusterConfig describes the simulated cluster. The zero value means
// DefaultCluster().
type ClusterConfig struct {
	// Nodes in the cluster (one hosts the driver). Default 7, the paper's
	// testbed.
	Nodes int
	// CoresPerNode per worker. Default 12.
	CoresPerNode int
	// NetBandwidthMBps is the per-link bandwidth in MB/s. Default 125
	// (1 Gbps).
	NetBandwidthMBps float64
	// DriverMemoryGB bounds local-mode values. Default 20.
	DriverMemoryGB float64
	// BlockSize is the square matrix block edge. Default 1000.
	BlockSize int
}

// DefaultCluster returns the paper's seven-node testbed.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{Nodes: 7, CoresPerNode: 12, NetBandwidthMBps: 125, DriverMemoryGB: 20, BlockSize: 1000}
}

// SingleNodeCluster returns the single-node comparison setup of Fig 3(b).
func SingleNodeCluster() ClusterConfig {
	c := DefaultCluster()
	c.Nodes = 1
	c.DriverMemoryGB = 256
	return c
}

func (c ClusterConfig) internal() cluster.Config {
	// Zero fields default; nonzero fields — including invalid negative ones —
	// pass through so Validate can reject them instead of silently reverting
	// to defaults.
	base := cluster.DefaultConfig()
	if c.Nodes != 0 {
		base.Nodes = c.Nodes
	}
	if c.CoresPerNode != 0 {
		base.CoresPerNode = c.CoresPerNode
	}
	if c.NetBandwidthMBps != 0 {
		base.NetBandwidth = c.NetBandwidthMBps * 1e6
	}
	if c.DriverMemoryGB != 0 {
		base.DriverMemory = int64(c.DriverMemoryGB * float64(1<<30))
	}
	if c.BlockSize != 0 {
		base.BlockSize = c.BlockSize
	}
	if c.Nodes == 1 {
		base.DriverMemory = 256 << 30
	}
	return base
}

// Validate reports whether the configuration describes a runnable cluster
// (positive node/core counts, bandwidth, memory and block size).
func (c ClusterConfig) Validate() error {
	_, err := cluster.NewChecked(c.internal())
	return err
}

// Config parameterizes compilation.
type Config struct {
	// Strategy defaults to Adaptive.
	Strategy Strategy
	// Estimator defaults to MNC (ReMac's reported choice, §6.3.2).
	Estimator Estimator
	// Combiner defaults to DP.
	Combiner Combiner
	// Cluster defaults to the paper's 7-node testbed.
	Cluster ClusterConfig
	// Iterations is the expected loop trip count for LSE amortization; it
	// defaults to 15 (quasi-Newton scale). Set it to the script's actual
	// trip count.
	Iterations int
	// EnumMaxCombos bounds the Enum combiners (0 = 100k).
	EnumMaxCombos int
}

// Input pairs a materialized matrix with the virtual (full-scale)
// dimensions used for cost accounting. Zero virtual dims use the actual
// ones.
type Input struct {
	Data        *Matrix
	VirtualRows int64
	VirtualCols int64
}

// Program is a compiled script, ready to run or inspect.
type Program struct {
	compiled *opt.Compiled
	inputs   map[string]Input
}

// Compile parses, optimizes and plans a script against the given inputs.
func Compile(script string, inputs map[string]Input, cfg Config) (*Program, error) {
	prog, err := lang.Parse(script)
	if err != nil {
		return nil, err
	}
	metas := map[string]sparsity.Meta{}
	for name, in := range inputs {
		if in.Data == nil {
			return nil, fmt.Errorf("remac: input %q has nil data", name)
		}
		metas[name] = sparsity.Virtualize(sparsity.MetaOf(in.Data.m), in.VirtualRows, in.VirtualCols)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	icfg := opt.Config{
		Strategy:   strategyInternal(cfg.Strategy),
		Estimator:  estimatorInternal(cfg.Estimator),
		Combiner:   combinerInternal(cfg.Combiner),
		Cluster:    cfg.Cluster.internal(),
		Iterations: cfg.Iterations,
	}
	if icfg.Iterations == 0 {
		icfg.Iterations = 15
	}
	max := cfg.EnumMaxCombos
	if max == 0 {
		max = 100_000
	}
	icfg.EnumBudget = costgraph.EnumBudget{MaxCombos: max}
	compiled, err := opt.Compile(prog, metas, icfg)
	if err != nil {
		return nil, err
	}
	return &Program{compiled: compiled, inputs: inputs}, nil
}

func strategyInternal(s Strategy) opt.Strategy {
	switch s {
	case NoElimination:
		return opt.NoElimination
	case Explicit:
		return opt.Explicit
	case Conservative:
		return opt.Conservative
	case Aggressive:
		return opt.Aggressive
	case Automatic:
		return opt.Automatic
	default:
		return opt.Adaptive
	}
}

func estimatorInternal(e Estimator) sparsity.Estimator {
	switch e {
	case MD:
		return sparsity.Metadata{}
	case Sample:
		return sparsity.Sampling{Fraction: 0.1}
	default:
		return sparsity.MNC{}
	}
}

func combinerInternal(c Combiner) opt.Combiner {
	switch c {
	case EnumDFS:
		return opt.EnumDFS
	case EnumBFS:
		return opt.EnumBFS
	default:
		return opt.DP
	}
}

// OptionInfo describes one discovered elimination option.
type OptionInfo struct {
	// Kind is "CSE", "LSE" or "CSE-group".
	Kind string
	// Key is the canonical subexpression (e.g. "A'·A").
	Key string
	// Occurrences counts where the subexpression appears.
	Occurrences int
	// Selected reports whether the planner applied it.
	Selected bool
}

// Options lists the CSE/LSE options automatic elimination found (empty for
// the NoElimination/Explicit strategies, which do not search).
func (p *Program) Options() []OptionInfo {
	if p.compiled.Search == nil {
		return nil
	}
	out := make([]OptionInfo, 0, len(p.compiled.Search.Options))
	for _, o := range p.compiled.Search.Options {
		out = append(out, OptionInfo{
			Kind:        o.Kind.String(),
			Key:         o.Key,
			Occurrences: len(o.Occs),
			Selected:    p.compiled.SelectedKeys[o.Key],
		})
	}
	return out
}

// SelectedKeys returns the applied option keys, sorted.
func (p *Program) SelectedKeys() []string {
	keys := make([]string, 0, len(p.compiled.SelectedKeys))
	for k := range p.compiled.SelectedKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Explain renders the coordinate system, the discovered options and the
// selection — the remac-explain tool's output.
func (p *Program) Explain() string {
	var b strings.Builder
	c := p.compiled
	fmt.Fprintf(&b, "strategy: %v, estimator: %s, iterations: %d\n",
		c.Config.Strategy, c.Config.Estimator.Name(), c.Config.Iterations)
	if c.Coords != nil {
		b.WriteString("\ncoordinates:\n")
		b.WriteString(c.Coords.String())
	}
	if c.Search != nil {
		fmt.Fprintf(&b, "\noptions found: %d (search %v)\n", len(c.Search.Options), c.SearchTime)
		for _, o := range c.Search.Options {
			mark := " "
			if c.SelectedKeys[o.Key] {
				mark = "*"
			}
			fmt.Fprintf(&b, " %s %s\n", mark, o.String())
		}
	}
	if c.Decision != nil {
		fmt.Fprintf(&b, "\nselected %d options, modelled cost %.3f s/iteration (plan %v)\n",
			len(c.Decision.Selected), c.Decision.TotalCost, c.PlanTime)
	}
	return b.String()
}

// FaultConfig schedules deterministic fault injection against the simulated
// clock: the same seed and rates always reproduce the same fault sequence.
// Fail-stop faults (failures, transmit errors, stragglers) only ever affect
// cost accounting — result matrices stay numerically identical to a
// fault-free run. Corruption is the deliberate exception: an undetected
// corruption flips a real payload bit and propagates, which is exactly what
// RunOptions.Verify exists to catch. All rates are events per simulated hour
// of cluster work; zero rates everywhere disable injection.
type FaultConfig struct {
	// Seed selects the fault schedule (per-kind streams are independent).
	Seed int64
	// WorkerFailuresPerHour loses one worker's partitions per event; lost
	// blocks are lazily recomputed from lineage (or re-read, if
	// checkpointed) when next used.
	WorkerFailuresPerHour float64
	// TransmitErrorsPerHour fails one in-flight task of the running
	// operator, retried after a capped exponential backoff with
	// retransmission of that task's share.
	TransmitErrorsPerHour float64
	// StragglersPerHour stretches the running operator by StragglerFactor.
	StragglersPerHour float64
	// StragglerFactor defaults to 2.
	StragglerFactor float64
	// BackoffBaseSec is the first-retry backoff delay. Default 1s.
	BackoffBaseSec float64
	// CorruptionsPerHour flips one bit in a payload in flight or in a
	// distributed multiply's compute phase. Detection (and hence repair)
	// depends on RunOptions.Verify; an undetected flip propagates into the
	// result.
	CorruptionsPerHour float64
}

// RunOptions configures the run-time behavior of an execution. The zero
// value reproduces Run: a perfect cluster with no checkpointing.
type RunOptions struct {
	// Faults enables deterministic fault injection when non-nil.
	Faults *FaultConfig
	// Recovery selects the recovery policy for blocks lost to injected
	// worker failures: "" or "lineage" (recompute from lineage),
	// "checkpoint" (persist loop-hoisted intermediates to DFS once),
	// "coded" or "coded:k,n" (systematic k-of-n erasure coding: parity
	// blocks are encoded at honest cost and erased blocks decode with no
	// recomputation).
	Recovery string
	// Checkpoint is the legacy toggle for Recovery: "checkpoint", honored
	// only when Recovery is unset.
	Checkpoint bool
	// MaxIterations overrides the engine's runaway-loop cap when positive.
	MaxIterations int
	// Verify selects integrity verification: "off" (or ""), "digest" (block
	// checksums on every charged transmission and DFS read) or "abft"
	// (digest plus checksum-vector verification of distributed multiplies).
	// Detected corruptions repair through lineage at simulated cost;
	// unrepairable ones fail the run with integrity.Error.
	Verify string
	// NaNGuard selects non-finite scanning: "off" (or ""), "iter" (scan
	// loop variables each iteration) or "op" (scan every operator output).
	// A caught NaN/Inf fails the run with integrity.NumericError.
	NaNGuard string
}

func (f *FaultConfig) internal(workers int) (*fault.Plan, error) {
	if f == nil {
		return nil, nil
	}
	return fault.NewChecked(fault.Config{
		Seed:                  f.Seed,
		WorkerFailuresPerHour: f.WorkerFailuresPerHour,
		TransmitErrorsPerHour: f.TransmitErrorsPerHour,
		StragglersPerHour:     f.StragglersPerHour,
		StragglerFactor:       f.StragglerFactor,
		BackoffBaseSec:        f.BackoffBaseSec,
		CorruptionsPerHour:    f.CorruptionsPerHour,
		Workers:               workers,
	})
}

// Report is the outcome of a run.
type Report struct {
	// Values holds the final variable bindings.
	Values map[string]*Matrix
	// Iterations executed.
	Iterations int
	// SimulatedSeconds is the modelled wall-clock execution time on the
	// simulated cluster.
	SimulatedSeconds float64
	// ComputeSeconds and TransmitSeconds split SimulatedSeconds.
	ComputeSeconds, TransmitSeconds float64
	// InputPartitionSeconds is the input read/partition phase.
	InputPartitionSeconds float64
	// CompileSeconds is the real compilation time.
	CompileSeconds float64
	// BytesByPrimitive reports data volumes per transmission primitive
	// (collect, broadcast, shuffle, dfs).
	BytesByPrimitive map[string]float64
	// WorkerShares is each worker's fraction of the partitioned input data
	// (the Fig 13 measurement).
	WorkerShares []float64

	// Fault-injection accounting (all zero unless RunWithOptions attached a
	// FaultConfig).
	//
	// Retries counts transmission-error retry attempts.
	Retries int
	// RecoverySeconds is the simulated time spent on backoff,
	// retransmission, straggling and recomputation; it is included in
	// SimulatedSeconds.
	RecoverySeconds float64
	// RecomputeFLOP is the work re-executed to rebuild lost blocks.
	RecomputeFLOP float64
	// FailedWorkers counts injected worker-failure events.
	FailedWorkers int
	// CodedRecoveries counts k-of-n decode recoveries (coded policy only):
	// lost blocks rebuilt from parity with no recomputation.
	CodedRecoveries int
	// DecodeSeconds is the simulated time those decodes cost (included in
	// RecoverySeconds).
	DecodeSeconds float64
	// EncodeFLOP is the parity-encoding work the coded policy charged
	// (included in the run's total FLOP).
	EncodeFLOP float64

	// Integrity accounting (all zero unless corruption was injected or a
	// verification mode was on).
	//
	// CorruptionsInjected counts corruption events that landed in a payload.
	CorruptionsInjected int
	// CorruptionsDetected splits detections by layer: block digests on
	// transmissions vs the ABFT multiply check.
	CorruptionsDetectedDigest, CorruptionsDetectedABFT int
	// IntegrityRepairs counts lineage repair attempts; RepairSeconds is their
	// simulated cost (included in RecoverySeconds).
	IntegrityRepairs int
	RepairSeconds    float64
	// VerifySeconds is the simulated cost of the enabled verification mode
	// (included in ComputeSeconds).
	VerifySeconds float64
}

// Run executes the compiled program on a fresh simulated cluster.
func (p *Program) Run() (*Report, error) {
	return p.run(context.Background(), nil, RunOptions{})
}

// RunWithOptions executes the program like Run, with fault injection and
// recovery policy attached.
func (p *Program) RunWithOptions(opts RunOptions) (*Report, error) {
	return p.run(context.Background(), nil, opts)
}

// RunContext executes the program like RunWithOptions under a cancellation
// context: when ctx is cancelled or its deadline passes, the run stops
// promptly (within one kernel execution) and the returned error satisfies
// errors.Is(err, ErrCanceled).
func (p *Program) RunContext(ctx context.Context, opts RunOptions) (*Report, error) {
	return p.run(ctx, nil, opts)
}

// ErrCanceled is returned (wrapped) by RunContext when the context ends
// before the run completes.
var ErrCanceled = engine.ErrCanceled

// ErrCorruption matches (via errors.Is) a run that failed because a detected
// corruption could not be repaired within the bounded lineage budget.
var ErrCorruption = integrity.ErrCorruption

// ErrNonFinite matches (via errors.Is) a run stopped by the NaNGuard scan.
var ErrNonFinite = integrity.ErrNonFinite

// RunTraced executes the program like Run and additionally collects a
// structured trace: one span per charged operator, grouped under
// statement and iteration boundary spans.
func (p *Program) RunTraced() (*Report, *RunTrace, error) {
	return p.RunTracedWithOptions(RunOptions{})
}

// RunTracedWithOptions is RunTraced with fault injection and recovery
// policy attached; retries and recoveries appear as fault spans.
func (p *Program) RunTracedWithOptions(opts RunOptions) (*Report, *RunTrace, error) {
	rec := trace.New()
	rep, err := p.run(context.Background(), rec, opts)
	if err != nil {
		return nil, nil, err
	}
	return rep, &RunTrace{rec: rec}, nil
}

func (p *Program) run(ctx context.Context, rec *trace.Recorder, opts RunOptions) (*Report, error) {
	ins := map[string]engine.Input{}
	for name, in := range p.inputs {
		ins[name] = engine.Input{Data: in.Data.m, VRows: in.VirtualRows, VCols: in.VirtualCols}
	}
	verify, err := integrity.ParseVerifyMode(opts.Verify)
	if err != nil {
		return nil, err
	}
	guard, err := integrity.ParseGuardMode(opts.NaNGuard)
	if err != nil {
		return nil, err
	}
	recovery, err := engine.ParseRecovery(opts.Recovery)
	if err != nil {
		return nil, err
	}
	plan, err := opts.Faults.internal(p.compiled.Config.Cluster.Workers())
	if err != nil {
		return nil, err
	}
	res, err := engine.RunWithOptions(ctx, p.compiled, ins, rec, engine.RunOptions{
		Faults:     plan,
		Recovery:   recovery,
		Checkpoint: opts.Checkpoint,
		MaxIter:    opts.MaxIterations,
		Verify:     verify,
		NaNGuard:   guard,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Values:                map[string]*Matrix{},
		Iterations:            res.Iterations,
		SimulatedSeconds:      res.Stats.TotalTime(),
		ComputeSeconds:        res.Stats.ComputeTime,
		TransmitSeconds:       res.Stats.TransmitTime,
		InputPartitionSeconds: res.InputPartitionSec,
		CompileSeconds:        res.CompileSec,
		BytesByPrimitive:      map[string]float64{},
		Retries:               res.Stats.Retries,
		RecoverySeconds:       res.Stats.RecoverySec,
		RecomputeFLOP:         res.Stats.RecomputeFLOP,
		FailedWorkers:         res.Stats.FailedWorkers,
		CodedRecoveries:       res.Stats.CodedRecoveries,
		DecodeSeconds:         res.Stats.DecodeSec,
		EncodeFLOP:            res.Stats.EncodeFLOP,

		CorruptionsInjected:       res.Stats.CorruptionsInjected,
		CorruptionsDetectedDigest: res.Stats.CorruptionsDigest,
		CorruptionsDetectedABFT:   res.Stats.CorruptionsABFT,
		IntegrityRepairs:          res.Stats.IntegrityRepairs,
		RepairSeconds:             res.Stats.RepairSec,
		VerifySeconds:             res.Stats.VerifySec,
	}
	for name, v := range res.Env {
		rep.Values[name] = wrap(v.Data())
	}
	for _, prim := range cluster.Primitives {
		rep.BytesByPrimitive[prim.String()] = res.Stats.BytesFor(prim)
	}
	total := 0.0
	for _, b := range res.Stats.WorkerBytes {
		total += b
	}
	if total > 0 {
		for _, b := range res.Stats.WorkerBytes {
			rep.WorkerShares = append(rep.WorkerShares, b/total)
		}
	}
	return rep, nil
}

// TotalSeconds returns simulated execution plus compilation time.
func (r *Report) TotalSeconds() float64 { return r.SimulatedSeconds + r.CompileSeconds }

// RunTrace is the span record of one traced run (see RunTraced).
type RunTrace struct {
	rec *trace.Recorder
}

// WriteJSONL writes one JSON span per line — the remac-bench/remac -trace
// file format.
func (t *RunTrace) WriteJSONL(w io.Writer) error { return t.rec.WriteJSONL(w) }

// StatementCost aggregates the simulated cost of one statement across all
// of its executions.
type StatementCost struct {
	// Statement is the assigned variable ("(outside statements)" collects
	// charges outside any statement, e.g. inputs read by loop conditions).
	Statement string
	// Executions counts how many times the statement ran.
	Executions int
	// Ops counts the charged operators it executed.
	Ops int
	// ComputeSeconds and TransmitSeconds are simulated totals.
	ComputeSeconds, TransmitSeconds float64
}

// StatementCosts returns the per-statement simulated-cost table in program
// order (the remac-explain view).
func (t *RunTrace) StatementCosts() []StatementCost {
	var out []StatementCost
	for _, g := range t.rec.GroupCosts("stmt") {
		label := g.Label
		if label == "" {
			label = "(outside statements)"
		}
		out = append(out, StatementCost{
			Statement:       label,
			Executions:      g.Executions,
			Ops:             g.Ops,
			ComputeSeconds:  g.ComputeSec,
			TransmitSeconds: g.TransmitSec,
		})
	}
	return out
}

// OperatorStat aggregates the spans of one operator kind.
type OperatorStat struct {
	// Kind is the operator family: mul, ewise, transpose, scale,
	// add-scalar, sum, dfs-read.
	Kind string
	// Ops counts executions.
	Ops int
	// FLOP, ComputeSeconds and TransmitSeconds are simulated totals.
	FLOP, ComputeSeconds, TransmitSeconds float64
	// Bytes maps transmission primitive name to total simulated volume.
	Bytes map[string]float64
}

// OperatorStats returns per-operator aggregates sorted by descending
// simulated seconds.
func (t *RunTrace) OperatorStats() []OperatorStat {
	var out []OperatorStat
	for _, k := range t.rec.Summary().ByKind {
		out = append(out, OperatorStat{
			Kind:            k.Kind,
			Ops:             k.Ops,
			FLOP:            k.FLOP,
			ComputeSeconds:  k.ComputeSec,
			TransmitSeconds: k.TransmitSec,
			Bytes:           k.Bytes,
		})
	}
	return out
}
