package remac_test

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design decisions DESIGN.md calls out. The
// figure benches regenerate the full experiment each iteration (Go picks
// b.N=1 for the heavy ones); the ablations isolate single mechanisms.

import (
	"fmt"
	"testing"
	"time"

	"remac"
	"remac/internal/bench"
	"remac/internal/chain"
	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/search"
	"remac/internal/sparsity"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Experiments[id](); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DatasetStats regenerates Table 2.
func BenchmarkTable2DatasetStats(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig3Distributed regenerates Fig 3(a): DFP elimination choices on
// the distributed cluster.
func BenchmarkFig3Distributed(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3SingleNode regenerates Fig 3(b).
func BenchmarkFig3SingleNode(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig8aSearch regenerates Fig 8(a): compilation time of the four
// searches.
func BenchmarkFig8aSearch(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8b regenerates Fig 8(b): execution under automatic
// elimination vs the SystemDS and SPORES baselines.
func BenchmarkFig8b(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkFig9 regenerates Fig 9: conservative/aggressive/adaptive.
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10aPlanGen regenerates Fig 10(a): DP vs Enum × MD vs MNC
// compilation time.
func BenchmarkFig10aPlanGen(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10bElapsed regenerates Fig 10(b).
func BenchmarkFig10bElapsed(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkFig11 regenerates Fig 11: SystemDS vs pbdR vs SciDB vs ReMac.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig 12: the DFP phase breakdown across skew.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig 13: work balance across skew.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// --- Ablations -----------------------------------------------------------

// syntheticChain builds one block of n atoms (alternating loop-constant
// dataset references and iteration vectors) for search ablations.
func syntheticChain(n int) *chain.Coordinates {
	atoms := make([]chain.Atom, n)
	for i := range atoms {
		sym := string(rune('A' + i%4))
		atoms[i] = chain.Atom{Sym: sym, T: i%3 == 0, LoopConst: i%4 < 2, Coord: i + 1}
	}
	return &chain.Coordinates{Blocks: []*chain.Block{{ID: 0, Atoms: atoms, Group: 1}}, NAtoms: n}
}

type ablationResolver struct{}

func (ablationResolver) MetaFor(string) (sparsity.Meta, bool) {
	return sparsity.MetaDims(64, 64, 1), true
}
func (ablationResolver) IsSymmetric(string) bool { return false }

// BenchmarkAblationSearch compares the block-wise search against tree-wise
// and SPORES on growing chain lengths — the complexity separation that
// motivates §3.2.
func BenchmarkAblationSearch(b *testing.B) {
	for _, n := range []int{6, 9, 12} {
		coords := syntheticChain(n)
		b.Run(fmt.Sprintf("block-wise/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				search.BlockWise(coords, sparsity.Metadata{})
			}
		})
		b.Run(fmt.Sprintf("tree-wise/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				search.TreeWise(coords, 10*time.Second)
			}
		})
		b.Run(fmt.Sprintf("spores/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				search.SPORES(coords, search.DefaultSPORESConfig())
			}
		})
	}
}

// BenchmarkAblationTransposeKeys measures the canonical-key normalization:
// with it, windows hidden by transposition collide in the hash table; the
// bench isolates the key computation itself.
func BenchmarkAblationTransposeKeys(b *testing.B) {
	atoms := []chain.Atom{
		{Sym: "d", T: true}, {Sym: "A", T: true}, {Sym: "A"}, {Sym: "H", Symm: true},
	}
	b.Run("canonical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chain.CanonicalKey(atoms)
		}
	})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chain.SpanKey(atoms)
		}
	})
}

// BenchmarkAblationCostModel measures one operator cost evaluation — the
// unit the building/probing phases multiply by thousands.
func BenchmarkAblationCostModel(b *testing.B) {
	m := cost.NewModel(cluster.DefaultConfig(), sparsity.Metadata{})
	a := sparsity.MetaDims(58_400_000, 8_700, 4.5e-3)
	v := sparsity.MetaDims(8_700, 1, 1)
	b.Run("mul-bmm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Mul(a, v, false, true)
		}
	})
	at := sparsity.MetaDims(8_700, 58_400_000, 4.5e-3)
	b.Run("mul-cpmm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Mul(at, a, false, false)
		}
	})
}

// BenchmarkAblationEstimators compares the per-operator cost of the MD and
// MNC estimators — the efficiency side of Fig 10's accuracy/efficiency
// trade-off.
func BenchmarkAblationEstimators(b *testing.B) {
	rowCounts := make([]int, 2000)
	colCounts := make([]int, 870)
	for i := range rowCounts {
		rowCounts[i] = 4 + i%7
	}
	for i := range colCounts {
		colCounts[i] = 9 + i%5
	}
	a := sparsity.Meta{Rows: 58_400_000, Cols: 8_700, Sparsity: 4.5e-3, RowCounts: rowCounts, ColCounts: colCounts}
	at := sparsity.Meta{Rows: 8_700, Cols: 58_400_000, Sparsity: 4.5e-3, RowCounts: colCounts, ColCounts: rowCounts}
	b.Run("MD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsity.Metadata{}.Mul(at, a)
		}
	})
	b.Run("MNC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsity.MNC{}.Mul(at, a)
		}
	})
}

// BenchmarkAblationEnumCutoff measures enumeration cost at growing
// combination budgets against the DP prober — the Fig 10 separation at the
// mechanism level.
func BenchmarkAblationEnumCutoff(b *testing.B) {
	ds, err := remac.LoadDataset("cri2")
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := ds.Inputs("DFP")
	if err != nil {
		b.Fatal(err)
	}
	script, err := remac.WorkloadScript("DFP", 15)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := remac.Compile(script, inputs, remac.Config{
				Strategy: remac.Adaptive, Combiner: remac.DP, Iterations: 15,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, budget := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("EnumDFS/budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := remac.Compile(script, inputs, remac.Config{
					Strategy: remac.Adaptive, Combiner: remac.EnumDFS,
					EnumMaxCombos: budget, Iterations: 15,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVirtualScale compares compilation at paper-scale virtual
// dimensions against the raw materialized dimensions: the plan decisions
// (and hence costs) differ because intermediate fill-in depends on absolute
// size — the rationale for the virtual-dimension substitution in DESIGN.md.
func BenchmarkAblationVirtualScale(b *testing.B) {
	ds, err := remac.LoadDataset("cri2")
	if err != nil {
		b.Fatal(err)
	}
	script, err := remac.WorkloadScript("DFP", 15)
	if err != nil {
		b.Fatal(err)
	}
	virtual, err := ds.Inputs("DFP")
	if err != nil {
		b.Fatal(err)
	}
	actual := map[string]remac.Input{}
	for name, in := range virtual {
		actual[name] = remac.Input{Data: in.Data} // no virtual dims
	}
	for _, variant := range []struct {
		name   string
		inputs map[string]remac.Input
	}{{"virtual", virtual}, {"actual", actual}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := remac.Compile(script, variant.inputs, remac.Config{
					Strategy: remac.Adaptive, Iterations: 15,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
