package sparsity

// Sampling is the middle ground the paper mentions between metadata-based
// and sketch-based estimation (as in MATFAST): it behaves like MNC but on
// count vectors subsampled by Fraction, trading accuracy for sketch size.
type Sampling struct {
	// Fraction of rows/columns whose counts are retained, in (0, 1].
	Fraction float64
}

// Name implements Estimator.
func (s Sampling) Name() string { return "Sample" }

func (s Sampling) frac() float64 {
	if s.Fraction <= 0 || s.Fraction > 1 {
		return 0.1
	}
	return s.Fraction
}

func (s Sampling) thin(m Meta) Meta {
	out := m
	out.RowCounts = sampleCounts(m.RowCounts, s.frac())
	out.ColCounts = sampleCounts(m.ColCounts, s.frac())
	return out
}

// sampleCounts keeps every k-th count and rescales so totals are preserved
// in expectation. Deterministic (systematic sampling) so estimates are
// reproducible.
func sampleCounts(counts []int, frac float64) []int {
	if counts == nil {
		return nil
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	out := make([]int, len(counts))
	for i := 0; i < len(counts); i += step {
		v := counts[i]
		// Smear the sampled value over the skipped stride.
		for j := i; j < i+step && j < len(counts); j++ {
			out[j] = v
		}
	}
	return out
}

// Mul implements Estimator.
func (s Sampling) Mul(a, b Meta) Meta { return MNC{}.Mul(s.thin(a), s.thin(b)) }

// Add implements Estimator.
func (s Sampling) Add(a, b Meta) Meta { return MNC{}.Add(s.thin(a), s.thin(b)) }

// ElemMul implements Estimator.
func (s Sampling) ElemMul(a, b Meta) Meta { return MNC{}.ElemMul(s.thin(a), s.thin(b)) }

// Transpose implements Estimator.
func (s Sampling) Transpose(a Meta) Meta { return MNC{}.Transpose(a) }

// Scale implements Estimator.
func (s Sampling) Scale(a Meta) Meta { return a }
