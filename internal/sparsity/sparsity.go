// Package sparsity implements the sparsity estimators the cost model can
// use (§4.2): the metadata-based estimator SystemDS uses by default (fast,
// assumes uniformly distributed nonzeros), an MNC-style structure-exploiting
// estimator (accurate on skewed data, costs a pass over count vectors), and
// a sampling estimator in between.
//
// Estimators propagate Meta descriptors through operators. A Meta carries
// the dimensions and sparsity of a (possibly intermediate) matrix plus, for
// the structure-exploiting estimators, per-row and per-column nonzero count
// vectors.
package sparsity

import (
	"fmt"
	"math"

	"remac/internal/matrix"
)

// Meta describes a matrix for estimation purposes. Count vectors are at the
// granularity of the materialized (possibly scaled-down) matrix; Sparsity is
// scale-free and is what the cost model consumes.
type Meta struct {
	Rows, Cols int64
	Sparsity   float64
	// RowCounts[i] and ColCounts[j] are nonzero counts per row/column of the
	// materialized matrix. Nil when unavailable (metadata-only estimation).
	RowCounts, ColCounts []int
}

// NNZ returns the estimated number of nonzeros.
func (m Meta) NNZ() float64 { return float64(m.Rows) * float64(m.Cols) * m.Sparsity }

// Valid reports whether the descriptor is structurally sound.
func (m Meta) Valid() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("sparsity: non-positive dims %dx%d", m.Rows, m.Cols)
	}
	if m.Sparsity < 0 || m.Sparsity > 1 {
		return fmt.Errorf("sparsity: sparsity %g out of [0,1]", m.Sparsity)
	}
	return nil
}

// MetaOf extracts a full descriptor (including count vectors) from a
// materialized matrix.
func MetaOf(m *matrix.Matrix) Meta {
	return Meta{
		Rows:      int64(m.Rows()),
		Cols:      int64(m.Cols()),
		Sparsity:  m.Sparsity(),
		RowCounts: m.RowNNZCounts(),
		ColCounts: m.ColNNZCounts(),
	}
}

// MetaDims builds a descriptor from dimensions and sparsity only.
func MetaDims(rows, cols int64, s float64) Meta {
	return Meta{Rows: rows, Cols: cols, Sparsity: clamp01(s)}
}

// WithVirtualDims returns a copy of m re-dimensioned to (rows, cols),
// keeping the sparsity and count vectors. Used by the virtual-scale cost
// accounting described in DESIGN.md.
func (m Meta) WithVirtualDims(rows, cols int64) Meta {
	out := m
	out.Rows, out.Cols = rows, cols
	return out
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	if math.IsNaN(s) {
		return 0
	}
	return s
}

// Estimator propagates Meta descriptors through the operators that appear
// in optimized plans.
type Estimator interface {
	// Name identifies the estimator in experiment output ("MD", "MNC", ...).
	Name() string
	// Mul estimates the metadata of a·b. Inner dimensions must agree.
	Mul(a, b Meta) Meta
	// Add estimates the metadata of a+b (same for subtraction: structural
	// union).
	Add(a, b Meta) Meta
	// ElemMul estimates the metadata of a⊙b (structural intersection).
	ElemMul(a, b Meta) Meta
	// Transpose returns the metadata of aᵀ.
	Transpose(a Meta) Meta
	// Scale returns the metadata of s·a for nonzero s.
	Scale(a Meta) Meta
}

func checkMulDims(a, b Meta) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparsity: Mul inner dims %d vs %d", a.Cols, b.Rows))
	}
}

func checkSameDims(a, b Meta, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparsity: %s dims %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Metadata is the SystemDS metadata-based estimator: it assumes nonzeros
// are uniformly distributed and derives output sparsity from input
// sparsities alone. O(1) per operator; inaccurate under skew.
type Metadata struct{}

// Name implements Estimator.
func (Metadata) Name() string { return "MD" }

// Mul implements Estimator. Under the uniform assumption, an output cell is
// nonzero unless all K terms vanish: s = 1 - (1 - sA·sB)^K.
func (Metadata) Mul(a, b Meta) Meta {
	checkMulDims(a, b)
	k := float64(a.Cols)
	s := 1 - math.Pow(1-a.Sparsity*b.Sparsity, k)
	return MetaDims(a.Rows, b.Cols, s)
}

// Add implements Estimator: structural union under independence.
func (Metadata) Add(a, b Meta) Meta {
	checkSameDims(a, b, "Add")
	s := a.Sparsity + b.Sparsity - a.Sparsity*b.Sparsity
	return MetaDims(a.Rows, a.Cols, s)
}

// ElemMul implements Estimator: structural intersection under independence.
func (Metadata) ElemMul(a, b Meta) Meta {
	checkSameDims(a, b, "ElemMul")
	return MetaDims(a.Rows, a.Cols, a.Sparsity*b.Sparsity)
}

// Transpose implements Estimator.
func (Metadata) Transpose(a Meta) Meta { return MetaDims(a.Cols, a.Rows, a.Sparsity) }

// Scale implements Estimator.
func (Metadata) Scale(a Meta) Meta { return MetaDims(a.Rows, a.Cols, a.Sparsity) }
