package sparsity

import (
	"math"
	"sort"
)

// MNC is a structure-exploiting estimator in the spirit of Sommer et al.'s
// matrix-nonzero-count sketches (the paper's footnote selects the MNC
// variant using the density-map estimate over h_r of A and h_c of B). It
// carries per-row/per-column nonzero count vectors through operators, which
// lets it see skew the metadata estimator's uniform assumption misses —
// exactly the effect Fig 12's zipf datasets probe.
type MNC struct{}

// Name implements Estimator.
func (MNC) Name() string { return "MNC" }

// Mul implements Estimator. The estimate follows a rank-1 propensity model:
// cell A(i,k) is nonzero with probability hrA[i]·hcA[k]/nnzA (rows and
// columns have independent propensities calibrated by the count sketches),
// and likewise for B. The probability that output cell (i,j) is nonzero is
// then 1 - Π_k (1 - p_ik·q_kj) ≈ 1 - exp(-hrA[i]·hcB[j]·T/(nnzA·nnzB)),
// where T = Σ_k hcA[k]·hrB[k] couples the inner-dimension structure. The
// double sum over (i, j) is evaluated on geometric buckets of the count
// values, which keeps estimation cheap while capturing the saturation of
// heavy rows/columns — the effect the uniform metadata model misses on
// skewed data.
func (MNC) Mul(a, b Meta) Meta {
	checkMulDims(a, b)
	if a.ColCounts == nil || b.RowCounts == nil || a.RowCounts == nil || b.ColCounts == nil {
		// Degrade gracefully to the metadata estimate when sketches are
		// unavailable (e.g. a synthetic shape with no materialized data).
		return Metadata{}.Mul(a, b)
	}
	// The count vectors may be samples of a (virtually) larger matrix:
	// lengths need not match the dimensions. Replication factors rescale
	// sampled sums to the full matrix; totals come from the scale-free
	// sparsity so sampled and full sketches agree.
	nnzA, nnzB := a.NNZ(), b.NNZ()
	if nnzA == 0 || nnzB == 0 {
		out := MetaDims(a.Rows, b.Cols, 0)
		out.RowCounts = make([]int, len(a.RowCounts))
		out.ColCounts = make([]int, len(b.ColCounts))
		return out
	}
	innerRep := float64(a.Cols) / float64(len(a.ColCounts))
	t := 0.0
	for k := range a.ColCounts {
		t += float64(a.ColCounts[k]) * float64(b.RowCounts[k])
	}
	t *= innerRep
	coupling := t / (nnzA * nnzB)

	bucketsA := bucketCounts(a.RowCounts)
	bucketsB := bucketCounts(b.ColCounts)
	rowRep := float64(a.Rows) / float64(len(a.RowCounts))
	colRep := float64(b.Cols) / float64(len(b.ColCounts))
	expNNZ := 0.0
	for _, ba := range bucketsA {
		for _, bb := range bucketsB {
			lambda := ba.value * bb.value * coupling
			expNNZ += ba.n * rowRep * bb.n * colRep * -math.Expm1(-lambda)
		}
	}
	cells := float64(a.Rows) * float64(b.Cols)
	out := MetaDims(a.Rows, b.Cols, expNNZ/cells)
	out.RowCounts = propagateMulRows(a.RowCounts, bucketsB, colRep, coupling, int(b.Cols))
	out.ColCounts = propagateMulRows(b.ColCounts, bucketsA, rowRep, coupling, int(a.Rows))
	return out
}

// Virtualize re-dimensions a materialized matrix's metadata to virtual
// (paper-scale) dimensions: sparsity is preserved, and the count-vector
// values are rescaled so each retained row/column carries the nonzero count
// it would have at virtual width/height. The vectors keep their sampled
// lengths; MNC's replication factors account for the unsampled remainder.
func Virtualize(m Meta, vRows, vCols int64) Meta {
	if vRows <= 0 {
		vRows = m.Rows
	}
	if vCols <= 0 {
		vCols = m.Cols
	}
	out := m
	colScale := float64(vCols) / float64(m.Cols)
	rowScale := float64(vRows) / float64(m.Rows)
	out.RowCounts = scaleVals(m.RowCounts, colScale)
	out.ColCounts = scaleVals(m.ColCounts, rowScale)
	out.Rows, out.Cols = vRows, vCols
	return out
}

func scaleVals(counts []int, f float64) []int {
	if counts == nil || f == 1 {
		return counts
	}
	out := make([]int, len(counts))
	for i, c := range counts {
		out[i] = int(math.Round(float64(c) * f))
	}
	return out
}

func sumCounts(counts []int) float64 {
	s := 0.0
	for _, c := range counts {
		s += float64(c)
	}
	return s
}

// bucket groups count-vector entries with similar values: n entries whose
// geometric-bucket representative is value.
type bucket struct {
	value float64
	n     float64
}

// bucketCounts quantizes a count vector into geometric buckets (ratio ~1.1)
// so the double sum in Mul is O(buckets²) instead of O(rows·cols).
func bucketCounts(counts []int) []bucket {
	byKey := map[int]*bucket{}
	for _, c := range counts {
		if c == 0 {
			continue
		}
		key := int(math.Round(math.Log(float64(c)) / math.Log(1.1)))
		if b, ok := byKey[key]; ok {
			// Running mean keeps the representative centred in the bucket.
			b.value = (b.value*b.n + float64(c)) / (b.n + 1)
			b.n++
		} else {
			byKey[key] = &bucket{value: float64(c), n: 1}
		}
	}
	// Emit in key order: map iteration order would otherwise vary the
	// float-summation order downstream, producing run-to-run ULP drift in
	// the estimates (the fault tests require byte-identical replays).
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]bucket, 0, len(byKey))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// propagateMulRows estimates the per-row (or, transposed, per-column) count
// vector of a product: row i of the output has expected count
// Σ_j (1 - exp(-hr[i]·hcB[j]·coupling)), evaluated over the bucketed
// opposite-side counts with their replication factor.
func propagateMulRows(rowCounts []int, opposite []bucket, oppositeRep, coupling float64, dimCap int) []int {
	counts := make([]int, len(rowCounts))
	for i, rc := range rowCounts {
		if rc == 0 {
			continue
		}
		exp := 0.0
		for _, b := range opposite {
			exp += b.n * oppositeRep * -math.Expm1(-float64(rc)*b.value*coupling)
		}
		if exp > float64(dimCap) {
			exp = float64(dimCap)
		}
		counts[i] = int(math.Round(exp))
	}
	return counts
}

func transposeMeta(a Meta) Meta {
	return Meta{Rows: a.Cols, Cols: a.Rows, Sparsity: a.Sparsity, RowCounts: a.ColCounts, ColCounts: a.RowCounts}
}

// Add implements Estimator: per-row/column union bound, capped at the
// dimension.
func (MNC) Add(a, b Meta) Meta {
	checkSameDims(a, b, "Add")
	s := a.Sparsity + b.Sparsity - a.Sparsity*b.Sparsity
	out := MetaDims(a.Rows, a.Cols, s)
	out.RowCounts = unionCounts(a.RowCounts, b.RowCounts, int(a.Cols))
	out.ColCounts = unionCounts(a.ColCounts, b.ColCounts, int(a.Rows))
	// If counts are available, derive the sparsity from them; they reflect
	// structure the independence assumption misses. The vectors may be
	// samples, so normalize by their own footprint.
	if len(out.RowCounts) > 0 {
		total := 0
		for _, c := range out.RowCounts {
			total += c
		}
		out.Sparsity = clamp01(float64(total) / (float64(len(out.RowCounts)) * float64(a.Cols)))
	}
	return out
}

func unionCounts(a, b []int, cap int) []int {
	if a == nil || b == nil || len(a) != len(b) {
		return nil
	}
	out := make([]int, len(a))
	for i := range a {
		// Union bound assuming the two patterns overlap proportionally.
		u := float64(a[i]) + float64(b[i]) - float64(a[i])*float64(b[i])/float64(cap)
		if u > float64(cap) {
			u = float64(cap)
		}
		out[i] = int(math.Round(u))
	}
	return out
}

// ElemMul implements Estimator: per-row intersection estimate.
func (MNC) ElemMul(a, b Meta) Meta {
	checkSameDims(a, b, "ElemMul")
	out := MetaDims(a.Rows, a.Cols, a.Sparsity*b.Sparsity)
	if a.RowCounts != nil && b.RowCounts != nil && len(a.RowCounts) == len(b.RowCounts) {
		counts := make([]int, len(a.RowCounts))
		total := 0
		for i := range counts {
			c := int(math.Round(float64(a.RowCounts[i]) * float64(b.RowCounts[i]) / float64(a.Cols)))
			counts[i] = c
			total += c
		}
		out.RowCounts = counts
		out.Sparsity = clamp01(float64(total) / (float64(len(counts)) * float64(a.Cols)))
	}
	return out
}

// Transpose implements Estimator: swap dimensions and count vectors.
func (MNC) Transpose(a Meta) Meta { return transposeMeta(a) }

// Scale implements Estimator: scaling by a nonzero constant preserves
// structure exactly.
func (MNC) Scale(a Meta) Meta { return a }
