package sparsity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"remac/internal/matrix"
)

func TestMetaOf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := matrix.RandSparse(rng, 40, 30, 0.1)
	meta := MetaOf(m)
	if meta.Rows != 40 || meta.Cols != 30 {
		t.Fatalf("dims %dx%d", meta.Rows, meta.Cols)
	}
	if math.Abs(meta.Sparsity-m.Sparsity()) > 1e-12 {
		t.Fatal("sparsity mismatch")
	}
	if len(meta.RowCounts) != 40 || len(meta.ColCounts) != 30 {
		t.Fatal("count vectors missing")
	}
	if int(meta.NNZ()) != m.NNZ() {
		t.Fatalf("NNZ() = %g, want %d", meta.NNZ(), m.NNZ())
	}
}

func TestMetaValid(t *testing.T) {
	if err := MetaDims(10, 10, 0.5).Valid(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	if err := (Meta{Rows: 0, Cols: 10, Sparsity: 0.5}).Valid(); err == nil {
		t.Error("zero rows accepted")
	}
	if err := (Meta{Rows: 10, Cols: 10, Sparsity: 1.5}).Valid(); err == nil {
		t.Error("sparsity > 1 accepted")
	}
}

func TestWithVirtualDims(t *testing.T) {
	m := MetaDims(10, 20, 0.3)
	v := m.WithVirtualDims(10000, 20000)
	if v.Rows != 10000 || v.Cols != 20000 || v.Sparsity != 0.3 {
		t.Fatalf("virtual redim wrong: %+v", v)
	}
}

func TestMetadataMulDense(t *testing.T) {
	// Dense × dense stays dense.
	a := MetaDims(100, 50, 1)
	b := MetaDims(50, 70, 1)
	out := Metadata{}.Mul(a, b)
	if out.Rows != 100 || out.Cols != 70 {
		t.Fatalf("dims %dx%d", out.Rows, out.Cols)
	}
	if out.Sparsity < 0.999 {
		t.Fatalf("dense·dense sparsity = %g", out.Sparsity)
	}
}

func TestMetadataMulVerySparse(t *testing.T) {
	a := MetaDims(1000, 1000, 1e-4)
	b := MetaDims(1000, 1000, 1e-4)
	out := Metadata{}.Mul(a, b)
	// ~ K·sA·sB = 1000·1e-8 = 1e-5.
	if out.Sparsity < 5e-6 || out.Sparsity > 2e-5 {
		t.Fatalf("sparse·sparse sparsity = %g, want ~1e-5", out.Sparsity)
	}
}

func TestMetadataMulDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Metadata{}.Mul(MetaDims(2, 3, 1), MetaDims(4, 5, 1))
}

func TestMetadataAddElemMul(t *testing.T) {
	a := MetaDims(10, 10, 0.2)
	b := MetaDims(10, 10, 0.3)
	add := Metadata{}.Add(a, b)
	want := 0.2 + 0.3 - 0.06
	if math.Abs(add.Sparsity-want) > 1e-12 {
		t.Errorf("Add sparsity = %g, want %g", add.Sparsity, want)
	}
	em := Metadata{}.ElemMul(a, b)
	if math.Abs(em.Sparsity-0.06) > 1e-12 {
		t.Errorf("ElemMul sparsity = %g, want 0.06", em.Sparsity)
	}
}

func TestTransposeSwapsDims(t *testing.T) {
	for _, e := range []Estimator{Metadata{}, MNC{}, Sampling{Fraction: 0.5}} {
		out := e.Transpose(MetaDims(3, 7, 0.5))
		if out.Rows != 7 || out.Cols != 3 {
			t.Errorf("%s: transpose dims %dx%d", e.Name(), out.Rows, out.Cols)
		}
	}
}

// estimateVsActual multiplies two materialized matrices and returns the
// estimated and actual output sparsities.
func estimateVsActual(t *testing.T, e Estimator, a, b *matrix.Matrix) (est, actual float64) {
	t.Helper()
	out := e.Mul(MetaOf(a), MetaOf(b))
	return out.Sparsity, a.Mul(b).Sparsity()
}

func TestMNCMatchesMDOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.RandSparse(rng, 300, 200, 0.05)
	b := matrix.RandSparse(rng, 200, 250, 0.05)
	mncEst, actual := estimateVsActual(t, MNC{}, a, b)
	mdEst, _ := estimateVsActual(t, Metadata{}, a, b)
	if relErr(mncEst, actual) > 0.2 {
		t.Errorf("MNC est %g vs actual %g on uniform data", mncEst, actual)
	}
	if relErr(mdEst, actual) > 0.2 {
		t.Errorf("MD est %g vs actual %g on uniform data", mdEst, actual)
	}
}

func TestMNCBeatsMDOnSkew(t *testing.T) {
	// On zipf-skewed data the uniform assumption overestimates fill-in
	// badly; the count-vector estimate must be closer. This asymmetry is
	// what drives the paper's DP-MD vs DP-MNC gap (Fig 10).
	rng := rand.New(rand.NewSource(3))
	a := matrix.ZipfSparse(rng, 300, 300, 0.02, 2.0)
	b := matrix.ZipfSparse(rng, 300, 300, 0.02, 2.0)
	mncEst, actual := estimateVsActual(t, MNC{}, a, b)
	mdEst, _ := estimateVsActual(t, Metadata{}, a, b)
	if relErr(mncEst, actual) >= relErr(mdEst, actual) {
		t.Errorf("MNC (%g) should beat MD (%g) against actual %g on skewed data", mncEst, mdEst, actual)
	}
}

func relErr(est, actual float64) float64 {
	if actual == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-actual) / actual
}

func TestMNCFallsBackWithoutCounts(t *testing.T) {
	a := MetaDims(100, 100, 0.1) // no count vectors
	b := MetaDims(100, 100, 0.1)
	mnc := MNC{}.Mul(a, b)
	md := Metadata{}.Mul(a, b)
	if mnc.Sparsity != md.Sparsity {
		t.Fatalf("MNC without sketches should equal MD: %g vs %g", mnc.Sparsity, md.Sparsity)
	}
}

func TestMNCPropagatesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := matrix.RandSparse(rng, 50, 40, 0.2)
	b := matrix.RandSparse(rng, 40, 30, 0.2)
	out := MNC{}.Mul(MetaOf(a), MetaOf(b))
	if out.RowCounts == nil || out.ColCounts == nil {
		t.Fatal("MNC must propagate count vectors for chained estimation")
	}
	if len(out.RowCounts) != 50 || len(out.ColCounts) != 30 {
		t.Fatalf("propagated vector lengths %d/%d", len(out.RowCounts), len(out.ColCounts))
	}
}

func TestMNCAddDerivesFromCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := matrix.RandSparse(rng, 60, 60, 0.1)
	b := matrix.RandSparse(rng, 60, 60, 0.1)
	est := MNC{}.Add(MetaOf(a), MetaOf(b)).Sparsity
	actual := a.Add(b).Sparsity()
	if relErr(est, actual) > 0.15 {
		t.Fatalf("MNC Add est %g vs actual %g", est, actual)
	}
}

func TestSamplingBetweenMDAndMNC(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := matrix.ZipfSparse(rng, 200, 200, 0.03, 1.5)
	b := matrix.ZipfSparse(rng, 200, 200, 0.03, 1.5)
	sEst, actual := estimateVsActual(t, Sampling{Fraction: 0.25}, a, b)
	if sEst < 0 || sEst > 1 {
		t.Fatalf("sampling estimate out of range: %g", sEst)
	}
	// Sampling should not be wildly off (same order of magnitude).
	if sEst > 0 && actual > 0 {
		ratio := sEst / actual
		if ratio < 0.1 || ratio > 10 {
			t.Fatalf("sampling estimate %g vs actual %g off by >10x", sEst, actual)
		}
	}
}

func TestSamplingDefaultFraction(t *testing.T) {
	s := Sampling{} // zero Fraction must not divide by zero
	out := s.Mul(MetaDims(10, 10, 0.5), MetaDims(10, 10, 0.5))
	if out.Sparsity < 0 || out.Sparsity > 1 {
		t.Fatal("invalid sparsity with default fraction")
	}
}

func TestPropEstimatesInUnitRange(t *testing.T) {
	ests := []Estimator{Metadata{}, MNC{}, Sampling{Fraction: 0.5}}
	f := func(seed int64, r1, c1, c2 uint8, s1, s2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p := int(r1%20)+2, int(c1%20)+2, int(c2%20)+2
		sa, sb := math.Abs(s1), math.Abs(s2)
		for sa > 1 {
			sa /= 2
		}
		for sb > 1 {
			sb /= 2
		}
		a := matrix.RandSparse(rng, n, k, sa)
		b := matrix.RandSparse(rng, k, p, sb)
		for _, e := range ests {
			out := e.Mul(MetaOf(a), MetaOf(b))
			if out.Sparsity < 0 || out.Sparsity > 1 || math.IsNaN(out.Sparsity) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEstimatorNames(t *testing.T) {
	if (Metadata{}).Name() != "MD" || (MNC{}).Name() != "MNC" || (Sampling{}).Name() != "Sample" {
		t.Fatal("estimator names changed — experiment output depends on them")
	}
}
