package algorithms

import (
	"strings"
	"testing"

	"remac/internal/plan"
)

func TestAllScriptsParse(t *testing.T) {
	for _, n := range append(All, PartialDFP) {
		src, err := Script(n, 7)
		if err != nil {
			t.Fatalf("%v: %v", n, err)
		}
		prog := MustProgram(n, 7)
		if _, err := plan.Build(prog); err != nil {
			t.Fatalf("%v: lowering failed: %v", n, err)
		}
		if n != PartialDFP && !strings.Contains(src, "while") {
			t.Errorf("%v: missing loop", n)
		}
	}
}

func TestIterationCountSubstituted(t *testing.T) {
	src, _ := Script(GD, 42)
	if !strings.Contains(src, "i < 42") {
		t.Fatalf("iteration count not substituted:\n%s", src)
	}
}

func TestSymmetryPragmas(t *testing.T) {
	for _, n := range []Name{DFP, BFGS} {
		prog := MustProgram(n, 3)
		if !prog.Symmetric["H"] {
			t.Errorf("%v: H must be declared symmetric", n)
		}
	}
}

func TestLoopConstantStructure(t *testing.T) {
	// A and b must be loop-constant in every least-squares workload; the
	// model state must not be.
	for _, n := range []Name{GD, DFP, BFGS} {
		p, err := plan.Build(MustProgram(n, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !p.LoopConst["A"] {
			t.Errorf("%v: A should be loop-constant", n)
		}
		if p.LoopConst["x"] {
			t.Errorf("%v: x must not be loop-constant", n)
		}
	}
	// GNMF: V constant, W/H not.
	p, err := plan.Build(MustProgram(GNMF, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !p.LoopConst["V"] || p.LoopConst["W"] || p.LoopConst["H"] {
		t.Error("GNMF loop-constant labels wrong")
	}
}

func TestDefaultIterations(t *testing.T) {
	if DefaultIterations(GD) <= DefaultIterations(DFP) {
		t.Error("GD (first-order) should run more iterations than DFP (quasi-Newton)")
	}
}

func TestReads(t *testing.T) {
	if got := Reads(GNMF); len(got) != 3 || got[0] != "V" {
		t.Errorf("GNMF reads = %v", got)
	}
	if got := Reads(DFP); len(got) != 4 || got[0] != "A" {
		t.Errorf("DFP reads = %v", got)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Script(Name("nope"), 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
