// Package algorithms holds the DML scripts of the paper's evaluation
// workloads: Gradient Descent (GD), Davidon-Fletcher-Powell (DFP),
// Broyden-Fletcher-Goldfarb-Shanno (BFGS) — all solving the least-squares
// problem min ‖Ax − b‖² as in §2.1 — plus GNMF, the §6.3.3 stress case.
// Scripts are parameterized by iteration count.
package algorithms

import (
	"fmt"

	"remac/internal/lang"
)

// Name identifies a workload.
type Name string

// Workload names used throughout the experiments.
const (
	GD         Name = "GD"
	DFP        Name = "DFP"
	BFGS       Name = "BFGS"
	GNMF       Name = "GNMF"
	PartialDFP Name = "PartialDFP"
)

// All lists the full algorithms (PartialDFP is a sub-expression benchmark).
var All = []Name{GD, DFP, BFGS, GNMF}

// DefaultIterations returns the loop trip count used in the experiments:
// quasi-Newton methods converge in few iterations; first-order methods need
// many.
func DefaultIterations(n Name) int {
	switch n {
	case GD:
		return 100
	case GNMF:
		return 50
	default:
		return 15
	}
}

// Script returns the DML source for a workload with the given iteration
// count.
func Script(n Name, iterations int) (string, error) {
	switch n {
	case GD:
		return gdScript(iterations), nil
	case DFP:
		return dfpScript(iterations), nil
	case BFGS:
		return bfgsScript(iterations), nil
	case GNMF:
		return gnmfScript(iterations), nil
	case PartialDFP:
		return partialDFPScript(), nil
	default:
		return "", fmt.Errorf("algorithms: unknown workload %q", n)
	}
}

// MustProgram parses the workload script, panicking on error (the scripts
// are embedded constants; a parse failure is a programming error).
func MustProgram(n Name, iterations int) *lang.Program {
	src, err := Script(n, iterations)
	if err != nil {
		panic(err)
	}
	return lang.MustParse(src)
}

// Reads returns the dataset symbols a workload reads: the design matrix A
// plus per-algorithm extras.
func Reads(n Name) []string {
	if n == GNMF {
		return []string{"V", "W0", "H0"}
	}
	return []string{"A", "b", "H0", "x0"}
}

// gdScript is plain gradient descent: x ← x − α·Aᵀ(Ax − b).
// AᵀA and Aᵀb are the implicit loop-constant subexpressions §6.2.2
// discusses: rewriting the gradient as (AᵀA)x − (Aᵀb) trades per-iteration
// passes over A for one pre-loop matrix product.
func gdScript(iters int) string {
	return fmt.Sprintf(`
A = read("A")
b = read("b")
x = read("x0")
alpha = 0.0001
i = 0
while (i < %d) {
    g = t(A) %%*%% (A %%*%% x) - t(A) %%*%% b
    x = x - alpha * g
    i = i + 1
}
`, iters)
}

// dfpScript is the Davidon-Fletcher-Powell update of Equations 1–2.
func dfpScript(iters int) string {
	return fmt.Sprintf(`
#@symmetric H
A = read("A")
b = read("b")
H = read("H0")
x = read("x0")
alpha = 0.0001
i = 0
while (i < %d) {
    g = t(A) %%*%% (A %%*%% x - b)
    d = H %%*%% g
    H = H - (H %%*%% t(A) %%*%% A %%*%% d %%*%% t(d) %%*%% t(A) %%*%% A %%*%% H) / as.scalar(t(d) %%*%% t(A) %%*%% A %%*%% H %%*%% t(A) %%*%% A %%*%% d) + (d %%*%% t(d)) / as.scalar(2 * (t(d) %%*%% t(A) %%*%% A %%*%% d))
    x = x - alpha * d
    i = i + 1
}
`, iters)
}

// bfgsScript is the BFGS inverse-Hessian update with s = −α·Hg and
// y = g' − g (two gradient evaluations per iteration, like the paper's
// implementation atop the same least-squares objective).
func bfgsScript(iters int) string {
	return fmt.Sprintf(`
#@symmetric H
A = read("A")
b = read("b")
H = read("H0")
x = read("x0")
alpha = 0.0001
i = 0
while (i < %d) {
    g = t(A) %%*%% (A %%*%% x - b)
    s = 0 - alpha * (H %%*%% g)
    x = x + s
    gn = t(A) %%*%% (A %%*%% x - b)
    y = gn - g
    sy = as.scalar(t(s) %%*%% y)
    H = H + (sy + as.scalar(t(y) %%*%% H %%*%% y)) * (s %%*%% t(s)) / (sy * sy) - (H %%*%% y %%*%% t(s) + s %%*%% t(y) %%*%% H) / sy
    i = i + 1
}
`, iters)
}

// gnmfScript is Gaussian non-negative matrix factorization with
// multiplicative updates plus the reconstruction objective — the
// combinatorial stress case of §6.3.3. The W·H product appears in the
// objective and (as a window) inside both update chains, so the search
// space of combinations explodes.
func gnmfScript(iters int) string {
	return fmt.Sprintf(`
V = read("V")
W = read("W0")
H = read("H0")
i = 0
obj = 0
while (i < %d) {
    # Reconstruction loss via the trace expansion (never materializes WH):
    # ||V - WH||^2 = sum(V*V) - 2 tr(H' W'V) + tr((W'W)(HH'))
    obj = sum(V * V) - 2 * sum((t(W) %%*%% V) * H) + sum((t(W) %%*%% W) * (H %%*%% t(H)))
    H = H * (t(W) %%*%% V) / (t(W) %%*%% W %%*%% H)
    W = W * (V %%*%% t(H)) / (W %%*%% H %%*%% t(H))
    i = i + 1
}
`, iters)
}

// partialDFPScript is the longest DFP subexpression the paper's SPORES
// build supports: dᵀAᵀAHAᵀAd, evaluated once (no loop).
func partialDFPScript() string {
	return `
#@symmetric H
A = read("A")
H = read("H0")
d = read("x0")
r = t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d
`
}
