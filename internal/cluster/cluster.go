// Package cluster simulates the distributed execution environment the paper
// evaluates on: a Spark cluster of commodity nodes connected by 1 Gbps
// Ethernet, with matrices hash-partitioned into fixed-size blocks.
//
// The simulator does not move bytes over a real network. Instead, every
// distributed operator charges the cluster for the compute (FLOP) and
// transmission (collect / broadcast / shuffle / dfs) it would perform, and
// the cluster maintains a simulated wall clock derived from the hardware
// constants. This is the substitution documented in DESIGN.md: the paper's
// findings are about plan choice, and plan rankings depend only on these
// cost terms, which are accounted byte- and FLOP-accurately.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"remac/internal/fault"
)

// Primitive enumerates the four transmission primitives of the cost model
// (§4.2): collection of data to the driver, broadcast of data to the
// cluster, shuffle among nodes, and distributed-filesystem I/O.
type Primitive int

const (
	Collect Primitive = iota
	Broadcast
	Shuffle
	DFS
	numPrimitives
)

// Primitives lists all transmission primitives in declaration order.
var Primitives = []Primitive{Collect, Broadcast, Shuffle, DFS}

// String returns the paper's name for the primitive.
func (p Primitive) String() string {
	switch p {
	case Collect:
		return "collect"
	case Broadcast:
		return "broadcast"
	case Shuffle:
		return "shuffle"
	case DFS:
		return "dfs"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// Config describes the simulated cluster topology and speeds. The defaults
// mirror the paper's testbed: seven nodes, each with two six-core 2 GHz
// Xeons, 32 GB DRAM, one hard disk, 1 Gbps Ethernet.
type Config struct {
	Nodes         int     // worker nodes (one also hosts the driver)
	CoresPerNode  int     // physical cores per node
	FlopsPerCore  float64 // peak double-precision FLOP/s per core
	NetBandwidth  float64 // per-link network bandwidth, bytes/s
	DiskBandwidth float64 // per-node dfs bandwidth, bytes/s
	DriverMemory  int64   // bytes of driver heap for local-mode execution
	BlockSize     int     // square block edge for partitioned matrices
	// Efficiency scales peak FLOP/s down to attainable throughput for
	// memory-bound matrix kernels (BLAS on commodity Xeons reaches a
	// fraction of peak; sparse kernels much less).
	Efficiency float64
	// JobOverheadSec is the fixed scheduling/launch latency of one
	// distributed operator (Spark stage submission, task dispatch). Local
	// operators pay nothing. This term is what makes many small
	// distributed operations costlier than one hoisted computation.
	JobOverheadSec float64
	// SparsePenalty divides the attainable FLOP/s for sparse kernels
	// (irregular access patterns run far below dense GEMM throughput).
	SparsePenalty float64
	// NoLocalMode disables driver-local execution: every operator runs
	// distributed (pbdR and SciDB, §6.4, "keep running in distributed
	// mode").
	NoLocalMode bool
	// DenseOnly treats every matrix as dense (pbdR "treats sparse matrices
	// as dense ones").
	DenseOnly bool
}

// DefaultConfig returns the paper's seven-node testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:          7,
		CoresPerNode:   12,
		FlopsPerCore:   8e9,   // 2 GHz × 4-wide FMA
		NetBandwidth:   125e6, // 1 Gbps
		DiskBandwidth:  150e6,
		DriverMemory:   20 << 30, // usable fraction of 32 GB
		BlockSize:      1000,
		Efficiency:     0.1,
		JobOverheadSec: 0.8,
		SparsePenalty:  6,
	}
}

// SingleNodeConfig returns the §6 single-node comparison environment with
// generous memory ("a single-node environment with sufficient memory").
func SingleNodeConfig() Config {
	c := DefaultConfig()
	c.Nodes = 1
	// One 32 GB node: enough memory to run (the paper's "sufficient
	// memory") but not enough to keep a 30 GB dataset plus intermediates
	// resident — operands beyond this budget re-read from disk, which is
	// exactly why hoisting AᵀA/ddᵀ pays off on a single node (Fig 3b).
	c.DriverMemory = 24 << 30
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: Nodes = %d, need >= 1", c.Nodes)
	case c.CoresPerNode < 1:
		return fmt.Errorf("cluster: CoresPerNode = %d, need >= 1", c.CoresPerNode)
	case c.FlopsPerCore <= 0:
		return fmt.Errorf("cluster: FlopsPerCore = %g, need > 0", c.FlopsPerCore)
	case c.NetBandwidth <= 0:
		return fmt.Errorf("cluster: NetBandwidth = %g, need > 0", c.NetBandwidth)
	case c.DiskBandwidth <= 0:
		return fmt.Errorf("cluster: DiskBandwidth = %g, need > 0", c.DiskBandwidth)
	case c.BlockSize < 1:
		return fmt.Errorf("cluster: BlockSize = %d, need >= 1", c.BlockSize)
	case c.Efficiency <= 0 || c.Efficiency > 1:
		return fmt.Errorf("cluster: Efficiency = %g, need (0,1]", c.Efficiency)
	case c.DriverMemory < 0:
		return fmt.Errorf("cluster: DriverMemory = %d, need >= 0", c.DriverMemory)
	case c.JobOverheadSec < 0:
		return fmt.Errorf("cluster: JobOverheadSec = %g, need >= 0", c.JobOverheadSec)
	case c.SparsePenalty < 1:
		return fmt.Errorf("cluster: SparsePenalty = %g, need >= 1", c.SparsePenalty)
	}
	return nil
}

// Workers returns the number of parallel workers (paper: six Spark workers
// on seven nodes — one node hosts the driver; with a single node, the one
// node does both).
func (c Config) Workers() int {
	if c.Nodes <= 1 {
		return 1
	}
	return c.Nodes - 1
}

// ClusterFlops returns the aggregate attainable FLOP/s of all workers.
func (c Config) ClusterFlops() float64 {
	return float64(c.Workers()*c.CoresPerNode) * c.FlopsPerCore * c.Efficiency
}

// LocalFlops returns the attainable FLOP/s of the driver node alone.
func (c Config) LocalFlops() float64 {
	return float64(c.CoresPerNode) * c.FlopsPerCore * c.Efficiency
}

// TransmitWeight returns w_pr of Eq. 5 — the reciprocal of the effective
// transmission speed of the primitive, in seconds per byte. On a single
// node the network primitives degenerate to in-memory copies; only disk
// I/O keeps its cost.
func (c Config) TransmitWeight(p Primitive) float64 {
	if c.Workers() == 1 && p != DFS {
		const memCopyBandwidth = 10e9
		return 1 / memCopyBandwidth
	}
	switch p {
	case Collect:
		// Everything funnels into the driver's single link.
		return 1 / c.NetBandwidth
	case Broadcast:
		// Torrent-style broadcast: pipelined across workers, bounded by a
		// single link but not multiplied by the full fan-out.
		return 1.5 / c.NetBandwidth
	case Shuffle:
		// All-to-all exchange proceeds on every link in parallel.
		return 1 / (c.NetBandwidth * float64(c.Workers()))
	case DFS:
		// Reads/writes are striped across the nodes' disks.
		return 1 / (c.DiskBandwidth * float64(c.Workers()))
	default:
		panic(fmt.Sprintf("cluster: unknown primitive %d", p))
	}
}

// Stats accumulates the simulated execution costs of a program run.
type Stats struct {
	FLOP         float64                // total floating point operations
	ComputeTime  float64                // seconds
	TransmitTime float64                // seconds
	Bytes        [numPrimitives]float64 // per-primitive data volume
	WorkerBytes  []float64              // per-worker processed data volume
	Ops          int                    // operator executions charged

	// Fault-injection accounting (all zero on a perfect cluster).
	Retries       int     // retry attempts after transmission errors
	RecoverySec   float64 // backoff, retransmission, straggling and recomputation seconds
	RecomputeFLOP float64 // FLOP re-executed to rebuild lost blocks (not in FLOP)
	FailedWorkers int     // worker-failure events injected

	// Integrity accounting (all zero unless corruption was injected or a
	// verification mode enabled; see internal/integrity).
	CorruptionsInjected int     // corruption events that landed on a payload
	CorruptionsDigest   int     // corruptions caught by a block digest
	CorruptionsABFT     int     // corruptions caught by ABFT checksum validation
	IntegrityRepairs    int     // lineage repair attempts for corrupted blocks
	RepairSec           float64 // repair attempt seconds (included in RecoverySec)
	VerifySec           float64 // digest/ABFT/scan seconds (included in ComputeTime)

	// Coded-recovery accounting (all zero unless the coded recovery policy
	// is enabled; see internal/distmat's coded layer).
	CodedRecoveries int     // k-of-n decode recoveries (no recomputation)
	DecodeSec       float64 // decode seconds (included in RecoverySec)
	EncodeFLOP      float64 // parity encoding FLOP (included in FLOP)
}

// TotalTime returns the simulated wall-clock seconds, recovery included.
func (s Stats) TotalTime() float64 { return s.ComputeTime + s.TransmitTime + s.RecoverySec }

// BytesFor returns the accumulated volume of one primitive.
func (s Stats) BytesFor(p Primitive) float64 { return s.Bytes[p] }

// TotalBytes returns the volume across all primitives.
func (s Stats) TotalBytes() float64 {
	t := 0.0
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// Cluster is a simulated cluster: a configuration plus a mutable cost
// accumulator. It is safe for concurrent use.
type Cluster struct {
	cfg Config

	mu    sync.Mutex
	stats Stats
	inj   *fault.Injector
	// backoffBase is the first-retry delay of the attached plan.
	backoffBase float64
	// onFault receives the accounted consequence of each fired event, after
	// the cluster's own bookkeeping and outside the lock (the observer may
	// charge recovery back into the cluster).
	onFault func(FaultCharge)
	// codedSpare is the number of parity blocks (n−k) of the coded recovery
	// policy; when positive, up to codedSpare stragglers per charge are
	// masked (the stage takes the first k-of-n completions) and forwarded to
	// the observer for decode settlement instead of stretching the operator.
	codedSpare int
}

// New returns a cluster for the configuration. It panics on an invalid
// configuration (programmer error); CLI front-ends should use NewChecked.
func New(cfg Config) *Cluster {
	c, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NewChecked returns a cluster for the configuration, or the validation
// error for an invalid one.
func NewChecked(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, stats: Stats{WorkerBytes: make([]float64, cfg.Workers())}}, nil
}

// FaultCharge is the accounted consequence of one fired fault event: the
// recovery seconds and retransmitted bytes the cluster added to its stats.
type FaultCharge struct {
	Event       fault.Event
	RecoverySec float64
	Bytes       [numPrimitives]float64
	// CodedMasked marks a straggler absorbed by the coded policy's spare
	// blocks: the cluster charged nothing, and the runtime settles the
	// k-of-n decode of the charging operator instead (see SetCoded).
	CodedMasked bool
}

// SetFaults attaches a fault plan. Every subsequent Charge* call advances
// the plan's injector across the charge's clock window and accounts the
// fired events: stragglers stretch the charged operator, transmission
// errors retry the failed task (capped exponential backoff plus one
// worker's share of the transmission), and worker
// failures are counted for the runtime's lazy lineage recovery. observer
// (optional) is invoked once per fired event, outside the cluster lock.
// A nil plan detaches fault injection.
func (c *Cluster) SetFaults(p *fault.Plan, observer func(FaultCharge)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inj = p.NewInjector()
	c.backoffBase = p.BackoffBase()
	c.onFault = observer
}

// SetCoded enables (spare > 0) or disables (spare <= 0) coded straggler
// masking: with p = n−k spare blocks per coded operator, a stage needs only
// the first k of its n block tasks, so up to p stragglers per charge are
// absorbed — no stretch is charged, and the masked event is forwarded to
// the fault observer (CodedMasked set) for the runtime to settle the decode.
// Stragglers beyond the spare budget stretch the operator as usual.
func (c *Cluster) SetCoded(spare int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if spare < 0 {
		spare = 0
	}
	c.codedSpare = spare
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// profile is the priced shape of one charge, shared by every Charge* entry
// point so fault handling sees a uniform view of the operator.
type profile struct {
	flop        float64
	computeSec  float64
	transmitSec float64
	bytes       [numPrimitives]float64
	countOp     bool
}

func (p profile) totalSec() float64 { return p.computeSec + p.transmitSec }

// ChargeProfile adds a fully-priced operator execution: the times are taken
// as given rather than recomputed from rates, because the cost model may
// include penalties (job overhead, sparse-kernel efficiency, spill factors)
// that plain rate arithmetic would drop.
func (c *Cluster) ChargeProfile(flop, computeSec, transmitSec float64, bytes []float64) {
	prof := profile{flop: flop, computeSec: computeSec, transmitSec: transmitSec, countOp: true}
	for i, b := range bytes {
		if i < len(prof.bytes) {
			prof.bytes[i] += b
		}
	}
	c.charge(prof)
}

// ChargeCompute adds flop to the accumulator, timed at distributed or local
// speed.
func (c *Cluster) ChargeCompute(flop float64, local bool) {
	speed := c.cfg.ClusterFlops()
	if local {
		speed = c.cfg.LocalFlops()
	}
	c.charge(profile{flop: flop, computeSec: flop / speed, countOp: true})
}

// ChargeTransmit adds a transmission of the given volume.
func (c *Cluster) ChargeTransmit(p Primitive, bytes float64) {
	if bytes <= 0 {
		return
	}
	var prof profile
	prof.bytes[p] = bytes
	prof.transmitSec = c.cfg.TransmitWeight(p) * bytes
	c.charge(prof)
}

// charge applies one priced profile and, when a fault plan is attached,
// fires the events falling inside the charge's clock window. The injection
// window is measured on the work clock (compute + transmit, excluding
// RecoverySec): fault rates expose useful work only, so recovery time never
// breeds further faults and the accounting cannot feed back on itself (with
// per-hour rates above an operator's inverse duration, a total clock
// including recovery would otherwise diverge).
func (c *Cluster) charge(prof profile) {
	c.mu.Lock()
	before := c.stats.ComputeTime + c.stats.TransmitTime
	c.stats.FLOP += prof.flop
	c.stats.ComputeTime += prof.computeSec
	c.stats.TransmitTime += prof.transmitSec
	for i, b := range prof.bytes {
		c.stats.Bytes[i] += b
	}
	if prof.countOp {
		c.stats.Ops++
	}
	var fired []FaultCharge
	if c.inj != nil {
		fired = c.injectLocked(before, c.stats.ComputeTime+c.stats.TransmitTime, prof)
	}
	observer := c.onFault
	c.mu.Unlock()
	if observer != nil {
		for _, fc := range fired {
			observer(fc)
		}
	}
}

// maxBackoffDoublings caps the retry delay at base·2⁶, the usual bound in
// capped-exponential-backoff retry policies.
const maxBackoffDoublings = 6

// injectLocked accounts the fault events in the window (from, to]: the
// retry/backoff/straggling costs land in RecoverySec (so the clock keeps
// advancing deterministically) and retransmitted bytes in Bytes. Worker
// failures are only counted here — the lost blocks are lazily recomputed by
// the runtime when next used (see distmat's lineage repair). Recovery
// charges themselves are not re-injected, so a fault can never cascade
// unboundedly within one charge.
func (c *Cluster) injectLocked(from, to float64, prof profile) []FaultCharge {
	events := c.inj.Advance(from, to)
	if len(events) == 0 {
		return nil
	}
	fired := make([]FaultCharge, 0, len(events))
	retries := 0
	stretched := 1.0
	masked := 0
	for _, ev := range events {
		fc := FaultCharge{Event: ev}
		switch ev.Kind {
		case fault.Straggler:
			// Under the coded policy a stage completes on the first k of
			// its n block tasks, so the first n−k stragglers of a charge
			// are absorbed: no stretch, just the decode the runtime settles
			// from the forwarded event.
			if masked < c.codedSpare {
				masked++
				fc.CodedMasked = true
				break
			}
			factor := ev.Factor
			if factor <= 1 {
				factor = fault.DefaultStragglerFactor
			}
			// The stage waits on its slowest task: the operator stretches
			// to the straggler factor. Straggling tasks idle in parallel,
			// so several stragglers within one charge cost the maximum
			// stretch, not the sum.
			if factor > stretched {
				fc.RecoverySec = (factor - stretched) * prof.totalSec()
				stretched = factor
			}
		case fault.TransmissionError:
			// Capped exponential backoff per consecutive retry of one
			// operator, then re-execute the transmission (or, for
			// compute-only operators, re-run the task). Without the cap a
			// long operator collecting tens of errors in one charge would
			// owe 2^tens delays.
			exp := retries
			if exp > maxBackoffDoublings {
				exp = maxBackoffDoublings
			}
			delay := c.backoffBase * math.Pow(2, float64(exp))
			retries++
			// One in-flight task fails, so one worker's share of the
			// operator re-runs — stages retry tasks, not themselves.
			w := float64(c.cfg.Workers())
			if prof.transmitSec > 0 {
				fc.RecoverySec = delay + prof.transmitSec/w
				for i, b := range prof.bytes {
					fc.Bytes[i] = b / w
				}
			} else {
				fc.RecoverySec = delay + prof.computeSec/w
			}
			c.stats.Retries++
		case fault.WorkerFailure:
			c.stats.FailedWorkers++
		case fault.Corruption:
			// Corruption carries no intrinsic charge: whether the flipped
			// payload bit costs a repair or a wrong answer is decided by the
			// runtime's verification layer, which observes the forwarded
			// event (see distmat's integrity settlement).
		}
		c.stats.RecoverySec += fc.RecoverySec
		for i, b := range fc.Bytes {
			c.stats.Bytes[i] += b
		}
		fired = append(fired, fc)
	}
	return fired
}

// ChargeRecovery accounts lineage or checkpoint recovery work performed by
// the runtime after a worker failure: sec lands in RecoverySec, flop in
// RecomputeFLOP and bytes in the per-primitive volumes. Recovery charges
// deliberately do not consult the fault injector.
func (c *Cluster) ChargeRecovery(flop, sec float64, bytes [4]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.RecomputeFLOP += flop
	c.stats.RecoverySec += sec
	for i, b := range bytes {
		c.stats.Bytes[i] += b
	}
}

// ChargeCodedDecode accounts one k-of-n decode recovery performed by the
// runtime's coded layer: sec lands in RecoverySec and the DecodeSec
// attribution, bytes (reconstructed blocks re-shuffled to their homes) in
// the per-primitive volumes, and the recovery is counted. No FLOP is
// recomputed — that is the point of the coded policy. Like ChargeRecovery,
// decode charges do not consult the fault injector.
func (c *Cluster) ChargeCodedDecode(sec float64, bytes [4]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.RecoverySec += sec
	c.stats.DecodeSec += sec
	c.stats.CodedRecoveries++
	for i, b := range bytes {
		c.stats.Bytes[i] += b
	}
}

// AddEncodeFLOP attributes parity-encoding work to the EncodeFLOP counter.
// Like the integrity attributions it only moves a counter: the encoding
// seconds, FLOP and bytes are charged through ChargeProfile, so reports can
// split the coded policy's overhead out of the totals without double-booking.
func (c *Cluster) AddEncodeFLOP(flop float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.EncodeFLOP += flop
}

// IntegrityCharge attributes integrity-layer outcomes to the stats counters.
// It only moves counters: the underlying seconds are charged through
// ChargeProfile (verification work) and ChargeRecovery (repairs), so the
// attribution fields let reports split totals without double-booking time.
type IntegrityCharge struct {
	Injected  int     // corruption events that landed on a payload
	ByDigest  int     // caught by a block digest
	ByABFT    int     // caught by ABFT checksum validation
	Repairs   int     // lineage repair attempts
	RepairSec float64 // seconds of those attempts (already in RecoverySec)
	VerifySec float64 // verification seconds (already in ComputeTime)
}

// AddIntegrity accumulates integrity attribution counters.
func (c *Cluster) AddIntegrity(ic IntegrityCharge) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.CorruptionsInjected += ic.Injected
	c.stats.CorruptionsDigest += ic.ByDigest
	c.stats.CorruptionsABFT += ic.ByABFT
	c.stats.IntegrityRepairs += ic.Repairs
	c.stats.RepairSec += ic.RepairSec
	c.stats.VerifySec += ic.VerifySec
}

// ChargeWorker records that worker w processed the given data volume (used
// for the work-balance analysis, Fig 13).
func (c *Cluster) ChargeWorker(w int, bytes float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.WorkerBytes[w%len(c.stats.WorkerBytes)] += bytes
}

// Stats returns a snapshot of the accumulated costs.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.WorkerBytes = append([]float64(nil), c.stats.WorkerBytes...)
	return s
}

// Reset clears the accumulated costs.
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{WorkerBytes: make([]float64, c.cfg.Workers())}
}

// PartitionOf returns the worker a block at grid position (br, bc) hashes
// to, reproducing the SystemDS hash partition scheme the paper inherits.
func (c *Cluster) PartitionOf(br, bc int) int {
	h := uint64(br)*0x9E3779B97F4A7C15 ^ uint64(bc)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(c.cfg.Workers()))
}
