package cluster

import (
	"math"
	"reflect"
	"testing"

	"remac/internal/fault"
)

// faultedCluster attaches an explicit plan so tests control exactly when
// each event fires on the simulated clock.
func faultedCluster(t *testing.T, observer func(FaultCharge), events ...fault.Event) *Cluster {
	t.Helper()
	c := New(DefaultConfig())
	c.SetFaults(fault.FromEvents(events...), observer)
	return c
}

func TestStragglerStretchesCharge(t *testing.T) {
	c := faultedCluster(t, nil, fault.Event{At: 0.5, Kind: fault.Straggler, Factor: 3})
	c.ChargeProfile(1e9, 1.0, 0.5, nil) // clock 0 -> 1.5, event fires
	s := c.Stats()
	if want := 2 * 1.5; math.Abs(s.RecoverySec-want) > 1e-12 {
		t.Fatalf("RecoverySec = %g, want %g ((factor-1) × op seconds)", s.RecoverySec, want)
	}
	if s.Retries != 0 || s.FailedWorkers != 0 {
		t.Fatalf("straggler flagged as retry/failure: %+v", s)
	}
	if s.TotalTime() != s.ComputeTime+s.TransmitTime+s.RecoverySec {
		t.Fatal("TotalTime must include recovery")
	}
}

func TestStragglersInOneChargeTakeMaxStretch(t *testing.T) {
	// Straggling tasks idle in parallel: a stage with several stragglers
	// finishes with its slowest one, so the stretches must not stack.
	c := faultedCluster(t, nil,
		fault.Event{At: 0.2, Kind: fault.Straggler, Factor: 2},
		fault.Event{At: 0.4, Kind: fault.Straggler, Factor: 3},
		fault.Event{At: 0.6, Kind: fault.Straggler, Factor: 2},
	)
	c.ChargeProfile(1e9, 1.0, 0.0, nil) // all three fire in one charge
	s := c.Stats()
	if want := (3 - 1) * 1.0; math.Abs(s.RecoverySec-want) > 1e-12 {
		t.Fatalf("RecoverySec = %g, want %g (max stretch, not sum)", s.RecoverySec, want)
	}
}

func TestTransmissionErrorRetriesWithBackoffAndBytes(t *testing.T) {
	c := faultedCluster(t, nil,
		fault.Event{At: 0.1, Kind: fault.TransmissionError},
		fault.Event{At: 0.2, Kind: fault.TransmissionError},
	)
	bytes := []float64{0, 1e6, 2e6, 0}
	c.ChargeProfile(0, 0.2, 0.8, bytes) // both events fire in (0, 1]
	s := c.Stats()
	if s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
	// Backoff 1s then 2s, plus one failed task's share (1/W) of the 0.8s
	// transmission each — stages retry tasks, not themselves.
	w := float64(c.Config().Workers())
	if want := (1 + 0.8/w) + (2 + 0.8/w); math.Abs(s.RecoverySec-want) > 1e-12 {
		t.Fatalf("RecoverySec = %g, want %g", s.RecoverySec, want)
	}
	// Each retry retransmits one task's share of the bytes on top of the
	// original charge.
	if got, want := s.BytesFor(Broadcast), 1e6*(1+2/w); math.Abs(got-want) > 1e-6 {
		t.Fatalf("broadcast bytes = %g, want %g (original + 2 task retries)", got, want)
	}
	if got, want := s.BytesFor(Shuffle), 2e6*(1+2/w); math.Abs(got-want) > 1e-6 {
		t.Fatalf("shuffle bytes = %g, want %g", got, want)
	}
}

func TestTransmissionErrorOnComputeOnlyOpRetriesCompute(t *testing.T) {
	c := faultedCluster(t, nil, fault.Event{At: 1e-6, Kind: fault.TransmissionError})
	c.ChargeCompute(1e12, false) // no transmission: the task re-runs
	s := c.Stats()
	if s.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", s.Retries)
	}
	if want := 1 + s.ComputeTime/float64(c.Config().Workers()); math.Abs(s.RecoverySec-want) > 1e-9 {
		t.Fatalf("RecoverySec = %g, want backoff + one task's compute (%g)", s.RecoverySec, want)
	}
	if s.TotalBytes() != 0 {
		t.Fatal("compute-only retry must not invent bytes")
	}
}

func TestWorkerFailureCountedAndObserved(t *testing.T) {
	var seen []FaultCharge
	c := faultedCluster(t, func(fc FaultCharge) { seen = append(seen, fc) },
		fault.Event{At: 0.01, Kind: fault.WorkerFailure, Worker: 4})
	c.ChargeCompute(1e12, false)
	s := c.Stats()
	if s.FailedWorkers != 1 {
		t.Fatalf("FailedWorkers = %d, want 1", s.FailedWorkers)
	}
	if s.RecoverySec != 0 {
		t.Fatal("a failure alone charges nothing; recovery is lazy")
	}
	if len(seen) != 1 || seen[0].Event.Kind != fault.WorkerFailure || seen[0].Event.Worker != 4 {
		t.Fatalf("observer saw %+v", seen)
	}
}

func TestChargeRecoveryAccounting(t *testing.T) {
	c := New(DefaultConfig())
	c.ChargeRecovery(5e9, 2.5, [4]float64{0, 0, 0, 1e6})
	s := c.Stats()
	if s.RecomputeFLOP != 5e9 || s.RecoverySec != 2.5 || s.BytesFor(DFS) != 1e6 {
		t.Fatalf("recovery accounting wrong: %+v", s)
	}
	if s.FLOP != 0 || s.Ops != 0 {
		t.Fatal("recovery must not count as a charged operator")
	}
}

func TestFaultsDisabledIsZeroOverhead(t *testing.T) {
	run := func(c *Cluster) Stats {
		c.ChargeProfile(1e9, 1, 0.5, []float64{1, 2, 3, 4})
		c.ChargeCompute(2e9, true)
		c.ChargeTransmit(Collect, 1e6)
		return c.Stats()
	}
	plain := run(New(DefaultConfig()))
	detached := New(DefaultConfig())
	detached.SetFaults(nil, nil)
	got := run(detached)
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("nil plan changed stats:\n%+v\n%+v", plain, got)
	}
	if plain.Retries != 0 || plain.RecoverySec != 0 || plain.RecomputeFLOP != 0 || plain.FailedWorkers != 0 {
		t.Fatalf("fault fields nonzero without faults: %+v", plain)
	}
}

func TestFaultSequenceDeterministic(t *testing.T) {
	plan := func() *fault.Plan {
		return fault.NewPlan(fault.Config{
			Seed:                  9,
			WorkerFailuresPerHour: 400,
			TransmitErrorsPerHour: 800,
			StragglersPerHour:     400,
			Workers:               6,
		})
	}
	run := func() Stats {
		c := New(DefaultConfig())
		c.SetFaults(plan(), nil)
		for i := 0; i < 200; i++ {
			c.ChargeProfile(1e9, 0.6, 0.4, []float64{0, 1e6, 1e6, 0})
		}
		return c.Stats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Retries == 0 || a.FailedWorkers == 0 || a.RecoverySec == 0 {
		t.Fatalf("rates this high must fire every kind: %+v", a)
	}
}
