package cluster

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := SingleNodeConfig().Validate(); err != nil {
		t.Fatalf("single-node config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Nodes = -3 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.CoresPerNode = -1 },
		func(c *Config) { c.FlopsPerCore = 0 },
		func(c *Config) { c.FlopsPerCore = -1e9 },
		func(c *Config) { c.NetBandwidth = 0 },
		func(c *Config) { c.NetBandwidth = -1 },
		func(c *Config) { c.DiskBandwidth = 0 },
		func(c *Config) { c.DiskBandwidth = -150e6 },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.BlockSize = -1000 },
		func(c *Config) { c.Efficiency = 0 },
		func(c *Config) { c.Efficiency = -0.1 },
		func(c *Config) { c.Efficiency = 1.5 },
		func(c *Config) { c.DriverMemory = -1 },
		func(c *Config) { c.JobOverheadSec = -0.5 },
		func(c *Config) { c.SparsePenalty = 0.5 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// Boundary values that must remain valid.
	ok := DefaultConfig()
	ok.Efficiency = 1
	ok.JobOverheadSec = 0
	ok.SparsePenalty = 1
	if err := ok.Validate(); err != nil {
		t.Errorf("boundary config rejected: %v", err)
	}
}

func TestWorkersExcludesDriver(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Workers() != 6 {
		t.Errorf("Workers() = %d, want 6 (paper: six Spark workers)", cfg.Workers())
	}
	if SingleNodeConfig().Workers() != 1 {
		t.Error("single node must still have one worker")
	}
}

func TestClusterVsLocalFlops(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ClusterFlops() <= cfg.LocalFlops() {
		t.Error("cluster aggregate FLOP/s should exceed single node")
	}
	ratio := cfg.ClusterFlops() / cfg.LocalFlops()
	if math.Abs(ratio-6) > 1e-9 {
		t.Errorf("cluster/local ratio = %g, want 6", ratio)
	}
}

func TestTransmitWeights(t *testing.T) {
	cfg := DefaultConfig()
	// Shuffle runs on all links in parallel, so its per-byte weight must be
	// cheaper than collect which funnels into one link.
	if cfg.TransmitWeight(Shuffle) >= cfg.TransmitWeight(Collect) {
		t.Error("shuffle should be cheaper per byte than collect")
	}
	// Broadcast carries a fan-out penalty over a plain collect.
	if cfg.TransmitWeight(Broadcast) <= cfg.TransmitWeight(Collect) {
		t.Error("broadcast should be costlier per byte than collect")
	}
	for _, p := range Primitives {
		if w := cfg.TransmitWeight(p); w <= 0 {
			t.Errorf("weight for %v = %g, want > 0", p, w)
		}
	}
}

func TestChargeAccumulates(t *testing.T) {
	c := New(DefaultConfig())
	c.ChargeCompute(1e9, false)
	c.ChargeCompute(1e9, true)
	c.ChargeTransmit(Broadcast, 1e6)
	c.ChargeTransmit(Shuffle, 2e6)
	s := c.Stats()
	if s.FLOP != 2e9 {
		t.Errorf("FLOP = %g, want 2e9", s.FLOP)
	}
	if s.Ops != 2 {
		t.Errorf("Ops = %d, want 2", s.Ops)
	}
	if s.BytesFor(Broadcast) != 1e6 || s.BytesFor(Shuffle) != 2e6 {
		t.Error("per-primitive bytes wrong")
	}
	if s.TotalBytes() != 3e6 {
		t.Errorf("TotalBytes = %g, want 3e6", s.TotalBytes())
	}
	if s.TotalTime() != s.ComputeTime+s.TransmitTime {
		t.Error("TotalTime mismatch")
	}
	// Local compute of the same FLOP must take longer than distributed.
	c2 := New(DefaultConfig())
	c2.ChargeCompute(1e9, false)
	distributed := c2.Stats().ComputeTime
	c2.Reset()
	c2.ChargeCompute(1e9, true)
	local := c2.Stats().ComputeTime
	if local <= distributed {
		t.Error("local compute should be slower than distributed for same FLOP")
	}
}

func TestChargeTransmitIgnoresNonPositive(t *testing.T) {
	c := New(DefaultConfig())
	c.ChargeTransmit(Collect, 0)
	c.ChargeTransmit(Collect, -5)
	if c.Stats().TotalBytes() != 0 {
		t.Error("non-positive volumes must be ignored")
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultConfig())
	c.ChargeCompute(1, false)
	c.ChargeWorker(0, 100)
	c.Reset()
	s := c.Stats()
	if s.FLOP != 0 || s.TotalBytes() != 0 || s.WorkerBytes[0] != 0 {
		t.Error("Reset left residue")
	}
}

func TestWorkerBytesSnapshotIsolated(t *testing.T) {
	c := New(DefaultConfig())
	c.ChargeWorker(0, 10)
	s := c.Stats()
	s.WorkerBytes[0] = 999
	if c.Stats().WorkerBytes[0] != 10 {
		t.Error("snapshot aliases internal state")
	}
}

func TestConcurrentCharging(t *testing.T) {
	c := New(DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.ChargeCompute(1, false)
				c.ChargeTransmit(Shuffle, 1)
				c.ChargeWorker(j, 1)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.FLOP != 3200 || s.BytesFor(Shuffle) != 3200 {
		t.Fatalf("lost updates: FLOP=%g shuffle=%g", s.FLOP, s.BytesFor(Shuffle))
	}
}

func TestConcurrentChargeProfile(t *testing.T) {
	c := New(DefaultConfig())
	bytes := []float64{1, 2, 3, 4}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.ChargeProfile(5, 0.25, 0.5, bytes)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	const n = 16 * 200
	if s.Ops != n || s.FLOP != 5*n || s.ComputeTime != 0.25*n || s.TransmitTime != 0.5*n {
		t.Fatalf("lost profile updates: %+v", s)
	}
	for i, p := range Primitives {
		if got := s.BytesFor(p); got != bytes[i]*n {
			t.Errorf("%v bytes = %g, want %g", p, got, bytes[i]*n)
		}
	}
}

// TestConcurrentStatsAndReset hammers readers, writers and Reset together;
// the race detector validates the locking, and the final Reset must leave a
// clean slate regardless of interleaving.
func TestConcurrentStatsAndReset(t *testing.T) {
	c := New(DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.ChargeCompute(1, j%2 == 0)
				c.ChargeTransmit(Broadcast, 1)
				c.ChargeProfile(1, 0.1, 0.1, []float64{1, 1, 1, 1})
				c.ChargeWorker(j%4, 1)
				s := c.Stats()
				if s.Ops < 0 || s.TotalTime() < 0 || s.TotalBytes() < 0 {
					t.Error("snapshot saw inconsistent totals")
					return
				}
				if j%25 == 0 {
					c.Reset()
				}
			}
		}()
	}
	wg.Wait()
	c.Reset()
	s := c.Stats()
	if s.Ops != 0 || s.FLOP != 0 || s.TotalBytes() != 0 || s.TotalTime() != 0 {
		t.Fatalf("Reset left residue: %+v", s)
	}
}

func TestPartitionOfBalanced(t *testing.T) {
	// The hash partition should spread a block grid near-uniformly over the
	// workers — this is what makes Fig 13's proportions land near 1/6.
	c := New(DefaultConfig())
	counts := make([]int, c.Config().Workers())
	n := 0
	for br := 0; br < 60; br++ {
		for bc := 0; bc < 10; bc++ {
			counts[c.PartitionOf(br, bc)]++
			n++
		}
	}
	want := float64(n) / float64(len(counts))
	for w, got := range counts {
		if math.Abs(float64(got)-want)/want > 0.25 {
			t.Errorf("worker %d holds %d blocks, want ~%.0f", w, got, want)
		}
	}
}

func TestPartitionOfDeterministic(t *testing.T) {
	c := New(DefaultConfig())
	f := func(br, bc uint16) bool {
		a := c.PartitionOf(int(br), int(bc))
		b := c.PartitionOf(int(br), int(bc))
		return a == b && a >= 0 && a < c.Config().Workers()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrimitiveString(t *testing.T) {
	names := map[Primitive]string{Collect: "collect", Broadcast: "broadcast", Shuffle: "shuffle", DFS: "dfs"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestNewCheckedReturnsErrorNotPanic(t *testing.T) {
	if _, err := NewChecked(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	c, err := NewChecked(DefaultConfig())
	if err != nil || c == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if c.Config().Nodes != 7 {
		t.Fatal("config not retained")
	}
}

// TestPartitionOfSpread is the satellite coverage for the hash partition:
// across several grid shapes the assignment must stay within ±20% of
// uniform for every worker.
func TestPartitionOfSpread(t *testing.T) {
	c := New(DefaultConfig())
	w := c.Config().Workers()
	shapes := []struct{ rows, cols int }{
		{48, 48}, {100, 10}, {10, 100}, {64, 32}, {1000, 1}, {1, 1000},
	}
	for _, sh := range shapes {
		counts := make([]int, w)
		for br := 0; br < sh.rows; br++ {
			for bc := 0; bc < sh.cols; bc++ {
				counts[c.PartitionOf(br, bc)]++
			}
		}
		want := float64(sh.rows*sh.cols) / float64(w)
		for wk, got := range counts {
			if math.Abs(float64(got)-want)/want > 0.20 {
				t.Errorf("grid %dx%d: worker %d holds %d blocks, want %.0f ±20%%",
					sh.rows, sh.cols, wk, got, want)
			}
		}
	}
}

func TestPartitionOfSingleWorker(t *testing.T) {
	c := New(SingleNodeConfig())
	for br := 0; br < 50; br++ {
		for bc := 0; bc < 50; bc++ {
			if p := c.PartitionOf(br, bc); p != 0 {
				t.Fatalf("single-worker partition (%d,%d) = %d, want 0", br, bc, p)
			}
		}
	}
}

func TestStatsSnapshotIsolation(t *testing.T) {
	c := New(DefaultConfig())
	c.ChargeWorker(0, 10)
	c.ChargeWorker(3, 7)
	s := c.Stats()
	// Mutating every element of the returned slice must not leak back.
	for i := range s.WorkerBytes {
		s.WorkerBytes[i] = -1
	}
	s2 := c.Stats()
	if s2.WorkerBytes[0] != 10 || s2.WorkerBytes[3%len(s2.WorkerBytes)] != 7 {
		t.Fatalf("snapshot aliases internal state: %v", s2.WorkerBytes)
	}
	// And two snapshots must not alias each other.
	s2.WorkerBytes[1] = 42
	if c.Stats().WorkerBytes[1] == 42 {
		t.Fatal("snapshots share backing storage")
	}
}
