package distmat

import (
	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/matrix"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// This file is the integrity settlement layer: after every charged operator,
// the context (a) charges the always-on verification work the enabled mode
// performs (digesting transmitted payloads, propagating ABFT checksum
// vectors through distributed multiplies), (b) settles the corruption events
// the fault injector fired inside the operator's charge window against the
// operator's actual payload, and (c) runs the per-op non-finite guard.
//
// Settlement is honest rather than declarative: a landed corruption really
// flips a bit in a copy of the payload (integrity.Corrupt), and detection
// really recomputes the digest or the ABFT identity against the damaged
// copy. A detected corruption is repaired like a block lost to a worker
// failure — a lineage re-run of the corrupt block's share of its producer,
// charged to the simulated clock — and the clean payload is kept, so
// repaired results are bitwise identical to a fault-free run. An undetected
// corruption replaces the payload with the damaged copy and propagates.

// maxRepairAttempts bounds lineage repair of one corrupted block. A flip in
// flight is gone after one re-run; a flip at rest under a DFS read re-reads
// the same bad bytes every attempt, so the budget exhausts and the run
// fails with a typed integrity error.
const maxRepairAttempts = 3

// IntegrityErr returns the first unrecoverable integrity or numeric error
// the settlement layer recorded, or nil. The engine polls it between
// evaluations so a poisoned run stops instead of returning success.
func (ctx *Context) IntegrityErr() error { return ctx.intErr }

// mulOperands carries a distributed multiply's inputs into settlement so
// ABFT can validate the checksum identity of c = a·b.
type mulOperands struct {
	a, b *matrix.Matrix
}

// settle completes one charged operator under the integrity layer and
// returns the operator's (possibly corrupted) payload. Every charge site in
// this package calls it immediately after apply.
func (ctx *Context) settle(kind, label string, bd cost.Breakdown, outMeta sparsity.Meta, data *matrix.Matrix, mul *mulOperands) *matrix.Matrix {
	if ctx.Verify >= integrity.VerifyDigest {
		if sec := digestSec(bd, ctx.Cluster.Config().Workers()); sec > 0 {
			ctx.chargeVerify("integrity/digest-verify", 0, sec)
		}
	}
	if ctx.Verify == integrity.VerifyABFT && mul != nil && !bd.Local {
		flop := abftFlop(bd, outMeta)
		ctx.chargeVerify("integrity/abft-verify", flop, flop/ctx.Cluster.Config().ClusterFlops())
	}
	// The verification charges above may themselves advance the injector,
	// so drain pending only after them. Repairs never re-inject
	// (ChargeRecovery bypasses the injector), so this loop terminates.
	for len(ctx.pending) > 0 {
		ev := ctx.pending[0]
		ctx.pending = ctx.pending[1:]
		data = ctx.settleEvent(ev, kind, label, bd, outMeta, data, mul)
	}
	if ctx.NaNGuard == integrity.GuardPerOp && data != nil {
		ctx.guardScan(label, outMeta, data, bd.Local)
	}
	return data
}

// digestSec models the cost of digesting an operator's transmitted payload:
// data landing at the driver (collect, and the broadcast source) is hashed
// by the driver alone, while shuffle and DFS payloads are hashed by all
// workers in parallel.
func digestSec(bd cost.Breakdown, workers int) float64 {
	driver := bd.Bytes[cluster.Collect] + bd.Bytes[cluster.Broadcast]
	spread := bd.Bytes[cluster.Shuffle] + bd.Bytes[cluster.DFS]
	if workers < 1 {
		workers = 1
	}
	return driver/integrity.DigestBandwidth + spread/(integrity.DigestBandwidth*float64(workers))
}

// abftFlop models maintaining the checksum row through a distributed
// multiply: one extra row of the product (1/m of its FLOP) plus column-sum
// passes over the operands and output of the same order.
func abftFlop(bd cost.Breakdown, outMeta sparsity.Meta) float64 {
	m := float64(outMeta.Rows)
	if m < 1 {
		m = 1
	}
	return 4 * bd.FLOP / m
}

// chargeVerify books verification work as a charged integrity operator:
// a trace span plus a cluster charge (stats-equals-spans holds) and a
// VerifySec attribution.
func (ctx *Context) chargeVerify(label string, flop, sec float64) {
	ctx.apply("integrity", label, cost.Breakdown{FLOP: flop, ComputeSec: sec}, nil, nil, 0)
	ctx.Cluster.AddIntegrity(cluster.IntegrityCharge{VerifySec: sec})
}

// blocksOf counts the virtual block grid cells of a value — the granularity
// at which one corruption damages, and one repair rebuilds, a payload.
func blocksOf(meta sparsity.Meta, blockSize int) float64 {
	bs := int64(blockSize)
	if bs < 1 {
		bs = 1
	}
	br := (meta.Rows + bs - 1) / bs
	bc := (meta.Cols + bs - 1) / bs
	if br < 1 {
		br = 1
	}
	if bc < 1 {
		bc = 1
	}
	return float64(br * bc)
}

// settleEvent resolves one corruption event against the operator whose
// charge window it fired in, returning the payload to keep.
func (ctx *Context) settleEvent(ev fault.Event, kind, label string, bd cost.Breakdown, outMeta sparsity.Meta, data *matrix.Matrix, mul *mulOperands) *matrix.Matrix {
	inert := func() *matrix.Matrix {
		ctx.Recorder.Record(trace.FaultOp("fault", "fault/corruption-inert", 0, 0, [4]float64{}))
		return data
	}
	transit := 0.0
	for _, b := range bd.Bytes {
		transit += b
	}
	isMul := mul != nil && !bd.Local
	// Decide where the flip landed. Only payloads in flight (bytes on the
	// wire or under DFS) and distributed multiply compute phases are
	// vulnerable; driver-local memory is ECC-protected, so everything else
	// is inert.
	var landCompute bool
	switch {
	case isMul && transit > 0:
		p := 0.5
		if t := bd.ComputeSec + bd.TransmitSec; t > 0 {
			p = bd.ComputeSec / t
		}
		landCompute = float64(ev.Bits&0xFFFFF)/float64(1<<20) < p
	case isMul:
		landCompute = true
	case transit > 0:
		landCompute = false
	default:
		return inert()
	}
	if data == nil {
		return inert()
	}
	corrupted, ok := integrity.Corrupt(data, ev.Bits)
	if !ok {
		return inert() // all-zero payload: nothing to damage
	}

	// Honest detection against the damaged copy. Digests cover payloads in
	// flight; a flip inside the multiply's compute phase happens before the
	// output digest exists, so only ABFT's checksum identity can catch it.
	detected, via := false, ""
	if landCompute {
		if ctx.Verify == integrity.VerifyABFT && !integrity.ABFTCheck(mul.a, mul.b, corrupted) {
			detected, via = true, "abft"
		}
	} else if ctx.Verify >= integrity.VerifyDigest && integrity.Digest(corrupted) != integrity.Digest(data) {
		detected, via = true, "digest"
	}
	ctx.Recorder.Record(trace.FaultOp("fault", "fault/corruption", 0, 0, [4]float64{}))
	if !detected {
		ctx.Cluster.AddIntegrity(cluster.IntegrityCharge{Injected: 1})
		return corrupted
	}

	// Repair: the corrupt block is a lost partition of its producer, so one
	// attempt re-runs the block's share of the producing operator (for DFS
	// reads, a re-read of that block). At-rest corruption under a DFS read
	// re-reads the same bad bytes, so every attempt fails and the bounded
	// budget exhausts into a typed error.
	frac := 1 / blocksOf(outMeta, ctx.Cluster.Config().BlockSize)
	attempts := 1
	sticky := kind == "dfs-read" && ev.Bits%64 == 63
	if sticky {
		attempts = maxRepairAttempts
	}
	scale := frac * float64(attempts)
	var bytes [4]float64
	for i := range bytes {
		bytes[i] = bd.Bytes[i] * scale
	}
	flop := bd.FLOP * scale
	sec := bd.Total() * scale
	ctx.Cluster.ChargeRecovery(flop, sec, bytes)
	ctx.Recorder.Record(trace.FaultOp("recovery", "recovery/integrity-"+via, sec, flop, bytes))
	ic := cluster.IntegrityCharge{Injected: 1, Repairs: attempts, RepairSec: sec}
	if via == "digest" {
		ic.ByDigest = 1
	} else {
		ic.ByABFT = 1
	}
	ctx.Cluster.AddIntegrity(ic)
	if sticky && ctx.intErr == nil {
		ctx.intErr = &integrity.Error{Op: label, Via: via, Attempts: attempts}
	}
	return data // repaired: the clean payload is kept, bit for bit
}

// guardScan runs the non-finite scan over a value: the pass is charged as an
// integrity operator and the first NaN/Inf found becomes a typed numeric
// error on the context.
func (ctx *Context) guardScan(label string, meta sparsity.Meta, data *matrix.Matrix, local bool) {
	w := 1.0
	if !local {
		w = float64(ctx.Cluster.Config().Workers())
	}
	sec := cost.SizeBytes(meta) / (integrity.ScanBandwidth * w)
	ctx.apply("integrity", "integrity/nan-scan", cost.Breakdown{ComputeSec: sec, Local: local}, nil, nil, 0)
	ctx.Cluster.AddIntegrity(cluster.IntegrityCharge{VerifySec: sec})
	if ctx.intErr != nil {
		return
	}
	if i, j, v, found := integrity.ScanNonFinite(data); found {
		ctx.intErr = &integrity.NumericError{Op: label, Row: i, Col: j, Value: v}
	}
}

// GuardValue scans one bound value at iteration end (GuardPerIteration); the
// engine calls it for every loop variable after each iteration.
func (d *DistMatrix) GuardValue(name string) {
	d.ctx.guardScan("iteration/"+name, d.vMeta, d.data, d.local)
}
