package distmat

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"remac/internal/cluster"
	"remac/internal/fault"
	"remac/internal/matrix"
)

// faultCtx builds a traced context with an explicit fault plan so tests
// control exactly when each event fires on the simulated clock.
func faultCtx(events ...fault.Event) *Context {
	c := tracedCtx()
	c.EnableFaults(fault.FromEvents(events...))
	return c
}

func workers(c *Context) float64 { return float64(c.Cluster.Config().Workers()) }

// TestLineageRepairChargesProducerFraction: losing one worker's slice of a
// derived value charges the lost fraction of the producing operator's cost,
// not a full recompute, and only when the value is next used.
func TestLineageRepairChargesProducerFraction(t *testing.T) {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure}) // never fires by clock
	rng := rand.New(rand.NewSource(30))
	a := scaledDataset(c, rng)
	b := a.Scale(2) // the producer whose cost lineage repair re-runs
	prod := b.prod
	if prod.Total() == 0 {
		t.Fatal("test needs a nonzero producer cost")
	}

	// Inject the failure directly through the observer path (epoch bump)
	// rather than waiting out the simulated clock.
	c.onFault(cluster.FaultCharge{Event: fault.Event{Kind: fault.WorkerFailure}})
	before := c.Cluster.Stats()
	if before.RecomputeFLOP != 0 || before.RecoverySec != 0 {
		t.Fatal("recovery must be lazy: nothing charged until the value is used")
	}

	b.Sum() // first use after the failure triggers repair
	s := c.Cluster.Stats()
	lost := 1 / workers(c)
	if want := prod.FLOP * lost; math.Abs(s.RecomputeFLOP-want) > 1e-6*want {
		t.Fatalf("RecomputeFLOP = %g, want %g (producer FLOP × lost fraction)", s.RecomputeFLOP, want)
	}
	if want := prod.Total() * lost; math.Abs(s.RecoverySec-want) > 1e-9 {
		t.Fatalf("RecoverySec = %g, want %g", s.RecoverySec, want)
	}

	// A second use must not repair again.
	b.Sum()
	if after := c.Cluster.Stats(); after.RecomputeFLOP != s.RecomputeFLOP {
		t.Fatal("repair ran twice for one failure")
	}
}

// TestMultipleFailuresCompoundLostFraction: k failures lose 1-(1-1/W)^k of
// the partitions, not k/W.
func TestMultipleFailuresCompoundLostFraction(t *testing.T) {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure})
	rng := rand.New(rand.NewSource(31))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	for i := 0; i < 3; i++ {
		c.onFault(cluster.FaultCharge{Event: fault.Event{Kind: fault.WorkerFailure}})
	}
	b.Sum()
	w := workers(c)
	lost := 1 - math.Pow(1-1/w, 3)
	s := c.Cluster.Stats()
	if want := b.prod.FLOP * lost; math.Abs(s.RecomputeFLOP-want) > 1e-6*want {
		t.Fatalf("RecomputeFLOP = %g, want %g for 3 compounded failures", s.RecomputeFLOP, want)
	}
}

// TestInputRepairsAtDFSReadCost: inputs have no lineage and recover by
// re-reading the fault-tolerant store.
func TestInputRepairsAtDFSReadCost(t *testing.T) {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure})
	rng := rand.New(rand.NewSource(32))
	a := scaledDataset(c, rng)
	c.onFault(cluster.FaultCharge{Event: fault.Event{Kind: fault.WorkerFailure}})
	a.Sum()
	bd := c.Model.DFSRead(a.Meta())
	lost := 1 / workers(c)
	s := c.Cluster.Stats()
	if want := bd.Total() * lost; math.Abs(s.RecoverySec-want) > 1e-9 {
		t.Fatalf("input RecoverySec = %g, want DFS re-read fraction %g", s.RecoverySec, want)
	}
	found := false
	for _, sp := range c.Recorder.Spans() {
		if sp.Label == "recovery/dfs-read" {
			found = true
		}
	}
	if !found {
		t.Fatal("input repair must record a recovery/dfs-read span")
	}
}

// TestDFSReadRepairSpanAndBytes pins down the recovery/dfs-read fallback:
// the repair records exactly one span with that label, the span's DFS
// bytes equal the lost fraction of the re-read (mirrored in the cluster
// stats), and the materialized sample is left bitwise untouched — the
// re-read restores the same partitions, so the value must not change.
func TestDFSReadRepairSpanAndBytes(t *testing.T) {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure})
	rng := rand.New(rand.NewSource(37))
	a := scaledDataset(c, rng)
	want := a.Data() // inputs have no lineage: repair must re-read, not rebuild
	before := c.Cluster.Stats()

	c.onFault(cluster.FaultCharge{Event: fault.Event{Kind: fault.WorkerFailure}})
	a.Sum()

	bd := c.Model.DFSRead(a.Meta())
	lost := 1 / workers(c)
	var spans int
	var spanDFS float64
	for _, sp := range c.Recorder.Spans() {
		if sp.Label != "recovery/dfs-read" {
			continue
		}
		spans++
		spanDFS = sp.Bytes["dfs"]
	}
	if spans != 1 {
		t.Fatalf("found %d recovery/dfs-read spans, want 1", spans)
	}
	if wantBytes := bd.Bytes[cluster.DFS] * lost; math.Abs(spanDFS-wantBytes) > 1e-6*(1+wantBytes) {
		t.Fatalf("span DFS bytes = %g, want lost re-read fraction %g", spanDFS, wantBytes)
	}
	s := c.Cluster.Stats()
	if got := s.BytesFor(cluster.DFS) - before.BytesFor(cluster.DFS); math.Abs(got-spanDFS) > 1e-6*(1+spanDFS) {
		t.Fatalf("stats charged %g DFS bytes, span carries %g", got, spanDFS)
	}
	if a.Data() != want {
		t.Fatal("dfs-read repair must leave the sample bitwise identical (same matrix)")
	}
}

// TestCheckpointSwitchesRecoveryToDFSRead: a checkpointed intermediate pays
// one DFS write and thereafter recovers at read cost instead of recompute.
func TestCheckpointSwitchesRecoveryToDFSRead(t *testing.T) {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure})
	rng := rand.New(rand.NewSource(33))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	before := c.Cluster.Stats()
	b.Checkpoint()
	if !b.Checkpointed() {
		t.Fatal("Checkpoint did not mark the value")
	}
	wrote := c.Cluster.Stats()
	wbd := c.Model.DFSWrite(b.Meta())
	if got := wrote.BytesFor(cluster.DFS) - before.BytesFor(cluster.DFS); math.Abs(got-wbd.Bytes[cluster.DFS]) > 1e-6 {
		t.Fatalf("checkpoint DFS bytes = %g, want %g", got, wbd.Bytes[cluster.DFS])
	}
	b.Checkpoint() // idempotent
	if again := c.Cluster.Stats(); !reflect.DeepEqual(again, wrote) {
		t.Fatal("double Checkpoint charged twice")
	}

	c.onFault(cluster.FaultCharge{Event: fault.Event{Kind: fault.WorkerFailure}})
	b.Sum()
	rbd := c.Model.DFSRead(b.Meta())
	lost := 1 / workers(c)
	s := c.Cluster.Stats()
	if want := rbd.Total() * lost; math.Abs(s.RecoverySec-want) > 1e-9 {
		t.Fatalf("checkpointed RecoverySec = %g, want DFS read fraction %g", s.RecoverySec, want)
	}
	if want := rbd.FLOP * lost; math.Abs(s.RecomputeFLOP-want) > 1e-9 {
		t.Fatalf("checkpointed recovery recomputed %g FLOP, want %g", s.RecomputeFLOP, want)
	}
	found := false
	for _, sp := range c.Recorder.Spans() {
		if sp.Label == "recovery/checkpoint" {
			found = true
		}
	}
	if !found {
		t.Fatal("checkpointed repair must record a recovery/checkpoint span")
	}
}

// TestLocalValuesNeverRepair: driver-memory values survive worker failures.
func TestLocalValuesNeverRepair(t *testing.T) {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure})
	rng := rand.New(rand.NewSource(34))
	small := New(c, matrix.RandDense(rng, 10, 10), 0, 0)
	c.onFault(cluster.FaultCharge{Event: fault.Event{Kind: fault.WorkerFailure}})
	small.Sum()
	if s := c.Cluster.Stats(); s.RecoverySec != 0 || s.RecomputeFLOP != 0 {
		t.Fatalf("local value repaired: %+v", s)
	}
}

// TestStatsEqualsSpansUnderFaults extends the stats-equals-spans invariant
// to faulty runs: summed span recovery seconds, recompute FLOP and bytes
// must equal the cluster's fault accounting.
func TestStatsEqualsSpansUnderFaults(t *testing.T) {
	c := tracedCtx()
	c.EnableFaults(fault.NewPlan(fault.Config{
		Seed:                  7,
		WorkerFailuresPerHour: 600,
		TransmitErrorsPerHour: 1200,
		StragglersPerHour:     600,
		Workers:               c.Cluster.Config().Workers(),
	}))
	rng := rand.New(rand.NewSource(35))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	for i := 0; i < 20; i++ {
		b = b.Add(a)
		b.Sum()
	}

	s := c.Cluster.Stats()
	if s.FailedWorkers == 0 || s.Retries == 0 {
		t.Fatalf("rates this high must fire failures and retries: %+v", s)
	}
	sum := c.Recorder.Summary()
	if math.Abs(sum.RecoverySec-s.RecoverySec) > 1e-9*(1+s.RecoverySec) {
		t.Errorf("span RecoverySec %g != stats %g", sum.RecoverySec, s.RecoverySec)
	}
	if math.Abs(sum.RecomputeFLOP-s.RecomputeFLOP) > 1e-6 {
		t.Errorf("span RecomputeFLOP %g != stats %g", sum.RecomputeFLOP, s.RecomputeFLOP)
	}
	var spanBytes float64
	for _, sp := range c.Recorder.Spans() {
		for _, v := range sp.Bytes {
			spanBytes += v
		}
	}
	if math.Abs(spanBytes-s.TotalBytes()) > 1e-6*(1+s.TotalBytes()) {
		t.Errorf("span bytes %g != stats bytes %g (retransmissions must be mirrored)", spanBytes, s.TotalBytes())
	}
	// Every injected event shows up as a fault span (recovery spans come on
	// top), so the span count bounds the stats counters from above.
	if sum.Faults < s.Retries+s.FailedWorkers {
		t.Errorf("span fault count %d < stats retries %d + failures %d",
			sum.Faults, s.Retries, s.FailedWorkers)
	}
}

// TestFaultFreeContextUnchanged: wiring the fault layer must not perturb a
// fault-free run's stats (the zero-overhead regression guard at the distmat
// layer).
func TestFaultFreeContextUnchanged(t *testing.T) {
	run := func(c *Context) cluster.Stats {
		rng := rand.New(rand.NewSource(36))
		a := scaledDataset(c, rng)
		b := a.Scale(3).Add(a)
		b.Sum()
		return c.Cluster.Stats()
	}
	plain := run(ctx())
	wired := tracedCtx()
	wired.EnableFaults(nil)
	got := run(wired)
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("nil plan changed stats:\n%+v\n%+v", plain, got)
	}
}
