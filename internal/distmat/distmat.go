// Package distmat implements distributed matrices over the simulated
// cluster, mirroring SystemDS's blocked-matrix runtime. A DistMatrix pairs a
// materialized matrix (possibly a scaled-down sample) with virtual
// dimensions at which all costs are accounted; kernels execute for real so
// results are numerically exact, while the cluster is charged what the
// operation would cost at virtual scale (see the substitution table in
// DESIGN.md).
package distmat

import (
	"fmt"
	"math"
	"time"

	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/matrix"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// Context binds a simulated cluster to the cost model used for runtime
// charging. Runtime charging always uses exact sparsities from the
// materialized data (the estimator only matters at compile time), so the
// context model uses the MNC estimator's exact-count propagation inputs.
type Context struct {
	Cluster *cluster.Cluster
	Model   *cost.Model
	// Recorder, when non-nil, receives one span per charged operator (the
	// structured replacement of the old Trace callback; remac-bench -trace,
	// remac-explain and the bench aggregates consume it).
	Recorder *trace.Recorder
	// PartitionSec accumulates the simulated time of input reads (the
	// input-partition phase of Fig 12), separately from the main clock.
	PartitionSec float64

	// Verify selects the integrity verification mode: block digests on
	// transmissions and DFS reads, optionally plus ABFT checksum validation
	// of distributed multiplies (see internal/integrity).
	Verify integrity.VerifyMode
	// NaNGuard selects the non-finite scan cadence (off, per iteration via
	// GuardValue, or per charged operator).
	NaNGuard integrity.GuardMode

	// failEpoch counts worker-failure events observed so far. Every
	// DistMatrix remembers the epoch at which it was last fully resident;
	// a distributed value whose epoch lags behind lost blocks to the
	// failures in between and lazily repairs itself when next used.
	failEpoch int
	// failLog records the worker index of each failure, in epoch order
	// (len == failEpoch). Coded repair derives the erased data groups of a
	// value from the distinct workers failed since its epoch (coded.go).
	failLog []int
	// codedK/codedN are the coded-recovery parameters (0 = coded recovery
	// off); codedSeq numbers encoded values for deterministic placement.
	codedK, codedN int
	codedSeq       int64
	// masked holds the stretch factors of straggler events the cluster
	// masked against a coded stage, awaiting settlement by codedSettle.
	masked []float64
	// pending holds corruption events the injector fired but the integrity
	// layer has not yet settled against the charging operator's payload.
	pending []fault.Event
	// intErr is the first unrecoverable integrity or numeric error
	// (IntegrityErr exposes it to the engine).
	intErr error
}

// NewContext creates a runtime context for a cluster.
func NewContext(c *cluster.Cluster) *Context {
	return &Context{Cluster: c, Model: cost.NewModel(c.Config(), sparsity.MNC{})}
}

// EnableFaults attaches a fault plan to the context's cluster and routes
// every fired event back through the context, so worker failures invalidate
// lineage epochs and every fault charge is mirrored as a trace span
// (keeping the stats-equals-spans invariant under injected faults).
func (ctx *Context) EnableFaults(p *fault.Plan) {
	ctx.Cluster.SetFaults(p, ctx.onFault)
}

func (ctx *Context) onFault(fc cluster.FaultCharge) {
	if fc.Event.Kind == fault.Corruption {
		// Corruption has no cost of its own; its span is emitted by the
		// integrity settlement once the outcome (inert, repaired,
		// propagated) is known. See settle in integrity.go.
		ctx.pending = append(ctx.pending, fc.Event)
		return
	}
	if fc.Event.Kind == fault.WorkerFailure {
		ctx.failEpoch++
		ctx.failLog = append(ctx.failLog, fc.Event.Worker)
	}
	if fc.CodedMasked {
		// The cluster masked this straggler against a coded stage: the
		// stage ends at the k fastest completions, so the stretch costs
		// nothing now; codedSettle decodes the slow task's block from
		// parity (or charges the stretch retroactively if the stage's
		// output carries no parity). The zero-cost span keeps the fault
		// visible in the trace.
		f := fc.Event.Factor
		if f <= 1 {
			f = fault.DefaultStragglerFactor
		}
		ctx.masked = append(ctx.masked, f)
		ctx.Recorder.Record(trace.FaultOp("fault", "fault/"+fc.Event.Kind.String(), 0, 0, fc.Bytes))
		return
	}
	ctx.Recorder.Record(trace.FaultOp("fault", "fault/"+fc.Event.Kind.String(), fc.RecoverySec, 0, fc.Bytes))
}

// apply charges the cluster for one operator and mirrors the charge as a
// trace span. Every charge site must go through here: the mirror is what
// keeps the stats-equals-spans invariant (summed span seconds and bytes
// equal Cluster.Stats totals) that the trace tests cross-check.
func (ctx *Context) apply(kind, label string, bd cost.Breakdown, in []sparsity.Meta, out *sparsity.Meta, wall time.Duration) {
	ctx.Recorder.Record(trace.Op(kind, label, bd, in, out, wall))
	ctx.Cluster.ChargeProfile(bd.FLOP, bd.ComputeSec, bd.TransmitSec, bd.Bytes[:])
}

// DistMatrix is a matrix value in the simulated distributed runtime.
type DistMatrix struct {
	ctx  *Context
	data *matrix.Matrix
	// vMeta carries the virtual (paper-scale) dimensions and sparsity used
	// for all cost accounting. For inputs it is the virtualized metadata of
	// the materialized sample; for derived values it is propagated through
	// the estimator, because intermediate fill-in (e.g. AᵀA densifying)
	// depends on the absolute dimensions, which the sample does not have.
	vMeta sparsity.Meta
	local bool
	// prod is the lineage: the breakdown charged to produce this value.
	// Recovering blocks lost to a worker failure re-runs a fraction of it
	// (inputs keep a zero prod and recover by re-reading DFS instead).
	prod cost.Breakdown
	// epoch is the failure epoch at which the value was last fully
	// resident; repair() settles the difference against ctx.failEpoch.
	epoch int
	// ckpt marks values persisted to DFS by Checkpoint; their recovery
	// costs a DFS read regardless of lineage.
	ckpt bool
	// parity is the erasure-code state when coded recovery is enabled:
	// p parity blocks persisted to DFS from which erased data groups
	// decode without recomputation (coded.go).
	parity *codedParity
}

// New wraps a materialized matrix with virtual dimensions and places it
// according to the cost model's local-memory rule. Passing vRows/vCols of 0
// uses the actual dimensions.
func New(ctx *Context, m *matrix.Matrix, vRows, vCols int64) *DistMatrix {
	meta := sparsity.Virtualize(sparsity.MetaOf(m), vRows, vCols)
	d := &DistMatrix{ctx: ctx, data: m, vMeta: meta, epoch: ctx.failEpoch}
	d.local = ctx.Model.FitsLocal(meta)
	return d
}

// Read wraps a matrix like New and additionally charges the input-partition
// cost (dfs read + partition shuffle) for distributed inputs, and records
// the per-worker block assignment for work-balance accounting (Fig 12/13).
func Read(ctx *Context, m *matrix.Matrix, vRows, vCols int64) *DistMatrix {
	d := New(ctx, m, vRows, vCols)
	if !d.local {
		meta := d.Meta()
		bd := ctx.Model.DFSRead(meta)
		ctx.apply("dfs-read", "dfs-read", bd, nil, &meta, 0)
		ctx.PartitionSec += bd.Total()
		chargeWorkers(ctx, d)
		d.data = ctx.settle("dfs-read", "dfs-read", bd, meta, d.data, nil)
		ctx.codedSettle(d, bd)
	}
	return d
}

// Data returns the materialized matrix.
func (d *DistMatrix) Data() *matrix.Matrix { return d.data }

// Local reports whether the value resides in driver memory.
func (d *DistMatrix) Local() bool { return d.local }

// VirtualDims returns the dimensions used for cost accounting.
func (d *DistMatrix) VirtualDims() (int64, int64) { return d.vMeta.Rows, d.vMeta.Cols }

// Meta returns the virtual-scale estimation descriptor.
func (d *DistMatrix) Meta() sparsity.Meta { return d.vMeta }

func (d *DistMatrix) derive(m *matrix.Matrix, meta sparsity.Meta, local bool, prod cost.Breakdown) *DistMatrix {
	nd := &DistMatrix{ctx: d.ctx, data: m, vMeta: meta, local: local, prod: prod, epoch: d.ctx.failEpoch}
	d.ctx.codedSettle(nd, prod)
	return nd
}

// repair settles a value whose blocks were lost to worker failures since it
// was last resident: it charges the lost partition fraction of the value's
// recovery cost (checkpoint read, lineage recomputation, or DFS re-read for
// inputs) and mirrors the charge as a recovery span. Called on every
// operand use, it makes recovery lazy the way Spark's lineage model is —
// values never touched after a failure cost nothing.
func (d *DistMatrix) repair() {
	ctx := d.ctx
	if d.epoch == ctx.failEpoch {
		return
	}
	from := d.epoch
	k := ctx.failEpoch - d.epoch
	d.epoch = ctx.failEpoch
	if d.local {
		return // driver memory survives worker failures
	}
	if d.parity != nil {
		// Coded values track which workers failed and decode the erased
		// data groups from parity (coded.go).
		d.repairCoded(from)
		return
	}
	// Each failure loses a 1/W slice of the partitions; k independent
	// failures lose 1-(1-1/W)^k of them.
	w := float64(ctx.Cluster.Config().Workers())
	lost := 1 - math.Pow(1-1/w, float64(k))
	bd, label := d.prod, "recovery/lineage"
	if d.ckpt {
		bd, label = ctx.Model.DFSRead(d.vMeta), "recovery/checkpoint"
	} else if bd.FLOP == 0 && bd.Total() == 0 {
		// Inputs (and other values with no recorded lineage) are re-read
		// from the fault-tolerant store.
		bd, label = ctx.Model.DFSRead(d.vMeta), "recovery/dfs-read"
	}
	var bytes [4]float64
	for i := range bytes {
		bytes[i] = bd.Bytes[i] * lost
	}
	flop := bd.FLOP * lost
	sec := bd.Total() * lost
	ctx.Cluster.ChargeRecovery(flop, sec, bytes)
	ctx.Recorder.Record(trace.FaultOp("recovery", label, sec, flop, bytes))
}

// Checkpoint persists the value to DFS so later failures recover it at
// DFS-read cost instead of re-running its lineage. No-op for local or
// already-checkpointed values.
func (d *DistMatrix) Checkpoint() {
	if d.local || d.ckpt {
		return
	}
	d.repair() // blocks lost before the write must be rebuilt first
	meta := d.vMeta
	bd := d.ctx.Model.DFSWrite(meta)
	d.ctx.apply("checkpoint", "checkpoint/dfs-write", bd, []sparsity.Meta{meta}, nil, 0)
	d.data = d.ctx.settle("checkpoint", "checkpoint/dfs-write", bd, meta, d.data, nil)
	d.ckpt = true
}

// Checkpointed reports whether the value has been persisted to DFS.
func (d *DistMatrix) Checkpointed() bool { return d.ckpt }

func (d *DistMatrix) sameCtx(o *DistMatrix) {
	if d.ctx != o.ctx {
		panic("distmat: operands from different contexts")
	}
}

// Mul returns d · o, executing the kernel and charging the cluster for the
// method (local, BMM or CPMM) the cost model selects.
func (d *DistMatrix) Mul(o *DistMatrix) *DistMatrix { return d.MulHinted(o, false) }

// Add returns d + o.
func (d *DistMatrix) Add(o *DistMatrix) *DistMatrix { return d.ewise(o, cost.EWAdd, "+") }

// Sub returns d - o.
func (d *DistMatrix) Sub(o *DistMatrix) *DistMatrix { return d.ewise(o, cost.EWSub, "-") }

// ElemMul returns d ⊙ o.
func (d *DistMatrix) ElemMul(o *DistMatrix) *DistMatrix { return d.ewise(o, cost.EWMul, "*") }

// ElemDiv returns element-wise d / o.
func (d *DistMatrix) ElemDiv(o *DistMatrix) *DistMatrix { return d.ewise(o, cost.EWDiv, "/") }

func (d *DistMatrix) ewise(o *DistMatrix, kind cost.EWiseKind, op string) *DistMatrix {
	d.sameCtx(o)
	if d.vMeta.Rows != o.vMeta.Rows || d.vMeta.Cols != o.vMeta.Cols {
		panic(fmt.Sprintf("distmat: %q virtual dims %dx%d vs %dx%d", op, d.vMeta.Rows, d.vMeta.Cols, o.vMeta.Rows, o.vMeta.Cols))
	}
	d.repair()
	o.repair()
	start := time.Now()
	var out *matrix.Matrix
	switch op {
	case "+":
		out = d.data.Add(o.data)
	case "-":
		out = d.data.Sub(o.data)
	case "*":
		out = d.data.ElemMul(o.data)
	default:
		out = d.data.ElemDiv(o.data)
	}
	wall := time.Since(start)
	var (
		outMeta  sparsity.Meta
		bd       cost.Breakdown
		outLocal bool
	)
	if d == o {
		// Same value on both sides (e.g. V ⊙ V): partitions are aligned,
		// and self-subtraction cancels to an empty result (cost.EWSub).
		outMeta, bd, outLocal = d.ctx.Model.EWiseSame(kind, d.vMeta, d.local)
	} else {
		outMeta, bd, outLocal = d.ctx.Model.EWise(kind, d.vMeta, o.vMeta, d.local, o.local)
	}
	d.ctx.apply("ewise", "ewise/"+op, bd, []sparsity.Meta{d.vMeta, o.vMeta}, &outMeta, wall)
	out = d.ctx.settle("ewise", "ewise/"+op, bd, outMeta, out, nil)
	return d.derive(out, outMeta, outLocal, bd)
}

// Transpose returns dᵀ.
func (d *DistMatrix) Transpose() *DistMatrix {
	d.repair()
	start := time.Now()
	out := d.data.Transpose()
	wall := time.Since(start)
	outMeta, bd, outLocal := d.ctx.Model.Transpose(d.vMeta, d.local)
	d.ctx.apply("transpose", "transpose", bd, []sparsity.Meta{d.vMeta}, &outMeta, wall)
	out = d.ctx.settle("transpose", "transpose", bd, outMeta, out, nil)
	return d.derive(out, outMeta, outLocal, bd)
}

// TransposeFused returns dᵀ without charging the cluster: leaf transposes
// inside multiplication chains are fused into the multiply operators
// (SystemDS rewrites t(A) %*% x into a transpose-fused matrix multiply
// rather than materializing t(A)), and the cost model prices the fused
// multiply on the transposed metadata.
func (d *DistMatrix) TransposeFused() *DistMatrix {
	d.repair()
	out := d.data.Transpose()
	// Uncharged: the fused view inherits its parent's lineage.
	return d.derive(out, sparsity.MNC{}.Transpose(d.vMeta), d.local, d.prod)
}

// Scale returns s · d.
func (d *DistMatrix) Scale(s float64) *DistMatrix {
	d.repair()
	start := time.Now()
	out := d.data.Scale(s)
	wall := time.Since(start)
	outMeta, bd, outLocal := d.ctx.Model.Scale(d.vMeta, d.local)
	d.ctx.apply("scale", "scale", bd, []sparsity.Meta{d.vMeta}, &outMeta, wall)
	out = d.ctx.settle("scale", "scale", bd, outMeta, out, nil)
	return d.derive(out, outMeta, outLocal, bd)
}

// AddScalar returns d + s on every element, charged as an element-wise
// pass. The result densifies, so the model prices the pass on the
// densified output metadata (a sparse input would otherwise under-charge
// the densified result).
func (d *DistMatrix) AddScalar(s float64) *DistMatrix {
	d.repair()
	start := time.Now()
	out := d.data.AddScalar(s)
	wall := time.Since(start)
	outMeta, bd, outLocal := d.ctx.Model.AddScalar(d.vMeta, d.local)
	d.ctx.apply("add-scalar", "add-scalar", bd, []sparsity.Meta{d.vMeta}, &outMeta, wall)
	out = d.ctx.settle("add-scalar", "add-scalar", bd, outMeta, out, nil)
	return d.derive(out, outMeta, outLocal, bd)
}

// Sum returns the scalar sum of all elements; distributed inputs aggregate
// per-partition partials and collect them. The charge routes through the
// model's breakdown like every other operator, so it is visible to the
// trace and its collect bytes follow the breakdown path.
func (d *DistMatrix) Sum() float64 {
	d.repair()
	start := time.Now()
	v := d.data.Sum()
	wall := time.Since(start)
	outMeta, bd, _ := d.ctx.Model.Sum(d.vMeta, d.local)
	d.ctx.apply("sum", "sum", bd, []sparsity.Meta{d.vMeta}, &outMeta, wall)
	// Route the scalar through settlement as a 1×1 block so a corruption
	// landing on the collected partials damages (or is caught on) the sum
	// like any other payload.
	return d.ctx.settle("sum", "sum", bd, outMeta, matrix.Scalar(v), nil).ScalarValue()
}

// chargeWorkers distributes the matrix's virtual bytes across workers by
// hash-partitioning a block grid weighted by the materialized per-block
// nonzero mass. This reproduces the SystemDS 1000×1000 hash partitioning
// whose balance Fig 13 measures.
func chargeWorkers(ctx *Context, d *DistMatrix) {
	shares := WorkerShares(ctx.Cluster, d.data)
	total := cost.SizeBytes(d.Meta())
	for w, s := range shares {
		ctx.Cluster.ChargeWorker(w, s*total)
	}
}

// WorkerShares returns the fraction of a matrix's data volume each worker
// would hold under block hash partitioning. The materialized matrix is cut
// into a grid standing in for the virtual 1000×1000 block grid; each cell
// is weighted by its nonzero count and assigned by the cluster's hash.
func WorkerShares(c *cluster.Cluster, m *matrix.Matrix) []float64 {
	const gridTarget = 48
	gr := min(gridTarget, m.Rows())
	gc := min(gridTarget, m.Cols())
	weights := make([]float64, c.Config().Workers())
	cellRows := (m.Rows() + gr - 1) / gr
	cellCols := (m.Cols() + gc - 1) / gc
	counts := make([]float64, gr*gc)
	m.ForEachNonzero(func(i, j int, _ float64) {
		counts[(i/cellRows)*gc+j/cellCols]++
	})
	total := 0.0
	for idx, n := range counts {
		if n == 0 {
			continue
		}
		w := c.PartitionOf(idx/gc, idx%gc)
		weights[w] += n
		total += n
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
		return weights
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MulHinted is Mul with the TSMM structural hint (the operands form a
// transpose-self product over the same underlying matrix).
func (d *DistMatrix) MulHinted(o *DistMatrix, tsmm bool) *DistMatrix {
	d.sameCtx(o)
	if d.vMeta.Cols != o.vMeta.Rows {
		panic(fmt.Sprintf("distmat: Mul virtual dims %dx%d · %dx%d", d.vMeta.Rows, d.vMeta.Cols, o.vMeta.Rows, o.vMeta.Cols))
	}
	d.repair()
	o.repair()
	start := time.Now()
	out := d.data.Mul(o.data)
	wall := time.Since(start)
	outMeta, bd, outLocal := d.ctx.Model.MulHinted(d.vMeta, o.vMeta, d.local, o.local, tsmm)
	label := "mul/" + bd.Method.String()
	d.ctx.apply("mul", label, bd, []sparsity.Meta{d.vMeta, o.vMeta}, &outMeta, wall)
	out = d.ctx.settle("mul", label, bd, outMeta, out, &mulOperands{a: d.data, b: o.data})
	return d.derive(out, outMeta, outLocal, bd)
}
