package distmat

import (
	"math"
	"math/rand"
	"testing"

	"remac/internal/cluster"
	"remac/internal/matrix"
	"remac/internal/trace"
)

func tracedCtx() *Context {
	c := ctx()
	c.Recorder = trace.New()
	return c
}

// TestSumChargesThroughBreakdown checks the Sum bugfix: the charge routes
// through a cost.Breakdown and apply, so the trace sees it and its collect
// bytes match the cluster's.
func TestSumChargesThroughBreakdown(t *testing.T) {
	c := tracedCtx()
	rng := rand.New(rand.NewSource(20))
	a := scaledDataset(c, rng)
	c.Cluster.Reset()
	c.Recorder = trace.New()
	a.Sum()

	spans := c.Recorder.Spans()
	if len(spans) != 1 || spans[0].Kind != "sum" {
		t.Fatalf("Sum must emit exactly one sum span, got %+v", spans)
	}
	s := c.Cluster.Stats()
	if s.Ops != 1 {
		t.Fatalf("Ops = %d, want 1", s.Ops)
	}
	sp := spans[0]
	if sp.ComputeSec != s.ComputeTime || sp.TransmitSec != s.TransmitTime {
		t.Errorf("span seconds %g/%g != stats %g/%g", sp.ComputeSec, sp.TransmitSec, s.ComputeTime, s.TransmitTime)
	}
	collect := s.BytesFor(cluster.Collect)
	if collect <= 0 {
		t.Fatal("distributed Sum should collect partials")
	}
	if sp.Bytes["collect"] != collect {
		t.Errorf("span collect bytes %g != stats %g", sp.Bytes["collect"], collect)
	}
	if sp.Out == nil || sp.Out.Rows != 1 || sp.Out.Cols != 1 {
		t.Errorf("sum output shape wrong: %+v", sp.Out)
	}
}

// TestSelfSubtractionCancels checks the aliased-ewise bugfix: V − V yields
// empty output sparsity instead of the union estimate.
func TestSelfSubtractionCancels(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(21))
	v := scaledDataset(c, rng)

	diff := v.Sub(v)
	if diff.Meta().Sparsity != 0 {
		t.Fatalf("V - V sparsity = %g, want 0", diff.Meta().Sparsity)
	}
	if nnz := diff.Data().NNZ(); nnz != 0 {
		t.Fatalf("kernel result has %d nonzeros", nnz)
	}

	// Distinct operands with the same values must keep the union estimate —
	// the estimator cannot prove cancellation there.
	w := Read(c, v.Data().Clone(), 50_000_000, 8000)
	diff2 := v.Sub(w)
	if diff2.Meta().Sparsity < v.Meta().Sparsity {
		t.Errorf("distinct-operand Sub sparsity %g dropped below operand %g",
			diff2.Meta().Sparsity, v.Meta().Sparsity)
	}
}

// TestSelfMulKeepsSparsity guards the aliased fast path the self-sub fix
// shares: V ⊙ V keeps the operand's sparsity.
func TestSelfMulKeepsSparsity(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(22))
	v := scaledDataset(c, rng)
	if got := v.ElemMul(v).Meta().Sparsity; got != v.Meta().Sparsity {
		t.Fatalf("V*V sparsity = %g, want %g", got, v.Meta().Sparsity)
	}
}

// TestAddScalarPricesDensifiedOutput checks the AddScalar bugfix: the pass
// is priced on the densified result, not the sparse input.
func TestAddScalarPricesDensifiedOutput(t *testing.T) {
	c := tracedCtx()
	rng := rand.New(rand.NewSource(23))
	m := matrix.RandSparse(rng, 100, 100, 0.01)
	d := New(c, m, 0, 0)
	if !d.Local() {
		t.Fatal("test expects a local input")
	}
	out := d.AddScalar(1)
	if out.Meta().Sparsity != 1 {
		t.Fatalf("scalar addition must densify, got sparsity %g", out.Meta().Sparsity)
	}
	spans := c.Recorder.Spans()
	if len(spans) != 1 || spans[0].Kind != "add-scalar" {
		t.Fatalf("AddScalar must emit one span, got %+v", spans)
	}
	if want := 100.0 * 100.0; spans[0].FLOP != want {
		t.Fatalf("AddScalar FLOP = %g, want %g (rows*cols of the densified output)", spans[0].FLOP, want)
	}
}

// TestSpanTotalsMatchClusterStats is the stats-equals-spans invariant at
// the operator level: a mixed sequence of charged operators leaves the
// recorder and the cluster in exact agreement.
func TestSpanTotalsMatchClusterStats(t *testing.T) {
	c := tracedCtx()
	rng := rand.New(rand.NewSource(24))
	a := scaledDataset(c, rng)
	h := New(c, matrix.RandDense(rng, 200, 200), 8000, 8000)
	x := New(c, matrix.RandDense(rng, 200, 1), 8000, 1)

	ax := a.Mul(x)
	g := a.Transpose().Mul(ax)
	g = g.Scale(0.5).Add(h.Mul(x))
	g.AddScalar(1)
	g.Sum()

	sum := c.Recorder.Summary()
	s := c.Cluster.Stats()
	if sum.Ops != s.Ops {
		t.Fatalf("span ops %d != cluster ops %d", sum.Ops, s.Ops)
	}
	const tol = 1e-9
	if math.Abs(sum.ComputeSec-s.ComputeTime) > tol {
		t.Errorf("compute: spans %g vs stats %g", sum.ComputeSec, s.ComputeTime)
	}
	if math.Abs(sum.TransmitSec-s.TransmitTime) > tol {
		t.Errorf("transmit: spans %g vs stats %g", sum.TransmitSec, s.TransmitTime)
	}
	if math.Abs(sum.FLOP-s.FLOP) > tol {
		t.Errorf("flop: spans %g vs stats %g", sum.FLOP, s.FLOP)
	}
	for _, p := range cluster.Primitives {
		if math.Abs(sum.Bytes[p.String()]-s.BytesFor(p)) > tol {
			t.Errorf("%v bytes: spans %g vs stats %g", p, sum.Bytes[p.String()], s.BytesFor(p))
		}
	}
}

// TestUntracedContextStillCharges checks that a nil recorder (the engine's
// untraced path) does not disturb accounting.
func TestUntracedContextStillCharges(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(25))
	a := scaledDataset(c, rng)
	a.Sum()
	if c.Cluster.Stats().Ops < 2 {
		t.Fatal("charges must still reach the cluster without a recorder")
	}
}
