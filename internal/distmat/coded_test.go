package distmat

import (
	"math"
	"math/rand"
	"testing"

	"remac/internal/cluster"
	"remac/internal/fault"
)

// codedCtx builds a traced, coded context with a clock-silent fault plan
// so tests inject failures directly through the observer path.
func codedCtx(k, n int) *Context {
	c := faultCtx(fault.Event{At: 1e18, Kind: fault.WorkerFailure})
	c.EnableCoded(k, n)
	return c
}

// maxRelDiff measures the largest entry difference between two matrices of
// equal shape, relative to the largest entry magnitude of want.
func maxRelDiff(t *testing.T, d *DistMatrix, want [][]float64) float64 {
	t.Helper()
	got := d.Data()
	var maxDiff, maxAbs float64
	for i := range want {
		for j := range want[i] {
			if diff := math.Abs(got.At(i, j) - want[i][j]); diff > maxDiff {
				maxDiff = diff
			}
			if a := math.Abs(want[i][j]); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

func snapshot(d *DistMatrix) [][]float64 {
	m := d.Data()
	rows, cols := m.Rows(), m.Cols()
	out := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		out[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			out[i][j] = m.At(i, j)
		}
	}
	return out
}

// TestCodedEncodeChargedHonestly: producing a distributed value under the
// coded policy charges the parity encode — 2·w·p·nnz/k virtual FLOP, the
// DFS parity write — and records it as an encode/parity span whose Out
// shape carries the measured parity sparsity.
func TestCodedEncodeChargedHonestly(t *testing.T) {
	c := codedCtx(4, 6)
	rng := rand.New(rand.NewSource(40))
	a := scaledDataset(c, rng)
	if a.parity == nil {
		t.Fatal("coded context must encode parity for a distributed input")
	}
	const k, p, w = 4, 2, 3 // w = k-p+1 for the default 4-of-6 code
	if a.parity.weight != w {
		t.Fatalf("support width = %d, want %d", a.parity.weight, w)
	}
	wantFLOP := 2 * float64(w) * float64(p) * a.Meta().NNZ() / float64(k)
	s := c.Cluster.Stats()
	if math.Abs(s.EncodeFLOP-wantFLOP) > 1e-6*wantFLOP {
		t.Fatalf("EncodeFLOP = %g, want %g", s.EncodeFLOP, wantFLOP)
	}

	var spanFLOP, spanDFS float64
	var out float64
	found := 0
	for _, sp := range c.Recorder.Spans() {
		if sp.Label != "encode/parity" {
			continue
		}
		found++
		spanFLOP += sp.FLOP
		spanDFS += sp.Bytes["dfs"]
		if sp.Out != nil {
			out = sp.Out.Sparsity
		}
	}
	if found != 1 {
		t.Fatalf("found %d encode/parity spans, want 1", found)
	}
	if math.Abs(spanFLOP-s.EncodeFLOP) > 1e-6 {
		t.Fatalf("encode span FLOP %g != stats EncodeFLOP %g", spanFLOP, s.EncodeFLOP)
	}
	if spanDFS <= 0 {
		t.Fatal("encode span must charge the DFS parity write")
	}
	if out <= 0 || out > 1 {
		t.Fatalf("encode span parity sparsity = %g, want (0,1]", out)
	}
}

// TestCodedDecodeRecoversWithoutRecompute: erasing one data group of a
// derived value decodes it from parity — zero RecomputeFLOP, DecodeSec
// charged, a recovery/coded-decode span with FLOP 0 and a bounded RelErr —
// and the reconstructed entries match the originals to 1e-9 relative.
func TestCodedDecodeRecoversWithoutRecompute(t *testing.T) {
	c := codedCtx(4, 6)
	rng := rand.New(rand.NewSource(41))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	if b.parity == nil {
		t.Fatal("derived value must carry parity")
	}
	want := snapshot(b)

	w := c.Cluster.Config().Workers()
	c.onFault(cluster.FaultCharge{Event: fault.Event{
		Kind: fault.WorkerFailure, Worker: (b.parity.home + 1) % w}})
	b.Sum()

	s := c.Cluster.Stats()
	if s.RecomputeFLOP != 0 {
		t.Fatalf("coded decode must not recompute: RecomputeFLOP = %g", s.RecomputeFLOP)
	}
	if s.CodedRecoveries == 0 || s.DecodeSec <= 0 {
		t.Fatalf("decode must be charged: recoveries=%d decodeSec=%g", s.CodedRecoveries, s.DecodeSec)
	}
	if math.Abs(s.RecoverySec-s.DecodeSec) > 1e-9 {
		t.Fatalf("RecoverySec %g != DecodeSec %g: decode is the only recovery here", s.RecoverySec, s.DecodeSec)
	}

	found := false
	for _, sp := range c.Recorder.Spans() {
		if sp.Label != "recovery/coded-decode" {
			continue
		}
		found = true
		if sp.FLOP != 0 {
			t.Fatalf("decode span FLOP = %g, must be 0 (decode is not recomputation)", sp.FLOP)
		}
		if sp.RelErr > 1e-9 {
			t.Fatalf("decode span RelErr = %g, want <= 1e-9", sp.RelErr)
		}
		if sp.RecoverySec <= 0 {
			t.Fatal("decode span must carry the decode seconds")
		}
	}
	if !found {
		t.Fatal("decode must record a recovery/coded-decode span")
	}
	if rel := maxRelDiff(t, b, want); rel > 1e-9 {
		t.Fatalf("decoded value deviates by %g relative, want <= 1e-9", rel)
	}

	// A second use must not decode again.
	before := s.CodedRecoveries
	b.Sum()
	if after := c.Cluster.Stats(); after.CodedRecoveries != before {
		t.Fatal("decode ran twice for one failure")
	}
}

// TestCodedSurvivorsStayBitwise: a failure on a worker that hosts none of
// the value's data groups charges nothing and leaves the materialized
// sample untouched — byte for byte the same object.
func TestCodedSurvivorsStayBitwise(t *testing.T) {
	c := codedCtx(4, 6)
	rng := rand.New(rand.NewSource(42))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	before := b.Data()
	w := c.Cluster.Config().Workers() // 6 workers, 4 groups: home+4 hosts none
	c.onFault(cluster.FaultCharge{Event: fault.Event{
		Kind: fault.WorkerFailure, Worker: (b.parity.home + 4) % w}})
	b.Sum()
	s := c.Cluster.Stats()
	if s.RecoverySec != 0 || s.RecomputeFLOP != 0 || s.CodedRecoveries != 0 {
		t.Fatalf("no group erased, nothing to recover: %+v", s)
	}
	if b.Data() != before {
		t.Fatal("untouched value must stay the identical (bitwise) matrix")
	}
}

// TestCodedUnrecoverableFallsBackToLineage: erasing more groups than the
// parity can cover recomputes the erased fraction from lineage with the
// recompute FLOP reported honestly.
func TestCodedUnrecoverableFallsBackToLineage(t *testing.T) {
	c := codedCtx(4, 6)
	rng := rand.New(rand.NewSource(43))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	prod := b.prod
	w := c.Cluster.Config().Workers()
	for g := 0; g < 3; g++ { // 3 erasures > p=2
		c.onFault(cluster.FaultCharge{Event: fault.Event{
			Kind: fault.WorkerFailure, Worker: (b.parity.home + g) % w}})
	}
	b.Sum()
	s := c.Cluster.Stats()
	lost := 3.0 / 4.0
	if want := prod.FLOP * lost; math.Abs(s.RecomputeFLOP-want) > 1e-6*want {
		t.Fatalf("RecomputeFLOP = %g, want %g (erased fraction of producer)", s.RecomputeFLOP, want)
	}
	if s.CodedRecoveries != 0 {
		t.Fatal("an unrecoverable pattern must not count as a coded recovery")
	}
	found := false
	for _, sp := range c.Recorder.Spans() {
		if sp.Label == "recovery/lineage" {
			found = true
		}
	}
	if !found {
		t.Fatal("fallback must record a recovery/lineage span")
	}
}

// TestCodedStatsEqualsSpans extends the stats-equals-spans invariant to
// coded runs under heavy fault rates: recovery seconds, recompute FLOP and
// bytes must match between the cluster stats and the recorded spans, the
// decode seconds must equal the recovery/coded-decode spans' total, and
// the encode FLOP must equal the encode/parity spans' total.
func TestCodedStatsEqualsSpans(t *testing.T) {
	c := tracedCtx()
	c.EnableCoded(4, 6)
	c.EnableFaults(fault.NewPlan(fault.Config{
		Seed:                  7,
		WorkerFailuresPerHour: 600,
		TransmitErrorsPerHour: 1200,
		StragglersPerHour:     600,
		Workers:               c.Cluster.Config().Workers(),
	}))
	rng := rand.New(rand.NewSource(44))
	a := scaledDataset(c, rng)
	b := a.Scale(2)
	for i := 0; i < 20; i++ {
		b = b.Add(a)
		b.Sum()
	}

	s := c.Cluster.Stats()
	if s.FailedWorkers == 0 || s.Retries == 0 {
		t.Fatalf("rates this high must fire failures and retries: %+v", s)
	}
	if s.CodedRecoveries == 0 || s.EncodeFLOP == 0 {
		t.Fatalf("a coded run this long must encode and decode: %+v", s)
	}
	sum := c.Recorder.Summary()
	if math.Abs(sum.RecoverySec-s.RecoverySec) > 1e-9*(1+s.RecoverySec) {
		t.Errorf("span RecoverySec %g != stats %g", sum.RecoverySec, s.RecoverySec)
	}
	if math.Abs(sum.RecomputeFLOP-s.RecomputeFLOP) > 1e-6 {
		t.Errorf("span RecomputeFLOP %g != stats %g", sum.RecomputeFLOP, s.RecomputeFLOP)
	}
	var spanBytes, decodeSec, encodeFLOP float64
	for _, sp := range c.Recorder.Spans() {
		for _, v := range sp.Bytes {
			spanBytes += v
		}
		switch sp.Label {
		case "recovery/coded-decode":
			decodeSec += sp.RecoverySec
		case "encode/parity":
			encodeFLOP += sp.FLOP
		}
	}
	if math.Abs(spanBytes-s.TotalBytes()) > 1e-6*(1+s.TotalBytes()) {
		t.Errorf("span bytes %g != stats bytes %g", spanBytes, s.TotalBytes())
	}
	if math.Abs(decodeSec-s.DecodeSec) > 1e-9*(1+s.DecodeSec) {
		t.Errorf("decode span seconds %g != stats DecodeSec %g", decodeSec, s.DecodeSec)
	}
	if math.Abs(encodeFLOP-s.EncodeFLOP) > 1e-6 {
		t.Errorf("encode span FLOP %g != stats EncodeFLOP %g", encodeFLOP, s.EncodeFLOP)
	}
}
