package distmat

// Coded k-of-n recovery for distributed values (third recovery policy next
// to lineage recomputation and DFS checkpoints; DESIGN.md §15).
//
// A systematic low-weight erasure code splits a distributed matrix row-wise
// into k data groups and appends p = n-k parity blocks, each a sparse linear
// combination of a banded support of w = k-p+1 consecutive groups with
// Cauchy coefficients (any square coefficient submatrix is nonsingular, so
// every erasure pattern of ≤ p *covered* groups decodes; for the default
// k=4, n=6 every 1- and 2-erasure pattern is covered). Parity blocks are
// persisted to the fault-tolerant store at encode time — the coded analogue
// of a checkpoint, at parity cost instead of full-copy cost — so worker
// failures can only erase data groups.
//
// Encoding is real: parity blocks are materialized from the sample data, so
// decoded values are numerically honest (bitwise-identical when every
// systematic block survives, tolerance-bounded float residue when the
// parity-decode path runs; the measured relative error is flagged on the
// recovery/coded-decode span). Costs are virtual like every other operator:
// encode FLOP and DFS parity-write bytes are charged through the cluster
// clock as encode/parity spans, decode time and bytes through
// ChargeCodedDecode as recovery/coded-decode fault spans with FLOP 0 —
// decode is new work, not recomputation, so coded recovery keeps
// RecomputeFLOP at zero.

import (
	"math"
	"time"

	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/fault"
	"remac/internal/matrix"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// Default code parameters: 4 data groups, 2 parity blocks (tolerates any
// two worker failures between uses of a value with no recomputation).
const (
	DefaultCodedK = 4
	DefaultCodedN = 6
)

// minCodedK is the smallest usable group count; below it the code would
// degenerate to replication.
const minCodedK = 2

// EnableCoded turns on coded k-of-n recovery: every non-local value is
// encoded with p = n-k parity blocks when produced, and the cluster masks
// up to p straggling tasks per stage (their blocks are decoded from parity
// instead of waiting out the stretch). Panics on invalid parameters —
// engine.RecoveryPolicy validates before calling.
func (ctx *Context) EnableCoded(k, n int) {
	if k < minCodedK || n <= k {
		panic("distmat: EnableCoded requires n > k >= 2")
	}
	ctx.codedK, ctx.codedN = k, n
	ctx.Cluster.SetCoded(n - k)
}

// Coded reports whether coded recovery is enabled.
func (ctx *Context) Coded() bool { return ctx.codedK >= minCodedK }

// codedParity is the erasure-code state attached to one distributed value.
type codedParity struct {
	k, p      int
	weight    int     // support width of each parity block
	home      int     // data group g lives on worker (home+g) mod W
	groupRows int     // materialized rows per data group (last may be short)
	supports  [][]int // parity j combines data groups supports[j]
	coeffs    [][]float64
	blocks    []*matrix.Matrix // p materialized parity blocks, groupRows×cols
	meta      sparsity.Meta    // virtual-scale parity block descriptor
}

// codedLayout builds the banded supports and Cauchy coefficients of the
// (k, p) code. Support j covers w = max(2, k-p+1) groups starting at
// j·ceil(k/p), so the supports stagger around the ring and jointly cover
// every group; coefficient c[j][i] = 1/(x_j - y_i) with distinct nodes
// x_j = k+j+1/2, y_i = i makes every square submatrix of the full
// coefficient matrix nonsingular (Cauchy), leaving only support coverage to
// limit decodability.
func codedLayout(k, p int) (supports [][]int, coeffs [][]float64, w int) {
	w = k - p + 1
	if w < 2 {
		w = 2
	}
	if w > k {
		w = k
	}
	stride := (k + p - 1) / p
	supports = make([][]int, p)
	coeffs = make([][]float64, p)
	for j := 0; j < p; j++ {
		seen := make(map[int]bool, w)
		sup := make([]int, 0, w)
		cs := make([]float64, 0, w)
		for t := 0; t < w; t++ {
			g := (j*stride + t) % k
			if seen[g] {
				continue
			}
			seen[g] = true
			sup = append(sup, g)
			cs = append(cs, 1/(float64(k+j)+0.5-float64(g)))
		}
		supports[j] = sup
		coeffs[j] = cs
	}
	return supports, coeffs, w
}

// coeffOf returns parity j's coefficient for group g (0 when g is outside
// the support).
func (cp *codedParity) coeffOf(j, g int) float64 {
	for t, sg := range cp.supports[j] {
		if sg == g {
			return cp.coeffs[j][t]
		}
	}
	return 0
}

// groupOf maps a materialized row to its data group.
func (cp *codedParity) groupOf(row int) int {
	g := row / cp.groupRows
	if g >= cp.k {
		g = cp.k - 1
	}
	return g
}

// codedSettle runs after every operator derivation (and after Read): it
// encodes parity for the freshly produced value and settles any straggler
// events the cluster masked against the coded stage — each masked straggler
// decodes one block from parity instead of stretching the stage. Values
// that cannot carry parity (local, too small) settle masked stragglers by
// charging the stretch they would have cost retroactively.
func (ctx *Context) codedSettle(d *DistMatrix, bd cost.Breakdown) {
	if !ctx.Coded() {
		return
	}
	ctx.encodeParity(d)
	if len(ctx.masked) == 0 {
		return
	}
	masked := ctx.masked
	ctx.masked = nil
	for i, factor := range masked {
		if d.parity != nil {
			// The straggling task's output block is reconstructed from the
			// stage's parity outputs (encoding commutes with the linear
			// stage, so output parity is available without the slow task).
			g := int(uint64(fault.DeriveSeed(ctx.codedSeq, i)) % uint64(d.parity.k))
			ctx.decodeGroups(d, []int{g})
			continue
		}
		// No parity to decode from: the stage waited out the straggler
		// after all; charge the stretch it masked too early.
		sec := (factor - 1) * bd.Total()
		ctx.Cluster.ChargeRecovery(0, sec, [4]float64{})
		ctx.Recorder.Record(trace.FaultOp("fault", "fault/straggler", sec, 0, [4]float64{}))
	}
}

// encodeParity materializes the p parity blocks of a freshly produced
// non-local value and charges the encode honestly: 2·w·nnz/k FLOP per
// parity block at virtual scale, plus the DFS write of the parity bytes.
// The encode rides the producing stage (no extra job launch), so only
// compute and transmit time are charged.
func (ctx *Context) encodeParity(d *DistMatrix) {
	k, n := ctx.codedK, ctx.codedN
	p := n - k
	if d.local || d.parity != nil || d.data.Rows() < k {
		return
	}
	seq := ctx.codedSeq
	ctx.codedSeq++

	supports, coeffs, w := codedLayout(k, p)
	rows, cols := d.data.Rows(), d.data.Cols()
	gr := (rows + k - 1) / k
	cp := &codedParity{
		k: k, p: p, weight: w,
		home:      int(uint64(fault.DeriveSeed(seq, -1)) % uint64(ctx.Cluster.Config().Workers())),
		groupRows: gr,
		supports:  supports,
		coeffs:    coeffs,
	}

	start := time.Now()
	bufs := make([][]float64, p)
	for j := range bufs {
		bufs[j] = make([]float64, gr*cols)
	}
	d.data.ForEachNonzero(func(i, j int, v float64) {
		g := cp.groupOf(i)
		lr := i - g*gr
		for pj := 0; pj < p; pj++ {
			if c := cp.coeffOf(pj, g); c != 0 {
				bufs[pj][lr*cols+j] += c * v
			}
		}
	})
	nnz := 0
	cp.blocks = make([]*matrix.Matrix, p)
	for j := range bufs {
		b := matrix.NewDenseData(gr, cols, bufs[j]).Compact()
		nnz += b.NNZ()
		cp.blocks[j] = b
	}
	wall := time.Since(start)

	// Virtual-scale accounting: parity sparsity is measured from the real
	// parity blocks (the low-weight code's sparsity preservation shows up
	// here — the bench reads it off the encode/parity span's Out shape).
	ps := float64(nnz) / (float64(p) * float64(gr) * float64(cols))
	cp.meta = sparsity.MetaDims((d.vMeta.Rows+int64(k)-1)/int64(k), d.vMeta.Cols, ps)
	cfg := ctx.Cluster.Config()
	flop := 2 * float64(w) * float64(p) * d.vMeta.NNZ() / float64(k)
	parityBytes := float64(p) * cost.SizeBytes(cp.meta)
	bd := cost.Breakdown{
		FLOP:       flop,
		ComputeSec: flop / cfg.ClusterFlops(),
		Method:     cost.DFSIO,
	}
	bd.Bytes[cluster.DFS] = parityBytes
	bd.TransmitSec = cfg.TransmitWeight(cluster.DFS) * parityBytes
	ctx.apply("encode", "encode/parity", bd, []sparsity.Meta{d.vMeta}, &cp.meta, wall)
	ctx.Cluster.AddEncodeFLOP(flop)
	d.parity = cp
}

// repairCoded settles a coded value against the worker failures since it
// was last resident: data groups homed on failed workers are erased; if the
// code can reconstruct them (≤ p erasures with solvable supports) the value
// decodes from parity with zero recomputation, otherwise the erased
// fraction falls back to lineage (or DFS re-read for inputs) like an
// uncoded value.
func (d *DistMatrix) repairCoded(from int) {
	ctx := d.ctx
	cp := d.parity
	w := ctx.Cluster.Config().Workers()
	failed := make(map[int]bool)
	for _, fw := range ctx.failLog[from:ctx.failEpoch] {
		if fw < 0 {
			fw = -fw
		}
		failed[fw%w] = true
	}
	rows := d.data.Rows()
	var erased []int
	for g := 0; g < cp.k; g++ {
		if g*cp.groupRows >= rows {
			break // short matrix: group holds no rows
		}
		if failed[(cp.home+g)%w] {
			erased = append(erased, g)
		}
	}
	if len(erased) == 0 {
		return
	}
	if ctx.decodeGroups(d, erased) {
		return
	}
	// Unrecoverable pattern (more erasures than surviving parity can
	// cover): the erased fraction recomputes from lineage, exactly like the
	// uncoded path, and the recompute FLOP is reported honestly.
	lost := float64(len(erased)) / float64(cp.k)
	bd, label := d.prod, "recovery/lineage"
	if d.ckpt {
		bd, label = ctx.Model.DFSRead(d.vMeta), "recovery/checkpoint"
	} else if bd.FLOP == 0 && bd.Total() == 0 {
		bd, label = ctx.Model.DFSRead(d.vMeta), "recovery/dfs-read"
	}
	var bytes [4]float64
	for i := range bytes {
		bytes[i] = bd.Bytes[i] * lost
	}
	flop := bd.FLOP * lost
	sec := bd.Total() * lost
	ctx.Cluster.ChargeRecovery(flop, sec, bytes)
	ctx.Recorder.Record(trace.FaultOp("recovery", label, sec, flop, bytes))
}

// decodeGroups reconstructs the erased data groups from parity: for each
// chosen parity block, the known groups' contributions are subtracted,
// leaving a linear system in the erased groups whose Cauchy coefficient
// submatrix is inverted by Gaussian elimination. Returns false (charging
// nothing) when no parity subset covers the erasures. On success the
// decoded rows replace the erased ones in a fresh matrix (values may be
// shared across caches — never mutated in place), the decode seconds and
// bytes are charged through ChargeCodedDecode, and the measured relative
// error is flagged on the recovery/coded-decode span.
func (ctx *Context) decodeGroups(d *DistMatrix, erased []int) bool {
	cp := d.parity
	e := len(erased)
	if e == 0 {
		return true
	}
	if e > cp.p {
		return false
	}
	start := time.Now()
	choice, inv := cp.solvableSubset(erased)
	if choice == nil {
		return false
	}
	rows, cols := d.data.Rows(), d.data.Cols()
	gr := cp.groupRows

	// RHS_r = parity_r - Σ_{known g ∈ support_r} c[r][g]·G_g.
	erasedSet := make(map[int]bool, e)
	for _, g := range erased {
		erasedSet[g] = true
	}
	rhs := make([][]float64, e)
	for r, pj := range choice {
		buf := make([]float64, gr*cols)
		cp.blocks[pj].ForEachNonzero(func(i, j int, v float64) {
			buf[i*cols+j] = v
		})
		d.data.ForEachNonzero(func(i, j int, v float64) {
			g := cp.groupOf(i)
			if erasedSet[g] {
				return
			}
			if c := cp.coeffOf(pj, g); c != 0 {
				buf[(i-g*gr)*cols+j] -= c * v
			}
		})
		rhs[r] = buf
	}

	// X_c = Σ_r inv[c][r]·RHS_r, written over the erased rows of a copy.
	out := d.data.ToDense()
	if out == d.data {
		out = out.Clone()
	}
	var maxDiff, maxOrig float64
	for c, g := range erased {
		lo := g * gr
		hi := lo + gr
		if hi > rows {
			hi = rows
		}
		for i := lo; i < hi; i++ {
			lr := i - lo
			for j := 0; j < cols; j++ {
				var x float64
				for r := range choice {
					x += inv[c][r] * rhs[r][lr*cols+j]
				}
				orig := d.data.At(i, j)
				if diff := math.Abs(x - orig); diff > maxDiff {
					maxDiff = diff
				}
				if a := math.Abs(orig); a > maxOrig {
					maxOrig = a
				}
				out.Set(i, j, x)
			}
		}
	}
	relErr := maxDiff
	if maxOrig > 0 {
		relErr = maxDiff / maxOrig
	}
	d.data = out.Compact()
	wall := time.Since(start)

	// Virtual-scale decode charge: read the chosen parity blocks back from
	// DFS, combine them with the surviving groups (2·(w+1)·nnz/k FLOP per
	// reconstructed group), shuffle the rebuilt blocks to their new homes.
	// The FLOP is decode work, not recomputation: its time lands in
	// DecodeSec and the span carries FLOP 0, keeping RecomputeFLOP zero
	// for coded recoveries.
	cfg := ctx.Cluster.Config()
	fe := float64(e)
	flop := 2 * (float64(cp.weight) + 1) * fe * d.vMeta.NNZ() / float64(cp.k)
	parityBytes := fe * cost.SizeBytes(cp.meta)
	reconBytes := fe / float64(cp.k) * cost.SizeBytes(d.vMeta)
	sec := flop/cfg.ClusterFlops() +
		cfg.TransmitWeight(cluster.DFS)*parityBytes +
		cfg.TransmitWeight(cluster.Shuffle)*reconBytes
	var bytes [4]float64
	bytes[cluster.DFS] = parityBytes
	bytes[cluster.Shuffle] = reconBytes
	ctx.Cluster.ChargeCodedDecode(sec, bytes)
	sp := trace.FaultOp("recovery", "recovery/coded-decode", sec, 0, bytes)
	sp.RelErr = relErr
	sp.WallNS = wall.Nanoseconds()
	ctx.Recorder.Record(sp)
	return true
}

// solvableSubset picks e of the p parity blocks whose coefficient submatrix
// over the erased groups is invertible, returning the chosen parity indices
// and the inverse. Subsets are tried in lexicographic order; nil when none
// is solvable (an erased group outside every surviving support).
func (cp *codedParity) solvableSubset(erased []int) ([]int, [][]float64) {
	e := len(erased)
	idx := make([]int, e)
	for i := range idx {
		idx[i] = i
	}
	for {
		a := make([][]float64, e)
		for r := 0; r < e; r++ {
			a[r] = make([]float64, e)
			for c, g := range erased {
				a[r][c] = cp.coeffOf(idx[r], g)
			}
		}
		if inv := invertSmall(a); inv != nil {
			return append([]int(nil), idx...), inv
		}
		// Advance to the next e-combination of {0..p-1}.
		i := e - 1
		for i >= 0 && idx[i] == cp.p-e+i {
			i--
		}
		if i < 0 {
			return nil, nil
		}
		idx[i]++
		for j := i + 1; j < e; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// invertSmall inverts a small dense matrix by Gauss-Jordan elimination with
// partial pivoting; nil when singular (pivot below tolerance).
func invertSmall(a [][]float64) [][]float64 {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, 2*n)
		copy(m[i], a[i])
		m[i][n+i] = 1
	}
	const tol = 1e-12
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < tol {
			return nil
		}
		m[col], m[piv] = m[piv], m[col]
		p := m[col][col]
		for j := col; j < 2*n; j++ {
			m[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := col; j < 2*n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = m[i][n : 2*n]
	}
	return inv
}
