package distmat

import (
	"math"
	"math/rand"
	"testing"

	"remac/internal/cluster"
	"remac/internal/matrix"
)

func ctx() *Context { return NewContext(cluster.New(cluster.DefaultConfig())) }

// scaledDataset builds a small materialized matrix that stands in for a
// paper-scale distributed dataset via virtual dimensions.
func scaledDataset(c *Context, rng *rand.Rand) *DistMatrix {
	m := matrix.RandSparse(rng, 2000, 200, 0.02)
	return Read(c, m, 50_000_000, 8000)
}

func TestNewPlacement(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(1))
	small := New(c, matrix.RandDense(rng, 10, 10), 0, 0)
	if !small.Local() {
		t.Error("tiny matrix should be local")
	}
	big := scaledDataset(c, rng)
	if big.Local() {
		t.Error("virtual 50M×8K dataset must be distributed")
	}
	vr, vc := big.VirtualDims()
	if vr != 50_000_000 || vc != 8000 {
		t.Fatalf("virtual dims %dx%d", vr, vc)
	}
}

func TestReadChargesInputPartition(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(2))
	scaledDataset(c, rng)
	s := c.Cluster.Stats()
	if s.BytesFor(cluster.DFS) <= 0 {
		t.Error("Read must charge dfs bytes for distributed input")
	}
	if s.BytesFor(cluster.Shuffle) <= 0 {
		t.Error("Read must charge partition shuffle")
	}
	// Worker shares recorded and roughly balanced.
	total := 0.0
	for _, b := range s.WorkerBytes {
		total += b
	}
	if total <= 0 {
		t.Fatal("no worker bytes recorded")
	}
	for w, b := range s.WorkerBytes {
		frac := b / total
		if frac < 0.05 || frac > 0.4 {
			t.Errorf("worker %d holds %.2f of data, hash partitioning should balance", w, frac)
		}
	}
}

func TestReadLocalNoCharge(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(3))
	Read(c, matrix.RandDense(rng, 10, 10), 0, 0)
	if c.Cluster.Stats().TotalBytes() != 0 {
		t.Error("local read must not charge transmission")
	}
}

func TestMulValuesExact(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(4))
	a := matrix.RandDense(rng, 30, 20)
	b := matrix.RandDense(rng, 20, 10)
	da := New(c, a, 0, 0)
	db := New(c, b, 0, 0)
	got := da.Mul(db).Data()
	if !got.ApproxEqual(a.Mul(b), 1e-12) {
		t.Fatal("distributed Mul changed values")
	}
}

func TestMulVirtualDimMismatchPanics(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(5))
	a := New(c, matrix.RandDense(rng, 4, 4), 100, 100)
	b := New(c, matrix.RandDense(rng, 4, 4), 99, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Mul(b)
}

func TestCrossContextPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := New(ctx(), matrix.RandDense(rng, 4, 4), 0, 0)
	b := New(ctx(), matrix.RandDense(rng, 4, 4), 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Add(b)
}

func TestMatrixVectorUsesBMMAndCollects(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(7))
	a := scaledDataset(c, rng)
	c.Cluster.Reset()
	v := New(c, matrix.RandDense(rng, 200, 1), 8000, 1)
	out := a.Mul(v)
	s := c.Cluster.Stats()
	if s.BytesFor(cluster.Broadcast) <= 0 {
		t.Error("matrix-vector should broadcast the vector")
	}
	if out.Local() {
		t.Error("a 400MB result vector must stay distributed (RDD semantics)")
	}
	// A small product of a distributed operand is collected.
	h := New(c, matrix.RandDense(rng, 200, 200), 120_000, 8000)
	if h.Local() {
		t.Fatal("5GB operand should be distributed")
	}
	small := h.Mul(New(c, matrix.RandDense(rng, 200, 1), 8000, 1))
	if !small.Local() {
		t.Error("a 120000x1 result (~640KB) should be collected local")
	}
	if c.Cluster.Stats().BytesFor(cluster.Collect) <= 0 {
		t.Error("collect bytes expected for the small result")
	}
}

func TestEWiseOpsMatchKernels(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(8))
	am := matrix.RandDense(rng, 12, 12)
	bm := matrix.RandDense(rng, 12, 12)
	a := New(c, am, 0, 0)
	b := New(c, bm, 0, 0)
	if !a.Add(b).Data().ApproxEqual(am.Add(bm), 0) {
		t.Error("Add wrong")
	}
	if !a.Sub(b).Data().ApproxEqual(am.Sub(bm), 0) {
		t.Error("Sub wrong")
	}
	if !a.ElemMul(b).Data().ApproxEqual(am.ElemMul(bm), 0) {
		t.Error("ElemMul wrong")
	}
	if !a.ElemDiv(b).Data().ApproxEqual(am.ElemDiv(bm), 0) {
		t.Error("ElemDiv wrong")
	}
	if !a.Transpose().Data().ApproxEqual(am.Transpose(), 0) {
		t.Error("Transpose wrong")
	}
	if !a.Scale(2.5).Data().ApproxEqual(am.Scale(2.5), 0) {
		t.Error("Scale wrong")
	}
	if math.Abs(a.Sum()-am.Sum()) > 1e-9 {
		t.Error("Sum wrong")
	}
}

func TestEWiseShapeMismatchPanics(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(9))
	a := New(c, matrix.RandDense(rng, 3, 4), 0, 0)
	b := New(c, matrix.RandDense(rng, 3, 4), 30, 40)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Add(b) // virtual dims differ
}

func TestDistributedSumChargesCollect(t *testing.T) {
	c := ctx()
	rng := rand.New(rand.NewSource(10))
	a := scaledDataset(c, rng)
	c.Cluster.Reset()
	a.Sum()
	if c.Cluster.Stats().BytesFor(cluster.Collect) <= 0 {
		t.Error("distributed Sum should collect partials")
	}
}

func TestDistributedOpsSlowerThanLocal(t *testing.T) {
	// The same logical multiplication must cost more simulated time when the
	// operands are distributed — the effect that makes detrimental
	// eliminations detrimental.
	rng := rand.New(rand.NewSource(11))
	am := matrix.RandDense(rng, 100, 50)
	bm := matrix.RandDense(rng, 50, 40)

	cLocal := ctx()
	New(cLocal, am, 0, 0).Mul(New(cLocal, bm, 0, 0))
	localTime := cLocal.Cluster.Stats().TotalTime()

	cDist := ctx()
	a := New(cDist, am, 40_000_000, 10_000)
	b := New(cDist, bm, 10_000, 9_000)
	a.Mul(b)
	distTime := cDist.Cluster.Stats().TotalTime()
	if distTime <= localTime {
		t.Fatalf("distributed mul (%g s) should cost more than local (%g s)", distTime, localTime)
	}
}

func TestWorkerSharesSkewedStillBalanced(t *testing.T) {
	// Fig 13: hash partitioning of 1000×1000 blocks keeps worker shares
	// near 1/6 even on zipf-2.8 data.
	c := cluster.New(cluster.DefaultConfig())
	rng := rand.New(rand.NewSource(12))
	m := matrix.ZipfSparse(rng, 2000, 500, 0.01, 2.8)
	shares := WorkerShares(c, m)
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g", sum)
	}
	for w, s := range shares {
		if s < 0.05 || s > 0.45 {
			t.Errorf("worker %d share %.3f too unbalanced", w, s)
		}
	}
}

func TestWorkerSharesEmptyMatrix(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig())
	m := matrix.NewDense(10, 10)
	shares := WorkerShares(c, m)
	for _, s := range shares {
		if math.Abs(s-1.0/6) > 1e-9 {
			t.Fatal("empty matrix should fall back to uniform shares")
		}
	}
}
