package chain

import (
	"strings"
	"testing"

	"remac/internal/lang"
	"remac/internal/plan"
	"remac/internal/sparsity"
)

type res map[string]sparsity.Meta

func (r res) MetaFor(sym string) (sparsity.Meta, bool) {
	m, ok := r[strings.SplitN(sym, "#", 2)[0]]
	return m, ok
}
func (r res) IsSymmetric(string) bool { return false }

func dfpResolver() res {
	return res{
		"A": sparsity.MetaDims(1000, 50, 0.1),
		"b": sparsity.MetaDims(1000, 1, 1),
		"H": sparsity.MetaDims(50, 50, 1),
		"x": sparsity.MetaDims(50, 1, 1),
		"i": sparsity.MetaDims(1, 1, 1),
	}
}

const dfpSrc = `
#@symmetric H
A = read("A")
b = read("b")
H = read("H")
x = read("x")
i = 0
while (i < 3) {
    g = t(A) %*% (A %*% x - b)
    d = H %*% g
    H = H - (H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H) / as.scalar(t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + (d %*% t(d)) / as.scalar(2 * (t(d) %*% t(A) %*% A %*% d))
    x = x - 0.1 * d
    i = i + 1
}
`

func dfpCoordinates(t *testing.T) *Coordinates {
	t.Helper()
	plans, err := plan.Build(lang.MustParse(dfpSrc))
	if err != nil {
		t.Fatal(err)
	}
	sym := plan.SymTable(plans.Symmetric)
	var roots []*plan.Node
	for _, r := range plans.SearchRoots() {
		roots = append(roots, plan.Normalize(r, sym))
	}
	c, err := Extract(roots, dfpResolver(), sym)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExtractDFP(t *testing.T) {
	c := dfpCoordinates(t)
	if len(c.Blocks) < 5 {
		t.Fatalf("blocks = %d, want at least the 5 of Figure 4 (expansion adds more):\n%s", len(c.Blocks), c)
	}
	// Coordinates must be strictly increasing and global.
	last := 0
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if a.Coord != last+1 {
				t.Fatalf("coordinates not sequential at %v (prev %d)", a, last)
			}
			last = a.Coord
		}
	}
	if last != c.NAtoms {
		t.Fatalf("NAtoms = %d, last coord = %d", c.NAtoms, last)
	}
	// H is symmetric: no atom may carry a transpose on H.
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if strings.HasPrefix(a.Sym, "H") && a.T {
				t.Errorf("symmetric H carries transpose in block %d", b.ID)
			}
		}
	}
	// Loop-constant labels on A must be set.
	found := false
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if a.Sym == "A" {
				found = true
				if !a.LoopConst {
					t.Error("A atom not labeled loop-constant")
				}
			}
			if a.Sym == "x" && a.LoopConst {
				t.Error("x atom wrongly labeled loop-constant")
			}
		}
	}
	if !found {
		t.Fatal("no A atoms found")
	}
}

func TestCanonicalKeySymmetricCollision(t *testing.T) {
	// AH vs HAᵀ (H symmetric → its transpose was dropped at push-down):
	// the canonical keys must collide.
	ah := []Atom{{Sym: "A"}, {Sym: "H", Symm: true}}
	haT := []Atom{{Sym: "H", Symm: true}, {Sym: "A", T: true}}
	if CanonicalKey(ah) != CanonicalKey(haT) {
		t.Fatalf("CanonicalKey(AH)=%q != CanonicalKey(HA')=%q", CanonicalKey(ah), CanonicalKey(haT))
	}
	if !Transposed(haT) && !Transposed(ah) {
		// Exactly one of the two orientations is the canonical one.
		t.Log("both orientations canonical — impossible unless equal strings")
	}
}

func TestCanonicalKeyChainTranspose(t *testing.T) {
	// dᵀAᵀA vs AᵀAd: (AᵀAd)ᵀ = dᵀAᵀA, so they share a canonical key.
	dTaTa := []Atom{{Sym: "d", T: true}, {Sym: "A", T: true}, {Sym: "A"}}
	aTad := []Atom{{Sym: "A", T: true}, {Sym: "A"}, {Sym: "d"}}
	if CanonicalKey(dTaTa) != CanonicalKey(aTad) {
		t.Fatalf("%q vs %q", CanonicalKey(dTaTa), CanonicalKey(aTad))
	}
}

func TestCanonicalKeyDistinguishesDifferentChains(t *testing.T) {
	ab := []Atom{{Sym: "A"}, {Sym: "B"}}
	ba := []Atom{{Sym: "B"}, {Sym: "A"}}
	if CanonicalKey(ab) == CanonicalKey(ba) {
		t.Fatal("AB and BA must not collide (matrix multiplication is non-commutative)")
	}
}

func TestSpanMeta(t *testing.T) {
	c := dfpCoordinates(t)
	// Find a block with at least 3 atoms and compute a span meta.
	for _, b := range c.Blocks {
		if b.Len() >= 3 {
			m, err := c.SpanMeta(b, 0, b.Len()-1, sparsity.Metadata{})
			if err != nil {
				t.Fatalf("SpanMeta: %v (block %s)", err, b.Key())
			}
			if m.Rows <= 0 || m.Cols <= 0 {
				t.Fatal("degenerate span meta")
			}
			return
		}
	}
	t.Fatal("no block with >= 3 atoms")
}

func TestSpanMetaUnknownSymbol(t *testing.T) {
	c := &Coordinates{res: res{}}
	b := &Block{Atoms: []Atom{{Sym: "Z"}}}
	if _, err := c.SpanMeta(b, 0, 0, sparsity.Metadata{}); err == nil {
		t.Fatal("unknown symbol accepted")
	}
}

func TestScalarDenominatorsBecomeBlocks(t *testing.T) {
	// The dᵀAᵀAHAᵀAd denominator must appear as its own block (Figure 4
	// blocks 3 and 5 are scalar regions).
	c := dfpCoordinates(t)
	long := 0
	for _, b := range c.Blocks {
		if b.Len() >= 7 {
			long++
		}
	}
	if long < 2 {
		t.Fatalf("expected the numerator and denominator chains among blocks:\n%s", c)
	}
}

func TestGroupsSeparateAdditiveRegions(t *testing.T) {
	src := `
P = read("P")
Q = read("Q")
X = read("X")
Y = read("Y")
Z = read("Z")
R = P %*% X %*% Y + P %*% Y %*% Z + X %*% Y %*% Q + Y %*% Z %*% Q
`
	plans, err := plan.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	r := res{
		"P": sparsity.MetaDims(10, 10, 1), "Q": sparsity.MetaDims(10, 10, 1),
		"X": sparsity.MetaDims(10, 10, 1), "Y": sparsity.MetaDims(10, 10, 1),
		"Z": sparsity.MetaDims(10, 10, 1),
	}
	all := plans.SearchRoots()
	roots := []*plan.Node{plan.Normalize(all[len(all)-1], nil)}
	c, err := Extract(roots, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 summands:\n%s", len(c.Blocks), c)
	}
	g := c.Blocks[0].Group
	for _, b := range c.Blocks {
		if b.Group != g {
			t.Fatal("summands of one additive region must share a group")
		}
	}
}

func TestScalarFactorInsideChain(t *testing.T) {
	src := `
A = read("A")
d = read("d")
y = A %*% (0.1 * d)
`
	plans, err := plan.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	r := res{"A": sparsity.MetaDims(10, 5, 1), "d": sparsity.MetaDims(5, 1, 1)}
	roots := []*plan.Node{plan.Normalize(plans.SearchRoots()[2], nil)}
	c, err := Extract(roots, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 1 || c.Blocks[0].Len() != 2 {
		t.Fatalf("want one 2-atom block, got:\n%s", c)
	}
	if len(c.Blocks[0].ScalarDeps) != 1 {
		t.Fatalf("scalar 0.1 should be a block dep, got %v", c.Blocks[0].ScalarDeps)
	}
}

func TestAtomKeyRendering(t *testing.T) {
	if (Atom{Sym: "A", T: true}).Key() != "A'" || (Atom{Sym: "A"}).Key() != "A" {
		t.Fatal("atom key rendering wrong")
	}
	if SpanKey([]Atom{{Sym: "A", T: true}, {Sym: "d"}}) != "A'·d" {
		t.Fatal("span key rendering wrong")
	}
}

func TestNegatedBlocks(t *testing.T) {
	src := `
A = read("A")
B = read("B")
C = read("C")
y = A %*% B - C %*% B
`
	plans, err := plan.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	r := res{"A": sparsity.MetaDims(4, 4, 1), "B": sparsity.MetaDims(4, 4, 1), "C": sparsity.MetaDims(4, 4, 1)}
	roots := []*plan.Node{plan.Normalize(plans.SearchRoots()[3], nil)}
	c, err := Extract(roots, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(c.Blocks))
	}
	if c.Blocks[0].Negated || !c.Blocks[1].Negated {
		t.Fatal("subtraction sign lost")
	}
}

func TestOpaqueAtomsForUnexpandedStructure(t *testing.T) {
	// Without expansion (the SystemDS-baseline path), t(A) %*% (A %*% x - b)
	// keeps the subtraction as an opaque atom whose interior is still
	// searched as its own blocks.
	src := `
A = read("A")
b = read("b")
x = read("x")
g = t(A) %*% (A %*% x - b)
`
	plans, err := plan.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	r := res{
		"A": sparsity.MetaDims(100, 10, 0.5),
		"b": sparsity.MetaDims(100, 1, 1),
		"x": sparsity.MetaDims(10, 1, 1),
	}
	// Push-down only, no expansion: the g statement's raw form.
	gRaw := plan.PushDownTranspose(plans.Pre[3].Raw, nil)
	c, err := Extract([]*plan.Node{gRaw}, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: outer chain [A', ⟨A·x − b⟩] plus the interior blocks [A·x]
	// and [b].
	var outer *Block
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if a.Opaque {
				outer = b
			}
		}
	}
	if outer == nil {
		t.Fatalf("no opaque atom found:\n%s", c)
	}
	if outer.Len() != 2 || outer.Atoms[0].Key() != "A'" {
		t.Fatalf("outer chain wrong: %s", outer.Key())
	}
	if outer.Atoms[1].Node == nil {
		t.Fatal("opaque atom must carry its subtree")
	}
	// Interior A·x block must exist too.
	found := false
	for _, b := range c.Blocks {
		if b.Key() == "A·x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("interior A·x block missing:\n%s", c)
	}
	// Opaque atom metadata comes from shape inference.
	m, err := c.AtomMeta(outer.Atoms[1], sparsity.Metadata{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 100 || m.Cols != 1 {
		t.Fatalf("opaque meta %dx%d, want 100x1", m.Rows, m.Cols)
	}
}

func TestAtomMetaNilEstimatorDefaults(t *testing.T) {
	c := dfpCoordinates(t)
	b := c.Blocks[0]
	if _, err := c.AtomMeta(b.Atoms[0], nil); err != nil {
		t.Fatalf("nil estimator should default: %v", err)
	}
}
