// Package chain implements the coordinate-and-block representation of §3.2
// step 2: normalized plan trees are split into blocks of matrix
// multiplication chains, every matrix atom gets a global coordinate, and
// subexpression windows are keyed by canonical, transpose-normalized
// strings so AH and HAᵀ (H symmetric) collide.
package chain

import (
	"fmt"
	"strings"

	"remac/internal/plan"
	"remac/internal/sparsity"
)

// Atom is one scale mark on the coordinate axis: a (possibly transposed)
// matrix symbol.
type Atom struct {
	Sym string
	// T marks transposition. Symmetric symbols never carry T (push-down
	// drops their transposes).
	T bool
	// Symm marks symmetric symbols, whose transpose flag never flips.
	Symm bool
	// LoopConst marks symbols whose value cannot change inside the loop.
	LoopConst bool
	// Coord is the global coordinate (1-based, program order).
	Coord int
	// Opaque atoms stand for non-chain subtrees (e.g. an additive region
	// kept unexpanded); Node holds the subtree they evaluate.
	Opaque bool
	Node   *plan.Node
}

// Key renders the atom for canonical keys: "A" or "A'".
func (a Atom) Key() string {
	if a.T {
		return a.Sym + "'"
	}
	return a.Sym
}

// flip returns the transposed atom. Symmetric atoms are their own
// transpose.
func (a Atom) flip() Atom {
	out := a
	if !a.Symm {
		out.T = !out.T
	}
	return out
}

// Block is one multiplication chain: a maximal run of %*% factors.
type Block struct {
	ID    int
	Atoms []Atom
	// Group identifies the additive region this block is a summand of;
	// blocks with the same Group are candidates for the cross-block
	// factor-grouping extension.
	Group int
	// Negated marks summands subtracted within their group.
	Negated bool
	// ScalarDeps holds the scalar factor subtrees attached to the block
	// (e.g. the 2 in 2·dᵀAᵀAd); the engine multiplies the chain result by
	// their values.
	ScalarDeps []*plan.Node
	// Origin is the plan-tree node this block was extracted from; the
	// engine uses it to substitute block plans during evaluation.
	Origin *plan.Node
}

// Len returns the chain length.
func (b *Block) Len() int { return len(b.Atoms) }

// Key renders the whole block's chain key.
func (b *Block) Key() string { return SpanKey(b.Atoms) }

// Coordinates is the coordinate system over a program's blocks.
type Coordinates struct {
	Blocks []*Block
	// NAtoms is the total number of coordinates.
	NAtoms int
	res    plan.Resolver
	sym    plan.SymTable
}

// SpanKey renders a window of atoms as a plain (non-canonical) key.
func SpanKey(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.Key()
	}
	return strings.Join(parts, "·")
}

// CanonicalKey returns the transpose-normalized key of a window: the
// window's key and its transposition's key are compared and the smaller one
// wins (§3.2 step 3: AH and HAᵀ share the key AH when H is symmetric).
// "Smaller" prefers the orientation with fewer transposed atoms, breaking
// ties lexicographically, so A·A canonicalizes to A·A rather than A'·A'.
func CanonicalKey(atoms []Atom) string {
	fwd := SpanKey(atoms)
	rev := make([]Atom, len(atoms))
	for i, a := range atoms {
		rev[len(atoms)-1-i] = a.flip()
	}
	bwd := SpanKey(rev)
	ft, bt := countT(atoms), countT(rev)
	if bt < ft || (bt == ft && bwd < fwd) {
		return bwd
	}
	return fwd
}

func countT(atoms []Atom) int {
	n := 0
	for _, a := range atoms {
		if a.T {
			n++
		}
	}
	return n
}

// Transposed reports whether the canonical key required flipping (the
// occurrence is stored transposed relative to the canonical form).
func Transposed(atoms []Atom) bool { return CanonicalKey(atoms) != SpanKey(atoms) }

// CanonicalSpan returns a window's canonical key together with whether the
// window is transposed relative to it — CanonicalKey and Transposed in one
// pass, for callers (the redundancy search, per-plan subexpression
// manifests) that need both without canonicalizing twice.
func CanonicalSpan(atoms []Atom) (key string, flipped bool) {
	key = CanonicalKey(atoms)
	return key, key != SpanKey(atoms)
}

// Extract builds coordinates from normalized statement roots (transposes
// pushed down, products expanded). Scalar-valued regions are traversed so
// chains inside denominators become blocks too. The resolver distinguishes
// scalar-valued subtrees from matrix factors; sym carries symmetry facts
// for canonical keys.
func Extract(roots []*plan.Node, res plan.Resolver, sym plan.SymTable) (*Coordinates, error) {
	c := &Coordinates{res: res, sym: sym}
	e := &extractor{c: c}
	for _, root := range roots {
		if err := e.region(root, false); err != nil {
			return nil, err
		}
	}
	return c, nil
}

type extractor struct {
	c     *Coordinates
	group int
}

// region processes a subtree that stands alone (a statement root, a
// denominator, an additive summand context).
func (e *extractor) region(n *plan.Node, negated bool) error {
	switch n.Kind {
	case plan.Add, plan.Sub:
		// Additive spine: each summand is its own block, all in one group.
		// Only open a new group at the top of the spine.
		return e.additive(n, negated, e.newGroup())
	case plan.Neg:
		return e.region(n.L(), !negated)
	case plan.SumAll, plan.AsScalar, plan.Sqrt, plan.Abs, plan.Trans, plan.NRows, plan.NCols:
		return e.region(n.L(), negated)
	case plan.EDiv, plan.EMul:
		// Element-wise combinations split chains; both sides are separate
		// regions. Scalar sides contribute scalar deps, but their interior
		// chains are still searched.
		if err := e.region(n.L(), negated); err != nil {
			return err
		}
		return e.region(n.R(), false)
	case plan.Const:
		return nil
	case plan.Leaf, plan.MMul:
		return e.chainBlock(n, negated, e.newGroup())
	}
	return fmt.Errorf("chain: unsupported node kind %v", n.Kind)
}

func (e *extractor) newGroup() int {
	e.group++
	return e.group
}

func (e *extractor) additive(n *plan.Node, negated bool, group int) error {
	switch n.Kind {
	case plan.Add:
		if err := e.additive(n.L(), negated, group); err != nil {
			return err
		}
		return e.additive(n.R(), negated, group)
	case plan.Sub:
		if err := e.additive(n.L(), negated, group); err != nil {
			return err
		}
		return e.additive(n.R(), !negated, group)
	case plan.Neg:
		return e.additive(n.L(), !negated, group)
	case plan.Leaf, plan.MMul:
		return e.chainBlock(n, negated, group)
	default:
		return e.region(n, negated)
	}
}

// chainBlock flattens a multiplication spine into a block of atoms.
func (e *extractor) chainBlock(n *plan.Node, negated bool, group int) error {
	b := &Block{ID: len(e.c.Blocks), Group: group, Negated: negated, Origin: n}
	if err := e.flatten(n, b); err != nil {
		return err
	}
	if len(b.Atoms) == 0 {
		// Pure scalar chain (all factors scalar) — nothing to search.
		return nil
	}
	e.c.Blocks = append(e.c.Blocks, b)
	return nil
}

func (e *extractor) flatten(n *plan.Node, b *Block) error {
	switch n.Kind {
	case plan.MMul:
		if err := e.flatten(n.L(), b); err != nil {
			return err
		}
		return e.flatten(n.R(), b)
	case plan.Leaf:
		if e.isScalar(n) {
			b.ScalarDeps = append(b.ScalarDeps, n)
			return nil
		}
		e.c.NAtoms++
		b.Atoms = append(b.Atoms, Atom{Sym: n.Sym, Symm: e.c.sym.IsSymmetric(n.Sym), LoopConst: n.LoopConst, Coord: e.c.NAtoms})
		return nil
	case plan.Trans:
		if n.L().Kind == plan.Leaf {
			leaf := n.L()
			if e.isScalar(leaf) {
				b.ScalarDeps = append(b.ScalarDeps, leaf)
				return nil
			}
			e.c.NAtoms++
			b.Atoms = append(b.Atoms, Atom{Sym: leaf.Sym, T: !e.c.sym.IsSymmetric(leaf.Sym), Symm: e.c.sym.IsSymmetric(leaf.Sym), LoopConst: leaf.LoopConst, Coord: e.c.NAtoms})
			return nil
		}
		return fmt.Errorf("chain: transpose not pushed down: %s", n.Key())
	case plan.Const:
		b.ScalarDeps = append(b.ScalarDeps, n)
		return nil
	case plan.AsScalar, plan.SumAll, plan.Sqrt, plan.Abs, plan.NRows, plan.NCols:
		// A scalar factor with interior structure: record the dependency
		// and search its interior as separate regions.
		b.ScalarDeps = append(b.ScalarDeps, n)
		return e.region(n.L(), false)
	case plan.EMul, plan.EDiv:
		// Scalar-scaled factor inside a chain, e.g. A %*% (0.1*d): pull
		// the scalar out, keep flattening the matrix side.
		l, r := n.L(), n.R()
		if e.isScalar(l) {
			b.ScalarDeps = append(b.ScalarDeps, l)
			return e.flatten(r, b)
		}
		if e.isScalar(r) {
			b.ScalarDeps = append(b.ScalarDeps, r)
			return e.flatten(l, b)
		}
		return e.opaque(n, b)
	case plan.Neg:
		b.Negated = !b.Negated
		return e.flatten(n.L(), b)
	}
	return e.opaque(n, b)
}

// opaque records a non-chain factor as an opaque atom and searches its
// interior as separate regions. Used when products are kept unexpanded
// (the SystemDS-style baselines) or when a chain contains element-wise
// structure.
func (e *extractor) opaque(n *plan.Node, b *Block) error {
	e.c.NAtoms++
	b.Atoms = append(b.Atoms, Atom{
		Sym:       "⟨" + n.Key() + "⟩",
		LoopConst: n.LoopConst,
		Coord:     e.c.NAtoms,
		Opaque:    true,
		Node:      n,
	})
	return e.region(n, false)
}

func (e *extractor) isScalar(n *plan.Node) bool {
	if n.Kind == plan.Const || n.IsScalarKind() {
		return true
	}
	return plan.IsScalar(n, e.c.res)
}

// SpanMeta folds the estimator over a window [lo, hi] (inclusive atom
// indices within the block) to produce the window product's metadata.
func (c *Coordinates) SpanMeta(b *Block, lo, hi int, est sparsity.Estimator) (sparsity.Meta, error) {
	m, err := c.AtomMeta(b.Atoms[lo], est)
	if err != nil {
		return m, err
	}
	for i := lo + 1; i <= hi; i++ {
		next, err := c.AtomMeta(b.Atoms[i], est)
		if err != nil {
			return m, err
		}
		if m.Cols != next.Rows {
			return m, fmt.Errorf("chain: span %s dims %d vs %d", SpanKey(b.Atoms[lo:hi+1]), m.Cols, next.Rows)
		}
		m = est.Mul(m, next)
	}
	return m, nil
}

// AtomMeta resolves one atom's metadata (transposed if flagged).
func (c *Coordinates) AtomMeta(a Atom, est sparsity.Estimator) (sparsity.Meta, error) {
	if a.Opaque {
		if est == nil {
			est = sparsity.Metadata{}
		}
		return plan.InferMeta(a.Node, c.res, est)
	}
	m, ok := c.res.MetaFor(a.Sym)
	if !ok {
		return m, fmt.Errorf("chain: unknown symbol %q", a.Sym)
	}
	if a.T {
		if est == nil {
			est = sparsity.Metadata{}
		}
		return est.Transpose(m), nil
	}
	return m, nil
}

// String renders the coordinate system like Figure 4.
func (c *Coordinates) String() string {
	var b strings.Builder
	for _, blk := range c.Blocks {
		sign := "+"
		if blk.Negated {
			sign = "-"
		}
		fmt.Fprintf(&b, "block %d (group %d, %s): %s", blk.ID, blk.Group, sign, blk.Key())
		if len(blk.ScalarDeps) > 0 {
			keys := make([]string, len(blk.ScalarDeps))
			for i, d := range blk.ScalarDeps {
				keys[i] = d.Key()
			}
			fmt.Fprintf(&b, "  [scalars: %s]", strings.Join(keys, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
