package cost

import (
	"testing"

	"remac/internal/cluster"
	"remac/internal/sparsity"
)

func model() *Model { return NewModel(cluster.DefaultConfig(), nil) }

// Shapes mirroring the DFP workload at paper scale: A is a tall distributed
// dataset, d a vector, H a cols×cols symmetric matrix.
func dfpShapes() (a, d, h sparsity.Meta) {
	a = sparsity.MetaDims(58_400_000, 8700, 4.5e-3)
	d = sparsity.MetaDims(8700, 1, 1)
	h = sparsity.MetaDims(8700, 8700, 1)
	return
}

func TestFitsLocal(t *testing.T) {
	m := model()
	a, d, h := dfpShapes()
	if m.FitsLocal(a) {
		t.Error("a 30GB dataset must be distributed")
	}
	if !m.FitsLocal(d) {
		t.Error("a vector must fit locally")
	}
	if !m.FitsLocal(h) {
		t.Error("an 8.7K×8.7K dense matrix (~600MB) should fit locally")
	}
}

func TestMulLocalNoTransmission(t *testing.T) {
	m := model()
	_, d, h := dfpShapes()
	out, bd, local := m.Mul(h, d, true, true)
	if !local || bd.Method != LocalOp {
		t.Fatalf("local·local should run locally, got method %v", bd.Method)
	}
	if bd.TransmitSec != 0 {
		t.Fatal("local op charged transmission")
	}
	if out.Rows != 8700 || out.Cols != 1 {
		t.Fatalf("out dims %dx%d", out.Rows, out.Cols)
	}
}

func TestMulBMMForMatrixVector(t *testing.T) {
	m := model()
	a, d, _ := dfpShapes()
	out, bd, outLocal := m.Mul(a, d, false, true)
	if bd.Method != BMM {
		t.Fatalf("dist·vector should be BMM, got %v", bd.Method)
	}
	if bd.Bytes[cluster.Broadcast] <= 0 {
		t.Error("BMM must broadcast the local side")
	}
	if bd.Bytes[cluster.Shuffle] <= 0 {
		t.Error("BMM must shuffle block products")
	}
	if outLocal {
		t.Error("a 467MB result vector must stay distributed (RDD), not collect")
	}
	if out.Rows != a.Rows || out.Cols != 1 {
		t.Fatalf("out dims %dx%d", out.Rows, out.Cols)
	}
	// A genuinely small result is collected.
	small := sparsity.MetaDims(8700, 8700, 4.5e-3)
	v := sparsity.MetaDims(8700, 1, 1)
	_, bd2, local2 := m.Mul(small, v, false, true)
	if !local2 || bd2.Bytes[cluster.Collect] <= 0 {
		t.Error("small result vectors should be collected to the driver")
	}
}

func TestMulZipMMForDistVector(t *testing.T) {
	// Aᵀ (distributed) × v (fat distributed vector): co-partitioned zipmm,
	// which must not reshuffle the 30GB matrix.
	m := model()
	a, _, _ := dfpShapes()
	at := sparsity.MetaDims(a.Cols, a.Rows, a.Sparsity)
	v := sparsity.MetaDims(a.Rows, 1, 1)
	_, bd, _ := m.Mul(at, v, false, false)
	if bd.Method != ZipMM {
		t.Fatalf("dist·dist-vector should be zipmm, got %v", bd.Method)
	}
	if bd.Bytes[cluster.Shuffle] >= SizeBytes(at) {
		t.Error("zipmm must not shuffle the full matrix")
	}
}

func TestMulTSMMWhenNarrow(t *testing.T) {
	// t(A)·A with 47 columns: fused self-multiply, one pass, near-zero
	// transmission — this is what makes the LSE of AᵀA nearly free on cri1.
	m := model()
	a := sparsity.MetaDims(116_800_000, 47, 0.6)
	at := sparsity.MetaDims(47, 116_800_000, 0.6)
	out, bd, outLocal := m.MulHinted(at, a, false, false, true)
	if bd.Method != TSMM {
		t.Fatalf("narrow self-product should use TSMM, got %v", bd.Method)
	}
	if !outLocal {
		t.Error("a 47x47 result must be collected")
	}
	if out.Rows != 47 || out.Cols != 47 {
		t.Fatalf("out dims %dx%d", out.Rows, out.Cols)
	}
	// Compare with the wide case: TSMM ineligible above one block.
	wa := sparsity.MetaDims(58_400_000, 8700, 4.5e-3)
	wat := sparsity.MetaDims(8700, 58_400_000, 4.5e-3)
	_, bdWide, _ := m.MulHinted(wat, wa, false, false, true)
	if bdWide.Method == TSMM {
		t.Fatal("8.7K-column self-product must not use TSMM (output exceeds a block)")
	}
	if bdWide.Total() <= bd.Total() {
		t.Error("the wide self-product must cost far more than the narrow TSMM")
	}
}

func TestJobOverheadCharged(t *testing.T) {
	m := model()
	a, d, _ := dfpShapes()
	_, bd, _ := m.Mul(a, d, false, true)
	if bd.ComputeSec < m.Config().JobOverheadSec {
		t.Error("distributed op must include job overhead")
	}
	_, bdLocal, _ := m.Mul(d, sparsity.MetaDims(1, 1, 1), true, true)
	flopTime := bdLocal.FLOP / m.Config().LocalFlops()
	if bdLocal.ComputeSec > flopTime+1e-9 {
		t.Error("local op must not pay job overhead")
	}
}

func TestMulCPMMForLargeBothSides(t *testing.T) {
	m := model()
	a, _, _ := dfpShapes()
	at := sparsity.MetaDims(a.Cols, a.Rows, a.Sparsity)
	_, bd, _ := m.Mul(at, a, false, false)
	if bd.Method != CPMM {
		t.Fatalf("dist·dist should be CPMM, got %v", bd.Method)
	}
	if bd.Bytes[cluster.Shuffle] <= 0 || bd.Bytes[cluster.Broadcast] != 0 {
		t.Error("CPMM shuffles both sides and broadcasts nothing")
	}
}

func TestCPMMCostlierThanBMMPerByte(t *testing.T) {
	// The §2.2 motivation: switching a BMM matrix-vector pipeline to CPMM
	// matrix-matrix multiplications explodes communication. Verify the cost
	// model reproduces the ordering for the DFP shapes.
	m := model()
	a, d, _ := dfpShapes()
	// BMM chain: t(A)·(A·d) — two matrix-vector multiplications.
	outAd, bdAd, adLocal := m.Mul(a, d, false, true)
	at := sparsity.MetaDims(a.Cols, a.Rows, a.Sparsity)
	_, bdAtAd, _ := m.Mul(at, outAd, false, adLocal)
	bmmChain := bdAd.Total() + bdAtAd.Total()
	// CPMM: (t(A)·A) — one matrix-matrix multiplication producing AᵀA.
	_, bdAtA, _ := m.Mul(at, a, false, false)
	if bdAtA.Total() <= bmmChain {
		t.Fatalf("AᵀA CPMM (%g s) should cost more than the BMM vector chain (%g s)", bdAtA.Total(), bmmChain)
	}
}

func TestEWiseLocalAndDistributed(t *testing.T) {
	m := model()
	a, _, h := dfpShapes()
	_, bd, local := m.EWise(EWAdd, h, h, true, true)
	if !local || bd.TransmitSec != 0 {
		t.Error("local element-wise op should not transmit")
	}
	_, bd2, _ := m.EWise(EWAdd, a, a, false, false)
	if bd2.Method != DistEWise {
		t.Errorf("distributed ewise method = %v", bd2.Method)
	}
	if bd2.ComputeSec >= bd2.ComputeSec+bd2.TransmitSec {
		t.Error("distributed ewise should include transmission")
	}
}

func TestTransposeCosts(t *testing.T) {
	m := model()
	a, d, _ := dfpShapes()
	out, bd, local := m.Transpose(d, true)
	if !local || bd.TransmitSec != 0 {
		t.Error("local transpose should be free of transmission")
	}
	if out.Rows != 1 || out.Cols != 8700 {
		t.Fatalf("transpose dims %dx%d", out.Rows, out.Cols)
	}
	_, bd2, local2 := m.Transpose(a, false)
	if local2 {
		t.Error("distributed transpose result stays distributed")
	}
	if bd2.Bytes[cluster.Shuffle] <= 0 {
		t.Error("distributed transpose shuffles the matrix")
	}
}

func TestScale(t *testing.T) {
	m := model()
	a, d, _ := dfpShapes()
	_, bd, local := m.Scale(d, true)
	if !local || bd.FLOP != d.NNZ() {
		t.Error("local scale wrong")
	}
	_, _, local2 := m.Scale(a, false)
	if local2 {
		t.Error("distributed scale output must stay distributed")
	}
}

func TestCollectBroadcastDFS(t *testing.T) {
	m := model()
	_, _, h := dfpShapes()
	if m.Collect(h).Bytes[cluster.Collect] <= 0 {
		t.Error("collect charges collect bytes")
	}
	if m.Broadcast(h).Bytes[cluster.Broadcast] <= 0 {
		t.Error("broadcast charges broadcast bytes")
	}
	r := m.DFSRead(h)
	if r.Bytes[cluster.DFS] <= 0 || r.Bytes[cluster.Shuffle] <= 0 {
		t.Error("dfs read charges dfs + partition shuffle")
	}
}

func TestBreakdownPlusAndTotal(t *testing.T) {
	a := Breakdown{ComputeSec: 1, TransmitSec: 2, FLOP: 3}
	a.Bytes[0] = 10
	b := Breakdown{ComputeSec: 4, TransmitSec: 8, FLOP: 16}
	b.Bytes[0] = 20
	sum := a.Plus(b)
	if sum.ComputeSec != 5 || sum.TransmitSec != 10 || sum.FLOP != 19 || sum.Bytes[0] != 30 {
		t.Fatalf("Plus wrong: %+v", sum)
	}
	if sum.Total() != 15 {
		t.Fatalf("Total = %g", sum.Total())
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{LocalOp: "local", BMM: "BMM", CPMM: "CPMM", DistEWise: "dist-ewise", CollectOp: "collect", DFSIO: "dfs"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestNewModelDefaults(t *testing.T) {
	m := NewModel(cluster.DefaultConfig(), nil)
	if m.Estimator().Name() != "MD" {
		t.Error("default estimator should be metadata-based like SystemDS")
	}
	if m.Config().Nodes != 7 {
		t.Error("config not retained")
	}
}

func TestSingleNodeEverythingLocal(t *testing.T) {
	// Fig 3(b): in a single-node environment with sufficient memory, even
	// the matrix-matrix eliminations run locally and win.
	m := NewModel(cluster.SingleNodeConfig(), nil)
	h := sparsity.MetaDims(8700, 8700, 1)
	_, bd, local := m.Mul(h, h, true, true)
	if !local || bd.TransmitSec != 0 {
		t.Fatal("single-node ops must be local with zero transmission")
	}
}

func TestBMMShuffleGrowsWithWideDist(t *testing.T) {
	// Equation 6: a wider distributed operand (more column blocks) raises
	// the number of partial products shuffled per row stripe.
	m := model()
	v := sparsity.MetaDims(20000, 1, 1)
	narrow := sparsity.MetaDims(5_000_000, 1000, 1)
	wide := sparsity.MetaDims(5_000_000, 20000, 1)
	narrowV := sparsity.MetaDims(1000, 1, 1)
	_, bdN, _ := m.Mul(narrow, narrowV, false, true)
	_, bdW, _ := m.Mul(wide, v, false, true)
	if bdW.Bytes[cluster.Shuffle] <= bdN.Bytes[cluster.Shuffle] {
		t.Fatalf("wide shuffle %g <= narrow shuffle %g", bdW.Bytes[cluster.Shuffle], bdN.Bytes[cluster.Shuffle])
	}
}

func TestCPMMAccumulatorPressure(t *testing.T) {
	// Wide outputs (cols² beyond the worker heap share) pay the spill
	// factor; narrow outputs do not. This drives the paper's column-count
	// correlation for the AᵀA elimination (§6.2.2).
	m := model()
	narrow := sparsity.MetaDims(5000, 104_500_000, 3.9e-3) // red2ᵀ
	narrowB := sparsity.MetaDims(104_500_000, 5000, 3.9e-3)
	wide := sparsity.MetaDims(15_000, 58_400_000, 2.6e-3) // cri3ᵀ
	wideB := sparsity.MetaDims(58_400_000, 15_000, 2.6e-3)
	_, bdNarrow, _ := m.Mul(narrow, narrowB, false, false)
	_, bdWide, _ := m.Mul(wide, wideB, false, false)
	if bdNarrow.Method != CPMM || bdWide.Method != CPMM {
		t.Fatalf("methods %v/%v", bdNarrow.Method, bdWide.Method)
	}
	// red2's input is slightly larger, so without the pressure factor its
	// CPMM would cost more; with it, the 15K-column output dominates.
	if bdWide.Total() <= bdNarrow.Total() {
		t.Fatalf("15K-col CPMM (%.0fs) should exceed 5K-col CPMM (%.0fs) via accumulator pressure",
			bdWide.Total(), bdNarrow.Total())
	}
}

func TestSingleNodeLocalSpill(t *testing.T) {
	// On the single-node profile, a local multiply whose working set
	// exceeds memory streams through disk — the Fig 3(b) mechanism.
	m := NewModel(cluster.SingleNodeConfig(), nil)
	big := sparsity.MetaDims(116_800_000, 47, 0.6) // 40.9GB > 24GB
	v := sparsity.MetaDims(47, 1, 1)
	_, bd, _ := m.Mul(big, v, m.FitsLocal(big), true)
	small := sparsity.MetaDims(8700, 8700, 1)
	_, bdSmall, _ := m.Mul(small, sparsity.MetaDims(8700, 1, 1), true, true)
	if bdSmall.Bytes[cluster.DFS] != 0 {
		t.Error("in-memory working set must not spill")
	}
	// The big operand either spills locally or runs as a distributed op on
	// the single worker; either way a pass costs far more than the small
	// one.
	if bd.Total() <= bdSmall.Total() {
		t.Errorf("40GB pass (%.1fs) should dwarf the in-memory op (%.3fs)", bd.Total(), bdSmall.Total())
	}
}

func TestSingleNodeTransmitWeightsDegenerate(t *testing.T) {
	cfg := cluster.SingleNodeConfig()
	if cfg.TransmitWeight(cluster.Shuffle) >= cluster.DefaultConfig().TransmitWeight(cluster.Shuffle) {
		t.Error("single-node shuffle should be an in-memory copy")
	}
	if cfg.TransmitWeight(cluster.DFS) <= cfg.TransmitWeight(cluster.Shuffle) {
		t.Error("single-node disk must stay costlier than memory copies")
	}
}

func TestDenseOnlyAndNoLocalMode(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.DenseOnly = true
	cfg.NoLocalMode = true
	m := NewModel(cfg, nil)
	sparse := sparsity.MetaDims(1_000_000, 1000, 1e-3)
	if m.FitsLocal(sparse) {
		t.Error("NoLocalMode must not place matrices locally")
	}
	if !m.FitsLocal(sparsity.MetaDims(1, 1, 1)) {
		t.Error("scalars stay local even without a local mode")
	}
	// Dense-only sizing: the sparse matrix is charged at dense size.
	md := NewModel(cluster.DefaultConfig(), nil)
	bdDense := m.DFSRead(sparse)
	bdSparse := md.DFSRead(sparse)
	if bdDense.Bytes[cluster.DFS] <= bdSparse.Bytes[cluster.DFS] {
		t.Error("dense-only engines must read the full dense footprint")
	}
}
