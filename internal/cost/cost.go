// Package cost implements the ReMac cost model of §4.2: every operator's
// cost is the sum of a computation term (w_flop · FLOP, sparsity-aware) and
// a transmission term (Σ w_pr · D_pr over the collect, broadcast, shuffle
// and dfs primitives). The model also encodes the SystemDS execution-mode
// decisions the runtime mirrors: local vs distributed placement and the
// choice between broadcast-based (BMM) and cross-product (CPMM)
// multiplication, whose very different communication profiles drive the
// paper's detrimental-elimination examples.
package cost

import (
	"fmt"
	"math"

	"remac/internal/cluster"
	"remac/internal/matrix"
	"remac/internal/sparsity"
)

// Method identifies the physical implementation an operator is costed at.
type Method int

const (
	// LocalOp executes in driver memory with no transmission.
	LocalOp Method = iota
	// BMM is broadcast-based matrix multiplication: the small side is
	// broadcast, products are aggregated by rows with a shuffle.
	BMM
	// CPMM is cross-product matrix multiplication: both sides shuffle to
	// join on the inner dimension, partial products shuffle to aggregate.
	CPMM
	// TSMM is the fused transpose-self multiplication t(X)·X SystemDS uses
	// when the output (cols²) is small enough for per-task accumulators:
	// one map pass over X, no shuffle of X at all.
	TSMM
	// ZipMM joins two co-partitioned distributed operands (one of them
	// skinny) without reshuffling the large side.
	ZipMM
	// DistEWise is a distributed element-wise or structural operator.
	DistEWise
	// CollectOp moves a distributed result into driver memory.
	CollectOp
	// DFSIO reads or writes the distributed filesystem.
	DFSIO
)

// String names the method as reported in experiment output.
func (m Method) String() string {
	switch m {
	case LocalOp:
		return "local"
	case BMM:
		return "BMM"
	case CPMM:
		return "CPMM"
	case TSMM:
		return "TSMM"
	case ZipMM:
		return "zipmm"
	case DistEWise:
		return "dist-ewise"
	case CollectOp:
		return "collect"
	case DFSIO:
		return "dfs"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Breakdown is the costed profile of one operator execution.
type Breakdown struct {
	ComputeSec  float64
	TransmitSec float64
	FLOP        float64
	// Bytes holds per-primitive data volumes, indexed by cluster.Primitive.
	Bytes  [4]float64
	Method Method
	// Local reports whether the operator ran in driver memory.
	Local bool
}

// Total returns compute + transmit seconds — c_O of Eq. 3.
func (b Breakdown) Total() float64 { return b.ComputeSec + b.TransmitSec }

// Plus returns the element-wise sum of two breakdowns (methods are kept
// from the receiver).
func (b Breakdown) Plus(o Breakdown) Breakdown {
	out := b
	out.ComputeSec += o.ComputeSec
	out.TransmitSec += o.TransmitSec
	out.FLOP += o.FLOP
	for i := range out.Bytes {
		out.Bytes[i] += o.Bytes[i]
	}
	return out
}

// Model evaluates operator costs for a cluster configuration using a
// sparsity estimator. The zero value is not usable; construct with NewModel.
type Model struct {
	cfg cluster.Config
	est sparsity.Estimator
}

// NewModel returns a cost model. A nil estimator defaults to the
// metadata-based one, matching stock SystemDS.
func NewModel(cfg cluster.Config, est sparsity.Estimator) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if est == nil {
		est = sparsity.Metadata{}
	}
	return &Model{cfg: cfg, est: est}
}

// Config returns the cluster configuration the model was built for.
func (m *Model) Config() cluster.Config { return m.cfg }

// Estimator returns the sparsity estimator in use.
func (m *Model) Estimator() sparsity.Estimator { return m.est }

// localBudget is the driver-memory fraction a single operand may occupy and
// still be placed locally. The same bound gates broadcast eligibility for
// BMM (executors hold one broadcast copy each).
func (m *Model) localBudget() float64 { return float64(m.cfg.DriverMemory) / 4 }

// resultCollectThreshold bounds how large a distributed operator's result
// may be and still be eagerly collected into the driver. Fat intermediate
// vectors above it stay distributed (as RDDs in SystemDS) and feed
// co-partitioned zipmm multiplications instead of collect/broadcast cycles.
const resultCollectThreshold = 64 << 20

// FitsLocal reports whether a value of this shape is placed in driver
// memory. Placement is a pure function of the modelled size, so compile-time
// planning and the runtime agree (SystemDS's dynamic local/distributed
// switching, §6.4). Engines without a local mode place nothing locally
// except scalars.
func (m *Model) FitsLocal(meta sparsity.Meta) bool {
	if m.cfg.NoLocalMode {
		return meta.Rows == 1 && meta.Cols == 1
	}
	return m.bytesOf(meta) <= m.localBudget()
}

// collectable reports whether an operator result is small enough to pull to
// the driver eagerly.
func (m *Model) collectable(meta sparsity.Meta) bool {
	if m.cfg.NoLocalMode {
		return meta.Rows == 1 && meta.Cols == 1
	}
	return m.bytesOf(meta) <= resultCollectThreshold
}

// bytesOf returns the modelled serialized size, honoring the dense-only
// storage of engines without sparse support.
func (m *Model) bytesOf(meta sparsity.Meta) float64 {
	if m.cfg.DenseOnly {
		return float64(matrix.SizeBytesFor(int(meta.Rows), int(meta.Cols), 1))
	}
	return bytesOf(meta)
}

// effSparsity is the sparsity kernels actually see (1 for dense-only
// engines).
func (m *Model) effSparsity(s float64) float64 {
	if m.cfg.DenseOnly {
		return 1
	}
	return s
}

// skinny reports whether a shape is a vector-like operand eligible for
// co-partitioned zipmm joins.
func skinny(meta sparsity.Meta, transposedSide bool) bool {
	if transposedSide {
		return meta.Rows <= 32
	}
	return meta.Cols <= 32
}

// overhead charges the fixed distributed-job latency on a breakdown.
func (m *Model) overhead(bd Breakdown) Breakdown {
	bd.ComputeSec += m.cfg.JobOverheadSec
	return bd
}

// localSpill charges disk re-reads for local operators whose working set
// exceeds driver memory: the overflow streams through the local disk. This
// is what makes repeated passes over a near-memory-sized dataset expensive
// on a single node (Fig 3b) while hoisted small intermediates stay fast.
func (m *Model) localSpill(workingSet float64) Breakdown {
	overflow := workingSet - float64(m.cfg.DriverMemory)
	if overflow <= 0 {
		return Breakdown{Local: true}
	}
	var bd Breakdown
	bd.Bytes[cluster.DFS] = overflow
	bd.TransmitSec = overflow / m.cfg.DiskBandwidth
	bd.Local = true
	return bd
}

// diskBacked charges per-worker disk re-reads for distributed operators
// whose per-worker input share exceeds the worker's caching budget: the
// RDD partitions beyond memory re-load from disk on every pass. On the
// seven-node testbed the evaluation datasets fit the aggregate cache, so
// this term only bites in the single-node setting (Fig 3b), where each
// pass over a 30-40 GB input streams from one disk.
func (m *Model) diskBacked(inputBytes float64) Breakdown {
	share := inputBytes / float64(m.cfg.Workers())
	budget := float64(m.cfg.DriverMemory) / 2
	overflow := share - budget
	if overflow <= 0 {
		return Breakdown{}
	}
	total := overflow * float64(m.cfg.Workers())
	var bd Breakdown
	bd.Bytes[cluster.DFS] = total
	bd.TransmitSec = total / (m.cfg.DiskBandwidth * float64(m.cfg.Workers()))
	return bd
}

// sparseFactor returns the kernel-efficiency penalty for an operand pair.
func (m *Model) sparseFactor(a, b sparsity.Meta) float64 {
	if m.cfg.DenseOnly {
		return 1
	}
	if a.Sparsity <= matrix.DenseThreshold || b.Sparsity <= matrix.DenseThreshold {
		return m.cfg.SparsePenalty
	}
	return 1
}

func bytesOf(meta sparsity.Meta) float64 {
	return float64(matrix.SizeBytesFor(int(meta.Rows), int(meta.Cols), meta.Sparsity))
}

func (m *Model) compute(flop float64, local bool) Breakdown {
	speed := m.cfg.ClusterFlops()
	if local {
		speed = m.cfg.LocalFlops()
	}
	return Breakdown{ComputeSec: flop / speed, FLOP: flop, Local: local}
}

func (m *Model) transmit(p cluster.Primitive, bytes float64) Breakdown {
	var b Breakdown
	if bytes <= 0 {
		return b
	}
	b.Bytes[p] = bytes
	b.TransmitSec = m.cfg.TransmitWeight(p) * bytes
	return b
}

// blocksAcross returns ceil(n / blockSize).
func (m *Model) blocksAcross(n int64) float64 {
	return math.Ceil(float64(n) / float64(m.cfg.BlockSize))
}

// Mul returns the estimated output metadata and cost of a·b given operand
// placements. It selects the physical method exactly as the runtime does.
func (m *Model) Mul(a, b sparsity.Meta, aLocal, bLocal bool) (sparsity.Meta, Breakdown, bool) {
	return m.MulHinted(a, b, aLocal, bLocal, false)
}

// MulHinted is Mul with a structural hint: tsmm marks a transpose-self
// product t(X)·X (or X·t(X)) over the same underlying matrix, which SystemDS
// fuses into a single pass when the output is at most one block wide.
func (m *Model) MulHinted(a, b sparsity.Meta, aLocal, bLocal, tsmm bool) (sparsity.Meta, Breakdown, bool) {
	out := m.est.Mul(a, b)
	flop := matrix.MulFLOP(int(a.Rows), int(a.Cols), int(b.Cols), m.effSparsity(a.Sparsity), m.effSparsity(b.Sparsity)) * m.sparseFactor(a, b)

	if aLocal && bLocal {
		bd := m.compute(flop, true)
		bd = bd.Plus(m.localSpill(m.bytesOf(a) + m.bytesOf(b) + m.bytesOf(out)))
		return out, bd, true
	}

	var bd Breakdown
	switch {
	case tsmm && out.Rows <= int64(m.cfg.BlockSize) && out.Cols <= int64(m.cfg.BlockSize):
		// One map pass over the distributed operand with a per-task
		// cols×cols accumulator; only the tiny partials tree-reduce.
		bd = m.compute(flop, false)
		bd = bd.Plus(m.transmit(cluster.Shuffle, m.bytesOf(out)*float64(m.cfg.Workers())))
		bd.Method = TSMM
	case !aLocal && !bLocal && skinny(b, false):
		// Right side is a fat distributed vector co-partitioned with a's
		// columns: join without reshuffling a.
		bd = m.zipmm(a, b, out, flop, false)
	case !aLocal && !bLocal && skinny(a, true):
		bd = m.zipmm(b, a, out, flop, true)
	case !aLocal && bLocal && m.FitsLocal(b):
		bd = m.bmm(a, b, out, flop, false)
	case aLocal && !bLocal && m.FitsLocal(a):
		bd = m.bmm(b, a, out, flop, true)
	default:
		bd = m.cpmm(a, b, out, flop)
	}
	bd = bd.Plus(m.diskBacked(m.bytesOf(a) + m.bytesOf(b)))
	bd = m.overhead(bd)

	// Small results are collected into driver memory so downstream local
	// operators can consume them; fat results stay distributed.
	outLocal := false
	if m.collectable(out) {
		bd = bd.Plus(m.transmit(cluster.Collect, m.bytesOf(out)))
		outLocal = true
	}
	return out, bd, outLocal
}

// zipmm joins a large distributed operand with a skinny distributed one
// that is (or can cheaply be made) co-partitioned: the skinny side shuffles
// once to align, partial results aggregate like Eq. 6.
func (m *Model) zipmm(big, small, out sparsity.Meta, flop float64, mirrored bool) Breakdown {
	bd := m.compute(flop, false)
	bd = bd.Plus(m.transmit(cluster.Shuffle, m.bytesOf(small)))
	bd = bd.Plus(m.transmit(cluster.Shuffle, m.eq6Shuffle(big, out, mirrored)))
	bd.Method = ZipMM
	return bd
}

// eq6Shuffle computes the Eq. 6 partial-aggregation shuffle volume for a
// product whose distributed side is dist: size(one block product) × B_U /
// P_U, where P_U blocks sharing rows pre-aggregate within a partition.
func (m *Model) eq6Shuffle(dist, out sparsity.Meta, mirrored bool) float64 {
	bs := int64(m.cfg.BlockSize)
	var blockProd sparsity.Meta
	if !mirrored {
		blockRows := dist.Rows
		if blockRows > bs {
			blockRows = bs
		}
		blockProd = sparsity.MetaDims(blockRows, out.Cols, out.Sparsity)
	} else {
		blockCols := dist.Cols
		if blockCols > bs {
			blockCols = bs
		}
		blockProd = sparsity.MetaDims(out.Rows, blockCols, out.Sparsity)
	}
	bR := m.blocksAcross(dist.Rows)
	bC := m.blocksAcross(dist.Cols)
	bU := bR * bC
	var pU float64
	if !mirrored {
		pU = math.Max(1, bC/float64(m.cfg.Workers()))
	} else {
		pU = math.Max(1, bR/float64(m.cfg.Workers()))
	}
	return m.bytesOf(blockProd) * bU / pU
}

// bmm costs a broadcast-based multiplication where dist is the distributed
// side and local the broadcast side. mirrored marks local·dist (the
// distributed side on the right); the communication structure is symmetric.
func (m *Model) bmm(dist, local, out sparsity.Meta, flop float64, mirrored bool) Breakdown {
	bd := m.compute(flop, false)
	bd = bd.Plus(m.transmit(cluster.Broadcast, m.bytesOf(local)))
	bd = bd.Plus(m.transmit(cluster.Shuffle, m.eq6Shuffle(dist, out, mirrored)))
	bd.Method = BMM
	return bd
}

// cpmm costs a cross-product multiplication: both operands shuffle to join
// on the inner dimension (spilling through local disk, hence the doubled
// volume), the partial result blocks (one per inner block stripe, bounded
// by the worker count) shuffle again to aggregate, and the dense partial
// accumulation adds outCells · bK / workers additions on top of the
// multiply FLOPs.
func (m *Model) cpmm(a, b, out sparsity.Meta, flop float64) Breakdown {
	bK := m.blocksAcross(a.Cols)
	accFlop := float64(out.Rows) * float64(out.Cols) * bK / float64(m.cfg.Workers())
	bd := m.compute(flop+accFlop, false)
	shuffle := 2 * (m.bytesOf(a) + m.bytesOf(b))
	replication := math.Min(bK, float64(m.cfg.Workers()))
	shuffle += m.bytesOf(out) * replication
	bd = bd.Plus(m.transmit(cluster.Shuffle, shuffle))

	// Accumulator memory pressure: every concurrent task holds a dense
	// partial of the output, so wide outputs (cols² beyond the worker
	// heap share) thrash through spill files. This term is what makes
	// AᵀA affordable on red2 (5K columns, ~200MB accumulators) but
	// prohibitive on cri2/cri3/red3 (8.7K-20K columns) — the column-count
	// correlation §6.2.2 reports.
	denseOut := float64(matrix.SizeBytesFor(int(out.Rows), int(out.Cols), 1))
	pressure := denseOut * float64(m.cfg.CoresPerNode)
	budget := float64(m.cfg.DriverMemory) / 6
	if pressure > budget {
		factor := math.Min(8, 1+2*pressure/budget/3)
		bd.ComputeSec *= factor
		bd.TransmitSec *= factor
	}
	bd.Method = CPMM
	return bd
}

// EWiseKind distinguishes the element-wise operators the model costs.
type EWiseKind int

const (
	// EWAdd covers addition and subtraction.
	EWAdd EWiseKind = iota
	// EWMul is the Hadamard product.
	EWMul
	// EWDiv is element-wise division.
	EWDiv
	// EWSub is subtraction. It prices like EWAdd, but a self-subtraction
	// V − V yields an exactly empty result rather than the union sparsity
	// estimate (which would overestimate and propagate through downstream
	// metadata).
	EWSub
)

// EWiseSame prices an element-wise operator whose operands are the same
// distributed value (e.g. V ⊙ V): the partitions are already aligned, so
// no join shuffle is needed.
func (m *Model) EWiseSame(kind EWiseKind, a sparsity.Meta, aLocal bool) (sparsity.Meta, Breakdown, bool) {
	var out sparsity.Meta
	switch kind {
	case EWAdd, EWMul:
		out = a
	case EWSub:
		// V − V cancels exactly: the result is empty, not the union
		// estimate.
		out = sparsity.MetaDims(a.Rows, a.Cols, 0)
	default:
		out = sparsity.MetaDims(a.Rows, a.Cols, 1)
	}
	flop := 2 * a.NNZ()
	bd := m.compute(flop, aLocal)
	if !aLocal {
		bd.Method = DistEWise
		bd = m.overhead(bd)
		if m.collectable(out) {
			bd = bd.Plus(m.transmit(cluster.Collect, m.bytesOf(out)))
			return out, bd, true
		}
		return out, bd, false
	}
	bd = bd.Plus(m.localSpill(2 * m.bytesOf(a)))
	return out, bd, true
}

// EWise returns the metadata and cost of an element-wise binary operator.
func (m *Model) EWise(kind EWiseKind, a, b sparsity.Meta, aLocal, bLocal bool) (sparsity.Meta, Breakdown, bool) {
	var out sparsity.Meta
	switch kind {
	case EWAdd, EWSub:
		out = m.est.Add(a, b)
	case EWMul:
		out = m.est.ElemMul(a, b)
	default:
		out = sparsity.MetaDims(a.Rows, a.Cols, 1) // division densifies
	}
	flop := float64(a.Rows) * float64(a.Cols) * (a.Sparsity + b.Sparsity)
	local := aLocal && bLocal
	bd := m.compute(flop, local)
	if !local {
		// The smaller operand (or the local one) joins the larger: model a
		// shuffle of the smaller side.
		small := math.Min(m.bytesOf(a), m.bytesOf(b))
		bd = bd.Plus(m.transmit(cluster.Shuffle, small))
		bd = bd.Plus(m.diskBacked(m.bytesOf(a) + m.bytesOf(b)))
		bd.Method = DistEWise
		bd = m.overhead(bd)
		if m.collectable(out) {
			bd = bd.Plus(m.transmit(cluster.Collect, m.bytesOf(out)))
			return out, bd, true
		}
		return out, bd, false
	}
	return out, bd, true
}

// Transpose returns the metadata and cost of aᵀ. A distributed transpose
// re-keys every block, which shuffles the matrix once.
func (m *Model) Transpose(a sparsity.Meta, aLocal bool) (sparsity.Meta, Breakdown, bool) {
	out := m.est.Transpose(a)
	flop := a.NNZ()
	bd := m.compute(flop, aLocal)
	if !aLocal {
		bd = bd.Plus(m.transmit(cluster.Shuffle, m.bytesOf(a)))
		bd.Method = DistEWise
		bd = m.overhead(bd)
		return out, bd, false
	}
	return out, bd, true
}

// Scale returns the metadata and cost of s·a (or a±scalar).
func (m *Model) Scale(a sparsity.Meta, aLocal bool) (sparsity.Meta, Breakdown, bool) {
	out := m.est.Scale(a)
	bd := m.compute(a.NNZ(), aLocal)
	if !aLocal {
		bd.Method = DistEWise
		bd = m.overhead(bd)
	}
	return out, bd, aLocal
}

// AddScalar returns the metadata and cost of a + scalar on every element.
// The scalar broadcast writes every output cell, so the result is dense and
// the pass is priced on the densified output metadata — pricing on a sparse
// input would under-charge the densified result's volume.
func (m *Model) AddScalar(a sparsity.Meta, aLocal bool) (sparsity.Meta, Breakdown, bool) {
	out := sparsity.MetaDims(a.Rows, a.Cols, 1)
	bd := m.compute(out.NNZ(), aLocal)
	if !aLocal {
		bd.Method = DistEWise
		bd = m.overhead(bd)
	}
	return out, bd, aLocal
}

// Sum returns the metadata and cost of aggregating a matrix into a driver
// scalar: one pass over the nonzeros, plus — for distributed inputs — the
// collection of one 8-byte partial per worker.
func (m *Model) Sum(a sparsity.Meta, aLocal bool) (sparsity.Meta, Breakdown, bool) {
	out := sparsity.MetaDims(1, 1, 1)
	bd := m.compute(a.NNZ(), aLocal)
	if !aLocal {
		bd = bd.Plus(m.transmit(cluster.Collect, float64(8*m.cfg.Workers())))
		bd.Method = CollectOp
	}
	return out, bd, true
}

// Collect returns the cost of pulling a distributed value into the driver.
func (m *Model) Collect(a sparsity.Meta) Breakdown {
	bd := m.transmit(cluster.Collect, m.bytesOf(a))
	bd.Method = CollectOp
	return bd
}

// Broadcast returns the cost of pushing a local value to every executor.
func (m *Model) Broadcast(a sparsity.Meta) Breakdown {
	bd := m.transmit(cluster.Broadcast, m.bytesOf(a))
	bd.Method = BMM
	return bd
}

// DFSRead returns the cost of reading a matrix from the distributed
// filesystem and partitioning it (the input-partition phase of Fig 12: a
// dfs read plus a shuffle into hash partitions).
func (m *Model) DFSRead(a sparsity.Meta) Breakdown {
	bd := m.transmit(cluster.DFS, m.bytesOf(a))
	bd = bd.Plus(m.transmit(cluster.Shuffle, m.bytesOf(a)))
	bd.Method = DFSIO
	return bd
}

// DFSWrite returns the cost of persisting a distributed matrix to the
// distributed filesystem (the checkpoint write of the fault-recovery
// policy). Unlike DFSRead there is no partition shuffle: blocks are already
// hash-partitioned and each worker streams its own blocks to disk.
func (m *Model) DFSWrite(a sparsity.Meta) Breakdown {
	bd := m.transmit(cluster.DFS, m.bytesOf(a))
	bd.Method = DFSIO
	return bd
}

// SizeBytes exposes the modelled size of a shape (for reporting).
func SizeBytes(a sparsity.Meta) float64 { return bytesOf(a) }
