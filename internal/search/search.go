// Package search implements automatic elimination (§3): the block-wise
// sliding-window search for implicit common and loop-constant
// subexpressions, together with the tree-wise exhaustive baseline and a
// SPORES-style sampled baseline used in the evaluation (Fig 8).
package search

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"remac/internal/chain"
	"remac/internal/sparsity"
)

// OptionKind distinguishes elimination option kinds.
type OptionKind int

const (
	// CSE reuses a common subexpression within one iteration.
	CSE OptionKind = iota
	// LSE hoists a loop-constant subexpression out of the loop.
	LSE
	// CSEGroup is a cross-block CSE found by the factor-grouping extension
	// (a common sum like XY+YZ).
	CSEGroup
)

// String names the kind.
func (k OptionKind) String() string {
	switch k {
	case CSE:
		return "CSE"
	case LSE:
		return "LSE"
	case CSEGroup:
		return "CSE-group"
	default:
		return fmt.Sprintf("OptionKind(%d)", int(k))
	}
}

// Occurrence locates one window of an option: atoms [Lo, Hi] (inclusive
// indices) of block Block.
type Occurrence struct {
	Block  int
	Lo, Hi int
	// Flipped marks occurrences stored transposed relative to the
	// canonical form (the runtime transposes the reused result).
	Flipped bool
}

// Len returns the window length.
func (o Occurrence) Len() int { return o.Hi - o.Lo + 1 }

// Option is one elimination option: a subexpression that can be computed
// once and reused.
type Option struct {
	ID   int
	Kind OptionKind
	// Key is the canonical transpose-normalized subexpression string.
	Key  string
	Occs []Occurrence
	// Atoms is the canonical-form atom sequence (empty for CSEGroup).
	Atoms []chain.Atom
	// GroupParts holds the member chain keys for CSEGroup options.
	GroupParts []string
}

// String renders the option for explain output.
func (o *Option) String() string {
	return fmt.Sprintf("%s %s (%d occurrences)", o.Kind, o.Key, len(o.Occs))
}

// Result is the outcome of a search.
type Result struct {
	Options []*Option
	Coords  *chain.Coordinates
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// Visited counts windows (block-wise) or full plan trees (tree-wise,
	// SPORES) examined.
	Visited int
	// TimedOut marks a tree-wise search cut off by its deadline.
	TimedOut bool
}

// OptionByKey returns the option with the given canonical key, or nil.
func (r *Result) OptionByKey(key string) *Option {
	for _, o := range r.Options {
		if o.Key == key {
			return o
		}
	}
	return nil
}

// hit is one sliding-window observation: where, and with which atoms.
type hit struct {
	occ   Occurrence
	atoms []chain.Atom
}

// BlockWise runs the paper's block-wise search (§3.2–3.3): slide windows of
// every size over every block, record canonical keys in a hash table, read
// CSE options off key conflicts and LSE options off fully loop-constant
// windows, then run the cross-block grouping extension.
func BlockWise(c *chain.Coordinates, est sparsity.Estimator) *Result {
	res, err := BlockWiseCtx(context.Background(), c, est)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return res
}

// BlockWiseCtx is BlockWise with cancellation: the context is checked
// between window sweeps, so an expired or cancelled compilation stops
// promptly and returns the context's error instead of a partial result.
func BlockWiseCtx(ctx context.Context, c *chain.Coordinates, est sparsity.Estimator) (*Result, error) {
	start := time.Now()
	res := &Result{Coords: c}

	table := map[string][]hit{}
	order := []string{}

	for _, b := range c.Blocks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := b.Len()
		for size := 2; size <= n; size++ {
			for lo := 0; lo+size-1 < n; lo++ {
				hi := lo + size - 1
				window := b.Atoms[lo : hi+1]
				if !spanWellFormed(c, b, lo, hi) {
					continue
				}
				res.Visited++
				key, flipped := chain.CanonicalSpan(window)
				if _, seen := table[key]; !seen {
					order = append(order, key)
				}
				table[key] = append(table[key], hit{
					occ:   Occurrence{Block: b.ID, Lo: lo, Hi: hi, Flipped: flipped},
					atoms: window,
				})
			}
		}
	}

	for _, key := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hits := table[key]
		occs := disjointOccurrences(hits)
		if len(occs) == 0 {
			continue
		}
		atoms := canonicalAtoms(hits)
		loopConst := true
		for _, a := range atoms {
			if !a.LoopConst {
				loopConst = false
				break
			}
		}
		switch {
		case loopConst:
			// A loop-constant window is an LSE option regardless of how
			// often it occurs; LSE dominates CSE for the same span (the
			// hoisted cost amortizes over iterations, §4.3.1).
			res.Options = append(res.Options, &Option{
				ID: len(res.Options), Kind: LSE, Key: key, Occs: occs, Atoms: atoms,
			})
		case len(occs) >= 2:
			res.Options = append(res.Options, &Option{
				ID: len(res.Options), Kind: CSE, Key: key, Occs: occs, Atoms: atoms,
			})
		}
	}

	res.Options = append(res.Options, groupExtension(c, res)...)
	for i, o := range res.Options {
		o.ID = i
	}
	res.Elapsed = time.Since(start)
	_ = est
	return res, nil
}

// spanWellFormed verifies the window is a valid chain product (inner
// dimensions agree). Extraction guarantees this for whole blocks, and
// contiguous sub-windows of a valid chain are always valid, so this is a
// cheap structural guard kept for synthetic coordinates built by hand.
func spanWellFormed(_ *chain.Coordinates, b *chain.Block, lo, hi int) bool {
	return lo >= 0 && hi < b.Len()
}

// disjointOccurrences filters a key's hits to a maximal set of pairwise
// non-overlapping occurrences (overlapping occurrences of the same key —
// e.g. A·A at [0,1] and [1,2] in A·A·A — cannot both be reused).
func disjointOccurrences(hits []hit) []Occurrence {
	occs := make([]Occurrence, 0, len(hits))
	for _, h := range hits {
		occs = append(occs, h.occ)
	}
	// Total order (block, lo, hi): a lo-only sort leaves same-key windows
	// that share a start in arrival order, which for the parallel tree-wise
	// search depends on goroutine scheduling — and a different occurrence
	// set would change the chosen plan between identical compilations.
	sort.Slice(occs, func(i, j int) bool {
		if occs[i].Block != occs[j].Block {
			return occs[i].Block < occs[j].Block
		}
		if occs[i].Lo != occs[j].Lo {
			return occs[i].Lo < occs[j].Lo
		}
		return occs[i].Hi < occs[j].Hi
	})
	out := occs[:0]
	lastBlock, lastHi := -1, -1
	for _, o := range occs {
		if o.Block == lastBlock && o.Lo <= lastHi {
			continue
		}
		out = append(out, o)
		lastBlock, lastHi = o.Block, o.Hi
	}
	return out
}

func canonicalAtoms(hits []hit) []chain.Atom {
	for _, h := range hits {
		if !h.occ.Flipped {
			return h.atoms
		}
	}
	// All occurrences are flipped: canonicalize the first.
	atoms := hits[0].atoms
	out := make([]chain.Atom, len(atoms))
	for i, a := range atoms {
		f := a
		if !a.Symm {
			f.T = !f.T
		}
		out[len(atoms)-1-i] = f
	}
	return out
}

// groupExtension implements the §3.2 discussion: revert expansion by
// extracting common prefix/suffix factors within each additive group, and
// detect grouped sums (e.g. XY+YZ) that occur in two or more groups.
func groupExtension(c *chain.Coordinates, base *Result) []*Option {
	// Group blocks.
	groups := map[int][]*chain.Block{}
	for _, b := range c.Blocks {
		groups[b.Group] = append(groups[b.Group], b)
	}
	type occRef struct {
		blocks [2]int
		lo     [2]int
		hi     [2]int
	}
	sums := map[string][]occRef{}
	var order []string
	for _, blocks := range groups {
		if len(blocks) < 2 {
			continue
		}
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				b1, b2 := blocks[i], blocks[j]
				if b1.Negated != b2.Negated {
					continue // differing signs do not form a plain sum
				}
				for _, ref := range groupPair(b1, b2) {
					key := ref.key
					if _, ok := sums[key]; !ok {
						order = append(order, key)
					}
					sums[key] = append(sums[key], occRef{
						blocks: [2]int{b1.ID, b2.ID},
						lo:     [2]int{ref.lo1, ref.lo2},
						hi:     [2]int{ref.hi1, ref.hi2},
					})
				}
			}
		}
	}
	var opts []*Option
	for _, key := range order {
		refs := sums[key]
		if len(refs) < 2 {
			continue
		}
		var occs []Occurrence
		for _, r := range refs {
			occs = append(occs,
				Occurrence{Block: r.blocks[0], Lo: r.lo[0], Hi: r.hi[0]},
				Occurrence{Block: r.blocks[1], Lo: r.lo[1], Hi: r.hi[1]})
		}
		opts = append(opts, &Option{
			Kind:       CSEGroup,
			Key:        key,
			Occs:       occs,
			GroupParts: strings.Split(strings.Trim(key, "()"), " + "),
		})
	}
	_ = base
	return opts
}

type pairRef struct {
	key                string
	lo1, hi1, lo2, hi2 int
}

// groupPair finds the grouped-sum candidates for two summand blocks: strip
// the longest common prefix and the longest common suffix; the remainders
// form the grouped part.
func groupPair(b1, b2 *chain.Block) []pairRef {
	var out []pairRef
	p := commonPrefix(b1.Atoms, b2.Atoms)
	s := commonSuffix(b1.Atoms, b2.Atoms)
	// Prefix grouping: P·(X + Y)
	if p > 0 && p < b1.Len() && p < b2.Len() {
		out = append(out, makePair(b1, b2, p, b1.Len()-1, p, b2.Len()-1))
	}
	// Suffix grouping: (X + Y)·Q
	if s > 0 && s < b1.Len() && s < b2.Len() {
		out = append(out, makePair(b1, b2, 0, b1.Len()-1-s, 0, b2.Len()-1-s))
	}
	// Identity grouping: I·(chain1 + chain2) — the whole blocks.
	out = append(out, makePair(b1, b2, 0, b1.Len()-1, 0, b2.Len()-1))
	return out
}

func makePair(b1, b2 *chain.Block, lo1, hi1, lo2, hi2 int) pairRef {
	k1 := chain.CanonicalKey(b1.Atoms[lo1 : hi1+1])
	k2 := chain.CanonicalKey(b2.Atoms[lo2 : hi2+1])
	if k2 < k1 {
		k1, k2 = k2, k1
		lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
		b1, b2 = b2, b1
	}
	return pairRef{key: "(" + k1 + " + " + k2 + ")", lo1: lo1, hi1: hi1, lo2: lo2, hi2: hi2}
}

func commonPrefix(a, b []chain.Atom) int {
	n := 0
	for n < len(a) && n < len(b) && a[n].Key() == b[n].Key() {
		n++
	}
	return n
}

func commonSuffix(a, b []chain.Atom) int {
	n := 0
	for n < len(a) && n < len(b) && a[len(a)-1-n].Key() == b[len(b)-1-n].Key() {
		n++
	}
	return n
}

// Conflicts reports whether two options cannot both be applied: some pair
// of their occurrences overlaps partially within one block (spans that are
// nested or disjoint are compatible — a laminar family of intervals always
// embeds in one parenthesization).
func Conflicts(a, b *Option) bool {
	for _, oa := range a.Occs {
		for _, ob := range b.Occs {
			if oa.Block != ob.Block {
				continue
			}
			if partialOverlap(oa.Lo, oa.Hi, ob.Lo, ob.Hi) {
				return true
			}
		}
	}
	return false
}

func partialOverlap(l1, h1, l2, h2 int) bool {
	if h1 < l2 || h2 < l1 {
		return false // disjoint
	}
	if l1 <= l2 && h2 <= h1 {
		return false // 2 inside 1
	}
	if l2 <= l1 && h1 <= h2 {
		return false // 1 inside 2
	}
	return true
}

// ConflictMatrix precomputes pairwise conflicts for the DP/enumeration.
func ConflictMatrix(opts []*Option) [][]bool {
	m := make([][]bool, len(opts))
	for i := range m {
		m[i] = make([]bool, len(opts))
	}
	for i := 0; i < len(opts); i++ {
		for j := i + 1; j < len(opts); j++ {
			if Conflicts(opts[i], opts[j]) {
				m[i][j] = true
				m[j][i] = true
			}
		}
	}
	return m
}

// SpanMeta computes the metadata of an option's canonical span.
func (o *Option) SpanMeta(c *chain.Coordinates, est sparsity.Estimator) (sparsity.Meta, error) {
	if len(o.Atoms) == 0 {
		return sparsity.Meta{}, fmt.Errorf("search: option %q has no atom span", o.Key)
	}
	b := c.Blocks[o.Occs[0].Block]
	occ := o.Occs[0]
	return c.SpanMeta(b, occ.Lo, occ.Hi, est)
}
