package search

import (
	"strings"
	"testing"
	"time"

	"remac/internal/chain"
	"remac/internal/lang"
	"remac/internal/plan"
	"remac/internal/sparsity"
)

type res map[string]sparsity.Meta

func (r res) MetaFor(sym string) (sparsity.Meta, bool) {
	m, ok := r[strings.SplitN(sym, "#", 2)[0]]
	return m, ok
}
func (r res) IsSymmetric(string) bool { return false }

const dfpSrc = `
#@symmetric H
A = read("A")
b = read("b")
H = read("H")
x = read("x")
i = 0
while (i < 3) {
    g = t(A) %*% (A %*% x - b)
    d = H %*% g
    H = H - (H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H) / as.scalar(t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + (d %*% t(d)) / as.scalar(2 * (t(d) %*% t(A) %*% A %*% d))
    x = x - 0.1 * d
    i = i + 1
}
`

func dfpResolver() res {
	return res{
		"A": sparsity.MetaDims(1000, 50, 0.1),
		"b": sparsity.MetaDims(1000, 1, 1),
		"H": sparsity.MetaDims(50, 50, 1),
		"x": sparsity.MetaDims(50, 1, 1),
		"i": sparsity.MetaDims(1, 1, 1),
	}
}

func coordsFor(t *testing.T, src string, r res) *chain.Coordinates {
	t.Helper()
	plans, err := plan.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	sym := plan.SymTable(plans.Symmetric)
	var roots []*plan.Node
	for _, root := range plans.SearchRoots() {
		roots = append(roots, plan.Normalize(root, sym))
	}
	c, err := chain.Extract(roots, r, sym)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBlockWiseFindsATALSE(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	if len(r.Options) == 0 {
		t.Fatal("no options found")
	}
	// The headline implicit LSE of the paper: AᵀA.
	atA := r.OptionByKey(chain.CanonicalKey([]chain.Atom{{Sym: "A", T: true}, {Sym: "A"}}))
	if atA == nil {
		t.Fatalf("AᵀA option not found; options:\n%s", dumpOptions(r))
	}
	if atA.Kind != LSE {
		t.Errorf("AᵀA should be an LSE option (A is loop-constant), got %v", atA.Kind)
	}
	if len(atA.Occs) < 2 {
		t.Errorf("AᵀA occurs many times in DFP, got %d", len(atA.Occs))
	}
}

func TestBlockWiseFindsImplicitCSEHiddenByTranspose(t *testing.T) {
	// dᵀAᵀA = (AᵀAd)ᵀ — the Figure 2(b) case. With d inlined as H·g our
	// atoms differ, but the same effect shows on AᵀAH vs HAᵀA (H
	// symmetric): both must map to one option key.
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	k1 := chain.CanonicalKey([]chain.Atom{{Sym: "A", T: true}, {Sym: "A"}, {Sym: "H", Symm: true}})
	k2 := chain.CanonicalKey([]chain.Atom{{Sym: "H", Symm: true}, {Sym: "A", T: true}, {Sym: "A"}})
	if k1 != k2 {
		t.Fatalf("canonical keys differ: %q vs %q", k1, k2)
	}
	if r.OptionByKey(k1) == nil {
		t.Fatalf("AᵀAH option missing:\n%s", dumpOptions(r))
	}
}

func TestBlockWiseDFPOptionCount(t *testing.T) {
	// The paper counts 1391 CSE/LSE options for the whole DFP algorithm,
	// counting raw candidates; our census deduplicates by canonical key
	// (every occurrence set is one option), so the count is far smaller
	// but must still cover the full window space (Visited tracks the raw
	// candidate windows).
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	if len(r.Options) < 10 {
		t.Fatalf("option count = %d, expected at least the dozen distinct DFP redundancies", len(r.Options))
	}
	if r.Visited < 100 {
		t.Fatalf("visited %d windows, expected the full sliding-window space", r.Visited)
	}
}

func TestLSEDominatesCSEForLoopConstantSpans(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	for _, o := range r.Options {
		if o.Kind != CSE {
			continue
		}
		for _, a := range o.Atoms {
			if !a.LoopConst {
				goto next
			}
		}
		t.Errorf("option %s is fully loop-constant but emitted as CSE", o.Key)
	next:
	}
}

func TestConflictsPartialOverlap(t *testing.T) {
	// AᵀA at [0,1] and Ad at [1,2] in block 0: contradiction (§2.2).
	o1 := &Option{Key: "A'·A", Occs: []Occurrence{{Block: 0, Lo: 0, Hi: 1}}}
	o2 := &Option{Key: "A·d", Occs: []Occurrence{{Block: 0, Lo: 1, Hi: 2}}}
	if !Conflicts(o1, o2) {
		t.Fatal("partial overlap must conflict")
	}
	// Nested spans are compatible: AᵀA inside AᵀAd.
	o3 := &Option{Key: "A'·A·d", Occs: []Occurrence{{Block: 0, Lo: 0, Hi: 2}}}
	if Conflicts(o1, o3) {
		t.Fatal("nested spans must not conflict")
	}
	// Disjoint spans are compatible.
	o4 := &Option{Key: "X·Y", Occs: []Occurrence{{Block: 0, Lo: 3, Hi: 4}}}
	if Conflicts(o1, o4) {
		t.Fatal("disjoint spans must not conflict")
	}
	// Different blocks never conflict.
	o5 := &Option{Key: "A·d", Occs: []Occurrence{{Block: 1, Lo: 1, Hi: 2}}}
	if Conflicts(o1, o5) {
		t.Fatal("different blocks must not conflict")
	}
}

func TestConflictMatrixSymmetric(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	m := ConflictMatrix(r.Options)
	conflicts := 0
	for i := range m {
		if m[i][i] {
			t.Fatal("option conflicts with itself")
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatal("conflict matrix asymmetric")
			}
			if m[i][j] {
				conflicts++
			}
		}
	}
	if conflicts == 0 {
		t.Fatal("DFP has contradictory options (AᵀA vs Ad); none detected")
	}
}

func TestDFPHasTheContradiction(t *testing.T) {
	// §2.2: the LSE of AᵀA and the CSE of A·(Hg) contradict.
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	atA := r.OptionByKey("A'·A")
	if atA == nil {
		t.Skip("AᵀA canonical key differs")
	}
	found := false
	for _, o := range r.Options {
		if o != atA && Conflicts(atA, o) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("AᵀA conflicts with nothing; expected the Ad-style contradiction")
	}
}

func TestOverlappingOccurrencesOfSameKeyFiltered(t *testing.T) {
	// In A·A·A the key A·A occurs at [0,1] and [1,2]; only one usable.
	src := `
A = read("A")
y = A %*% A %*% A %*% A
`
	r := res{"A": sparsity.MetaDims(10, 10, 1)}
	c := coordsFor(t, src, r)
	result := BlockWise(c, sparsity.Metadata{})
	aa := result.OptionByKey("A·A")
	if aa == nil {
		t.Fatal("A·A option missing")
	}
	if len(aa.Occs) != 2 {
		t.Fatalf("A·A·A·A should yield 2 disjoint A·A occurrences, got %d", len(aa.Occs))
	}
	for _, o := range aa.Occs {
		if o.Lo != 0 && o.Lo != 2 {
			t.Fatalf("unexpected occurrence at %d", o.Lo)
		}
	}
}

func TestTreeWiseMatchesBlockWiseOnSmallProgram(t *testing.T) {
	// The paper: block-wise and tree-wise output the same results. Verify
	// on a GD-sized program where tree-wise completes.
	src := `
A = read("A")
b = read("b")
w = read("w")
i = 0
while (i < 3) {
    w = w - 0.1 * (t(A) %*% (A %*% w) - t(A) %*% b)
    i = i + 1
}
`
	r := res{
		"A": sparsity.MetaDims(100, 10, 0.5),
		"b": sparsity.MetaDims(100, 1, 1),
		"w": sparsity.MetaDims(10, 1, 1),
	}
	c := coordsFor(t, src, r)
	bw := BlockWise(c, sparsity.Metadata{})
	tw := TreeWise(c, 30*time.Second)
	if tw.TimedOut {
		t.Fatal("tree-wise timed out on a GD-sized program")
	}
	bwKeys := optionKeySet(bw, false)
	twKeys := optionKeySet(tw, false)
	for k := range bwKeys {
		if !twKeys[k] {
			t.Errorf("tree-wise missed option %q", k)
		}
	}
	for k := range twKeys {
		if !bwKeys[k] {
			t.Errorf("tree-wise found option %q that block-wise missed", k)
		}
	}
	if tw.Visited == 0 {
		t.Error("tree-wise visited no plans")
	}
}

// optionKeySet collects option keys; group options are excluded when
// comparing against tree-wise (which has no grouping extension).
func optionKeySet(r *Result, includeGroups bool) map[string]bool {
	out := map[string]bool{}
	for _, o := range r.Options {
		if o.Kind == CSEGroup && !includeGroups {
			continue
		}
		out[o.Key] = true
	}
	return out
}

func TestTreeWiseTimesOutOnDFP(t *testing.T) {
	// DFP's cross-product plan space is astronomically large; the deadline
	// must trip, mirroring the paper's "> 8 hours".
	c := coordsFor(t, dfpSrc, dfpResolver())
	tw := TreeWise(c, time.Second)
	if !tw.TimedOut {
		t.Fatal("tree-wise finished DFP in 1s — the plan space enumeration is broken")
	}
	if tw.Visited == 0 {
		t.Fatal("tree-wise visited nothing before the deadline")
	}
}

func TestSPORESFindsExplicitButMissesTransposeHidden(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	sp := SPORES(c, SPORESConfig{Samples: 64, Seed: 1, MaxChainLen: 12})
	bw := BlockWise(c, sparsity.Metadata{})
	if len(sp.Options) == 0 {
		t.Fatal("SPORES found nothing")
	}
	for _, o := range sp.Options {
		if o.Kind == LSE {
			t.Fatal("SPORES must not produce LSE options")
		}
	}
	// SPORES keys are syntactic (no transpose canonicalization), so
	// block-wise must find at least one redundancy SPORES misses entirely
	// — e.g. the loop-constant AᵀA.
	spKeys := map[string]bool{}
	for _, o := range sp.Options {
		spKeys[chain.CanonicalKey(atomsForSpan(c, o.Occs[0]))] = true
	}
	missed := 0
	for _, o := range bw.Options {
		if o.Kind != CSEGroup && !spKeys[o.Key] {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("SPORES found everything block-wise found; the sampling baseline is too strong")
	}
}

func TestGroupExtensionFindsCrossBlockSum(t *testing.T) {
	// The §3.2 discussion example: P·XY + P·YZ + XY·Q + YZ·Q has the
	// common grouped subexpression XY + YZ.
	src := `
P = read("P")
Q = read("Q")
X = read("X")
Y = read("Y")
Z = read("Z")
R1 = P %*% X %*% Y + P %*% Y %*% Z
R2 = X %*% Y %*% Q + Y %*% Z %*% Q
`
	r := res{
		"P": sparsity.MetaDims(10, 10, 1), "Q": sparsity.MetaDims(10, 10, 1),
		"X": sparsity.MetaDims(10, 10, 1), "Y": sparsity.MetaDims(10, 10, 1),
		"Z": sparsity.MetaDims(10, 10, 1),
	}
	c := coordsFor(t, src, r)
	result := BlockWise(c, sparsity.Metadata{})
	var group *Option
	for _, o := range result.Options {
		if o.Kind == CSEGroup && strings.Contains(o.Key, "X·Y") && strings.Contains(o.Key, "Y·Z") {
			group = o
		}
	}
	if group == nil {
		t.Fatalf("cross-block option (XY + YZ) not found:\n%s", dumpOptions(result))
	}
	if len(group.Occs) < 4 {
		t.Errorf("grouped option should cover 4 block spans, got %d", len(group.Occs))
	}
}

func TestSpanMetaOfOption(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	r := BlockWise(c, sparsity.Metadata{})
	atA := r.OptionByKey("A'·A")
	if atA == nil {
		t.Skip("key differs")
	}
	m, err := atA.SpanMeta(c, sparsity.Metadata{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 50 || m.Cols != 50 {
		t.Fatalf("AᵀA meta %dx%d, want 50x50", m.Rows, m.Cols)
	}
}

func TestOptionKindStrings(t *testing.T) {
	if CSE.String() != "CSE" || LSE.String() != "LSE" || CSEGroup.String() != "CSE-group" {
		t.Fatal("kind names changed")
	}
}

func TestEmptyCoordinates(t *testing.T) {
	c := &chain.Coordinates{}
	if r := BlockWise(c, sparsity.Metadata{}); len(r.Options) != 0 {
		t.Fatal("options from empty coordinates")
	}
	if r := TreeWise(c, time.Second); len(r.Options) != 0 || r.TimedOut {
		t.Fatal("tree-wise broken on empty coordinates")
	}
	if r := SPORES(c, DefaultSPORESConfig()); len(r.Options) != 0 {
		t.Fatal("SPORES broken on empty coordinates")
	}
}

func dumpOptions(r *Result) string {
	var b strings.Builder
	for _, o := range r.Options {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}
