package search

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"remac/internal/sparsity"
)

// optionFingerprint serializes everything plan choice (and the serving
// layer's plan-cache identity) depends on: option keys, kinds, and their
// full occurrence sets in a canonical order.
func optionFingerprint(r *Result) []string {
	var lines []string
	for _, o := range r.Options {
		occs := make([]string, 0, len(o.Occs))
		for _, oc := range o.Occs {
			occs = append(occs, fmt.Sprintf("b%d[%d,%d]f%t", oc.Block, oc.Lo, oc.Hi, oc.Flipped))
		}
		sort.Strings(occs)
		lines = append(lines, fmt.Sprintf("%s|%v|%v", o.Key, o.Kind, occs))
	}
	sort.Strings(lines)
	return lines
}

// TestTreeWiseDeterministicAcrossGOMAXPROCS: the parallel tree-wise search
// must produce the identical option set regardless of worker count —
// otherwise cached plans would depend on goroutine scheduling.
func TestTreeWiseDeterministicAcrossGOMAXPROCS(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	// Shrink the plan budget so the budget (not the wall-clock emergency
	// stop) is what truncates the search, even under -race slowdowns; the
	// deterministic-truncation property is exactly what's under test.
	prevBudget := twPlanBudget
	twPlanBudget = 20000
	defer func() { twPlanBudget = prevBudget }()

	var ref []string
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		fp := optionFingerprint(TreeWise(c, 5*time.Minute))
		if ref == nil {
			ref = fp
			continue
		}
		if len(fp) != len(ref) {
			t.Fatalf("GOMAXPROCS=%d: %d options, reference has %d", procs, len(fp), len(ref))
		}
		for i := range fp {
			if fp[i] != ref[i] {
				t.Errorf("GOMAXPROCS=%d: option %d differs:\n got %s\nwant %s", procs, i, fp[i], ref[i])
			}
		}
	}
}

// TestBlockWiseRepeatable: two runs over the same coordinates agree
// exactly (guards the map-iteration ordering in the options-building pass).
func TestBlockWiseRepeatable(t *testing.T) {
	c := coordsFor(t, dfpSrc, dfpResolver())
	a := optionFingerprint(BlockWise(c, sparsity.Metadata{}))
	b := optionFingerprint(BlockWise(c, sparsity.Metadata{}))
	if len(a) != len(b) {
		t.Fatalf("option counts differ across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("option %d differs across identical runs:\n %s\n %s", i, a[i], b[i])
		}
	}
}
