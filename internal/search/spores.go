package search

import (
	"math/rand"
	"time"

	"remac/internal/chain"
	"remac/internal/sparsity"
)

// This file implements the SPORES-style baseline of §6.2: an equality-
// saturation optimizer that, for long multiplication chains, falls back to
// sampling a limited number of chain permutations/parenthesizations. It
// finds only the common subexpressions explicit in the sampled plans, does
// not support loop-constant elimination, and relies on a fused mmchain
// operator limited to three-matrix chains whose middle operand has at most
// MMChainColLimit columns.

// MMChainColLimit is the default column cap of the fused mmchain operator
// (the paper: "less than 1K in default").
const MMChainColLimit = 1000

// SPORESConfig tunes the sampled search.
type SPORESConfig struct {
	// Samples is the number of full plans drawn (the paper's "limited
	// number of attempts" on permutations of a chain).
	Samples int
	// Seed makes sampling reproducible.
	Seed int64
	// MaxChainLen is the longest chain SPORES handles natively; the
	// current implementation of SPORES "does not support running DFP or
	// BFGS entirely", which the evaluation works around by feeding it the
	// longest supported subexpression (partial DFP). Coordinates containing
	// longer chains are still processed, chain by chain.
	MaxChainLen int
}

// DefaultSPORESConfig mirrors the evaluation setup.
func DefaultSPORESConfig() SPORESConfig {
	return SPORESConfig{Samples: 64, Seed: 1, MaxChainLen: 12}
}

// SPORES runs the sampled baseline: for each sampled full plan, collect
// explicit subtree keys; keys seen at two or more disjoint spans across the
// samples become CSE options. No LSE options are produced.
func SPORES(c *chain.Coordinates, cfg SPORESConfig) *Result {
	start := time.Now()
	res := &Result{Coords: c}
	if cfg.Samples <= 0 {
		cfg.Samples = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	table := map[string][]twSpan{}
	var order []string
	for s := 0; s < cfg.Samples; s++ {
		res.Visited++
		for _, b := range c.Blocks {
			if b.Len() > cfg.MaxChainLen && cfg.MaxChainLen > 0 {
				// Chains beyond the supported length are skipped (the
				// sampling cannot cover them meaningfully).
				continue
			}
			t := randomTree(rng, 0, b.Len()-1)
			var walk func(n *treeNode)
			walk = func(n *treeNode) {
				if n == nil {
					return
				}
				if n.lo < n.hi {
					window := b.Atoms[n.lo : n.hi+1]
					// SPORES matches subexpressions syntactically in the
					// e-graph; transpose-hidden equivalences across chains
					// are found through rewrite rules, which sampling only
					// partially applies. Model this as plain (non-
					// normalized) keys.
					key := chain.SpanKey(window)
					if _, ok := table[key]; !ok {
						order = append(order, key)
					}
					table[key] = append(table[key], twSpan{block: b.ID, lo: n.lo, hi: n.hi})
				}
				walk(n.l)
				walk(n.r)
			}
			walk(t)
		}
	}

	for _, key := range order {
		occs := dedupSpans(table[key])
		if len(occs) >= 2 {
			res.Options = append(res.Options, &Option{
				ID: len(res.Options), Kind: CSE, Key: key, Occs: occs,
				Atoms: atomsForSpan(c, occs[0]),
			})
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// randomTree draws one parenthesization of [lo, hi] uniformly at random
// over split points (not uniform over trees, which is irrelevant here).
func randomTree(rng *rand.Rand, lo, hi int) *treeNode {
	if lo >= hi {
		return &treeNode{lo: lo, hi: hi}
	}
	k := lo + rng.Intn(hi-lo)
	return &treeNode{lo: lo, hi: hi, l: randomTree(rng, lo, k), r: randomTree(rng, k+1, hi)}
}

// MMChainEligible reports whether the three-atom window starting at lo can
// use the fused mmchain operator: the middle operand's column count must
// not exceed the limit. SPORES depends on this fusion to accelerate chains
// it cannot reorder (§6.2.2: it fails on cri3, whose dataset matrix has 15K
// columns).
func MMChainEligible(c *chain.Coordinates, b *chain.Block, lo int) bool {
	if lo < 0 || lo+2 >= b.Len() {
		return false
	}
	m, err := c.AtomMeta(b.Atoms[lo+1], sparsity.Metadata{})
	if err != nil {
		return false
	}
	return m.Cols <= MMChainColLimit
}
