package search

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"remac/internal/chain"
)

// This file implements the tree-wise search baseline of §3.1/§6.2.1: it
// traverses all possible plan trees of the whole expression — the cross
// product over blocks of every parenthesization of every chain — and
// detects common (and loop-constant) operators within each full plan. The
// search space is a product of Catalan numbers, so the traversal takes a
// deadline and reports whether it was cut off; on DFP/BFGS-sized programs
// it cannot finish (the paper measured > 8 hours), which is precisely the
// motivation for the block-wise search.

// treeNode is one parenthesization subtree over a chain interval.
type treeNode struct {
	lo, hi int // atom interval (inclusive)
	l, r   *treeNode
}

// treeCap bounds the number of materialized parenthesizations per block;
// blocks whose Catalan count exceeds it are enumerated partially and the
// overall search is reported as timed out (it cannot be complete).
const treeCap = 50000

// twPlanBudget bounds the total number of full plans scanned. Truncation
// must be deterministic — the serving layer caches compiled plans, so the
// option set (and with it the chosen plan) may depend only on the inputs,
// never on GOMAXPROCS or scheduling. The budget is therefore split evenly
// across first-block choices and each share is consumed in odometer order:
// the scanned plan set is a pure function of the coordinates. A variable
// so tests can shrink it to keep budget-truncated runs well clear of the
// wall-clock emergency stop on slow (e.g. race-instrumented) builds.
var twPlanBudget = 400000

// enumTrees returns the full binary trees over [lo, hi], up to treeCap per
// interval. Memoized per block; within the cap the count is exactly the
// Catalan number of the interval length.
func enumTrees(memo map[[2]int][]*treeNode, lo, hi int, truncated *bool) []*treeNode {
	if lo == hi {
		return []*treeNode{{lo: lo, hi: hi}}
	}
	key := [2]int{lo, hi}
	if ts, ok := memo[key]; ok {
		return ts
	}
	var out []*treeNode
	for k := lo; k < hi && len(out) < treeCap; k++ {
		lefts := enumTrees(memo, lo, k, truncated)
		rights := enumTrees(memo, k+1, hi, truncated)
		for _, l := range lefts {
			for _, r := range rights {
				out = append(out, &treeNode{lo: lo, hi: hi, l: l, r: r})
				if len(out) >= treeCap {
					*truncated = true
					break
				}
			}
			if len(out) >= treeCap {
				break
			}
		}
	}
	memo[key] = out
	return out
}

// TreeWise runs the exhaustive baseline. It finds the same options as
// BlockWise when it completes; on larger programs the deterministic plan
// budget (twPlanBudget) cuts it off, TimedOut is set, and the options found
// so far are returned. The deadline is an additional emergency stop for
// machines where even the budgeted scan is too slow; within the budget the
// result is identical for every GOMAXPROCS value.
func TreeWise(c *chain.Coordinates, deadline time.Duration) *Result {
	start := time.Now()
	res := &Result{Coords: c, TimedOut: false}

	if len(c.Blocks) == 0 {
		res.Elapsed = time.Since(start)
		return res
	}

	// Enumerate parenthesizations per block.
	truncated := false
	perBlock := make([][]*treeNode, len(c.Blocks))
	for i, b := range c.Blocks {
		memo := map[[2]int][]*treeNode{}
		perBlock[i] = enumTrees(memo, 0, b.Len()-1, &truncated)
	}

	// Walk the cross product of block plans. Each full plan is scanned for
	// duplicate subtree keys (CSE) and loop-constant subtrees (LSE). This
	// is exactly the duplicated work §3.1 describes: the same sub-plan is
	// revisited once per combination of the other blocks' plans.
	cse := map[string][]twSpan{}
	lse := map[string][]twSpan{}

	var mu sync.Mutex
	cutoff := start.Add(deadline)
	// The wall deadline is only an emergency stop (it sacrifices
	// determinism); normal truncation is the per-first plan budget below.
	stopped := func() bool { return time.Now().After(cutoff) }

	// perFirst is each first-block choice's share of the plan budget,
	// consumed in odometer order over the remaining blocks. Every first
	// choice scans the same plans no matter which worker picks it up.
	perFirst := max(1, twPlanBudget/len(perBlock[0]))
	capped := false

	// choice holds the currently selected tree index per block; odometer
	// enumeration of the cross product, parallelized over the first
	// block's choices.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(perBlock[0]) && len(perBlock) > 0 {
		workers = max(1, len(perBlock[0]))
	}
	var wg sync.WaitGroup
	firstChoices := make(chan int)
	visited := make([]int, workers)

	scanPlan := func(choice []int, local, localLSE map[string][]twSpan) {
		// Collect every subtree key of every block's chosen tree.
		for bi, b := range c.Blocks {
			t := perBlock[bi][choice[bi]]
			var walk func(n *treeNode)
			walk = func(n *treeNode) {
				if n == nil {
					return
				}
				if n.lo < n.hi {
					window := b.Atoms[n.lo : n.hi+1]
					key := chain.CanonicalKey(window)
					s := twSpan{block: b.ID, lo: n.lo, hi: n.hi, flipped: chain.Transposed(window)}
					loopConst := true
					for _, a := range window {
						if !a.LoopConst {
							loopConst = false
							break
						}
					}
					if loopConst {
						localLSE[key] = append(localLSE[key], s)
					} else {
						local[key] = append(local[key], s)
					}
				}
				walk(n.l)
				walk(n.r)
			}
			walk(t)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localCSE := map[string][]twSpan{}
			localLSE := map[string][]twSpan{}
			localCapped := false
			for first := range firstChoices {
				// Keep draining the channel after the deadline so the
				// feeder never blocks on an unbuffered send.
				if stopped() {
					continue
				}
				// Odometer over the remaining blocks, bounded by this
				// first choice's budget share.
				choice := make([]int, len(perBlock))
				choice[0] = first
				for scanned := 0; ; {
					if stopped() {
						break
					}
					visited[w]++
					scanned++
					scanPlan(choice, localCSE, localLSE)
					// Increment odometer from block 1 upward.
					i := 1
					for ; i < len(choice); i++ {
						choice[i]++
						if choice[i] < len(perBlock[i]) {
							break
						}
						choice[i] = 0
					}
					if i >= len(choice) {
						break // this first choice's cross product is complete
					}
					if scanned >= perFirst {
						localCapped = true
						break
					}
				}
			}
			mu.Lock()
			capped = capped || localCapped
			for k, spans := range localCSE {
				cse[k] = append(cse[k], spans...)
			}
			for k, spans := range localLSE {
				lse[k] = append(lse[k], spans...)
			}
			mu.Unlock()
		}(w)
	}

	for i := range perBlock[0] {
		if stopped() {
			res.TimedOut = true
			break
		}
		firstChoices <- i
	}
	close(firstChoices)
	wg.Wait()
	if stopped() || truncated || capped {
		res.TimedOut = true
	}

	// Convert tables into options in deterministic key order,
	// deduplicating occurrences (the same span is observed in many plans).
	keys := make([]string, 0, len(cse)+len(lse))
	for k := range lse {
		keys = append(keys, k)
	}
	for k := range cse {
		if _, isLSE := lse[k]; !isLSE {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		if spans, ok := lse[key]; ok {
			occs := dedupSpans(spans)
			res.Options = append(res.Options, &Option{
				ID: len(res.Options), Kind: LSE, Key: key, Occs: occs,
				Atoms: atomsForSpan(c, occs[0]),
			})
			continue
		}
		occs := dedupSpans(cse[key])
		if len(occs) >= 2 {
			res.Options = append(res.Options, &Option{
				ID: len(res.Options), Kind: CSE, Key: key, Occs: occs,
				Atoms: atomsForSpan(c, occs[0]),
			})
		}
	}
	for _, v := range visited {
		res.Visited += v
	}
	res.Elapsed = time.Since(start)
	return res
}

// twSpan is one subtree interval observed during the tree-wise traversal.
type twSpan struct {
	block, lo, hi int
	flipped       bool
}

func dedupSpans(spans []twSpan) []Occurrence {
	seen := map[[3]int]bool{}
	hits := make([]hit, 0, len(spans))
	for _, s := range spans {
		k := [3]int{s.block, s.lo, s.hi}
		if seen[k] {
			continue
		}
		seen[k] = true
		hits = append(hits, hit{occ: Occurrence{Block: s.block, Lo: s.lo, Hi: s.hi, Flipped: s.flipped}})
	}
	return disjointOccurrences(hits)
}

func atomsForSpan(c *chain.Coordinates, o Occurrence) []chain.Atom {
	return c.Blocks[o.Block].Atoms[o.Lo : o.Hi+1]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
