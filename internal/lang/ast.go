// Package lang implements the DML-like scripting language ReMac compiles:
// assignments, while-loops, linear-algebra expressions with matrix
// multiplication (%*%), element-wise operators, transposition and a small
// builtin set. It mirrors the slice of SystemDS's DML that the paper's
// algorithms (GD, DFP, BFGS, GNMF) use.
package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed script: a statement list plus script pragmas.
type Program struct {
	Stmts []Stmt
	// Symmetric lists matrix symbols declared symmetric via the
	// `#@symmetric X` pragma. Symmetry lets the optimizer's canonical keys
	// match subexpressions hidden by transposition (e.g. AH vs HAᵀ).
	Symmetric map[string]bool
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Assign binds the value of Expr to Name.
type Assign struct {
	Name string
	Expr Expr
}

// While loops over Body while Cond holds.
type While struct {
	Cond Expr
	Body []Stmt
}

func (*Assign) stmt() {}
func (*While) stmt()  {}

// Expr is an expression node.
type Expr interface {
	expr()
	// String renders the expression in source syntax.
	String() string
}

// Num is a numeric literal.
type Num struct{ V float64 }

// Ref references a variable.
type Ref struct{ Name string }

// Str is a string literal (only used as read() argument).
type Str struct{ V string }

// Bin is a binary operation. Op is one of
// "+", "-", "*", "/", "%*%", "<", ">", "<=", ">=", "==", "!=".
type Bin struct {
	Op   string
	L, R Expr
}

// Un is a unary operation; Op is "-".
type Un struct {
	Op string
	X  Expr
}

// Call invokes a builtin: t, sum, as.scalar, read, nrow, ncol, sqrt, abs.
type Call struct {
	Fn   string
	Args []Expr
}

func (*Num) expr()  {}
func (*Ref) expr()  {}
func (*Str) expr()  {}
func (*Bin) expr()  {}
func (*Un) expr()   {}
func (*Call) expr() {}

// String implements Expr.
func (n *Num) String() string { return trimFloat(n.V) }

// String implements Expr.
func (r *Ref) String() string { return r.Name }

// String implements Expr.
func (s *Str) String() string { return fmt.Sprintf("%q", s.V) }

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

// String implements Expr.
func (u *Un) String() string { return fmt.Sprintf("(%s%s)", u.Op, u.X.String()) }

// String implements Expr.
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(args, ", "))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// Builtins lists the supported call targets.
var Builtins = map[string]int{ // name -> arity
	"t":         1,
	"sum":       1,
	"as.scalar": 1,
	"read":      1,
	"nrow":      1,
	"ncol":      1,
	"sqrt":      1,
	"abs":       1,
}

// Reads returns the dataset names the program reads, in order of first
// appearance.
func (p *Program) Reads() []string {
	seen := map[string]bool{}
	var names []string
	var visitExpr func(Expr)
	visitExpr = func(e Expr) {
		switch e := e.(type) {
		case *Bin:
			visitExpr(e.L)
			visitExpr(e.R)
		case *Un:
			visitExpr(e.X)
		case *Call:
			if e.Fn == "read" && len(e.Args) == 1 {
				if s, ok := e.Args[0].(*Str); ok && !seen[s.V] {
					seen[s.V] = true
					names = append(names, s.V)
				}
			}
			for _, a := range e.Args {
				visitExpr(a)
			}
		}
	}
	var visitStmts func([]Stmt)
	visitStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Assign:
				visitExpr(s.Expr)
			case *While:
				visitExpr(s.Cond)
				visitStmts(s.Body)
			}
		}
	}
	visitStmts(p.Stmts)
	return names
}

// Loop returns the program's single while loop and the statements before
// and after it. Programs with no loop return nil for the loop.
func (p *Program) Loop() (pre []Stmt, loop *While, post []Stmt) {
	for i, s := range p.Stmts {
		if w, ok := s.(*While); ok {
			return p.Stmts[:i], w, p.Stmts[i+1:]
		}
	}
	return p.Stmts, nil, nil
}

// AssignedIn returns the set of variable names assigned anywhere in stmts
// (including nested loops).
func AssignedIn(stmts []Stmt) map[string]bool {
	out := map[string]bool{}
	var walk func([]Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				out[s.Name] = true
			case *While:
				walk(s.Body)
			}
		}
	}
	walk(stmts)
	return out
}

// RefsIn returns the set of variable names referenced by an expression.
func RefsIn(e Expr) map[string]bool {
	out := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Ref:
			out[e.Name] = true
		case *Bin:
			walk(e.L)
			walk(e.R)
		case *Un:
			walk(e.X)
		case *Call:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}
