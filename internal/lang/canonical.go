package lang

import (
	"sort"
	"strings"
)

// Canonical returns a whitespace- and comment-insensitive canonical form of
// a script: its pragma directives (sorted, deduplicated) followed by the
// token stream joined with single spaces. Two scripts with equal canonical
// forms lex to the same token stream and pragma set, and therefore compile
// to the same program — which makes Canonical the textual component of a
// compiled-plan cache key (internal/serve).
func Canonical(src string) (string, error) {
	toks, pragmas, err := newLexer(src).lex()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	sorted := append([]string(nil), pragmas...)
	sort.Strings(sorted)
	last := ""
	for _, p := range sorted {
		if p == last {
			continue
		}
		last = p
		b.WriteByte('#')
		b.WriteString(p)
		b.WriteByte('\n')
	}
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokString {
			// Strings drop their quotes at lex time; restore them so the
			// identifier A and the literal "A" cannot collide.
			b.WriteByte('"')
			b.WriteString(t.text)
			b.WriteByte('"')
		} else {
			b.WriteString(t.text)
		}
	}
	return b.String(), nil
}
