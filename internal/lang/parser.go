package lang

import (
	"fmt"
	"strings"
)

// Parse compiles a script into a Program. Errors carry line numbers.
func Parse(src string) (*Program, error) {
	toks, pragmas, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmts, err := p.stmts(tokEOF)
	if err != nil {
		return nil, err
	}
	prog := &Program{Stmts: stmts, Symmetric: map[string]bool{}}
	for _, pragma := range pragmas {
		fields := strings.Fields(pragma)
		if len(fields) >= 2 && fields[0] == "@symmetric" {
			for _, name := range fields[1:] {
				prog.Symmetric[name] = true
			}
		}
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and embedded scripts.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.take()
	if t.kind != kind {
		return t, fmt.Errorf("lang:%d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

// stmts parses statements until the terminator kind (EOF or closing brace).
func (p *parser) stmts(until tokenKind) ([]Stmt, error) {
	var out []Stmt
	for {
		t := p.peek()
		if t.kind == until {
			p.take()
			return out, nil
		}
		if t.kind == tokEOF {
			return nil, fmt.Errorf("lang:%d: unexpected end of input", t.line)
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.kind == tokIdent && t.text == "while" {
		return p.whileStmt()
	}
	if t.kind != tokIdent {
		return nil, fmt.Errorf("lang:%d: expected statement, got %s", t.line, t)
	}
	name := p.take().text
	if op, err := p.expect(tokOp, `"="`); err != nil || op.text != "=" {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("lang:%d: expected \"=\", got %q", op.line, op.text)
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Assign{Name: name, Expr: e}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.take() // while
	if _, err := p.expect(tokLParen, `"("`); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, `")"`); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, `"{"`); err != nil {
		return nil, err
	}
	body, err := p.stmts(tokRBrace)
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body}, nil
}

// Precedence climbing: comparison < additive < multiplicative < unary.
func (p *parser) expr() (Expr, error) { return p.comparison() }

func (p *parser) comparison() (Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp && isComparison(t.text) {
		p.take()
		right, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: t.text, L: left, R: right}, nil
	}
	return left, nil
}

func isComparison(op string) bool {
	switch op {
	case "<", ">", "<=", ">=", "==", "!=":
		return true
	}
	return false
}

func (p *parser) additive() (Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.take()
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: t.text, L: left, R: right}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%*%") {
			return left, nil
		}
		p.take()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: t.text, L: left, R: right}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.take()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.take()
	switch t.kind {
	case tokNumber:
		return &Num{V: t.num}, nil
	case tokString:
		return &Str{V: t.text}, nil
	case tokLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			return p.call(t)
		}
		return &Ref{Name: t.text}, nil
	}
	return nil, fmt.Errorf("lang:%d: expected expression, got %s", t.line, t)
}

func (p *parser) call(name token) (Expr, error) {
	arity, ok := Builtins[name.text]
	if !ok {
		return nil, fmt.Errorf("lang:%d: unknown function %q", name.line, name.text)
	}
	p.take() // (
	var args []Expr
	if p.peek().kind != tokRParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.peek().kind != tokComma {
				break
			}
			p.take()
		}
	}
	if _, err := p.expect(tokRParen, `")"`); err != nil {
		return nil, err
	}
	if len(args) != arity {
		return nil, fmt.Errorf("lang:%d: %s takes %d argument(s), got %d", name.line, name.text, arity, len(args))
	}
	return &Call{Fn: name.text, Args: args}, nil
}
