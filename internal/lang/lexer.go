package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // + - * / %*% < > <= >= == != =
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokComma
)

type token struct {
	kind tokenKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits a script into tokens and collects pragmas from comments.
type lexer struct {
	src     []rune
	pos     int
	line    int
	pragmas []string
	lastErr error
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

// lex tokenizes the entire input. It returns collected pragma comment
// bodies alongside the token stream.
func (lx *lexer) lex() ([]token, []string, error) {
	var toks []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, lx.pragmas, nil
		}
	}
}

func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
	}
	return r
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		r := lx.peekRune()
		switch {
		case r == '#':
			lx.comment()
		case unicode.IsSpace(r):
			lx.advance()
		default:
			goto tokenStart
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

tokenStart:
	line := lx.line
	r := lx.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		return lx.ident(line), nil
	case unicode.IsDigit(r):
		return lx.number(line)
	case r == '"':
		return lx.str(line)
	}
	lx.advance()
	switch r {
	case '(':
		return token{kind: tokLParen, text: "(", line: line}, nil
	case ')':
		return token{kind: tokRParen, text: ")", line: line}, nil
	case '{':
		return token{kind: tokLBrace, text: "{", line: line}, nil
	case '}':
		return token{kind: tokRBrace, text: "}", line: line}, nil
	case ',':
		return token{kind: tokComma, text: ",", line: line}, nil
	case '+', '-', '*', '/':
		return token{kind: tokOp, text: string(r), line: line}, nil
	case '%':
		// The matrix multiplication operator %*%.
		if lx.peekRune() == '*' {
			lx.advance()
			if lx.peekRune() == '%' {
				lx.advance()
				return token{kind: tokOp, text: "%*%", line: line}, nil
			}
		}
		return token{}, fmt.Errorf("lang:%d: stray %%, expected %%*%%", line)
	case '<', '>', '=', '!':
		if lx.peekRune() == '=' {
			lx.advance()
			return token{kind: tokOp, text: string(r) + "=", line: line}, nil
		}
		if r == '!' {
			return token{}, fmt.Errorf("lang:%d: stray '!'", line)
		}
		return token{kind: tokOp, text: string(r), line: line}, nil
	}
	return token{}, fmt.Errorf("lang:%d: unexpected character %q", line, string(r))
}

func (lx *lexer) comment() {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.pos++
	}
	body := strings.TrimSpace(string(lx.src[start:lx.pos]))
	body = strings.TrimPrefix(body, "#")
	body = strings.TrimSpace(body)
	if strings.HasPrefix(body, "@") {
		lx.pragmas = append(lx.pragmas, body)
	}
}

func (lx *lexer) ident(line int) token {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r := lx.src[lx.pos]
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
			lx.pos++
			continue
		}
		break
	}
	return token{kind: tokIdent, text: string(lx.src[start:lx.pos]), line: line}
}

func (lx *lexer) number(line int) (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r := lx.src[lx.pos]
		if unicode.IsDigit(r) || r == '.' || r == 'e' || r == 'E' {
			lx.pos++
			continue
		}
		if (r == '+' || r == '-') && lx.pos > start && (lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E') {
			lx.pos++
			continue
		}
		break
	}
	text := string(lx.src[start:lx.pos])
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("lang:%d: bad number %q", line, text)
	}
	return token{kind: tokNumber, text: text, num: v, line: line}, nil
}

func (lx *lexer) str(line int) (token, error) {
	lx.advance() // opening quote
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
		if lx.src[lx.pos] == '\n' {
			return token{}, fmt.Errorf("lang:%d: unterminated string", line)
		}
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{}, fmt.Errorf("lang:%d: unterminated string", line)
	}
	text := string(lx.src[start:lx.pos])
	lx.advance() // closing quote
	return token{kind: tokString, text: text, line: line}, nil
}
