package lang

import "testing"

func TestCanonicalInsensitiveToFormatting(t *testing.T) {
	a := "x = read(\"A\")\ny = t(x) %*% x\n"
	b := "# comment\nx   =\tread( \"A\" )\n\n\ny = t( x ) %*% x  # trailing\n"
	ca, err := Canonical(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonical(b)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Errorf("formatting changed canonical form:\n%q\n%q", ca, cb)
	}
}

func TestCanonicalDistinguishesIdentFromString(t *testing.T) {
	a, err := Canonical(`x = read("A")`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical(`x = read(A)`)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Errorf("ident A and literal %q collide: %q", "A", a)
	}
}

func TestCanonicalSortsAndDedupesPragmas(t *testing.T) {
	a, err := Canonical("#@symmetric H\n#@symmetric G\nx = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical("#@symmetric G\n#@symmetric H\n#@symmetric G\nx = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("pragma order/duplication changed canonical form:\n%q\n%q", a, b)
	}
}

func TestCanonicalRejectsLexErrors(t *testing.T) {
	if _, err := Canonical("x = \"unterminated"); err == nil {
		t.Error("lex error not surfaced")
	}
}
