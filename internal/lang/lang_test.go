package lang

import (
	"strings"
	"testing"
)

const dfpLike = `
#@symmetric H
A = read("cri2")
b = read("cri2_y")
H = read("H0")
x = read("x0")
i = 0
while (i < 20) {
    g = t(A) %*% (A %*% x - b)
    d = H %*% g
    H = H - (H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H) / as.scalar(t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + (d %*% t(d)) / as.scalar(2 * (t(d) %*% t(A) %*% A %*% d))
    x = x - 0.1 * d
    i = i + 1
}
`

func TestParseDFPLike(t *testing.T) {
	p, err := Parse(dfpLike)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !p.Symmetric["H"] {
		t.Error("@symmetric H pragma not recorded")
	}
	pre, loop, post := p.Loop()
	if loop == nil {
		t.Fatal("loop not found")
	}
	if len(pre) != 5 {
		t.Errorf("pre statements = %d, want 5", len(pre))
	}
	if len(post) != 0 {
		t.Errorf("post statements = %d, want 0", len(post))
	}
	if len(loop.Body) != 5 {
		t.Errorf("loop body statements = %d, want 5", len(loop.Body))
	}
	reads := p.Reads()
	if len(reads) != 4 || reads[0] != "cri2" {
		t.Errorf("Reads() = %v", reads)
	}
}

func TestPrecedence(t *testing.T) {
	p := MustParse(`y = a + b %*% c * 2`)
	// %*% and * bind tighter than +; left-assoc within the same level:
	// a + (((b %*% c) * 2))
	a := p.Stmts[0].(*Assign)
	bin, ok := a.Expr.(*Bin)
	if !ok || bin.Op != "+" {
		t.Fatalf("top op = %v", a.Expr)
	}
	right, ok := bin.R.(*Bin)
	if !ok || right.Op != "*" {
		t.Fatalf("right = %v", bin.R)
	}
	inner, ok := right.L.(*Bin)
	if !ok || inner.Op != "%*%" {
		t.Fatalf("inner = %v", right.L)
	}
}

func TestUnaryMinus(t *testing.T) {
	p := MustParse(`y = -x + 3`)
	bin := p.Stmts[0].(*Assign).Expr.(*Bin)
	if bin.Op != "+" {
		t.Fatalf("op = %q", bin.Op)
	}
	if _, ok := bin.L.(*Un); !ok {
		t.Fatalf("left = %v, want unary", bin.L)
	}
}

func TestComparisonInCondition(t *testing.T) {
	p := MustParse("while (i <= 10) { i = i + 1 }")
	w := p.Stmts[0].(*While)
	cond := w.Cond.(*Bin)
	if cond.Op != "<=" {
		t.Fatalf("cond op = %q", cond.Op)
	}
}

func TestCallParsing(t *testing.T) {
	p := MustParse(`v = as.scalar(t(x) %*% x)`)
	call := p.Stmts[0].(*Assign).Expr.(*Call)
	if call.Fn != "as.scalar" || len(call.Args) != 1 {
		t.Fatalf("call = %v", call)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`y = `,                       // missing expression
		`y = foo(1)`,                 // unknown function
		`y = t(a, b)`,                // wrong arity
		`while (x) y = 2`,            // missing brace
		`y = (1 + 2`,                 // unbalanced paren
		`y = "unterminated`,          // bad string
		`y = 1 ! 2`,                  // stray !
		`y = a % b`,                  // stray %
		`2 = x`,                      // assignment to number
		`y = 1..2e`,                  // bad number
		`while (i < 10) { i = i + 1`, // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("a = 1\nb = 2\nc = foo(3)\n")
	if err == nil || !strings.Contains(err.Error(), "lang:3") {
		t.Fatalf("error = %v, want line 3", err)
	}
}

func TestStringRendering(t *testing.T) {
	p := MustParse(`y = t(A) %*% (x + 1) * 2`)
	got := p.Stmts[0].(*Assign).Expr.String()
	want := "((t(A) %*% (x + 1)) * 2)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestScientificNumbers(t *testing.T) {
	p := MustParse(`y = 1.5e-3 + 2E2`)
	bin := p.Stmts[0].(*Assign).Expr.(*Bin)
	if bin.L.(*Num).V != 1.5e-3 || bin.R.(*Num).V != 200 {
		t.Fatalf("numbers parsed wrong: %v", bin)
	}
}

func TestAssignedInAndRefsIn(t *testing.T) {
	p := MustParse(dfpLike)
	_, loop, _ := p.Loop()
	assigned := AssignedIn(loop.Body)
	for _, name := range []string{"g", "d", "H", "x", "i"} {
		if !assigned[name] {
			t.Errorf("%s should be assigned in loop", name)
		}
	}
	if assigned["A"] {
		t.Error("A is not assigned in loop")
	}
	refs := RefsIn(loop.Body[0].(*Assign).Expr)
	for _, name := range []string{"A", "x", "b"} {
		if !refs[name] {
			t.Errorf("g's definition should reference %s", name)
		}
	}
}

func TestNestedLoopsAssignedIn(t *testing.T) {
	p := MustParse(`
i = 0
while (i < 2) {
    j = 0
    while (j < 2) {
        k = j
        j = j + 1
    }
    i = i + 1
}`)
	assigned := AssignedIn(p.Stmts)
	for _, name := range []string{"i", "j", "k"} {
		if !assigned[name] {
			t.Errorf("%s should be assigned (nested)", name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("y = ")
}

func TestCommentsSkipped(t *testing.T) {
	p := MustParse("# plain comment\na = 1 # trailing\nb = 2")
	if len(p.Stmts) != 2 {
		t.Fatalf("stmts = %d, want 2", len(p.Stmts))
	}
	if len(p.Symmetric) != 0 {
		t.Error("plain comments must not create pragmas")
	}
}

func TestNRowNColParse(t *testing.T) {
	p := MustParse(`n = nrow(A)
m = ncol(t(A) %*% A)`)
	if len(p.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
	c := p.Stmts[0].(*Assign).Expr.(*Call)
	if c.Fn != "nrow" {
		t.Fatalf("fn = %q", c.Fn)
	}
}
