package lang

import "testing"

// fuzzSeeds covers the grammar: assignments, while loops, calls, pragmas,
// comments, strings, exponent literals and every operator.
var fuzzSeeds = []string{
	"x = read(\"A\")",
	"A = read(\"A\")\nH = t(A) %*% A\nwrite(H, \"H\")",
	"# comment\n#@ manual cse t(A)*A\nx = read(\"x0\")\ni = 0\nwhile (i < 5) { x = x * 2\n i = i + 1 }",
	"g = (t(A) %*% (A %*% x) - b) / n",
	"x = 1e200 * -2.5E-3 + 0.4",
	"d = sum(p * q)\nalpha = rho / d",
	"W = W * (V %*% t(H)) / (W %*% (H %*% t(H)))",
	"while (norm > eps) { }",
	"x = {",
	"y = \"unterminated",
	"z = 1e",
	"%%",
}

// FuzzParse asserts the parser never panics: any input either parses or
// returns an error.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}

// FuzzCanonical asserts Canonical is a fixpoint over parseable scripts: the
// canonical form of any script that lexes and parses must itself parse, and
// canonicalizing it again must return it unchanged. Serve's plan cache keys
// on the canonical text, so a drifting fixpoint would split or alias cache
// entries.
func FuzzCanonical(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c1, err := Canonical(src)
		if err != nil {
			return
		}
		if _, err := Parse(src); err != nil {
			return
		}
		if _, err := Parse(c1); err != nil {
			t.Fatalf("canonical form of a parseable script fails to parse: %v\nsrc: %q\ncanonical: %q", err, src, c1)
		}
		c2, err := Canonical(c1)
		if err != nil {
			t.Fatalf("canonical form fails to re-canonicalize: %v\ncanonical: %q", err, c1)
		}
		if c2 != c1 {
			t.Fatalf("canonical form is not a fixpoint:\nfirst:  %q\nsecond: %q", c1, c2)
		}
	})
}
