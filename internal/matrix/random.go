package matrix

import (
	"math"
	"math/rand"
)

// This file provides deterministic random matrix constructors used by the
// dataset generators and the tests. All take an explicit *rand.Rand so runs
// are reproducible.

// RandDense returns a rows×cols dense matrix with entries uniform in
// [-1, 1).
func RandDense(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandSparse returns a rows×cols CSR matrix where each cell is nonzero with
// probability sparsity and nonzero values are uniform in [-1, 1).
func RandSparse(rng *rand.Rand, rows, cols int, sparsity float64) *Matrix {
	rowPtr := make([]int, rows+1)
	var colIdx []int
	var vals []float64
	for i := 0; i < rows; i++ {
		// Geometric skipping for efficiency at low sparsity.
		j := nextHit(rng, sparsity, -1)
		for j < cols {
			colIdx = append(colIdx, j)
			vals = append(vals, 2*rng.Float64()-1)
			j = nextHit(rng, sparsity, j)
		}
		rowPtr[i+1] = len(vals)
	}
	return NewCSR(rows, cols, rowPtr, colIdx, vals)
}

// nextHit returns the next column index after prev that is selected with
// probability p per cell, via geometric skipping.
func nextHit(rng *rand.Rand, p float64, prev int) int {
	if p <= 0 {
		return math.MaxInt32
	}
	if p >= 1 {
		return prev + 1
	}
	u := rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	skip := int(math.Floor(math.Log(u)/math.Log(1-p))) + 1
	if skip < 1 {
		skip = 1
	}
	return prev + skip
}

// RandSymmetric returns a dense symmetric rows×rows matrix (used for the
// inverse-Hessian approximations in DFP/BFGS tests).
func RandSymmetric(rng *rand.Rand, n int) *Matrix {
	m := RandDense(rng, n, n)
	return m.Add(m.Transpose()).Scale(0.5)
}

// RandVector returns an n×1 dense column vector with entries in [-1, 1).
func RandVector(rng *rand.Rand, n int) *Matrix {
	return RandDense(rng, n, 1)
}

// ZipfSparse returns a rows×cols CSR matrix with the given overall sparsity
// whose nonzeros are skewed across rows and columns following a Zipf
// distribution with the given exponent. Exponent 0 degenerates to the
// uniform distribution. This reproduces the zipf-* synthetic datasets of
// §6.5: with exponent 2.8, more than 95% of nonzeros land in ~5% of the
// rows and columns.
func ZipfSparse(rng *rand.Rand, rows, cols int, sparsity, exponent float64) *Matrix {
	if exponent <= 0 {
		return RandSparse(rng, rows, cols, sparsity)
	}
	targetNNZ := int(float64(rows) * float64(cols) * sparsity)

	// Allocate per-row nonzero quotas proportional to Zipf weights, capped
	// at a tenth of the column count (heavy rows are dense but not full —
	// a single full row would make AᵀA trivially dense at every skew),
	// spilling any excess down the rank order. Direct rejection sampling
	// of (row, col) cells would flatten the skew: at exponent 2.8 over 80%
	// of draws hit one cell, which can only be stored once.
	rowCap := cols / 10
	if rowCap < 1 {
		rowCap = 1
	}
	rowQuota := zipfQuotas(rows, exponent, targetNNZ, rowCap)
	colCDF := zipfCDF(cols, exponent)
	rowPerm := rng.Perm(rows)
	colPerm := rng.Perm(cols)

	perRow := make([][]int, rows)
	seen := make([]bool, cols)
	for rank := 0; rank < rows; rank++ {
		q := rowQuota[rank]
		if q == 0 {
			continue
		}
		i := rowPerm[rank]
		chosen := make([]int, 0, q)
		// Sample distinct columns from the Zipf CDF; when duplicates start
		// dominating (dense rows), fill the remainder from the rank order.
		for attempts := 0; len(chosen) < q && attempts < 8*q; attempts++ {
			c := sampleCDF(rng, colCDF)
			if !seen[c] {
				seen[c] = true
				chosen = append(chosen, c)
			}
		}
		for c := 0; len(chosen) < q; c++ {
			if !seen[c] {
				seen[c] = true
				chosen = append(chosen, c)
			}
		}
		rowCols := make([]int, 0, len(chosen))
		for _, c := range chosen {
			seen[c] = false
			rowCols = append(rowCols, colPerm[c])
		}
		insertionSortInts(rowCols)
		perRow[i] = rowCols
	}
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, targetNNZ)
	vals := make([]float64, 0, targetNNZ)
	for i := 0; i < rows; i++ {
		for _, j := range perRow[i] {
			colIdx = append(colIdx, j)
			vals = append(vals, 2*rng.Float64()-1)
		}
		rowPtr[i+1] = len(vals)
	}
	return NewCSR(rows, cols, rowPtr, colIdx, vals)
}

// zipfQuotas splits total into n integer quotas proportional to a Zipf
// distribution with the given exponent, capping each quota at max and
// spilling the excess to later ranks.
func zipfQuotas(n int, exponent float64, total, max int) []int {
	weights := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		weights[k] = 1 / math.Pow(float64(k+1), exponent)
		sum += weights[k]
	}
	quotas := make([]int, n)
	remaining := total
	// Repeated proportional passes: mass clipped by the per-row cap cascades
	// onto the next unsaturated ranks, preserving the head-heavy shape
	// instead of smearing the excess uniformly.
	for pass := 0; remaining > 0 && pass < 64; pass++ {
		tailSum := 0.0
		for k := 0; k < n; k++ {
			if quotas[k] < max {
				tailSum += weights[k]
			}
		}
		if tailSum == 0 {
			break
		}
		progress := false
		budget := remaining
		for k := 0; k < n && remaining > 0; k++ {
			if quotas[k] >= max {
				continue
			}
			q := int(math.Round(float64(budget) * weights[k] / tailSum))
			if q > max-quotas[k] {
				q = max - quotas[k]
			}
			if q > remaining {
				q = remaining
			}
			if q > 0 {
				quotas[k] += q
				remaining -= q
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Greedy fallback for rounding residue: fill in rank order.
	for k := 0; k < n && remaining > 0; k++ {
		take := max - quotas[k]
		if take > remaining {
			take = remaining
		}
		quotas[k] += take
		remaining -= take
	}
	return quotas
}

func zipfCDF(n int, exponent float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), exponent)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

func sampleCDF(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
