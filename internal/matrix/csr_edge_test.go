// External test package: the digest-stability cases import
// internal/integrity, which imports matrix — an in-package test would cycle.
package matrix_test

import (
	"math"
	"testing"

	"remac/internal/integrity"
	"remac/internal/matrix"
)

// TestZeroDimensionConstructionPanics pins the shape contract: 0×n and n×0
// matrices are rejected at construction, in both formats, so downstream
// kernels never see an empty axis.
func TestZeroDimensionConstructionPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"dense 0xN", func() { matrix.NewDense(0, 5) }},
		{"dense Nx0", func() { matrix.NewDense(5, 0) }},
		{"dense 0x0", func() { matrix.NewDense(0, 0) }},
		{"csr 0xN", func() { matrix.NewCSR(0, 5, []int{0}, nil, nil) }},
		{"csr Nx0", func() { matrix.NewCSR(5, 0, []int{0, 0, 0, 0, 0, 0}, nil, nil) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: construction must panic", c.name)
				}
			}()
			c.f()
		})
	}
}

// TestCSRAllEmptyRows exercises a CSR matrix with zero stored entries: every
// accessor must behave as an all-zero matrix and conversions must round-trip.
func TestCSRAllEmptyRows(t *testing.T) {
	m := matrix.NewCSR(3, 4, []int{0, 0, 0, 0}, nil, nil)
	if got := m.NNZ(); got != 0 {
		t.Fatalf("NNZ = %d, want 0", got)
	}
	if got := m.Sparsity(); got != 0 {
		t.Fatalf("Sparsity = %g, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if got := m.RowNNZ(i); got != 0 {
			t.Fatalf("RowNNZ(%d) = %d, want 0", i, got)
		}
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) != 0", i, j)
			}
		}
	}
	m.ForEachNonzero(func(i, j int, v float64) {
		t.Fatalf("ForEachNonzero visited (%d,%d)=%g on an empty matrix", i, j, v)
	})
	d := m.ToDense()
	if !d.Equal(matrix.NewDense(3, 4)) {
		t.Fatal("empty CSR does not convert to the zero dense matrix")
	}
	if !d.ToCSR().Equal(m) {
		t.Fatal("empty CSR does not survive a dense round-trip")
	}
	if _, ok := m.FlipValueBit(0, 62); ok {
		t.Fatal("FlipValueBit reported success on an empty matrix")
	}
}

// TestCompactFormatBoundary pins the 0.4 sparsity format switch: Compact
// stays CSR at the threshold and goes dense strictly above it.
func TestCompactFormatBoundary(t *testing.T) {
	// 10×10 with 40 nonzeros is exactly DenseThreshold sparsity; 41 crosses it.
	build := func(nnz int) *matrix.Matrix {
		m := matrix.NewDense(10, 10)
		for k := 0; k < nnz; k++ {
			m.Set(k/10, k%10, float64(k+1))
		}
		return m
	}
	if got := build(40).Compact().Format(); got != matrix.CSR {
		t.Fatalf("Compact at sparsity %g = %v, want CSR (threshold is exclusive)", 0.40, got)
	}
	if got := build(41).Compact().Format(); got != matrix.Dense {
		t.Fatalf("Compact at sparsity %g = %v, want Dense", 0.41, got)
	}
}

// TestDigestFormatIndependence asserts the integrity digest sees values, not
// storage: the same logical matrix digests identically in dense and CSR form,
// and a CSR matrix carrying an explicit stored zero digests like one without.
func TestDigestFormatIndependence(t *testing.T) {
	d := matrix.NewDense(3, 5)
	d.Set(0, 1, 2.5)
	d.Set(1, 4, -7)
	d.Set(2, 0, 1e-300)
	c := d.ToCSR()
	if hd, hc := integrity.Digest(d), integrity.Digest(c); hd != hc {
		t.Fatalf("Digest(dense)=%x != Digest(csr)=%x for equal values", hd, hc)
	}
	// Explicit stored zero: same logical values, extra CSR entry.
	z := matrix.NewCSR(3, 5,
		[]int{0, 2, 3, 4},
		[]int{1, 3, 4, 0},
		[]float64{2.5, 0, -7, 1e-300})
	if hz, hc := integrity.Digest(z), integrity.Digest(c); hz != hc {
		t.Fatalf("Digest ignores storage: explicit zero changed %x -> %x", hc, hz)
	}
	// Different shape, same value list, must differ.
	d2 := matrix.NewDense(5, 3)
	d2.Set(1, 0, 2.5)
	d2.Set(4, 1, -7)
	d2.Set(0, 2, 1e-300)
	if integrity.Digest(d2) == integrity.Digest(d) {
		t.Fatal("Digest collides across shapes")
	}
}

// TestFlipValueBit pins the corruption primitive: the flip lands on a stored
// nonzero, changes exactly that value's bits, and never mutates the receiver.
func TestFlipValueBit(t *testing.T) {
	for _, format := range []string{"dense", "csr"} {
		m := matrix.NewDense(2, 3)
		m.Set(0, 0, 1)
		m.Set(1, 2, 4)
		if format == "csr" {
			m = m.ToCSR()
		}
		orig := m.Clone()
		got, ok := m.FlipValueBit(7, 62) // 7 % 2 nonzeros = index 1
		if !ok {
			t.Fatalf("%s: flip failed", format)
		}
		if !m.Equal(orig) {
			t.Fatalf("%s: FlipValueBit mutated the receiver", format)
		}
		if got.At(0, 0) != 1 {
			t.Fatalf("%s: flip damaged the wrong value", format)
		}
		want := math.Float64frombits(math.Float64bits(4) ^ (1 << 62))
		if got.At(1, 2) != want {
			t.Fatalf("%s: At(1,2) = %g, want %g", format, got.At(1, 2), want)
		}
		if integrity.Digest(got) == integrity.Digest(orig) {
			t.Fatalf("%s: digest unchanged by flip", format)
		}
	}
}
