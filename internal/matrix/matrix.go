// Package matrix implements the local matrix kernels that underpin the
// distributed matrix runtime, mirroring the block operations of SystemDS.
//
// A Matrix is either dense (row-major float64 slice) or sparse (compressed
// sparse rows). Following SystemDS, the runtime stores a matrix densely when
// its sparsity exceeds DenseThreshold and in CSR otherwise; callers that
// build matrices incrementally can ask for the economical format with
// Compact.
package matrix

import (
	"fmt"
	"math"
)

// Format identifies the physical representation of a Matrix.
type Format int

const (
	// Dense is a row-major []float64 of length rows*cols.
	Dense Format = iota
	// CSR is compressed sparse rows: rowPtr, colIdx, vals.
	CSR
)

// String returns the SystemDS-style name of the format.
func (f Format) String() string {
	switch f {
	case Dense:
		return "dense"
	case CSR:
		return "sparse"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// DenseThreshold is the sparsity above which SystemDS (and hence this
// runtime) stores a matrix densely. See §4.2 of the paper: "we use a dense
// format if S > 0.4".
const DenseThreshold = 0.4

// CSRThreshold is the sparsity above which a sparse matrix uses CSR rather
// than an ultra-sparse coordinate encoding (paper: 0.0004 < S <= 0.4 uses
// compressed sparse rows). We use CSR for everything at or below
// DenseThreshold; the size model in SizeBytes still distinguishes the
// ultra-sparse regime.
const CSRThreshold = 0.0004

// Matrix is a two-dimensional float64 matrix in either dense or CSR format.
// The zero value is not usable; use the constructors.
type Matrix struct {
	rows, cols int
	format     Format

	// dense payload (format == Dense)
	data []float64

	// CSR payload (format == CSR)
	rowPtr []int
	colIdx []int
	vals   []float64
}

// NewDense returns a rows×cols dense zero matrix.
func NewDense(rows, cols int) *Matrix {
	checkDims(rows, cols)
	return &Matrix{rows: rows, cols: cols, format: Dense, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) as a dense matrix.
// The slice is owned by the matrix afterwards.
func NewDenseData(rows, cols int, data []float64) *Matrix {
	checkDims(rows, cols)
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: NewDenseData %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{rows: rows, cols: cols, format: Dense, data: data}
}

// NewCSR returns a rows×cols sparse matrix from raw CSR arrays. The arrays
// are owned by the matrix afterwards. Column indices within a row must be
// strictly increasing.
func NewCSR(rows, cols int, rowPtr, colIdx []int, vals []float64) *Matrix {
	checkDims(rows, cols)
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("matrix: NewCSR rowPtr length %d, want %d", len(rowPtr), rows+1))
	}
	if len(colIdx) != len(vals) {
		panic(fmt.Sprintf("matrix: NewCSR colIdx/vals length mismatch %d vs %d", len(colIdx), len(vals)))
	}
	if rowPtr[rows] != len(vals) {
		panic(fmt.Sprintf("matrix: NewCSR rowPtr[last]=%d, want %d", rowPtr[rows], len(vals)))
	}
	return &Matrix{rows: rows, cols: cols, format: CSR, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// Identity returns the n×n dense identity matrix.
func Identity(n int) *Matrix {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Scalar returns a 1×1 matrix holding v. The runtime models scalars as 1×1
// matrices, like SystemDS does internally.
func Scalar(v float64) *Matrix {
	return NewDenseData(1, 1, []float64{v})
}

func checkDims(rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: non-positive dimensions %dx%d", rows, cols))
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Format returns the physical representation.
func (m *Matrix) Format() Format { return m.format }

// IsVector reports whether the matrix has a single row or column.
func (m *Matrix) IsVector() bool { return m.rows == 1 || m.cols == 1 }

// IsScalar reports whether the matrix is 1×1.
func (m *Matrix) IsScalar() bool { return m.rows == 1 && m.cols == 1 }

// ScalarValue returns the single element of a 1×1 matrix.
func (m *Matrix) ScalarValue() float64 {
	if !m.IsScalar() {
		panic(fmt.Sprintf("matrix: ScalarValue on %dx%d matrix", m.rows, m.cols))
	}
	return m.At(0, 0)
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	if m.format == Dense {
		return m.data[i*m.cols+j]
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	// Binary search the row's column indices.
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.colIdx[mid] == j:
			return m.vals[mid]
		case m.colIdx[mid] < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Set stores v at (i, j). The matrix must be dense; sparse matrices are
// immutable once built (as in SystemDS block semantics).
func (m *Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	if m.format != Dense {
		panic("matrix: Set on sparse matrix")
	}
	m.data[i*m.cols+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// NNZ returns the number of structurally stored nonzero elements. For dense
// matrices it counts exact nonzero values.
func (m *Matrix) NNZ() int {
	if m.format == CSR {
		return len(m.vals)
	}
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns NNZ / (rows*cols).
func (m *Matrix) Sparsity() float64 {
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, format: m.format}
	if m.format == Dense {
		c.data = append([]float64(nil), m.data...)
		return c
	}
	c.rowPtr = append([]int(nil), m.rowPtr...)
	c.colIdx = append([]int(nil), m.colIdx...)
	c.vals = append([]float64(nil), m.vals...)
	return c
}

// FlipValueBit returns a copy of the matrix with the given bit XOR-ed into
// the float64 payload of its (k mod n)-th numerically nonzero stored value,
// counting in row-major order over the n such values. The receiver is never
// mutated (sparse matrices are immutable, and blocks are shared). ok is
// false — and the receiver is returned unchanged — when the matrix stores no
// nonzero value. Counting only nonzero *values* (CSR blocks may store
// explicit zeros) keeps the choice of victim independent of the physical
// format, like the integrity digest.
func (m *Matrix) FlipValueBit(k, bit int) (flipped *Matrix, ok bool) {
	n := m.NNZ()
	if m.format == CSR {
		n = 0
		for _, v := range m.vals {
			if v != 0 {
				n++
			}
		}
	}
	if n == 0 {
		return m, false
	}
	if k < 0 {
		k = -k
	}
	k %= n
	c := m.Clone()
	flip := func(vals []float64) {
		for i, v := range vals {
			if v == 0 {
				continue
			}
			if k == 0 {
				vals[i] = math.Float64frombits(math.Float64bits(v) ^ (1 << uint(bit)))
				return
			}
			k--
		}
	}
	if c.format == Dense {
		flip(c.data)
	} else {
		flip(c.vals)
	}
	return c, true
}

// Equal reports exact element-wise equality.
func (m *Matrix) Equal(other *Matrix) bool {
	return m.ApproxEqual(other, 0)
}

// ApproxEqual reports element-wise equality within tol (absolute or relative,
// whichever is looser).
func (m *Matrix) ApproxEqual(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			a, b := m.At(i, j), other.At(i, j)
			if a == b {
				continue
			}
			diff := math.Abs(a - b)
			scale := math.Max(math.Abs(a), math.Abs(b))
			if diff > tol && diff > tol*scale {
				return false
			}
		}
	}
	return true
}

// String renders small matrices fully and large ones as a summary.
func (m *Matrix) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d %s nnz=%d)", m.rows, m.cols, m.format, m.NNZ())
	}
	s := fmt.Sprintf("Matrix(%dx%d %s)[", m.rows, m.cols, m.format)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", m.At(i, j))
		}
	}
	return s + "]"
}
