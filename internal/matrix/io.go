package matrix

// This file implements matrix serialization: a text CSV form for
// interoperability and a compact binary form (dense or CSR payload, little
// endian) for fast round-trips. The cmd tools use these to load user
// matrices; the binary format is also the reference for the size model's
// byte accounting.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV writes the matrix as comma-separated rows.
func (m *Matrix) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.rows; i++ {
		row := m.DenseRow(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated rows into a matrix. All rows must have the
// same number of fields. The result is compacted to the economical format.
func ReadCSV(r io.Reader) (*Matrix, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<26)
	var data []float64
	rows, cols := 0, -1
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("matrix: csv row %d has %d fields, want %d", rows+1, len(fields), cols)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: csv row %d: %w", rows+1, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if rows == 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: empty csv input")
	}
	return NewDenseData(rows, cols, data).Compact(), nil
}

// Binary format:
//
//	magic "RMX1" | format byte (0 dense, 1 CSR) | int64 rows | int64 cols |
//	dense: rows*cols float64
//	CSR:   int64 nnz | (rows+1) int64 rowPtr | nnz int64 colIdx | nnz float64
const binaryMagic = "RMX1"

// WriteBinary writes the matrix in the compact binary format.
func (m *Matrix) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(m.format)); err != nil {
		return err
	}
	if err := writeInts(bw, int64(m.rows), int64(m.cols)); err != nil {
		return err
	}
	if m.format == Dense {
		if err := binary.Write(bw, binary.LittleEndian, m.data); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := writeInts(bw, int64(len(m.vals))); err != nil {
		return err
	}
	for _, p := range m.rowPtr {
		if err := writeInts(bw, int64(p)); err != nil {
			return err
		}
	}
	for _, c := range m.colIdx {
		if err := writeInts(bw, int64(c)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.vals); err != nil {
		return err
	}
	return bw.Flush()
}

func writeInts(w io.Writer, vs ...int64) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("matrix: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("matrix: bad magic %q", magic)
	}
	formatByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var rows64, cols64 int64
	if err := readInts(br, &rows64, &cols64); err != nil {
		return nil, err
	}
	rows, cols := int(rows64), int(cols64)
	if rows <= 0 || cols <= 0 || rows64 > math.MaxInt32 || cols64 > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: bad dims %dx%d", rows64, cols64)
	}
	switch Format(formatByte) {
	case Dense:
		data := make([]float64, rows*cols)
		if err := binary.Read(br, binary.LittleEndian, data); err != nil {
			return nil, err
		}
		return NewDenseData(rows, cols, data), nil
	case CSR:
		var nnz64 int64
		if err := readInts(br, &nnz64); err != nil {
			return nil, err
		}
		if nnz64 < 0 || nnz64 > int64(rows)*int64(cols) {
			return nil, fmt.Errorf("matrix: bad nnz %d", nnz64)
		}
		nnz := int(nnz64)
		rowPtr := make([]int, rows+1)
		if err := readIntSlice(br, rowPtr); err != nil {
			return nil, err
		}
		colIdx := make([]int, nnz)
		if err := readIntSlice(br, colIdx); err != nil {
			return nil, err
		}
		vals := make([]float64, nnz)
		if err := binary.Read(br, binary.LittleEndian, vals); err != nil {
			return nil, err
		}
		if rowPtr[rows] != nnz {
			return nil, fmt.Errorf("matrix: rowPtr[last]=%d, want %d", rowPtr[rows], nnz)
		}
		for i := 0; i < rows; i++ {
			if rowPtr[i] > rowPtr[i+1] {
				return nil, fmt.Errorf("matrix: rowPtr not monotone at %d", i)
			}
		}
		for _, c := range colIdx {
			if c < 0 || c >= cols {
				return nil, fmt.Errorf("matrix: column index %d out of %d", c, cols)
			}
		}
		return NewCSR(rows, cols, rowPtr, colIdx, vals), nil
	default:
		return nil, fmt.Errorf("matrix: unknown format byte %d", formatByte)
	}
}

func readInts(r io.Reader, vs ...*int64) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readIntSlice(r io.Reader, out []int) error {
	buf := make([]int64, len(out))
	if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
		return err
	}
	for i, v := range buf {
		if v < 0 || v > math.MaxInt32 {
			return fmt.Errorf("matrix: bad index %d", v)
		}
		out[i] = int(v)
	}
	return nil
}
