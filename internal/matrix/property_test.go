package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests of the algebraic identities the optimizer's rewrites
// rely on. Every rewrite ReMac performs (transpose push-down, associativity
// regrouping, distributive expansion) is only sound if these identities hold
// on the kernels.

type dims struct{ n, k, p int }

func clampDim(v uint8) int { return int(v%12) + 1 }

func randomMatrixPair(seed int64, d dims, sparse bool) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(seed))
	if sparse {
		return RandSparse(rng, d.n, d.k, 0.3), RandSparse(rng, d.k, d.p, 0.3)
	}
	return RandDense(rng, d.n, d.k), RandDense(rng, d.k, d.p)
}

func TestPropTransposeOfProduct(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	f := func(seed int64, a, b, c uint8, sparse bool) bool {
		d := dims{clampDim(a), clampDim(b), clampDim(c)}
		A, B := randomMatrixPair(seed, d, sparse)
		left := A.Mul(B).Transpose()
		right := B.Transpose().Mul(A.Transpose())
		return left.ApproxEqual(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAssociativity(t *testing.T) {
	// (AB)C = A(BC) — the identity that lets the block-wise search disregard
	// the internal execution order of multiplication chains (Rationale 3).
	f := func(seed int64, a, b, c, d uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p, q := clampDim(a), clampDim(b), clampDim(c), clampDim(d)
		A := RandDense(rng, n, k)
		B := RandDense(rng, k, p)
		C := RandDense(rng, p, q)
		left := A.Mul(B).Mul(C)
		right := A.Mul(B.Mul(C))
		return left.ApproxEqual(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDistributivity(t *testing.T) {
	// A(B+C) = AB + AC — the identity behind the expansion in search step 2.
	f := func(seed int64, a, b, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p := clampDim(a), clampDim(b), clampDim(c)
		A := RandDense(rng, n, k)
		B := RandDense(rng, k, p)
		C := RandDense(rng, k, p)
		left := A.Mul(B.Add(C))
		right := A.Mul(B).Add(A.Mul(C))
		return left.ApproxEqual(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64, a, b uint8, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := clampDim(a), clampDim(b)
		var A *Matrix
		if sparse {
			A = RandSparse(rng, n, k, 0.3)
		} else {
			A = RandDense(rng, n, k)
		}
		return A.Transpose().Transpose().ApproxEqual(A, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddCommutes(t *testing.T) {
	f := func(seed int64, a, b uint8, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := clampDim(a), clampDim(b)
		var A, B *Matrix
		if sparse {
			A, B = RandSparse(rng, n, k, 0.4), RandSparse(rng, n, k, 0.4)
		} else {
			A, B = RandDense(rng, n, k), RandDense(rng, n, k)
		}
		return A.Add(B).ApproxEqual(B.Add(A), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRoundTripPreservesValues(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := clampDim(a), clampDim(b)
		A := RandSparse(rng, n, k, 0.5)
		return A.ToDense().ToCSR().ToDense().Equal(A.ToDense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSparsityBounds(t *testing.T) {
	f := func(seed int64, a, b uint8, s float64) bool {
		if s < 0 {
			s = -s
		}
		for s > 1 {
			s /= 2
		}
		rng := rand.New(rand.NewSource(seed))
		n, k := clampDim(a)*10, clampDim(b)*10
		A := RandSparse(rng, n, k, s)
		got := A.Sparsity()
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleLinear(t *testing.T) {
	// (sA)·B = s(A·B)
	f := func(seed int64, a, b, c uint8, sRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := float64(sRaw) / 16
		n, k, p := clampDim(a), clampDim(b), clampDim(c)
		A := RandDense(rng, n, k)
		B := RandDense(rng, k, p)
		return A.Scale(s).Mul(B).ApproxEqual(A.Mul(B).Scale(s), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSymmetricATA(t *testing.T) {
	// AᵀA is always symmetric — the property that lets the canonical-key
	// normalization treat AH and HAᵀ as the same subexpression when H is
	// symmetric.
	f := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := clampDim(a), clampDim(b)
		A := RandDense(rng, n, k)
		return A.Transpose().Mul(A).IsSymmetric(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
