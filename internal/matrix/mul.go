package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// This file implements matrix multiplication for every format pairing. The
// dense×dense kernel parallelizes over row stripes; sparse kernels walk CSR
// structure directly so FLOP tracks nnz, matching the FLOP model the cost
// model charges (3·R·C·C'·S_U·S_V, §4.2).

// Mul returns m · other. Panics if the inner dimensions disagree. The result
// is compacted to the format its sparsity warrants.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	var out *Matrix
	switch {
	case m.format == Dense && other.format == Dense:
		out = mulDenseDense(m, other)
	case m.format == CSR && other.format == Dense:
		out = mulCSRDense(m, other)
	case m.format == Dense && other.format == CSR:
		out = mulDenseCSR(m, other)
	default:
		out = mulCSRCSR(m, other)
	}
	return out.Compact()
}

// MulFLOP returns the floating-point operation count the multiplication
// m·other performs under the paper's model: 3·R_U·C_U·C_V·S_U·S_V (two for
// multiply-adds, one for the additions; §4.2).
func MulFLOP(rowsU, colsU, colsV int, sU, sV float64) float64 {
	return 3 * float64(rowsU) * float64(colsU) * float64(colsV) * sU * sV
}

func stripeParallel(rows int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 64 {
		body(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func mulDenseDense(a, b *Matrix) *Matrix {
	out := NewDense(a.rows, b.cols)
	n, k, p := a.rows, a.cols, b.cols
	stripeParallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*p : (i+1)*p]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.data[kk*p : (kk+1)*p]
				for j := 0; j < p; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

func mulCSRDense(a, b *Matrix) *Matrix {
	out := NewDense(a.rows, b.cols)
	p := b.cols
	stripeParallel(a.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.data[i*p : (i+1)*p]
			for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
				av := a.vals[q]
				brow := b.data[a.colIdx[q]*p : (a.colIdx[q]+1)*p]
				for j := 0; j < p; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

func mulDenseCSR(a, b *Matrix) *Matrix {
	out := NewDense(a.rows, b.cols)
	k, p := a.cols, b.cols
	stripeParallel(a.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*p : (i+1)*p]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				for q := b.rowPtr[kk]; q < b.rowPtr[kk+1]; q++ {
					orow[b.colIdx[q]] += av * b.vals[q]
				}
			}
		}
	})
	return out
}

func mulCSRCSR(a, b *Matrix) *Matrix {
	// Gustavson's algorithm with a dense accumulator per output row,
	// parallel over row stripes.
	p := b.cols
	type rowResult struct {
		cols []int
		vals []float64
	}
	results := make([]rowResult, a.rows)
	stripeParallel(a.rows, func(lo, hi int) {
		acc := make([]float64, p)
		marked := make([]int, 0, 64)
		for i := lo; i < hi; i++ {
			marked = marked[:0]
			for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
				av := a.vals[q]
				kk := a.colIdx[q]
				for r := b.rowPtr[kk]; r < b.rowPtr[kk+1]; r++ {
					j := b.colIdx[r]
					if acc[j] == 0 {
						marked = append(marked, j)
					}
					acc[j] += av * b.vals[r]
				}
			}
			if len(marked) == 0 {
				continue
			}
			// Collect in column order by scanning: marked may be unsorted,
			// so sort small sets insertion-style.
			insertionSortInts(marked)
			cols := make([]int, 0, len(marked))
			vals := make([]float64, 0, len(marked))
			for _, j := range marked {
				if acc[j] != 0 {
					cols = append(cols, j)
					vals = append(vals, acc[j])
				}
				acc[j] = 0
			}
			results[i] = rowResult{cols, vals}
		}
	})
	rowPtr := make([]int, a.rows+1)
	total := 0
	for i := range results {
		total += len(results[i].vals)
		rowPtr[i+1] = total
	}
	colIdx := make([]int, 0, total)
	vals := make([]float64, 0, total)
	for i := range results {
		colIdx = append(colIdx, results[i].cols...)
		vals = append(vals, results[i].vals...)
	}
	return NewCSR(a.rows, b.cols, rowPtr, colIdx, vals)
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
