package matrix

// This file implements format conversion and the physical size model used by
// the cost model's transmission terms (§4.2: size(V) = α·S_V + β for CSR).

// ToDense returns a dense copy of the matrix (or the matrix itself when it
// is already dense).
func (m *Matrix) ToDense() *Matrix {
	if m.format == Dense {
		return m
	}
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d.data[i*m.cols+m.colIdx[p]] = m.vals[p]
		}
	}
	return d
}

// ToCSR returns a CSR copy of the matrix (or the matrix itself when it is
// already CSR). Zero dense entries are dropped.
func (m *Matrix) ToCSR() *Matrix {
	if m.format == CSR {
		return m
	}
	nnz := m.NNZ()
	rowPtr := make([]int, m.rows+1)
	colIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			if v := m.data[base+j]; v != 0 {
				colIdx = append(colIdx, j)
				vals = append(vals, v)
			}
		}
		rowPtr[i+1] = len(vals)
	}
	return NewCSR(m.rows, m.cols, rowPtr, colIdx, vals)
}

// Compact returns the matrix in the format SystemDS would choose for its
// sparsity: dense above DenseThreshold, CSR otherwise. The receiver may be
// returned unchanged.
func (m *Matrix) Compact() *Matrix {
	if m.Sparsity() > DenseThreshold {
		return m.ToDense()
	}
	return m.ToCSR()
}

// Size-model constants. A dense cell is one float64; a CSR entry stores a
// value plus a column index; a CSR row adds one row-pointer. These drive the
// D_pr byte volumes of the transmission cost (§4.2).
const (
	bytesPerValue  = 8
	bytesPerColIdx = 4
	bytesPerRowPtr = 8
	headerBytes    = 64 // block metadata fields (dims, nnz, format tag)
)

// SizeBytes returns the serialized size of the matrix in its current format.
func (m *Matrix) SizeBytes() int64 {
	return SizeBytesFor(m.rows, m.cols, m.Sparsity())
}

// SizeBytesFor returns the modelled serialized size for a rows×cols matrix
// of the given sparsity, choosing the format the runtime would choose. This
// is the α·S+β linear model of §4.2: for CSR, α·S is the values+indexes
// array and β the row pointers and metadata.
func SizeBytesFor(rows, cols int, sparsity float64) int64 {
	cells := float64(rows) * float64(cols)
	if sparsity > DenseThreshold {
		return int64(cells*bytesPerValue) + headerBytes
	}
	nnz := cells * sparsity
	alpha := nnz * (bytesPerValue + bytesPerColIdx)
	beta := float64(rows)*bytesPerRowPtr + headerBytes
	return int64(alpha + beta)
}

// DenseRow returns the i-th row as a dense slice (a copy for CSR, a view
// into the backing array for dense matrices — callers must not mutate it).
func (m *Matrix) DenseRow(i int) []float64 {
	if m.format == Dense {
		return m.data[i*m.cols : (i+1)*m.cols]
	}
	row := make([]float64, m.cols)
	for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
		row[m.colIdx[p]] = m.vals[p]
	}
	return row
}

// RowNNZ returns the number of stored nonzeros in row i.
func (m *Matrix) RowNNZ(i int) int {
	if m.format == CSR {
		return m.rowPtr[i+1] - m.rowPtr[i]
	}
	n := 0
	for j := 0; j < m.cols; j++ {
		if m.data[i*m.cols+j] != 0 {
			n++
		}
	}
	return n
}

// ColNNZCounts returns a vector of per-column nonzero counts (used by the
// MNC sparsity estimator).
func (m *Matrix) ColNNZCounts() []int {
	counts := make([]int, m.cols)
	if m.format == CSR {
		for _, j := range m.colIdx {
			counts[j]++
		}
		return counts
	}
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			if m.data[base+j] != 0 {
				counts[j]++
			}
		}
	}
	return counts
}

// RowNNZCounts returns a vector of per-row nonzero counts.
func (m *Matrix) RowNNZCounts() []int {
	counts := make([]int, m.rows)
	if m.format == CSR {
		for i := 0; i < m.rows; i++ {
			counts[i] = m.rowPtr[i+1] - m.rowPtr[i]
		}
		return counts
	}
	for i := 0; i < m.rows; i++ {
		counts[i] = m.RowNNZ(i)
	}
	return counts
}

// ForEachNonzero calls fn for every structurally nonzero element in row
// order. For dense matrices, zero values are skipped.
func (m *Matrix) ForEachNonzero(fn func(i, j int, v float64)) {
	if m.format == CSR {
		for i := 0; i < m.rows; i++ {
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				fn(i, m.colIdx[p], m.vals[p])
			}
		}
		return
	}
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			if v := m.data[base+j]; v != 0 {
				fn(i, j, v)
			}
		}
	}
}
