package matrix

import (
	"fmt"
	"math"
)

// This file implements the element-wise, scalar and reduction operators the
// DML runtime needs besides multiplication.

// Transpose returns mᵀ in the same format as m.
func (m *Matrix) Transpose() *Matrix {
	if m.format == Dense {
		t := NewDense(m.cols, m.rows)
		for i := 0; i < m.rows; i++ {
			base := i * m.cols
			for j := 0; j < m.cols; j++ {
				t.data[j*m.rows+i] = m.data[base+j]
			}
		}
		return t
	}
	// CSR transpose via column counting (classic two-pass).
	nnz := len(m.vals)
	rowPtr := make([]int, m.cols+1)
	for _, j := range m.colIdx {
		rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, nnz)
	vals := make([]float64, nnz)
	next := append([]int(nil), rowPtr[:m.cols]...)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := m.colIdx[p]
			q := next[j]
			next[j]++
			colIdx[q] = i
			vals[q] = m.vals[p]
		}
	}
	return NewCSR(m.cols, m.rows, rowPtr, colIdx, vals)
}

func (m *Matrix) checkSameShape(other *Matrix, op string) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, other.rows, other.cols))
	}
}

func zipDense(a, b *Matrix, f func(x, y float64) float64) *Matrix {
	ad, bd := a.ToDense(), b.ToDense()
	out := NewDense(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = f(ad.data[i], bd.data[i])
	}
	return out
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.checkSameShape(other, "Add")
	if m.format == CSR && other.format == CSR {
		return addCSR(m, other, 1).Compact()
	}
	return zipDense(m, other, func(x, y float64) float64 { return x + y }).Compact()
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.checkSameShape(other, "Sub")
	if m.format == CSR && other.format == CSR {
		return addCSR(m, other, -1).Compact()
	}
	return zipDense(m, other, func(x, y float64) float64 { return x - y }).Compact()
}

// addCSR merges two CSR matrices row-wise computing a + sign*b.
func addCSR(a, b *Matrix, sign float64) *Matrix {
	rowPtr := make([]int, a.rows+1)
	colIdx := make([]int, 0, len(a.vals)+len(b.vals))
	vals := make([]float64, 0, len(a.vals)+len(b.vals))
	for i := 0; i < a.rows; i++ {
		pa, pb := a.rowPtr[i], b.rowPtr[i]
		ea, eb := a.rowPtr[i+1], b.rowPtr[i+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.colIdx[pa] < b.colIdx[pb]):
				colIdx = append(colIdx, a.colIdx[pa])
				vals = append(vals, a.vals[pa])
				pa++
			case pa >= ea || b.colIdx[pb] < a.colIdx[pa]:
				colIdx = append(colIdx, b.colIdx[pb])
				vals = append(vals, sign*b.vals[pb])
				pb++
			default:
				v := a.vals[pa] + sign*b.vals[pb]
				if v != 0 {
					colIdx = append(colIdx, a.colIdx[pa])
					vals = append(vals, v)
				}
				pa++
				pb++
			}
		}
		rowPtr[i+1] = len(vals)
	}
	return NewCSR(a.rows, a.cols, rowPtr, colIdx, vals)
}

// ElemMul returns the Hadamard product m ⊙ other.
func (m *Matrix) ElemMul(other *Matrix) *Matrix {
	m.checkSameShape(other, "ElemMul")
	if m.format == CSR {
		// Walk the sparser operand's structure.
		rowPtr := make([]int, m.rows+1)
		colIdx := make([]int, 0, len(m.vals))
		vals := make([]float64, 0, len(m.vals))
		for i := 0; i < m.rows; i++ {
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				j := m.colIdx[p]
				v := m.vals[p] * other.At(i, j)
				if v != 0 {
					colIdx = append(colIdx, j)
					vals = append(vals, v)
				}
			}
			rowPtr[i+1] = len(vals)
		}
		return NewCSR(m.rows, m.cols, rowPtr, colIdx, vals).Compact()
	}
	if other.format == CSR {
		return other.ElemMul(m)
	}
	return zipDense(m, other, func(x, y float64) float64 { return x * y }).Compact()
}

// ElemDiv returns element-wise m / other (IEEE semantics for zero divisors).
func (m *Matrix) ElemDiv(other *Matrix) *Matrix {
	m.checkSameShape(other, "ElemDiv")
	return zipDense(m, other, func(x, y float64) float64 { return x / y }).Compact()
}

// Scale returns s · m.
func (m *Matrix) Scale(s float64) *Matrix {
	if s == 0 {
		return NewDense(m.rows, m.cols).Compact()
	}
	out := m.Clone()
	if out.format == Dense {
		for i := range out.data {
			out.data[i] *= s
		}
		return out
	}
	for i := range out.vals {
		out.vals[i] *= s
	}
	return out
}

// AddScalar returns m + s on every element (densifying).
func (m *Matrix) AddScalar(s float64) *Matrix {
	d := m.ToDense().Clone()
	for i := range d.data {
		d.data[i] += s
	}
	return d.Compact()
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	total := 0.0
	if m.format == Dense {
		for _, v := range m.data {
			total += v
		}
		return total
	}
	for _, v := range m.vals {
		total += v
	}
	return total
}

// FrobeniusNorm returns sqrt(Σ x²).
func (m *Matrix) FrobeniusNorm() float64 {
	total := 0.0
	if m.format == Dense {
		for _, v := range m.data {
			total += v * v
		}
	} else {
		for _, v := range m.vals {
			total += v * v
		}
	}
	return math.Sqrt(total)
}

// Neg returns -m.
func (m *Matrix) Neg() *Matrix { return m.Scale(-1) }

// IsSymmetric reports whether m equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	return m.ApproxEqual(m.Transpose(), tol)
}
