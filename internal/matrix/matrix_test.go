package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if m.Format() != Dense {
		t.Fatalf("format = %v, want Dense", m.Format())
	}
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestNewDenseDataLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "NewDenseData")
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestNewCSRValidation(t *testing.T) {
	defer expectPanic(t, "NewCSR bad rowPtr")
	NewCSR(2, 2, []int{0, 1}, []int{0}, []float64{1})
}

func TestNonPositiveDimsPanics(t *testing.T) {
	defer expectPanic(t, "zero dims")
	NewDense(0, 3)
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if r := recover(); r == nil {
		t.Fatalf("%s: expected panic", what)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d,%d] = %g, want %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestScalarValue(t *testing.T) {
	s := Scalar(2.5)
	if !s.IsScalar() || s.ScalarValue() != 2.5 {
		t.Fatalf("Scalar(2.5) broken: %v", s)
	}
	defer expectPanic(t, "ScalarValue on non-scalar")
	NewDense(2, 2).ScalarValue()
}

func TestAtCSRBinarySearch(t *testing.T) {
	// 2x4 with nonzeros at (0,1)=5, (0,3)=7, (1,0)=2
	m := NewCSR(2, 4, []int{0, 2, 3}, []int{1, 3, 0}, []float64{5, 7, 2})
	cases := []struct {
		i, j int
		want float64
	}{{0, 0, 0}, {0, 1, 5}, {0, 2, 0}, {0, 3, 7}, {1, 0, 2}, {1, 3, 0}}
	for _, c := range cases {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
	}
}

func TestSetOnSparsePanics(t *testing.T) {
	m := NewCSR(1, 1, []int{0, 0}, nil, nil)
	defer expectPanic(t, "Set on CSR")
	m.Set(0, 0, 1)
}

func TestDenseCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := RandSparse(rng, 17, 23, 0.2).ToDense()
	back := d.ToCSR().ToDense()
	if !d.Equal(back) {
		t.Fatal("dense -> CSR -> dense round trip changed values")
	}
}

func TestCompactChoosesFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sparse := RandSparse(rng, 50, 50, 0.05).Compact()
	if sparse.Format() != CSR {
		t.Errorf("5%% sparsity should stay CSR, got %v", sparse.Format())
	}
	dense := RandDense(rng, 20, 20).Compact()
	if dense.Format() != Dense {
		t.Errorf("dense random should stay dense, got %v", dense.Format())
	}
}

func TestSizeBytesMonotonicInSparsity(t *testing.T) {
	prev := int64(0)
	for _, s := range []float64{0.001, 0.01, 0.1, 0.3} {
		size := SizeBytesFor(1000, 1000, s)
		if size <= prev {
			t.Fatalf("SizeBytesFor not increasing at sparsity %g: %d <= %d", s, size, prev)
		}
		prev = size
	}
	// Dense threshold: above 0.4 the size is the dense size regardless.
	if SizeBytesFor(100, 100, 0.5) != SizeBytesFor(100, 100, 0.9) {
		t.Fatal("dense sizes should not depend on sparsity")
	}
}

func TestMulSmallKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.Mul(b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Mul mismatch")
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestMulAllFormatPairsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandSparse(rng, 13, 9, 0.3)
	b := RandSparse(rng, 9, 11, 0.3)
	ref := mulDenseDense(a.ToDense(), b.ToDense())
	for _, pair := range []struct {
		name string
		got  *Matrix
	}{
		{"csr-dense", mulCSRDense(a.ToCSR(), b.ToDense())},
		{"dense-csr", mulDenseCSR(a.ToDense(), b.ToCSR())},
		{"csr-csr", mulCSRCSR(a.ToCSR(), b.ToCSR())},
	} {
		if !pair.got.ApproxEqual(ref, 1e-12) {
			t.Errorf("%s disagrees with dense reference", pair.name)
		}
	}
}

func TestMulLargeParallelStripes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandDense(rng, 200, 40)
	b := RandDense(rng, 40, 30)
	got := a.Mul(b)
	// Spot check a few entries against a scalar loop.
	for _, idx := range [][2]int{{0, 0}, {199, 29}, {100, 15}} {
		want := 0.0
		for k := 0; k < 40; k++ {
			want += a.At(idx[0], k) * b.At(k, idx[1])
		}
		if math.Abs(got.At(idx[0], idx[1])-want) > 1e-9 {
			t.Fatalf("entry (%d,%d) = %g, want %g", idx[0], idx[1], got.At(idx[0], idx[1]), want)
		}
	}
}

func TestTransposeKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose dims = %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at)
	}
}

func TestTransposeCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandSparse(rng, 15, 7, 0.25)
	if !a.Transpose().ToDense().Equal(a.ToDense().Transpose()) {
		t.Fatal("CSR transpose disagrees with dense transpose")
	}
}

func TestAddSubElemOps(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	if !a.Add(b).Equal(NewDenseData(2, 2, []float64{6, 8, 10, 12})) {
		t.Error("Add wrong")
	}
	if !b.Sub(a).Equal(NewDenseData(2, 2, []float64{4, 4, 4, 4})) {
		t.Error("Sub wrong")
	}
	if !a.ElemMul(b).Equal(NewDenseData(2, 2, []float64{5, 12, 21, 32})) {
		t.Error("ElemMul wrong")
	}
	if !b.ElemDiv(a).ApproxEqual(NewDenseData(2, 2, []float64{5, 3, 7.0 / 3, 2}), 1e-12) {
		t.Error("ElemDiv wrong")
	}
}

func TestAddCSRPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandSparse(rng, 20, 20, 0.1)
	b := RandSparse(rng, 20, 20, 0.1)
	if !a.Add(b).ToDense().ApproxEqual(a.ToDense().Add(b.ToDense()).ToDense(), 1e-12) {
		t.Error("CSR Add disagrees with dense Add")
	}
	if !a.Sub(b).ToDense().ApproxEqual(a.ToDense().Sub(b.ToDense()).ToDense(), 1e-12) {
		t.Error("CSR Sub disagrees with dense Sub")
	}
	// a - a must be empty.
	if nnz := a.Sub(a).NNZ(); nnz != 0 {
		t.Errorf("a-a has %d nonzeros", nnz)
	}
}

func TestElemMulSparseStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandSparse(rng, 30, 30, 0.05)
	b := RandDense(rng, 30, 30)
	got := a.ElemMul(b)
	want := a.ToDense().ElemMul(b)
	if !got.ToDense().ApproxEqual(want.ToDense(), 1e-12) {
		t.Fatal("sparse ElemMul disagrees with dense")
	}
}

func TestScaleAndNeg(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, -2, 3})
	if !a.Scale(2).Equal(NewDenseData(1, 3, []float64{2, -4, 6})) {
		t.Error("Scale wrong")
	}
	if !a.Neg().Equal(NewDenseData(1, 3, []float64{-1, 2, -3})) {
		t.Error("Neg wrong")
	}
	if a.Scale(0).NNZ() != 0 {
		t.Error("Scale(0) should be empty")
	}
	rng := rand.New(rand.NewSource(8))
	s := RandSparse(rng, 10, 10, 0.2)
	if !s.Scale(3).ToDense().ApproxEqual(s.ToDense().Scale(3), 1e-12) {
		t.Error("CSR Scale disagrees")
	}
}

func TestSumAndNorm(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 4, 0, 0})
	if a.Sum() != 7 {
		t.Errorf("Sum = %g, want 7", a.Sum())
	}
	if math.Abs(a.FrobeniusNorm()-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %g, want 5", a.FrobeniusNorm())
	}
	s := a.ToCSR()
	if s.Sum() != 7 || math.Abs(s.FrobeniusNorm()-5) > 1e-12 {
		t.Error("CSR Sum/Norm disagree")
	}
}

func TestAddScalar(t *testing.T) {
	a := NewCSR(2, 2, []int{0, 1, 1}, []int{0}, []float64{1})
	got := a.AddScalar(1)
	want := NewDenseData(2, 2, []float64{2, 1, 1, 1})
	if !got.ToDense().Equal(want) {
		t.Fatalf("AddScalar: got %v", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if !RandSymmetric(rng, 8).IsSymmetric(1e-12) {
		t.Error("RandSymmetric not symmetric")
	}
	if RandDense(rng, 8, 8).IsSymmetric(1e-12) {
		t.Error("random dense reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Error("non-square reported symmetric")
	}
}

func TestRowColNNZCounts(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 0, 2, 0, 0, 3})
	rows := m.RowNNZCounts()
	cols := m.ColNNZCounts()
	if rows[0] != 2 || rows[1] != 1 {
		t.Errorf("RowNNZCounts = %v", rows)
	}
	if cols[0] != 1 || cols[1] != 0 || cols[2] != 2 {
		t.Errorf("ColNNZCounts = %v", cols)
	}
	s := m.ToCSR()
	rows2, cols2 := s.RowNNZCounts(), s.ColNNZCounts()
	for i := range rows {
		if rows[i] != rows2[i] {
			t.Error("CSR RowNNZCounts disagree")
		}
	}
	for j := range cols {
		if cols[j] != cols2[j] {
			t.Error("CSR ColNNZCounts disagree")
		}
	}
}

func TestDenseRow(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.DenseRow(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("DenseRow = %v", row)
	}
	s := m.ToCSR()
	srow := s.DenseRow(1)
	for j := range row {
		if row[j] != srow[j] {
			t.Error("CSR DenseRow disagrees")
		}
	}
}

func TestRandSparseSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := RandSparse(rng, 500, 500, 0.05)
	s := m.Sparsity()
	if s < 0.04 || s > 0.06 {
		t.Fatalf("sparsity = %g, want ~0.05", s)
	}
}

func TestZipfSparseSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, cols := 2000, 500
	m := ZipfSparse(rng, rows, cols, 0.005, 2.8)
	// Check overall nnz is near target.
	target := int(float64(rows*cols) * 0.005)
	if m.NNZ() != target {
		t.Fatalf("nnz = %d, want %d", m.NNZ(), target)
	}
	// With exponent 2.8 the top 5% of rows should hold > 80% of nonzeros
	// (paper says >95% for rows AND columns jointly at 2.8; per-axis we
	// assert a looser bound, and per-row quotas are capped at cols/10 so
	// heavy rows stay dense-but-not-full).
	counts := m.RowNNZCounts()
	sortDescInts(counts)
	top := 0
	for i := 0; i < rows/20; i++ {
		top += counts[i]
	}
	if frac := float64(top) / float64(m.NNZ()); frac < 0.8 {
		t.Fatalf("top 5%% rows hold %.2f of nnz, want > 0.8", frac)
	}
	// No row exceeds the cap.
	if counts[0] > cols/10 {
		t.Fatalf("heaviest row holds %d nnz, cap is %d", counts[0], cols/10)
	}
	// Exponent 0 must be uniform-ish: top 5% of rows near 5% of nnz.
	u := ZipfSparse(rng, rows, cols, 0.005, 0)
	ucounts := u.RowNNZCounts()
	sortDescInts(ucounts)
	utop := 0
	for i := 0; i < rows/20; i++ {
		utop += ucounts[i]
	}
	if frac := float64(utop) / float64(u.NNZ()); frac > 0.15 {
		t.Fatalf("uniform top-5%% rows hold %.2f of nnz, want < 0.15", frac)
	}
}

func sortDescInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] < v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func TestApproxEqualShapes(t *testing.T) {
	if NewDense(2, 2).ApproxEqual(NewDense(2, 3), 1) {
		t.Error("different shapes reported equal")
	}
}

func TestStringForms(t *testing.T) {
	small := NewDenseData(1, 2, []float64{1, 2})
	if got := small.String(); got == "" {
		t.Error("empty String for small matrix")
	}
	big := NewDense(100, 100)
	if got := big.String(); got == "" {
		t.Error("empty String for big matrix")
	}
	if Dense.String() != "dense" || CSR.String() != "sparse" {
		t.Error("Format.String wrong")
	}
}

func TestMulFLOPModel(t *testing.T) {
	// 3*R*C*C'*S_U*S_V per §4.2.
	got := MulFLOP(10, 20, 30, 0.5, 0.1)
	want := 3.0 * 10 * 20 * 30 * 0.5 * 0.1
	if got != want {
		t.Fatalf("MulFLOP = %g, want %g", got, want)
	}
}
