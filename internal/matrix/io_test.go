package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandDense(rng, 7, 5)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToDense().ApproxEqual(m, 1e-15) {
		t.Fatal("CSV round trip changed values")
	}
}

func TestCSVRoundTripSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandSparse(rng, 20, 30, 0.1)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Format() != CSR {
		t.Error("sparse data should compact to CSR on read")
	}
	if !back.ToDense().ApproxEqual(m.ToDense(), 1e-15) {
		t.Fatal("CSV round trip changed values")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",       // empty
		"1,2\n3", // ragged
		"1,x",    // non-numeric
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", src)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.At(1, 1) != 4 {
		t.Fatalf("got %v", m)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []*Matrix{
		RandDense(rng, 9, 4),
		RandSparse(rng, 15, 25, 0.15),
		NewCSR(2, 2, []int{0, 0, 0}, nil, nil), // empty sparse
	} {
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Format() != m.Format() {
			t.Errorf("format changed: %v -> %v", m.Format(), back.Format())
		}
		if !back.ToDense().Equal(m.ToDense()) {
			t.Error("binary round trip changed values")
		}
	}
}

func TestReadBinaryRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := RandSparse(rng, 8, 8, 0.3)
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)/2],
		"bad format": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 9
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPropBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, r, c uint8, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := int(r%20)+1, int(c%20)+1
		var m *Matrix
		if sparse {
			m = RandSparse(rng, rows, cols, 0.3)
		} else {
			m = RandDense(rng, rows, cols)
		}
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return back.ToDense().Equal(m.ToDense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
