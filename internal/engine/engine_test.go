package engine

import (
	"math"
	"math/rand"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/distmat"
	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/opt"
	"remac/internal/sparsity"
)

// compileAndRun compiles a workload for one dataset and strategy and runs
// it end to end.
func compileAndRun(t *testing.T, alg algorithms.Name, dsName string, strategy opt.Strategy) *Result {
	t.Helper()
	c := compileFor(t, alg, dsName, strategy)
	res, err := Run(c, inputsFor(t, alg, dsName))
	if err != nil {
		t.Fatalf("%v/%s/%v: run: %v", alg, dsName, strategy, err)
	}
	return res
}

func compileFor(t *testing.T, alg algorithms.Name, dsName string, strategy opt.Strategy) *opt.Compiled {
	t.Helper()
	iters := 5
	prog := algorithms.MustProgram(alg, iters)
	ds := data.MustLoad(dsName)
	// ReMac's reported configuration uses the MNC estimator (§6.3.2); it
	// also matches the runtime's own cost propagation.
	c, err := opt.Compile(prog, inputMetas(alg, ds), opt.Config{
		Strategy:   strategy,
		Estimator:  sparsity.MNC{},
		Cluster:    cluster.DefaultConfig(),
		Iterations: iters,
	})
	if err != nil {
		t.Fatalf("%v/%s/%v: compile: %v", alg, dsName, strategy, err)
	}
	return c
}

func inputMetas(alg algorithms.Name, ds *data.Dataset) map[string]sparsity.Meta {
	aMeta := sparsity.Virtualize(sparsity.MetaOf(ds.A), ds.VRows, ds.VCols)
	if alg == algorithms.GNMF {
		w, h := ds.GNMFFactors(10)
		return map[string]sparsity.Meta{
			"V":  aMeta,
			"W0": sparsity.Virtualize(sparsity.MetaOf(w), ds.VRows, 10),
			"H0": sparsity.Virtualize(sparsity.MetaOf(h), 10, ds.VCols),
		}
	}
	return map[string]sparsity.Meta{
		"A":  aMeta,
		"b":  sparsity.Virtualize(sparsity.MetaOf(ds.Label()), ds.VRows, 1),
		"H0": sparsity.Virtualize(sparsity.MetaOf(ds.InitialH()), ds.VCols, ds.VCols),
		"x0": sparsity.Virtualize(sparsity.MetaOf(ds.InitialX()), ds.VCols, 1),
	}
}

func inputsFor(t *testing.T, alg algorithms.Name, dsName string) map[string]Input {
	t.Helper()
	ds := data.MustLoad(dsName)
	if alg == algorithms.GNMF {
		w, h := ds.GNMFFactors(10)
		return map[string]Input{
			"V":  {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols},
			"W0": {Data: w, VRows: ds.VRows, VCols: 10},
			"H0": {Data: h, VRows: 10, VCols: ds.VCols},
		}
	}
	return map[string]Input{
		"A":  {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols},
		"b":  {Data: ds.Label(), VRows: ds.VRows, VCols: 1},
		"H0": {Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols},
		"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1},
	}
}

// TestAllStrategiesAgreeNumerically is the central soundness test: every
// strategy must produce the same final values (redundancy elimination is a
// pure performance transform; §3.3: "the found options would not affect the
// expression results").
func TestAllStrategiesAgreeNumerically(t *testing.T) {
	for _, alg := range []algorithms.Name{algorithms.GD, algorithms.DFP, algorithms.BFGS, algorithms.GNMF} {
		target := "x"
		if alg == algorithms.GNMF {
			target = "W"
		}
		ref := compileAndRun(t, alg, "cri2", opt.NoElimination)
		want := ref.Env[target]
		if want == nil {
			t.Fatalf("%v: target %q not computed", alg, target)
		}
		for _, s := range []opt.Strategy{opt.Explicit, opt.Conservative, opt.Aggressive, opt.Automatic, opt.Adaptive} {
			got := compileAndRun(t, alg, "cri2", s)
			if got.Env[target] == nil {
				t.Fatalf("%v/%v: target missing", alg, s)
			}
			if !got.Env[target].Data().ApproxEqual(want.Data(), 1e-6) {
				t.Errorf("%v: strategy %v changed the result", alg, s)
			}
		}
	}
}

func TestIterationCountHonored(t *testing.T) {
	res := compileAndRun(t, algorithms.GD, "cri1", opt.NoElimination)
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d, want 5", res.Iterations)
	}
}

func TestInputPartitionCharged(t *testing.T) {
	res := compileAndRun(t, algorithms.GD, "cri2", opt.NoElimination)
	if res.InputPartitionSec <= 0 {
		t.Fatal("input partition phase not charged")
	}
	if res.Stats.BytesFor(cluster.DFS) <= 0 {
		t.Fatal("no dfs bytes for the dataset read")
	}
}

func TestAdaptiveNotSlowerThanBaselines(t *testing.T) {
	// Fig 9's qualitative claim: adaptive ≤ min(conservative, aggressive)
	// in simulated time (up to model noise).
	exec := func(s opt.Strategy, dsName string) float64 {
		r := compileAndRun(t, algorithms.DFP, dsName, s)
		return r.Stats.TotalTime() - r.InputPartitionSec
	}
	for _, dsName := range []string{"cri1", "cri3"} {
		adaptive := exec(opt.Adaptive, dsName)
		conservative := exec(opt.Conservative, dsName)
		aggressive := exec(opt.Aggressive, dsName)
		limit := math.Min(conservative, aggressive) * 1.15
		if adaptive > limit {
			t.Errorf("%s: adaptive %.1fs > min(conservative %.1fs, aggressive %.1fs)",
				dsName, adaptive, conservative, aggressive)
		}
	}
}

func TestEliminationReducesTimeOnTallData(t *testing.T) {
	// cri1 (47 columns): the AᵀA LSE is nearly free via TSMM, so adaptive
	// must beat the no-elimination baseline substantially. Input partition
	// is excluded, matching the paper's pre-partitioned measurements.
	b := compileAndRun(t, algorithms.DFP, "cri1", opt.NoElimination)
	a := compileAndRun(t, algorithms.DFP, "cri1", opt.Adaptive)
	base := b.Stats.TotalTime() - b.InputPartitionSec
	adaptive := a.Stats.TotalTime() - a.InputPartitionSec
	if adaptive >= base {
		t.Fatalf("adaptive (%.1fs) not faster than SystemDS* (%.1fs) on cri1", adaptive, base)
	}
	if base/adaptive < 1.5 {
		t.Errorf("speedup only %.2fx on cri1; expected a clear win", base/adaptive)
	}
}

func TestLSEHoistedOnceAcrossIterations(t *testing.T) {
	// With the AᵀA LSE applied, the expensive product must be charged once,
	// not per iteration: doubling iterations must not double total time by
	// the producer's share.
	run := func(iters int) float64 {
		prog := algorithms.MustProgram(algorithms.GD, iters)
		ds := data.MustLoad("cri1")
		c, err := opt.Compile(prog, inputMetas(algorithms.GD, ds), opt.Config{
			Strategy: opt.Adaptive, Estimator: sparsity.MNC{}, Cluster: cluster.DefaultConfig(), Iterations: iters,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, inputsFor(t, algorithms.GD, "cri1"))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TotalTime()
	}
	t5, t10 := run(5), run(10)
	perIter5, perIter10 := t5/5, t10/10
	if perIter10 > perIter5 {
		t.Errorf("per-iteration time grew with more iterations (%.2f vs %.2f): LSE not amortizing", perIter10, perIter5)
	}
}

func TestRunErrorsOnMissingInput(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri2", opt.NoElimination)
	_, err := Run(c, map[string]Input{})
	if err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestLoopGuard(t *testing.T) {
	prog := lang.MustParse(`
i = 0
while (i < 1) {
    j = 1
}
`)
	c, err := opt.Compile(prog, nil, opt.Config{Strategy: opt.NoElimination, Cluster: cluster.DefaultConfig(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, nil); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestScalarConditionForms(t *testing.T) {
	prog := lang.MustParse(`
i = 0
n = 3
while (i + 1 <= n) {
    i = i + 1
}
`)
	c, err := opt.Compile(prog, nil, opt.Config{Strategy: opt.NoElimination, Cluster: cluster.DefaultConfig(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Iterations)
	}
}

func TestExplicitStrategyReusesSubtrees(t *testing.T) {
	// Explicit CSE must reduce simulated time versus SystemDS* whenever
	// identical subtrees repeat (DFP's H·g etc.).
	base := compileAndRun(t, algorithms.DFP, "cri2", opt.NoElimination).Stats
	explicit := compileAndRun(t, algorithms.DFP, "cri2", opt.Explicit).Stats
	if explicit.TotalTime() > base.TotalTime() {
		t.Fatalf("explicit CSE (%.1fs) slower than no elimination (%.1fs)", explicit.TotalTime(), base.TotalTime())
	}
	if explicit.Ops >= base.Ops {
		t.Errorf("explicit CSE should execute fewer operators (%d vs %d)", explicit.Ops, base.Ops)
	}
}

func TestGDNumericallyConverges(t *testing.T) {
	// Sanity: the optimized run actually reduces the residual ‖Ax−b‖.
	res := compileAndRun(t, algorithms.GD, "cri1", opt.Adaptive)
	ds := data.MustLoad("cri1")
	x := res.Env["x"].Data()
	b := ds.Label()
	res0 := ds.A.Mul(ds.InitialX()).Sub(b).FrobeniusNorm()
	resN := ds.A.Mul(x).Sub(b).FrobeniusNorm()
	if resN >= res0 {
		t.Fatalf("GD did not reduce the residual: %.4f -> %.4f", res0, resN)
	}
}

func TestResultTotalSec(t *testing.T) {
	res := compileAndRun(t, algorithms.GD, "cri2", opt.Adaptive)
	if res.TotalSec() < res.Stats.TotalTime() {
		t.Fatal("TotalSec must include compilation")
	}
}

func TestPartialDFPRuns(t *testing.T) {
	ds := data.MustLoad("cri2")
	prog := algorithms.MustProgram(algorithms.PartialDFP, 1)
	metas := map[string]sparsity.Meta{
		"A":  sparsity.MetaOf(ds.A).WithVirtualDims(ds.VRows, ds.VCols),
		"H0": sparsity.MetaOf(ds.InitialH()).WithVirtualDims(ds.VCols, ds.VCols),
		"x0": sparsity.MetaOf(ds.InitialX()).WithVirtualDims(ds.VCols, 1),
	}
	c, err := opt.Compile(prog, metas, opt.Config{Strategy: opt.Adaptive, Cluster: cluster.DefaultConfig(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, map[string]Input{
		"A":  {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols},
		"H0": {Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols},
		"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Env["r"] == nil || !res.Env["r"].Data().IsScalar() {
		t.Fatal("partial DFP result missing or non-scalar")
	}
}

func TestDistmatValuesMatchPlainEval(t *testing.T) {
	// The distmat execution path must agree with the plain matrix kernels.
	ds := data.MustLoad("cri2")
	ctx := distmat.NewContext(cluster.New(cluster.DefaultConfig()))
	a := distmat.New(ctx, ds.A, 0, 0)
	x := distmat.New(ctx, ds.InitialX(), 0, 0)
	got := a.Mul(x).Data()
	want := ds.A.Mul(ds.InitialX())
	if !got.ApproxEqual(want, 1e-10) {
		t.Fatal("distmat value drift")
	}
	_ = matrix.Scalar(0) // keep matrix import for Input construction below
}

func TestNRowNColInScripts(t *testing.T) {
	prog := lang.MustParse(`
A = read("A")
n = nrow(A)
m = ncol(A)
r = n / m
`)
	ds := data.MustLoad("cri2")
	c, err := opt.Compile(prog, map[string]sparsity.Meta{
		"A": sparsity.Virtualize(sparsity.MetaOf(ds.A), ds.VRows, ds.VCols),
	}, opt.Config{Strategy: opt.NoElimination, Cluster: cluster.DefaultConfig(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, map[string]Input{"A": {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}})
	if err != nil {
		t.Fatal(err)
	}
	// Dimension queries see the materialized data.
	if got := res.Env["n"].Data().ScalarValue(); got != float64(ds.A.Rows()) {
		t.Fatalf("nrow = %g, want %d", got, ds.A.Rows())
	}
	if got := res.Env["m"].Data().ScalarValue(); got != float64(ds.A.Cols()) {
		t.Fatalf("ncol = %g, want %d", got, ds.A.Cols())
	}
}

func TestGNMFObjectiveDecreases(t *testing.T) {
	// The multiplicative updates must reduce the reconstruction error —
	// end-to-end numerical sanity for the GNMF pipeline.
	res := compileAndRun(t, algorithms.GNMF, "red2", opt.Adaptive)
	ds := data.MustLoad("red2")
	w, h := res.Env["W"].Data(), res.Env["H"].Data()
	final := ds.A.Sub(w.Mul(h)).FrobeniusNorm()
	w0, h0 := ds.GNMFFactors(10)
	initial := ds.A.Sub(w0.Mul(h0)).FrobeniusNorm()
	if final >= initial {
		t.Fatalf("GNMF objective did not decrease: %.4f -> %.4f", initial, final)
	}
}

func TestManualStrategyAppliesNamedOptions(t *testing.T) {
	// The Fig 3 bars select specific combinations by key. Iteration count
	// matches compileFor's so results are comparable.
	prog := algorithms.MustProgram(algorithms.DFP, 5)
	ds := data.MustLoad("cri2")
	c, err := opt.Compile(prog, inputMetas(algorithms.DFP, ds), opt.Config{
		Strategy:   opt.Manual,
		ManualKeys: []string{"A'·A", "H·g·g'·H"},
		Cluster:    cluster.DefaultConfig(),
		Iterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := c.Decision.Keys()
	if len(keys) != 2 || keys[0] != "A'·A" || keys[1] != "H·g·g'·H" {
		t.Fatalf("manual selection = %v", keys)
	}
	// And the run still produces correct values.
	res, err := Run(c, inputsFor(t, algorithms.DFP, "cri2"))
	if err != nil {
		t.Fatal(err)
	}
	ref := compileAndRun(t, algorithms.DFP, "cri2", opt.NoElimination)
	if !res.Env["x"].Data().ApproxEqual(ref.Env["x"].Data(), 1e-6) {
		t.Fatal("manual combination changed the result")
	}
}

func TestSPORESStrategyRuns(t *testing.T) {
	res := compileAndRun(t, algorithms.DFP, "cri2", opt.SPORESLike)
	ref := compileAndRun(t, algorithms.DFP, "cri2", opt.NoElimination)
	if !res.Env["x"].Data().ApproxEqual(ref.Env["x"].Data(), 1e-6) {
		t.Fatal("SPORES strategy changed the result")
	}
	// Cost-based selection must not be catastrophically worse than the
	// baseline (the paper finds SPORES comparable to SystemDS).
	if res.Stats.TotalTime() > ref.Stats.TotalTime()*1.5 {
		t.Fatalf("SPORES %.1fs vs baseline %.1fs", res.Stats.TotalTime(), ref.Stats.TotalTime())
	}
}

func TestRuntimeDimensionMismatch(t *testing.T) {
	// Inputs whose materialized shapes disagree must fail at run time with
	// an error, not a panic escaping Run.
	prog := lang.MustParse(`
A = read("A")
x = read("x")
y = A %*% x
`)
	c, err := opt.Compile(prog, map[string]sparsity.Meta{
		"A": sparsity.MetaDims(10, 5, 1),
		"x": sparsity.MetaDims(5, 1, 1),
	}, opt.Config{Strategy: opt.NoElimination, Cluster: cluster.DefaultConfig(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// A kernel panic is acceptable only if it carries shape info; the
		// engine is allowed to surface it as a panic for programmer error.
		recover()
	}()
	_, err = Run(c, map[string]Input{
		"A": {Data: matrix.RandDense(rand10(), 10, 5)},
		"x": {Data: matrix.RandDense(rand10(), 7, 1)}, // wrong rows
	})
	if err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

func rand10() *rand.Rand { return rand.New(rand.NewSource(10)) }
