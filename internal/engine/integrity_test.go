package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/lang"
	"remac/internal/opt"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// corruptionPlan returns a fresh corruption-only plan hot enough to land
// multiple events in a 10²–10³ simulated-second run.
func corruptionPlan(seed int64) *fault.Plan {
	return fault.NewPlan(fault.Config{
		Seed:               seed,
		CorruptionsPerHour: 720,
		Workers:            cluster.DefaultConfig().Workers(),
	})
}

// TestCorruptionRepairedBitwise is the tentpole contract: under full ABFT
// verification every injected corruption is detected and repaired, and the
// repaired results are bitwise identical to the fault-free run.
func TestCorruptionRepairedBitwise(t *testing.T) {
	ref := compileAndRun(t, algorithms.DFP, "cri2", opt.Conservative)
	got := runFaulted(t, algorithms.DFP, "cri2", opt.Conservative, RunOptions{
		Faults: corruptionPlan(5),
		Verify: integrity.VerifyABFT,
	})
	st := got.Stats
	if st.CorruptionsInjected == 0 {
		t.Fatal("no corruption landed; test is vacuous")
	}
	if detected := st.CorruptionsDigest + st.CorruptionsABFT; detected != st.CorruptionsInjected {
		t.Fatalf("detected %d of %d corruptions under ABFT", detected, st.CorruptionsInjected)
	}
	if st.IntegrityRepairs == 0 || st.RepairSec <= 0 {
		t.Fatalf("detection without repair accounting: %+v", st)
	}
	if st.VerifySec <= 0 {
		t.Fatal("verification charged no simulated time")
	}
	for name, v := range ref.Env {
		if !got.Env[name].Data().Equal(v.Data()) {
			t.Errorf("repaired %s differs bitwise from the fault-free run", name)
		}
	}
}

// TestCorruptionUndetectedPropagates pins the negative space: with
// verification off the same schedule lands, nothing is detected, and the
// result really is silently wrong — which is what makes the layer worth its
// overhead.
func TestCorruptionUndetectedPropagates(t *testing.T) {
	ref := compileAndRun(t, algorithms.DFP, "cri2", opt.Conservative)
	got := runFaulted(t, algorithms.DFP, "cri2", opt.Conservative, RunOptions{
		Faults: corruptionPlan(5),
	})
	st := got.Stats
	if st.CorruptionsInjected == 0 {
		t.Fatal("no corruption landed; test is vacuous")
	}
	if st.CorruptionsDigest+st.CorruptionsABFT != 0 || st.IntegrityRepairs != 0 {
		t.Fatalf("verification off but something was detected: %+v", st)
	}
	same := true
	for name, v := range ref.Env {
		if !got.Env[name].Data().Equal(v.Data()) {
			same = false
			_ = name
		}
	}
	if same {
		t.Fatal("undetected corruption left every result bit-identical")
	}
}

// TestCorruptionDeterministic: the same corruption seed must reproduce
// identical stats and bit-identical (damaged) results.
func TestCorruptionDeterministic(t *testing.T) {
	run := func() *Result {
		return runFaulted(t, algorithms.GD, "cri1", opt.Conservative, RunOptions{
			Faults: corruptionPlan(9),
			Verify: integrity.VerifyDigest,
		})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("same corruption seed diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	for name, v := range a.Env {
		if !b.Env[name].Data().Equal(v.Data()) {
			t.Errorf("%s differs between identical seeds", name)
		}
	}
}

// TestStickyCorruptionFailsTyped forces the unrepairable path: an at-rest
// flip under a DFS read (Bits ≡ 63 mod 64) re-reads the same bad bytes on
// every lineage retry, so the bounded budget exhausts into a typed error.
func TestStickyCorruptionFailsTyped(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Conservative)
	_, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), trace.New(), RunOptions{
		Faults: fault.FromEvents(fault.Event{At: 1e-9, Kind: fault.Corruption, Bits: 63}),
		Verify: integrity.VerifyDigest,
	})
	if !errors.Is(err, integrity.ErrCorruption) {
		t.Fatalf("sticky corruption returned %v, want ErrCorruption", err)
	}
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("error is not a typed *integrity.Error: %v", err)
	}
	if ie.Attempts < 2 {
		t.Fatalf("sticky corruption gave up after %d attempts, want a bounded retry budget", ie.Attempts)
	}
	if ie.Via != "digest" {
		t.Fatalf("sticky dfs-read corruption detected via %q, want digest", ie.Via)
	}
}

// TestNaNGuardCatchesOverflow: a numerically divergent loop is caught by the
// guard at both cadences and surfaces as a typed NumericError; without the
// guard the poisoned run succeeds silently.
func TestNaNGuardCatchesOverflow(t *testing.T) {
	const src = "x = read(\"x0\")\ni = 0\nwhile (i < 6) {\n x = x * 1e200\n i = i + 1\n}"
	ds := data.MustLoad("cri1")
	metas := map[string]sparsity.Meta{
		"x0": sparsity.Virtualize(sparsity.MetaOf(ds.InitialX()), ds.VCols, 1),
	}
	c, err := opt.Compile(lang.MustParse(src), metas, opt.Config{
		Strategy: opt.NoElimination, Estimator: sparsity.MNC{},
		Cluster: cluster.DefaultConfig(), Iterations: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := map[string]Input{"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1}}
	run := func(guard integrity.GuardMode) error {
		_, err := RunWithOptions(context.Background(), c, ins, trace.New(), RunOptions{
			NaNGuard: guard,
		})
		return err
	}
	if err := run(integrity.GuardOff); err != nil {
		t.Fatalf("unguarded divergent run failed: %v", err)
	}
	for _, guard := range []integrity.GuardMode{integrity.GuardPerIteration, integrity.GuardPerOp} {
		err := run(guard)
		if !errors.Is(err, integrity.ErrNonFinite) {
			t.Fatalf("guard %v returned %v, want ErrNonFinite", guard, err)
		}
		var ne *integrity.NumericError
		if !errors.As(err, &ne) {
			t.Fatalf("guard %v error is not a typed *integrity.NumericError: %v", guard, err)
		}
	}
}

// TestVerifySpansMatchStats upholds the stats-equals-spans invariant for the
// integrity layer: the simulated seconds of "integrity" spans must equal the
// VerifySec the cluster accounted, and repair spans must equal RepairSec.
func TestVerifySpansMatchStats(t *testing.T) {
	got := runFaulted(t, algorithms.DFP, "cri2", opt.Conservative, RunOptions{
		Faults: corruptionPlan(5),
		Verify: integrity.VerifyABFT,
	})
	verifySec, repairSec := 0.0, 0.0
	for _, sp := range got.Trace.Spans() {
		switch sp.Kind {
		case "integrity":
			verifySec += sp.ComputeSec + sp.TransmitSec
		case "recovery":
			repairSec += sp.RecoverySec
		}
	}
	if !approx(verifySec, got.Stats.VerifySec) {
		t.Errorf("integrity spans %.6f s, stats VerifySec %.6f s", verifySec, got.Stats.VerifySec)
	}
	if !approx(repairSec, got.Stats.RepairSec) {
		t.Errorf("recovery spans %.6f s, stats RepairSec %.6f s", repairSec, got.Stats.RepairSec)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	s := a + b
	if s < 0 {
		s = -s
	}
	return d <= 1e-9+1e-9*s
}
