package engine

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/distmat"
	"remac/internal/fault"
	"remac/internal/opt"
)

func TestParseRecovery(t *testing.T) {
	cases := []struct {
		in   string
		want RecoveryPolicy
	}{
		{"", RecoveryPolicy{}},
		{"lineage", RecoveryPolicy{}},
		{"checkpoint", RecoveryPolicy{Kind: RecoverCheckpoint}},
		{"coded", RecoveryPolicy{Kind: RecoverCoded, K: distmat.DefaultCodedK, N: distmat.DefaultCodedN}},
		{"coded:4,7", RecoveryPolicy{Kind: RecoverCoded, K: 4, N: 7}},
		{"coded: 8 , 12", RecoveryPolicy{Kind: RecoverCoded, K: 8, N: 12}},
	}
	for _, c := range cases {
		got, err := ParseRecovery(c.in)
		if err != nil {
			t.Fatalf("ParseRecovery(%q) err = %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseRecovery(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseRecoveryErrors(t *testing.T) {
	for _, in := range []string{"none", "coded:", "coded:4", "coded:4;6", "coded:x,y", "coded:1,2", "coded:4,4", "coded:6,4"} {
		_, err := ParseRecovery(in)
		var pe *RecoveryPolicyError
		if !errors.As(err, &pe) {
			t.Fatalf("ParseRecovery(%q) err = %v, want *RecoveryPolicyError", in, err)
		}
	}
}

func TestNormalizeRejectsParamsOnNonCodedPolicies(t *testing.T) {
	for _, p := range []RecoveryPolicy{
		{Kind: RecoverLineage, K: 4, N: 6},
		{Kind: RecoverCheckpoint, N: 6},
	} {
		if _, err := p.Normalize(); err == nil {
			t.Fatalf("Normalize(%+v) accepted coded parameters on a non-coded policy", p)
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[string]RecoveryPolicy{
		"lineage":    {},
		"checkpoint": {Kind: RecoverCheckpoint},
		"coded":      {Kind: RecoverCoded},
		"coded:4,7":  {Kind: RecoverCoded, K: 4, N: 7},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Fatalf("%+v.String() = %q, want %q", p, got, want)
		}
	}
}

// TestRunRejectsInvalidPolicy: RunWithOptions validates the policy before
// doing any work and surfaces the typed error.
func TestRunRejectsInvalidPolicy(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Aggressive)
	_, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), nil,
		RunOptions{Recovery: RecoveryPolicy{Kind: RecoverCoded, K: 6, N: 4}})
	var pe *RecoveryPolicyError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *RecoveryPolicyError", err)
	}
}

// TestLegacyCheckpointMapsToPolicy: the deprecated Checkpoint bool and the
// explicit checkpoint policy must drive identical runs (same simulated
// stats), so existing callers keep their behavior.
func TestLegacyCheckpointMapsToPolicy(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Aggressive)
	plan := func() *fault.Plan {
		return fault.NewPlan(fault.Config{
			Seed:                  5,
			WorkerFailuresPerHour: 300,
			Workers:               cluster.DefaultConfig().Workers(),
		})
	}
	legacy, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), nil,
		RunOptions{Faults: plan(), Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), nil,
		RunOptions{Faults: plan(), Recovery: RecoveryPolicy{Kind: RecoverCheckpoint}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Stats, policy.Stats) {
		t.Fatalf("legacy Checkpoint bool and checkpoint policy diverge:\n%+v\n%+v", legacy.Stats, policy.Stats)
	}
}

// TestCodedPolicyEndToEnd: a coded run under injected faults encodes
// parity, decodes at least once, and its final bindings stay within the
// 1e-9 relative tolerance of the fault-free reference.
func TestCodedPolicyEndToEnd(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Aggressive)
	ref, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	coded, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), nil,
		RunOptions{
			Faults: fault.NewPlan(fault.Config{
				Seed:                  5,
				WorkerFailuresPerHour: 600,
				StragglersPerHour:     600,
				Workers:               cluster.DefaultConfig().Workers(),
			}),
			Recovery: RecoveryPolicy{Kind: RecoverCoded},
		})
	if err != nil {
		t.Fatal(err)
	}
	if coded.Stats.EncodeFLOP == 0 {
		t.Fatal("coded run must charge parity encoding")
	}
	if coded.Stats.CodedRecoveries == 0 {
		t.Fatal("rates this high must trigger at least one k-of-n decode")
	}
	for name, want := range ref.Env {
		got, ok := coded.Env[name]
		if !ok {
			t.Fatalf("coded run lost binding %q", name)
		}
		w, g := want.Data(), got.Data()
		var maxDiff, maxAbs float64
		for i := 0; i < w.Rows(); i++ {
			for j := 0; j < w.Cols(); j++ {
				if d := math.Abs(g.At(i, j) - w.At(i, j)); d > maxDiff {
					maxDiff = d
				}
				if a := math.Abs(w.At(i, j)); a > maxAbs {
					maxAbs = a
				}
			}
		}
		if maxAbs > 0 && maxDiff/maxAbs > 1e-9 {
			t.Fatalf("%s deviates by %g relative, want <= 1e-9", name, maxDiff/maxAbs)
		}
	}
}
