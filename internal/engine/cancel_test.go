package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/opt"
	"remac/internal/sparsity"
)

// TestCompileCanceled: cancellation during the search phase surfaces as
// ErrCanceled from CompileCtx.
func TestCompileCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog := algorithms.MustProgram(algorithms.DFP, 5)
	ds := data.MustLoad("cri1")
	_, err := opt.CompileCtx(ctx, prog, inputMetas(algorithms.DFP, ds), opt.Config{
		Strategy:   opt.Adaptive,
		Estimator:  sparsity.MNC{},
		Cluster:    cluster.DefaultConfig(),
		Iterations: 5,
	})
	if !errors.Is(err, opt.ErrCanceled) {
		t.Fatalf("compile under canceled context: err = %v, want ErrCanceled", err)
	}
	// The engine-level alias identifies the same sentinel.
	if !errors.Is(err, ErrCanceled) {
		t.Error("engine.ErrCanceled does not match opt.ErrCanceled")
	}
}

// TestRunCanceled: a canceled context stops execution before any kernel
// runs and surfaces as ErrCanceled.
func TestRunCanceled(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Adaptive)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWithOptions(ctx, c, inputsFor(t, algorithms.GD, "cri1"), nil, RunOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("run under canceled context: err = %v, want ErrCanceled", err)
	}
}

// TestRunDeadline: a deadline expiring mid-run aborts between plan nodes;
// the error distinguishes cancellation from genuine failures.
func TestRunDeadline(t *testing.T) {
	c := compileFor(t, algorithms.DFP, "cri2", opt.Adaptive)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err := RunWithOptions(ctx, c, inputsFor(t, algorithms.DFP, "cri2"), nil, RunOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("run past deadline: err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// The cause is carried as message text only; the sentinel is the
		// contract. This branch just documents that either is acceptable.
		t.Log("deadline cause preserved in chain")
	}
}

// TestNilContextRunsToCompletion: RunTraced and friends pass a background
// context; a full run must be unaffected by the ctx plumbing.
func TestNilContextRunsToCompletion(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Adaptive)
	res, err := RunWithOptions(context.Background(), c, inputsFor(t, algorithms.GD, "cri1"), nil, RunOptions{})
	if err != nil {
		t.Fatalf("background-context run: %v", err)
	}
	if res.Iterations == 0 {
		t.Error("run completed with zero iterations")
	}
}
