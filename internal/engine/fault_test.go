package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/fault"
	"remac/internal/lang"
	"remac/internal/opt"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// stressPlan returns a fresh plan with rates high enough (relative to the
// 10²–10³ simulated-second runs the engine tests execute) that every fault
// kind fires. Injectors are stateful, so each run needs its own plan.
func stressPlan(seed int64) *fault.Plan {
	return fault.NewPlan(fault.Config{
		Seed:                  seed,
		WorkerFailuresPerHour: 120,
		TransmitErrorsPerHour: 240,
		StragglersPerHour:     120,
		Workers:               cluster.DefaultConfig().Workers(),
	})
}

func runFaulted(t *testing.T, alg algorithms.Name, dsName string, s opt.Strategy, opts RunOptions) *Result {
	t.Helper()
	c := compileFor(t, alg, dsName, s)
	rec := trace.New()
	res, err := RunWithOptions(context.Background(), c, inputsFor(t, alg, dsName), rec, opts)
	if err != nil {
		t.Fatalf("%v/%s/%v faulted run: %v", alg, dsName, s, err)
	}
	return res
}

// TestZeroOptionsMatchPlainRun is the zero-overhead regression guard: a
// zero RunOptions (nil plan, no checkpoint) must produce exactly the stats
// of a plain Run.
func TestZeroOptionsMatchPlainRun(t *testing.T) {
	c := compileFor(t, algorithms.GD, "cri1", opt.Conservative)
	plain, err := Run(c, inputsFor(t, algorithms.GD, "cri1"))
	if err != nil {
		t.Fatal(err)
	}
	withOpts, err := RunWithOptions(context.Background(), compileFor(t, algorithms.GD, "cri1", opt.Conservative),
		inputsFor(t, algorithms.GD, "cri1"), nil, RunOptions{Faults: fault.NewPlan(fault.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Stats, withOpts.Stats) {
		t.Fatalf("zero options changed stats:\n%+v\n%+v", plain.Stats, withOpts.Stats)
	}
	if plain.Stats.Retries != 0 || plain.Stats.RecoverySec != 0 || plain.Stats.FailedWorkers != 0 {
		t.Fatalf("fault fields nonzero on perfect cluster: %+v", plain.Stats)
	}
}

// TestFaultedRunDeterministic: the same fault seed must reproduce
// byte-identical stats and the same span sequence (wall-clock aside).
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() *Result {
		return runFaulted(t, algorithms.DFP, "cri2", opt.Conservative, RunOptions{Faults: stressPlan(42)})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("same fault seed diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Stats.FailedWorkers == 0 || a.Stats.Retries == 0 || a.Stats.RecoverySec == 0 {
		t.Fatalf("stress rates must fire every fault kind: %+v", a.Stats)
	}
	sa, sb := a.Trace.Spans(), b.Trace.Spans()
	if len(sa) != len(sb) {
		t.Fatalf("span counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		x, y := sa[i], sb[i]
		x.WallNS, y.WallNS = 0, 0
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, x, y)
		}
	}
}

// TestFaultsNeverChangeResults: injected faults only affect accounting;
// result matrices must be numerically identical to the fault-free run for
// every algorithm the paper evaluates.
func TestFaultsNeverChangeResults(t *testing.T) {
	cases := []struct {
		alg    algorithms.Name
		ds     string
		target string
	}{
		{algorithms.GD, "cri2", "x"},
		{algorithms.DFP, "cri2", "x"},
		{algorithms.GNMF, "cri2", "W"},
	}
	for _, tc := range cases {
		ref := compileAndRun(t, tc.alg, tc.ds, opt.Conservative)
		got := runFaulted(t, tc.alg, tc.ds, opt.Conservative,
			RunOptions{Faults: stressPlan(7), Checkpoint: true})
		if got.Stats.FailedWorkers == 0 {
			t.Fatalf("%v: no failures fired; test is vacuous", tc.alg)
		}
		if !got.Env[tc.target].Data().ApproxEqual(ref.Env[tc.target].Data(), 0) {
			t.Errorf("%v: faults changed the result", tc.alg)
		}
	}
}

// TestCheckpointReducesRecompute: persisting LSE intermediates converts
// their post-failure recovery from lineage recompute (FLOP) into DFS reads,
// at the price of DFS write bytes. The default driver heap would hold the
// cri2 LSE values locally (where failures cannot touch them), so this test
// shrinks it to force them onto the workers.
func TestCheckpointReducesRecompute(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.DriverMemory = 512 << 20
	iters := 5
	prog := algorithms.MustProgram(algorithms.DFP, iters)
	ds := data.MustLoad("cri2")
	// Aggressive hoists the AᵀA LSE, whose 8700² result is distributed
	// under the shrunken driver heap — the value checkpointing exists for.
	compiled, err := opt.Compile(prog, inputMetas(algorithms.DFP, ds), opt.Config{
		Strategy:   opt.Aggressive,
		Estimator:  sparsity.MNC{},
		Cluster:    cfg,
		Iterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(checkpoint bool) *Result {
		res, err := RunWithOptions(context.Background(), compiled, inputsFor(t, algorithms.DFP, "cri2"), trace.New(), RunOptions{
			Faults:     stressPlan(11),
			Checkpoint: checkpoint,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	ckpt := run(true)
	if plain.Stats.FailedWorkers == 0 || ckpt.Stats.FailedWorkers == 0 {
		t.Fatalf("failures did not fire in both runs: %d vs %d",
			plain.Stats.FailedWorkers, ckpt.Stats.FailedWorkers)
	}
	if plain.Stats.RecomputeFLOP == 0 {
		t.Fatal("lineage recovery recomputed nothing; test is vacuous")
	}
	writes := 0
	for _, sp := range ckpt.Trace.Spans() {
		if sp.Kind == "checkpoint" {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("checkpoint policy wrote nothing to DFS")
	}
	if ckpt.Stats.RecomputeFLOP >= plain.Stats.RecomputeFLOP {
		t.Errorf("checkpointing did not reduce recompute FLOP: %g vs %g",
			ckpt.Stats.RecomputeFLOP, plain.Stats.RecomputeFLOP)
	}
}

// TestErrMaxIterations: a loop that never converges returns the sentinel,
// checkable with errors.Is, carrying the cap via MaxIterationsError.
func TestErrMaxIterations(t *testing.T) {
	prog := lang.MustParse(`
i = 0
while (i < 1) {
    j = 1
}
`)
	c, err := opt.Compile(prog, nil, opt.Config{Strategy: opt.NoElimination, Cluster: cluster.DefaultConfig(), Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWithOptions(context.Background(), c, nil, nil, RunOptions{MaxIter: 7})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("errors.Is(err, ErrMaxIterations) false for %v", err)
	}
	var me *MaxIterationsError
	if !errors.As(err, &me) || me.Iterations != 7 {
		t.Fatalf("error does not carry the cap: %v", err)
	}

	// The default path (plain Run, full cap) returns the same sentinel.
	_, err = Run(c, nil)
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("Run: errors.Is false for %v", err)
	}
	if !errors.As(err, &me) || me.Iterations != MaxIterations {
		t.Fatalf("Run error cap = %v", err)
	}
}
