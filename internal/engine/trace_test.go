package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/opt"
	"remac/internal/trace"
)

// runTraced compiles and runs a workload with a recorder attached.
func runTraced(t *testing.T, alg algorithms.Name, dsName string, strategy opt.Strategy) (*Result, *trace.Recorder) {
	t.Helper()
	c := compileFor(t, alg, dsName, strategy)
	rec := trace.New()
	res, err := RunTraced(c, inputsFor(t, alg, dsName), rec)
	if err != nil {
		t.Fatalf("%v/%s/%v: run: %v", alg, dsName, strategy, err)
	}
	return res, rec
}

// TestSpanSumsEqualClusterStats is the tentpole acceptance test: over a
// full run, the summed span seconds, FLOP, op counts and per-primitive
// bytes equal the cluster's Stats() totals. Every ChargeProfile call is
// mirrored by exactly one span, so any accounting drift between the trace
// and the simulated clock fails here.
func TestSpanSumsEqualClusterStats(t *testing.T) {
	cases := []struct {
		alg      algorithms.Name
		strategy opt.Strategy
	}{
		{algorithms.DFP, opt.Adaptive},
		{algorithms.DFP, opt.NoElimination},
		{algorithms.GNMF, opt.Adaptive}, // covers Sum and aliased ewise
		{algorithms.GD, opt.Aggressive},
	}
	const tol = 1e-9
	for _, tc := range cases {
		res, rec := runTraced(t, tc.alg, "cri2", tc.strategy)
		sum := rec.Summary()
		s := res.Stats
		if sum.Ops == 0 {
			t.Fatalf("%v/%v: no operator spans recorded", tc.alg, tc.strategy)
		}
		if sum.Ops != s.Ops {
			t.Errorf("%v/%v: span ops %d != cluster ops %d", tc.alg, tc.strategy, sum.Ops, s.Ops)
		}
		if math.Abs(sum.ComputeSec-s.ComputeTime) > tol {
			t.Errorf("%v/%v: compute spans %g vs stats %g", tc.alg, tc.strategy, sum.ComputeSec, s.ComputeTime)
		}
		if math.Abs(sum.TransmitSec-s.TransmitTime) > tol {
			t.Errorf("%v/%v: transmit spans %g vs stats %g", tc.alg, tc.strategy, sum.TransmitSec, s.TransmitTime)
		}
		if relDiff(sum.FLOP, s.FLOP) > tol {
			t.Errorf("%v/%v: flop spans %g vs stats %g", tc.alg, tc.strategy, sum.FLOP, s.FLOP)
		}
		for _, p := range cluster.Primitives {
			if relDiff(sum.Bytes[p.String()], s.BytesFor(p)) > tol {
				t.Errorf("%v/%v: %v bytes spans %g vs stats %g",
					tc.alg, tc.strategy, p, sum.Bytes[p.String()], s.BytesFor(p))
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

func TestTraceGroupStructure(t *testing.T) {
	res, rec := runTraced(t, algorithms.DFP, "cri2", opt.Adaptive)
	iterations, statements, orphanOps := 0, 0, 0
	byID := map[int64]trace.Span{}
	for _, s := range rec.Spans() {
		byID[s.ID] = s
	}
	for _, s := range rec.Spans() {
		switch {
		case s.Group && s.Kind == "iteration":
			iterations++
		case s.Group && s.Kind == "stmt":
			statements++
		case !s.Group && s.Parent == 0:
			orphanOps++
		}
		if s.Group && (s.ComputeSec != 0 || s.TransmitSec != 0 || s.FLOP != 0 || len(s.Bytes) != 0) {
			t.Fatalf("group span %q carries cost — double counting", s.Label)
		}
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; !ok {
				t.Fatalf("span %d has dangling parent %d", s.ID, s.Parent)
			}
		}
	}
	if iterations != res.Iterations {
		t.Errorf("iteration group spans = %d, want %d", iterations, res.Iterations)
	}
	if statements == 0 {
		t.Error("no statement group spans recorded")
	}
	if orphanOps != 0 {
		t.Errorf("%d operator spans outside any statement", orphanOps)
	}

	// The per-statement view must cover every operator span.
	ops := 0
	for _, g := range rec.GroupCosts("stmt") {
		ops += g.Ops
	}
	if want := rec.Summary().Ops; ops != want {
		t.Errorf("statement groups cover %d ops, want %d", ops, want)
	}
}

// TestTraceJSONLCoversOperators checks the -trace serialization end to end:
// every charged operator — including sum — appears as a valid JSON line.
func TestTraceJSONLCoversOperators(t *testing.T) {
	_, rec := runTraced(t, algorithms.GNMF, "cri2", opt.Adaptive)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var s trace.Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("invalid span line %q: %v", sc.Text(), err)
		}
		if !s.Group {
			kinds[s.Kind]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"dfs-read", "mul", "ewise", "sum"} {
		if kinds[kind] == 0 {
			t.Errorf("no %q spans in the GNMF trace (got %v)", kind, kinds)
		}
	}
}

// TestUntracedRunUnchanged pins backward compatibility: Run without a
// recorder produces identical simulated accounting.
func TestUntracedRunUnchanged(t *testing.T) {
	plain := compileAndRun(t, algorithms.DFP, "cri2", opt.Adaptive)
	traced, _ := runTraced(t, algorithms.DFP, "cri2", opt.Adaptive)
	if plain.Stats.Ops != traced.Stats.Ops ||
		plain.Stats.TotalTime() != traced.Stats.TotalTime() ||
		plain.Stats.TotalBytes() != traced.Stats.TotalBytes() {
		t.Fatalf("tracing changed accounting: %+v vs %+v", plain.Stats, traced.Stats)
	}
}
