package engine

import (
	"context"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/opt"
)

// fakeShared is a single-goroutine SharedProducers stub: the first run
// leads every key and publishes; replays of the same plan adopt the
// published values.
type fakeShared struct {
	published   map[string]Intermediate
	flops       map[string]float64
	leads, hits int
	fails       int
}

func (f *fakeShared) Acquire(_ context.Context, key string) (Intermediate, SharedRole, error) {
	if v, ok := f.published[key]; ok {
		f.hits++
		return v, SharedHit, nil
	}
	f.leads++
	return Intermediate{}, SharedLead, nil
}

func (f *fakeShared) Publish(key string, v Intermediate, flop float64) {
	f.published[key] = v
	f.flops[key] = flop
}

func (f *fakeShared) Fail(string, error) { f.fails++ }

func newFakeShared() *fakeShared {
	return &fakeShared{published: map[string]Intermediate{}, flops: map[string]float64{}}
}

// TestSharedProducerAdoptionBitwiseAndCheaper drives the executor's
// shared-producer hook end to end: a leading run publishes its
// loop-constant producers with the FLOP each one cost, and an adopting run
// reuses them — producing bitwise-identical results while being charged
// strictly less FLOP.
func TestSharedProducerAdoptionBitwiseAndCheaper(t *testing.T) {
	c := compileFor(t, algorithms.DFP, "cri1", opt.Adaptive)
	ins := inputsFor(t, algorithms.DFP, "cri1")
	base, err := Run(c, ins)
	if err != nil {
		t.Fatal(err)
	}

	sh := newFakeShared()
	lead, err := RunWithOptions(context.Background(), c, ins, nil, RunOptions{Shared: sh})
	if err != nil {
		t.Fatal(err)
	}
	if sh.leads == 0 {
		t.Fatal("the plan exposed no shared producers to lead")
	}
	if sh.hits != 0 || sh.fails != 0 {
		t.Fatalf("first run: hits=%d fails=%d, want 0/0", sh.hits, sh.fails)
	}
	if len(sh.published) != sh.leads {
		t.Fatalf("published %d of %d led producers, want every lead settled", len(sh.published), sh.leads)
	}
	maxFlop := 0.0
	for _, fl := range sh.flops {
		if fl > maxFlop {
			maxFlop = fl
		}
	}
	if maxFlop <= 0 {
		t.Fatal("no published producer carried a positive FLOP cost")
	}

	adopt, err := RunWithOptions(context.Background(), c, ins, nil, RunOptions{Shared: sh})
	if err != nil {
		t.Fatal(err)
	}
	if sh.hits == 0 {
		t.Fatal("replay of the same plan adopted nothing")
	}
	for name, v := range base.Env {
		if !lead.Env[name].Data().Equal(v.Data()) {
			t.Errorf("%s: leading run differs from the plain run", name)
		}
		if !adopt.Env[name].Data().Equal(v.Data()) {
			t.Errorf("%s: adopting run differs from the plain run", name)
		}
	}
	if adopt.Stats.FLOP >= lead.Stats.FLOP {
		t.Errorf("adopting run charged %.6g FLOP, not strictly below the leading run's %.6g",
			adopt.Stats.FLOP, lead.Stats.FLOP)
	}
}
