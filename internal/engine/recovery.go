package engine

import (
	"fmt"
	"strconv"
	"strings"

	"remac/internal/distmat"
)

// RecoveryKind selects how blocks lost to injected worker failures are
// rebuilt.
type RecoveryKind int

const (
	// RecoverLineage recomputes lost partitions from their producing
	// lineage (the default; inputs re-read DFS).
	RecoverLineage RecoveryKind = iota
	// RecoverCheckpoint persists LSE-hoisted intermediates to DFS so later
	// failures recover them at DFS-read cost.
	RecoverCheckpoint
	// RecoverCoded encodes every distributed value with a systematic
	// low-weight erasure code: k data groups plus n-k parity blocks, from
	// which erased groups decode without recomputation (distmat/coded.go).
	RecoverCoded
)

func (k RecoveryKind) String() string {
	switch k {
	case RecoverLineage:
		return "lineage"
	case RecoverCheckpoint:
		return "checkpoint"
	case RecoverCoded:
		return "coded"
	}
	return fmt.Sprintf("RecoveryKind(%d)", int(k))
}

// RecoveryPolicy is the recovery strategy of a run: the kind plus, for
// coded recovery, the (k, n) code parameters. The zero value is lineage
// recomputation. K/N of 0 under RecoverCoded select the defaults
// (distmat.DefaultCodedK, distmat.DefaultCodedN).
type RecoveryPolicy struct {
	Kind RecoveryKind
	K, N int
}

// RecoveryPolicyError reports an invalid recovery policy or an
// unparseable -recovery flag value.
type RecoveryPolicyError struct{ Msg string }

func (e *RecoveryPolicyError) Error() string { return "engine: recovery policy: " + e.Msg }

// Normalize validates the policy and fills coded defaults. Non-coded
// policies must not carry code parameters; coded policies require
// n > k >= 2.
func (p RecoveryPolicy) Normalize() (RecoveryPolicy, error) {
	if p.Kind != RecoverCoded {
		if p.K != 0 || p.N != 0 {
			return p, &RecoveryPolicyError{Msg: fmt.Sprintf("%s policy cannot carry coded parameters k=%d n=%d", p.Kind, p.K, p.N)}
		}
		return p, nil
	}
	if p.K == 0 && p.N == 0 {
		p.K, p.N = distmat.DefaultCodedK, distmat.DefaultCodedN
	}
	if p.K < 2 || p.N <= p.K {
		return p, &RecoveryPolicyError{Msg: fmt.Sprintf("coded requires n > k >= 2, got k=%d n=%d", p.K, p.N)}
	}
	return p, nil
}

// String renders the policy in the -recovery flag syntax.
func (p RecoveryPolicy) String() string {
	if p.Kind == RecoverCoded && (p.K != 0 || p.N != 0) {
		return fmt.Sprintf("coded:%d,%d", p.K, p.N)
	}
	return p.Kind.String()
}

// ParseRecovery parses a -recovery flag value: "" or "lineage",
// "checkpoint", "coded" (default k,n), or "coded:k,n".
func ParseRecovery(s string) (RecoveryPolicy, error) {
	switch s {
	case "", "lineage":
		return RecoveryPolicy{}, nil
	case "checkpoint":
		return RecoveryPolicy{Kind: RecoverCheckpoint}, nil
	case "coded":
		return RecoveryPolicy{Kind: RecoverCoded}.Normalize()
	}
	if rest, ok := strings.CutPrefix(s, "coded:"); ok {
		kStr, nStr, ok := strings.Cut(rest, ",")
		if !ok {
			return RecoveryPolicy{}, &RecoveryPolicyError{Msg: fmt.Sprintf("%q: want coded:k,n", s)}
		}
		k, err1 := strconv.Atoi(strings.TrimSpace(kStr))
		n, err2 := strconv.Atoi(strings.TrimSpace(nStr))
		if err1 != nil || err2 != nil {
			return RecoveryPolicy{}, &RecoveryPolicyError{Msg: fmt.Sprintf("%q: want coded:k,n", s)}
		}
		return RecoveryPolicy{Kind: RecoverCoded, K: k, N: n}.Normalize()
	}
	return RecoveryPolicy{}, &RecoveryPolicyError{Msg: fmt.Sprintf("unknown policy %q (want lineage, checkpoint, coded or coded:k,n)", s)}
}
