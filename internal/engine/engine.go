// Package engine executes compiled programs on the simulated distributed
// runtime: it drives the loop, evaluates statement plans over distmat
// values, hoists loop-constant producers out of the loop (LSE), reuses
// common-subexpression results within an iteration (CSE), and accounts the
// phase breakdown (input partition / compilation / computation /
// transmission) the paper's Fig 12 reports.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"remac/internal/chain"
	"remac/internal/cluster"
	"remac/internal/costgraph"
	"remac/internal/distmat"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/opt"
	"remac/internal/plan"
	"remac/internal/search"
	"remac/internal/trace"
)

// Input pairs a materialized matrix with its virtual dimensions (paper
// scale). Zero virtual dims default to the actual ones.
type Input struct {
	Data         *matrix.Matrix
	VRows, VCols int64
}

// Result is the outcome of a run.
type Result struct {
	// Env holds the final variable bindings.
	Env map[string]*distmat.DistMatrix
	// Stats is the simulated cluster accounting for the whole run.
	Stats cluster.Stats
	// Iterations actually executed.
	Iterations int
	// InputPartitionSec is the simulated time spent reading and
	// partitioning inputs (Fig 12's first phase).
	InputPartitionSec float64
	// CompileSec is the real compilation time, reported alongside the
	// simulated execution phases.
	CompileSec float64
	// Trace is the span recorder the run was given (nil for untraced runs).
	Trace *trace.Recorder
}

// TotalSec returns the simulated execution time plus compilation.
func (r *Result) TotalSec() float64 { return r.Stats.TotalTime() + r.CompileSec }

// MaxIterations caps runaway loops (misconfigured conditions).
const MaxIterations = 100000

// ErrMaxIterations reports a loop whose condition never turned false before
// the iteration cap. Returned errors wrap it and carry the cap:
//
//	errors.Is(err, engine.ErrMaxIterations)
//	var me *engine.MaxIterationsError // me.Iterations is the cap hit
var ErrMaxIterations = errors.New("engine: loop exceeded max iterations")

// MaxIterationsError is the concrete error wrapping ErrMaxIterations; it
// carries the iteration cap that was exceeded.
type MaxIterationsError struct{ Iterations int }

func (e *MaxIterationsError) Error() string {
	return fmt.Sprintf("engine: loop exceeded %d iterations", e.Iterations)
}

func (e *MaxIterationsError) Unwrap() error { return ErrMaxIterations }

// ErrCanceled reports a run abandoned because its context was cancelled or
// its deadline expired. It is the same sentinel opt.CompileCtx wraps, so a
// serving layer can match compile- and run-phase cancellation with one
// errors.Is(err, engine.ErrCanceled) check.
var ErrCanceled = opt.ErrCanceled

// Intermediate is a loop-constant value exchanged with a cross-run
// IntermediateCache: the materialized matrix plus the virtual dimensions
// the cost model accounts it at.
type Intermediate struct {
	Data         *matrix.Matrix
	VRows, VCols int64
}

// IntermediateCache is a cross-run store for loop-constant (LSE) values.
// The engine consults it before computing an LSE producer and offers the
// computed value back; keys are the option's canonical expression key plus
// the producer plan's shape signature, so a hit is guaranteed to stand for
// the bitwise-identical sequence of kernel executions. Callers that share
// one cache across runs must namespace keys by dataset version and cluster
// configuration (see internal/serve) and may need to synchronize: the
// engine calls Get/Put from the run's own goroutine.
type IntermediateCache interface {
	Get(key string) (Intermediate, bool)
	Put(key string, v Intermediate)
}

// SharedRole is the outcome of a SharedProducers.Acquire call.
type SharedRole int

const (
	// SharedHit: the returned Intermediate is valid; the caller adopts it
	// instead of computing.
	SharedHit SharedRole = iota
	// SharedLead: the caller must compute the value and settle its claim
	// with Publish (success) or Fail (error).
	SharedLead
	// SharedSolo: no sharing for this key — compute locally and do not
	// publish. Coordinators return it to break potential wait cycles.
	SharedSolo
)

// SharedProducers coordinates loop-constant (LSE) producer executions
// across concurrently running sibling queries — multi-query optimization,
// the mid-batch counterpart of the cross-run IntermediateCache. Before
// computing an LSE producer the engine Acquires its key: it either adopts
// a value a sibling produced (possibly blocking until that production
// settles), becomes the leader that produces it for the whole batch, or is
// told to compute solo. A leader settles with Publish — the value plus the
// FLOP the production charged, which adopters report as savings — or Fail,
// whose error the coordinator propagates typed to every waiting consumer.
// Keys are exactly the IntermediateCache keys (canonical expression key +
// producer-plan signature), so an adopted value is guaranteed to stand for
// the bitwise-identical kernel sequence this run would have executed.
type SharedProducers interface {
	Acquire(ctx context.Context, key string) (Intermediate, SharedRole, error)
	Publish(key string, v Intermediate, flop float64)
	Fail(key string, err error)
}

// RunOptions configures the run-time (as opposed to compile-time) behavior
// of an execution: fault injection and the recovery policy. The zero value
// reproduces a perfect cluster — no faults, no checkpointing — with zero
// accounting overhead.
type RunOptions struct {
	// Faults schedules deterministic worker failures, transmission errors
	// and stragglers against the simulated clock. Nil disables injection.
	Faults *fault.Plan
	// Recovery selects how blocks lost to injected worker failures are
	// rebuilt: lineage recomputation (the zero value), DFS checkpoints of
	// LSE-hoisted intermediates, or k-of-n coded recovery. See
	// RecoveryPolicy.
	Recovery RecoveryPolicy
	// Checkpoint is the legacy toggle for RecoverCheckpoint, kept for
	// back-compat: it is honored only when Recovery is the zero policy.
	Checkpoint bool
	// MaxIter overrides MaxIterations when positive.
	MaxIter int
	// Intermediates, when non-nil, is a cross-run cache consulted for
	// loop-constant (LSE) values before computing them; newly computed
	// values are offered back. See IntermediateCache.
	Intermediates IntermediateCache
	// Shared, when non-nil, coordinates LSE producer executions with
	// concurrently running sibling queries (multi-query optimization). It
	// is consulted after Intermediates misses. See SharedProducers.
	Shared SharedProducers
	// Verify selects the integrity verification mode: off, block digests on
	// every charged transmission and DFS read, or digests plus ABFT checksum
	// validation of distributed multiplies. Verification work is charged to
	// the simulated clock; detected corruptions repair through lineage, and
	// unrepairable ones fail the run with a typed integrity error.
	Verify integrity.VerifyMode
	// NaNGuard selects the non-finite scan cadence (off, per iteration, per
	// operator); a NaN or Inf caught by the guard fails the run with a
	// typed numeric error instead of propagating poison.
	NaNGuard integrity.GuardMode
}

// Run executes a compiled program over the given inputs on a fresh
// simulated cluster.
func Run(c *opt.Compiled, inputs map[string]Input) (*Result, error) {
	return RunTraced(c, inputs, nil)
}

// RunTraced is Run with a trace recorder attached: every charged operator
// emits a span, and statement/iteration boundaries enclose them as group
// spans. A nil recorder disables tracing (Run's behavior).
func RunTraced(c *opt.Compiled, inputs map[string]Input, rec *trace.Recorder) (*Result, error) {
	return RunWithOptions(context.Background(), c, inputs, rec, RunOptions{})
}

// RunWithOptions is RunTraced with a cancellation context, fault injection,
// recovery policy and integrity verification attached. Injected fail-stop
// faults only ever affect cost accounting — kernels execute for real, so the
// result matrices are numerically identical to a fault-free run. Injected
// corruptions are the exception: a flipped bit that escapes the enabled
// verification mode really damages the affected value, while a detected one
// is repaired (at a charged lineage cost) back to the bitwise-identical
// clean payload, or fails the run with an error wrapping
// integrity.ErrCorruption when the bounded repair budget exhausts. The
// context is checked at every plan-node evaluation; when it is cancelled or
// its deadline passes, the run stops promptly and returns an error wrapping
// ErrCanceled.
func RunWithOptions(goCtx context.Context, c *opt.Compiled, inputs map[string]Input, rec *trace.Recorder, opts RunOptions) (*Result, error) {
	rp := opts.Recovery
	if rp == (RecoveryPolicy{}) && opts.Checkpoint {
		rp.Kind = RecoverCheckpoint
	}
	rp, err := rp.Normalize()
	if err != nil {
		return nil, err
	}
	cl := cluster.New(c.Config.Cluster)
	ctx := distmat.NewContext(cl)
	ctx.Recorder = rec
	ctx.Verify = opts.Verify
	ctx.NaNGuard = opts.NaNGuard
	if opts.Faults.Enabled() {
		ctx.EnableFaults(opts.Faults)
	}
	if rp.Kind == RecoverCoded {
		ctx.EnableCoded(rp.K, rp.N)
	}
	e := &executor{
		c:          c,
		goCtx:      goCtx,
		ctx:        ctx,
		rec:        rec,
		env:        map[string]*distmat.DistMatrix{},
		inputs:     inputs,
		lseCache:   map[string]*distmat.DistMatrix{},
		checkpoint: rp.Kind == RecoverCheckpoint,
		inter:      opts.Intermediates,
		shared:     opts.Shared,
	}
	if err := e.prepare(); err != nil {
		return nil, err
	}

	// Pre-loop statements.
	for _, sp := range c.Plans.Pre {
		if err := e.execStmtTraced(sp); err != nil {
			return nil, err
		}
	}

	maxIter := MaxIterations
	if opts.MaxIter > 0 {
		maxIter = opts.MaxIter
	}
	iterations := 0
	if c.Plans.Loop != nil {
		for iterations < maxIter {
			if err := e.canceled(); err != nil {
				return nil, err
			}
			ok, err := e.cond(c.Plans.Loop.Cond)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			id := rec.Begin("iteration", fmt.Sprintf("iteration %d", iterations+1))
			err = e.iteration()
			if err == nil && opts.NaNGuard == integrity.GuardPerIteration {
				e.guardIteration()
			}
			rec.End(id)
			if err != nil {
				return nil, err
			}
			if err := ctx.IntegrityErr(); err != nil {
				return nil, err
			}
			iterations++
		}
		if iterations >= maxIter {
			return nil, &MaxIterationsError{Iterations: maxIter}
		}
	}
	for _, sp := range c.Plans.Post {
		if err := e.execStmtTraced(sp); err != nil {
			return nil, err
		}
	}
	// A corruption or NaN surfaced by the final operator has no later
	// evaluation to fail — a poisoned run must never return success.
	if err := ctx.IntegrityErr(); err != nil {
		return nil, err
	}
	return &Result{
		Env:               e.env,
		Stats:             cl.Stats(),
		Iterations:        iterations,
		InputPartitionSec: ctx.PartitionSec,
		CompileSec:        c.TotalTime.Seconds(),
		Trace:             rec,
	}, nil
}

type executor struct {
	c      *opt.Compiled
	goCtx  context.Context
	ctx    *distmat.Context
	rec    *trace.Recorder
	env    map[string]*distmat.DistMatrix
	inputs map[string]Input

	// inter is the optional cross-run LSE value cache (RunOptions).
	inter IntermediateCache
	// shared is the optional mid-batch producer coordinator (RunOptions).
	shared SharedProducers

	// explicitKeys marks subtree keys stock SystemDS would reuse
	// (Explicit strategy only).
	explicitKeys map[string]bool

	// blockByOrigin finds the resolved plan for a chain region during
	// normalized-tree evaluation.
	blockByOrigin map[*plan.Node]*costgraph.BlockPlan
	// producers maps option keys to their producer plans.
	producers map[string]*costgraph.ProducerPlan

	// lseCache persists across iterations; cseCache and subtreeCache are
	// per-iteration; transCache memoizes fused transposes per value.
	lseCache     map[string]*distmat.DistMatrix
	cseCache     map[string]*distmat.DistMatrix
	subtreeCache map[string]cachedSubtree
	transCache   map[*distmat.DistMatrix]*distmat.DistMatrix

	// checkpoint persists LSE values to DFS on first computation
	// (RunOptions.Checkpoint).
	checkpoint bool
}

// cachedSubtree is an explicit-CSE cache entry: the value plus the
// variables it depends on, so reassignments invalidate it.
type cachedSubtree struct {
	v    *distmat.DistMatrix
	refs map[string]bool
}

func (e *executor) prepare() error {
	c := e.c
	// Explicit applies stock SystemDS's identical-subtree CSE; the
	// conservative strategy subsumes it ("applies CSE after all
	// optimizations improving the operator order", §6.3.1), so both enable
	// the as-written span cache.
	if c.Config.Strategy == opt.Explicit || c.Config.Strategy == opt.Conservative {
		e.explicitKeys = map[string]bool{}
		var roots []*plan.Node
		for _, sp := range c.Plans.Body {
			roots = append(roots, sp.Raw)
		}
		for key := range plan.ExplicitCSEKeys(roots) {
			e.explicitKeys[key] = true
		}
	}
	if c.Decision != nil {
		e.blockByOrigin = map[*plan.Node]*costgraph.BlockPlan{}
		for _, bp := range c.Decision.BlockPlans {
			e.blockByOrigin[bp.Block.Origin] = bp
		}
		e.producers = map[string]*costgraph.ProducerPlan{}
		for _, pp := range c.Decision.Producers {
			e.producers[pp.Option.Key] = pp
		}
	}
	return nil
}

// iteration runs one loop-body pass.
func (e *executor) iteration() error {
	e.cseCache = map[string]*distmat.DistMatrix{}
	e.subtreeCache = map[string]cachedSubtree{}

	if e.c.UsesRawBody {
		// SystemDS-style: every statement executes its raw tree through
		// cost-ordered chain plans; assignments invalidate cached values.
		for i, sp := range e.c.Plans.Body {
			id := e.rec.Begin("stmt", sp.Target)
			v, err := e.eval(e.c.NormalizedBody[i])
			e.rec.End(id)
			if err != nil {
				return fmt.Errorf("engine: %s: %w", sp.Target, err)
			}
			e.env[sp.Target] = v
			e.invalidate(sp.Target)
		}
		return nil
	}

	norm := 0
	for _, sp := range e.c.Plans.Body {
		if sp.Inlined {
			continue // absorbed into downstream normalized trees
		}
		tree := e.c.NormalizedBody[norm]
		norm++
		id := e.rec.Begin("stmt", sp.Target)
		v, err := e.eval(tree)
		e.rec.End(id)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", sp.Target, err)
		}
		// Bind the versioned symbol: inlined references to the pre-update
		// value keep resolving to the old binding until the end-of-
		// iteration promotion below.
		e.env[sp.TargetSym] = v
		if sp.TargetSym == sp.Target {
			// Unversioned rebinds (e.g. the per-iteration gradient)
			// invalidate cached spans that referenced the old value.
			e.invalidate(sp.Target)
		}
	}
	// Promote versioned bindings so the next iteration (and the loop
	// condition) sees the updated values.
	for _, sp := range e.c.Plans.Body {
		if sp.Inlined || sp.TargetSym == sp.Target {
			continue
		}
		if v, ok := e.env[sp.TargetSym]; ok {
			e.env[sp.Target] = v
		}
	}
	return nil
}

// guardIteration runs the per-iteration non-finite scan over the bound
// values (sorted, versioned aliases skipped — they share the bindings their
// base names resolve to). The scan charges the pass and records the first
// poison found as the context's typed numeric error.
func (e *executor) guardIteration() {
	names := make([]string, 0, len(e.env))
	for name := range e.env {
		if baseSym(name) == name {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		e.env[name].GuardValue(name)
	}
}

// invalidate drops cached values that referenced the reassigned variable.
func (e *executor) invalidate(name string) {
	for key, entry := range e.subtreeCache {
		if entry.refs[name] {
			delete(e.subtreeCache, key)
		}
	}
}

// execStmtTraced runs execStmtOriginal inside a statement group span.
func (e *executor) execStmtTraced(sp plan.StmtPlan) error {
	id := e.rec.Begin("stmt", sp.Target)
	err := e.execStmtOriginal(sp)
	e.rec.End(id)
	return err
}

// execStmtOriginal evaluates a statement's as-written (uninlined) tree —
// SystemDS-style statement-by-statement execution, optionally with the
// explicit-CSE subtree cache.
func (e *executor) execStmtOriginal(sp plan.StmtPlan) error {
	v, err := e.eval(sp.Raw)
	if err != nil {
		return fmt.Errorf("engine: %s: %w", sp.Target, err)
	}
	e.env[sp.Target] = v
	// An assignment invalidates cached subtrees that referenced the
	// variable's previous value (SystemDS's CSE never unifies values from
	// different program points).
	e.invalidate(sp.Target)
	return nil
}

// canceled returns the wrapped ErrCanceled when the run's context is done.
// It is checked at every plan-node evaluation, bounding the latency of a
// cancellation to one kernel execution.
func (e *executor) canceled() error {
	if e.goCtx == nil {
		return nil
	}
	if err := e.goCtx.Err(); err != nil {
		return fmt.Errorf("engine: run: %w (%v)", ErrCanceled, err)
	}
	return nil
}

// eval evaluates a plan tree over the runtime environment. Chain regions
// with resolved block plans evaluate through them (reuse caches included);
// everything else evaluates structurally.
func (e *executor) eval(n *plan.Node) (*distmat.DistMatrix, error) {
	if err := e.canceled(); err != nil {
		return nil, err
	}
	if err := e.ctx.IntegrityErr(); err != nil {
		return nil, err
	}
	if bp, ok := e.blockByOrigin[n]; ok {
		return e.evalBlock(bp)
	}
	if e.explicitKeys != nil && len(n.Kids) > 0 {
		if entry, ok := e.subtreeCache[n.Key()]; ok {
			return entry.v, nil
		}
	}
	v, err := e.evalStructural(n)
	if err != nil {
		return nil, err
	}
	if e.explicitKeys != nil && e.explicitKeys[n.Key()] {
		refs := map[string]bool{}
		n.Walk(func(c *plan.Node) {
			if c.Kind == plan.Leaf {
				refs[baseSym(c.Sym)] = true
			}
		})
		e.subtreeCache[n.Key()] = cachedSubtree{v: v, refs: refs}
	}
	return v, nil
}

func (e *executor) evalStructural(n *plan.Node) (*distmat.DistMatrix, error) {
	switch n.Kind {
	case plan.Leaf:
		return e.lookup(n.Sym)
	case plan.Const:
		return e.scalar(n.Val), nil
	case plan.Trans:
		x, err := e.eval(n.L())
		if err != nil {
			return nil, err
		}
		if n.L().Kind == plan.Leaf {
			// Leaf transposes are fused into consumers, like chain atoms.
			return e.fusedTranspose(n.L().Sym, x), nil
		}
		return x.Transpose(), nil
	case plan.Neg:
		x, err := e.eval(n.L())
		if err != nil {
			return nil, err
		}
		return x.Scale(-1), nil
	case plan.SumAll:
		x, err := e.eval(n.L())
		if err != nil {
			return nil, err
		}
		return e.scalar(x.Sum()), nil
	case plan.AsScalar:
		x, err := e.eval(n.L())
		if err != nil {
			return nil, err
		}
		if !x.Data().IsScalar() {
			return nil, fmt.Errorf("as.scalar of %dx%d matrix", x.Data().Rows(), x.Data().Cols())
		}
		return x, nil
	case plan.NRows, plan.NCols:
		// Dimension queries resolve against the bound value; a leaf operand
		// is the common case and costs nothing.
		x, err := e.eval(n.L())
		if err != nil {
			return nil, err
		}
		if n.Kind == plan.NRows {
			return e.scalar(float64(x.Data().Rows())), nil
		}
		return e.scalar(float64(x.Data().Cols())), nil
	case plan.Sqrt, plan.Abs:
		x, err := e.eval(n.L())
		if err != nil {
			return nil, err
		}
		if !x.Data().IsScalar() {
			return nil, fmt.Errorf("%v of non-scalar", n.Kind)
		}
		v := x.Data().ScalarValue()
		if n.Kind == plan.Sqrt {
			v = math.Sqrt(v)
		} else {
			v = math.Abs(v)
		}
		return e.scalar(v), nil
	}
	l, err := e.eval(n.L())
	if err != nil {
		return nil, err
	}
	r, err := e.eval(n.R())
	if err != nil {
		return nil, err
	}
	return e.applyBin(n.Kind, l, r)
}

func (e *executor) applyBin(k plan.Kind, l, r *distmat.DistMatrix) (*distmat.DistMatrix, error) {
	ls, rs := l.Data().IsScalar(), r.Data().IsScalar()
	switch k {
	case plan.MMul:
		if ls {
			return r.Scale(l.Data().ScalarValue()), nil
		}
		if rs {
			return l.Scale(r.Data().ScalarValue()), nil
		}
		return e.mulWithHint(l, r, false), nil
	case plan.Add, plan.Sub:
		if ls != rs {
			// Scalar broadcast against a matrix.
			m, err := e.broadcastScalarOp(k, l, r, ls)
			return m, err
		}
		if ls && rs {
			a, b := l.Data().ScalarValue(), r.Data().ScalarValue()
			if k == plan.Add {
				return e.scalar(a + b), nil
			}
			return e.scalar(a - b), nil
		}
		if k == plan.Add {
			return l.Add(r), nil
		}
		return l.Sub(r), nil
	case plan.EMul:
		if ls {
			return r.Scale(l.Data().ScalarValue()), nil
		}
		if rs {
			return l.Scale(r.Data().ScalarValue()), nil
		}
		return l.ElemMul(r), nil
	case plan.EDiv:
		if rs {
			return l.Scale(1 / r.Data().ScalarValue()), nil
		}
		if ls {
			return nil, fmt.Errorf("scalar / matrix is not supported")
		}
		return l.ElemDiv(r), nil
	}
	return nil, fmt.Errorf("engine: not a binary op: %v", k)
}

func (e *executor) broadcastScalarOp(k plan.Kind, l, r *distmat.DistMatrix, leftScalar bool) (*distmat.DistMatrix, error) {
	if leftScalar {
		s := l.Data().ScalarValue()
		if k == plan.Add {
			return e.addScalar(r, s), nil
		}
		return e.addScalar(r.Scale(-1), s), nil
	}
	s := r.Data().ScalarValue()
	if k == plan.Sub {
		s = -s
	}
	return e.addScalar(l, s), nil
}

func (e *executor) addScalar(m *distmat.DistMatrix, s float64) *distmat.DistMatrix {
	return m.AddScalar(s)
}

func (e *executor) scalar(v float64) *distmat.DistMatrix {
	return distmat.New(e.ctx, matrix.Scalar(v), 1, 1)
}

func (e *executor) lookup(sym string) (*distmat.DistMatrix, error) {
	// Exact (possibly versioned) binding first; base name and then inputs
	// as fallbacks.
	if v, ok := e.env[sym]; ok {
		return v, nil
	}
	name := baseSym(sym)
	if v, ok := e.env[name]; ok {
		return v, nil
	}
	if in, ok := e.inputs[name]; ok {
		v := distmat.Read(e.ctx, in.Data, in.VRows, in.VCols)
		e.env[name] = v
		return v, nil
	}
	return nil, fmt.Errorf("unbound symbol %q", sym)
}

func baseSym(sym string) string {
	for i := 0; i < len(sym); i++ {
		if sym[i] == '#' {
			return sym[:i]
		}
	}
	return sym
}

// evalBlock evaluates a chain block through its resolved plan tree,
// applying the block's scalar factors (interior spans are memoized in
// evalOpNode under the Explicit strategy).
func (e *executor) evalBlock(bp *costgraph.BlockPlan) (*distmat.DistMatrix, error) {
	v, err := e.evalOpNode(bp.Block, bp.Root)
	if err != nil {
		return nil, err
	}
	for _, dep := range bp.Block.ScalarDeps {
		s, err := e.eval(dep)
		if err != nil {
			return nil, err
		}
		v = v.Scale(s.Data().ScalarValue())
	}
	return v, nil
}

// evalOpNode evaluates one node of a block plan: a reuse leaf consults the
// caches, an atom leaf resolves the symbol, interior nodes multiply. Under
// the Explicit strategy, interior spans are memoized by their as-written
// key — SystemDS's identical-subtree CSE over the operator DAG the order
// optimizer produced.
func (e *executor) evalOpNode(b *chain.Block, n *costgraph.OpNode) (*distmat.DistMatrix, error) {
	if err := e.canceled(); err != nil {
		return nil, err
	}
	if err := e.ctx.IntegrityErr(); err != nil {
		return nil, err
	}
	if n.ReuseOf != nil {
		v, err := e.optionValue(n.ReuseOf)
		if err != nil {
			return nil, err
		}
		if n.Flipped {
			v = v.Transpose()
		}
		return v, nil
	}
	if n.Lo == n.Hi {
		return e.atomValue(b.Atoms[n.Lo])
	}
	var cacheKey string
	if e.explicitKeys != nil {
		cacheKey = chain.SpanKey(b.Atoms[n.Lo : n.Hi+1])
		if entry, ok := e.subtreeCache[cacheKey]; ok {
			return entry.v, nil
		}
	}
	l, err := e.evalOpNode(b, n.L)
	if err != nil {
		return nil, err
	}
	r, err := e.evalOpNode(b, n.R)
	if err != nil {
		return nil, err
	}
	tsmm := n.L.Lo == n.L.Hi && n.R.Lo == n.R.Hi && n.L.ReuseOf == nil && n.R.ReuseOf == nil &&
		isTSMMAtoms(b.Atoms[n.L.Lo], b.Atoms[n.R.Lo])
	v := e.mulWithHint(l, r, tsmm)
	if cacheKey != "" {
		e.subtreeCache[cacheKey] = cachedSubtree{v: v, refs: spanRefs(b.Atoms[n.Lo : n.Hi+1])}
	}
	return v, nil
}

func spanRefs(atoms []chain.Atom) map[string]bool {
	refs := map[string]bool{}
	for _, a := range atoms {
		if a.Opaque {
			a.Node.Walk(func(n *plan.Node) {
				if n.Kind == plan.Leaf {
					refs[baseSym(n.Sym)] = true
				}
			})
			continue
		}
		refs[baseSym(a.Sym)] = true
	}
	return refs
}

func isTSMMAtoms(l, r chain.Atom) bool {
	return l.Sym == r.Sym && l.T != r.T
}

func (e *executor) mulWithHint(l, r *distmat.DistMatrix, tsmm bool) *distmat.DistMatrix {
	return l.MulHinted(r, tsmm)
}

func (e *executor) atomValue(a chain.Atom) (*distmat.DistMatrix, error) {
	if a.Opaque {
		v, err := e.eval(a.Node)
		if err != nil {
			return nil, err
		}
		if a.T {
			return v.Transpose(), nil
		}
		return v, nil
	}
	v, err := e.lookup(a.Sym)
	if err != nil {
		return nil, err
	}
	if a.T {
		// Fused: chain atoms never materialize a distributed transpose.
		return e.fusedTranspose(a.Sym, v), nil
	}
	return v, nil
}

// fusedTranspose returns the transposed value, memoized per symbol so the
// (real) transpose kernel runs once per binding.
func (e *executor) fusedTranspose(sym string, v *distmat.DistMatrix) *distmat.DistMatrix {
	if e.transCache == nil {
		e.transCache = map[*distmat.DistMatrix]*distmat.DistMatrix{}
	}
	if tv, ok := e.transCache[v]; ok {
		return tv
	}
	tv := v.TransposeFused()
	e.transCache[v] = tv
	_ = sym
	return tv
}

// optionValue returns the cached value of a selected option, computing its
// producer on first use. LSE values persist across iterations; CSE values
// live for one iteration. When a cross-run intermediate cache is attached,
// loop-constant values are looked up there first and offered back after
// computation, so concurrent queries against the same dataset reuse each
// other's hoisted intermediates instead of recomputing them. When a
// shared-producer coordinator is attached (MQO), a missed loop-constant
// value is additionally negotiated with sibling runs mid-batch: adopt a
// sibling's production, or produce once for the whole batch.
func (e *executor) optionValue(o *search.Option) (*distmat.DistMatrix, error) {
	cache := e.cseCache
	if o.Kind == search.LSE {
		cache = e.lseCache
	}
	if v, ok := cache[o.Key]; ok {
		return v, nil
	}
	pp, ok := e.producers[o.Key]
	if !ok {
		return nil, fmt.Errorf("no producer for option %q", o.Key)
	}
	interKey := ""
	if o.Kind == search.LSE && (e.inter != nil || e.shared != nil) {
		if sig := costgraph.ProducerSig(pp.Root); sig != "" {
			if o.Occs[0].Flipped {
				// A flipped producer computes the transposed chain and then
				// transposes back: a distinct kernel sequence, so a distinct
				// key (the cached value must be bitwise-reproducible).
				sig += "|f"
			}
			interKey = o.Key + "|" + sig
			if e.inter != nil {
				if iv, ok := e.inter.Get(interKey); ok {
					// Reuse costs nothing on the simulated cluster: the value is
					// already resident from the producing query (the serving
					// layer charges its memory against the cache byte budget).
					v := distmat.New(e.ctx, iv.Data, iv.VRows, iv.VCols)
					cache[o.Key] = v
					return v, nil
				}
			}
		}
	}
	lead := false
	if interKey != "" && e.shared != nil {
		iv, role, err := e.shared.Acquire(e.goCtx, interKey)
		if err != nil {
			return nil, err
		}
		switch role {
		case SharedHit:
			// A sibling query in the batch produced this value (under the
			// same key, hence through the identical kernel sequence);
			// adopting it costs nothing on this run's simulated cluster,
			// exactly like a cross-run intermediate hit.
			v := distmat.New(e.ctx, iv.Data, iv.VRows, iv.VCols)
			cache[o.Key] = v
			return v, nil
		case SharedLead:
			lead = true
		}
	}
	flopBefore := 0.0
	if lead {
		flopBefore = e.ctx.Cluster.Stats().FLOP
	}
	var v *distmat.DistMatrix
	var err error
	switch {
	case o.Kind == search.CSEGroup:
		v, err = e.groupValue(o)
	default:
		occ := o.Occs[0]
		b := e.c.Coords.Blocks[occ.Block]
		v, err = e.evalOpNode(b, pp.Root)
		if err == nil && occ.Flipped {
			// The producer computed the first occurrence's orientation;
			// normalize the cache to canonical form.
			v = v.Transpose()
		}
	}
	if err != nil {
		if lead {
			// Settle the claim so waiting siblings fail typed (or, for a
			// cancellation specific to this run, promote a new leader)
			// instead of blocking on an abandoned production.
			e.shared.Fail(interKey, err)
		}
		return nil, err
	}
	if o.Kind == search.LSE && e.checkpoint {
		// Loop-hoisted values live for the whole run: paying one DFS write
		// here converts every later failure's recompute into a DFS read.
		v.Checkpoint()
	}
	if lead {
		vr, vc := v.VirtualDims()
		e.shared.Publish(interKey, Intermediate{Data: v.Data(), VRows: vr, VCols: vc},
			e.ctx.Cluster.Stats().FLOP-flopBefore)
	}
	if interKey != "" && e.inter != nil {
		vr, vc := v.VirtualDims()
		e.inter.Put(interKey, Intermediate{Data: v.Data(), VRows: vr, VCols: vc})
	}
	cache[o.Key] = v
	return v, nil
}

// groupValue computes a cross-block grouped sum (the first pair of
// occurrences added together).
func (e *executor) groupValue(o *search.Option) (*distmat.DistMatrix, error) {
	if len(o.Occs) < 2 {
		return nil, fmt.Errorf("group option %q has %d occurrences", o.Key, len(o.Occs))
	}
	var total *distmat.DistMatrix
	for i := 0; i < 2; i++ {
		occ := o.Occs[i]
		b := e.c.Coords.Blocks[occ.Block]
		v, err := e.evalSpan(b, occ.Lo, occ.Hi)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = v
		} else {
			total = total.Add(v)
		}
	}
	return total, nil
}

// evalSpan evaluates a chain span right-associatively (used for group
// members, whose internal order is not resolved by a block plan).
func (e *executor) evalSpan(b *chain.Block, lo, hi int) (*distmat.DistMatrix, error) {
	v, err := e.atomValue(b.Atoms[hi])
	if err != nil {
		return nil, err
	}
	for i := hi - 1; i >= lo; i-- {
		l, err := e.atomValue(b.Atoms[i])
		if err != nil {
			return nil, err
		}
		v = l.Mul(v)
	}
	return v, nil
}

// cond evaluates a loop condition over the scalar environment.
func (e *executor) cond(expr lang.Expr) (bool, error) {
	v, err := e.condValue(expr)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

func (e *executor) condValue(expr lang.Expr) (float64, error) {
	switch expr := expr.(type) {
	case *lang.Num:
		return expr.V, nil
	case *lang.Ref:
		v, err := e.lookup(expr.Name)
		if err != nil {
			return 0, err
		}
		if !v.Data().IsScalar() {
			return 0, fmt.Errorf("loop condition uses non-scalar %q", expr.Name)
		}
		return v.Data().ScalarValue(), nil
	case *lang.Un:
		v, err := e.condValue(expr.X)
		return -v, err
	case *lang.Bin:
		l, err := e.condValue(expr.L)
		if err != nil {
			return 0, err
		}
		r, err := e.condValue(expr.R)
		if err != nil {
			return 0, err
		}
		switch expr.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			return l / r, nil
		case "<":
			return b2f(l < r), nil
		case ">":
			return b2f(l > r), nil
		case "<=":
			return b2f(l <= r), nil
		case ">=":
			return b2f(l >= r), nil
		case "==":
			return b2f(l == r), nil
		case "!=":
			return b2f(l != r), nil
		}
		return 0, fmt.Errorf("bad condition operator %q", expr.Op)
	case *lang.Call:
		if expr.Fn == "abs" || expr.Fn == "sqrt" {
			v, err := e.condValue(expr.Args[0])
			if err != nil {
				return 0, err
			}
			if expr.Fn == "abs" {
				return math.Abs(v), nil
			}
			return math.Sqrt(v), nil
		}
		return 0, fmt.Errorf("function %q not allowed in conditions", expr.Fn)
	}
	return 0, fmt.Errorf("unsupported condition expression %T", expr)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
