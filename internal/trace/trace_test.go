package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/sparsity"
)

// sampleBreakdown is a fixed operator cost used across the tests.
func sampleBreakdown() cost.Breakdown {
	bd := cost.Breakdown{
		ComputeSec:  1.5,
		TransmitSec: 0.5,
		FLOP:        2e9,
		Method:      cost.BMM,
	}
	bd.Bytes[cluster.Shuffle] = 1e6
	bd.Bytes[cluster.Broadcast] = 2e6
	return bd
}

func TestOpSpanFields(t *testing.T) {
	in := sparsity.MetaDims(100, 50, 0.1)
	out := sparsity.MetaDims(100, 10, 0.5)
	s := Op("mul", "mul/BMM", sampleBreakdown(), []sparsity.Meta{in, in}, &out, 42*time.Nanosecond)
	if s.Kind != "mul" || s.Label != "mul/BMM" || s.Method != "BMM" {
		t.Fatalf("kind/label/method = %q/%q/%q", s.Kind, s.Label, s.Method)
	}
	if len(s.In) != 2 || s.In[0].Rows != 100 || s.In[0].Sparsity != 0.1 {
		t.Fatalf("inputs not recorded: %+v", s.In)
	}
	if s.Out == nil || s.Out.Cols != 10 {
		t.Fatalf("output not recorded: %+v", s.Out)
	}
	if s.TotalSec() != 2.0 {
		t.Errorf("TotalSec = %g, want 2", s.TotalSec())
	}
	if s.Bytes["shuffle"] != 1e6 || s.Bytes["broadcast"] != 2e6 {
		t.Errorf("bytes map wrong: %v", s.Bytes)
	}
	if _, ok := s.Bytes["collect"]; ok {
		t.Error("uncharged primitives must not appear in the bytes map")
	}
	if s.WallNS != 42 {
		t.Errorf("WallNS = %d, want 42", s.WallNS)
	}
}

// TestSpanJSONGolden pins the serialized span schema: external consumers of
// the -trace JSONL files depend on these exact keys.
func TestSpanJSONGolden(t *testing.T) {
	rec := NewRun("dfp/cri2/adaptive")
	stmt := rec.Begin("stmt", "g")
	out := sparsity.MetaDims(100, 10, 0.5)
	rec.Record(Op("mul", "mul/BMM", sampleBreakdown(), []sparsity.Meta{sparsity.MetaDims(100, 50, 0.1)}, &out, 42*time.Nanosecond))
	rec.End(stmt)

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	got, err := json.Marshal(spans[1])
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":2,"parent":1,"kind":"mul","label":"mul/BMM","run":"dfp/cri2/adaptive",` +
		`"method":"BMM","local":false,` +
		`"in":[{"rows":100,"cols":50,"sparsity":0.1}],` +
		`"out":{"rows":100,"cols":10,"sparsity":0.5},` +
		`"flop":2000000000,"compute_sec":1.5,"transmit_sec":0.5,` +
		`"bytes":{"broadcast":2000000,"shuffle":1000000},"wall_ns":42}`
	if string(got) != want {
		t.Errorf("span JSON schema drifted:\n got %s\nwant %s", got, want)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if id := r.Record(Span{Kind: "mul"}); id != 0 {
		t.Error("nil Record should return 0")
	}
	id := r.Begin("stmt", "x")
	r.End(id)
	if r.Spans() != nil {
		t.Error("nil Spans should be nil")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if s := r.Summary(); s.Ops != 0 {
		t.Error("nil Summary should be empty")
	}
	if r.Slowest(3) != nil {
		t.Error("nil Slowest should be nil")
	}
	if len(r.GroupCosts("stmt")) != 0 {
		t.Error("nil GroupCosts should be empty")
	}
}

func TestParentingAndNesting(t *testing.T) {
	rec := New()
	iter := rec.Begin("iteration", "iteration 1")
	stmt := rec.Begin("stmt", "g")
	op := rec.Record(Span{Kind: "mul", Label: "mul/BMM"})
	rec.End(stmt)
	orphanStmt := rec.Begin("stmt", "x")
	rec.End(orphanStmt)
	rec.End(iter)
	after := rec.Record(Span{Kind: "sum", Label: "sum"})

	spans := rec.Spans()
	byID := map[int64]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	if byID[stmt].Parent != iter {
		t.Errorf("stmt parent = %d, want iteration %d", byID[stmt].Parent, iter)
	}
	if byID[op].Parent != stmt {
		t.Errorf("op parent = %d, want stmt %d", byID[op].Parent, stmt)
	}
	if byID[after].Parent != 0 {
		t.Errorf("span after all Ends should have no parent, got %d", byID[after].Parent)
	}
	if !byID[iter].Group || byID[op].Group {
		t.Error("group flags wrong")
	}
	if byID[iter].WallNS < byID[stmt].WallNS {
		t.Error("enclosing group wall time should cover the inner group")
	}
}

func TestSummaryAggregatesOperatorSpansOnly(t *testing.T) {
	rec := New()
	id := rec.Begin("stmt", "g")
	bd := sampleBreakdown()
	out := sparsity.MetaDims(10, 10, 1)
	rec.Record(Op("mul", "mul/BMM", bd, nil, &out, 0))
	rec.Record(Op("mul", "mul/CPMM", bd, nil, &out, 0))
	rec.Record(Op("ewise", "ewise/+", cost.Breakdown{ComputeSec: 0.25, FLOP: 1e6}, nil, &out, 0))
	rec.End(id)

	sum := rec.Summary()
	if sum.Ops != 3 {
		t.Fatalf("Ops = %d, want 3 (group spans excluded)", sum.Ops)
	}
	if sum.FLOP != 2*2e9+1e6 {
		t.Errorf("FLOP = %g", sum.FLOP)
	}
	if sum.ComputeSec != 3.25 || sum.TransmitSec != 1.0 {
		t.Errorf("seconds = %g/%g", sum.ComputeSec, sum.TransmitSec)
	}
	if sum.Bytes["shuffle"] != 2e6 || sum.Bytes["broadcast"] != 4e6 {
		t.Errorf("bytes = %v", sum.Bytes)
	}
	if len(sum.ByKind) != 2 || sum.ByKind[0].Kind != "mul" || sum.ByKind[1].Kind != "ewise" {
		t.Fatalf("ByKind order wrong: %+v", sum.ByKind)
	}
	if sum.ByKind[0].Ops != 2 || sum.ByKind[0].TotalSec() != 4.0 {
		t.Errorf("mul kind stat wrong: %+v", sum.ByKind[0])
	}
}

func TestSlowest(t *testing.T) {
	rec := New()
	for _, sec := range []float64{1, 5, 3, 2} {
		rec.Record(Span{Kind: "mul", ComputeSec: sec})
	}
	rec.Begin("stmt", "never the slowest")
	top := rec.Slowest(2)
	if len(top) != 2 || top[0].ComputeSec != 5 || top[1].ComputeSec != 3 {
		t.Fatalf("Slowest(2) = %+v", top)
	}
	if len(rec.Slowest(100)) != 4 {
		t.Error("Slowest must cap at the operator span count")
	}
}

func TestGroupCosts(t *testing.T) {
	rec := New()
	// Statement "g" runs twice (two iterations), "x" once, plus one charge
	// outside any statement.
	rec.Record(Span{Kind: "dfs-read", TransmitSec: 7})
	for i := 0; i < 2; i++ {
		iter := rec.Begin("iteration", "iteration")
		g := rec.Begin("stmt", "g")
		rec.Record(Span{Kind: "mul", ComputeSec: 1, TransmitSec: 2, FLOP: 10})
		rec.End(g)
		rec.End(iter)
	}
	x := rec.Begin("stmt", "x")
	rec.Record(Span{Kind: "ewise", ComputeSec: 0.5})
	rec.End(x)

	costs := rec.GroupCosts("stmt")
	if len(costs) != 3 {
		t.Fatalf("got %d groups: %+v", len(costs), costs)
	}
	if costs[0].Label != "" || costs[0].Ops != 1 || costs[0].TransmitSec != 7 {
		t.Errorf("orphan group wrong: %+v", costs[0])
	}
	if costs[1].Label != "g" || costs[1].Executions != 2 || costs[1].Ops != 2 ||
		costs[1].ComputeSec != 2 || costs[1].TransmitSec != 4 || costs[1].FLOP != 20 {
		t.Errorf("statement g wrong: %+v", costs[1])
	}
	if costs[2].Label != "x" || costs[2].Executions != 1 || costs[2].Ops != 1 {
		t.Errorf("statement x wrong: %+v", costs[2])
	}

	text := FormatGroupCosts(costs)
	if !strings.Contains(text, "(outside statements)") || !strings.Contains(text, "g") {
		t.Errorf("formatted table missing rows:\n%s", text)
	}
}

func TestWriteJSONLValid(t *testing.T) {
	rec := NewRun("run")
	id := rec.Begin("stmt", "g")
	out := sparsity.MetaDims(4, 4, 1)
	rec.Record(Op("mul", "mul/local", cost.Breakdown{ComputeSec: 1, Method: cost.LocalOp, Local: true}, nil, &out, time.Microsecond))
	rec.End(id)

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d invalid: %v", lines+1, err)
		}
		if s.Run != "run" {
			t.Errorf("line %d run label = %q", lines+1, s.Run)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d lines, want 2", lines)
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	rec := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := rec.Begin("stmt", "s")
				rec.Record(Span{Kind: "mul", ComputeSec: 1})
				rec.End(id)
				rec.Spans()
				rec.Summary()
			}
		}()
	}
	wg.Wait()
	sum := rec.Summary()
	if sum.Ops != 16*50 || sum.ComputeSec != 16*50 {
		t.Fatalf("lost spans: ops=%d compute=%g", sum.Ops, sum.ComputeSec)
	}
	// IDs must stay unique under concurrency.
	seen := map[int64]bool{}
	for _, s := range rec.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}
