// Package trace implements the structured tracing and metrics subsystem of
// the execution stack. Every charged operator emits a Span — operator kind
// and label, input/output sparsity metadata, simulated compute/transmit
// seconds, per-primitive bytes, locality, the physical method the cost
// model selected, and real kernel wall-clock nanoseconds — collected into a
// per-run Recorder. Statement and iteration boundaries enclose operator
// spans as zero-cost group spans, so per-statement cost tables fall out of
// the same record.
//
// The key invariant: summed span seconds and bytes over operator spans
// equal the cluster's Stats() totals exactly, because distmat mirrors every
// ChargeProfile call with one span (see Context.apply). Tests cross-check
// this, so accounting drift between the trace and the simulated clock is
// caught immediately.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/sparsity"
)

// Shape is the sparsity metadata of one operand as recorded in a span.
type Shape struct {
	Rows     int64   `json:"rows"`
	Cols     int64   `json:"cols"`
	Sparsity float64 `json:"sparsity"`
}

// ShapeOf converts estimation metadata to the span form.
func ShapeOf(m sparsity.Meta) Shape {
	return Shape{Rows: m.Rows, Cols: m.Cols, Sparsity: m.Sparsity}
}

// Span is one traced operator execution, or (Group true) one
// statement/iteration boundary enclosing operator spans.
type Span struct {
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Kind is the operator family ("mul", "ewise", "sum", "dfs-read", ...)
	// or, for group spans, the boundary kind ("stmt", "iteration").
	Kind string `json:"kind"`
	// Label refines the kind: "mul/BMM", "ewise/+", a statement target.
	Label string `json:"label"`
	// Group marks boundary spans, which carry no cost of their own.
	Group bool `json:"group,omitempty"`
	// Fault marks retry/recovery spans injected by the fault model. They
	// carry RecoverySec (and possibly retransmitted Bytes) but are not
	// operator executions, so Summary counts them separately from Ops.
	Fault bool `json:"fault,omitempty"`
	// Run labels the run the span belongs to (set by the recorder, e.g. the
	// bench configuration).
	Run string `json:"run,omitempty"`

	// Method is the physical implementation the cost model selected.
	Method string `json:"method,omitempty"`
	// Local reports driver-memory (vs distributed) execution.
	Local bool `json:"local"`
	// In and Out carry the virtual-scale operand/result metadata.
	In  []Shape `json:"in,omitempty"`
	Out *Shape  `json:"out,omitempty"`

	FLOP        float64 `json:"flop"`
	ComputeSec  float64 `json:"compute_sec"`
	TransmitSec float64 `json:"transmit_sec"`
	// RecoverySec is the simulated time a fault span spent in backoff,
	// retransmission, straggling or recomputation (fault spans only).
	RecoverySec float64 `json:"recovery_sec,omitempty"`
	// RelErr is the measured relative error a coded decode introduced into
	// the reconstructed blocks (recovery/coded-decode spans only): results
	// on the parity-decode path are tolerance-bounded rather than bitwise
	// identical, and the span flags by exactly how much.
	RelErr float64 `json:"rel_err,omitempty"`
	// Bytes maps primitive name → simulated volume; only charged primitives
	// appear.
	Bytes map[string]float64 `json:"bytes,omitempty"`
	// WallNS is real kernel wall-clock nanoseconds (for group spans, the
	// whole enclosed region).
	WallNS int64 `json:"wall_ns"`
}

// TotalSec returns the span's simulated seconds, recovery included.
func (s Span) TotalSec() float64 { return s.ComputeSec + s.TransmitSec + s.RecoverySec }

// Op builds an operator span from a cost breakdown. The caller supplies the
// real kernel wall time; in/out may be nil for operators without matrix
// operands or results.
func Op(kind, label string, bd cost.Breakdown, in []sparsity.Meta, out *sparsity.Meta, wall time.Duration) Span {
	s := Span{
		Kind:        kind,
		Label:       label,
		Method:      bd.Method.String(),
		Local:       bd.Local,
		FLOP:        bd.FLOP,
		ComputeSec:  bd.ComputeSec,
		TransmitSec: bd.TransmitSec,
		WallNS:      wall.Nanoseconds(),
	}
	for _, m := range in {
		s.In = append(s.In, ShapeOf(m))
	}
	if out != nil {
		o := ShapeOf(*out)
		s.Out = &o
	}
	for _, p := range cluster.Primitives {
		if b := bd.Bytes[p]; b != 0 {
			if s.Bytes == nil {
				s.Bytes = map[string]float64{}
			}
			s.Bytes[p.String()] = b
		}
	}
	return s
}

// FaultOp builds a retry/recovery span. kind is the span family ("fault"
// for injected events, "recovery" for lineage/checkpoint repairs), label
// refines it with the fault kind or recovery policy. flop is the recompute
// FLOP (zero for retries), bytes the retransmitted or re-read volume
// indexed by cluster.Primitive.
func FaultOp(kind, label string, recoverySec, flop float64, bytes [4]float64) Span {
	s := Span{
		Kind:        kind,
		Label:       label,
		Fault:       true,
		RecoverySec: recoverySec,
		FLOP:        flop,
	}
	for _, p := range cluster.Primitives {
		if b := bytes[p]; b != 0 {
			if s.Bytes == nil {
				s.Bytes = map[string]float64{}
			}
			s.Bytes[p.String()] = b
		}
	}
	return s
}

// Recorder collects the spans of one run. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so callers thread an
// optional recorder without guarding every call site.
type Recorder struct {
	run string

	mu     sync.Mutex
	spans  []Span
	stack  []int64
	starts map[int64]time.Time
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// NewRun returns a recorder that stamps every span with a run label.
func NewRun(run string) *Recorder { return &Recorder{run: run} }

// Record appends an operator span, assigning its ID and parenting it under
// the innermost open group span. It returns the assigned ID (0 when the
// recorder is nil).
func (r *Recorder) Record(s Span) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.record(s)
}

func (r *Recorder) record(s Span) int64 {
	s.ID = int64(len(r.spans) + 1)
	s.Run = r.run
	if n := len(r.stack); n > 0 && s.Parent == 0 {
		s.Parent = r.stack[n-1]
	}
	r.spans = append(r.spans, s)
	return s.ID
}

// Begin opens a group span (statement/iteration boundary). Operator spans
// recorded before the matching End are parented under it. Returns the group
// span's ID (0 when the recorder is nil).
func (r *Recorder) Begin(kind, label string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.record(Span{Kind: kind, Label: label, Group: true})
	r.stack = append(r.stack, id)
	if r.starts == nil {
		r.starts = map[int64]time.Time{}
	}
	r.starts[id] = time.Now()
	return id
}

// End closes a group span opened by Begin, recording its real wall time.
func (r *Recorder) End(id int64) {
	if r == nil || id <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id <= int64(len(r.spans)) {
		r.spans[id-1].WallNS = time.Since(r.starts[id]).Nanoseconds()
		delete(r.starts, id)
	}
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == id {
			r.stack = append(r.stack[:i:i], r.stack[i+1:]...)
			break
		}
	}
}

// Spans returns a snapshot of the recorded spans in record order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// WriteJSONL writes one JSON object per span per line (the remac-bench
// -trace format).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// KindStat aggregates the operator spans of one kind.
type KindStat struct {
	Kind        string
	Ops         int
	FLOP        float64
	ComputeSec  float64
	TransmitSec float64
	// RecoverySec sums the fault/recovery time booked under this kind.
	RecoverySec float64
	Bytes       map[string]float64
}

// TotalSec returns the kind's simulated seconds, recovery included.
func (k KindStat) TotalSec() float64 { return k.ComputeSec + k.TransmitSec + k.RecoverySec }

// Summary is the aggregate view of a recording over operator (non-group)
// spans. Its totals satisfy the stats-equals-spans invariant against
// cluster.Stats: Ops, FLOP, seconds and bytes cover operator spans, while
// fault spans contribute only Faults, RecoverySec, RecomputeFLOP and their
// retransmitted Bytes — mirroring how the cluster books them.
type Summary struct {
	Ops         int
	FLOP        float64
	ComputeSec  float64
	TransmitSec float64
	// Faults counts fault/recovery spans (not included in Ops).
	Faults int
	// RecoverySec sums fault-span recovery seconds (matches
	// Stats.RecoverySec).
	RecoverySec float64
	// RecomputeFLOP sums fault-span FLOP (matches Stats.RecomputeFLOP).
	RecomputeFLOP float64
	// Bytes accumulates per-primitive volumes across all operator and fault
	// spans.
	Bytes map[string]float64
	// ByKind aggregates per operator kind, sorted by descending simulated
	// seconds.
	ByKind []KindStat
}

// TotalSec returns the summed simulated seconds, recovery included.
func (s Summary) TotalSec() float64 { return s.ComputeSec + s.TransmitSec + s.RecoverySec }

// Summary aggregates the recording.
func (r *Recorder) Summary() Summary {
	sum := Summary{Bytes: map[string]float64{}}
	byKind := map[string]*KindStat{}
	for _, s := range r.Spans() {
		if s.Group {
			continue
		}
		k := byKind[s.Kind]
		if k == nil {
			k = &KindStat{Kind: s.Kind, Bytes: map[string]float64{}}
			byKind[s.Kind] = k
		}
		for p, b := range s.Bytes {
			sum.Bytes[p] += b
			k.Bytes[p] += b
		}
		if s.Fault {
			sum.Faults++
			sum.RecoverySec += s.RecoverySec
			sum.RecomputeFLOP += s.FLOP
			k.Ops++
			k.RecoverySec += s.RecoverySec
			continue
		}
		sum.Ops++
		sum.FLOP += s.FLOP
		sum.ComputeSec += s.ComputeSec
		sum.TransmitSec += s.TransmitSec
		k.Ops++
		k.FLOP += s.FLOP
		k.ComputeSec += s.ComputeSec
		k.TransmitSec += s.TransmitSec
	}
	for _, k := range byKind {
		sum.ByKind = append(sum.ByKind, *k)
	}
	sort.Slice(sum.ByKind, func(i, j int) bool {
		a, b := sum.ByKind[i], sum.ByKind[j]
		if a.TotalSec() != b.TotalSec() {
			return a.TotalSec() > b.TotalSec()
		}
		return a.Kind < b.Kind
	})
	return sum
}

// Slowest returns the k operator spans with the largest simulated total
// seconds, slowest first.
func (r *Recorder) Slowest(k int) []Span {
	var ops []Span
	for _, s := range r.Spans() {
		if !s.Group {
			ops = append(ops, s)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].TotalSec() > ops[j].TotalSec() })
	if k < len(ops) {
		ops = ops[:k]
	}
	return ops
}

// GroupCost aggregates the operator spans enclosed by group spans sharing a
// label — e.g. one statement across all iterations.
type GroupCost struct {
	Label string
	// Executions counts the group spans (e.g. times the statement ran).
	Executions int
	// Ops counts the enclosed operator spans (fault spans excluded).
	Ops         int
	FLOP        float64
	ComputeSec  float64
	TransmitSec float64
	// RecoverySec sums enclosed fault-span recovery time.
	RecoverySec float64
	WallNS      int64
}

// TotalSec returns the group's simulated seconds, recovery included.
func (g GroupCost) TotalSec() float64 { return g.ComputeSec + g.TransmitSec + g.RecoverySec }

// GroupCosts aggregates operator spans by the label of their nearest
// enclosing group span of the given kind (e.g. "stmt" for the per-statement
// simulated-cost table), in first-execution order. Operator spans with no
// such ancestor are collected under the empty label, first.
func (r *Recorder) GroupCosts(kind string) []GroupCost {
	spans := r.Spans()
	byID := make(map[int64]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	enclosing := func(s Span) string {
		for p := s.Parent; p != 0; {
			ps, ok := byID[p]
			if !ok {
				break
			}
			if ps.Group && ps.Kind == kind {
				return ps.Label
			}
			p = ps.Parent
		}
		return ""
	}
	byLabel := map[string]*GroupCost{}
	var order []string
	get := func(label string) *GroupCost {
		g := byLabel[label]
		if g == nil {
			g = &GroupCost{Label: label}
			byLabel[label] = g
			order = append(order, label)
		}
		return g
	}
	for _, s := range spans {
		if s.Group {
			if s.Kind == kind {
				g := get(s.Label)
				g.Executions++
				g.WallNS += s.WallNS
			}
			continue
		}
		g := get(enclosing(s))
		if s.Fault {
			g.RecoverySec += s.RecoverySec
			continue
		}
		g.Ops++
		g.FLOP += s.FLOP
		g.ComputeSec += s.ComputeSec
		g.TransmitSec += s.TransmitSec
	}
	out := make([]GroupCost, 0, len(order))
	for _, label := range order {
		if g := byLabel[label]; g.Ops > 0 || g.Executions > 0 {
			out = append(out, *g)
		}
	}
	return out
}

// FormatGroupCosts renders a group-cost table (the remac-explain
// per-statement view).
func FormatGroupCosts(costs []GroupCost) string {
	var b []byte
	b = fmt.Appendf(b, "%-24s %6s %8s %12s %12s %12s\n",
		"statement", "execs", "ops", "compute(s)", "transmit(s)", "total(s)")
	for _, g := range costs {
		label := g.Label
		if label == "" {
			label = "(outside statements)"
		}
		b = fmt.Appendf(b, "%-24s %6d %8d %12.3f %12.3f %12.3f\n",
			label, g.Executions, g.Ops, g.ComputeSec, g.TransmitSec, g.TotalSec())
	}
	return string(b)
}
