package opt

import (
	"testing"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/costgraph"
	"remac/internal/data"
	"remac/internal/search"
	"remac/internal/sparsity"
)

func metasFor(ds *data.Dataset) map[string]sparsity.Meta {
	return map[string]sparsity.Meta{
		"A":  sparsity.Virtualize(sparsity.MetaOf(ds.A), ds.VRows, ds.VCols),
		"b":  sparsity.Virtualize(sparsity.MetaOf(ds.Label()), ds.VRows, 1),
		"H0": sparsity.Virtualize(sparsity.MetaOf(ds.InitialH()), ds.VCols, ds.VCols),
		"x0": sparsity.Virtualize(sparsity.MetaOf(ds.InitialX()), ds.VCols, 1),
	}
}

func compileDFP(t *testing.T, dsName string, cfg Config) *Compiled {
	t.Helper()
	prog := algorithms.MustProgram(algorithms.DFP, 5)
	if cfg.Cluster.Nodes == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 5
	}
	c, err := Compile(prog, metasFor(data.MustLoad(dsName)), cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestCompileNoElimination(t *testing.T) {
	c := compileDFP(t, "cri2", Config{Strategy: NoElimination})
	if c.Search != nil {
		t.Fatal("SystemDS* must not search for options")
	}
	if len(c.SelectedKeys) != 0 {
		t.Fatal("no options expected")
	}
	if !c.UsesRawBody {
		t.Fatal("baselines execute the raw statement trees")
	}
	// The baseline still gets cost-ordered chain plans (stock SystemDS
	// optimizes multiplication order; only elimination is off).
	if c.Decision == nil || len(c.Decision.Selected) != 0 {
		t.Fatal("baseline decision must exist with zero selected options")
	}
}

func TestCompileAdaptiveSelectsOptions(t *testing.T) {
	c := compileDFP(t, "cri1", Config{Strategy: Adaptive, Estimator: sparsity.MNC{}})
	if c.Decision == nil || len(c.Decision.Selected) == 0 {
		t.Fatal("adaptive should select options on cri1")
	}
	if c.Search == nil || len(c.Search.Options) == 0 {
		t.Fatal("search results missing")
	}
	if c.SearchTime <= 0 || c.TotalTime <= 0 {
		t.Fatal("timings missing")
	}
	if !c.SelectedKeys["A'·A"] {
		t.Errorf("AᵀA LSE expected on cri1; got %v", c.Decision.Keys())
	}
}

func TestConservativePreservesOrder(t *testing.T) {
	c := compileDFP(t, "cri2", Config{Strategy: Conservative})
	// Every selected option's occurrences must be intervals of the baseline
	// trees — verified structurally by re-deriving the baseline.
	if c.Decision == nil {
		t.Fatal("no decision")
	}
	// The conservative selection never includes options that would force a
	// different execution order; on DFP the AᵀA LSE changes the order, so
	// it must be absent.
	for _, key := range c.Decision.Keys() {
		if key == "A'·A" {
			t.Fatal("conservative strategy selected the order-changing AᵀA")
		}
	}
}

func TestAggressiveSelectsMoreThanConservative(t *testing.T) {
	cons := compileDFP(t, "cri2", Config{Strategy: Conservative})
	aggr := compileDFP(t, "cri2", Config{Strategy: Aggressive})
	if len(aggr.Decision.Selected) <= len(cons.Decision.Selected) {
		t.Fatalf("aggressive selected %d options, conservative %d",
			len(aggr.Decision.Selected), len(cons.Decision.Selected))
	}
}

func TestAutomaticSelectionsConflictFree(t *testing.T) {
	c := compileDFP(t, "cri2", Config{Strategy: Automatic})
	sel := c.Decision.Selected
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if search.Conflicts(sel[i], sel[j]) {
				t.Fatalf("automatic selected conflicting options %s and %s", sel[i].Key, sel[j].Key)
			}
		}
	}
	if len(sel) == 0 {
		t.Fatal("automatic selected nothing")
	}
}

func TestAdaptiveEnumCombiners(t *testing.T) {
	dp := compileDFP(t, "cri1", Config{Strategy: Adaptive, Combiner: DP})
	dfs := compileDFP(t, "cri1", Config{Strategy: Adaptive, Combiner: EnumDFS,
		EnumBudget: costgraph.EnumBudget{MaxCombos: 20000}})
	bfs := compileDFP(t, "cri1", Config{Strategy: Adaptive, Combiner: EnumBFS,
		EnumBudget: costgraph.EnumBudget{MaxCombos: 20000}})
	if dfs.Decision.Evaluated <= dp.Decision.Evaluated {
		t.Errorf("Enum-DFS evaluated %d combos, DP %d; Enum should work harder",
			dfs.Decision.Evaluated, dp.Decision.Evaluated)
	}
	// All should land within a small factor of each other in modelled cost.
	for _, d := range []*Compiled{dfs, bfs} {
		if d.Decision.TotalCost > dp.Decision.TotalCost*1.2 {
			t.Errorf("enum cost %.1f much worse than DP %.1f", d.Decision.TotalCost, dp.Decision.TotalCost)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	prog := algorithms.MustProgram(algorithms.DFP, 5)
	// Invalid input meta.
	_, err := Compile(prog, map[string]sparsity.Meta{"A": {Rows: -1}}, Config{
		Strategy: Adaptive, Cluster: cluster.DefaultConfig(), Iterations: 5,
	})
	if err == nil {
		t.Fatal("invalid input meta accepted")
	}
	// Missing inputs: InferMeta must fail.
	_, err = Compile(prog, nil, Config{Strategy: Adaptive, Cluster: cluster.DefaultConfig(), Iterations: 5})
	if err == nil {
		t.Fatal("missing inputs accepted")
	}
	// Invalid cluster.
	_, err = Compile(prog, metasFor(data.MustLoad("cri2")), Config{Strategy: Adaptive, Cluster: cluster.Config{}})
	if err == nil {
		t.Fatal("invalid cluster accepted")
	}
}

func TestStrategyAndCombinerStrings(t *testing.T) {
	wantS := map[Strategy]string{
		NoElimination: "SystemDS*", Explicit: "SystemDS", Conservative: "conservative",
		Aggressive: "aggressive", Automatic: "automatic", Adaptive: "adaptive",
	}
	for s, w := range wantS {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if DP.String() != "DP" || EnumDFS.String() != "Enum-DFS" || EnumBFS.String() != "Enum-BFS" {
		t.Error("combiner names changed")
	}
}

func TestResolverDerivedMetas(t *testing.T) {
	c := compileDFP(t, "cri2", Config{Strategy: Adaptive})
	g, ok := c.Resolver.MetaFor("g")
	if !ok {
		t.Fatal("derived meta for g missing")
	}
	if g.Rows != 8700 || g.Cols != 1 {
		t.Fatalf("g meta %dx%d, want 8700x1", g.Rows, g.Cols)
	}
	// Versioned symbols resolve to the base meta.
	h1, ok := c.Resolver.MetaFor("H#1")
	if !ok || h1.Rows != 8700 {
		t.Fatal("versioned symbol did not resolve")
	}
}

func TestMNCCompilationSlowerThanMD(t *testing.T) {
	// Fig 10(a): DP-MD beats DP-MNC in compilation time (MNC propagates
	// count sketches). Allow generous noise; assert only the direction on
	// the heavier estimator not being free.
	md := compileDFP(t, "cri3", Config{Strategy: Adaptive, Estimator: sparsity.Metadata{}})
	mnc := compileDFP(t, "cri3", Config{Strategy: Adaptive, Estimator: sparsity.MNC{}})
	if md.PlanTime <= 0 || mnc.PlanTime <= 0 {
		t.Fatal("plan times missing")
	}
}
