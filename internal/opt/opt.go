// Package opt is the optimizer pipeline: it compiles a parsed program
// through lowering, normalization, coordinate extraction, redundancy search
// and option selection, producing everything the engine needs to run. The
// six selection strategies of the evaluation are implemented here:
//
//	NoElimination — stock SystemDS with CSE disabled (SystemDS*)
//	Explicit      — stock SystemDS: identical-subtree CSE only
//	Conservative  — options that follow the original execution order (§6.3.1)
//	Aggressive    — all non-contradictory options, order-changing first
//	Automatic     — all non-contradictory options found by the block-wise
//	                search (§6.2.2: "applies as many options as possible")
//	Adaptive      — ReMac's cost-based combination (§4)
package opt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"remac/internal/chain"
	"remac/internal/cluster"
	"remac/internal/cost"
	"remac/internal/costgraph"
	"remac/internal/lang"
	"remac/internal/plan"
	"remac/internal/search"
	"remac/internal/sparsity"
)

// Strategy selects how elimination options are chosen.
type Strategy int

const (
	// NoElimination disables CSE and LSE entirely (SystemDS* in §6.2).
	NoElimination Strategy = iota
	// Explicit applies only identical-subtree CSE, like stock SystemDS.
	Explicit
	// Conservative applies options that preserve the original execution
	// order of operators.
	Conservative
	// Aggressive applies every applicable option, prioritizing those that
	// change the original execution order.
	Aggressive
	// Automatic applies as many block-wise options as possible.
	Automatic
	// Adaptive runs the cost-graph probing of §4.3.
	Adaptive
	// SPORESLike searches with the sampled equality-saturation baseline
	// (CSE only, no LSE) and applies everything it finds.
	SPORESLike
	// Manual applies exactly the options named in Config.ManualKeys —
	// used to reproduce specific combinations like Fig 3's "AᵀA, ddᵀ" bar.
	Manual
)

// String names the strategy as reported in experiment output.
func (s Strategy) String() string {
	switch s {
	case NoElimination:
		return "SystemDS*"
	case Explicit:
		return "SystemDS"
	case Conservative:
		return "conservative"
	case Aggressive:
		return "aggressive"
	case Automatic:
		return "automatic"
	case Adaptive:
		return "adaptive"
	case SPORESLike:
		return "SPORES"
	case Manual:
		return "manual"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Combiner selects the adaptive combination algorithm (Fig 10's DP vs Enum).
type Combiner int

const (
	// DP is the dynamic programming probing (the ReMac default).
	DP Combiner = iota
	// EnumDFS enumerates combinations depth-first.
	EnumDFS
	// EnumBFS enumerates combinations breadth-first.
	EnumBFS
)

// String names the combiner.
func (c Combiner) String() string {
	switch c {
	case DP:
		return "DP"
	case EnumDFS:
		return "Enum-DFS"
	default:
		return "Enum-BFS"
	}
}

// Config parameterizes compilation.
type Config struct {
	Strategy  Strategy
	Estimator sparsity.Estimator // nil → metadata-based
	Cluster   cluster.Config
	// Iterations is the expected loop trip count for LSE amortization.
	Iterations int
	Combiner   Combiner
	// EnumBudget bounds Enum combiners.
	EnumBudget costgraph.EnumBudget
	// ManualKeys names the option keys the Manual strategy applies, in
	// priority order (conflicting later keys are skipped).
	ManualKeys []string
}

// Resolver implements plan.Resolver over input metas, derived statement
// metas and a symmetry table.
type Resolver struct {
	metas map[string]sparsity.Meta
	sym   plan.SymTable
}

// MetaFor implements plan.Resolver.
func (r *Resolver) MetaFor(sym string) (sparsity.Meta, bool) {
	m, ok := r.metas[strings.SplitN(sym, "#", 2)[0]]
	return m, ok
}

// IsSymmetric implements plan.Resolver.
func (r *Resolver) IsSymmetric(sym string) bool { return r.sym.IsSymmetric(sym) }

// Compiled is a fully optimized program ready for execution.
type Compiled struct {
	Config   Config
	Program  *lang.Program
	Plans    *plan.Plans
	Resolver *Resolver
	// NormalizedBody holds the normalized trees the engine executes. For
	// option strategies it aligns with the non-inlined body statements
	// (inlined definitions are absorbed); for the SystemDS baselines
	// (UsesRawBody) it aligns with every body statement's raw tree.
	NormalizedBody []*plan.Node
	// UsesRawBody marks the SystemDS-style baselines: statement-by-
	// statement execution of uninlined trees with cost-ordered chains but
	// no elimination options.
	UsesRawBody bool
	Coords      *chain.Coordinates
	Search      *search.Result
	Decision    *costgraph.Decision
	// SelectedKeys is the set of applied option keys (empty for
	// NoElimination/Explicit).
	SelectedKeys map[string]bool
	// SearchTime and PlanTime split compilation like Fig 8(a)/10(a).
	SearchTime time.Duration
	PlanTime   time.Duration
	TotalTime  time.Duration
}

// SharedSubplan describes one loop-constant (LSE) producer of a compiled
// plan in cross-query shareable form — the per-plan canonical subexpression
// manifest a serving layer's MQO coordinator indexes batches by.
type SharedSubplan struct {
	// Key is the option's transpose-normalized canonical expression key
	// (chain.CanonicalKey form, e.g. "A'·A").
	Key string
	// ProducerSig is the producer plan's shape signature
	// (costgraph.ProducerSig); it pins the exact kernel sequence.
	ProducerSig string
	// Flipped marks a producer that computes the transposed chain and
	// transposes back (consumers matched via chain.Transposed).
	Flipped bool
	// SharedKey is the sharing-index key: Key + "|" + ProducerSig, with a
	// "|f" suffix when Flipped — byte-identical to the engine's
	// intermediate-cache key, so manifest entries and runtime
	// acquisitions meet in one namespace.
	SharedKey string
	// CostSec is the modelled cost of one full producer execution (what a
	// consumer saves by adopting instead of recomputing).
	CostSec float64
}

// SharedManifest lists the compiled plan's shareable loop-constant
// subexpressions, sorted by SharedKey. Nil when the decision selected no
// shareable LSE producers (including all non-adaptive strategies without
// producer plans).
func (c *Compiled) SharedManifest() []SharedSubplan {
	if c == nil || c.Decision == nil {
		return nil
	}
	var out []SharedSubplan
	for _, pp := range c.Decision.Producers {
		if pp == nil || pp.Option == nil || pp.Option.Kind != search.LSE {
			continue
		}
		sig := costgraph.ProducerSig(pp.Root)
		if sig == "" {
			continue
		}
		sp := SharedSubplan{Key: pp.Option.Key, ProducerSig: sig, CostSec: pp.Cost}
		if len(pp.Option.Occs) > 0 && pp.Option.Occs[0].Flipped {
			sp.Flipped = true
			sig += "|f"
		}
		sp.SharedKey = sp.Key + "|" + sig
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SharedKey < out[j].SharedKey })
	return out
}

// ErrCanceled reports a compilation or execution abandoned because its
// context was cancelled or its deadline expired. Both CompileCtx and
// engine.RunWithOptions wrap it, so callers can match one sentinel:
//
//	errors.Is(err, opt.ErrCanceled)
var ErrCanceled = errors.New("remac: canceled")

// Canceled wraps a context error in ErrCanceled, preserving the cause in
// the message. Returns nil for a nil cause.
func Canceled(phase string, cause error) error {
	if cause == nil {
		return nil
	}
	return fmt.Errorf("%s: %w (%v)", phase, ErrCanceled, cause)
}

// Compile runs the pipeline on a program with the given input metadata
// (virtual dimensions and sparsity per read() name).
func Compile(prog *lang.Program, inputs map[string]sparsity.Meta, cfg Config) (*Compiled, error) {
	return CompileCtx(context.Background(), prog, inputs, cfg)
}

// CompileCtx is Compile with cancellation threaded through the pipeline:
// the context is checked between phases and inside the block-wise search's
// window sweeps, so a cancelled or expired query stops compiling promptly
// and returns an error wrapping ErrCanceled.
func CompileCtx(ctx context.Context, prog *lang.Program, inputs map[string]sparsity.Meta, cfg Config) (*Compiled, error) {
	start := time.Now()
	if cfg.Estimator == nil {
		cfg.Estimator = sparsity.Metadata{}
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Canceled("opt: compile", err)
	}

	plans, err := plan.Build(prog)
	if err != nil {
		return nil, err
	}
	res, err := buildResolver(plans, inputs, cfg.Estimator)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Config:       cfg,
		Program:      prog,
		Plans:        plans,
		Resolver:     res,
		SelectedKeys: map[string]bool{},
	}

	// Extend the declared symmetry facts with provably symmetric derived
	// variables (e.g. DFP's H through its rank-two update), so the
	// canonical keys unify everything they can.
	sym := plan.InferSymmetry(plans, plan.SymTable(plans.Symmetric))
	for s := range sym {
		plans.Symmetric[s] = true
	}
	if cfg.Strategy == NoElimination || cfg.Strategy == Explicit {
		// SystemDS baselines: no inlining, no expansion — chains keep the
		// as-written structure (non-chain subtrees become opaque atoms) and
		// get cost-optimal multiplication order, which stock SystemDS also
		// applies; only CSE/LSE is disabled (or, for Explicit, limited to
		// identical subtrees at execution time).
		c.UsesRawBody = true
		for _, sp := range plans.Body {
			c.NormalizedBody = append(c.NormalizedBody, plan.PushDownTranspose(sp.Raw, sym))
		}
		coords, err := chain.Extract(c.NormalizedBody, res, sym)
		if err != nil {
			return nil, err
		}
		c.Coords = coords
		planner, err := costgraph.NewPlanner(costgraph.Config{
			Model:      cost.NewModel(cfg.Cluster, cfg.Estimator),
			Est:        cfg.Estimator,
			Iterations: cfg.Iterations,
		}, &search.Result{Coords: coords})
		if err != nil {
			return nil, err
		}
		c.Decision, err = planner.Decide(nil)
		if err != nil {
			return nil, err
		}
		c.TotalTime = time.Since(start)
		return c, nil
	}

	for _, root := range plans.SearchRoots() {
		c.NormalizedBody = append(c.NormalizedBody, plan.Normalize(root, sym))
	}
	coords, err := chain.Extract(c.NormalizedBody, res, sym)
	if err != nil {
		return nil, err
	}
	c.Coords = coords

	searchStart := time.Now()
	if cfg.Strategy == SPORESLike {
		c.Search = search.SPORES(coords, search.DefaultSPORESConfig())
	} else {
		c.Search, err = search.BlockWiseCtx(ctx, coords, cfg.Estimator)
		if err != nil {
			return nil, Canceled("opt: search", err)
		}
	}
	c.SearchTime = time.Since(searchStart)

	if err := ctx.Err(); err != nil {
		return nil, Canceled("opt: plan", err)
	}
	planStart := time.Now()
	planner, err := costgraph.NewPlanner(costgraph.Config{
		Model:      cost.NewModel(cfg.Cluster, cfg.Estimator),
		Est:        cfg.Estimator,
		Iterations: cfg.Iterations,
	}, c.Search)
	if err != nil {
		return nil, err
	}
	c.Decision, err = selectOptions(planner, c.Search, cfg)
	if err != nil {
		return nil, err
	}
	c.PlanTime = time.Since(planStart)
	for _, o := range c.Decision.Selected {
		c.SelectedKeys[o.Key] = true
	}
	c.TotalTime = time.Since(start)
	return c, nil
}

// buildResolver infers metadata for every symbol: inputs from the caller,
// derived variables by propagating through their defining trees in program
// order (pre statements, then one pass over the loop body).
func buildResolver(plans *plan.Plans, inputs map[string]sparsity.Meta, est sparsity.Estimator) (*Resolver, error) {
	r := &Resolver{metas: map[string]sparsity.Meta{}, sym: plan.SymTable(plans.Symmetric)}
	for name, m := range inputs {
		if err := m.Valid(); err != nil {
			return nil, fmt.Errorf("opt: input %q: %w", name, err)
		}
		r.metas[name] = m
	}
	infer := func(stmts []plan.StmtPlan) error {
		for _, sp := range stmts {
			m, err := plan.InferMeta(sp.Tree, r, est)
			if err != nil {
				return fmt.Errorf("opt: statement %s: %w", sp.Target, err)
			}
			if _, isInput := inputs[sp.Target]; !isInput {
				r.metas[sp.Target] = m
			}
		}
		return nil
	}
	if err := infer(plans.Pre); err != nil {
		return nil, err
	}
	if err := infer(plans.Body); err != nil {
		return nil, err
	}
	// A second body pass stabilizes shapes of loop-carried variables whose
	// first-pass inference used pre-loop metas.
	if err := infer(plans.Body); err != nil {
		return nil, err
	}
	return r, nil
}

// selectOptions applies the strategy.
func selectOptions(p *costgraph.Planner, res *search.Result, cfg Config) (*costgraph.Decision, error) {
	switch cfg.Strategy {
	case Adaptive:
		switch cfg.Combiner {
		case EnumDFS:
			return p.Enumerate(costgraph.DFS, cfg.EnumBudget)
		case EnumBFS:
			return p.Enumerate(costgraph.BFS, cfg.EnumBudget)
		default:
			return p.Probe()
		}
	case Conservative:
		return conservative(p, res)
	case Aggressive:
		return greedyAll(p, res, true)
	case Automatic:
		return greedyAll(p, res, false)
	case SPORESLike:
		// SPORES is cost-based (equality saturation extracts the cheapest
		// plan from its e-graph), so pick among its sampled options with
		// the prober rather than applying everything.
		return p.Probe()
	case Manual:
		return manual(p, cfg.ManualKeys)
	}
	return nil, fmt.Errorf("opt: strategy %v does not select options", cfg.Strategy)
}

// manual selects the named options in order, skipping conflicts with
// already-selected ones.
func manual(p *costgraph.Planner, keys []string) (*costgraph.Decision, error) {
	sel := make([]bool, len(p.Options()))
	for _, key := range keys {
		for i, o := range p.Options() {
			if o.Key != key || sel[i] {
				continue
			}
			ok := true
			for j, s := range sel {
				if s && p.Conflicts()[i][j] {
					ok = false
					break
				}
			}
			if ok {
				sel[i] = true
			}
		}
	}
	return p.Decide(sel)
}

// conservative selects the options whose occurrence spans all appear as
// operator intervals of the baseline (no-elimination) block trees — i.e.
// the options that follow the original execution order.
func conservative(p *costgraph.Planner, res *search.Result) (*costgraph.Decision, error) {
	base, _, err := p.BaselineTrees()
	if err != nil {
		return nil, err
	}
	intervals := map[[3]int]bool{}
	for _, bp := range base {
		bp.Root.Walk(func(n *costgraph.OpNode) {
			intervals[[3]int{bp.Block.ID, n.Lo, n.Hi}] = true
		})
	}
	sel := make([]bool, len(p.Options()))
	for i, o := range p.Options() {
		ok := true
		for _, occ := range o.Occs {
			if !intervals[[3]int{occ.Block, occ.Lo, occ.Hi}] {
				ok = false
				break
			}
		}
		if !ok || o.Kind == search.CSEGroup {
			continue
		}
		sel[i] = true
	}
	return p.Decide(sel)
}

// greedyAll selects every option that fits: conflicting options are skipped
// in priority order. With orderChangingFirst, options that change the
// original execution order are tried first (the aggressive strategy);
// otherwise LSE options and longer spans lead (the automatic strategy).
func greedyAll(p *costgraph.Planner, res *search.Result, orderChangingFirst bool) (*costgraph.Decision, error) {
	opts := p.Options()
	order := make([]int, len(opts))
	for i := range order {
		order[i] = i
	}
	var inBaseline map[int]bool
	if orderChangingFirst {
		base, _, err := p.BaselineTrees()
		if err != nil {
			return nil, err
		}
		intervals := map[[3]int]bool{}
		for _, bp := range base {
			bp.Root.Walk(func(n *costgraph.OpNode) {
				intervals[[3]int{bp.Block.ID, n.Lo, n.Hi}] = true
			})
		}
		inBaseline = map[int]bool{}
		for i, o := range opts {
			all := true
			for _, occ := range o.Occs {
				if !intervals[[3]int{occ.Block, occ.Lo, occ.Hi}] {
					all = false
					break
				}
			}
			inBaseline[i] = all
		}
	}
	weight := func(i int) int {
		w := 0
		for _, occ := range opts[i].Occs {
			w += occ.Len()
		}
		if opts[i].Kind == search.LSE {
			w *= 2
		}
		return w
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if orderChangingFirst && inBaseline[i] != inBaseline[j] {
			return !inBaseline[i] // order-changing first
		}
		wi, wj := weight(i), weight(j)
		if wi != wj {
			return wi > wj
		}
		return i < j
	})
	sel := make([]bool, len(opts))
	for _, i := range order {
		if opts[i].Kind == search.CSEGroup {
			continue
		}
		compatible := true
		for j, s := range sel {
			if s && p.Conflicts()[i][j] {
				compatible = false
				break
			}
		}
		if compatible {
			sel[i] = true
		}
	}
	return p.Decide(sel)
}
