package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"remac/internal/opt"
	"remac/internal/resilience"
)

// allClasses is every resilience taxonomy class with a wire name.
var allClasses = []resilience.Class{
	resilience.Internal,
	resilience.Overloaded,
	resilience.Canceled,
	resilience.Compile,
	resilience.Execution,
	resilience.MaxIterations,
	resilience.Integrity,
	resilience.Numeric,
	resilience.Quota,
}

// TestErrorTaxonomyRoundTrip: WriteError → ParseError is lossless for
// every resilience class — class, query id, stage and Retry-After all
// survive the wire, so a RemoteInstance handles shard failures through
// exactly the typed taxonomy an in-process caller sees.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	for _, class := range allClasses {
		in := &resilience.QueryError{
			Class:   class,
			QueryID: 42,
			Stage:   "execute",
			Err:     fmt.Errorf("synthetic %s failure", class),
		}
		if class == resilience.Quota {
			in.RetryAfter = 3 * time.Second
		}
		rec := httptest.NewRecorder()
		WriteError(rec, "rid-rt", in)

		if rec.Code != class.HTTPStatus() {
			t.Errorf("%s: wrote status %d, want %d", class, rec.Code, class.HTTPStatus())
		}
		if got := rec.Header().Get(RequestIDHeader); got != "rid-rt" {
			t.Errorf("%s: response header id %q, want rid-rt", class, got)
		}
		var body ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: error body is not JSON: %v", class, err)
		}
		if body.RequestID != "rid-rt" {
			t.Errorf("%s: body request_id %q, want rid-rt", class, body.RequestID)
		}

		out := ParseError(rec.Code, rec.Header(), rec.Body.Bytes())
		if out.Class != class {
			t.Errorf("%s: parsed back as %s", class, out.Class)
		}
		if out.QueryID != 42 || out.Stage != "execute" {
			t.Errorf("%s: parsed id/stage = %d/%q, want 42/execute", class, out.QueryID, out.Stage)
		}
		if !strings.Contains(out.Err.Error(), "synthetic") {
			t.Errorf("%s: parsed message %q lost the original text", class, out.Err)
		}
		switch class {
		case resilience.Quota:
			if out.RetryAfter != 3*time.Second {
				t.Errorf("Quota: parsed Retry-After %v, want 3s", out.RetryAfter)
			}
		case resilience.Overloaded:
			// WriteError defaults overload rejections to a 1s hint.
			if out.RetryAfter < time.Second {
				t.Errorf("Overloaded: parsed Retry-After %v, want >= 1s", out.RetryAfter)
			}
		}
	}
}

// TestParseErrorStatusFallback: an unparseable body degrades to the
// status-code mapping — 429 → Quota, 503 → Overloaded, 504 → Canceled,
// 400/413 → Compile, 422 → MaxIterations, anything else → Internal —
// with the raw text preserved in the message.
func TestParseErrorStatusFallback(t *testing.T) {
	cases := []struct {
		status int
		class  resilience.Class
	}{
		{http.StatusTooManyRequests, resilience.Quota},
		{http.StatusServiceUnavailable, resilience.Overloaded},
		{http.StatusGatewayTimeout, resilience.Canceled},
		{http.StatusBadRequest, resilience.Compile},
		{http.StatusRequestEntityTooLarge, resilience.Compile},
		{http.StatusUnprocessableEntity, resilience.MaxIterations},
		{http.StatusInternalServerError, resilience.Internal},
		{http.StatusBadGateway, resilience.Internal},
	}
	for _, c := range cases {
		qe := ParseError(c.status, http.Header{}, []byte("<html>not json</html>"))
		if qe.Class != c.class {
			t.Errorf("status %d parsed as %s, want %s", c.status, qe.Class, c.class)
		}
		if !strings.Contains(qe.Err.Error(), "not json") {
			t.Errorf("status %d: raw body text lost: %q", c.status, qe.Err)
		}
	}
}

// TestParseErrorRetryAfterHeader: the Retry-After header is authoritative
// over the body's retry_after_sec.
func TestParseErrorRetryAfterHeader(t *testing.T) {
	body, _ := json.Marshal(ErrorResponse{Error: "busy", Class: "overloaded", RetryAfterSec: 1})
	h := http.Header{}
	h.Set("Retry-After", "7")
	qe := ParseError(http.StatusServiceUnavailable, h, body)
	if qe.RetryAfter != 7*time.Second {
		t.Fatalf("Retry-After = %v, want 7s (header wins over body)", qe.RetryAfter)
	}
}

// TestClassFromStringRoundTrip: every class's wire name parses back to
// itself; unknown names report !ok.
func TestClassFromStringRoundTrip(t *testing.T) {
	for _, class := range allClasses {
		got, ok := resilience.ClassFromString(class.String())
		if !ok || got != class {
			t.Errorf("ClassFromString(%q) = %v,%v, want %v,true", class.String(), got, ok, class)
		}
	}
	if _, ok := resilience.ClassFromString("closed"); ok {
		t.Error("ClassFromString accepted the non-taxonomy drain marker")
	}
	if _, ok := resilience.ClassFromString("no-such-class"); ok {
		t.Error("ClassFromString accepted an unknown name")
	}
}

// TestStrategyNameRoundTrip: ParseStrategy(StrategyName(s)) == s for every
// strategy, so remote re-submission preserves elimination behavior.
func TestStrategyNameRoundTrip(t *testing.T) {
	for _, s := range []opt.Strategy{
		opt.Adaptive, opt.NoElimination, opt.Explicit,
		opt.Conservative, opt.Aggressive, opt.Automatic,
	} {
		back, err := ParseStrategy(StrategyName(s))
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if back != s {
			t.Errorf("strategy %v round-tripped to %v", s, back)
		}
	}
}

// TestDecodeQueryBodyCap: a body over the cap fails with a typed 413 JSON
// error; one under it decodes; malformed JSON is a Compile-class 400.
func TestDecodeQueryBodyCap(t *testing.T) {
	big := fmt.Sprintf(`{"algorithm":"DFP","dataset":"cri1","script":%q}`, strings.Repeat("x", 4096))
	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(big))
	if _, ok := DecodeQuery(rec, r, "rid-413", 256); ok {
		t.Fatal("oversize body decoded")
	}
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body = %d, want 413", rec.Code)
	}
	var body ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if body.Class != "payload-too-large" || body.RequestID != "rid-413" {
		t.Fatalf("413 body = %+v, want payload-too-large with request id", body)
	}

	rec = httptest.NewRecorder()
	r = httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"algorithm":"DFP","dataset":"cri1"}`))
	req, ok := DecodeQuery(rec, r, "rid-ok", 256)
	if !ok || req.Algorithm != "DFP" || req.Dataset != "cri1" {
		t.Fatalf("small body failed to decode: ok=%v req=%+v", ok, req)
	}

	rec = httptest.NewRecorder()
	r = httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"algorithm":`))
	if _, ok := DecodeQuery(rec, r, "rid-bad", 0); ok {
		t.Fatal("malformed body decoded")
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", rec.Code)
	}
	out := ParseError(rec.Code, rec.Header(), rec.Body.Bytes())
	if out.Class != resilience.Compile {
		t.Fatalf("malformed body parsed as %s, want compile", out.Class)
	}
}

// TestValueSummaryNonFiniteRoundTrip: a diverged solve's NaN/Inf norm
// must survive the wire as a string instead of killing the response with
// an encode failure.
func TestValueSummaryNonFiniteRoundTrip(t *testing.T) {
	for _, f := range []float64{3.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		in := ValueSummary{Rows: 2, Cols: 3, Frobenius: f}
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("norm %v failed to encode: %v", f, err)
		}
		var out ValueSummary
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("norm %v failed to decode from %s: %v", f, b, err)
		}
		if out.Rows != 2 || out.Cols != 3 {
			t.Fatalf("norm %v: shape lost: %+v", f, out)
		}
		if math.Float64bits(out.Frobenius) != math.Float64bits(f) {
			t.Fatalf("norm %v round-tripped to %v", f, out.Frobenius)
		}
	}
}

// TestWriteErrorUntypedDrainMarkers: the non-QueryError sentinels keep
// their historical statuses (503 draining, 503 overloaded) and ParseError
// maps them back by status.
func TestWriteErrorUntypedDrainMarkers(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, "rid-d", fmt.Errorf("wrapped: %w", errors.New("plain failure")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("plain error = %d, want 500", rec.Code)
	}
	qe := ParseError(rec.Code, rec.Header(), rec.Body.Bytes())
	if qe.Class != resilience.Internal {
		t.Fatalf("plain error parsed as %s, want internal", qe.Class)
	}
}
