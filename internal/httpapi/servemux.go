package httpapi

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"

	"remac/internal/resilience"
	"remac/internal/serve"
)

// ServeHandlerConfig parameterizes the single-shard HTTP front-end.
type ServeHandlerConfig struct {
	// MaxBodyBytes caps POST /query bodies (0: MaxQueryBodyBytes;
	// negative: unbounded).
	MaxBodyBytes int64
	// OnQuery, when non-nil, observes (and may adjust) every built query
	// just before submission — the chaos harness uses it to attach
	// execution-counting probes without touching the wire protocol.
	OnQuery func(q *serve.Query, r *http.Request)
}

// serveHandler adapts one serve.Server to HTTP. cmd/remac-serve and the
// remote-transport test/bench harnesses share it through NewServeMux, so
// a RemoteInstance always talks to exactly the handler the real binary
// runs.
type serveHandler struct {
	srv     *serve.Server
	builder *QueryBuilder
	cfg     ServeHandlerConfig
}

// NewServeMux wires the single-shard HTTP front-end over a serve.Server:
// POST /query (body-capped, idempotency-key aware), GET /stats, /healthz,
// /readyz, /version, and POST /invalidate.
func NewServeMux(srv *serve.Server, builder *QueryBuilder, cfg ServeHandlerConfig) *http.ServeMux {
	h := &serveHandler{srv: srv, builder: builder, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.query)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/readyz", h.readyz)
	mux.HandleFunc("/invalidate", h.invalidate)
	mux.HandleFunc("/version", h.version)
	return mux
}

func (h *serveHandler) query(w http.ResponseWriter, r *http.Request) {
	rid := RequestID(r)
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	req, ok := DecodeQuery(w, r, rid, h.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	q, err := h.builder.Build(req)
	if err != nil {
		WriteError(w, rid, &resilience.QueryError{Class: resilience.Compile, Stage: "request", Err: err})
		return
	}
	if key := strings.TrimSpace(r.Header.Get(IdempotencyKeyHeader)); key != "" {
		q.IdempotencyKey = key
	}
	if h.cfg.OnQuery != nil {
		h.cfg.OnQuery(&q, r)
	}
	res, err := h.srv.Do(r.Context(), q)
	if err != nil {
		WriteError(w, rid, err)
		return
	}
	resp := BuildResponse(res)
	resp.RequestID = rid
	WriteJSON(w, rid, resp)
}

func (h *serveHandler) healthz(w http.ResponseWriter, r *http.Request) {
	rid := RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	WriteJSON(w, rid, h.srv.Healthz())
}

func (h *serveHandler) readyz(w http.ResponseWriter, r *http.Request) {
	rid := RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	hz := h.srv.Readyz()
	if !hz.OK {
		if hz.RetryAfterSec > 0 {
			secs := int(hz.RetryAfterSec)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		}
		w.Header().Set(RequestIDHeader, rid)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(hz); err != nil {
			log.Printf("encode readyz: %v", err)
		}
		return
	}
	WriteJSON(w, rid, hz)
}

func (h *serveHandler) stats(w http.ResponseWriter, r *http.Request) {
	rid := RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	WriteJSON(w, rid, h.srv.Metrics())
}

func (h *serveHandler) invalidate(w http.ResponseWriter, r *http.Request) {
	rid := RequestID(r)
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	ds := strings.TrimSpace(r.URL.Query().Get("dataset"))
	if ds == "" {
		WriteError(w, rid, &resilience.QueryError{
			Class: resilience.Compile, Stage: "request", Err: fmt.Errorf("dataset parameter required"),
		})
		return
	}
	h.srv.InvalidateDataset(ds)
	WriteJSON(w, rid, VersionResponse{Dataset: ds, Version: h.srv.DatasetVersion(ds)})
}

// version reports the shard's current version for one dataset — the
// acknowledgment a gateway's invalidation catch-up reads over the wire.
func (h *serveHandler) version(w http.ResponseWriter, r *http.Request) {
	rid := RequestID(r)
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	ds := strings.TrimSpace(r.URL.Query().Get("dataset"))
	if ds == "" {
		WriteError(w, rid, &resilience.QueryError{
			Class: resilience.Compile, Stage: "request", Err: fmt.Errorf("dataset parameter required"),
		})
		return
	}
	WriteJSON(w, rid, VersionResponse{Dataset: ds, Version: h.srv.DatasetVersion(ds)})
}

// VersionResponse is the GET /version (and POST /invalidate) reply of the
// shard front-end.
type VersionResponse struct {
	Dataset string `json:"dataset"`
	Version int64  `json:"version"`
}
