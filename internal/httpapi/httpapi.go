// Package httpapi is the HTTP plumbing shared by cmd/remac-serve and
// cmd/remac-gateway: the JSON query request/response shapes, dataset-bound
// query construction, the resilience-class → HTTP status error writer, and
// X-Request-ID propagation. Keeping it in one place means the two
// front-ends cannot drift apart in how they parse workloads or render
// failures.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"remac/internal/algorithms"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/opt"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// RequestIDHeader carries the client-supplied (or server-generated)
// request correlation id, echoed on every response.
const RequestIDHeader = "X-Request-ID"

// TenantHeader identifies the submitting tenant to the gateway tier.
const TenantHeader = "X-Tenant"

// IdempotencyKeyHeader carries the replay-suppression key for POST /query.
// The gateway stamps one per request (its request id) before any wire
// attempt; a shard receiving the same key twice within its idempotency
// window returns the original result instead of re-executing the plan.
const IdempotencyKeyHeader = "X-Idempotency-Key"

// AttemptHeader carries the zero-based transport attempt number of a
// (possibly retried) request — diagnostic only; replay suppression keys
// off IdempotencyKeyHeader alone.
const AttemptHeader = "X-Attempt"

// MaxQueryBodyBytes is the default POST /query body cap for both
// front-ends (DecodeQuery); oversize bodies fail with a typed 413.
const MaxQueryBodyBytes = 1 << 20

// QueryRequest is the POST /query body for both front-ends.
type QueryRequest struct {
	Algorithm  string `json:"algorithm,omitempty"`
	Script     string `json:"script,omitempty"`
	Dataset    string `json:"dataset"`
	Iterations int    `json:"iterations,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	TimeoutMS  int    `json:"timeout_ms,omitempty"`
	// MaxIterations caps loop iterations; a program still running at the
	// cap fails with 422 (max-iterations class).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Recovery selects the recovery policy for this query: "lineage",
	// "checkpoint", "coded" or "coded:k,n". Empty uses the server default.
	Recovery string `json:"recovery,omitempty"`
	// Tenant identifies the submitter to the gateway's quota/audit planes
	// (the X-Tenant header wins when both are set; ignored by remac-serve).
	Tenant string `json:"tenant,omitempty"`

	NoPlanCache         bool `json:"no_plan_cache,omitempty"`
	NoIntermediateCache bool `json:"no_intermediate_cache,omitempty"`
}

// ValueSummary reports a result variable without shipping its cells.
// It aliases serve.ValueSummary so a RemoteInstance can decode wire
// summaries straight onto a QueryResult.
type ValueSummary = serve.ValueSummary

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Values           map[string]ValueSummary `json:"values"`
	Iterations       int                     `json:"iterations"`
	SimulatedSec     float64                 `json:"simulated_sec"`
	ComputeSec       float64                 `json:"compute_sec"`
	TransmitSec      float64                 `json:"transmit_sec"`
	CompileSec       float64                 `json:"compile_sec"`
	WallSec          float64                 `json:"wall_sec"`
	PlanCacheHit     bool                    `json:"plan_cache_hit"`
	IntermediateHits int                     `json:"intermediate_hits"`
	IntermediateMiss int                     `json:"intermediate_misses"`
	SharedHits       int                     `json:"shared_hits,omitempty"`
	SharedProduced   int                     `json:"shared_produced,omitempty"`
	CodedRecoveries  int                     `json:"coded_recoveries,omitempty"`
	DecodeSec        float64                 `json:"decode_sec,omitempty"`
	EncodeFLOP       float64                 `json:"encode_flop,omitempty"`
	SelectedKeys     []string                `json:"selected_keys,omitempty"`
	FLOP             float64                 `json:"flop,omitempty"`
	Attempts         int                     `json:"attempts,omitempty"`

	// ResultHash is the FNV-64a fingerprint of the result's materialized
	// values (hex; see serve.HashValues): the bitwise identity a remote
	// caller can assert without the cells ever crossing the wire.
	ResultHash string `json:"result_hash,omitempty"`
	// Replayed marks a response served from the shard's idempotency
	// window — a retry after a lost response, answered without
	// re-executing the plan.
	Replayed bool `json:"replayed,omitempty"`

	// RequestID echoes the request correlation id; the gateway also
	// reports which shard served the query and whether it spilled
	// (overload re-route) or failed over (dead-shard re-route).
	RequestID string `json:"request_id,omitempty"`
	Shard     string `json:"shard,omitempty"`
	Spilled   bool   `json:"spilled,omitempty"`
	Failover  bool   `json:"failover,omitempty"`
}

// BuildResponse summarizes a query result for the wire.
func BuildResponse(res *serve.QueryResult) QueryResponse {
	resp := QueryResponse{
		Values:           map[string]ValueSummary{},
		Iterations:       res.Iterations,
		SimulatedSec:     res.SimulatedSec,
		ComputeSec:       res.ComputeSec,
		TransmitSec:      res.TransmitSec,
		CompileSec:       res.CompileSec,
		WallSec:          res.WallSec,
		PlanCacheHit:     res.PlanCacheHit,
		IntermediateHits: res.IntermediateHits,
		IntermediateMiss: res.IntermediateMisses,
		SharedHits:       res.SharedHits,
		SharedProduced:   res.SharedProduced,
		CodedRecoveries:  res.CodedRecoveries,
		DecodeSec:        res.DecodeSec,
		EncodeFLOP:       res.EncodeFLOP,
		SelectedKeys:     res.SelectedKeys,
		FLOP:             res.FLOP,
		Attempts:         res.Attempts,
		Replayed:         res.Replayed,
	}
	if res.ResultHash != 0 {
		resp.ResultHash = fmt.Sprintf("%016x", res.ResultHash)
	}
	for name, m := range res.Values {
		resp.Values[name] = ValueSummary{Rows: m.Rows(), Cols: m.Cols(), Frobenius: m.FrobeniusNorm()}
	}
	if len(res.Values) == 0 {
		// A relayed remote result has no cells, only summaries.
		for name, vs := range res.Summaries {
			resp.Values[name] = vs
		}
	}
	return resp
}

// ParseStrategy maps the wire strategy names onto opt strategies.
func ParseStrategy(s string) (opt.Strategy, error) {
	switch s {
	case "", "adaptive":
		return opt.Adaptive, nil
	case "none", "no-elimination":
		return opt.NoElimination, nil
	case "explicit":
		return opt.Explicit, nil
	case "conservative":
		return opt.Conservative, nil
	case "aggressive":
		return opt.Aggressive, nil
	case "automatic":
		return opt.Automatic, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// StrategyName is the inverse of ParseStrategy: the wire name a strategy
// travels under, so a remote transport can re-submit a built query with
// the same elimination behavior. ParseStrategy(StrategyName(s)) == s for
// every strategy ParseStrategy accepts.
func StrategyName(s opt.Strategy) string {
	switch s {
	case opt.NoElimination:
		return "none"
	case opt.Explicit:
		return "explicit"
	case opt.Conservative:
		return "conservative"
	case opt.Aggressive:
		return "aggressive"
	case opt.Automatic:
		return "automatic"
	default:
		return "adaptive"
	}
}

// QueryBuilder resolves QueryRequests into serve.Queries, loading each
// dataset once and sharing it read-only across queries.
type QueryBuilder struct {
	// Recovery is the server-wide default recovery policy, applied to
	// queries that do not carry their own.
	Recovery engine.RecoveryPolicy

	mu   sync.Mutex
	data map[string]*data.Dataset
}

// NewQueryBuilder returns a builder with an empty dataset cache.
func NewQueryBuilder(recovery engine.RecoveryPolicy) *QueryBuilder {
	return &QueryBuilder{Recovery: recovery, data: map[string]*data.Dataset{}}
}

func (b *QueryBuilder) dataset(name string) (*data.Dataset, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if d, ok := b.data[name]; ok {
		return d, nil
	}
	d, err := data.Load(name)
	if err != nil {
		return nil, err
	}
	b.data[name] = d
	return d, nil
}

// Build resolves a request into a serve.Query with the dataset's standard
// symbols bound (A, b, H0, x0 — or V, W0, H0 for GNMF).
func (b *QueryBuilder) Build(req QueryRequest) (serve.Query, error) {
	var q serve.Query
	if (req.Algorithm == "") == (req.Script == "") {
		return q, errors.New("exactly one of algorithm or script is required")
	}
	if req.Dataset == "" {
		return q, errors.New("dataset is required")
	}
	ds, err := b.dataset(req.Dataset)
	if err != nil {
		return q, err
	}
	iters := req.Iterations
	alg := algorithms.Name(req.Algorithm)
	script := req.Script
	if req.Algorithm != "" {
		if iters == 0 {
			iters = algorithms.DefaultIterations(alg)
		}
		script, err = algorithms.Script(alg, iters)
		if err != nil {
			return q, err
		}
	} else if iters == 0 {
		iters = 15
	}
	ins := map[string]engine.Input{}
	if alg == algorithms.GNMF {
		w, wh := ds.GNMFFactors(10)
		ins["V"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["W0"] = engine.Input{Data: w, VRows: ds.VRows, VCols: 10}
		ins["H0"] = engine.Input{Data: wh, VRows: 10, VCols: ds.VCols}
	} else {
		ins["A"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["b"] = engine.Input{Data: ds.Label(), VRows: ds.VRows, VCols: 1}
		ins["H0"] = engine.Input{Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols}
		ins["x0"] = engine.Input{Data: ds.InitialX(), VRows: ds.VCols, VCols: 1}
	}
	q = serve.NewQuery(script, ins)
	q.Algorithm = req.Algorithm
	q.Dataset = req.Dataset
	q.Iterations = iters
	q.Strategy, err = ParseStrategy(req.Strategy)
	if err != nil {
		return q, err
	}
	q.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	q.MaxIterations = req.MaxIterations
	q.Recovery = b.Recovery
	if req.Recovery != "" {
		q.Recovery, err = engine.ParseRecovery(req.Recovery)
		if err != nil {
			return q, err
		}
	}
	q.NoPlanCache = req.NoPlanCache
	q.NoIntermediateCache = req.NoIntermediateCache
	return q, nil
}

// requestCounter feeds NewRequestID.
var requestCounter atomic.Uint64

// NewRequestID returns a process-unique request id (nanosecond timestamp
// + counter, hex). Both HTTP front-ends use it when the client did not
// send an X-Request-ID, and the gateway derives idempotency keys from it.
func NewRequestID() string {
	return fmt.Sprintf("%012x-%06x", uint64(time.Now().UnixNano())&0xffffffffffff, requestCounter.Add(1)&0xffffff)
}

// RequestID extracts the X-Request-ID header, generating a fresh id when
// the client sent none (or whitespace).
func RequestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get(RequestIDHeader)); id != "" {
		return id
	}
	return NewRequestID()
}

// Tenant extracts the tenant identity: the X-Tenant header wins, then the
// body field.
func Tenant(r *http.Request, body QueryRequest) string {
	if t := strings.TrimSpace(r.Header.Get(TenantHeader)); t != "" {
		return t
	}
	return strings.TrimSpace(body.Tenant)
}

// ErrorResponse is the structured JSON body of a failed request.
type ErrorResponse struct {
	Error         string  `json:"error"`
	Class         string  `json:"class,omitempty"`
	QueryID       uint64  `json:"query_id,omitempty"`
	Stage         string  `json:"stage,omitempty"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
	RequestID     string  `json:"request_id,omitempty"`
}

// WriteError maps a serving failure to its HTTP status via the resilience
// taxonomy — 400 compile, 422 max-iterations, 429 tenant quota, 503
// overload/shed/draining (with Retry-After), 504 canceled, 500
// execution/internal — and echoes the request id in both the header and
// the JSON body.
func WriteError(w http.ResponseWriter, requestID string, err error) {
	status := http.StatusInternalServerError
	body := ErrorResponse{Error: err.Error(), RequestID: requestID}
	retryAfter := time.Duration(0)
	var qe *resilience.QueryError
	switch {
	case errors.As(err, &qe):
		status = qe.Class.HTTPStatus()
		body.Class = qe.Class.String()
		body.QueryID = qe.QueryID
		body.Stage = qe.Stage
		retryAfter = qe.RetryAfter
		if (qe.Class == resilience.Overloaded || qe.Class == resilience.Quota) && retryAfter <= 0 {
			retryAfter = time.Second
		}
	case errors.Is(err, serve.ErrClosed):
		// Draining: tell clients to find another instance shortly.
		status = http.StatusServiceUnavailable
		body.Class = "closed"
		retryAfter = time.Second
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable
		body.Class = resilience.Overloaded.String()
		retryAfter = time.Second
	case errors.Is(err, engine.ErrCanceled):
		status = http.StatusGatewayTimeout
		body.Class = resilience.Canceled.String()
	case errors.Is(err, engine.ErrMaxIterations):
		status = http.StatusUnprocessableEntity
		body.Class = resilience.MaxIterations.String()
	}
	if retryAfter > 0 {
		secs := int(retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		body.RetryAfterSec = retryAfter.Seconds()
	}
	if requestID != "" {
		w.Header().Set(RequestIDHeader, requestID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		log.Printf("encode error response: %v", err)
	}
}

// DecodeQuery reads and decodes a POST /query body bounded by maxBytes
// (0: MaxQueryBodyBytes; negative: unbounded). An oversize body fails with
// a typed 413 JSON error, malformed JSON with a Compile-class 400 — in
// both cases the response has already been written and ok is false.
func DecodeQuery(w http.ResponseWriter, r *http.Request, requestID string, maxBytes int64) (QueryRequest, bool) {
	var req QueryRequest
	if maxBytes == 0 {
		maxBytes = MaxQueryBodyBytes
	}
	body := r.Body
	if maxBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, maxBytes)
	}
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErrorBody(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error:     fmt.Sprintf("request body exceeds %d-byte limit", mbe.Limit),
				Class:     "payload-too-large",
				Stage:     "request",
				RequestID: requestID,
			}, requestID)
			return req, false
		}
		WriteError(w, requestID, &resilience.QueryError{Class: resilience.Compile, Stage: "request", Err: err})
		return req, false
	}
	return req, true
}

// writeErrorBody renders one ErrorResponse at an explicit status.
func writeErrorBody(w http.ResponseWriter, status int, body ErrorResponse, requestID string) {
	if requestID != "" {
		w.Header().Set(RequestIDHeader, requestID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		log.Printf("encode error response: %v", err)
	}
}

// classForStatus maps an HTTP status back to a taxonomy class — the
// fallback when an error body carries no parseable class.
func classForStatus(status int) resilience.Class {
	switch status {
	case http.StatusTooManyRequests:
		return resilience.Quota
	case http.StatusServiceUnavailable:
		return resilience.Overloaded
	case http.StatusGatewayTimeout:
		return resilience.Canceled
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		return resilience.Compile
	case http.StatusUnprocessableEntity:
		return resilience.MaxIterations
	default:
		return resilience.Internal
	}
}

// ParseError is the inverse of WriteError: it reconstructs the typed
// QueryError a front-end rendered into an HTTP error response, so a
// remote caller handles wire failures through exactly the taxonomy an
// in-process caller would see. The class comes from the JSON body when it
// parses (status-code fallback otherwise), and the Retry-After header —
// or the body's retry_after_sec — restores the backoff hint on 429/503.
func ParseError(status int, header http.Header, body []byte) *resilience.QueryError {
	qe := &resilience.QueryError{Class: classForStatus(status), Stage: "wire"}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		if c, ok := resilience.ClassFromString(er.Class); ok {
			qe.Class = c
		}
		qe.QueryID = er.QueryID
		if er.Stage != "" {
			qe.Stage = er.Stage
		}
		qe.Err = errors.New(er.Error)
		if er.RetryAfterSec > 0 {
			qe.RetryAfter = time.Duration(er.RetryAfterSec * float64(time.Second))
		}
	} else {
		text := strings.TrimSpace(string(body))
		if len(text) > 200 {
			text = text[:200]
		}
		qe.Err = fmt.Errorf("http %d: %s", status, text)
	}
	if ra := strings.TrimSpace(header.Get("Retry-After")); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			qe.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return qe
}

// WriteJSON writes v as indented JSON, echoing the request id header when
// present.
func WriteJSON(w http.ResponseWriter, requestID string, v any) {
	if requestID != "" {
		w.Header().Set(RequestIDHeader, requestID)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
