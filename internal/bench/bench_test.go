package bench

import (
	"strings"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/opt"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "demo", Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Values: map[string]float64{"a": 1.5}},
			{Label: "r2", Values: map[string]float64{"a": 0.0042}, Text: map[string]string{"b": ">cap"}},
		},
		Notes: []string{"note text"},
	}
	s := tbl.String()
	for _, want := range []string{"== X: demo ==", "r1", "1.50", "0.0042", ">cap", "-", "note: note text"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[1].Values["cols"] != 8700 {
		t.Error("cri2 cols wrong")
	}
}

func TestRunOneDefaultsAndMeasurements(t *testing.T) {
	out, err := runOne(runCfg{alg: algorithms.GD, dataset: "cri1", strategy: opt.Adaptive, iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.ExecSec <= 0 || out.PartitionSec <= 0 {
		t.Fatalf("missing measurements: %+v", out)
	}
	if len(out.WorkerShares) == 0 {
		t.Fatal("worker shares missing")
	}
	if len(out.Selected) == 0 {
		t.Fatal("adaptive on cri1 should select options")
	}
}

func TestRunOneUnknownDatasetErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from MustLoad")
		}
	}()
	runOne(runCfg{alg: algorithms.GD, dataset: "nope", strategy: opt.Adaptive})
}

func TestOptionCensusExperiment(t *testing.T) {
	tbl, err := OptionCensus()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Row{}
	for _, r := range tbl.Rows {
		byLabel[r.Label] = r
	}
	dfp := byLabel["DFP"]
	if dfp.Values["options"] < 10 {
		t.Errorf("DFP options = %v, expected at least a dozen", dfp.Values["options"])
	}
	if dfp.Values["LSE"] == 0 {
		t.Error("DFP must have LSE options (AᵀA, Aᵀb)")
	}
	if byLabel["GNMF"].Values["options"] == 0 {
		t.Error("GNMF should have options")
	}
}

func TestFig13WorkBalance(t *testing.T) {
	tbl, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // cri2 + 5 zipf
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		// Hash partitioning keeps shares near ideal even at zipf-2.8.
		if r.Values["max"] > 2.5*r.Values["ideal"] {
			t.Errorf("%s: max share %.3f too far above ideal %.3f", r.Label, r.Values["max"], r.Values["ideal"])
		}
		if r.Values["min"] <= 0 {
			t.Errorf("%s: zero min share", r.Label)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range IDs {
		if Experiments[id] == nil {
			t.Errorf("experiment %q not registered", id)
		}
	}
	// Every table and figure of the evaluation section must be covered.
	want := []string{"table2", "fig3a", "fig3b", "fig8a", "fig8b", "fig9", "fig10a", "fig10b", "fig11", "fig12", "fig13"}
	have := map[string]bool{}
	for _, id := range IDs {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestFig8aSearchComparison(t *testing.T) {
	tbl, err := Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if r.Label == "DFP" {
			if r.Text["tree-wise"] != ">cap" {
				t.Error("tree-wise must time out on DFP")
			}
			if bw, ok := r.Values["block-wise"]; !ok || bw > 1000 {
				t.Errorf("block-wise on DFP took %vms, expected milliseconds", bw)
			}
		}
		if r.Label == "PartialDFP" {
			if _, ok := r.Values["SPORES"]; !ok {
				t.Error("SPORES must be measured on partial DFP")
			}
		}
	}
}
