package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"remac/internal/algorithms"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// ChaosSeed selects the storm schedule of the Chaos experiment
// (remac-bench -chaos-seed). Everything — query kinds, per-query fault
// sub-streams, retry jitter — derives from it, so a run reproduces exactly.
var ChaosSeed int64 = 17

// chaosStorm is the replayed query count; chaosClients issue it concurrently.
const (
	chaosStorm   = 64
	chaosClients = 8
)

// chaosKind partitions the storm: ~60% healthy fault-injected queries and
// ~10% each of four failure modes.
type chaosKind int

const (
	chaosHealthy chaosKind = iota
	chaosFlaky             // transient failure on the first attempt, retried
	chaosPanic             // panicking probe: structured Internal error
	chaosTimeout           // microsecond deadline: typed cancellation
	chaosDiverge           // iteration-cap bomb: typed MaxIterations error
)

func (k chaosKind) String() string {
	return [...]string{"healthy", "flaky", "panic", "timeout", "divergent"}[k]
}

func chaosKindOf(seed int64, i int) chaosKind {
	switch h := uint64(fault.DeriveSeed(seed, i)) % 10; {
	case h < 6:
		return chaosHealthy
	case h < 7:
		return chaosFlaky
	case h < 8:
		return chaosPanic
	case h < 9:
		return chaosTimeout
	default:
		return chaosDiverge
	}
}

// chaosWorkload are the healthy query shapes the storm draws from.
var chaosWorkload = []serveCase{
	{algorithms.GD, "cri1", 2},
	{algorithms.DFP, "cri1", 3},
}

// Chaos soaks the resilient serving path: a seeded storm of concurrent
// queries — healthy ones carrying derived fault sub-streams, plus flaky,
// panicking, deadline-expired and divergent ones — against a server with
// retry, hedging and the circuit breaker enabled. Rows report the outcome
// mix per kind; the experiment fails if any success differs bitwise from
// its fault-free serial reference or any failure carries the wrong class.
func Chaos() (*Table, error) {
	t := &Table{
		ID:      "Chaos",
		Title:   fmt.Sprintf("Chaos soak: %d-query storm, %d clients (seed %d)", chaosStorm, chaosClients, ChaosSeed),
		Columns: []string{"issued", "ok", "typed", "shed"},
	}

	// Fault-free serial reference hashes, one per workload shape.
	refSrv := serve.New(serve.Config{
		Workers: 1, NoBreaker: true,
		Retry: resilience.RetryPolicy{MaxAttempts: -1},
	})
	refHash := make([]uint64, len(chaosWorkload))
	for wi, w := range chaosWorkload {
		q, err := serveQuery(w)
		if err != nil {
			return nil, err
		}
		res, err := refSrv.Do(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("chaos reference %s/%d: %w", w.alg, w.iters, err)
		}
		refHash[wi] = resultHash(res)
	}
	if err := refSrv.Shutdown(context.Background()); err != nil {
		return nil, err
	}

	rootFaults := fault.NewPlan(fault.Config{
		Seed:                  ChaosSeed,
		WorkerFailuresPerHour: 120,
		TransmitErrorsPerHour: 240,
		StragglersPerHour:     120,
		Workers:               8,
	})

	s := serve.New(serve.Config{
		Workers:    4,
		QueueDepth: 16,
		Retry:      resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: ChaosSeed},
		Hedge:      resilience.HedgePolicy{Enabled: true, MinDelay: 5 * time.Millisecond, MaxOutstanding: 4},
		Breaker: resilience.BreakerConfig{
			Window: 64, MinSamples: 16, FailureThreshold: 0.5, Cooldown: 100 * time.Millisecond,
		},
	})
	defer s.Shutdown(context.Background())

	type cell struct{ issued, ok, typed, shed int }
	outcomes := make([]struct {
		kind chaosKind
		res  *serve.QueryResult
		err  error
	}, chaosStorm)

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				kind := chaosKindOf(ChaosSeed, i)
				w := chaosWorkload[uint64(fault.DeriveSeed(^ChaosSeed, i))%uint64(len(chaosWorkload))]
				q, err := serveQuery(w)
				if err != nil {
					outcomes[i].kind, outcomes[i].err = kind, err
					continue
				}
				q.Faults = rootFaults.Derive(i)
				ctx := context.Background()
				switch kind {
				case chaosFlaky:
					q.Probe = func(attempt int) error {
						if attempt == 0 {
							return resilience.MarkTransient(errors.New("chaos: transient fault"))
						}
						return nil
					}
				case chaosPanic:
					q.Probe = func(int) error { panic("chaos: panic probe") }
				case chaosTimeout:
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				case chaosDiverge:
					q.MaxIterations = 1
				}
				res, err := s.Do(ctx, q)
				outcomes[i].kind, outcomes[i].res, outcomes[i].err = kind, res, err
			}
		}()
	}
	for i := 0; i < chaosStorm; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	cells := map[chaosKind]*cell{}
	for k := chaosHealthy; k <= chaosDiverge; k++ {
		cells[k] = &cell{}
	}
	for i, o := range outcomes {
		c := cells[o.kind]
		c.issued++
		if o.err != nil && errors.Is(o.err, resilience.ErrOverloaded) {
			c.shed++
			continue
		}
		switch o.kind {
		case chaosHealthy, chaosFlaky:
			if o.err != nil {
				return nil, fmt.Errorf("chaos: query %d (%s) failed: %w", i, o.kind, o.err)
			}
			c.ok++
			wi := uint64(fault.DeriveSeed(^ChaosSeed, i)) % uint64(len(chaosWorkload))
			if resultHash(o.res) != refHash[wi] {
				return nil, fmt.Errorf("chaos: query %d (%s) result differs bitwise from fault-free reference", i, o.kind)
			}
		case chaosPanic:
			if !resilience.IsClass(o.err, resilience.Internal) {
				return nil, fmt.Errorf("chaos: panic query %d returned %v, want Internal class", i, o.err)
			}
			c.typed++
		case chaosTimeout:
			if o.err == nil {
				c.ok++ // a warm plan cache can beat a microsecond deadline
				continue
			}
			if !errors.Is(o.err, engine.ErrCanceled) {
				return nil, fmt.Errorf("chaos: timeout query %d returned %v, want canceled class", i, o.err)
			}
			c.typed++
		case chaosDiverge:
			if !errors.Is(o.err, resilience.ErrMaxIterations) {
				return nil, fmt.Errorf("chaos: divergent query %d returned %v, want max-iterations class", i, o.err)
			}
			c.typed++
		}
	}

	issued, served := 0, 0
	for k := chaosHealthy; k <= chaosDiverge; k++ {
		c := cells[k]
		issued += c.issued
		served += c.ok + c.typed
		t.Rows = append(t.Rows, Row{Label: k.String(), Values: map[string]float64{
			"issued": float64(c.issued),
			"ok":     float64(c.ok),
			"typed":  float64(c.typed),
			"shed":   float64(c.shed),
		}})
	}

	snap := s.Metrics()
	t.Notes = append(t.Notes,
		fmt.Sprintf("availability %.1f%%: %d of %d queries served (success or typed error; the rest shed by admission control)",
			100*float64(served)/float64(issued), served, issued),
		"every success verified bitwise against its fault-free serial reference (FNV-64a over value bits)",
		fmt.Sprintf("resilience counters: %d retries, %d hedges (%d won), %d panics recovered, %d worker respawns",
			snap.Retries, snap.Hedges, snap.HedgesWon, snap.PanicsRecovered, snap.WorkerRespawns),
		fmt.Sprintf("breaker: state %s, opened %d, half-opened %d, closed %d, shed %d",
			snap.BreakerState, snap.Breaker.Opened, snap.Breaker.HalfOpened, snap.Breaker.Closed, snap.Breaker.Shed),
	)
	return t, nil
}
