package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"remac/internal/algorithms"
	"remac/internal/serve"
)

// serveCase is one entry of the replayed query stream.
type serveCase struct {
	alg     algorithms.Name
	dataset string
	iters   int
}

// serveWorkload is the mixed query stream the serving experiment replays:
// a quasi-Newton solver, a first-order solver, and the GNMF stress case,
// interleaved round-robin as three concurrent "sessions" would issue them.
var serveWorkload = []serveCase{
	{algorithms.DFP, "cri2", 3},
	{algorithms.GD, "cri1", 3},
	{algorithms.GNMF, "red2", 3},
}

// serveConcurrency lists the worker-pool sizes measured.
var serveConcurrency = []int{1, 2, 4, 8}

// serveQueriesPerLevel is the replayed query count per (arm, concurrency)
// cell.
const serveQueriesPerLevel = 24

// serveQuery builds the serve query for one workload entry.
func serveQuery(w serveCase) (serve.Query, error) {
	src, err := algorithms.Script(w.alg, w.iters)
	if err != nil {
		return serve.Query{}, err
	}
	ins, _ := inputsFor(w.alg, dataset(w.dataset))
	q := serve.NewQuery(src, ins)
	q.Dataset = w.dataset
	q.Iterations = w.iters
	return q, nil
}

// resultHash fingerprints a query result bitwise: variable names, shapes,
// and the bit pattern of every cell, in deterministic order.
func resultHash(res *serve.QueryResult) uint64 {
	h := fnv.New64a()
	names := make([]string, 0, len(res.Values))
	for name := range res.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, name := range names {
		h.Write([]byte(name))
		m := res.Values[name]
		put(uint64(m.Rows()))
		put(uint64(m.Cols()))
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				put(math.Float64bits(m.At(i, j)))
			}
		}
	}
	return h.Sum64()
}

// ServeBench measures the serving layer: the mixed workload replayed at
// several concurrency levels, with the cross-query caches on and off. Rows
// report throughput, latency percentiles, and cache hit rates; the
// experiment fails if any query's result differs bitwise between the two
// arms (cache reuse must be invisible to clients).
func ServeBench() (*Table, error) {
	t := &Table{
		ID:      "Serve",
		Title:   "Concurrent serving: mixed DFP/GD/GNMF replay, caches on vs off",
		Columns: []string{"queries", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "plan hit%", "inter hit%"},
	}
	// hashes[workload index] -> reference bitwise hash (set by the first
	// arm, checked by every later run of the same workload).
	hashes := map[int]uint64{}
	var hashErr error
	var hashMu sync.Mutex
	check := func(wi int, res *serve.QueryResult) {
		hh := resultHash(res)
		hashMu.Lock()
		defer hashMu.Unlock()
		if ref, ok := hashes[wi]; !ok {
			hashes[wi] = hh
		} else if ref != hh && hashErr == nil {
			hashErr = fmt.Errorf("serve: workload %d (%s/%s) result differs bitwise across arms",
				wi, serveWorkload[wi].alg, serveWorkload[wi].dataset)
		}
	}

	for _, cacheOn := range []bool{false, true} {
		arm := "cache-off"
		if cacheOn {
			arm = "cache-on"
		}
		for _, conc := range serveConcurrency {
			s := serve.New(serve.Config{Workers: conc, QueueDepth: serveQueriesPerLevel})
			queries := make([]serve.Query, len(serveWorkload))
			for i, w := range serveWorkload {
				q, err := serveQuery(w)
				if err != nil {
					return nil, err
				}
				if !cacheOn {
					q.NoPlanCache = true
					q.NoIntermediateCache = true
				}
				queries[i] = q
			}
			var wg sync.WaitGroup
			errs := make(chan error, serveQueriesPerLevel)
			start := time.Now()
			for k := 0; k < serveQueriesPerLevel; k++ {
				wi := k % len(queries)
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					res, err := s.Do(context.Background(), queries[wi])
					if err != nil {
						errs <- fmt.Errorf("%s conc=%d: %w", arm, conc, err)
						return
					}
					check(wi, res)
				}(wi)
			}
			wg.Wait()
			wall := time.Since(start).Seconds()
			close(errs)
			for err := range errs {
				return nil, err
			}
			snap := s.Metrics()
			if err := s.Shutdown(context.Background()); err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s conc=%d", arm, conc),
				Values: map[string]float64{
					"queries":    float64(snap.Completed),
					"qps":        float64(snap.Completed) / wall,
					"p50(ms)":    snap.LatencyP50Sec * 1e3,
					"p95(ms)":    snap.LatencyP95Sec * 1e3,
					"p99(ms)":    snap.LatencyP99Sec * 1e3,
					"plan hit%":  snap.PlanHitRate * 100,
					"inter hit%": snap.InterHitRate * 100,
				},
			})
		}
	}
	hashMu.Lock()
	err := hashErr
	hashMu.Unlock()
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-query results bitwise identical across all arms (%d workloads verified by FNV-64a over value bits)", len(hashes)),
		"cache-off recompiles every plan and recomputes every loop-constant intermediate; cache-on shares both across queries",
		"simulated-cluster kernels execute for real and saturate the host cores, so added workers redistribute latency rather than raising throughput; the cache-on gain is the compile and recompute work actually eliminated")
	return t, nil
}
