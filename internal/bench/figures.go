package bench

import (
	"fmt"
	"time"

	"remac/internal/algorithms"
	"remac/internal/chain"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/opt"
	"remac/internal/plan"
	"remac/internal/search"
	"remac/internal/sparsity"
)

// Fig3 reproduces the motivation experiment: SystemDS on DFP with
// different elimination choices, in the distributed (a) or single-node (b)
// setting. Bars: no CSE/LSE, explicit, a contradictory (suboptimal)
// combination, the specific {AᵀA, ddᵀ} pair, and the efficient combination.
func Fig3(singleNode bool) (*Table, error) {
	cfg := cluster.DefaultConfig()
	title := "SystemDS on DFP (distributed)"
	if singleNode {
		cfg = cluster.SingleNodeConfig()
		title = "SystemDS on DFP (single node)"
	}
	t := &Table{ID: figID("Fig 3", singleNode), Title: title, Columns: []string{"exec(s)"}}

	// The ddᵀ span after d = Hg inlining is H·g·g'·H; AᵀA is A'·A.
	ataDDT := []string{"A'·A", "H·g·g'·H"}
	// A contradictory pick: the H·AᵀA·H sandwich conflicts with the
	// efficient AᵀAHg vector chains, forcing matrix-shaped reuse.
	contradictory := []string{"H·A'·A·H", "A'·A"}

	bars := []struct {
		label string
		cfg   runCfg
	}{
		{"no CSE/LSE", runCfg{strategy: opt.NoElimination}},
		{"explicit", runCfg{strategy: opt.Explicit}},
		{"contradictory", runCfg{strategy: opt.Manual, manualKeys: contradictory}},
		{"ATA, ddT", runCfg{strategy: opt.Manual, manualKeys: ataDDT}},
		{"efficient", runCfg{strategy: opt.Adaptive}},
	}
	for _, bar := range bars {
		c := bar.cfg
		c.alg = algorithms.DFP
		c.dataset = "cri2"
		c.cluster = cfg
		out, err := runOne(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: bar.label, Values: map[string]float64{"exec(s)": out.ExecSec}})
	}
	return t, nil
}

func figID(base string, b bool) string {
	if b {
		return base + "(b)"
	}
	return base + "(a)"
}

// searchCoords builds the inlined, normalized coordinates for a workload on
// cri2, as the searches consume them.
func searchCoords(alg algorithms.Name) (*chain.Coordinates, error) {
	ds := dataset("cri2")
	_, metas := inputsFor(alg, ds)
	prog := algorithms.MustProgram(alg, algorithms.DefaultIterations(alg))
	// Reuse opt's resolver construction by compiling with NoElimination and
	// re-deriving roots.
	compiled, err := opt.Compile(prog, metas, opt.Config{
		Strategy: opt.Adaptive, Cluster: cluster.DefaultConfig(),
		Iterations: algorithms.DefaultIterations(alg),
	})
	if err != nil {
		return nil, err
	}
	return compiled.Coords, nil
}

// Fig8a compares the compilation time to find CSE and LSE: stock SystemDS
// (explicit detection only), the tree-wise exhaustive search, the
// block-wise search, and SPORES (on partial DFP, the longest subexpression
// it supports).
func Fig8a() (*Table, error) {
	t := &Table{ID: "Fig 8(a)", Title: "Compilation time to find CSE and LSE (milliseconds)",
		Columns: []string{"SystemDS", "tree-wise", "block-wise", "SPORES"}}
	const treeWiseDeadline = 3 * time.Second
	t.Notes = append(t.Notes, fmt.Sprintf(
		"tree-wise capped at %v (the paper measured >8 hours on DFP and BFGS); '>cap' marks a timeout", treeWiseDeadline))

	for _, alg := range []algorithms.Name{algorithms.DFP, algorithms.BFGS, algorithms.GD, algorithms.PartialDFP} {
		coords, err := searchCoords(alg)
		if err != nil {
			return nil, err
		}
		row := Row{Label: string(alg), Values: map[string]float64{}, Text: map[string]string{}}

		// SystemDS: identical-subtree detection over the raw statement trees.
		prog := algorithms.MustProgram(alg, algorithms.DefaultIterations(alg))
		plans, err := plan.Build(prog)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var roots []*plan.Node
		for _, sp := range plans.Body {
			roots = append(roots, sp.Raw)
		}
		if len(roots) == 0 {
			for _, sp := range plans.Pre {
				roots = append(roots, sp.Raw)
			}
		}
		plan.ExplicitCSEKeys(roots)
		row.Values["SystemDS"] = float64(time.Since(start).Microseconds()) / 1000

		bw := search.BlockWise(coords, sparsity.Metadata{})
		row.Values["block-wise"] = float64(bw.Elapsed.Microseconds()) / 1000

		tw := search.TreeWise(coords, treeWiseDeadline)
		if tw.TimedOut {
			row.Text["tree-wise"] = ">cap"
		} else {
			row.Values["tree-wise"] = float64(tw.Elapsed.Microseconds()) / 1000
		}

		if alg == algorithms.PartialDFP {
			sp := search.SPORES(coords, search.DefaultSPORESConfig())
			row.Values["SPORES"] = float64(sp.Elapsed.Microseconds()) / 1000
		} else {
			row.Text["SPORES"] = "n/a"
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "SPORES does not support running DFP, BFGS or GD entirely (§6.2.1)")
	return t, nil
}

// Fig8b compares execution time (input partition excluded, like the paper's
// pre-partitioned measurements): SystemDS with elimination disabled
// (SystemDS*), stock SystemDS, automatic elimination, and SPORES.
func Fig8b() (*Table, error) {
	t := &Table{ID: "Fig 8(b)", Title: "Execution time other than compilation (seconds)",
		Columns: []string{"SystemDS*", "SystemDS", "automatic", "SPORES"}}
	systems := []struct {
		col string
		s   opt.Strategy
	}{
		{"SystemDS*", opt.NoElimination},
		{"SystemDS", opt.Explicit},
		{"automatic", opt.Automatic},
		{"SPORES", opt.SPORESLike},
	}
	for _, alg := range []algorithms.Name{algorithms.DFP, algorithms.BFGS, algorithms.GD, algorithms.PartialDFP} {
		for _, dsName := range data.Names {
			row := Row{Label: fmt.Sprintf("%s/%s", alg, dsName), Values: map[string]float64{}}
			for _, sys := range systems {
				out, err := runOne(runCfg{alg: alg, dataset: dsName, strategy: sys.s})
				if err != nil {
					return nil, err
				}
				row.Values[sys.col] = out.ExecSec
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig9 is the overall adaptive-elimination comparison: SystemDS,
// conservative, aggressive, adaptive across DFP, BFGS and GD.
func Fig9() (*Table, error) {
	t := &Table{ID: "Fig 9", Title: "Overall performance with different CSE and LSE (seconds)",
		Columns: []string{"SystemDS", "conservative", "aggressive", "adaptive"}}
	systems := []struct {
		col string
		s   opt.Strategy
	}{
		{"SystemDS", opt.Explicit},
		{"conservative", opt.Conservative},
		{"aggressive", opt.Aggressive},
		{"adaptive", opt.Adaptive},
	}
	for _, alg := range []algorithms.Name{algorithms.DFP, algorithms.BFGS, algorithms.GD} {
		for _, dsName := range data.Names {
			row := Row{Label: fmt.Sprintf("%s/%s", alg, dsName), Values: map[string]float64{}}
			for _, sys := range systems {
				out, err := runOne(runCfg{alg: alg, dataset: dsName, strategy: sys.s})
				if err != nil {
					return nil, err
				}
				row.Values[sys.col] = out.ExecSec
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// OptionCensus reports the number of elimination options the block-wise
// search finds per workload (the paper counts 1391 for DFP).
func OptionCensus() (*Table, error) {
	t := &Table{ID: "§2.1", Title: "CSE/LSE options found by the block-wise search",
		Columns: []string{"options", "CSE", "LSE", "group"}}
	for _, alg := range []algorithms.Name{algorithms.GD, algorithms.DFP, algorithms.BFGS, algorithms.GNMF} {
		coords, err := searchCoords(alg)
		if err != nil {
			return nil, err
		}
		r := search.BlockWise(coords, sparsity.Metadata{})
		row := Row{Label: string(alg), Values: map[string]float64{
			"options": float64(len(r.Options)),
		}}
		for _, o := range r.Options {
			switch o.Kind {
			case search.CSE:
				row.Values["CSE"]++
			case search.LSE:
				row.Values["LSE"]++
			default:
				row.Values["group"]++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
