package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"remac/internal/algorithms"
	"remac/internal/serve"
)

// mqoWorkload is the overlapping query stream the MQO experiment replays:
// unlike the serve experiment's disjoint datasets, several concurrent
// "sessions" here issue programs against the *same* dataset, so their plans
// contain the same loop-constant subchains (AᵀA, Aᵀb, …) under the same
// intermediate-cache namespace — exactly the redundancy a batching window
// can eliminate across queries.
var mqoWorkload = []serveCase{
	{algorithms.DFP, "cri1", 3},
	{algorithms.GD, "cri1", 3},
	{algorithms.GNMF, "red2", 3},
}

// mqoFanout is how many concurrent clients replay each workload entry.
const mqoFanout = 4

// mqoWindow is the batched arm's admission window: generous enough that a
// burst submitted together always lands in one batch, keeping the FLOP
// comparison deterministic.
const mqoWindow = 500 * time.Millisecond

// MQOBench measures cross-query redundancy elimination: the overlapping
// stream is replayed twice on identical servers — batch window off vs on —
// with the cross-run intermediate cache disabled in both arms so the only
// sharing mechanism under test is the MQO coordinator. The experiment
// fails unless the batched arm executed shared producers (> 0 adoptions),
// charged strictly less total FLOP than the unbatched arm, and produced
// bitwise-identical per-query results.
func MQOBench() (*Table, error) {
	t := &Table{
		ID:      "MQO",
		Title:   "Cross-query redundancy elimination: overlapping stream, batched vs unbatched",
		Columns: []string{"queries", "GFLOP", "shared hits", "produced", "saved GFLOP", "batches", "p50(ms)"},
	}
	total := mqoFanout * len(mqoWorkload)
	queries := make([]serve.Query, len(mqoWorkload))
	for i, w := range mqoWorkload {
		q, err := serveQuery(w)
		if err != nil {
			return nil, err
		}
		queries[i] = q
	}

	hashes := map[int]uint64{}
	var hashMu sync.Mutex
	var hashErr error
	check := func(wi int, res *serve.QueryResult) {
		hh := resultHash(res)
		hashMu.Lock()
		defer hashMu.Unlock()
		if ref, ok := hashes[wi]; !ok {
			hashes[wi] = hh
		} else if ref != hh && hashErr == nil {
			hashErr = fmt.Errorf("mqo: workload %d (%s/%s) result differs bitwise between batched and unbatched arms",
				wi, mqoWorkload[wi].alg, mqoWorkload[wi].dataset)
		}
	}

	flopByArm := map[string]float64{}
	hitsByArm := map[string]uint64{}
	for _, batched := range []bool{false, true} {
		arm := "unbatched"
		window := time.Duration(0)
		if batched {
			arm = "batched"
			window = mqoWindow
		}
		s := serve.New(serve.Config{
			Workers:    4,
			QueueDepth: total,
			// The cross-run intermediate cache would blur the comparison (a
			// late query could reuse an earlier one's value in either arm);
			// with it disabled, every FLOP saved is the MQO coordinator's.
			IntermediateBudgetBytes: -1,
			BatchWindow:             window,
		})
		var wg sync.WaitGroup
		errs := make(chan error, total)
		var flopMu sync.Mutex
		totalFLOP := 0.0
		for k := 0; k < total; k++ {
			wi := k % len(queries)
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				res, err := s.Do(context.Background(), queries[wi])
				if err != nil {
					errs <- fmt.Errorf("mqo %s: %w", arm, err)
					return
				}
				check(wi, res)
				flopMu.Lock()
				totalFLOP += res.FLOP
				flopMu.Unlock()
			}(wi)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return nil, err
		}
		snap := s.Metrics()
		if err := s.Shutdown(context.Background()); err != nil {
			return nil, err
		}
		flopByArm[arm] = totalFLOP
		hitsByArm[arm] = snap.MQOSharedHits
		t.Rows = append(t.Rows, Row{
			Label: arm,
			Values: map[string]float64{
				"queries":     float64(snap.Completed),
				"GFLOP":       totalFLOP / 1e9,
				"shared hits": float64(snap.MQOSharedHits),
				"produced":    float64(snap.MQOSharedProduced),
				"saved GFLOP": snap.MQOFlopSaved / 1e9,
				"batches":     float64(snap.MQOBatches),
				"p50(ms)":     snap.LatencyP50Sec * 1e3,
			},
		})
	}
	hashMu.Lock()
	err := hashErr
	hashMu.Unlock()
	if err != nil {
		return nil, err
	}
	if hitsByArm["batched"] == 0 {
		return nil, fmt.Errorf("mqo: batched arm adopted no shared producers")
	}
	if hitsByArm["unbatched"] != 0 {
		return nil, fmt.Errorf("mqo: unbatched arm reported %d shared adoptions with the window off", hitsByArm["unbatched"])
	}
	if flopByArm["batched"] >= flopByArm["unbatched"] {
		return nil, fmt.Errorf("mqo: batched arm charged %.3g FLOP, not strictly below unbatched %.3g",
			flopByArm["batched"], flopByArm["unbatched"])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-query results bitwise identical across arms (%d workloads verified by FNV-64a over value bits)", len(hashes)),
		fmt.Sprintf("batched arm charged %.1f%% of the unbatched arm's FLOP: loop-constant producers shared by concurrent plans executed once per batch",
			100*flopByArm["batched"]/flopByArm["unbatched"]),
		"cross-run intermediate cache disabled in both arms, so all savings come from mid-batch sharing; window=0 degrades to exactly the unbatched serving path")
	return t, nil
}
