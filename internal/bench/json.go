package bench

import (
	"encoding/json"
	"io"
)

// jsonTable mirrors Table with explicit JSON tags so the machine-readable
// output (remac-bench -json) is stable against internal renames.
type jsonTable struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	Label  string             `json:"label"`
	Values map[string]float64 `json:"values,omitempty"`
	Text   map[string]string  `json:"text,omitempty"`
}

// WriteJSON serializes the tables as an indented JSON array, the format CI
// archives (e.g. BENCH_serve.json).
func WriteJSON(w io.Writer, tables []*Table) error {
	out := make([]jsonTable, 0, len(tables))
	for _, t := range tables {
		jt := jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Notes: t.Notes}
		for _, r := range t.Rows {
			jt.Rows = append(jt.Rows, jsonRow{Label: r.Label, Values: r.Values, Text: r.Text})
		}
		out = append(out, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
