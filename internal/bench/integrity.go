package bench

import (
	"errors"
	"fmt"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/opt"
)

// IntegritySeed selects the corruption schedule of the Integrity experiment
// (remac-bench -integrity-seed).
var IntegritySeed int64 = 23

// isIntegrityErr reports whether a run failed on an unrepairable corruption.
func isIntegrityErr(err error) bool { return errors.Is(err, integrity.ErrCorruption) }

// Integrity measures the end-to-end data-integrity layer in two parts.
//
// Part one runs the standard DFP/GD/GNMF suite on a perfect cluster under
// each verification mode and reports the simulated-time overhead of digest
// and ABFT verification against the unverified baseline (acceptance: ABFT
// stays within 10%).
//
// Part two injects silent corruptions into DFP on cri2 at increasing rates
// and sweeps the verification modes, counting injected corruptions, how many
// were detected (and through which layer), lineage repairs, and — by
// comparing the result fingerprint against a fault-free reference — how many
// runs returned silently wrong answers. With full verification every injected
// corruption is either repaired to a bitwise-identical result or surfaced as
// a typed integrity error; with verification off the same corruptions land as
// silent wrong answers.
func Integrity() (*Table, error) {
	modes := []integrity.VerifyMode{integrity.VerifyOff, integrity.VerifyDigest, integrity.VerifyABFT}
	t := &Table{ID: "Integrity", Title: fmt.Sprintf("Verification overhead and corruption sweep (seed %d)", IntegritySeed),
		Columns: []string{"exec(s)", "verify(s)", "overhead%", "injected", "detected", "repairs", "silent"}}
	t.Notes = append(t.Notes,
		"overhead rows: perfect cluster; overhead% is simulated execution time vs verify=off",
		"sweep rows: DFP on cri2, 5 iterations, driver heap 512MB; rate r/h schedules r corruptions per simulated hour",
		"silent=1 marks a run that succeeded with a result differing bitwise from the fault-free reference",
		"failed(integrity) marks a corruption that exhausted its repair budget and surfaced as a typed error",
	)

	// Part one: fault-free overhead on the standard suite.
	suite := []struct {
		alg     algorithms.Name
		dataset string
	}{
		{algorithms.DFP, "cri2"},
		{algorithms.GD, "cri1"},
		{algorithms.GNMF, "red2"},
	}
	for _, w := range suite {
		base := 0.0
		for _, mode := range modes {
			out, err := runOne(runCfg{
				alg: w.alg, dataset: w.dataset, strategy: opt.Adaptive,
				iterations: 3, verify: mode,
			})
			if err != nil {
				return nil, err
			}
			total := out.ExecSec + out.PartitionSec
			if mode == integrity.VerifyOff {
				base = total
			}
			overhead := 0.0
			if base > 0 {
				overhead = 100 * (total - base) / base
			}
			if mode == integrity.VerifyABFT && overhead > 10 {
				return nil, fmt.Errorf("integrity: ABFT overhead %.1f%% on %v/%s exceeds the 10%% budget", overhead, w.alg, w.dataset)
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%v/%s verify=%v", w.alg, w.dataset, mode),
				Values: map[string]float64{
					"exec(s)":   total,
					"verify(s)": out.VerifySec,
					"overhead%": overhead,
				},
			})
		}
	}

	// Part two: corruption sweep. The reference fingerprint comes from a
	// fault-free run of the identical configuration.
	cfg := cluster.DefaultConfig()
	cfg.DriverMemory = 512 << 20
	const iters = 5
	sweep := runCfg{
		alg: algorithms.DFP, dataset: "cri2", strategy: opt.Aggressive,
		iterations: iters, cluster: cfg,
	}
	ref, err := runOne(sweep)
	if err != nil {
		return nil, err
	}
	for _, rate := range []float64{120, 480} {
		for _, mode := range modes {
			cfg := sweep
			cfg.verify = mode
			cfg.faults = fault.Config{Seed: IntegritySeed, CorruptionsPerHour: rate}
			label := fmt.Sprintf("corrupt@%g/h verify=%v", rate, mode)
			out, err := runOne(cfg)
			if err != nil {
				if isIntegrityErr(err) {
					t.Rows = append(t.Rows, Row{Label: label, Text: map[string]string{"exec(s)": "failed(integrity)"}})
					continue
				}
				return nil, err
			}
			silent := 0.0
			if out.ResultHash != ref.ResultHash {
				silent = 1
			}
			if mode == integrity.VerifyABFT {
				if silent != 0 {
					return nil, fmt.Errorf("integrity: %s returned a silently wrong result", label)
				}
				if detected := out.CorruptionsDigest + out.CorruptionsABFT; detected != out.CorruptionsInjected {
					return nil, fmt.Errorf("integrity: %s detected %d of %d corruptions", label, detected, out.CorruptionsInjected)
				}
			}
			t.Rows = append(t.Rows, Row{
				Label: label,
				Values: map[string]float64{
					"exec(s)":  out.ExecSec,
					"injected": float64(out.CorruptionsInjected),
					"detected": float64(out.CorruptionsDigest + out.CorruptionsABFT),
					"repairs":  float64(out.IntegrityRepairs),
					"silent":   silent,
				},
			})
		}
	}
	return t, nil
}
