package bench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"remac/internal/engine"
	"remac/internal/gateway"
	"remac/internal/httpapi"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// remoteBenchQuery builds the workload query through the same HTTP query
// builder the shard front-ends run, so the wire carries the algorithm
// name and the far side rebinds its own inputs.
func remoteBenchQuery(w serveCase) (serve.Query, error) {
	b := httpapi.NewQueryBuilder(engine.RecoveryPolicy{})
	return b.Build(httpapi.QueryRequest{
		Algorithm:  string(w.alg),
		Dataset:    w.dataset,
		Iterations: w.iters,
	})
}

// remoteShard is one HTTP shard: a serve process behind a real HTTP
// front-end, reached through a seeded NetFault transport.
type remoteShard struct {
	srv   *serve.Server
	front *httptest.Server
	fault *gateway.NetFault
}

func startRemoteShard(id string, seed uint64) *remoteShard {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 64, ShardID: id})
	front := httptest.NewServer(httpapi.NewServeMux(
		srv, httpapi.NewQueryBuilder(engine.RecoveryPolicy{}), httpapi.ServeHandlerConfig{}))
	// Zero fault rates: the partition is the only disturbance in the
	// availability arms, so the failover-vs-control delta is attributable.
	fault := gateway.NewNetFault(nil, gateway.NetFaultConfig{Seed: seed})
	return &remoteShard{srv: srv, front: front, fault: fault}
}

func (s *remoteShard) close() {
	s.front.Close()
	s.srv.Shutdown(context.Background())
}

func (s *remoteShard) instance(id string, budget *gateway.RetryBudget) *gateway.RemoteInstance {
	return gateway.NewRemote(gateway.RemoteConfig{
		BaseURL:      s.front.URL,
		ShardID:      id,
		Client:       &http.Client{Transport: s.fault},
		Retries:      2,
		Budget:       budget,
		ProbeTimeout: time.Second,
	})
}

// remoteArm replays the workload through three HTTP shards, partitions
// the cri1 home mid-stream, and measures availability. With failover on,
// the gateway ejects the unreachable shard on wire evidence, the
// partition later heals, and the victim is readmitted only after
// invalidation catch-up; the control arm disables failover, probing and
// passive detection, so every query routed at the partitioned shard
// fails. Returns the stats, the availability fraction, and per-workload
// server-computed result hashes of the successes.
func remoteArm(failover bool) (gateway.Stats, float64, map[int]uint64, error) {
	const shards = 3
	budget := gateway.NewRetryBudget(64, 0.5)
	fleet := make([]*remoteShard, shards)
	insts := make([]gateway.Instance, shards)
	for i := range fleet {
		id := fmt.Sprintf("shard-%d", i)
		fleet[i] = startRemoteShard(id, 0x5EED+uint64(i))
		insts[i] = fleet[i].instance(id, budget)
	}
	defer func() {
		for _, s := range fleet {
			s.close()
		}
	}()

	cfg := gateway.Config{Seed: 17, ProbeTimeout: time.Second}
	if failover {
		cfg.Failover = 2
		cfg.EjectAfter = 2
		cfg.PassiveFailures = 2
		cfg.RejoinProbes = 1
		cfg.Respawn = func(i int, id string) gateway.Instance {
			// A remote respawn is a fresh client at the same URL, through
			// the same (possibly still partitioned) network.
			return fleet[i].instance(id, budget)
		}
	} else {
		cfg.Failover = -1
		cfg.EjectAfter = -1
		cfg.PassiveFailures = -1
	}
	gw := gateway.NewWithInstances(cfg, insts)

	fail := func(err error) (gateway.Stats, float64, map[int]uint64, error) {
		gw.Shutdown(context.Background())
		return gateway.Stats{}, 0, nil, err
	}

	const repeats = 8
	total := repeats * len(shardWorkload)
	partitionAt := len(shardWorkload) // one clean pass establishes the references
	victim := -1
	hashes := map[int]uint64{}
	ok := 0
	var auxVersion int64
	for k := 0; k < total; k++ {
		if k == partitionAt {
			if victim < 0 {
				return fail(fmt.Errorf("remote: no cri1 success in the clean pass"))
			}
			fleet[victim].fault.SetPartition(gateway.PartitionAll)
			if failover {
				// A broadcast the partitioned shard must miss: readmission
				// has to replay it before the victim takes traffic again.
				auxVersion = gw.InvalidateDataset("aux")
			}
		}
		if failover && k > partitionAt && k%3 == 0 {
			gw.ProbeNow()
		}
		wi := k % len(shardWorkload)
		q, err := remoteBenchQuery(shardWorkload[wi])
		if err != nil {
			return fail(err)
		}
		res, err := gw.Do(context.Background(), gateway.Request{Tenant: shardTenant(k), Query: q})
		if err != nil {
			if k < partitionAt {
				return fail(fmt.Errorf("remote: clean-pass query %d: %w", k, err))
			}
			if !resilience.IsClass(err, resilience.Internal) && !resilience.IsClass(err, resilience.Overloaded) {
				return fail(fmt.Errorf("remote: query %d failed outside the expected classes: %w", k, err))
			}
			continue
		}
		ok++
		if shardWorkload[wi].dataset == "cri1" && victim < 0 {
			victim = res.Shard
		}
		hh := res.QueryResult.ResultHash
		if hh == 0 {
			return fail(fmt.Errorf("remote: query %d returned no server-computed result hash", k))
		}
		if ref, seen := hashes[wi]; !seen {
			hashes[wi] = hh
		} else if ref != hh {
			return fail(fmt.Errorf("remote: workload %d result differs bitwise across the partition", wi))
		}
	}

	if failover {
		// Heal the partition and drive the supervisor to readmission:
		// rejoin stays gated until the victim's version reads stop failing
		// and it has replayed the missed broadcast.
		fleet[victim].fault.SetPartition(gateway.PartitionNone)
		for r := 0; r < 8 && gw.ShardState(victim) != gateway.ShardHealthy; r++ {
			gw.ProbeNow()
		}
		if got := gw.ShardState(victim); got != gateway.ShardHealthy {
			return fail(fmt.Errorf("remote: victim %d state %v after the partition healed, want healthy", victim, got))
		}
		for i, sv := range gw.ShardVersions("aux") {
			if sv != auxVersion {
				return fail(fmt.Errorf("remote: shard %d at aux version %d after rejoin, want %d", i, sv, auxVersion))
			}
		}
	}

	st := gw.Stats()
	if err := gw.Shutdown(context.Background()); err != nil {
		return gateway.Stats{}, 0, nil, err
	}
	return st, float64(ok) / float64(total), hashes, nil
}

// remoteBudgetExhaustion drives a single RemoteInstance with a one-token,
// zero-refill budget into a wall of dropped responses and returns the
// resulting error: it must be a typed Overloaded (HTTP 503) carrying a
// Retry-After hint and the budget sentinel.
func remoteBudgetExhaustion() error {
	s := startRemoteShard("budget-shard", 0xB0D6E7)
	defer s.close()
	budget := gateway.NewRetryBudget(1, 0)
	ri := gateway.NewRemote(gateway.RemoteConfig{
		BaseURL: s.front.URL,
		ShardID: "budget-shard",
		Client:  &http.Client{Transport: s.fault},
		Retries: 5,
		Budget:  budget,
	})
	q, err := remoteBenchQuery(shardWorkload[0])
	if err != nil {
		return err
	}
	q.IdempotencyKey = "bench-budget"
	s.fault.ForceDropNext(16)
	_, err = ri.Do(context.Background(), q)
	if err == nil {
		return fmt.Errorf("remote: budget-starved retries succeeded")
	}
	if !resilience.IsClass(err, resilience.Overloaded) {
		return fmt.Errorf("remote: budget exhaustion class = %v, want Overloaded (503)", err)
	}
	if !errors.Is(err, gateway.ErrRetryBudgetExhausted) {
		return fmt.Errorf("remote: budget exhaustion lost the sentinel: %v", err)
	}
	var qe *resilience.QueryError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		return fmt.Errorf("remote: budget exhaustion carries no Retry-After hint: %v", err)
	}
	if st := budget.Stats(); st.Exhausted == 0 {
		return fmt.Errorf("remote: budget stats show no exhaustion: %+v", st)
	}
	return nil
}

// wireTotals sums the per-shard wire transport counters in a stats
// snapshot.
func wireTotals(st gateway.Stats) (attempts, retries, replays uint64) {
	for _, ss := range st.PerShard {
		if ss.Wire == nil {
			continue
		}
		attempts += ss.Wire.Attempts
		retries += ss.Wire.Retries
		replays += ss.Wire.Replays
	}
	return
}

// RemoteBench measures the HTTP remote transport: the overlapping stream
// replayed through three real HTTP shards while the cri1 home is
// network-partitioned mid-stream, with failover vs a no-failover
// control. The experiment fails unless (1) every successful query's
// server-computed result hash is bitwise identical to a local
// single-instance reference, (2) availability during the partition is
// strictly higher with failover + retry budget than in the control,
// (3) the failover arm ejects the unreachable shard on wire evidence and
// readmits it only after the healed shard replays the missed
// invalidation, and (4) retry-budget exhaustion surfaces as a typed
// Overloaded (HTTP 503) error carrying a Retry-After hint.
func RemoteBench() (*Table, error) {
	t := &Table{
		ID:      "Remote",
		Title:   "Remote shard transport: availability under a network partition, failover vs control",
		Columns: []string{"shards", "queries", "avail%", "failovers", "wire attempts", "wire retries", "replays"},
	}

	// Local single-instance reference: the same builder, the same
	// server-side hash, no wire.
	direct := serve.New(serve.Config{Workers: 2, ShardID: "reference"})
	refHashes := map[int]uint64{}
	for wi, w := range shardWorkload {
		q, err := remoteBenchQuery(w)
		if err != nil {
			return nil, err
		}
		res, err := direct.Do(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("remote: reference workload %d: %w", wi, err)
		}
		refHashes[wi] = res.ResultHash
	}
	if err := direct.Shutdown(context.Background()); err != nil {
		return nil, err
	}

	foStats, foAvail, foHashes, err := remoteArm(true)
	if err != nil {
		return nil, err
	}
	ctlStats, ctlAvail, ctlHashes, err := remoteArm(false)
	if err != nil {
		return nil, err
	}
	for _, armHashes := range []map[int]uint64{foHashes, ctlHashes} {
		for wi, hh := range armHashes {
			if hh != refHashes[wi] {
				return nil, fmt.Errorf("remote: workload %d wire result differs bitwise from the local reference", wi)
			}
		}
	}
	if foAvail <= ctlAvail {
		return nil, fmt.Errorf("remote: failover availability %.1f%% not above the no-failover control's %.1f%% during the partition",
			100*foAvail, 100*ctlAvail)
	}
	if foStats.FailedOver == 0 {
		return nil, fmt.Errorf("remote: failover arm never failed a query over despite the partition")
	}
	if foStats.Ejections == 0 || foStats.Rejoins == 0 {
		return nil, fmt.Errorf("remote: failover arm ejections=%d rejoins=%d, want both nonzero", foStats.Ejections, foStats.Rejoins)
	}
	if err := remoteBudgetExhaustion(); err != nil {
		return nil, err
	}

	for _, arm := range []struct {
		label string
		st    gateway.Stats
		avail float64
	}{{"partition-failover", foStats, foAvail}, {"partition-no-failover", ctlStats, ctlAvail}} {
		attempts, retries, replays := wireTotals(arm.st)
		t.Rows = append(t.Rows, Row{
			Label: arm.label,
			Values: map[string]float64{
				"shards":        3,
				"queries":       float64(arm.st.Routed),
				"avail%":        100 * arm.avail,
				"failovers":     float64(arm.st.FailedOver),
				"wire attempts": float64(attempts),
				"wire retries":  float64(retries),
				"replays":       float64(replays),
			},
		})
	}

	foA, foR, foRep := wireTotals(foStats)
	t.Notes = append(t.Notes,
		"every successful wire result bitwise identical to the local single-instance reference (server-computed FNV-64a result hash)",
		fmt.Sprintf("one-shard network partition: %.1f%% availability with failover + retry budget (%d failovers, %d ejections on wire evidence, victim readmitted after invalidation catch-up) vs %.1f%% without",
			100*foAvail, foStats.FailedOver, foStats.Ejections, 100*ctlAvail),
		fmt.Sprintf("wire transport: %d attempts, %d retries, %d idempotent replays in the failover arm", foA, foR, foRep),
		"retry-budget exhaustion surfaced as a typed Overloaded (HTTP 503) error with a Retry-After hint")
	return t, nil
}
