package bench

import (
	"fmt"

	"remac/internal/algorithms"
	"remac/internal/altengine"
	"remac/internal/data"
	"remac/internal/opt"
	"remac/internal/sparsity"
)

// Fig10a compares compilation time for generating the efficient execution
// plan: the DP prober vs brute-force enumeration, each with the
// metadata-based and MNC estimators.
func Fig10a() (*Table, error) {
	return fig10(false)
}

// Fig10b compares elapsed time (compilation plus execution) for the same
// four methods.
func Fig10b() (*Table, error) {
	return fig10(true)
}

func fig10(elapsed bool) (*Table, error) {
	id, title := "Fig 10(a)", "Compilation time to generate the efficient plan (seconds)"
	if elapsed {
		id, title = "Fig 10(b)", "Elapsed time of compilation and execution (seconds)"
	}
	t := &Table{ID: id, Title: title,
		Columns: []string{"DP-MD", "DP-MNC", "Enum-MD", "Enum-MNC"}}
	methods := []struct {
		col string
		e   sparsity.Estimator
		c   opt.Combiner
	}{
		{"DP-MD", sparsity.Metadata{}, opt.DP},
		{"DP-MNC", sparsity.MNC{}, opt.DP},
		{"Enum-MD", sparsity.Metadata{}, opt.EnumDFS},
		{"Enum-MNC", sparsity.MNC{}, opt.EnumDFS},
	}
	algs := []algorithms.Name{algorithms.DFP, algorithms.BFGS, algorithms.GD}
	if elapsed {
		// GNMF is the paper's combinatorial stress case; include it in the
		// elapsed comparison too.
		algs = append(algs, algorithms.GNMF)
	}
	for _, alg := range algs {
		names := data.Names
		if alg == algorithms.GNMF {
			names = []string{"cri2", "red2"}
		}
		for _, dsName := range names {
			row := Row{Label: fmt.Sprintf("%s/%s", alg, dsName), Values: map[string]float64{}}
			for _, m := range methods {
				out, err := runOne(runCfg{
					alg: alg, dataset: dsName, strategy: opt.Adaptive,
					estimator: m.e, combiner: m.c,
				})
				if err != nil {
					return nil, err
				}
				if elapsed {
					row.Values[m.col] = out.CompileSec + out.ExecSec
				} else {
					row.Values[m.col] = out.CompileSec
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"compilation time is real wall-clock; execution time is simulated cluster time",
		"Enum runs under a combination budget (the paper's Enum took >3 days on GNMF)")
	return t, nil
}

// Fig11 compares end-to-end systems: SystemDS, pbdR (ScaLAPACK), SciDB and
// ReMac on the dense datasets (the alternatives lack sparse support).
func Fig11() (*Table, error) {
	t := &Table{ID: "Fig 11", Title: "Alternative solutions, dense datasets (seconds)",
		Columns: []string{"SystemDS", "pbdR", "SciDB", "ReMac"}}
	for _, alg := range []algorithms.Name{algorithms.DFP, algorithms.BFGS, algorithms.GD} {
		for _, dsName := range []string{"cri1", "red1"} {
			row := Row{Label: fmt.Sprintf("%s/%s", alg, dsName), Values: map[string]float64{}}
			sysds, err := runOne(runCfg{alg: alg, dataset: dsName, strategy: opt.Explicit})
			if err != nil {
				return nil, err
			}
			row.Values["SystemDS"] = sysds.ExecSec
			remac, err := runOne(runCfg{alg: alg, dataset: dsName, strategy: opt.Adaptive})
			if err != nil {
				return nil, err
			}
			row.Values["ReMac"] = remac.ExecSec

			ds := dataset(dsName)
			ins, metas := inputsFor(alg, ds)
			iters := algorithms.DefaultIterations(alg)
			prog := algorithms.MustProgram(alg, iters)
			for _, kind := range []altengine.Kind{altengine.PbdR, altengine.SciDB} {
				res, err := altengine.Run(kind, prog, metas, ins, iters)
				if err != nil {
					return nil, err
				}
				row.Values[kind.String()] = res.ExecSeconds
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "input partition excluded (pbdR and SciDB take additional hours to load, §6.5)")
	return t, nil
}

// Fig12 analyses DFP on cri2 and the zipf-skewed datasets: total time split
// into input partition, compilation, computation and transmission, for
// SystemDS and ReMac.
func Fig12() (*Table, error) {
	t := &Table{ID: "Fig 12", Title: "Performance analysis for DFP (seconds)",
		Columns: []string{"partition", "compile", "compute", "transmit", "total"}}
	names := append([]string{"cri2"}, data.ZipfNames...)
	for _, dsName := range names {
		for _, sys := range []struct {
			label string
			s     opt.Strategy
		}{{"SystemDS", opt.Explicit}, {"ReMac", opt.Adaptive}} {
			out, err := runOne(runCfg{alg: algorithms.DFP, dataset: dsName, strategy: sys.s})
			if err != nil {
				return nil, err
			}
			// The compute/transmit split covers the whole run including
			// partition; separate the partition phase out front.
			compute := out.ComputeSec
			transmit := out.TransmitSec - out.PartitionSec
			if transmit < 0 {
				compute += transmit
				transmit = 0
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s/%s", dsName, sys.label),
				Values: map[string]float64{
					"partition": out.PartitionSec,
					"compile":   out.CompileSec,
					"compute":   compute,
					"transmit":  transmit,
					"total":     out.PartitionSec + out.CompileSec + compute + transmit,
				},
			})
		}
	}
	return t, nil
}

// Fig13 measures work balance: the fraction of input data each worker
// holds under hash partitioning, across the skew series.
func Fig13() (*Table, error) {
	t := &Table{ID: "Fig 13", Title: "Work balance for DFP (per-worker data share)",
		Columns: []string{"min", "max", "ideal"}}
	names := append([]string{"cri2"}, data.ZipfNames...)
	for _, dsName := range names {
		out, err := runOne(runCfg{alg: algorithms.DFP, dataset: dsName, strategy: opt.Adaptive})
		if err != nil {
			return nil, err
		}
		if len(out.WorkerShares) == 0 {
			return nil, fmt.Errorf("no worker shares for %s", dsName)
		}
		min, max := out.WorkerShares[0], out.WorkerShares[0]
		for _, s := range out.WorkerShares {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		t.Rows = append(t.Rows, Row{Label: dsName, Values: map[string]float64{
			"min": min, "max": max, "ideal": 1 / float64(len(out.WorkerShares)),
		}})
	}
	return t, nil
}
