package bench

import (
	"context"
	"fmt"
	"sync"

	"remac/internal/algorithms"
	"remac/internal/gateway"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// shardWorkload is the overlapping stream the shard experiment replays:
// two solvers over one dataset plus the GNMF stress case, so affinity
// routing has real cross-query locality to preserve (DFP and GD on cri1
// share loop-constant intermediates under one cache namespace).
var shardWorkload = []serveCase{
	{algorithms.DFP, "cri1", 3},
	{algorithms.GD, "cri1", 3},
	{algorithms.GNMF, "red2", 3},
}

// shardRepeats is how many times each workload entry replays per arm.
const shardRepeats = 12

// shardTenant skews the replayed traffic across tenants (half the stream
// from one heavy tenant, a long tail behind it) so the per-tenant stats
// and audit plane see a realistic mix. Deterministic in the query index.
func shardTenant(k int) string {
	switch k % 8 {
	case 0, 1, 2, 3:
		return "tenant-a"
	case 4, 5:
		return "tenant-b"
	case 6:
		return "tenant-c"
	default:
		return "tenant-d"
	}
}

// shardArm replays the workload through a gateway with n shards and
// returns the gateway stats plus per-workload result hashes.
func shardArm(shards int, random bool, seed uint64) (gateway.Stats, map[int]uint64, error) {
	gw := gateway.New(gateway.Config{
		Shards:      shards,
		Seed:        seed,
		RouteRandom: random,
		Serve:       serve.Config{Workers: 4, QueueDepth: 64},
	})
	hashes := map[int]uint64{}
	total := shardRepeats * len(shardWorkload)
	for k := 0; k < total; k++ {
		wi := k % len(shardWorkload)
		q, err := serveQuery(shardWorkload[wi])
		if err != nil {
			return gateway.Stats{}, nil, err
		}
		res, err := gw.Do(context.Background(), gateway.Request{Tenant: shardTenant(k), Query: q})
		if err != nil {
			return gateway.Stats{}, nil, fmt.Errorf("shard arm (%d shards): query %d: %w", shards, k, err)
		}
		hh := resultHash(res.QueryResult)
		if ref, ok := hashes[wi]; !ok {
			hashes[wi] = hh
		} else if ref != hh {
			return gateway.Stats{}, nil, fmt.Errorf("shard arm (%d shards): workload %d result differs bitwise between repeats", shards, wi)
		}
	}

	// Invalidation gate: an acknowledged fan-out must leave every shard at
	// the broadcast version before it returns.
	v := gw.InvalidateDataset("cri1")
	for i, sv := range gw.ShardVersions("cri1") {
		if sv != v {
			return gateway.Stats{}, nil, fmt.Errorf("shard arm (%d shards): shard %d at version %d after fan-out returned, want %d", shards, i, sv, v)
		}
	}

	st := gw.Stats()
	if err := gw.Shutdown(context.Background()); err != nil {
		return gateway.Stats{}, nil, err
	}
	return st, hashes, nil
}

// shardQuotaArm replays the victim tenants' stream — optionally alongside
// a quota-capped noisy tenant hammering the tier — and returns the stats.
func shardQuotaArm(noisy bool) (gateway.Stats, error) {
	cfg := gateway.Config{
		Shards: 2,
		Seed:   17,
		Serve:  serve.Config{Workers: 4, QueueDepth: 64},
	}
	if noisy {
		// The noisy tenant gets a near-zero rate and one slot: almost every
		// submission is a typed 429 before it can touch a shard.
		cfg.Quotas = map[string]gateway.TenantQuota{
			"noisy": {QPS: 0.5, Burst: 1, MaxConcurrent: 1},
		}
	}
	gw := gateway.New(cfg)

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	// Two victim tenants replay the stream sequentially (their latencies
	// are the protected signal).
	for _, victim := range []string{"victim-1", "victim-2"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for k := 0; k < 2*len(shardWorkload); k++ {
				q, err := serveQuery(shardWorkload[k%len(shardWorkload)])
				if err != nil {
					errc <- err
					return
				}
				if _, err := gw.Do(context.Background(), gateway.Request{Tenant: tenant, Query: q}); err != nil {
					errc <- fmt.Errorf("victim %s: %w", tenant, err)
					return
				}
			}
		}(victim)
	}
	if noisy {
		// The noisy tenant fires a concurrent burst; the quota sheds it.
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				q, err := serveQuery(shardWorkload[0])
				if err != nil {
					errc <- err
					return
				}
				_, err = gw.Do(context.Background(), gateway.Request{Tenant: "noisy", Query: q})
				if err != nil && !resilience.IsClass(err, resilience.Quota) {
					errc <- fmt.Errorf("noisy tenant: unexpected non-quota failure: %w", err)
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return gateway.Stats{}, err
	}
	st := gw.Stats()
	if err := gw.Shutdown(context.Background()); err != nil {
		return gateway.Stats{}, err
	}
	return st, nil
}

// shardFailoverArm replays the workload through three killable shards,
// kills the cri1 home mid-stream, and measures availability. With
// failover on, the gateway also probes (ejecting, respawning and
// readmitting the victim after invalidation catch-up); the control arm
// disables failover, probing and passive detection, so every query routed
// at the corpse fails. Returns the stats, the availability fraction, and
// the per-workload result hashes of the successes.
func shardFailoverArm(failover bool) (gateway.Stats, float64, map[int]uint64, error) {
	const shards = 3
	mk := func(id string) *gateway.Killable {
		return gateway.NewKillable(serve.New(serve.Config{Workers: 2, QueueDepth: 64, ShardID: id}))
	}
	slots := make([]*gateway.Killable, shards)
	insts := make([]gateway.Instance, shards)
	for i := range insts {
		slots[i] = mk(fmt.Sprintf("shard-%d", i))
		insts[i] = slots[i]
	}
	cfg := gateway.Config{Seed: 17}
	if failover {
		cfg.Failover = 2
		cfg.EjectAfter = 2
		cfg.PassiveFailures = 2
		cfg.RejoinProbes = 1
		cfg.Respawn = func(i int, id string) gateway.Instance {
			k := mk(id)
			slots[i] = k
			return k
		}
	} else {
		cfg.Failover = -1
		cfg.EjectAfter = -1
		cfg.PassiveFailures = -1
	}
	gw := gateway.NewWithInstances(cfg, insts)

	fail := func(err error) (gateway.Stats, float64, map[int]uint64, error) {
		gw.Shutdown(context.Background())
		return gateway.Stats{}, 0, nil, err
	}

	const repeats = 8
	total := repeats * len(shardWorkload)
	killAt := len(shardWorkload) // one clean pass establishes the references
	victim := -1
	hashes := map[int]uint64{}
	ok := 0
	var auxVersion int64
	for k := 0; k < total; k++ {
		if k == killAt {
			if victim < 0 {
				return fail(fmt.Errorf("shard failover: no cri1 success in the clean pass"))
			}
			slots[victim].Kill(gateway.KillErrors)
			if failover {
				// A broadcast the corpse must miss: readmission has to replay
				// it before the victim takes traffic again.
				auxVersion = gw.InvalidateDataset("aux")
			}
		}
		if failover && k > killAt && k%3 == 0 {
			gw.ProbeNow()
		}
		wi := k % len(shardWorkload)
		q, err := serveQuery(shardWorkload[wi])
		if err != nil {
			return fail(err)
		}
		res, err := gw.Do(context.Background(), gateway.Request{Tenant: shardTenant(k), Query: q})
		if err != nil {
			if k < killAt {
				return fail(fmt.Errorf("shard failover: clean-pass query %d: %w", k, err))
			}
			if !resilience.IsClass(err, resilience.Internal) && !resilience.IsClass(err, resilience.Overloaded) {
				return fail(fmt.Errorf("shard failover: query %d failed outside the expected classes: %w", k, err))
			}
			continue
		}
		ok++
		if shardWorkload[wi].dataset == "cri1" && victim < 0 {
			victim = res.Shard
		}
		hh := resultHash(res.QueryResult)
		if ref, seen := hashes[wi]; !seen {
			hashes[wi] = hh
		} else if ref != hh {
			return fail(fmt.Errorf("shard failover: workload %d result differs bitwise across the kill", wi))
		}
	}

	if failover {
		// Drive the supervisor to readmission and check the catch-up gate.
		for r := 0; r < 8 && gw.ShardState(victim) != gateway.ShardHealthy; r++ {
			gw.ProbeNow()
		}
		if got := gw.ShardState(victim); got != gateway.ShardHealthy {
			return fail(fmt.Errorf("shard failover: victim %d state %v after probe rounds, want healthy", victim, got))
		}
		for i, sv := range gw.ShardVersions("aux") {
			if sv != auxVersion {
				return fail(fmt.Errorf("shard failover: shard %d at aux version %d after rejoin, want %d", i, sv, auxVersion))
			}
		}
	}

	st := gw.Stats()
	if err := gw.Shutdown(context.Background()); err != nil {
		return gateway.Stats{}, 0, nil, err
	}
	return st, float64(ok) / float64(total), hashes, nil
}

// victimP95 is the worst victim tenant p95 in an arm.
func victimP95(st gateway.Stats) float64 {
	p := 0.0
	for _, tenant := range []string{"victim-1", "victim-2"} {
		if ts, ok := st.Tenants[tenant]; ok && ts.LatencyP95Sec > p {
			p = ts.LatencyP95Sec
		}
	}
	return p
}

// ShardBench measures the sharded serving tier: the overlapping stream
// replayed through 1, 2 and 4 affinity-routed shards and a 4-shard
// random-routing control, plus a noisy-neighbor pair of arms under tenant
// quotas. The experiment fails unless (1) every arm's results are bitwise
// identical to the single-instance reference, (2) affinity routing at 4
// shards sustains a strictly higher intermediate-cache hit rate than
// random routing, (3) the quota-capped noisy tenant receives typed 429s
// while the victims' p95 stays within 2x of the no-noisy-neighbor run,
// (4) every invalidation fan-out leaves all shards at the broadcast
// version before returning, and (5) availability during a one-shard kill
// is strictly higher with failover than in the no-failover control, with
// the victim ejected, respawned, and readmitted only after invalidation
// catch-up.
func ShardBench() (*Table, error) {
	t := &Table{
		ID:      "Shard",
		Title:   "Sharded serving tier: affinity vs random routing, tenant quotas under a noisy neighbor",
		Columns: []string{"shards", "queries", "avail%", "failovers", "quota 429s", "GFLOP", "plan hit%", "inter hit%", "p95(ms)"},
	}

	type routeArm struct {
		label  string
		shards int
		random bool
	}
	arms := []routeArm{
		{"single", 1, false},
		{"affinity-2", 2, false},
		{"affinity-4", 4, false},
		{"random-4", 4, true},
	}
	var refHashes map[int]uint64
	hitRate := map[string]float64{}
	for _, arm := range arms {
		st, hashes, err := shardArm(arm.shards, arm.random, 17)
		if err != nil {
			return nil, err
		}
		if refHashes == nil {
			refHashes = hashes
		} else {
			for wi, ref := range refHashes {
				if hashes[wi] != ref {
					return nil, fmt.Errorf("shard: arm %s workload %d differs bitwise from the single-instance reference", arm.label, wi)
				}
			}
		}
		hitRate[arm.label] = st.Merged.InterHitRate
		t.Rows = append(t.Rows, Row{
			Label: arm.label,
			Values: map[string]float64{
				"shards":     float64(arm.shards),
				"queries":    float64(st.Routed),
				"avail%":     100,
				"failovers":  0,
				"quota 429s": 0,
				"GFLOP":      st.Tenants["tenant-a"].FLOP/1e9 + st.Tenants["tenant-b"].FLOP/1e9 + st.Tenants["tenant-c"].FLOP/1e9 + st.Tenants["tenant-d"].FLOP/1e9,
				"plan hit%":  100 * st.Merged.PlanHitRate,
				"inter hit%": 100 * st.Merged.InterHitRate,
				"p95(ms)":    st.Merged.LatencyP95Sec * 1e3,
			},
		})
	}
	if hitRate["affinity-4"] <= hitRate["random-4"] {
		return nil, fmt.Errorf("shard: affinity routing at 4 shards hit %.1f%% of intermediate lookups, not strictly above random routing's %.1f%%",
			100*hitRate["affinity-4"], 100*hitRate["random-4"])
	}

	baseline, err := shardQuotaArm(false)
	if err != nil {
		return nil, err
	}
	noisyArm, err := shardQuotaArm(true)
	if err != nil {
		return nil, err
	}
	if noisyArm.QuotaRejected == 0 {
		return nil, fmt.Errorf("shard: the quota-capped noisy tenant was never rejected")
	}
	if ts := noisyArm.Tenants["noisy"]; ts.QuotaRejected == 0 {
		return nil, fmt.Errorf("shard: noisy tenant stats show no typed 429s: %+v", ts)
	}
	baseP95, noisyP95 := victimP95(baseline), victimP95(noisyArm)
	if baseP95 > 0 && noisyP95 > 2*baseP95 {
		return nil, fmt.Errorf("shard: victim p95 %.1fms under the quota-capped noisy neighbor, above 2x the %.1fms baseline",
			noisyP95*1e3, baseP95*1e3)
	}
	for _, qa := range []struct {
		label string
		st    gateway.Stats
	}{{"victims-only", baseline}, {"noisy+quota", noisyArm}} {
		label, st := qa.label, qa.st
		t.Rows = append(t.Rows, Row{
			Label: label,
			Values: map[string]float64{
				"shards":     2,
				"queries":    float64(st.Routed),
				"avail%":     100,
				"failovers":  0,
				"quota 429s": float64(st.QuotaRejected),
				"GFLOP":      st.Tenants["victim-1"].FLOP/1e9 + st.Tenants["victim-2"].FLOP/1e9,
				"plan hit%":  100 * st.Merged.PlanHitRate,
				"inter hit%": 100 * st.Merged.InterHitRate,
				"p95(ms)":    victimP95(st) * 1e3,
			},
		})
	}

	// Kill arms: one shard dies mid-stream, with and without failover.
	foStats, foAvail, foHashes, err := shardFailoverArm(true)
	if err != nil {
		return nil, err
	}
	ctlStats, ctlAvail, _, err := shardFailoverArm(false)
	if err != nil {
		return nil, err
	}
	for wi, ref := range refHashes {
		if hh, seen := foHashes[wi]; seen && hh != ref {
			return nil, fmt.Errorf("shard: failover arm workload %d differs bitwise from the single-instance reference", wi)
		}
	}
	if foAvail <= ctlAvail {
		return nil, fmt.Errorf("shard: failover availability %.1f%% not above the no-failover control's %.1f%% during a one-shard kill",
			100*foAvail, 100*ctlAvail)
	}
	if foStats.FailedOver == 0 {
		return nil, fmt.Errorf("shard: failover arm never failed a query over despite the kill")
	}
	if foStats.Ejections == 0 || foStats.Rejoins == 0 {
		return nil, fmt.Errorf("shard: failover arm ejections=%d rejoins=%d, want both nonzero", foStats.Ejections, foStats.Rejoins)
	}
	for _, ka := range []struct {
		label string
		st    gateway.Stats
		avail float64
	}{{"kill-failover", foStats, foAvail}, {"kill-no-failover", ctlStats, ctlAvail}} {
		t.Rows = append(t.Rows, Row{
			Label: ka.label,
			Values: map[string]float64{
				"shards":     3,
				"queries":    float64(ka.st.Routed),
				"avail%":     100 * ka.avail,
				"failovers":  float64(ka.st.FailedOver),
				"quota 429s": 0,
				"GFLOP":      ka.st.Tenants["tenant-a"].FLOP/1e9 + ka.st.Tenants["tenant-b"].FLOP/1e9 + ka.st.Tenants["tenant-c"].FLOP/1e9 + ka.st.Tenants["tenant-d"].FLOP/1e9,
				"plan hit%":  100 * ka.st.Merged.PlanHitRate,
				"inter hit%": 100 * ka.st.Merged.InterHitRate,
				"p95(ms)":    ka.st.Merged.LatencyP95Sec * 1e3,
			},
		})
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("per-workload results bitwise identical across all %d routing arms (FNV-64a over value bits)", len(arms)),
		fmt.Sprintf("affinity keeps each dataset's stream on one shard: %.1f%% intermediate hits at 4 shards vs %.1f%% under random routing",
			100*hitRate["affinity-4"], 100*hitRate["random-4"]),
		fmt.Sprintf("noisy neighbor: %d typed 429s for the capped tenant; victim p95 %.1fms vs %.1fms without it",
			noisyArm.Tenants["noisy"].QuotaRejected, noisyP95*1e3, baseP95*1e3),
		"every arm's invalidation fan-out left all shards at the broadcast version before returning",
		fmt.Sprintf("one-shard kill: %.1f%% availability with failover (%d failovers, %d ejections, victim respawned and readmitted after catch-up) vs %.1f%% without",
			100*foAvail, foStats.FailedOver, foStats.Ejections, 100*ctlAvail))
	return t, nil
}
