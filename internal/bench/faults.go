package bench

import (
	"fmt"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/opt"
	"remac/internal/trace"
)

// FaultSeed selects the fault schedule of the Faults experiment
// (remac-bench -fault-seed).
var FaultSeed int64 = 11

// CodedRecovery is the policy of the coded arm of the Faults experiment
// (remac-bench -recovery). The default widens the stock 4-of-6 code to
// 4-of-7: under the default schedule's highest rate (480/h) some failure
// windows erase three distinct workers, which two parity blocks cannot
// cover — the third keeps every observed erasure pattern decodable, so
// the coded arm recomputes nothing.
var CodedRecovery = engine.RecoveryPolicy{Kind: engine.RecoverCoded, K: 4, N: 7}

// Faults measures resilience of the recovery policies: DFP on cri2 under
// increasing failure rates, comparing the no-elimination baseline against
// ReMac (Aggressive) under lineage recompute, checkpoint re-read and
// coded k-of-n recovery — every arm of a rate replays the identical
// seeded fault plan. The driver heap is shrunk so hoisted intermediates
// live on the workers — with the default heap they would sit in driver
// memory, out of reach of worker failures, and neither checkpointing nor
// coding would have anything to protect.
//
// The coded arm additionally reports its decode time, the parity-encoding
// FLOP it pays up front, the measured sparsity of the parity blocks (from
// the encode/parity spans) and the largest relative error any k-of-n
// decode introduced (0 when every systematic block survived, in which
// case the result is bitwise identical to the fault-free run).
func Faults() (*Table, error) {
	cfg := cluster.DefaultConfig()
	cfg.DriverMemory = 512 << 20
	const iters = 5

	t := &Table{ID: "Faults", Title: fmt.Sprintf("DFP on cri2 under injected failures (seed %d)", FaultSeed),
		Columns: []string{"exec(s)", "recovery(s)", "recompGFLOP", "decode(s)", "encGFLOP", "retries", "failures", "paritySpars", "maxRelErr"}}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d iterations, driver heap 512MB so LSE values are worker-resident", iters),
		"rate r/h schedules r worker failures, 2r transmission errors, r stragglers per simulated hour of work",
		"elimination concentrates the run into one large shuffled LSE, raising retry exposure; checkpointing removes its recompute FLOP",
		"coded k-of-n decodes lost blocks from surviving systematic + parity blocks instead of recomputing; encGFLOP is its up-front parity cost",
	)

	coded := CodedRecovery
	rates := []float64{30, 120, 480}
	variants := []struct {
		label    string
		strategy opt.Strategy
		recovery engine.RecoveryPolicy
	}{
		{"no-elim", opt.NoElimination, engine.RecoveryPolicy{}},
		{"ReMac/lineage", opt.Aggressive, engine.RecoveryPolicy{}},
		{"ReMac/ckpt", opt.Aggressive, engine.RecoveryPolicy{Kind: engine.RecoverCheckpoint}},
		{"ReMac/" + coded.String(), opt.Aggressive, coded},
	}
	for _, rate := range rates {
		for _, v := range variants {
			rc := runCfg{
				alg: algorithms.DFP, dataset: "cri2",
				strategy: v.strategy, iterations: iters, cluster: cfg,
				recovery: v.recovery,
				faults: fault.Config{
					Seed:                  FaultSeed,
					WorkerFailuresPerHour: rate,
					TransmitErrorsPerHour: 2 * rate,
					StragglersPerHour:     rate,
				},
			}
			var out *runOut
			var err error
			row := Row{Label: fmt.Sprintf("%s @%g/h", v.label, rate)}
			if v.recovery.Kind == engine.RecoverCoded {
				// Trace the coded arm so parity sparsity and decode error
				// can be read off its encode/decode spans.
				var rec *trace.Recorder
				out, rec, err = runFaultTraced(rc)
				if err == nil {
					spars, relErr := codedSpanStats(rec)
					row.Values = map[string]float64{"paritySpars": spars, "maxRelErr": relErr}
				}
			} else {
				out, err = runOne(rc)
			}
			if err != nil {
				return nil, err
			}
			if row.Values == nil {
				row.Values = map[string]float64{}
			}
			row.Values["exec(s)"] = out.ExecSec
			row.Values["recovery(s)"] = out.RecoverySec
			row.Values["recompGFLOP"] = out.RecomputeFLOP / 1e9
			row.Values["decode(s)"] = out.DecodeSec
			row.Values["encGFLOP"] = out.EncodeFLOP / 1e9
			row.Values["retries"] = float64(out.Retries)
			row.Values["failures"] = float64(out.FailedWorkers)
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// runFaultTraced runs one faults arm with a recorder attached regardless
// of whether a global trace sink is set (the sink, when set, still
// receives the spans as runOne would have sent them).
func runFaultTraced(cfg runCfg) (*runOut, *trace.Recorder, error) {
	rec := trace.NewRun(fmt.Sprintf("%s/%s/%v", cfg.alg, cfg.dataset, cfg.strategy))
	out, err := runOneTraced(cfg, rec)
	if err != nil {
		return nil, nil, err
	}
	if sink := traceSink(); sink != nil {
		traceMu.Lock()
		err = rec.WriteJSONL(sink)
		traceMu.Unlock()
		if err != nil {
			return nil, nil, err
		}
	}
	return out, rec, nil
}

// codedSpanStats reads the coded arm's honesty signals off its spans: the
// mean measured sparsity of the encoded parity blocks and the largest
// relative error any k-of-n decode introduced.
func codedSpanStats(rec *trace.Recorder) (paritySparsity, maxRelErr float64) {
	var sum float64
	var n int
	for _, s := range rec.Spans() {
		switch s.Label {
		case "encode/parity":
			if s.Out != nil {
				sum += s.Out.Sparsity
				n++
			}
		case "recovery/coded-decode":
			if s.RelErr > maxRelErr {
				maxRelErr = s.RelErr
			}
		}
	}
	if n > 0 {
		paritySparsity = sum / float64(n)
	}
	return paritySparsity, maxRelErr
}
