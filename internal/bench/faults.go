package bench

import (
	"fmt"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/fault"
	"remac/internal/opt"
)

// FaultSeed selects the fault schedule of the Faults experiment
// (remac-bench -fault-seed).
var FaultSeed int64 = 11

// Faults measures resilience of the elimination strategies: DFP on cri2
// under increasing failure rates, comparing the no-elimination baseline
// against ReMac (Aggressive) with and without checkpointing of hoisted LSE
// values. The driver heap is shrunk so hoisted intermediates live on the
// workers — with the default heap they would sit in driver memory, out of
// reach of worker failures, and checkpointing would have nothing to protect.
func Faults() (*Table, error) {
	cfg := cluster.DefaultConfig()
	cfg.DriverMemory = 512 << 20
	const iters = 5

	t := &Table{ID: "Faults", Title: fmt.Sprintf("DFP on cri2 under injected failures (seed %d)", FaultSeed),
		Columns: []string{"exec(s)", "recovery(s)", "recompGFLOP", "retries", "failures"}}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d iterations, driver heap 512MB so LSE values are worker-resident", iters),
		"rate r/h schedules r worker failures, 2r transmission errors, r stragglers per simulated hour of work",
		"elimination concentrates the run into one large shuffled LSE, raising retry exposure; checkpointing removes its recompute FLOP",
	)

	rates := []float64{30, 120, 480}
	variants := []struct {
		label      string
		strategy   opt.Strategy
		checkpoint bool
	}{
		{"no-elim", opt.NoElimination, false},
		{"ReMac", opt.Aggressive, false},
		{"ReMac+ckpt", opt.Aggressive, true},
	}
	for _, rate := range rates {
		for _, v := range variants {
			out, err := runOne(runCfg{
				alg: algorithms.DFP, dataset: "cri2",
				strategy: v.strategy, iterations: iters, cluster: cfg,
				checkpoint: v.checkpoint,
				faults: fault.Config{
					Seed:                  FaultSeed,
					WorkerFailuresPerHour: rate,
					TransmitErrorsPerHour: 2 * rate,
					StragglersPerHour:     rate,
				},
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s @%g/h", v.label, rate),
				Values: map[string]float64{
					"exec(s)":     out.ExecSec,
					"recovery(s)": out.RecoverySec,
					"recompGFLOP": out.RecomputeFLOP / 1e9,
					"retries":     float64(out.Retries),
					"failures":    float64(out.FailedWorkers),
				},
			})
		}
	}
	return t, nil
}
