// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster. Each experiment returns a
// Table whose rows mirror the series the paper plots; cmd/remac-bench
// renders them as text, and the repository's EXPERIMENTS.md records
// paper-vs-measured for each.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/distmat"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/opt"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// Table is one experiment's output: labeled rows of named measurements.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	// Notes document deviations or caps (e.g. tree-wise deadline).
	Notes []string
}

// Row is one labeled series point.
type Row struct {
	Label  string
	Values map[string]float64
	// Text carries non-numeric cells (e.g. "timeout").
	Text map[string]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-34s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-34s", r.Label)
		for _, c := range t.Columns {
			if txt, ok := r.Text[c]; ok {
				fmt.Fprintf(&b, "%16s", txt)
			} else if v, ok := r.Values[c]; ok {
				fmt.Fprintf(&b, "%16s", formatCell(v))
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// formatCell renders a measurement compactly: small magnitudes keep
// significant digits (sparsities, milliseconds), large ones two decimals.
func formatCell(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	if av != 0 && av < 0.01 {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// runCfg describes one measured run.
type runCfg struct {
	alg        algorithms.Name
	dataset    string
	strategy   opt.Strategy
	estimator  sparsity.Estimator
	combiner   opt.Combiner
	iterations int
	cluster    cluster.Config
	manualKeys []string
	// faults, when any rate is nonzero, injects deterministic failures
	// during the run; checkpoint persists LSE values against them.
	faults     fault.Config
	checkpoint bool
	// recovery selects the failure-recovery policy (lineage, checkpoint,
	// coded k-of-n); the zero value plus checkpoint=false means lineage.
	recovery engine.RecoveryPolicy
	// verify and nanGuard select the run's integrity layer (see
	// engine.RunOptions).
	verify   integrity.VerifyMode
	nanGuard integrity.GuardMode
}

// runOut is the measurement of one run.
type runOut struct {
	ExecSec      float64 // simulated execution minus input partition
	PartitionSec float64
	CompileSec   float64
	ComputeSec   float64
	TransmitSec  float64
	WorkerShares []float64
	Selected     []string

	// Fault accounting (zero for perfect-cluster runs).
	Retries       int
	RecoverySec   float64
	RecomputeFLOP float64
	FailedWorkers int

	// Coded-recovery accounting (zero unless the run used a coded policy).
	CodedRecoveries int
	DecodeSec       float64
	EncodeFLOP      float64

	// Integrity accounting (zero unless corruption or verification was on).
	CorruptionsInjected int
	CorruptionsDigest   int
	CorruptionsABFT     int
	IntegrityRepairs    int
	RepairSec           float64
	VerifySec           float64
	// ResultHash fingerprints the final variable bindings; equal hashes mean
	// bitwise-identical results.
	ResultHash uint64
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]*data.Dataset{}

	traceMu sync.Mutex
	traceW  io.Writer
)

// TraceTo directs every subsequent run's operator spans to w as JSON lines
// (remac-bench -trace). Pass nil to disable.
func TraceTo(w io.Writer) {
	traceMu.Lock()
	traceW = w
	traceMu.Unlock()
}

// traceSink returns the current trace writer, if any.
func traceSink() io.Writer {
	traceMu.Lock()
	defer traceMu.Unlock()
	return traceW
}

func dataset(name string) *data.Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[name]; ok {
		return d
	}
	d := data.MustLoad(name)
	dsCache[name] = d
	return d
}

// inputsFor builds engine inputs and compile metas for a workload.
func inputsFor(alg algorithms.Name, ds *data.Dataset) (map[string]engine.Input, map[string]sparsity.Meta) {
	ins := map[string]engine.Input{}
	metas := map[string]sparsity.Meta{}
	add := func(name string, in engine.Input) {
		ins[name] = in
		metas[name] = sparsity.Virtualize(sparsity.MetaOf(in.Data), in.VRows, in.VCols)
	}
	if alg == algorithms.GNMF {
		w, h := ds.GNMFFactors(10)
		add("V", engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols})
		add("W0", engine.Input{Data: w, VRows: ds.VRows, VCols: 10})
		add("H0", engine.Input{Data: h, VRows: 10, VCols: ds.VCols})
		return ins, metas
	}
	add("A", engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols})
	add("H0", engine.Input{Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols})
	add("x0", engine.Input{Data: ds.InitialX(), VRows: ds.VCols, VCols: 1})
	if alg != algorithms.PartialDFP {
		add("b", engine.Input{Data: ds.Label(), VRows: ds.VRows, VCols: 1})
	}
	return ins, metas
}

// runOne executes one measured configuration. When a trace sink is set
// (remac-bench -trace), the run's spans are appended to it as JSON lines.
func runOne(cfg runCfg) (*runOut, error) {
	var rec *trace.Recorder
	sink := traceSink()
	if sink != nil {
		rec = trace.NewRun(fmt.Sprintf("%s/%s/%v", cfg.alg, cfg.dataset, cfg.strategy))
	}
	out, err := runOneTraced(cfg, rec)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		traceMu.Lock()
		err = rec.WriteJSONL(sink)
		traceMu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runOneTraced executes one measured configuration with an optional span
// recorder attached.
func runOneTraced(cfg runCfg, rec *trace.Recorder) (*runOut, error) {
	if cfg.iterations == 0 {
		cfg.iterations = algorithms.DefaultIterations(cfg.alg)
	}
	if cfg.cluster.Nodes == 0 {
		cfg.cluster = cluster.DefaultConfig()
	}
	if cfg.estimator == nil {
		cfg.estimator = sparsity.MNC{}
	}
	ds := dataset(cfg.dataset)
	ins, metas := inputsFor(cfg.alg, ds)
	prog := algorithms.MustProgram(cfg.alg, cfg.iterations)
	compiled, err := opt.Compile(prog, metas, opt.Config{
		Strategy:   cfg.strategy,
		Estimator:  cfg.estimator,
		Combiner:   cfg.combiner,
		Cluster:    cfg.cluster,
		Iterations: cfg.iterations,
		ManualKeys: cfg.manualKeys,
	})
	if err != nil {
		return nil, fmt.Errorf("%v/%s/%v: %w", cfg.alg, cfg.dataset, cfg.strategy, err)
	}
	fcfg := cfg.faults
	fcfg.Workers = cfg.cluster.Workers()
	res, err := engine.RunWithOptions(context.Background(), compiled, ins, rec, engine.RunOptions{
		Faults:     fault.NewPlan(fcfg),
		Recovery:   cfg.recovery,
		Checkpoint: cfg.checkpoint,
		Verify:     cfg.verify,
		NaNGuard:   cfg.nanGuard,
	})
	if err != nil {
		return nil, fmt.Errorf("%v/%s/%v: %w", cfg.alg, cfg.dataset, cfg.strategy, err)
	}
	out := &runOut{
		ExecSec:      res.Stats.TotalTime() - res.InputPartitionSec,
		PartitionSec: res.InputPartitionSec,
		CompileSec:   res.CompileSec,
		ComputeSec:   res.Stats.ComputeTime,
		TransmitSec:  res.Stats.TransmitTime,

		Retries:       res.Stats.Retries,
		RecoverySec:   res.Stats.RecoverySec,
		RecomputeFLOP: res.Stats.RecomputeFLOP,
		FailedWorkers: res.Stats.FailedWorkers,

		CodedRecoveries: res.Stats.CodedRecoveries,
		DecodeSec:       res.Stats.DecodeSec,
		EncodeFLOP:      res.Stats.EncodeFLOP,

		CorruptionsInjected: res.Stats.CorruptionsInjected,
		CorruptionsDigest:   res.Stats.CorruptionsDigest,
		CorruptionsABFT:     res.Stats.CorruptionsABFT,
		IntegrityRepairs:    res.Stats.IntegrityRepairs,
		RepairSec:           res.Stats.RepairSec,
		VerifySec:           res.Stats.VerifySec,
		ResultHash:          envHash(res.Env),
	}
	total := 0.0
	for _, b := range res.Stats.WorkerBytes {
		total += b
	}
	if total > 0 {
		for _, b := range res.Stats.WorkerBytes {
			out.WorkerShares = append(out.WorkerShares, b/total)
		}
	}
	if compiled.Decision != nil {
		out.Selected = compiled.Decision.Keys()
	}
	sort.Strings(out.Selected)
	return out, nil
}

// envHash fingerprints a run's final variable bindings: equal hashes mean
// every binding is bitwise identical (names, shapes and value bits).
func envHash(env map[string]*distmat.DistMatrix) uint64 {
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for _, n := range names {
		for i := 0; i < len(n); i++ {
			mix(n[i])
		}
		d := integrity.Digest(env[n].Data())
		for i := 0; i < 8; i++ {
			mix(byte(d >> (8 * i)))
		}
	}
	return h
}

// Experiments maps experiment IDs to their runners.
var Experiments = map[string]func() (*Table, error){
	"table2":    Table2,
	"fig3a":     func() (*Table, error) { return Fig3(false) },
	"fig3b":     func() (*Table, error) { return Fig3(true) },
	"fig8a":     Fig8a,
	"fig8b":     Fig8b,
	"fig9":      Fig9,
	"fig10a":    Fig10a,
	"fig10b":    Fig10b,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig13":     Fig13,
	"options":   OptionCensus,
	"opstats":   OpStats,
	"faults":    Faults,
	"serve":     ServeBench,
	"mqo":       MQOBench,
	"shard":     ShardBench,
	"chaos":     Chaos,
	"integrity": Integrity,
	"remote":    RemoteBench,
}

// IDs lists experiment IDs in presentation order.
var IDs = []string{"table2", "fig3a", "fig3b", "fig8a", "fig8b", "fig9", "fig10a", "fig10b", "fig11", "fig12", "fig13", "options", "opstats", "faults", "serve", "mqo", "shard", "chaos", "integrity", "remote"}

// OpStats records per-operator aggregates for a traced DFP run: how many
// operators of each kind executed, and where the simulated time and bytes
// went. It exercises the same recorder remac-bench -trace serializes.
func OpStats() (*Table, error) {
	t := &Table{ID: "OpStats", Title: "Per-operator aggregates, DFP on cri2 (ReMac plan)",
		Columns: []string{"ops", "GFLOP", "compute(s)", "transmit(s)", "GB"}}
	rec := trace.NewRun("dfp/cri2/adaptive")
	if _, err := runOneTraced(runCfg{alg: algorithms.DFP, dataset: "cri2", strategy: opt.Adaptive}, rec); err != nil {
		return nil, err
	}
	sum := rec.Summary()
	for _, ks := range sum.ByKind {
		bytes := 0.0
		for _, b := range ks.Bytes {
			bytes += b
		}
		t.Rows = append(t.Rows, Row{Label: ks.Kind, Values: map[string]float64{
			"ops":         float64(ks.Ops),
			"GFLOP":       ks.FLOP / 1e9,
			"compute(s)":  ks.ComputeSec,
			"transmit(s)": ks.TransmitSec,
			"GB":          bytes / 1e9,
		}})
	}
	t.Rows = append(t.Rows, Row{Label: "total", Values: map[string]float64{
		"ops":         float64(sum.Ops),
		"GFLOP":       sum.FLOP / 1e9,
		"compute(s)":  sum.ComputeSec,
		"transmit(s)": sum.TransmitSec,
	}})
	return t, nil
}

// Table2 reports the dataset statistics.
func Table2() (*Table, error) {
	t := &Table{ID: "Table 2", Title: "Dataset statistics (virtual scale)",
		Columns: []string{"rows(M)", "cols", "sparsity", "GB"}}
	for _, r := range data.Table2() {
		t.Rows = append(t.Rows, Row{Label: r.Dataset, Values: map[string]float64{
			"rows(M)":  float64(r.Rows) / 1e6,
			"cols":     float64(r.Cols),
			"sparsity": r.Sparsity,
			"GB":       r.FootprintGB,
		}})
	}
	return t, nil
}
