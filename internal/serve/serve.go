// Package serve is the concurrent query-serving layer: a multi-session
// server that accepts DML programs, runs them on a bounded worker pool with
// admission queueing, per-query deadlines and graceful shutdown, and layers
// two cross-query caches over the compiler and engine:
//
//   - a compiled-plan cache (LRU over canonicalized program text + input
//     metadata + cluster configuration), so repeat queries skip the search
//     phase whose compile time Fig 8(a) measures, and
//   - a cross-query intermediate cache (byte-budgeted LRU keyed by canonical
//     expression + producer-plan signature, namespaced by dataset version and
//     cluster configuration), so concurrent sessions against the same
//     dataset reuse loop-constant intermediates like AᵀA and Aᵀb instead of
//     recomputing them.
//
// The serving path is hardened by internal/resilience: every query runs
// panic-isolated (a panicking query degrades into a structured
// Internal-class QueryError, and a worker that somehow dies respawns),
// transient execution failures retry with capped seeded backoff above the
// plan cache, stragglers can be hedged with a duplicate execution, and
// admission runs through a circuit breaker with queue-depth-aware load
// shedding instead of a bare fixed-size queue. Liveness and readiness are
// exposed via Healthz/Readyz and the resilience counters fold into the
// Metrics snapshot.
//
// Every query still executes on its own isolated simulated cluster and
// trace recorder; only immutable compiled plans and materialized
// loop-constant values are shared. Server-level metrics (QPS, latency
// percentiles, hit rates, queue depth) aggregate across queries and are
// exposed via Metrics for cmd/remac-serve's /stats endpoint.
package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"remac/internal/cluster"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/opt"
	"remac/internal/resilience"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// Errors returned by Do.
var (
	// ErrOverloaded reports an admission rejection — queue full, breaker
	// open, or adaptive shed; callers should back off and retry. Returned
	// errors wrap it inside an Overloaded-class resilience.QueryError whose
	// RetryAfter field hints when.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrClosed reports a query submitted after Shutdown began.
	ErrClosed = errors.New("serve: server closed")
)

// Config parameterizes a Server. The zero value picks sensible defaults;
// negative cache sizes disable the corresponding cache.
type Config struct {
	// ShardID labels this server instance in metrics snapshots. The gateway
	// tier sets it ("shard-0", …) so merged /stats can attribute per-shard
	// breakdowns; a standalone server may leave it empty.
	ShardID string
	// Workers bounds concurrently executing queries. Default
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds queries admitted but not yet running; submissions
	// beyond it fail fast with ErrOverloaded. Default 64.
	QueueDepth int
	// DefaultTimeout applies to queries without their own Timeout. Zero
	// means no deadline.
	DefaultTimeout time.Duration
	// PlanCacheEntries bounds the compiled-plan LRU. Default 128; negative
	// disables plan caching.
	PlanCacheEntries int
	// IntermediateBudgetBytes bounds the cross-query intermediate cache,
	// charged at the simulated cluster's modelled (virtual-scale) value
	// sizes. Default 4 GiB; negative disables intermediate caching.
	IntermediateBudgetBytes int64
	// BatchWindow enables multi-query optimization: queries admitted within
	// the same window form one MQO batch whose runs share loop-constant
	// producer executions through a per-batch coordinator (a subchain like
	// t(X)%*%X appearing in N member plans executes once and feeds all N
	// consumers, transposed consumers included). Zero — the default —
	// disables batching entirely: every query runs exactly as it would have
	// before MQO existed. cmd/remac-serve defaults the flag to a few ms.
	BatchWindow time.Duration

	// Retry re-executes transient failures (capped seeded backoff). The
	// zero value enables the resilience defaults; Retry.MaxAttempts < 0
	// disables retries.
	Retry resilience.RetryPolicy
	// Hedge re-submits straggler queries past a latency quantile. Off by
	// default (Hedge.Enabled).
	Hedge resilience.HedgePolicy
	// Breaker configures the admission circuit breaker / load shedder.
	// The zero value enables the resilience defaults; NoBreaker disables
	// it (admission falls back to the bare bounded queue).
	Breaker   resilience.BreakerConfig
	NoBreaker bool

	// IdempotencyWindow bounds the completed-result replay window behind
	// Query.IdempotencyKey: a keyed resubmission whose original completed
	// within the window replays the stored result bitwise-identically
	// instead of re-executing the plan, and a keyed submission racing its
	// own in-flight duplicate coalesces onto it. Zero enables the default
	// (1024 entries); negative disables replay suppression entirely.
	// Queries without a key are never deduplicated.
	IdempotencyWindow int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 128
	}
	if c.IntermediateBudgetBytes == 0 {
		c.IntermediateBudgetBytes = 4 << 30
	}
	return c
}

// Probe is a chaos hook invoked at the start of every execution attempt of
// a query (the hedged duplicate included). Returning an error fails the
// attempt as an execution error — wrap it with resilience.MarkTransient to
// make the server retry — and a panic exercises the panic-isolation path.
// The argument is the zero-based retry attempt number.
type Probe func(attempt int) error

// Query is one DML program submission.
type Query struct {
	// Script is the DML program text. Plan-cache keys use its canonical
	// token stream, so formatting and comments do not defeat caching.
	Script string
	// Inputs binds read() names to matrices (with virtual dimensions).
	Inputs map[string]engine.Input
	// Dataset identifies the logical dataset the inputs came from; it
	// namespaces the intermediate cache. Empty disables intermediate
	// caching for this query (no safe reuse identity).
	Dataset string
	// Strategy defaults to Adaptive (the zero value is NoElimination, so
	// the default is applied only when the whole field set is zero — use
	// NewQuery for the defaulted form). Iterations defaults to 15.
	Strategy   opt.Strategy
	Estimator  sparsity.Estimator // nil → MNC
	Combiner   opt.Combiner
	Iterations int
	// Cluster is the simulated cluster configuration; the zero value means
	// cluster.DefaultConfig().
	Cluster cluster.Config
	// Timeout overrides the server's DefaultTimeout when positive.
	Timeout time.Duration
	// MaxIterations overrides the engine's runaway-loop cap when positive.
	MaxIterations int
	// Faults injects a deterministic fault schedule into this query's
	// simulated cluster (cost accounting only — results stay bitwise
	// identical to a fault-free run). Use Plan.Derive to give each member
	// of a concurrent storm its own sub-stream.
	Faults *fault.Plan
	// Recovery selects the recovery policy for this query's run: lineage
	// recomputation (zero value), DFS checkpoints, or k-of-n coded
	// recovery (see engine.RecoveryPolicy). A coded query with faults
	// enabled opts out of cross-query value sharing: its intermediates may
	// carry parity-decode float residue, which must not propagate into
	// sibling queries that expect bitwise-reproducible values.
	Recovery engine.RecoveryPolicy
	// Checkpoint is the legacy toggle for Recovery checkpointing, honored
	// only when Recovery is the zero policy (see
	// engine.RunOptions.Checkpoint).
	Checkpoint bool
	// Verify selects the integrity verification mode for this query's run
	// (see engine.RunOptions.Verify): detected corruptions repair through
	// lineage, unrepairable ones fail with an Integrity-class error.
	Verify integrity.VerifyMode
	// NaNGuard selects the non-finite scan cadence (see
	// engine.RunOptions.NaNGuard); caught poison fails with a Numeric-class
	// error instead of a silently wrong result.
	NaNGuard integrity.GuardMode
	// Trace attaches a span recorder to the run (returned on the result).
	Trace bool
	// NoPlanCache / NoIntermediateCache opt this query out of the shared
	// caches (used by the cache-off arms of the serve benchmark).
	NoPlanCache         bool
	NoIntermediateCache bool
	// Probe, when non-nil, runs at the start of every execution attempt
	// (chaos/fault testing; see Probe).
	Probe Probe
	// IdempotencyKey deduplicates retried submissions: two Do calls with
	// the same non-empty key within the server's idempotency window
	// execute the plan at most once — the second replays the first's
	// result (or coalesces onto it while in flight). The gateway tier
	// stamps its request id here so a wire retry after a lost response
	// cannot re-execute (and re-charge) the plan. Empty disables
	// deduplication for this query.
	IdempotencyKey string
	// Algorithm is wire metadata: the workload name the query was built
	// from (empty for raw-script submissions). The serving path ignores it
	// — Script is what executes — but a remote transport re-submitting
	// this query over HTTP needs it to rebuild the same input bindings on
	// the far side.
	Algorithm string
}

// NewQuery returns a Query with the library defaults: adaptive strategy,
// MNC estimator, 15 expected iterations.
func NewQuery(script string, inputs map[string]engine.Input) Query {
	return Query{Script: script, Inputs: inputs, Strategy: opt.Adaptive, Iterations: 15}
}

// QueryResult is the outcome of one served query.
type QueryResult struct {
	// QueryID is the server-assigned id (also carried by QueryErrors).
	QueryID uint64
	// Values holds the final variable bindings' materialized matrices.
	Values map[string]*matrix.Matrix
	// Iterations executed.
	Iterations int
	// SimulatedSec is the modelled execution time on the query's isolated
	// simulated cluster; ComputeSec/TransmitSec split it.
	SimulatedSec, ComputeSec, TransmitSec float64
	// CompileSec is the real time this query spent obtaining its plan: a
	// full compilation on a plan-cache miss, a lookup on a hit.
	CompileSec float64
	// WallSec is the real end-to-end execution time of the query body
	// (compile + run), excluding queueing.
	WallSec float64
	// PlanCacheHit marks a compiled-plan reuse.
	PlanCacheHit bool
	// IntermediateHits/Misses count cross-query LSE cache consultations.
	IntermediateHits, IntermediateMisses int
	// Attempts is the number of execution attempts this result took
	// (1 + retries).
	Attempts int
	// HedgeWon marks a result produced by a hedged duplicate execution
	// that beat the straggling primary.
	HedgeWon bool
	// CorruptionsInjected / CorruptionsDetected / IntegrityRepairs report
	// the run's integrity accounting: payload corruptions that landed, how
	// many the enabled verification mode caught (digest + ABFT), and the
	// lineage repair attempts they cost.
	CorruptionsInjected, CorruptionsDetected, IntegrityRepairs int
	// CodedRecoveries / DecodeSec / EncodeFLOP report the coded-recovery
	// accounting of the run: k-of-n decodes performed (no recomputation),
	// their simulated decode time, and the parity-encoding work charged.
	CodedRecoveries int
	DecodeSec       float64
	EncodeFLOP      float64
	// FLOP is the total floating-point work charged to this query's
	// simulated cluster. Adopting a shared producer charges nothing, so
	// batched arms of a workload sum to less than unbatched ones.
	FLOP float64
	// SharedHits / SharedProduced count this run's MQO coordinator traffic:
	// loop-constant producers adopted from sibling queries in the batch,
	// and producers this run executed once on the whole batch's behalf.
	SharedHits, SharedProduced int
	// SelectedKeys are the applied elimination option keys (sorted).
	SelectedKeys []string
	// Trace is the query's span recorder (nil unless Query.Trace).
	Trace *trace.Recorder
	// ResultHash is the FNV-64a fingerprint of Values — names sorted,
	// dimensions, and the bit pattern of every cell — so two results hash
	// equal iff they are bitwise identical. A replayed result carries the
	// original's hash; a remote result carries the hash computed by the
	// shard that executed the plan.
	ResultHash uint64
	// Replayed marks a result served from the idempotency window (or a
	// coalesced duplicate of an in-flight leader) rather than a fresh
	// execution.
	Replayed bool
	// Summaries describes the result variables when Values could not ship
	// — a remote shard returns shapes and norms over the wire, not cells.
	// Local executions leave it nil (Values carries everything).
	Summaries map[string]ValueSummary
}

// ValueSummary reports a result variable without shipping its cells.
type ValueSummary struct {
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	Frobenius float64 `json:"frobenius_norm"`
}

// MarshalJSON encodes a non-finite norm as a string: encoding/json
// rejects NaN/Inf outright, and a diverged solve's summary must still
// cross the wire rather than kill the whole response with a 500.
func (v ValueSummary) MarshalJSON() ([]byte, error) {
	type wire struct {
		Rows      int         `json:"rows"`
		Cols      int         `json:"cols"`
		Frobenius interface{} `json:"frobenius_norm"`
	}
	w := wire{Rows: v.Rows, Cols: v.Cols, Frobenius: v.Frobenius}
	switch {
	case math.IsNaN(v.Frobenius):
		w.Frobenius = "NaN"
	case math.IsInf(v.Frobenius, 1):
		w.Frobenius = "+Inf"
	case math.IsInf(v.Frobenius, -1):
		w.Frobenius = "-Inf"
	}
	return json.Marshal(w)
}

// UnmarshalJSON accepts both the numeric and the string-encoded
// non-finite forms of the norm.
func (v *ValueSummary) UnmarshalJSON(b []byte) error {
	var w struct {
		Rows      int             `json:"rows"`
		Cols      int             `json:"cols"`
		Frobenius json.RawMessage `json:"frobenius_norm"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	v.Rows, v.Cols, v.Frobenius = w.Rows, w.Cols, 0
	if len(w.Frobenius) == 0 {
		return nil
	}
	if err := json.Unmarshal(w.Frobenius, &v.Frobenius); err == nil {
		return nil
	}
	var s string
	if err := json.Unmarshal(w.Frobenius, &s); err != nil {
		return err
	}
	switch s {
	case "NaN":
		v.Frobenius = math.NaN()
	case "+Inf", "Inf":
		v.Frobenius = math.Inf(1)
	case "-Inf":
		v.Frobenius = math.Inf(-1)
	default:
		return fmt.Errorf("serve: unrecognized frobenius_norm %q", s)
	}
	return nil
}

type jobOut struct {
	res *QueryResult
	err error
}

type job struct {
	id  uint64
	ctx context.Context
	q   Query
	out chan jobOut // buffered: workers never block on abandoned callers
	// batch is the MQO batch this query was admitted into (nil when
	// batching is off); set once at admission, before the job is enqueued.
	batch *mqoBatch
}

// Server is a concurrent query server. Create with New, submit with Do,
// stop with Shutdown.
type Server struct {
	cfg     Config
	queue   chan *job
	wg      sync.WaitGroup
	metrics *metrics
	breaker *resilience.Breaker

	nextID           atomic.Uint64
	hedgeOutstanding atomic.Int32

	mu       sync.Mutex
	closed   bool
	versions map[string]int64

	// metaSigs memoizes per-matrix sparsity buckets for plan-key
	// computation, LRU-bounded at metaSigCap entries (see sparsitySig).
	metaMu   sync.Mutex
	metaSigs map[*matrix.Matrix]*list.Element
	metaLRU  *list.List

	plans   *planCache
	inter   *interCache
	batches *batcher
	idem    *idemWindow
}

// New starts a server with cfg.Workers executor goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		metrics:  newMetrics(),
		versions: map[string]int64{},
	}
	if !cfg.NoBreaker {
		s.breaker = resilience.NewBreaker(cfg.Breaker)
	}
	if cfg.PlanCacheEntries > 0 {
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	if cfg.IntermediateBudgetBytes > 0 {
		s.inter = newInterCache(cfg.IntermediateBudgetBytes)
	}
	if cfg.BatchWindow > 0 {
		s.batches = newBatcher(cfg.BatchWindow)
	}
	if idemCap := cfg.IdempotencyWindow; idemCap >= 0 {
		if idemCap == 0 {
			idemCap = defaultIdemEntries
		}
		s.idem = newIdemWindow(idemCap)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// canceledErr wraps a context failure into a Canceled-class QueryError that
// still matches errors.Is(err, engine.ErrCanceled).
func canceledErr(id uint64, stage string, cause error) error {
	return &resilience.QueryError{
		Class:   resilience.Canceled,
		QueryID: id,
		Stage:   stage,
		Err:     fmt.Errorf("serve: %w (%v)", engine.ErrCanceled, cause),
	}
}

// overloadedErr wraps an admission rejection into an Overloaded-class
// QueryError carrying the Retry-After hint.
func overloadedErr(id uint64, retryAfter time.Duration, cause error) error {
	return &resilience.QueryError{
		Class:      resilience.Overloaded,
		QueryID:    id,
		Stage:      "admission",
		Err:        cause,
		RetryAfter: retryAfter,
	}
}

// Do submits a query and blocks until it completes, fails, or ctx ends.
// Admission is non-blocking: the circuit breaker / load shedder may reject
// first, and a full queue fails fast — both as Overloaded-class errors
// wrapping ErrOverloaded. When ctx ends first, Do returns a Canceled-class
// error wrapping engine.ErrCanceled and the in-flight work stops promptly
// on its own (the worker shares ctx).
//
// A query carrying an IdempotencyKey first consults the replay window:
// a completed duplicate replays the stored result without executing (or
// admitting — a replay is free and succeeds even while draining), and a
// duplicate racing its in-flight original coalesces onto the leader's
// outcome. Only the leader's failure propagates to coalesced waiters;
// after a failure the key is immediately retryable with a fresh execution.
func (s *Server) Do(ctx context.Context, q Query) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.idem == nil || q.IdempotencyKey == "" {
		return s.submit(ctx, q)
	}
	e, role := s.idem.begin(q.IdempotencyKey)
	switch role {
	case idemReplay:
		s.metrics.idemReplayed()
		return replayOf(e), nil
	case idemWaiter:
		s.metrics.idemCoalesced()
		select {
		case <-e.done:
			if e.err != nil {
				return nil, e.err
			}
			return replayOf(e), nil
		case <-ctx.Done():
			return nil, canceledErr(s.nextID.Add(1), "idem-wait", ctx.Err())
		}
	}
	res, err := s.submit(ctx, q)
	s.idem.settle(e, res, err)
	return res, err
}

// submit is the admission-and-wait path of Do, below the idempotency
// window.
func (s *Server) submit(ctx context.Context, q Query) (*QueryResult, error) {
	id := s.nextID.Add(1)
	j := &job{id: id, ctx: ctx, q: q, out: make(chan jobOut, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if ok, retryAfter := s.breaker.Admit(len(s.queue), cap(s.queue)); !ok {
		s.mu.Unlock()
		s.metrics.shed()
		return nil, overloadedErr(id, retryAfter, ErrOverloaded)
	}
	// MQO batch membership is decided at admission time: everything that
	// arrives inside one window shares a batch, regardless of when the
	// worker pool actually gets to each query. Assigned before the enqueue
	// so the worker never races the assignment.
	var newBatch bool
	if s.batches != nil {
		j.batch, newBatch = s.batches.assign(time.Now())
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
		s.metrics.enqueued()
		if j.batch != nil {
			s.metrics.mqoAdmitted(newBatch)
		}
	default:
		s.mu.Unlock()
		s.metrics.rejected()
		s.breaker.Forgive()
		return nil, overloadedErr(id, 0, ErrOverloaded)
	}
	select {
	case o := <-j.out:
		return o.res, o.err
	case <-ctx.Done():
		return nil, canceledErr(id, "wait", ctx.Err())
	}
}

// Shutdown stops admission immediately, drains queued and in-flight
// queries, and returns when every worker has exited or ctx ends (returning
// ctx's error, with workers still draining in the background). Safe to
// call once; later Do calls fail with ErrClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// InvalidateDataset bumps a dataset's version: cached intermediates keyed
// under older versions become unreachable and are dropped eagerly. Call it
// whenever the dataset's contents change.
func (s *Server) InvalidateDataset(id string) {
	s.mu.Lock()
	s.versions[id]++
	s.mu.Unlock()
	if s.inter != nil {
		s.inter.dropNamespace(namespacePrefix(id))
	}
}

// DatasetVersion returns the current version of a dataset id (0 until the
// first InvalidateDataset).
func (s *Server) DatasetVersion(id string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[id]
}

// worker drains the admission queue. It is panic-isolated twice over: each
// query attempt runs under its own recover (attemptOnce), and a panic that
// somehow escapes that — a bug in the pool itself — is caught here, counted,
// and the worker respawned so capacity never silently decays. The
// wg.Add-before-Done ordering keeps Shutdown's WaitGroup balanced across a
// respawn.
func (s *Server) worker() {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.workerRespawn()
			s.wg.Add(1)
			go s.worker()
		}
		s.wg.Done()
	}()
	for j := range s.queue {
		s.metrics.dequeued()
		if err := j.ctx.Err(); err != nil {
			// The caller's context expired while the query sat queued: it is
			// canceled, never executed — counted as such, and settled through
			// the buffered out channel so nothing leaks.
			cerr := canceledErr(j.id, "queued", err)
			s.metrics.finished(0, cerr)
			s.breaker.Forgive()
			j.out <- jobOut{err: cerr}
			continue
		}
		start := time.Now()
		res, err := s.run(j)
		s.metrics.finished(time.Since(start).Seconds(), err)
		s.recordOutcome(err)
		j.out <- jobOut{res: res, err: err}
	}
}

// recordOutcome feeds the breaker: only server-attributable failures
// (execution, internal) count against it; client-caused ones (canceled,
// compile errors, divergent loops) and overload release accounting without
// an outcome so a storm of bad queries cannot open the circuit.
func (s *Server) recordOutcome(err error) {
	if err == nil {
		s.breaker.Record(true)
		return
	}
	switch class, _ := resilience.ClassOf(err); class {
	case resilience.Execution, resilience.Internal, resilience.Integrity:
		s.breaker.Record(false)
	default:
		// Canceled, compile errors, divergent loops and numeric divergence
		// are client-caused; overload releases without an outcome.
		s.breaker.Forgive()
	}
}

// run executes a job with the retry policy layered above the engine (and
// the plan cache, so every retry reuses the compiled plan): transient
// failures re-execute after a capped, seeded backoff until attempts or the
// backoff budget run out.
func (s *Server) run(j *job) (*QueryResult, error) {
	// The per-query deadline is bound once, before the first attempt:
	// retries, backoff sleeps and the hedged duplicate all share its
	// remaining budget (their contexts derive from j.ctx), so a query can
	// never exceed its deadline by straggling through the retry loop.
	timeout := j.q.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(j.ctx, timeout)
		defer cancel()
		j.ctx = ctx
	}
	policy := s.cfg.Retry.WithDefaults()
	var slept time.Duration
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := policy.Backoff(j.id, attempt)
			if slept+delay > policy.Budget {
				break
			}
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-j.ctx.Done():
				t.Stop()
				return nil, canceledErr(j.id, "backoff", j.ctx.Err())
			}
			slept += delay
			s.metrics.retried()
		}
		res, err := s.attemptOnce(j, attempt)
		if err == nil {
			res.Attempts = attempt + 1
			return res, nil
		}
		if !resilience.IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attemptOnce runs a single panic-isolated execution attempt, hedged with
// a duplicate execution if the primary straggles past the hedge delay
// (derived from the recent latency quantile). The first settled outcome
// wins; the loser's context is canceled so it unwinds promptly.
func (s *Server) attemptOnce(j *job, attempt int) (*QueryResult, error) {
	delay := s.hedgeDelay()
	if delay <= 0 {
		return s.guarded(j.ctx, j, attempt)
	}
	type outcome struct {
		res   *QueryResult
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2)
	primCtx, cancelPrim := context.WithCancel(j.ctx)
	defer cancelPrim()
	go func() {
		r, e := s.guarded(primCtx, j, attempt)
		ch <- outcome{r, e, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
	}
	hp := s.cfg.Hedge.WithDefaults()
	if int(s.hedgeOutstanding.Add(1)) > hp.MaxOutstanding {
		// Over the server-wide hedge budget: wait out the primary.
		s.hedgeOutstanding.Add(-1)
		o := <-ch
		return o.res, o.err
	}
	s.metrics.hedged()
	hedgeCtx, cancelHedge := context.WithCancel(j.ctx)
	defer cancelHedge()
	go func() {
		defer s.hedgeOutstanding.Add(-1)
		r, e := s.guarded(hedgeCtx, j, attempt)
		ch <- outcome{r, e, true}
	}()
	o := <-ch
	if o.hedge {
		cancelPrim()
		s.metrics.hedgeWon()
		if o.res != nil {
			o.res.HedgeWon = true
		}
	} else {
		cancelHedge()
	}
	return o.res, o.err
}

// hedgeDelay derives the hedge trigger from the recent latency window; 0
// disables hedging for this attempt (policy off or no signal yet).
func (s *Server) hedgeDelay() time.Duration {
	if !s.cfg.Hedge.Enabled {
		return 0
	}
	hp := s.cfg.Hedge.WithDefaults()
	return hp.Delay(s.metrics.latencyQuantile(hp.Quantile))
}

// guarded is one panic-isolated execution: a panic anywhere in the probe,
// compiler or engine becomes an Internal-class QueryError with a redacted
// stack, and the worker (or hedge goroutine) survives.
func (s *Server) guarded(ctx context.Context, j *job, attempt int) (res *QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panicRecovered()
			res, err = nil, resilience.PanicError(j.id, "execute", r, debug.Stack())
		}
	}()
	if j.q.Probe != nil {
		if perr := j.q.Probe(attempt); perr != nil {
			return nil, s.classify(j.id, "execute", perr)
		}
	}
	r, e := s.execute(ctx, j)
	if e != nil {
		var qe *resilience.QueryError
		if errors.As(e, &qe) && qe.QueryID == 0 {
			qe.QueryID = j.id
		}
		return nil, e
	}
	r.QueryID = j.id
	return r, nil
}

// classify wraps a raw error into a QueryError with the right taxonomy
// class for its stage. Already-classified errors pass through.
func (s *Server) classify(id uint64, stage string, err error) error {
	if err == nil {
		return nil
	}
	var qe *resilience.QueryError
	if errors.As(err, &qe) {
		return err
	}
	class := resilience.Execution
	switch {
	case errors.Is(err, errSharedAbandoned):
		// A sibling query panicked while producing a value this run waited
		// for: server-attributable, like the panic itself.
		class = resilience.Internal
	case errors.Is(err, engine.ErrCanceled):
		class = resilience.Canceled
	case errors.Is(err, engine.ErrMaxIterations):
		class = resilience.MaxIterations
	case errors.Is(err, integrity.ErrCorruption):
		class = resilience.Integrity
	case errors.Is(err, integrity.ErrNonFinite):
		class = resilience.Numeric
	case stage == "compile":
		class = resilience.Compile
	}
	return &resilience.QueryError{
		Class:     class,
		QueryID:   id,
		Stage:     stage,
		Err:       err,
		Transient: class == resilience.Execution && resilience.IsTransient(err),
	}
}

// execute runs one query end to end: plan (cached or compiled), then
// execute on a fresh simulated cluster with the cross-query intermediate
// cache — and, when the query was admitted into an MQO batch, the batch's
// shared-producer coordinator — attached. Returned errors are classified
// (compile vs execution vs canceled vs max-iterations).
func (s *Server) execute(ctx context.Context, j *job) (out *QueryResult, err error) {
	q := j.q
	if q.Iterations == 0 {
		q.Iterations = 15
	}
	if q.Estimator == nil {
		q.Estimator = sparsity.MNC{}
	}
	if q.Cluster.Nodes == 0 {
		q.Cluster = cluster.DefaultConfig()
	}
	ocfg := opt.Config{
		Strategy:   q.Strategy,
		Estimator:  q.Estimator,
		Combiner:   q.Combiner,
		Cluster:    q.Cluster,
		Iterations: q.Iterations,
	}

	start := time.Now()
	compiled, compileSec, planHit, err := s.plan(ctx, q, ocfg)
	if err != nil {
		return nil, s.classify(0, "compile", err)
	}

	var rec *trace.Recorder
	if q.Trace {
		rec = trace.New()
	}
	// A coded-recovery query under fault injection may hold values rebuilt
	// through the tolerance-bounded parity-decode path; keep them out of
	// the cross-query caches, whose contract is bitwise reproducibility.
	codedFaults := q.Recovery.Kind == engine.RecoverCoded && q.Faults.Enabled()
	var view *interView
	var inter engine.IntermediateCache
	if s.inter != nil && !q.NoIntermediateCache && q.Dataset != "" && !codedFaults {
		view = s.inter.view(s.namespaceFor(q))
		inter = view
	}
	var sess *mqoSession
	var shared engine.SharedProducers
	if j.batch != nil && s.shareEligible(q) && !codedFaults {
		sess = j.batch.session(s.namespaceFor(q))
		shared = sess
		// The deferred close settles any leadership this run still holds
		// when it unwinds — including a panic unwind, where err is nil and
		// every waiting sibling gets the typed "abandoned" error instead of
		// blocking forever or silently missing a value.
		defer func() {
			abandoned := sess.close(err)
			s.metrics.mqoSession(sess.hits, sess.led, sess.flopSaved, abandoned)
		}()
		// Announce this plan's shareable subexpressions to the batch's
		// cross-query index (metrics observe how many keys overlap).
		if n := sess.announce(compiled.SharedManifest()); n > 0 {
			s.metrics.mqoOverlap(n)
		}
	}
	s.metrics.executed()
	res, err := engine.RunWithOptions(ctx, compiled, q.Inputs, rec, engine.RunOptions{
		MaxIter:       q.MaxIterations,
		Faults:        q.Faults,
		Recovery:      q.Recovery,
		Checkpoint:    q.Checkpoint,
		Intermediates: inter,
		Shared:        shared,
		Verify:        q.Verify,
		NaNGuard:      q.NaNGuard,
	})
	if err != nil {
		return nil, s.classify(0, "execute", err)
	}
	out = &QueryResult{
		Values:       map[string]*matrix.Matrix{},
		Iterations:   res.Iterations,
		SimulatedSec: res.Stats.TotalTime(),
		ComputeSec:   res.Stats.ComputeTime,
		TransmitSec:  res.Stats.TransmitTime,
		CompileSec:   compileSec,
		WallSec:      time.Since(start).Seconds(),
		PlanCacheHit: planHit,
		Trace:        rec,
	}
	for name, v := range res.Env {
		out.Values[name] = v.Data()
	}
	out.ResultHash = HashValues(out.Values)
	if compiled.Decision != nil {
		out.SelectedKeys = compiled.Decision.Keys()
	}
	if view != nil {
		out.IntermediateHits, out.IntermediateMisses = view.hits, view.misses
		s.metrics.interCounts(view.hits, view.misses)
	}
	if sess != nil {
		out.SharedHits, out.SharedProduced = sess.hits, sess.led
	}
	st := res.Stats
	out.FLOP = st.FLOP
	out.CorruptionsInjected = st.CorruptionsInjected
	out.CorruptionsDetected = st.CorruptionsDigest + st.CorruptionsABFT
	out.IntegrityRepairs = st.IntegrityRepairs
	if st.CorruptionsInjected > 0 || st.IntegrityRepairs > 0 {
		s.metrics.integrityCounts(st.CorruptionsInjected, st.CorruptionsDigest, st.CorruptionsABFT, st.IntegrityRepairs, st.RepairSec)
	}
	out.CodedRecoveries = st.CodedRecoveries
	out.DecodeSec = st.DecodeSec
	out.EncodeFLOP = st.EncodeFLOP
	if st.CodedRecoveries > 0 || st.EncodeFLOP > 0 {
		s.metrics.codedCounts(st.CodedRecoveries, st.DecodeSec, st.EncodeFLOP)
	}
	return out, nil
}

// plan obtains the compiled plan for a query: from the plan cache when
// enabled (with in-flight compilations of the same key coalesced), else by
// compiling. The returned seconds measure what this query actually waited
// for its plan.
func (s *Server) plan(ctx context.Context, q Query, ocfg opt.Config) (*opt.Compiled, float64, bool, error) {
	compile := func() (*opt.Compiled, error) {
		prog, err := lang.Parse(q.Script)
		if err != nil {
			return nil, err
		}
		metas := map[string]sparsity.Meta{}
		for name, in := range q.Inputs {
			if in.Data == nil {
				return nil, fmt.Errorf("serve: input %q has nil data", name)
			}
			metas[name] = sparsity.Virtualize(sparsity.MetaOf(in.Data), in.VRows, in.VCols)
		}
		return opt.CompileCtx(ctx, prog, metas, ocfg)
	}
	start := time.Now()
	if s.plans == nil || q.NoPlanCache {
		c, err := compile()
		return c, time.Since(start).Seconds(), false, err
	}
	key, err := s.planKey(q, ocfg)
	if err != nil {
		return nil, 0, false, err
	}
	c, hit, err := s.plans.getOrCompile(ctx, key, compile)
	if err != nil {
		return nil, 0, false, err
	}
	if hit {
		s.metrics.planHit()
	} else {
		s.metrics.planMiss()
	}
	return c, time.Since(start).Seconds(), hit, nil
}

// namespaceFor scopes intermediate-cache keys: dataset id + version +
// cluster signature. The version bound at query start makes an
// InvalidateDataset bump instantly unreachable; the cluster signature keeps
// values produced under one simulated topology from serving another (plan
// choice — and with it the bitwise kernel sequence — depends on it).
func (s *Server) namespaceFor(q Query) string {
	return fmt.Sprintf("%s@%d|%s", q.Dataset, s.DatasetVersion(q.Dataset), clusterSig(q.Cluster))
}

func namespacePrefix(dataset string) string { return dataset + "@" }

// clusterSig fingerprints every cluster parameter that can change plan
// choice or placement.
func clusterSig(c cluster.Config) string {
	return fmt.Sprintf("n%d.c%d.f%g.net%g.disk%g.mem%d.b%d.e%g.j%g.sp%g.nl%t.d%t",
		c.Nodes, c.CoresPerNode, c.FlopsPerCore, c.NetBandwidth, c.DiskBandwidth,
		c.DriverMemory, c.BlockSize, c.Efficiency, c.JobOverheadSec, c.SparsePenalty,
		c.NoLocalMode, c.DenseOnly)
}

// HashValues fingerprints materialized result values bitwise: variable
// names sorted, dimensions, and the bit pattern of every cell through
// FNV-64a. Two value sets hash equal iff they are bitwise identical —
// the identity the idempotency replay window and the remote transport's
// end-to-end chaos assertions are built on.
func HashValues(values map[string]*matrix.Matrix) uint64 {
	h := fnv.New64a()
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, name := range names {
		h.Write([]byte(name))
		m := values[name]
		put(uint64(m.Rows()))
		put(uint64(m.Cols()))
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				put(math.Float64bits(m.At(i, j)))
			}
		}
	}
	return h.Sum64()
}

// Metrics returns a point-in-time snapshot of the server's aggregate
// metrics, resilience counters included.
func (s *Server) Metrics() Snapshot {
	snap := s.metrics.snapshot()
	snap.Shard = s.cfg.ShardID
	if s.idem != nil {
		snap.IdemEntries = s.idem.entries()
	}
	if s.plans != nil {
		snap.PlanEntries = s.plans.len()
	}
	if s.inter != nil {
		snap.InterEntries, snap.InterBytes = s.inter.usage()
	}
	snap.BreakerState = s.breaker.State().String()
	snap.Breaker = s.breaker.Counters()
	return snap
}
