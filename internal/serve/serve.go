// Package serve is the concurrent query-serving layer: a multi-session
// server that accepts DML programs, runs them on a bounded worker pool with
// admission queueing, per-query deadlines and graceful shutdown, and layers
// two cross-query caches over the compiler and engine:
//
//   - a compiled-plan cache (LRU over canonicalized program text + input
//     metadata + cluster configuration), so repeat queries skip the search
//     phase whose compile time Fig 8(a) measures, and
//   - a cross-query intermediate cache (byte-budgeted LRU keyed by canonical
//     expression + producer-plan signature, namespaced by dataset version and
//     cluster configuration), so concurrent sessions against the same
//     dataset reuse loop-constant intermediates like AᵀA and Aᵀb instead of
//     recomputing them.
//
// Every query still executes on its own isolated simulated cluster and
// trace recorder; only immutable compiled plans and materialized
// loop-constant values are shared. Server-level metrics (QPS, latency
// percentiles, hit rates, queue depth) aggregate across queries and are
// exposed via Metrics for cmd/remac-serve's /stats endpoint.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"remac/internal/cluster"
	"remac/internal/engine"
	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/opt"
	"remac/internal/sparsity"
	"remac/internal/trace"
)

// Errors returned by Do.
var (
	// ErrOverloaded reports an admission queue full at submission time;
	// callers should back off and retry.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrClosed reports a query submitted after Shutdown began.
	ErrClosed = errors.New("serve: server closed")
)

// Config parameterizes a Server. The zero value picks sensible defaults;
// negative cache sizes disable the corresponding cache.
type Config struct {
	// Workers bounds concurrently executing queries. Default
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds queries admitted but not yet running; submissions
	// beyond it fail fast with ErrOverloaded. Default 64.
	QueueDepth int
	// DefaultTimeout applies to queries without their own Timeout. Zero
	// means no deadline.
	DefaultTimeout time.Duration
	// PlanCacheEntries bounds the compiled-plan LRU. Default 128; negative
	// disables plan caching.
	PlanCacheEntries int
	// IntermediateBudgetBytes bounds the cross-query intermediate cache,
	// charged at the simulated cluster's modelled (virtual-scale) value
	// sizes. Default 4 GiB; negative disables intermediate caching.
	IntermediateBudgetBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 128
	}
	if c.IntermediateBudgetBytes == 0 {
		c.IntermediateBudgetBytes = 4 << 30
	}
	return c
}

// Query is one DML program submission.
type Query struct {
	// Script is the DML program text. Plan-cache keys use its canonical
	// token stream, so formatting and comments do not defeat caching.
	Script string
	// Inputs binds read() names to matrices (with virtual dimensions).
	Inputs map[string]engine.Input
	// Dataset identifies the logical dataset the inputs came from; it
	// namespaces the intermediate cache. Empty disables intermediate
	// caching for this query (no safe reuse identity).
	Dataset string
	// Strategy defaults to Adaptive (the zero value is NoElimination, so
	// the default is applied only when the whole field set is zero — use
	// NewQuery for the defaulted form). Iterations defaults to 15.
	Strategy   opt.Strategy
	Estimator  sparsity.Estimator // nil → MNC
	Combiner   opt.Combiner
	Iterations int
	// Cluster is the simulated cluster configuration; the zero value means
	// cluster.DefaultConfig().
	Cluster cluster.Config
	// Timeout overrides the server's DefaultTimeout when positive.
	Timeout time.Duration
	// MaxIterations overrides the engine's runaway-loop cap when positive.
	MaxIterations int
	// Trace attaches a span recorder to the run (returned on the result).
	Trace bool
	// NoPlanCache / NoIntermediateCache opt this query out of the shared
	// caches (used by the cache-off arms of the serve benchmark).
	NoPlanCache         bool
	NoIntermediateCache bool
}

// NewQuery returns a Query with the library defaults: adaptive strategy,
// MNC estimator, 15 expected iterations.
func NewQuery(script string, inputs map[string]engine.Input) Query {
	return Query{Script: script, Inputs: inputs, Strategy: opt.Adaptive, Iterations: 15}
}

// QueryResult is the outcome of one served query.
type QueryResult struct {
	// Values holds the final variable bindings' materialized matrices.
	Values map[string]*matrix.Matrix
	// Iterations executed.
	Iterations int
	// SimulatedSec is the modelled execution time on the query's isolated
	// simulated cluster; ComputeSec/TransmitSec split it.
	SimulatedSec, ComputeSec, TransmitSec float64
	// CompileSec is the real time this query spent obtaining its plan: a
	// full compilation on a plan-cache miss, a lookup on a hit.
	CompileSec float64
	// WallSec is the real end-to-end execution time of the query body
	// (compile + run), excluding queueing.
	WallSec float64
	// PlanCacheHit marks a compiled-plan reuse.
	PlanCacheHit bool
	// IntermediateHits/Misses count cross-query LSE cache consultations.
	IntermediateHits, IntermediateMisses int
	// SelectedKeys are the applied elimination option keys (sorted).
	SelectedKeys []string
	// Trace is the query's span recorder (nil unless Query.Trace).
	Trace *trace.Recorder
}

type jobOut struct {
	res *QueryResult
	err error
}

type job struct {
	ctx context.Context
	q   Query
	out chan jobOut // buffered: workers never block on abandoned callers
}

// Server is a concurrent query server. Create with New, submit with Do,
// stop with Shutdown.
type Server struct {
	cfg     Config
	queue   chan *job
	wg      sync.WaitGroup
	metrics *metrics

	mu       sync.Mutex
	closed   bool
	versions map[string]int64

	// metaSigs memoizes per-matrix sparsity buckets for plan-key
	// computation (see sparsitySig).
	metaMu   sync.Mutex
	metaSigs map[*matrix.Matrix]string

	plans *planCache
	inter *interCache
}

// New starts a server with cfg.Workers executor goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		metrics:  newMetrics(),
		versions: map[string]int64{},
	}
	if cfg.PlanCacheEntries > 0 {
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	if cfg.IntermediateBudgetBytes > 0 {
		s.inter = newInterCache(cfg.IntermediateBudgetBytes)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Do submits a query and blocks until it completes, fails, or ctx ends.
// Admission is non-blocking: a full queue fails fast with ErrOverloaded.
// When ctx ends first, Do returns an error wrapping engine.ErrCanceled and
// the in-flight work stops promptly on its own (the worker shares ctx).
func (s *Server) Do(ctx context.Context, q Query) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{ctx: ctx, q: q, out: make(chan jobOut, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
		s.metrics.enqueued()
	default:
		s.mu.Unlock()
		s.metrics.rejected()
		return nil, ErrOverloaded
	}
	select {
	case o := <-j.out:
		return o.res, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: %w (%v)", engine.ErrCanceled, ctx.Err())
	}
}

// Shutdown stops admission immediately, drains queued and in-flight
// queries, and returns when every worker has exited or ctx ends (returning
// ctx's error, with workers still draining in the background). Safe to
// call once; later Do calls fail with ErrClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// InvalidateDataset bumps a dataset's version: cached intermediates keyed
// under older versions become unreachable and are dropped eagerly. Call it
// whenever the dataset's contents change.
func (s *Server) InvalidateDataset(id string) {
	s.mu.Lock()
	s.versions[id]++
	s.mu.Unlock()
	if s.inter != nil {
		s.inter.dropNamespace(namespacePrefix(id))
	}
}

// DatasetVersion returns the current version of a dataset id (0 until the
// first InvalidateDataset).
func (s *Server) DatasetVersion(id string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[id]
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.dequeued()
		if err := j.ctx.Err(); err != nil {
			// The caller is gone; skip the work, settle the job.
			s.metrics.finished(0, fmt.Errorf("%w", engine.ErrCanceled))
			j.out <- jobOut{err: fmt.Errorf("serve: %w (%v)", engine.ErrCanceled, err)}
			continue
		}
		start := time.Now()
		res, err := s.execute(j.ctx, j.q)
		s.metrics.finished(time.Since(start).Seconds(), err)
		j.out <- jobOut{res: res, err: err}
	}
}

// execute runs one query end to end: plan (cached or compiled), then
// execute on a fresh simulated cluster with the cross-query intermediate
// cache attached.
func (s *Server) execute(ctx context.Context, q Query) (*QueryResult, error) {
	timeout := q.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if q.Iterations == 0 {
		q.Iterations = 15
	}
	if q.Estimator == nil {
		q.Estimator = sparsity.MNC{}
	}
	if q.Cluster.Nodes == 0 {
		q.Cluster = cluster.DefaultConfig()
	}
	ocfg := opt.Config{
		Strategy:   q.Strategy,
		Estimator:  q.Estimator,
		Combiner:   q.Combiner,
		Cluster:    q.Cluster,
		Iterations: q.Iterations,
	}

	start := time.Now()
	compiled, compileSec, planHit, err := s.plan(ctx, q, ocfg)
	if err != nil {
		return nil, err
	}

	var rec *trace.Recorder
	if q.Trace {
		rec = trace.New()
	}
	var view *interView
	var inter engine.IntermediateCache
	if s.inter != nil && !q.NoIntermediateCache && q.Dataset != "" {
		view = s.inter.view(s.namespaceFor(q))
		inter = view
	}
	res, err := engine.RunWithOptions(ctx, compiled, q.Inputs, rec, engine.RunOptions{
		MaxIter:       q.MaxIterations,
		Intermediates: inter,
	})
	if err != nil {
		return nil, err
	}
	out := &QueryResult{
		Values:       map[string]*matrix.Matrix{},
		Iterations:   res.Iterations,
		SimulatedSec: res.Stats.TotalTime(),
		ComputeSec:   res.Stats.ComputeTime,
		TransmitSec:  res.Stats.TransmitTime,
		CompileSec:   compileSec,
		WallSec:      time.Since(start).Seconds(),
		PlanCacheHit: planHit,
		Trace:        rec,
	}
	for name, v := range res.Env {
		out.Values[name] = v.Data()
	}
	if compiled.Decision != nil {
		out.SelectedKeys = compiled.Decision.Keys()
	}
	if view != nil {
		out.IntermediateHits, out.IntermediateMisses = view.hits, view.misses
		s.metrics.interCounts(view.hits, view.misses)
	}
	return out, nil
}

// plan obtains the compiled plan for a query: from the plan cache when
// enabled (with in-flight compilations of the same key coalesced), else by
// compiling. The returned seconds measure what this query actually waited
// for its plan.
func (s *Server) plan(ctx context.Context, q Query, ocfg opt.Config) (*opt.Compiled, float64, bool, error) {
	compile := func() (*opt.Compiled, error) {
		prog, err := lang.Parse(q.Script)
		if err != nil {
			return nil, err
		}
		metas := map[string]sparsity.Meta{}
		for name, in := range q.Inputs {
			if in.Data == nil {
				return nil, fmt.Errorf("serve: input %q has nil data", name)
			}
			metas[name] = sparsity.Virtualize(sparsity.MetaOf(in.Data), in.VRows, in.VCols)
		}
		return opt.CompileCtx(ctx, prog, metas, ocfg)
	}
	start := time.Now()
	if s.plans == nil || q.NoPlanCache {
		c, err := compile()
		return c, time.Since(start).Seconds(), false, err
	}
	key, err := s.planKey(q, ocfg)
	if err != nil {
		return nil, 0, false, err
	}
	c, hit, err := s.plans.getOrCompile(ctx, key, compile)
	if err != nil {
		return nil, 0, false, err
	}
	if hit {
		s.metrics.planHit()
	} else {
		s.metrics.planMiss()
	}
	return c, time.Since(start).Seconds(), hit, nil
}

// namespaceFor scopes intermediate-cache keys: dataset id + version +
// cluster signature. The version bound at query start makes an
// InvalidateDataset bump instantly unreachable; the cluster signature keeps
// values produced under one simulated topology from serving another (plan
// choice — and with it the bitwise kernel sequence — depends on it).
func (s *Server) namespaceFor(q Query) string {
	return fmt.Sprintf("%s@%d|%s", q.Dataset, s.DatasetVersion(q.Dataset), clusterSig(q.Cluster))
}

func namespacePrefix(dataset string) string { return dataset + "@" }

// clusterSig fingerprints every cluster parameter that can change plan
// choice or placement.
func clusterSig(c cluster.Config) string {
	return fmt.Sprintf("n%d.c%d.f%g.net%g.disk%g.mem%d.b%d.e%g.j%g.sp%g.nl%t.d%t",
		c.Nodes, c.CoresPerNode, c.FlopsPerCore, c.NetBandwidth, c.DiskBandwidth,
		c.DriverMemory, c.BlockSize, c.Efficiency, c.JobOverheadSec, c.SparsePenalty,
		c.NoLocalMode, c.DenseOnly)
}

// Metrics returns a point-in-time snapshot of the server's aggregate
// metrics.
func (s *Server) Metrics() Snapshot {
	snap := s.metrics.snapshot()
	if s.plans != nil {
		snap.PlanEntries = s.plans.len()
	}
	if s.inter != nil {
		snap.InterEntries, snap.InterBytes = s.inter.usage()
	}
	return snap
}
