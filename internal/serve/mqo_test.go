package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/resilience"
)

// sleepToPark gives a goroutine blocked on a shared-producer wait ample
// time to actually park before the test settles the entry. The registry
// tests below stay correct even when the waiter loses the race (it then
// takes the re-election path, which the assertions also accept where noted),
// but the interesting path is the parked one.
const sleepToPark = 100 * time.Millisecond

func testBatch(t *testing.T) *mqoBatch {
	t.Helper()
	b, fresh := newBatcher(time.Minute).assign(time.Now())
	if b == nil || !fresh {
		t.Fatalf("first assign: batch=%v fresh=%v, want a fresh batch", b, fresh)
	}
	return b
}

func TestBatcherWindows(t *testing.T) {
	b := newBatcher(10 * time.Millisecond)
	t0 := time.Now()
	b1, fresh := b.assign(t0)
	if b1 == nil || !fresh {
		t.Fatalf("first admission: fresh=%v, want a new batch", fresh)
	}
	b2, fresh := b.assign(t0.Add(5 * time.Millisecond))
	if b2 != b1 || fresh {
		t.Error("admission inside the window did not join the open batch")
	}
	// The window is anchored at the opening admission, not extended by
	// joiners: 11ms after the first admission a new batch opens.
	b3, fresh := b.assign(t0.Add(11 * time.Millisecond))
	if b3 == b1 || !fresh {
		t.Error("admission past the window did not open a fresh batch")
	}
}

func TestMQOPublishAdoptAccounting(t *testing.T) {
	b := testBatch(t)
	s1, s2 := b.session("ns"), b.session("ns")
	if _, role, err := s1.Acquire(context.Background(), "k"); err != nil || role != engine.SharedLead {
		t.Fatalf("first acquire: role=%v err=%v, want lead", role, err)
	}
	v := denseIntermediate(3, 3)
	s1.Publish("k", v, 42)
	got, role, err := s2.Acquire(context.Background(), "k")
	if err != nil || role != engine.SharedHit {
		t.Fatalf("acquire after publish: role=%v err=%v, want hit", role, err)
	}
	if got.Data != v.Data || got.VRows != v.VRows || got.VCols != v.VCols {
		t.Error("adopted value is not the published one")
	}
	if s1.led != 1 || s1.hits != 0 || s2.hits != 1 || s2.flopSaved != 42 {
		t.Errorf("accounting: led=%d producer-hits=%d adopter-hits=%d saved=%v, want 1/0/1/42",
			s1.led, s1.hits, s2.hits, s2.flopSaved)
	}
}

func TestMQONamespaceIsolation(t *testing.T) {
	b := testBatch(t)
	s1, s2 := b.session("ds1@0|c1"), b.session("ds2@0|c1")
	if _, role, _ := s1.Acquire(context.Background(), "k"); role != engine.SharedLead {
		t.Fatalf("role=%v, want lead", role)
	}
	s1.Publish("k", denseIntermediate(2, 2), 1)
	// The same raw key in a different namespace is a different producer.
	if _, role, err := s2.Acquire(context.Background(), "k"); err != nil || role != engine.SharedLead {
		t.Fatalf("cross-namespace acquire: role=%v err=%v, want an independent lead", role, err)
	}
}

// TestMQOSoloWhileLeading: a session holding an unsettled leadership never
// blocks on another producer — it computes locally instead. This is the
// invariant that makes waiting on shared entries deadlock-free.
func TestMQOSoloWhileLeading(t *testing.T) {
	b := testBatch(t)
	s1, s2 := b.session("ns"), b.session("ns")
	if _, role, _ := s1.Acquire(context.Background(), "k1"); role != engine.SharedLead {
		t.Fatalf("s1 on k1: role=%v, want lead", role)
	}
	if _, role, _ := s2.Acquire(context.Background(), "k2"); role != engine.SharedLead {
		t.Fatalf("s2 on k2: role=%v, want lead", role)
	}
	// Both hold unsettled claims; acquiring each other's key must not block.
	if _, role, err := s1.Acquire(context.Background(), "k2"); err != nil || role != engine.SharedSolo {
		t.Errorf("s1 on unsettled k2 while leading k1: role=%v err=%v, want solo", role, err)
	}
	if _, role, err := s2.Acquire(context.Background(), "k1"); err != nil || role != engine.SharedSolo {
		t.Errorf("s2 on unsettled k1 while leading k2: role=%v err=%v, want solo", role, err)
	}
	// A settled entry is adoptable even while leading (no wait involved).
	s2.Publish("k2", denseIntermediate(2, 2), 1)
	if _, role, err := s1.Acquire(context.Background(), "k2"); err != nil || role != engine.SharedHit {
		t.Errorf("s1 on settled k2 while leading k1: role=%v err=%v, want hit", role, err)
	}
}

// TestMQOFailurePropagatesTyped: a producer that fails hands every parked
// waiter an error wrapping the production failure (here a typed integrity
// error), and the failed entry is removed so a later acquirer re-elects.
func TestMQOFailurePropagatesTyped(t *testing.T) {
	b := testBatch(t)
	s1, s2 := b.session("ns"), b.session("ns")
	if _, role, _ := s1.Acquire(context.Background(), "k"); role != engine.SharedLead {
		t.Fatalf("role=%v, want lead", role)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := s2.Acquire(context.Background(), "k")
		got <- err
	}()
	time.Sleep(sleepToPark)
	s1.Fail("k", fmt.Errorf("multiply: %w", integrity.ErrCorruption))
	if err := <-got; !errors.Is(err, integrity.ErrCorruption) {
		t.Fatalf("waiter error = %v, want it to wrap integrity.ErrCorruption", err)
	}
	if _, role, err := b.session("ns").Acquire(context.Background(), "k"); err != nil || role != engine.SharedLead {
		t.Fatalf("acquire after failure: role=%v err=%v, want a re-elected lead", role, err)
	}
}

// TestMQOCanceledLeaderPromotesWaiter: a leader whose own context died is
// not the waiter's problem — the waiter loops back and promotes itself,
// mirroring the plan cache's failed-leader path.
func TestMQOCanceledLeaderPromotesWaiter(t *testing.T) {
	b := testBatch(t)
	s1, s2, s3 := b.session("ns"), b.session("ns"), b.session("ns")
	if _, role, _ := s1.Acquire(context.Background(), "k"); role != engine.SharedLead {
		t.Fatalf("role=%v, want lead", role)
	}
	type outcome struct {
		role engine.SharedRole
		err  error
	}
	got := make(chan outcome, 1)
	go func() {
		_, role, err := s2.Acquire(context.Background(), "k")
		got <- outcome{role, err}
	}()
	time.Sleep(sleepToPark)
	s1.Fail("k", fmt.Errorf("leader timed out: %w", engine.ErrCanceled))
	if o := <-got; o.err != nil || o.role != engine.SharedLead {
		t.Fatalf("waiter after canceled leader: role=%v err=%v, want promotion to lead", o.role, o.err)
	}
	// The promoted leader settles the claim and a third session adopts it.
	s2.Publish("k", denseIntermediate(2, 2), 5)
	if _, role, err := s3.Acquire(context.Background(), "k"); err != nil || role != engine.SharedHit {
		t.Fatalf("acquire after promotion settled: role=%v err=%v, want hit", role, err)
	}
}

// TestMQOCloseAbandonsWaiters: a producing run that unwinds without
// settling (the panic path) fails its parked waiters with a typed
// Internal-class error instead of hanging them.
func TestMQOCloseAbandonsWaiters(t *testing.T) {
	b := testBatch(t)
	s1, s2 := b.session("ns"), b.session("ns")
	if _, role, _ := s1.Acquire(context.Background(), "k"); role != engine.SharedLead {
		t.Fatalf("role=%v, want lead", role)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := s2.Acquire(context.Background(), "k")
		got <- err
	}()
	time.Sleep(sleepToPark)
	if n := s1.close(nil); n != 1 {
		t.Fatalf("close settled %d claims, want 1", n)
	}
	err := <-got
	if !errors.Is(err, errSharedAbandoned) {
		t.Fatalf("abandoned waiter error = %v, want errSharedAbandoned", err)
	}
	if qerr := (&Server{}).classify(7, "execute", err); !resilience.IsClass(qerr, resilience.Internal) {
		t.Errorf("abandoned error classified as %v, want Internal", qerr)
	}
	// close on a session with nothing outstanding is a no-op.
	if n := s1.close(nil); n != 0 {
		t.Errorf("second close settled %d claims, want 0", n)
	}
}

// TestMQOBatchedMatchesSerialBitwise is the end-to-end sharing gate: an
// overlapping query burst under a batching window must produce results
// bitwise identical to serial unbatched execution while adopting shared
// producers and charging strictly less FLOP. The cross-run intermediate
// cache is disabled on both servers so batch sharing is the only reuse
// mechanism in play.
func TestMQOBatchedMatchesSerialBitwise(t *testing.T) {
	workloads := []Query{
		testQuery(t, algorithms.DFP, "cri1", 2),
		testQuery(t, algorithms.GD, "cri1", 2),
	}
	serial := New(Config{Workers: 1, IntermediateBudgetBytes: -1})
	refs := make([]*QueryResult, len(workloads))
	for i, q := range workloads {
		res, err := serial.Do(context.Background(), q)
		if err != nil {
			t.Fatalf("serial reference %d: %v", i, err)
		}
		refs[i] = res
	}
	if err := serial.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	const fan = 4
	n := fan * len(workloads)
	s := New(Config{
		Workers:                 4,
		QueueDepth:              n,
		IntermediateBudgetBytes: -1,
		BatchWindow:             2 * time.Second, // every admission below lands in one batch
	})
	defer s.Shutdown(context.Background())
	results := make([]*QueryResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = s.Do(context.Background(), workloads[k%len(workloads)])
		}(k)
	}
	wg.Wait()

	totalHits, totalLed := 0, 0
	batchedFLOP, serialFLOP := 0.0, 0.0
	for k, res := range results {
		if errs[k] != nil {
			t.Fatalf("batched query %d: %v", k, errs[k])
		}
		bitwiseEqualValues(t, refs[k%len(workloads)].Values, res.Values)
		totalHits += res.SharedHits
		totalLed += res.SharedProduced
		batchedFLOP += res.FLOP
		serialFLOP += refs[k%len(workloads)].FLOP
	}
	if totalHits == 0 {
		t.Fatal("no shared-producer adoptions across an overlapping batch")
	}
	if totalLed == 0 {
		t.Fatal("no shared-producer executions recorded")
	}
	if batchedFLOP >= serialFLOP {
		t.Errorf("batched arm charged %.6g FLOP, not strictly below the serial-equivalent %.6g", batchedFLOP, serialFLOP)
	}
	snap := s.Metrics()
	if snap.MQOBatches == 0 || snap.MQOBatchedQueries != uint64(n) {
		t.Errorf("batches=%d batched-queries=%d, want >0 and %d", snap.MQOBatches, snap.MQOBatchedQueries, n)
	}
	if snap.MQOOverlapKeys == 0 {
		t.Error("cross-query subexpression index observed no overlapping keys")
	}
	if snap.MQOSharedHits != uint64(totalHits) || snap.MQOSharedProduced != uint64(totalLed) {
		t.Errorf("server totals hits=%d produced=%d, per-query sums %d/%d",
			snap.MQOSharedHits, snap.MQOSharedProduced, totalHits, totalLed)
	}
	if snap.MQOFlopSaved <= 0 {
		t.Errorf("MQOFlopSaved = %v, want > 0", snap.MQOFlopSaved)
	}
}

// TestMQOWindowZeroIsUnbatched: BatchWindow 0 must reproduce the pre-MQO
// serving path exactly — no batcher, no sessions, zero MQO metrics, and
// bitwise-identical results.
func TestMQOWindowZeroIsUnbatched(t *testing.T) {
	q := testQuery(t, algorithms.DFP, "cri1", 2)
	serial := New(Config{Workers: 1, IntermediateBudgetBytes: -1})
	ref, err := serial.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, QueueDepth: 8, IntermediateBudgetBytes: -1})
	defer s.Shutdown(context.Background())
	if s.batches != nil {
		t.Fatal("BatchWindow 0 built a batcher")
	}
	const n = 4
	results := make([]*QueryResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = s.Do(context.Background(), q)
		}(k)
	}
	wg.Wait()
	for k, res := range results {
		if errs[k] != nil {
			t.Fatalf("query %d: %v", k, errs[k])
		}
		if res.SharedHits != 0 || res.SharedProduced != 0 {
			t.Errorf("query %d reported shared hits=%d produced=%d with the window off", k, res.SharedHits, res.SharedProduced)
		}
		bitwiseEqualValues(t, ref.Values, res.Values)
	}
	snap := s.Metrics()
	if snap.MQOBatches != 0 || snap.MQOBatchedQueries != 0 || snap.MQOOverlapKeys != 0 ||
		snap.MQOSharedHits != 0 || snap.MQOSharedProduced != 0 || snap.MQOAbandoned != 0 || snap.MQOFlopSaved != 0 {
		t.Errorf("MQO metrics nonzero with the window off: %+v", snap)
	}
}

// TestMQOCorruptedQueriesFailTypedNeverSilent: queries that schedule an
// unrepairable payload corruption, batched together under a window, must
// every one fail with a typed Integrity-class error — and no corrupted
// value may be adopted by a sibling.
func TestMQOCorruptedQueriesFailTypedNeverSilent(t *testing.T) {
	q := testQuery(t, algorithms.DFP, "cri1", 2)
	// Bits ≡ 63 mod 64 forces the sticky at-rest corruption: every lineage
	// retry re-reads the same bad bytes, so the repair budget exhausts into
	// a typed error (see engine's TestStickyCorruptionFailsTyped).
	q.Faults = fault.FromEvents(fault.Event{At: 1e-9, Kind: fault.Corruption, Bits: 63})
	q.Verify = integrity.VerifyDigest

	s := New(Config{Workers: 4, QueueDepth: 8, IntermediateBudgetBytes: -1, BatchWindow: 2 * time.Second})
	defer s.Shutdown(context.Background())
	const n = 4
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, errs[k] = s.Do(context.Background(), q)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err == nil {
			t.Fatalf("query %d succeeded with an unrepairable corruption scheduled", k)
		}
		if !resilience.IsClass(err, resilience.Integrity) {
			t.Errorf("query %d failed with %v, want Integrity class", k, err)
		}
		if !errors.Is(err, integrity.ErrCorruption) {
			t.Errorf("query %d error does not wrap integrity.ErrCorruption: %v", k, err)
		}
	}
	if snap := s.Metrics(); snap.MQOSharedHits != 0 {
		t.Errorf("a corrupted producer's value was adopted %d times", snap.MQOSharedHits)
	}
}
