package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"remac/internal/engine"
	"remac/internal/matrix"
	"remac/internal/opt"
)

func denseIntermediate(rows, cols int) engine.Intermediate {
	m := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, float64(i*cols+j+1))
		}
	}
	return engine.Intermediate{Data: m, VRows: int64(rows), VCols: int64(cols)}
}

func TestInterCacheBudgetEviction(t *testing.T) {
	v := denseIntermediate(10, 10)
	per := matrix.SizeBytesFor(10, 10, v.Data.Sparsity())
	c := newInterCache(3 * per)
	c.put("a", v)
	c.put("b", v)
	c.put("c", v)
	if n, used := c.usage(); n != 3 || used != 3*per {
		t.Fatalf("usage = %d entries/%d bytes, want 3/%d", n, used, 3*per)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("lost entry a")
	}
	c.put("d", v)
	if _, ok := c.get("b"); ok {
		t.Error("LRU victim b survived over-budget insert")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %s evicted unexpectedly", k)
		}
	}
	// A value larger than the whole budget is refused outright.
	c.put("huge", denseIntermediate(100, 100))
	if _, ok := c.get("huge"); ok {
		t.Error("over-budget value was cached")
	}
	if n, _ := c.usage(); n != 3 {
		t.Errorf("entries = %d after refused insert, want 3", n)
	}
}

func TestInterCacheDropNamespace(t *testing.T) {
	v := denseIntermediate(4, 4)
	c := newInterCache(1 << 20)
	c.put("ds1@0|k1", v)
	c.put("ds1@0|k2", v)
	c.put("ds2@0|k1", v)
	c.dropNamespace("ds1@")
	if _, ok := c.get("ds1@0|k1"); ok {
		t.Error("ds1 entry survived its namespace drop")
	}
	if _, ok := c.get("ds2@0|k1"); !ok {
		t.Error("ds2 entry dropped by ds1 invalidation")
	}
	if n, used := c.usage(); n != 1 || used <= 0 {
		t.Errorf("usage = %d entries/%d bytes, want 1 entry with positive bytes", n, used)
	}
}

func TestInterViewCountsAndPrefixes(t *testing.T) {
	c := newInterCache(1 << 20)
	a := c.view("nsA")
	b := c.view("nsB")
	v := denseIntermediate(2, 2)
	a.Put("k", v)
	if _, ok := a.Get("k"); !ok {
		t.Fatal("nsA lost its own entry")
	}
	if _, ok := b.Get("k"); ok {
		t.Error("nsB read nsA's entry")
	}
	if a.hits != 1 || a.misses != 0 || b.hits != 0 || b.misses != 1 {
		t.Errorf("counters: a=%d/%d b=%d/%d, want 1/0 and 0/1", a.hits, a.misses, b.hits, b.misses)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	p := newPlanCache(2)
	mk := func(key string) (*opt.Compiled, bool, error) {
		return p.getOrCompile(context.Background(), key, func() (*opt.Compiled, error) {
			return &opt.Compiled{}, nil
		})
	}
	if _, hit, _ := mk("a"); hit {
		t.Error("empty cache reported a hit")
	}
	mk("b")
	mk("a") // refresh a; b becomes LRU
	mk("c") // evicts b
	if _, hit, _ := mk("a"); !hit {
		t.Error("a evicted despite recent use")
	}
	if _, hit, _ := mk("b"); hit {
		t.Error("LRU victim b still cached")
	}
	if p.len() != 2 {
		t.Errorf("len = %d, want 2", p.len())
	}
}

// TestPlanCacheCoalesces: concurrent requests for one key compile once.
func TestPlanCacheCoalesces(t *testing.T) {
	p := newPlanCache(4)
	var compiles atomic.Int32
	release := make(chan struct{})
	compile := func() (*opt.Compiled, error) {
		compiles.Add(1)
		<-release
		return &opt.Compiled{}, nil
	}
	const n = 8
	var wg sync.WaitGroup
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := p.getOrCompile(context.Background(), "k", compile)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			hits[i] = hit
		}(i)
	}
	// Let the leader enter compile and the waiters pile up, then release.
	for compiles.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if got := compiles.Load(); got != 1 {
		t.Errorf("compile ran %d times for one key, want 1", got)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers compiled, want exactly the leader", misses)
	}
}

// TestPlanCacheFailureNotCached: a failed compile is never cached and the
// key is retryable.
func TestPlanCacheFailureNotCached(t *testing.T) {
	p := newPlanCache(4)
	boom := errors.New("boom")
	if _, hit, err := p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
		return nil, boom
	}); !errors.Is(err, boom) || hit {
		t.Fatalf("failed compile: hit=%v err=%v, want miss with boom", hit, err)
	}
	if p.len() != 0 {
		t.Errorf("failed compile cached: len=%d", p.len())
	}
	if _, hit, err := p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
		return &opt.Compiled{}, nil
	}); err != nil || hit {
		t.Errorf("retry after failure: hit=%v err=%v", hit, err)
	}
}

// TestInterCachePutRefreshesBytes: re-offering an existing key with a
// different modelled size must move the byte accounting to the new size —
// the old behavior kept the stale charge, drifting used away from the sum
// of resident entries until the budget was effectively corrupted.
func TestInterCachePutRefreshesBytes(t *testing.T) {
	small := denseIntermediate(4, 4)
	big := denseIntermediate(8, 8)
	smallBytes := matrix.SizeBytesFor(4, 4, small.Data.Sparsity())
	bigBytes := matrix.SizeBytesFor(8, 8, big.Data.Sparsity())
	c := newInterCache(1 << 20)
	c.put("k", small)
	c.put("k", big) // re-offer: same key, larger modelled size
	if n, used := c.usage(); n != 1 || used != bigBytes {
		t.Fatalf("after grow re-offer: %d entries/%d bytes, want 1/%d", n, used, bigBytes)
	}
	got, ok := c.get("k")
	if !ok || got.Data != big.Data {
		t.Fatal("re-offer did not refresh the resident value")
	}
	c.put("k", small) // and back down: accounting follows both directions
	if n, used := c.usage(); n != 1 || used != smallBytes {
		t.Fatalf("after shrink re-offer: %d entries/%d bytes, want 1/%d", n, used, smallBytes)
	}
	// Eviction decisions after refreshes see the true usage: a budget with
	// room for the small value plus one more is not blown by stale bytes.
	c2 := newInterCache(2 * bigBytes)
	c2.put("a", big)
	c2.put("a", small)
	c2.put("b", big)
	if n, used := c2.usage(); n != 2 || used != smallBytes+bigBytes {
		t.Errorf("refresh+insert: %d entries/%d bytes, want 2/%d", n, used, smallBytes+bigBytes)
	}
	if _, ok := c2.get("a"); !ok {
		t.Error("entry a evicted although the refreshed usage fits the budget")
	}
}

// TestPlanCacheWaiterFallsBackOnLeaderFailure: a waiter coalesced behind a
// failing leader compiles independently rather than inheriting the error.
func TestPlanCacheWaiterFallsBackOnLeaderFailure(t *testing.T) {
	p := newPlanCache(4)
	boom := errors.New("boom")
	release := make(chan struct{})
	entered := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
			close(entered)
			<-release
			return nil, boom
		})
		leaderDone <- err
	}()
	<-entered // the leader is registered in-flight and blocked

	var waiterCompiled atomic.Int32
	waiterDone := make(chan struct{})
	var waiterC *opt.Compiled
	var waiterHit bool
	var waiterErr error
	go func() {
		waiterC, waiterHit, waiterErr = p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
			waiterCompiled.Add(1)
			return &opt.Compiled{}, nil
		})
		close(waiterDone)
	}()
	// Give the waiter a moment to park on the leader's ready channel, then
	// fail the leader. (If the waiter hasn't parked yet it still takes the
	// fallback path — the property under test holds either way.)
	close(release)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want boom", err)
	}
	<-waiterDone
	if waiterErr != nil || waiterC == nil {
		t.Fatalf("waiter: err=%v compiled=%v, want fallback success", waiterErr, waiterC)
	}
	if waiterHit {
		t.Error("waiter reported a hit behind a failed leader")
	}
	if waiterCompiled.Load() != 1 {
		t.Errorf("waiter compiled %d times, want 1", waiterCompiled.Load())
	}
}

// TestPlanCacheFailedLeaderPromotesWaiter: when a compiling leader fails
// with a crowd of waiters parked behind it, exactly one waiter is promoted
// to recompile and its success is cached for everyone — the old behavior
// sent every waiter off to compile independently and never cached any of
// their successes, costing one compilation per waiter instead of one total.
func TestPlanCacheFailedLeaderPromotesWaiter(t *testing.T) {
	p := newPlanCache(4)
	boom := errors.New("boom")
	release := make(chan struct{})
	entered := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
			close(entered)
			<-release
			return nil, boom
		})
		leaderDone <- err
	}()
	<-entered // the leader is registered in-flight and blocked

	const n = 6
	var waiterCompiles atomic.Int32
	hits := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
				waiterCompiles.Add(1)
				return &opt.Compiled{}, nil
			})
			hits[i], errs[i] = hit, err
		}(i)
	}
	// Let the waiters pile up behind the in-flight leader, then fail it.
	// (A waiter that hasn't parked yet races through the same promotion
	// path on arrival; compilations still serialize through the in-flight
	// slot and each success is cached, so the assertions hold either way.)
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want boom", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := waiterCompiles.Load(); got != 1 {
		t.Errorf("a failed leader cost %d waiter recompiles, want exactly 1", got)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d waiters reported compiling, want exactly the promoted one", misses)
	}
	// The promoted waiter's success was cached: a later request hits
	// without compiling, and the cache holds the one entry.
	if _, hit, err := p.getOrCompile(context.Background(), "k", func() (*opt.Compiled, error) {
		return nil, errors.New("unexpected recompile")
	}); err != nil || !hit {
		t.Errorf("post-promotion lookup: hit=%v err=%v, want cached hit", hit, err)
	}
	if p.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", p.len())
	}
}
