package serve

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"remac/internal/engine"
	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/opt"
)

// planKey is the compiled-plan cache identity: canonical program text plus
// everything else that can change the chosen plan — input shapes and
// sparsity buckets, cluster configuration, strategy, estimator, combiner,
// and the expected iteration count the adaptive selector amortizes over.
// Key computation is on the warm path, so the per-matrix sparsity scan is
// memoized by matrix identity (sparsitySig).
func (s *Server) planKey(q Query, cfg opt.Config) (string, error) {
	canon, err := lang.Canonical(q.Script)
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(q.Inputs))
	for name := range q.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(canon)
	b.WriteByte('\n')
	for _, name := range names {
		in := q.Inputs[name]
		if in.Data == nil {
			return "", fmt.Errorf("serve: input %q has nil data", name)
		}
		vr, vc := in.VRows, in.VCols
		if vr <= 0 {
			vr = int64(in.Data.Rows())
		}
		if vc <= 0 {
			vc = int64(in.Data.Cols())
		}
		fmt.Fprintf(&b, "%s=%dx%d@%s;", name, vr, vc, s.sparsitySig(in.Data))
	}
	fmt.Fprintf(&b, "\n%v|%s|%v|it%d|%s",
		cfg.Strategy, cfg.Estimator.Name(), cfg.Combiner, cfg.Iterations, clusterSig(cfg.Cluster))
	return b.String(), nil
}

// metaSigCap bounds the sparsity-signature memo (sparsitySig).
const metaSigCap = 4096

// metaSig is one memoized per-matrix sparsity bucket.
type metaSig struct {
	m   *matrix.Matrix
	sig string
}

// sparsitySig returns a matrix's bucketed sparsity, memoized by identity:
// matrices are immutable once handed to the engine, and counting nonzeros
// of a dense matrix is O(cells) — too slow for the plan-cache hit path.
// The memo is a bounded LRU: a stream of never-repeating matrices evicts
// only the coldest entry, so the hot inputs of live sessions keep their
// memoized signature instead of being rescanned after a wholesale flush.
func (s *Server) sparsitySig(m *matrix.Matrix) string {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if s.metaSigs == nil {
		s.metaSigs = map[*matrix.Matrix]*list.Element{}
		s.metaLRU = list.New()
	}
	if el, ok := s.metaSigs[m]; ok {
		s.metaLRU.MoveToFront(el)
		return el.Value.(*metaSig).sig
	}
	sig := sparsityBucket(m.Sparsity())
	s.metaSigs[m] = s.metaLRU.PushFront(&metaSig{m: m, sig: sig})
	for s.metaLRU.Len() > metaSigCap {
		back := s.metaLRU.Back()
		s.metaLRU.Remove(back)
		delete(s.metaSigs, back.Value.(*metaSig).m)
	}
	return sig
}

// sparsityBucket coarsens a sparsity to two significant digits so inputs
// differing only by estimation noise share plans, while order-of-magnitude
// differences (which flip dense/sparse kernel choices) do not.
func sparsityBucket(s float64) string {
	if s >= 1 {
		return "1"
	}
	return strconv.FormatFloat(s, 'e', 1, 64)
}

// planEntry is one cached (or in-flight) compilation.
type planEntry struct {
	key   string
	c     *opt.Compiled
	err   error
	ready chan struct{}
}

// planCache is an LRU of compiled plans with in-flight coalescing: one
// compilation per key runs at a time, and concurrent requests for the same
// key wait for it rather than duplicating the search.
type planCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recent; elements hold *planEntry
	items    map[string]*list.Element
	inflight map[string]*planEntry
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:      capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*planEntry{},
	}
}

// getOrCompile returns the plan for key, compiling it at most once across
// concurrent callers. hit reports whether this caller avoided compiling
// itself (cached entry or a successful concurrent leader).
func (p *planCache) getOrCompile(ctx context.Context, key string, compile func() (*opt.Compiled, error)) (c *opt.Compiled, hit bool, err error) {
	var e *planEntry
	for e == nil {
		p.mu.Lock()
		if el, ok := p.items[key]; ok {
			p.ll.MoveToFront(el)
			c = el.Value.(*planEntry).c
			p.mu.Unlock()
			return c, true, nil
		}
		if w, ok := p.inflight[key]; ok {
			p.mu.Unlock()
			select {
			case <-w.ready:
			case <-ctx.Done():
				return nil, false, opt.Canceled("serve: plan wait", ctx.Err())
			}
			if w.err == nil {
				return w.c, true, nil
			}
			// The leader failed; its error may be specific to its context
			// (e.g. a deadline), so don't inherit it. Loop instead: the
			// first waiter back through the lock promotes itself to the new
			// in-flight leader and its success is cached, while the rest
			// coalesce behind it — a failed leader costs the group one
			// recompile, not one per waiter.
			continue
		}
		e = &planEntry{key: key, ready: make(chan struct{})}
		p.inflight[key] = e
		p.mu.Unlock()
	}

	e.c, e.err = compile()

	p.mu.Lock()
	delete(p.inflight, key)
	if e.err == nil {
		p.items[key] = p.ll.PushFront(e)
		for p.ll.Len() > p.cap {
			back := p.ll.Back()
			p.ll.Remove(back)
			delete(p.items, back.Value.(*planEntry).key)
		}
	}
	p.mu.Unlock()
	close(e.ready)
	return e.c, false, e.err
}

func (p *planCache) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}

// interEntry is one cached loop-constant intermediate.
type interEntry struct {
	key   string
	v     engine.Intermediate
	bytes int64
}

// interCache is a byte-budgeted LRU of materialized LSE intermediates.
// Entries are charged at the value's modelled virtual-scale size — the
// cache stands in for cluster memory, so its budget is accounted in the
// same units the simulated cluster's cost model uses.
type interCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recent; elements hold *interEntry
	items  map[string]*list.Element
}

func newInterCache(budget int64) *interCache {
	return &interCache{budget: budget, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *interCache) get(key string) (engine.Intermediate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return engine.Intermediate{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*interEntry).v, true
}

func (c *interCache) put(key string, v engine.Intermediate) {
	if v.Data == nil {
		return
	}
	bytes := matrix.SizeBytesFor(int(v.VRows), int(v.VCols), v.Data.Sparsity())
	if bytes > c.budget {
		return // larger than the whole budget: not cacheable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Refresh the value and its byte accounting: a re-offer can carry a
		// different modelled size (the producer's sparsity settled
		// differently), and keeping the old charge would drift used away
		// from the sum of resident entries.
		e := el.Value.(*interEntry)
		c.used += bytes - e.bytes
		e.v, e.bytes = v, bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&interEntry{key: key, v: v, bytes: bytes})
		c.used += bytes
	}
	for c.used > c.budget {
		back := c.ll.Back()
		e := back.Value.(*interEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.bytes
	}
}

// dropNamespace evicts every entry whose key starts with prefix (dataset
// invalidation).
func (c *interCache) dropNamespace(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*interEntry)
		if strings.HasPrefix(e.key, prefix) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.used -= e.bytes
		}
		el = next
	}
}

func (c *interCache) usage() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.used
}

// view scopes the cache to one (dataset version, cluster) namespace and
// counts this query's hits and misses. A view is used by a single engine
// run (one goroutine); the underlying cache handles cross-query
// synchronization.
func (c *interCache) view(namespace string) *interView {
	return &interView{ns: namespace, c: c}
}

type interView struct {
	ns           string
	c            *interCache
	hits, misses int
}

func (v *interView) Get(key string) (engine.Intermediate, bool) {
	iv, ok := v.c.get(v.ns + "|" + key)
	if ok {
		v.hits++
	} else {
		v.misses++
	}
	return iv, ok
}

func (v *interView) Put(key string, iv engine.Intermediate) {
	v.c.put(v.ns+"|"+key, iv)
}
