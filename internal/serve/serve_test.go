package serve

import (
	"context"
	"errors"
	"math"
	"regexp"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/matrix"
	"remac/internal/opt"
	"remac/internal/resilience"
)

// testQuery builds a serve query for a workload over a loaded dataset.
func testQuery(t *testing.T, alg algorithms.Name, dsName string, iters int) Query {
	t.Helper()
	src, err := algorithms.Script(alg, iters)
	if err != nil {
		t.Fatal(err)
	}
	ds := data.MustLoad(dsName)
	ins := map[string]engine.Input{}
	if alg == algorithms.GNMF {
		w, h := ds.GNMFFactors(10)
		ins["V"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["W0"] = engine.Input{Data: w, VRows: ds.VRows, VCols: 10}
		ins["H0"] = engine.Input{Data: h, VRows: 10, VCols: ds.VCols}
	} else {
		ins["A"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["b"] = engine.Input{Data: ds.Label(), VRows: ds.VRows, VCols: 1}
		ins["H0"] = engine.Input{Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols}
		ins["x0"] = engine.Input{Data: ds.InitialX(), VRows: ds.VCols, VCols: 1}
	}
	q := NewQuery(src, ins)
	q.Dataset = dsName
	q.Iterations = iters
	return q
}

// bitwiseEqual compares every cell by its float64 bit pattern — stricter
// than numeric equality (distinguishes -0 from 0 and any NaN payloads).
func bitwiseEqual(a, b *matrix.Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func bitwiseEqualValues(t *testing.T, a, b map[string]*matrix.Matrix) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result variable sets differ: %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			t.Fatalf("variable %s missing from second result", name)
		}
		if !bitwiseEqual(av, bv) {
			t.Errorf("variable %s differs bitwise between runs", name)
		}
	}
}

// TestServeCachedResultsBitwiseIdentical is the core cache-correctness
// property: a query answered from warm caches (plan + intermediates) must
// return results bitwise identical to a fully cold, cache-free run.
func TestServeCachedResultsBitwiseIdentical(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.DFP, "cri1", 5)

	// Cold reference: all caches bypassed.
	ref := q
	ref.NoPlanCache = true
	ref.NoIntermediateCache = true
	refRes, err := s.Do(context.Background(), ref)
	if err != nil {
		t.Fatalf("cache-off run: %v", err)
	}
	if refRes.PlanCacheHit || refRes.IntermediateHits != 0 {
		t.Fatalf("cache-off run consulted caches: %+v", refRes)
	}

	// First cached run: populates both caches.
	warm1, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("first cached run: %v", err)
	}
	if warm1.PlanCacheHit {
		t.Error("first cached run reported a plan-cache hit on an empty cache")
	}
	// Second cached run: everything should hit.
	warm2, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("second cached run: %v", err)
	}
	if !warm2.PlanCacheHit {
		t.Error("second run missed the plan cache")
	}
	if warm2.IntermediateHits == 0 {
		t.Error("second run got no intermediate-cache hits (DFP has LSE intermediates)")
	}
	bitwiseEqualValues(t, refRes.Values, warm1.Values)
	bitwiseEqualValues(t, refRes.Values, warm2.Values)
}

// TestPlanCacheWarmCompileFaster checks the acceptance criterion that a
// plan-cache hit costs at least 10x less than a cold compilation.
func TestPlanCacheWarmCompileFaster(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri2", 5)
	cold, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCacheHit {
		t.Fatal("cold run hit the plan cache")
	}
	// Best warm lookup of several, to keep scheduler noise out of the
	// ratio; the cold compile runs the full block-wise search so the gap
	// is orders of magnitude.
	warm := math.Inf(1)
	for i := 0; i < 3; i++ {
		res, err := s.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PlanCacheHit {
			t.Fatal("warm run missed the plan cache")
		}
		warm = math.Min(warm, res.CompileSec)
	}
	if warm*10 > cold.CompileSec {
		t.Errorf("warm plan lookup %.6fs not >=10x cheaper than cold compile %.6fs", warm, cold.CompileSec)
	}
}

// TestIntermediatesDoNotSurviveDatasetBump: after InvalidateDataset the
// old intermediates must be unreachable (negative cache-correctness test).
func TestIntermediatesDoNotSurviveDatasetBump(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri1", 5)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	res, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateHits == 0 {
		t.Fatal("warm run got no intermediate hits; test cannot proceed")
	}
	s.InvalidateDataset("cri1")
	if entries, _ := s.inter.usage(); entries != 0 {
		t.Errorf("%d intermediate entries survived dataset invalidation", entries)
	}
	res, err = s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateHits != 0 {
		t.Errorf("got %d intermediate hits across a dataset version bump", res.IntermediateHits)
	}
}

// TestIntermediatesDoNotCrossClusterConfigs: values computed under one
// simulated cluster must not serve a query under another (negative test).
func TestIntermediatesDoNotCrossClusterConfigs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri1", 5)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	other := q
	other.Cluster = cluster.DefaultConfig()
	other.Cluster.Nodes = 3
	res, err := s.Do(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Error("plan compiled for one cluster served another")
	}
	if res.IntermediateHits != 0 {
		t.Errorf("got %d intermediate hits across cluster configs", res.IntermediateHits)
	}
}

// TestPlanCacheIgnoresFormatting: scripts differing only in whitespace and
// comments share a plan.
func TestPlanCacheIgnoresFormatting(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 3)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	reformatted := q
	reformatted.Script = "# a comment\n" + q.Script + "\n\n"
	res, err := s.Do(context.Background(), reformatted)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Error("reformatted script missed the plan cache")
	}
}

// TestOverloadAndCancel exercises admission-queue rejection and caller
// cancellation deterministically against a server with no workers (so jobs
// stay queued).
func TestOverloadAndCancel(t *testing.T) {
	s := &Server{
		cfg:      Config{QueueDepth: 1}.withDefaults(),
		queue:    make(chan *job, 1),
		metrics:  newMetrics(),
		versions: map[string]int64{},
	}
	q := testQuery(t, algorithms.GD, "cri1", 2)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, q)
		errc <- err
	}()
	// Wait until the first job occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Do(context.Background(), q); !errors.Is(err, ErrOverloaded) {
		t.Errorf("full queue: got %v, want ErrOverloaded", err)
	}
	snap := s.Metrics()
	if snap.Rejected != 1 || snap.QueueDepth != 1 {
		t.Errorf("metrics after rejection: rejected=%d queue=%d, want 1,1", snap.Rejected, snap.QueueDepth)
	}
	cancel()
	if err := <-errc; !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("canceled caller: got %v, want ErrCanceled", err)
	}
	s.mu.Lock()
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	if _, err := s.Do(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Errorf("closed server: got %v, want ErrClosed", err)
	}
}

// TestQueryTimeout: a query with an unreachable deadline fails with
// ErrCanceled and is accounted as canceled, not failed.
func TestQueryTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri2", 5)
	q.Timeout = time.Nanosecond
	if _, err := s.Do(context.Background(), q); !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("timed-out query: got %v, want ErrCanceled", err)
	}
	snap := s.Metrics()
	if snap.Canceled != 1 || snap.Failed != 0 {
		t.Errorf("canceled=%d failed=%d, want 1,0", snap.Canceled, snap.Failed)
	}
}

// TestCanceledWhileQueued is the regression test for the Do context race:
// a query whose context expires while it still sits in the admission queue
// must be counted as canceled — never executed — and its jobOut channel
// must be settled (buffered send) so nothing leaks.
func TestCanceledWhileQueued(t *testing.T) {
	// No worker goroutines: jobs stay queued until we drain by hand.
	s := &Server{
		cfg:      Config{QueueDepth: 2}.withDefaults(),
		queue:    make(chan *job, 2),
		metrics:  newMetrics(),
		versions: map[string]int64{},
	}
	executed := false
	q := testQuery(t, algorithms.GD, "cri1", 2)
	q.Probe = func(int) error { executed = true; return nil }

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, q)
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// The caller gives up while the job is still queued.
	cancel()
	if err := <-errc; !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("Do returned %v, want ErrCanceled", err)
	}
	// Now a worker arrives and drains the queue: the stale job must be
	// settled as canceled without executing.
	s.mu.Lock()
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.worker()
	s.wg.Wait()
	if executed {
		t.Error("canceled-while-queued query was executed")
	}
	snap := s.Metrics()
	if snap.Canceled != 1 || snap.Completed != 0 || snap.Failed != 0 {
		t.Errorf("canceled=%d completed=%d failed=%d, want 1,0,0",
			snap.Canceled, snap.Completed, snap.Failed)
	}
	if snap.QueueDepth != 0 || snap.InFlight != 0 {
		t.Errorf("queue=%d inflight=%d after drain, want 0,0", snap.QueueDepth, snap.InFlight)
	}
}

// TestPanicIsolation: a panicking query yields a structured Internal-class
// error with a redacted stack, and the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	bomb := testQuery(t, algorithms.GD, "cri1", 2)
	bomb.Probe = func(int) error { panic("poison query") }
	_, err := s.Do(context.Background(), bomb)
	var qe *resilience.QueryError
	if !errors.As(err, &qe) || qe.Class != resilience.Internal {
		t.Fatalf("panic query: got %v, want Internal-class QueryError", err)
	}
	if !errors.Is(err, resilience.ErrInternal) {
		t.Error("errors.Is(err, resilience.ErrInternal) = false")
	}
	if qe.Stack == "" || strings.Contains(qe.Stack, "[running]") {
		t.Errorf("stack not captured/redacted: %q", qe.Stack)
	}
	if !strings.Contains(qe.Stack, "guarded") {
		t.Errorf("stack lost the panicking frames: %q", qe.Stack)
	}
	if regexp.MustCompile(`0x[0-9a-fA-F]{4,}`).MatchString(qe.Stack) {
		t.Errorf("stack leaks raw addresses: %q", qe.Stack)
	}
	// The pool survives: a healthy query still completes.
	if _, err := s.Do(context.Background(), testQuery(t, algorithms.GD, "cri1", 2)); err != nil {
		t.Fatalf("query after panic: %v", err)
	}
	snap := s.Metrics()
	if snap.PanicsRecovered != 1 {
		t.Errorf("panics recovered = %d, want 1", snap.PanicsRecovered)
	}
}

// TestWorkerRespawn: a panic escaping the per-query guard (here: a send on
// an already-closed out channel, a pool bug by construction) kills the
// worker goroutine, which must respawn and keep draining.
func TestWorkerRespawn(t *testing.T) {
	s := &Server{
		cfg:      Config{QueueDepth: 2, Workers: 1}.withDefaults(),
		queue:    make(chan *job, 2),
		metrics:  newMetrics(),
		versions: map[string]int64{},
	}
	q := testQuery(t, algorithms.GD, "cri1", 2)
	poisoned := &job{id: 1, ctx: context.Background(), q: q, out: make(chan jobOut, 1)}
	close(poisoned.out) // worker's settle send will panic
	healthy := &job{id: 2, ctx: context.Background(), q: q, out: make(chan jobOut, 1)}
	s.queue <- poisoned
	s.queue <- healthy
	s.mu.Lock()
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.worker()
	s.wg.Wait()
	o := <-healthy.out
	if o.err != nil {
		t.Fatalf("healthy job after worker panic: %v", o.err)
	}
	if snap := s.Metrics(); snap.WorkerRespawns != 1 {
		t.Errorf("worker respawns = %d, want 1", snap.WorkerRespawns)
	}
}

// TestRetryTransient: a transient execution failure is retried with the
// plan cache reused, and the query ultimately succeeds.
func TestRetryTransient(t *testing.T) {
	s := New(Config{Workers: 1, Retry: resilience.RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 7,
	}})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 2)
	// Warm the plan cache so the retried run can hit it.
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	flaky := q
	var attempts []int
	flaky.Probe = func(attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 2 {
			return resilience.MarkTransient(errors.New("synthetic transient fault"))
		}
		return nil
	}
	res, err := s.Do(context.Background(), flaky)
	if err != nil {
		t.Fatalf("flaky query: %v", err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", res.Attempts)
	}
	if !res.PlanCacheHit {
		t.Error("retried run missed the plan cache")
	}
	if want := []int{0, 1, 2}; len(attempts) != 3 || attempts[0] != want[0] || attempts[1] != want[1] || attempts[2] != want[2] {
		t.Errorf("probe attempts = %v, want %v", attempts, want)
	}
	if snap := s.Metrics(); snap.Retries != 2 {
		t.Errorf("retries = %d, want 2", snap.Retries)
	}
}

// TestNonTransientNotRetried: ordinary execution errors and panics fail
// immediately without burning retry attempts.
func TestNonTransientNotRetried(t *testing.T) {
	s := New(Config{Workers: 1, Retry: resilience.RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond,
	}})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 2)
	calls := 0
	q.Probe = func(int) error { calls++; return errors.New("deterministic bug") }
	_, err := s.Do(context.Background(), q)
	if !errors.Is(err, resilience.ErrExecution) {
		t.Fatalf("got %v, want execution-class error", err)
	}
	if calls != 1 {
		t.Errorf("non-transient error executed %d times, want 1", calls)
	}
}

// TestMaxIterationsClass: a divergent loop surfaces as a MaxIterations-
// class QueryError still matching engine.ErrMaxIterations.
func TestMaxIterationsClass(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 3)
	q.MaxIterations = 1
	_, err := s.Do(context.Background(), q)
	if !errors.Is(err, engine.ErrMaxIterations) {
		t.Fatalf("got %v, want ErrMaxIterations", err)
	}
	if !errors.Is(err, resilience.ErrMaxIterations) {
		t.Errorf("error not classified MaxIterations: %v", err)
	}
}

// TestHedgeStraggler: with hedging enabled and a warm latency window, a
// query whose first execution straggles is raced by a duplicate, and the
// duplicate's result (bitwise-identical by construction) wins.
func TestHedgeStraggler(t *testing.T) {
	s := New(Config{Workers: 2, Hedge: resilience.HedgePolicy{
		Enabled: true, Quantile: 0.5, Multiplier: 1.5, MinDelay: time.Millisecond, MaxOutstanding: 2,
	}})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 2)
	// Warm the latency window and caches.
	ref, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	straggler := q
	var invocations atomic.Int32
	straggler.Probe = func(int) error {
		if invocations.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond) // only the primary straggles
		}
		return nil
	}
	res, err := s.Do(context.Background(), straggler)
	if err != nil {
		t.Fatalf("straggler query: %v", err)
	}
	if !res.HedgeWon {
		t.Error("hedge did not win against a 400ms straggler")
	}
	bitwiseEqualValues(t, ref.Values, res.Values)
	snap := s.Metrics()
	if snap.Hedges != 1 || snap.HedgesWon != 1 {
		t.Errorf("hedges=%d won=%d, want 1,1", snap.Hedges, snap.HedgesWon)
	}
}

// TestFaultInjectedQueryBitwiseIdentical: a served query with an injected
// fault plan returns results bitwise identical to the fault-free run
// (faults only perturb the cost model), with per-query sub-streams derived
// from the root seed.
func TestFaultInjectedQueryBitwiseIdentical(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri1", 3)
	ref, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	root := fault.NewPlan(fault.Config{
		Seed:                  41,
		WorkerFailuresPerHour: 60,
		TransmitErrorsPerHour: 120,
		StragglersPerHour:     60,
	})
	for i := 0; i < 3; i++ {
		fq := q
		fq.Faults = root.Derive(i)
		res, err := s.Do(context.Background(), fq)
		if err != nil {
			t.Fatalf("faulted query %d: %v", i, err)
		}
		bitwiseEqualValues(t, ref.Values, res.Values)
	}
}

// TestGracefulShutdownUnderLoad drains in-flight queries and leaks no
// goroutines.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 4, QueueDepth: 32})
	q := testQuery(t, algorithms.GD, "cri1", 3)
	const n = 12
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Do(context.Background(), q)
			errc <- err
		}()
	}
	// Let some submissions land, then shut down mid-stream.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		// Accepted queries complete; late ones fail fast with ErrClosed.
		if err := <-errc; err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
			t.Errorf("query %d: %v", i, err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	// Workers must all have exited; poll since goroutine teardown is
	// asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentMixedWorkload runs a mixed workload at concurrency and
// cross-checks every result against its sequential cache-free reference.
func TestConcurrentMixedWorkload(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Shutdown(context.Background())
	queries := []Query{
		testQuery(t, algorithms.GD, "cri1", 3),
		testQuery(t, algorithms.DFP, "cri1", 4),
		testQuery(t, algorithms.DFP, "cri2", 3),
	}
	// Sequential cache-free references.
	refs := make([]map[string]*matrix.Matrix, len(queries))
	for i, q := range queries {
		q.NoPlanCache = true
		q.NoIntermediateCache = true
		res, err := s.Do(context.Background(), q)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = res.Values
	}
	const rounds = 4
	type out struct {
		i   int
		res *QueryResult
		err error
	}
	outc := make(chan out, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			go func(i int, q Query) {
				res, err := s.Do(context.Background(), q)
				outc <- out{i, res, err}
			}(i, q)
		}
	}
	for k := 0; k < rounds*len(queries); k++ {
		o := <-outc
		if o.err != nil {
			t.Fatalf("query %d: %v", o.i, o.err)
		}
		bitwiseEqualValues(t, refs[o.i], o.res.Values)
	}
	snap := s.Metrics()
	if snap.Completed != rounds*3+3 {
		t.Errorf("completed = %d, want %d", snap.Completed, rounds*3+3)
	}
	if snap.PlanHits == 0 {
		t.Error("no plan-cache hits across repeated identical queries")
	}
	if snap.LatencyP50Sec <= 0 || snap.LatencyP99Sec < snap.LatencyP50Sec {
		t.Errorf("implausible latency percentiles: p50=%g p99=%g", snap.LatencyP50Sec, snap.LatencyP99Sec)
	}
}

// TestStrategyDistinguishesPlans: the same script under different
// strategies must not share a cached plan.
func TestStrategyDistinguishesPlans(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 3)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	other := q
	other.Strategy = opt.NoElimination
	res, err := s.Do(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Error("plan cached under Adaptive served a NoElimination query")
	}
}

// TestRetriesShareQueryDeadline: the per-query deadline is bound once
// before the first attempt, so retries and their backoff sleeps spend the
// same budget. A 50ms query whose every attempt fails transiently must
// fail Canceled as soon as the deadline lands in the first 200ms backoff —
// not grind through seconds of per-attempt timeouts.
func TestRetriesShareQueryDeadline(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Retry: resilience.RetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: 200 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			Budget:      5 * time.Second,
		},
	})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.GD, "cri1", 1)
	q.Timeout = 50 * time.Millisecond
	q.Probe = func(int) error {
		return resilience.MarkTransient(errors.New("induced transient failure"))
	}

	start := time.Now()
	_, err := s.Do(context.Background(), q)
	elapsed := time.Since(start)
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("deadline-bounded retries: got %v, want ErrCanceled", err)
	}
	if !resilience.IsClass(err, resilience.Canceled) {
		t.Fatalf("deadline-bounded retries: error class not Canceled: %v", err)
	}
	// Generous bound: one backoff at most, never the 800ms+ of summed
	// backoffs a per-attempt deadline would allow.
	if elapsed > 700*time.Millisecond {
		t.Fatalf("query outlived its deadline: took %v with a 50ms budget", elapsed)
	}
}
