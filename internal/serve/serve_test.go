package serve

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/cluster"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/matrix"
	"remac/internal/opt"
)

// testQuery builds a serve query for a workload over a loaded dataset.
func testQuery(t *testing.T, alg algorithms.Name, dsName string, iters int) Query {
	t.Helper()
	src, err := algorithms.Script(alg, iters)
	if err != nil {
		t.Fatal(err)
	}
	ds := data.MustLoad(dsName)
	ins := map[string]engine.Input{}
	if alg == algorithms.GNMF {
		w, h := ds.GNMFFactors(10)
		ins["V"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["W0"] = engine.Input{Data: w, VRows: ds.VRows, VCols: 10}
		ins["H0"] = engine.Input{Data: h, VRows: 10, VCols: ds.VCols}
	} else {
		ins["A"] = engine.Input{Data: ds.A, VRows: ds.VRows, VCols: ds.VCols}
		ins["b"] = engine.Input{Data: ds.Label(), VRows: ds.VRows, VCols: 1}
		ins["H0"] = engine.Input{Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols}
		ins["x0"] = engine.Input{Data: ds.InitialX(), VRows: ds.VCols, VCols: 1}
	}
	q := NewQuery(src, ins)
	q.Dataset = dsName
	q.Iterations = iters
	return q
}

// bitwiseEqual compares every cell by its float64 bit pattern — stricter
// than numeric equality (distinguishes -0 from 0 and any NaN payloads).
func bitwiseEqual(a, b *matrix.Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func bitwiseEqualValues(t *testing.T, a, b map[string]*matrix.Matrix) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result variable sets differ: %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			t.Fatalf("variable %s missing from second result", name)
		}
		if !bitwiseEqual(av, bv) {
			t.Errorf("variable %s differs bitwise between runs", name)
		}
	}
}

// TestServeCachedResultsBitwiseIdentical is the core cache-correctness
// property: a query answered from warm caches (plan + intermediates) must
// return results bitwise identical to a fully cold, cache-free run.
func TestServeCachedResultsBitwiseIdentical(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.DFP, "cri1", 5)

	// Cold reference: all caches bypassed.
	ref := q
	ref.NoPlanCache = true
	ref.NoIntermediateCache = true
	refRes, err := s.Do(context.Background(), ref)
	if err != nil {
		t.Fatalf("cache-off run: %v", err)
	}
	if refRes.PlanCacheHit || refRes.IntermediateHits != 0 {
		t.Fatalf("cache-off run consulted caches: %+v", refRes)
	}

	// First cached run: populates both caches.
	warm1, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("first cached run: %v", err)
	}
	if warm1.PlanCacheHit {
		t.Error("first cached run reported a plan-cache hit on an empty cache")
	}
	// Second cached run: everything should hit.
	warm2, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("second cached run: %v", err)
	}
	if !warm2.PlanCacheHit {
		t.Error("second run missed the plan cache")
	}
	if warm2.IntermediateHits == 0 {
		t.Error("second run got no intermediate-cache hits (DFP has LSE intermediates)")
	}
	bitwiseEqualValues(t, refRes.Values, warm1.Values)
	bitwiseEqualValues(t, refRes.Values, warm2.Values)
}

// TestPlanCacheWarmCompileFaster checks the acceptance criterion that a
// plan-cache hit costs at least 10x less than a cold compilation.
func TestPlanCacheWarmCompileFaster(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri2", 5)
	cold, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCacheHit {
		t.Fatal("cold run hit the plan cache")
	}
	// Best warm lookup of several, to keep scheduler noise out of the
	// ratio; the cold compile runs the full block-wise search so the gap
	// is orders of magnitude.
	warm := math.Inf(1)
	for i := 0; i < 3; i++ {
		res, err := s.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PlanCacheHit {
			t.Fatal("warm run missed the plan cache")
		}
		warm = math.Min(warm, res.CompileSec)
	}
	if warm*10 > cold.CompileSec {
		t.Errorf("warm plan lookup %.6fs not >=10x cheaper than cold compile %.6fs", warm, cold.CompileSec)
	}
}

// TestIntermediatesDoNotSurviveDatasetBump: after InvalidateDataset the
// old intermediates must be unreachable (negative cache-correctness test).
func TestIntermediatesDoNotSurviveDatasetBump(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri1", 5)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	res, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateHits == 0 {
		t.Fatal("warm run got no intermediate hits; test cannot proceed")
	}
	s.InvalidateDataset("cri1")
	if entries, _ := s.inter.usage(); entries != 0 {
		t.Errorf("%d intermediate entries survived dataset invalidation", entries)
	}
	res, err = s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateHits != 0 {
		t.Errorf("got %d intermediate hits across a dataset version bump", res.IntermediateHits)
	}
}

// TestIntermediatesDoNotCrossClusterConfigs: values computed under one
// simulated cluster must not serve a query under another (negative test).
func TestIntermediatesDoNotCrossClusterConfigs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri1", 5)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	other := q
	other.Cluster = cluster.DefaultConfig()
	other.Cluster.Nodes = 3
	res, err := s.Do(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Error("plan compiled for one cluster served another")
	}
	if res.IntermediateHits != 0 {
		t.Errorf("got %d intermediate hits across cluster configs", res.IntermediateHits)
	}
}

// TestPlanCacheIgnoresFormatting: scripts differing only in whitespace and
// comments share a plan.
func TestPlanCacheIgnoresFormatting(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 3)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	reformatted := q
	reformatted.Script = "# a comment\n" + q.Script + "\n\n"
	res, err := s.Do(context.Background(), reformatted)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Error("reformatted script missed the plan cache")
	}
}

// TestOverloadAndCancel exercises admission-queue rejection and caller
// cancellation deterministically against a server with no workers (so jobs
// stay queued).
func TestOverloadAndCancel(t *testing.T) {
	s := &Server{
		cfg:      Config{QueueDepth: 1}.withDefaults(),
		queue:    make(chan *job, 1),
		metrics:  newMetrics(),
		versions: map[string]int64{},
	}
	q := testQuery(t, algorithms.GD, "cri1", 2)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, q)
		errc <- err
	}()
	// Wait until the first job occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Do(context.Background(), q); !errors.Is(err, ErrOverloaded) {
		t.Errorf("full queue: got %v, want ErrOverloaded", err)
	}
	snap := s.Metrics()
	if snap.Rejected != 1 || snap.QueueDepth != 1 {
		t.Errorf("metrics after rejection: rejected=%d queue=%d, want 1,1", snap.Rejected, snap.QueueDepth)
	}
	cancel()
	if err := <-errc; !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("canceled caller: got %v, want ErrCanceled", err)
	}
	s.mu.Lock()
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	if _, err := s.Do(context.Background(), q); !errors.Is(err, ErrClosed) {
		t.Errorf("closed server: got %v, want ErrClosed", err)
	}
}

// TestQueryTimeout: a query with an unreachable deadline fails with
// ErrCanceled.
func TestQueryTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.DFP, "cri2", 5)
	q.Timeout = time.Nanosecond
	if _, err := s.Do(context.Background(), q); !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("timed-out query: got %v, want ErrCanceled", err)
	}
	snap := s.Metrics()
	if snap.Failed != 1 {
		t.Errorf("failed count = %d, want 1", snap.Failed)
	}
}

// TestGracefulShutdownUnderLoad drains in-flight queries and leaks no
// goroutines.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 4, QueueDepth: 32})
	q := testQuery(t, algorithms.GD, "cri1", 3)
	const n = 12
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Do(context.Background(), q)
			errc <- err
		}()
	}
	// Let some submissions land, then shut down mid-stream.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		// Accepted queries complete; late ones fail fast with ErrClosed.
		if err := <-errc; err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
			t.Errorf("query %d: %v", i, err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	// Workers must all have exited; poll since goroutine teardown is
	// asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentMixedWorkload runs a mixed workload at concurrency and
// cross-checks every result against its sequential cache-free reference.
func TestConcurrentMixedWorkload(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Shutdown(context.Background())
	queries := []Query{
		testQuery(t, algorithms.GD, "cri1", 3),
		testQuery(t, algorithms.DFP, "cri1", 4),
		testQuery(t, algorithms.DFP, "cri2", 3),
	}
	// Sequential cache-free references.
	refs := make([]map[string]*matrix.Matrix, len(queries))
	for i, q := range queries {
		q.NoPlanCache = true
		q.NoIntermediateCache = true
		res, err := s.Do(context.Background(), q)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = res.Values
	}
	const rounds = 4
	type out struct {
		i   int
		res *QueryResult
		err error
	}
	outc := make(chan out, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			go func(i int, q Query) {
				res, err := s.Do(context.Background(), q)
				outc <- out{i, res, err}
			}(i, q)
		}
	}
	for k := 0; k < rounds*len(queries); k++ {
		o := <-outc
		if o.err != nil {
			t.Fatalf("query %d: %v", o.i, o.err)
		}
		bitwiseEqualValues(t, refs[o.i], o.res.Values)
	}
	snap := s.Metrics()
	if snap.Completed != rounds*3+3 {
		t.Errorf("completed = %d, want %d", snap.Completed, rounds*3+3)
	}
	if snap.PlanHits == 0 {
		t.Error("no plan-cache hits across repeated identical queries")
	}
	if snap.LatencyP50Sec <= 0 || snap.LatencyP99Sec < snap.LatencyP50Sec {
		t.Errorf("implausible latency percentiles: p50=%g p99=%g", snap.LatencyP50Sec, snap.LatencyP99Sec)
	}
}

// TestStrategyDistinguishesPlans: the same script under different
// strategies must not share a cached plan.
func TestStrategyDistinguishesPlans(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	q := testQuery(t, algorithms.GD, "cri1", 3)
	if _, err := s.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	other := q
	other.Strategy = opt.NoElimination
	res, err := s.Do(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Error("plan cached under Adaptive served a NoElimination query")
	}
}
