package serve

import (
	"errors"
	"sort"
	"sync"
	"time"

	"remac/internal/engine"
	"remac/internal/resilience"
)

// latencyWindow bounds the sliding window percentiles are computed over.
const latencyWindow = 1024

// metrics aggregates server-wide counters. A single mutex is fine at this
// scale: updates are a handful per query, queries take milliseconds.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	completed uint64
	failed    uint64
	canceledN uint64
	rejectedN uint64
	shedN     uint64
	queued    int
	inflight  int

	planHits, planMisses   uint64
	interHits, interMisses uint64

	panics   uint64
	respawns uint64
	retries  uint64
	hedges   uint64
	hedgeWin uint64

	executions    uint64
	idemReplays   uint64
	idemCoalesces uint64

	corrInjected uint64
	corrDigest   uint64
	corrABFT     uint64
	corrRepairs  uint64
	repairSec    float64

	codedRecovered uint64
	codedDecodeSec float64
	codedEncFLOP   float64

	mqoBatches    uint64
	mqoMembers    uint64
	mqoOverlapped uint64
	mqoHits       uint64
	mqoProduced   uint64
	mqoAbandoned  uint64
	mqoFlopSaved  float64

	lat     [latencyWindow]float64
	latIdx  int
	latFull bool
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

func (m *metrics) enqueued() {
	m.mu.Lock()
	m.queued++
	m.mu.Unlock()
}

func (m *metrics) rejected() {
	m.mu.Lock()
	m.rejectedN++
	m.mu.Unlock()
}

func (m *metrics) shed() {
	m.mu.Lock()
	m.shedN++
	m.mu.Unlock()
}

func (m *metrics) dequeued() {
	m.mu.Lock()
	m.queued--
	m.inflight++
	m.mu.Unlock()
}

// finished records one settled query: its wall latency and outcome.
// Canceled queries — whether they expired in the queue or mid-run — are
// counted apart from genuine failures, and neither feeds the latency
// window.
func (m *metrics) finished(latencySec float64, err error) {
	m.mu.Lock()
	m.inflight--
	switch {
	case err == nil:
		m.completed++
		m.lat[m.latIdx] = latencySec
		m.latIdx++
		if m.latIdx == latencyWindow {
			m.latIdx = 0
			m.latFull = true
		}
	case resilience.IsClass(err, resilience.Canceled) || errors.Is(err, engine.ErrCanceled):
		m.canceledN++
	default:
		m.failed++
	}
	m.mu.Unlock()
}

func (m *metrics) planHit() {
	m.mu.Lock()
	m.planHits++
	m.mu.Unlock()
}

func (m *metrics) planMiss() {
	m.mu.Lock()
	m.planMisses++
	m.mu.Unlock()
}

func (m *metrics) interCounts(hits, misses int) {
	m.mu.Lock()
	m.interHits += uint64(hits)
	m.interMisses += uint64(misses)
	m.mu.Unlock()
}

func (m *metrics) panicRecovered() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

func (m *metrics) workerRespawn() {
	m.mu.Lock()
	m.respawns++
	m.mu.Unlock()
}

func (m *metrics) retried() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

func (m *metrics) hedged() {
	m.mu.Lock()
	m.hedges++
	m.mu.Unlock()
}

func (m *metrics) hedgeWon() {
	m.mu.Lock()
	m.hedgeWin++
	m.mu.Unlock()
}

// executed counts one engine plan execution (every retry and hedged
// duplicate included) — the counter the remote-transport chaos harness
// asserts "zero duplicate executions" against.
func (m *metrics) executed() {
	m.mu.Lock()
	m.executions++
	m.mu.Unlock()
}

// idemReplayed counts a completed-entry replay: a keyed resubmission that
// returned the stored result with no execution.
func (m *metrics) idemReplayed() {
	m.mu.Lock()
	m.idemReplays++
	m.mu.Unlock()
}

// idemCoalesced counts a keyed duplicate that latched onto its in-flight
// leader instead of executing.
func (m *metrics) idemCoalesced() {
	m.mu.Lock()
	m.idemCoalesces++
	m.mu.Unlock()
}

// integrityCounts folds one query's corruption accounting into the
// server-wide totals.
func (m *metrics) integrityCounts(injected, byDigest, byABFT, repairs int, repairSec float64) {
	m.mu.Lock()
	m.corrInjected += uint64(injected)
	m.corrDigest += uint64(byDigest)
	m.corrABFT += uint64(byABFT)
	m.corrRepairs += uint64(repairs)
	m.repairSec += repairSec
	m.mu.Unlock()
}

// codedCounts folds one query's coded-recovery accounting into the
// server-wide totals.
func (m *metrics) codedCounts(recoveries int, decodeSec, encodeFLOP float64) {
	m.mu.Lock()
	m.codedRecovered += uint64(recoveries)
	m.codedDecodeSec += decodeSec
	m.codedEncFLOP += encodeFLOP
	m.mu.Unlock()
}

// mqoAdmitted records one query joining an MQO batch (newBatch marks the
// admission that opened it); batch occupancy is members/batches.
func (m *metrics) mqoAdmitted(newBatch bool) {
	m.mu.Lock()
	m.mqoMembers++
	if newBatch {
		m.mqoBatches++
	}
	m.mu.Unlock()
}

// mqoOverlap records keys of the cross-query subexpression index that just
// became overlapping (announced by a second session of their batch).
func (m *metrics) mqoOverlap(keys int) {
	m.mu.Lock()
	m.mqoOverlapped += uint64(keys)
	m.mu.Unlock()
}

// mqoSession folds one run's shared-producer coordinator traffic into the
// server totals: adoptions, productions, the charged FLOP adoptions
// avoided, and leaderships the run abandoned (panic paths).
func (m *metrics) mqoSession(hits, led int, flopSaved float64, abandoned int) {
	if hits == 0 && led == 0 && abandoned == 0 {
		return
	}
	m.mu.Lock()
	m.mqoHits += uint64(hits)
	m.mqoProduced += uint64(led)
	m.mqoFlopSaved += flopSaved
	m.mqoAbandoned += uint64(abandoned)
	m.mu.Unlock()
}

// latencyQuantile reads a percentile of the current window without
// snapshotting everything (the hedge trigger calls it per query).
func (m *metrics) latencyQuantile(p float64) float64 {
	m.mu.Lock()
	n := m.latIdx
	if m.latFull {
		n = latencyWindow
	}
	window := make([]float64, n)
	copy(window, m.lat[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(window)
	return percentile(window, p)
}

// Snapshot is a point-in-time view of the server's aggregate metrics,
// JSON-serializable for cmd/remac-serve's /stats endpoint.
type Snapshot struct {
	// Shard labels the instance this snapshot came from (Config.ShardID;
	// empty for a standalone server or a merged snapshot).
	Shard     string  `json:"shard,omitempty"`
	UptimeSec float64 `json:"uptime_sec"`
	Completed uint64  `json:"completed"`
	Failed    uint64  `json:"failed"`
	Canceled  uint64  `json:"canceled"`
	Rejected  uint64  `json:"rejected"`
	Shed      uint64  `json:"shed"`
	// QPS is completed queries per second of uptime.
	QPS float64 `json:"qps"`
	// Latency percentiles over the last completed queries (seconds).
	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP95Sec float64 `json:"latency_p95_sec"`
	LatencyP99Sec float64 `json:"latency_p99_sec"`

	PlanHits    uint64  `json:"plan_cache_hits"`
	PlanMisses  uint64  `json:"plan_cache_misses"`
	PlanHitRate float64 `json:"plan_cache_hit_rate"`
	PlanEntries int     `json:"plan_cache_entries"`

	InterHits    uint64  `json:"intermediate_cache_hits"`
	InterMisses  uint64  `json:"intermediate_cache_misses"`
	InterHitRate float64 `json:"intermediate_cache_hit_rate"`
	InterEntries int     `json:"intermediate_cache_entries"`
	InterBytes   int64   `json:"intermediate_cache_bytes"`

	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`

	// Resilience counters.
	PanicsRecovered uint64                     `json:"panics_recovered"`
	WorkerRespawns  uint64                     `json:"worker_respawns"`
	Retries         uint64                     `json:"retries"`
	Hedges          uint64                     `json:"hedges"`
	HedgesWon       uint64                     `json:"hedges_won"`
	BreakerState    string                     `json:"breaker_state"`
	Breaker         resilience.BreakerCounters `json:"breaker"`

	// Idempotency counters: engine plan executions (retries and hedges
	// included), keyed resubmissions replayed from the completed window,
	// duplicates coalesced onto an in-flight leader, and the window's
	// current occupancy. Executions - Completed is the re-execution
	// overhead; replays and coalesces are executions that never happened.
	Executions    uint64 `json:"executions"`
	IdemReplays   uint64 `json:"idem_replays"`
	IdemCoalesced uint64 `json:"idem_coalesced"`
	IdemEntries   int    `json:"idem_entries"`

	// Integrity counters: corruptions that landed in served queries, split
	// by which verification layer caught them, plus lineage repair work.
	CorruptionsInjected uint64  `json:"corruptions_injected"`
	CorruptionsDigest   uint64  `json:"corruptions_detected_digest"`
	CorruptionsABFT     uint64  `json:"corruptions_detected_abft"`
	IntegrityRepairs    uint64  `json:"integrity_repairs"`
	RepairSec           float64 `json:"repair_sec"`

	// Coded-recovery counters: k-of-n decode recoveries served queries
	// performed (no recomputation), their simulated decode time, and the
	// parity-encoding work the coded policy charged.
	CodedRecoveries uint64  `json:"coded_recoveries"`
	DecodeSec       float64 `json:"decode_sec"`
	EncodeFLOP      float64 `json:"encode_flop"`

	// MQO (cross-query redundancy elimination) counters: batches formed
	// and queries batched (occupancy = queries/batches), shared-key
	// overlaps observed in the cross-query subexpression index, producer
	// adoptions and executions through the batch coordinator, leaderships
	// abandoned by panicking producers, and the charged FLOP the adoptions
	// avoided.
	MQOBatches        uint64  `json:"mqo_batches"`
	MQOBatchedQueries uint64  `json:"mqo_batched_queries"`
	MQOOverlapKeys    uint64  `json:"mqo_overlap_keys"`
	MQOSharedHits     uint64  `json:"mqo_shared_hits"`
	MQOSharedProduced uint64  `json:"mqo_shared_produced"`
	MQOAbandoned      uint64  `json:"mqo_abandoned"`
	MQOFlopSaved      float64 `json:"mqo_flop_saved"`
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeSec:       time.Since(m.start).Seconds(),
		Completed:       m.completed,
		Failed:          m.failed,
		Canceled:        m.canceledN,
		Rejected:        m.rejectedN,
		Shed:            m.shedN,
		PlanHits:        m.planHits,
		PlanMisses:      m.planMisses,
		InterHits:       m.interHits,
		InterMisses:     m.interMisses,
		QueueDepth:      m.queued,
		InFlight:        m.inflight,
		PanicsRecovered: m.panics,
		WorkerRespawns:  m.respawns,
		Retries:         m.retries,
		Hedges:          m.hedges,
		HedgesWon:       m.hedgeWin,

		Executions:    m.executions,
		IdemReplays:   m.idemReplays,
		IdemCoalesced: m.idemCoalesces,

		CorruptionsInjected: m.corrInjected,
		CorruptionsDigest:   m.corrDigest,
		CorruptionsABFT:     m.corrABFT,
		IntegrityRepairs:    m.corrRepairs,
		RepairSec:           m.repairSec,

		CodedRecoveries: m.codedRecovered,
		DecodeSec:       m.codedDecodeSec,
		EncodeFLOP:      m.codedEncFLOP,

		MQOBatches:        m.mqoBatches,
		MQOBatchedQueries: m.mqoMembers,
		MQOOverlapKeys:    m.mqoOverlapped,
		MQOSharedHits:     m.mqoHits,
		MQOSharedProduced: m.mqoProduced,
		MQOAbandoned:      m.mqoAbandoned,
		MQOFlopSaved:      m.mqoFlopSaved,
	}
	if s.UptimeSec > 0 {
		s.QPS = float64(s.Completed) / s.UptimeSec
	}
	if t := s.PlanHits + s.PlanMisses; t > 0 {
		s.PlanHitRate = float64(s.PlanHits) / float64(t)
	}
	if t := s.InterHits + s.InterMisses; t > 0 {
		s.InterHitRate = float64(s.InterHits) / float64(t)
	}
	n := m.latIdx
	if m.latFull {
		n = latencyWindow
	}
	if n > 0 {
		window := make([]float64, n)
		copy(window, m.lat[:n])
		sort.Float64s(window)
		s.LatencyP50Sec = percentile(window, 0.50)
		s.LatencyP95Sec = percentile(window, 0.95)
		s.LatencyP99Sec = percentile(window, 0.99)
	}
	return s
}

// MergeSnapshots folds per-shard snapshots into one aggregate view for a
// gateway tier's /stats: counters, cache occupancy and resilience totals
// sum; rates (QPS, hit rates) are recomputed from the summed counters over
// the longest shard uptime; latency percentiles are completed-weighted
// averages of the shard percentiles — an approximation (exact merging
// would need the raw windows), adequate for dashboards and documented as
// such. The merged snapshot carries no Shard label.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var m Snapshot
	var completed float64
	for _, s := range snaps {
		if s.UptimeSec > m.UptimeSec {
			m.UptimeSec = s.UptimeSec
		}
		m.Completed += s.Completed
		m.Failed += s.Failed
		m.Canceled += s.Canceled
		m.Rejected += s.Rejected
		m.Shed += s.Shed
		m.PlanHits += s.PlanHits
		m.PlanMisses += s.PlanMisses
		m.PlanEntries += s.PlanEntries
		m.InterHits += s.InterHits
		m.InterMisses += s.InterMisses
		m.InterEntries += s.InterEntries
		m.InterBytes += s.InterBytes
		m.QueueDepth += s.QueueDepth
		m.InFlight += s.InFlight
		m.PanicsRecovered += s.PanicsRecovered
		m.WorkerRespawns += s.WorkerRespawns
		m.Retries += s.Retries
		m.Hedges += s.Hedges
		m.HedgesWon += s.HedgesWon
		m.Executions += s.Executions
		m.IdemReplays += s.IdemReplays
		m.IdemCoalesced += s.IdemCoalesced
		m.IdemEntries += s.IdemEntries
		m.Breaker.Opened += s.Breaker.Opened
		m.Breaker.HalfOpened += s.Breaker.HalfOpened
		m.Breaker.Closed += s.Breaker.Closed
		m.Breaker.Shed += s.Breaker.Shed
		m.CorruptionsInjected += s.CorruptionsInjected
		m.CorruptionsDigest += s.CorruptionsDigest
		m.CorruptionsABFT += s.CorruptionsABFT
		m.IntegrityRepairs += s.IntegrityRepairs
		m.RepairSec += s.RepairSec
		m.CodedRecoveries += s.CodedRecoveries
		m.DecodeSec += s.DecodeSec
		m.EncodeFLOP += s.EncodeFLOP
		m.MQOBatches += s.MQOBatches
		m.MQOBatchedQueries += s.MQOBatchedQueries
		m.MQOOverlapKeys += s.MQOOverlapKeys
		m.MQOSharedHits += s.MQOSharedHits
		m.MQOSharedProduced += s.MQOSharedProduced
		m.MQOAbandoned += s.MQOAbandoned
		m.MQOFlopSaved += s.MQOFlopSaved
		w := float64(s.Completed)
		m.LatencyP50Sec += w * s.LatencyP50Sec
		m.LatencyP95Sec += w * s.LatencyP95Sec
		m.LatencyP99Sec += w * s.LatencyP99Sec
		completed += w
		// The merged breaker state reports the worst shard: one open
		// breaker anywhere is the operational signal that matters.
		if worseBreakerState(s.BreakerState, m.BreakerState) {
			m.BreakerState = s.BreakerState
		}
	}
	if completed > 0 {
		m.LatencyP50Sec /= completed
		m.LatencyP95Sec /= completed
		m.LatencyP99Sec /= completed
	}
	if m.UptimeSec > 0 {
		m.QPS = float64(m.Completed) / m.UptimeSec
	}
	if t := m.PlanHits + m.PlanMisses; t > 0 {
		m.PlanHitRate = float64(m.PlanHits) / float64(t)
	}
	if t := m.InterHits + m.InterMisses; t > 0 {
		m.InterHitRate = float64(m.InterHits) / float64(t)
	}
	return m
}

// worseBreakerState orders breaker states by operational severity:
// open > half-open > closed > unknown/empty.
func worseBreakerState(a, b string) bool {
	rank := func(s string) int {
		switch s {
		case resilience.BreakerOpen.String():
			return 3
		case resilience.BreakerHalfOpen.String():
			return 2
		case resilience.BreakerClosed.String():
			return 1
		default:
			return 0
		}
	}
	return rank(a) > rank(b)
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
