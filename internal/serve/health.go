package serve

import (
	"time"

	"remac/internal/resilience"
)

// Health is the payload of the /healthz and /readyz probes: a boolean
// verdict plus enough state to explain it.
type Health struct {
	OK bool `json:"ok"`
	// Status is "serving" while admission is open, "draining" after
	// Shutdown began.
	Status string `json:"status"`
	// Breaker is the circuit breaker position ("closed", "open",
	// "half-open").
	Breaker       string  `json:"breaker"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Workers       int     `json:"workers"`
	UptimeSec     float64 `json:"uptime_sec"`
	// RetryAfterSec hints when a not-ready server is worth re-probing
	// (breaker cooldown remainder; 0 when ready or permanently draining).
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

func (s *Server) health() Health {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	status := "serving"
	if closed {
		status = "draining"
	}
	return Health{
		Status:        status,
		Breaker:       s.breaker.State().String(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Workers:       s.cfg.Workers,
		UptimeSec:     time.Since(s.metrics.start).Seconds(),
	}
}

// Healthz is the liveness probe: true as long as the process and worker
// pool are up — a panicking query or an open breaker never fails it,
// because restarting the process would not help.
func (s *Server) Healthz() Health {
	h := s.health()
	h.OK = true
	return h
}

// Readyz is the readiness probe: the server is ready to take traffic when
// admission is open, the breaker is not open, and the queue has room. Load
// balancers use it to steer traffic away from a shedding or draining
// instance without killing it.
func (s *Server) Readyz() Health {
	h := s.health()
	h.OK = h.Status == "serving" &&
		h.Breaker != resilience.BreakerOpen.String() &&
		h.QueueDepth < h.QueueCapacity
	if !h.OK && h.Breaker == resilience.BreakerOpen.String() {
		h.RetryAfterSec = s.cfg.Breaker.Cooldown.Seconds()
		if h.RetryAfterSec <= 0 {
			h.RetryAfterSec = 1
		}
	}
	return h
}
