package serve

import (
	"container/list"
	"sync"
)

// defaultIdemEntries bounds the completed-result replay window when
// Config.IdempotencyWindow is zero.
const defaultIdemEntries = 1024

// idemRole is what begin decided for a keyed submission.
type idemRole int

const (
	// idemLeader executes the query and settles the entry.
	idemLeader idemRole = iota
	// idemWaiter coalesces onto an in-flight leader with the same key and
	// waits for its outcome instead of executing a duplicate.
	idemWaiter
	// idemReplay found a completed entry: the stored result is returned
	// bitwise-identically, with no execution at all.
	idemReplay
)

// idemEntry tracks one idempotency key: in-flight (done open, a leader
// executing) or completed (done closed, res/err settled). res and err are
// written exactly once, before done closes, so waiters read them without
// the lock.
type idemEntry struct {
	key  string
	done chan struct{}
	res  *QueryResult
	err  error
}

// idemWindow is the bounded at-most-once execution window behind
// Query.IdempotencyKey. Its contract is "at-most-once execution,
// at-least-once response": while a key's entry is live — in flight, or
// completed and not yet evicted — a resubmission never re-executes the
// plan. In-flight entries coalesce duplicates onto the leader; completed
// successful entries replay the original result; failed entries are
// dropped so a later retry re-executes (an error is not a result worth
// pinning, and retrying it is the client's explicit intent). Only
// completed entries count against the LRU cap: a leader must always be
// able to settle, so in-flight keys are never evicted.
type idemWindow struct {
	mu       sync.Mutex
	cap      int
	inflight map[string]*idemEntry
	done     map[string]*list.Element // of *idemEntry, LRU-ordered
	lru      *list.List               // front = most recently used
}

func newIdemWindow(capacity int) *idemWindow {
	return &idemWindow{
		cap:      capacity,
		inflight: map[string]*idemEntry{},
		done:     map[string]*list.Element{},
		lru:      list.New(),
	}
}

// begin resolves a key into its role: replay a completed entry, coalesce
// onto an in-flight one, or lead a fresh execution.
func (w *idemWindow) begin(key string) (*idemEntry, idemRole) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if el, ok := w.done[key]; ok {
		w.lru.MoveToFront(el)
		return el.Value.(*idemEntry), idemReplay
	}
	if e, ok := w.inflight[key]; ok {
		return e, idemWaiter
	}
	e := &idemEntry{key: key, done: make(chan struct{})}
	w.inflight[key] = e
	return e, idemLeader
}

// settle records the leader's outcome and releases every coalesced waiter.
// Successes enter the replay window (evicting the least-recent completed
// entry beyond cap); failures leave no trace beyond the waiters they wake,
// so the key is immediately retryable with a fresh execution.
func (w *idemWindow) settle(e *idemEntry, res *QueryResult, err error) {
	e.res, e.err = res, err
	w.mu.Lock()
	delete(w.inflight, e.key)
	if err == nil {
		w.done[e.key] = w.lru.PushFront(e)
		for w.lru.Len() > w.cap {
			old := w.lru.Back()
			w.lru.Remove(old)
			delete(w.done, old.Value.(*idemEntry).key)
		}
	}
	w.mu.Unlock()
	close(e.done)
}

// entries reports the completed-entry count (metrics gauge).
func (w *idemWindow) entries() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lru.Len()
}

// replayOf returns a settled entry's result as a fresh shallow copy marked
// Replayed: the stored QueryResult is shared by every future replay, so
// callers must never receive (and possibly mutate) the canonical pointer.
// Values and ResultHash are shared with the original — that sharing is the
// bitwise-identity guarantee.
func replayOf(e *idemEntry) *QueryResult {
	out := *e.res
	out.Replayed = true
	return &out
}
