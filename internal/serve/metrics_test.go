package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/resilience"
)

// TestMetricsQuantileConcurrent hammers finished() from many goroutines
// while readers pull quantiles, then checks the window's contents are
// coherent: counters exact, quantiles inside the fed value range and
// monotone in p. Run under -race this also proves the locking.
func TestMetricsQuantileConcurrent(t *testing.T) {
	m := newMetrics()
	const (
		writers      = 8
		perWriter    = 400 // 3200 total: forces ring wraparound past 1024
		loVal, hiVal = 0.001, 0.010
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: quantiles must stay within the fed range at every
	// intermediate point, not just at the end.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q := m.latencyQuantile(0.95); q != 0 && (q < loVal || q > hiVal) {
					t.Errorf("mid-run p95 %g outside fed range [%g, %g]", q, loVal, hiVal)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.dequeued()
				// Latencies sweep the [loVal, hiVal] range deterministically.
				lat := loVal + (hiVal-loVal)*float64(i)/float64(perWriter)
				switch i % 8 {
				case 6: // canceled outcome: no latency sample
					m.finished(lat, &resilience.QueryError{Class: resilience.Canceled, Err: context.Canceled})
				case 7: // failed outcome: no latency sample
					m.finished(lat, &resilience.QueryError{Class: resilience.Execution, Err: errors.New("boom")})
				default:
					m.finished(lat, nil)
				}
			}
		}(w)
	}
	// Wait for writers (the first 8+2 Adds minus the 2 readers).
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Stop readers once writers are done: writers finish, then signal.
	go func() {
		for {
			m.mu.Lock()
			total := m.completed + m.failed + m.canceledN
			m.mu.Unlock()
			if total == writers*perWriter {
				close(stop)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-done

	snap := m.snapshot()
	wantOK := uint64(writers * perWriter * 6 / 8)
	wantCanceled := uint64(writers * perWriter / 8)
	if snap.Completed != wantOK || snap.Canceled != wantCanceled || snap.Failed != wantCanceled {
		t.Fatalf("counters = ok %d / canceled %d / failed %d, want %d / %d / %d",
			snap.Completed, snap.Canceled, snap.Failed, wantOK, wantCanceled, wantCanceled)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight = %d after everything settled", snap.InFlight)
	}
	// The window wrapped (3200 samples > 1024 slots) and must still hold
	// only fed values, ordered by quantile.
	p50, p95, p99 := snap.LatencyP50Sec, snap.LatencyP95Sec, snap.LatencyP99Sec
	for _, q := range []float64{p50, p95, p99} {
		if q < loVal || q > hiVal {
			t.Fatalf("quantile %g outside fed range [%g, %g]", q, loVal, hiVal)
		}
	}
	if p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotone: p50 %g, p95 %g, p99 %g", p50, p95, p99)
	}
}

// TestMetricsWindowWraparound feeds exactly latencyWindow+k samples and
// checks the oldest k fell out of the quantile computation.
func TestMetricsWindowWraparound(t *testing.T) {
	m := newMetrics()
	const k = 16
	// First k samples are huge outliers; the next latencyWindow overwrite
	// every slot with 1.0.
	for i := 0; i < k; i++ {
		m.dequeued()
		m.finished(1000, nil)
	}
	for i := 0; i < latencyWindow; i++ {
		m.dequeued()
		m.finished(1.0, nil)
	}
	if p99 := m.latencyQuantile(0.99); p99 != 1.0 {
		t.Fatalf("p99 = %g: outliers survived a full window wraparound", p99)
	}
}

// TestBreakerCountersInSnapshot drives a real server into the full breaker
// cycle with always-failing execution probes and an injected clock, checking
// each transition lands in Metrics(): closed → open (Opened, shed Do calls
// with RetryAfter) → half-open (clock advance) → closed (probe successes).
func TestBreakerCountersInSnapshot(t *testing.T) {
	clk := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(1700000000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.t
	}
	advance := func(d time.Duration) {
		clk.mu.Lock()
		clk.t = clk.t.Add(d)
		clk.mu.Unlock()
	}

	s := New(Config{
		Workers:    1,
		QueueDepth: 8,
		Retry:      resilience.RetryPolicy{MaxAttempts: -1}, // isolate the breaker
		Breaker: resilience.BreakerConfig{
			Window: 8, MinSamples: 4, FailureThreshold: 0.5,
			Cooldown: time.Second, HalfOpenProbes: 2, Now: now,
		},
	})
	defer s.Shutdown(context.Background())

	fail := testQuery(t, algorithms.GD, "cri1", 2)
	fail.Probe = func(int) error { return errors.New("probe: backend down") }
	ok := testQuery(t, algorithms.GD, "cri1", 2)

	if st := s.Metrics().BreakerState; st != "closed" {
		t.Fatalf("initial breaker state %q", st)
	}
	// Four execution failures cross MinSamples at rate 1.0: the breaker opens.
	for i := 0; i < 4; i++ {
		if _, err := s.Do(context.Background(), fail); !errors.Is(err, resilience.ErrExecution) {
			t.Fatalf("failing query %d: err = %v, want execution class", i, err)
		}
	}
	snap := s.Metrics()
	if snap.BreakerState != "open" {
		t.Fatalf("state after failures = %q, want open", snap.BreakerState)
	}
	if snap.Breaker.Opened != 1 {
		t.Fatalf("Opened = %d, want 1", snap.Breaker.Opened)
	}

	// While open every submission is shed with a Retry-After hint.
	_, err := s.Do(context.Background(), ok)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("open-breaker submission: err = %v, want overloaded", err)
	}
	var qe *resilience.QueryError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("overloaded error carried no Retry-After: %+v", qe)
	}
	if snap = s.Metrics(); snap.Shed == 0 || snap.Breaker.Shed == 0 {
		t.Fatalf("shed not counted: Shed %d, Breaker.Shed %d", snap.Shed, snap.Breaker.Shed)
	}

	// Cooldown elapses: half-open; two successful probes close it again.
	advance(time.Second)
	if st := s.Metrics().BreakerState; st != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", st)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Do(context.Background(), ok); err != nil {
			t.Fatalf("probe query %d: %v", i, err)
		}
	}
	snap = s.Metrics()
	if snap.BreakerState != "closed" {
		t.Fatalf("state after probe successes = %q, want closed", snap.BreakerState)
	}
	if snap.Breaker.HalfOpened != 1 || snap.Breaker.Closed != 1 {
		t.Fatalf("transition counters = %+v, want HalfOpened 1, Closed 1", snap.Breaker)
	}
	// Healthy again: a normal query sails through.
	if _, err := s.Do(context.Background(), ok); err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
}

// TestHealthProbes checks the /healthz vs /readyz split: liveness is
// unconditional, readiness tracks breaker state and drain.
func TestHealthProbes(t *testing.T) {
	s := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Retry:      resilience.RetryPolicy{MaxAttempts: -1},
		Breaker: resilience.BreakerConfig{
			Window: 8, MinSamples: 2, FailureThreshold: 0.5,
			Cooldown: time.Minute, HalfOpenProbes: 1,
		},
	})

	if h := s.Healthz(); !h.OK || h.Status != "serving" {
		t.Fatalf("fresh server healthz = %+v", h)
	}
	if r := s.Readyz(); !r.OK {
		t.Fatalf("fresh server readyz = %+v", r)
	}

	// Trip the breaker: still live, no longer ready, with a retry hint.
	fail := testQuery(t, algorithms.GD, "cri1", 2)
	fail.Probe = func(int) error { return errors.New("probe: down") }
	for i := 0; i < 2; i++ {
		s.Do(context.Background(), fail)
	}
	if h := s.Healthz(); !h.OK {
		t.Fatalf("open breaker failed liveness: %+v", h)
	}
	r := s.Readyz()
	if r.OK || r.Breaker != "open" || r.RetryAfterSec <= 0 {
		t.Fatalf("open breaker readyz = %+v, want not-ready with retry hint", r)
	}

	// Draining: liveness still true, readiness false.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h := s.Healthz(); !h.OK || h.Status != "draining" {
		t.Fatalf("draining healthz = %+v", h)
	}
	if r := s.Readyz(); r.OK {
		t.Fatalf("draining server still ready: %+v", r)
	}
}

// TestMergeSnapshots: counters sum, rates recompute from the sums, uptime
// is the longest shard's, latency percentiles are completed-weighted, and
// the worst breaker state wins.
func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{
		Shard:         "shard-0",
		UptimeSec:     10,
		Completed:     30,
		Failed:        1,
		PlanHits:      9,
		PlanMisses:    1,
		InterHits:     20,
		InterMisses:   5,
		InterBytes:    1 << 20,
		InterEntries:  4,
		QueueDepth:    2,
		InFlight:      1,
		LatencyP50Sec: 0.010,
		LatencyP95Sec: 0.020,
		BreakerState:  resilience.BreakerClosed.String(),
		Breaker:       resilience.BreakerCounters{Opened: 1, Shed: 3},
		MQOSharedHits: 4,
		MQOFlopSaved:  1000,
	}
	b := Snapshot{
		Shard:         "shard-1",
		UptimeSec:     8,
		Completed:     10,
		Rejected:      2,
		PlanHits:      1,
		PlanMisses:    9,
		InterMisses:   15,
		LatencyP50Sec: 0.030,
		LatencyP95Sec: 0.060,
		BreakerState:  resilience.BreakerOpen.String(),
		Breaker:       resilience.BreakerCounters{Opened: 2},
	}

	m := MergeSnapshots(a, b)
	if m.Shard != "" {
		t.Fatalf("merged snapshot carries a shard label %q", m.Shard)
	}
	if m.Completed != 40 || m.Failed != 1 || m.Rejected != 2 {
		t.Fatalf("outcome counters did not sum: %+v", m)
	}
	if m.UptimeSec != 10 {
		t.Fatalf("uptime = %v, want the longest shard's 10", m.UptimeSec)
	}
	if m.QPS != 4 {
		t.Fatalf("QPS = %v, want 40 completed / 10 s = 4", m.QPS)
	}
	if m.PlanHits != 10 || m.PlanMisses != 10 || m.PlanHitRate != 0.5 {
		t.Fatalf("plan cache merge wrong: hits %d misses %d rate %v", m.PlanHits, m.PlanMisses, m.PlanHitRate)
	}
	if m.InterHits != 20 || m.InterMisses != 20 || m.InterHitRate != 0.5 {
		t.Fatalf("intermediate cache merge wrong: hits %d misses %d rate %v", m.InterHits, m.InterMisses, m.InterHitRate)
	}
	if m.InterBytes != 1<<20 || m.InterEntries != 4 {
		t.Fatalf("cache occupancy did not sum: %d bytes %d entries", m.InterBytes, m.InterEntries)
	}
	if m.QueueDepth != 2 || m.InFlight != 1 {
		t.Fatalf("queue gauges did not sum: depth %d inflight %d", m.QueueDepth, m.InFlight)
	}
	// Completed-weighted percentile: (30*0.010 + 10*0.030) / 40 = 0.015.
	if m.LatencyP50Sec < 0.0149 || m.LatencyP50Sec > 0.0151 {
		t.Fatalf("p50 = %v, want completed-weighted 0.015", m.LatencyP50Sec)
	}
	if m.LatencyP95Sec < 0.0299 || m.LatencyP95Sec > 0.0301 {
		t.Fatalf("p95 = %v, want completed-weighted 0.030", m.LatencyP95Sec)
	}
	if m.BreakerState != resilience.BreakerOpen.String() {
		t.Fatalf("breaker state = %q, want the worst shard's open", m.BreakerState)
	}
	if m.Breaker.Opened != 3 || m.Breaker.Shed != 3 {
		t.Fatalf("breaker counters did not sum: %+v", m.Breaker)
	}
	if m.MQOSharedHits != 4 || m.MQOFlopSaved != 1000 {
		t.Fatalf("MQO counters did not sum: %+v", m)
	}
}

// TestMergeSnapshotsEmptyAndSingle: merging nothing is the zero snapshot;
// merging one snapshot keeps its counters (modulo the shard label).
func TestMergeSnapshotsEmptyAndSingle(t *testing.T) {
	if m := MergeSnapshots(); m.Completed != 0 || m.QPS != 0 {
		t.Fatalf("empty merge not zero: %+v", m)
	}
	one := Snapshot{Shard: "shard-0", UptimeSec: 5, Completed: 7, LatencyP50Sec: 0.002}
	m := MergeSnapshots(one)
	if m.Completed != 7 || m.UptimeSec != 5 || m.LatencyP50Sec != 0.002 {
		t.Fatalf("single merge mangled counters: %+v", m)
	}
}
