// Multi-query optimization (MQO): cross-query redundancy elimination for
// the serving layer. Queries admitted within one batching window form an
// MQO batch; their engine runs attach a per-batch shared-producer
// coordinator, so a loop-constant subexpression appearing in several member
// plans — keyed by the same transpose-normalized canonical key + producer
// signature the intermediate cache uses, namespaced by dataset version and
// cluster signature — executes once and its materialized value feeds every
// consumer. Values stay bitwise identical to unbatched execution because
// the sharing key pins the exact kernel sequence, and failure semantics
// stay typed: a producer that fails propagates its error to every waiting
// consumer, a canceled leader is replaced by promoting a waiter, and a
// leader that panics mid-production fails its waiters with a structured
// Internal-class "abandoned" error via mqoSession.close.

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"remac/internal/engine"
	"remac/internal/integrity"
	"remac/internal/opt"
)

// errSharedAbandoned marks a shared-producer wait settled by the producing
// query panicking (classified as Internal; see Server.classify).
var errSharedAbandoned = errors.New("serve: shared producer abandoned by its producing query")

// batcher groups admissions into time-windowed MQO batches: the first
// admission opens a batch that stays joinable for one window, after which
// the next admission opens a fresh one. A batch object is only kept alive
// by the jobs that belong to it, so a drained batch (and the values it
// holds) is reclaimed by GC without explicit teardown.
type batcher struct {
	mu     sync.Mutex
	window time.Duration
	cur    *mqoBatch
	until  time.Time
}

func newBatcher(window time.Duration) *batcher {
	return &batcher{window: window}
}

// assign returns the batch for an admission at time now, reporting whether
// it opened a new one.
func (b *batcher) assign(now time.Time) (*mqoBatch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil || now.After(b.until) {
		b.cur = &mqoBatch{
			entries: map[string]*sharedEntry{},
			index:   map[string]int{},
		}
		b.until = now.Add(b.window)
		return b.cur, true
	}
	return b.cur, false
}

// mqoBatch is one window's worth of queries and their shared state: the
// producer registry (entries) and the cross-query subexpression index
// (how many member sessions announced each shareable key).
type mqoBatch struct {
	mu      sync.Mutex
	entries map[string]*sharedEntry
	index   map[string]int
}

// sharedEntry is one claimed producer key. Unsettled entries have an open
// ready channel and a live leader session between Acquire and Publish/Fail
// (the leader never blocks while unsettled, which is what makes waiting on
// ready deadlock-free). Published entries stay in the registry for the
// batch's lifetime; failed entries are removed so a later acquirer can
// re-elect.
type sharedEntry struct {
	ready chan struct{}
	v     engine.Intermediate
	flop  float64
	err   error
}

// session opens one engine run's view of the batch, scoped to the
// intermediate-cache namespace (dataset@version|clusterSig): only runs in
// the same namespace can observe each other's values.
func (b *mqoBatch) session(namespace string) *mqoSession {
	return &mqoSession{b: b, ns: namespace, leading: map[string]*sharedEntry{}}
}

// mqoSession implements engine.SharedProducers for a single run. It is
// used by that run's goroutine only; the batch mutex covers the shared
// registry.
type mqoSession struct {
	b       *mqoBatch
	ns      string
	leading map[string]*sharedEntry // unsettled claims held by this run

	hits      int     // producers adopted from siblings
	led       int     // producers executed on the batch's behalf
	flopSaved float64 // charged FLOP the adoptions avoided
}

// announce registers a compiled plan's shareable subexpressions in the
// batch's cross-query index and returns how many keys thereby became
// overlapping (announced by a second session) — the observable size of the
// redundancy MQO is about to eliminate.
func (s *mqoSession) announce(manifest []opt.SharedSubplan) int {
	if len(manifest) == 0 {
		return 0
	}
	overlapped := 0
	s.b.mu.Lock()
	for _, sp := range manifest {
		k := s.ns + "|" + sp.SharedKey
		s.b.index[k]++
		if s.b.index[k] == 2 {
			overlapped++
		}
	}
	s.b.mu.Unlock()
	return overlapped
}

// Acquire implements engine.SharedProducers. It returns the published
// value when a sibling already produced key, leadership when this run
// should produce it, or SharedSolo when waiting could deadlock (this run
// already leads an unsettled key, so it computes locally instead of
// blocking — a session that never blocks while leading cannot take part in
// a wait cycle). A leader that failed with cancellation is replaced by
// promoting the first waiter back through the lock, mirroring the plan
// cache's failure path; any other leader error propagates typed to every
// waiter.
func (s *mqoSession) Acquire(ctx context.Context, key string) (engine.Intermediate, engine.SharedRole, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k := s.ns + "|" + key
	for {
		s.b.mu.Lock()
		e, ok := s.b.entries[k]
		if !ok {
			e = &sharedEntry{ready: make(chan struct{})}
			s.b.entries[k] = e
			s.leading[k] = e
			s.b.mu.Unlock()
			return engine.Intermediate{}, engine.SharedLead, nil
		}
		holding := len(s.leading) > 0
		s.b.mu.Unlock()
		select {
		case <-e.ready:
		default:
			if holding {
				return engine.Intermediate{}, engine.SharedSolo, nil
			}
			select {
			case <-e.ready:
			case <-ctx.Done():
				return engine.Intermediate{}, 0, fmt.Errorf("serve: shared-producer wait: %w (%v)", engine.ErrCanceled, ctx.Err())
			}
		}
		switch {
		case e.err == nil:
			s.hits++
			s.flopSaved += e.flop
			return e.v, engine.SharedHit, nil
		case errors.Is(e.err, engine.ErrCanceled):
			// The leader's own context ended — not this consumer's problem.
			// Loop: the failed entry was removed, so the first waiter back
			// promotes itself to the new leader.
			continue
		default:
			return engine.Intermediate{}, 0, fmt.Errorf("serve: shared producer %q: %w", key, e.err)
		}
	}
}

// Publish implements engine.SharedProducers: the leader settles its claim
// with the materialized value and the charged FLOP one production cost
// (adopters account it as savings).
func (s *mqoSession) Publish(key string, v engine.Intermediate, flop float64) {
	k := s.ns + "|" + key
	s.b.mu.Lock()
	e := s.leading[k]
	delete(s.leading, k)
	if e != nil {
		e.v, e.flop = v, flop
	}
	s.b.mu.Unlock()
	if e != nil {
		s.led++
		close(e.ready)
	}
}

// Fail implements engine.SharedProducers: the leader settles its claim
// with the production error. The entry is removed from the registry so a
// later acquirer re-elects rather than inheriting a stale failure.
func (s *mqoSession) Fail(key string, err error) {
	s.fail(s.ns+"|"+key, err)
}

func (s *mqoSession) fail(k string, err error) {
	s.b.mu.Lock()
	e := s.leading[k]
	delete(s.leading, k)
	if e != nil {
		e.err = err
		delete(s.b.entries, k)
	}
	s.b.mu.Unlock()
	if e != nil {
		close(e.ready)
	}
}

// close settles every claim the session still holds when its run unwinds
// and returns how many there were. On the normal paths the engine settles
// inline and this is a no-op; a panic in the producing run reaches here
// with runErr nil, and each waiting sibling gets a typed Internal-class
// error (errSharedAbandoned) instead of a silent hang. runErr is flattened
// into the message rather than wrapped so concurrent consumers never share
// a mutable error value.
func (s *mqoSession) close(runErr error) int {
	if len(s.leading) == 0 {
		return 0
	}
	err := fmt.Errorf("%w (producing query panicked)", errSharedAbandoned)
	if runErr != nil {
		err = fmt.Errorf("%w (producing query failed: %v)", errSharedAbandoned, runErr)
	}
	keys := make([]string, 0, len(s.leading))
	for k := range s.leading {
		keys = append(keys, k)
	}
	for _, k := range keys {
		s.fail(k, err)
	}
	return len(keys)
}

// shareEligible gates a query into its batch's shared-producer
// coordinator. Sharing needs the same reuse identity the intermediate
// cache demands — a dataset id, with NoIntermediateCache opting out of
// both reuse layers — and a query that injects payload corruption may only
// share when a verification mode is attached: a verified value is either
// repaired to the bitwise-clean result or fails typed, whereas an
// unverified corrupted producer could silently poison every sibling.
func (s *Server) shareEligible(q Query) bool {
	if q.Dataset == "" || q.NoIntermediateCache {
		return false
	}
	if q.Faults.SchedulesCorruption() && q.Verify == integrity.VerifyOff {
		return false
	}
	return true
}
