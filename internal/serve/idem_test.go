package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"remac/internal/algorithms"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/resilience"
)

// TestIdemReplayIsBitwiseIdenticalWithoutReexecution: resubmitting a
// completed key returns the original result — same Values pointers, same
// ResultHash — with the execution counter unmoved and Replayed set.
func TestIdemReplayIsBitwiseIdenticalWithoutReexecution(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.DFP, "cri1", 3)
	q.IdempotencyKey = "key-1"
	first, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed {
		t.Fatal("first execution marked Replayed")
	}
	execAfterFirst := s.Metrics().Executions

	second, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replayed {
		t.Fatal("resubmission under the same key was not a replay")
	}
	if got := s.Metrics().Executions; got != execAfterFirst {
		t.Fatalf("replay re-executed: %d executions, want %d", got, execAfterFirst)
	}
	if second.ResultHash == 0 || second.ResultHash != first.ResultHash {
		t.Fatalf("replay hash %016x != original %016x", second.ResultHash, first.ResultHash)
	}
	bitwiseEqualValues(t, first.Values, second.Values)
	// The copy is shallow by design — but the struct itself must be fresh
	// so a caller mutating the replay cannot poison the window.
	if first == second {
		t.Fatal("replay returned the canonical stored pointer")
	}
	snap := s.Metrics()
	if snap.IdemReplays != 1 {
		t.Fatalf("IdemReplays = %d, want 1", snap.IdemReplays)
	}
	if snap.IdemEntries != 1 {
		t.Fatalf("IdemEntries = %d, want 1", snap.IdemEntries)
	}
}

// TestIdemConcurrentDuplicatesCoalesce: N racing submissions under one
// key execute the plan exactly once; every caller gets the same bits.
func TestIdemConcurrentDuplicatesCoalesce(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.GD, "cri1", 3)
	q.IdempotencyKey = "key-race"

	const callers = 8
	results := make([]*QueryResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Do(context.Background(), q)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	if got := s.Metrics().Executions; got != 1 {
		t.Fatalf("%d racing duplicates caused %d executions, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if results[i].ResultHash != results[0].ResultHash {
			t.Fatalf("caller %d hash %016x != caller 0 hash %016x",
				i, results[i].ResultHash, results[0].ResultHash)
		}
		bitwiseEqualValues(t, results[0].Values, results[i].Values)
	}
}

// TestIdemFailureReleasesKey: a leader that fails leaves no replay entry —
// the retry under the same key executes fresh and can succeed.
func TestIdemFailureReleasesKey(t *testing.T) {
	s := New(Config{Workers: 2, Retry: resilience.RetryPolicy{MaxAttempts: -1}})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.GD, "cri1", 2)
	q.IdempotencyKey = "key-fail"
	// Bits ≡ 63 mod 64 is the sticky at-rest corruption: with digest
	// verification on, the query fails typed (Integrity class).
	q.Faults = fault.FromEvents(fault.Event{At: 1e-9, Kind: fault.Corruption, Bits: 63})
	q.Verify = integrity.VerifyDigest
	if _, err := s.Do(context.Background(), q); err == nil {
		t.Fatal("fault-injected query succeeded")
	}
	if n := s.Metrics().IdemEntries; n != 0 {
		t.Fatalf("failed leader left %d replay entries, want 0", n)
	}

	q.Faults = nil
	q.Verify = 0
	res, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("retry after failed leader: %v", err)
	}
	if res.Replayed {
		t.Fatal("retry after a failure replayed the failure's (nonexistent) result")
	}
}

// TestIdemWindowEvictsLRU: the completed-entry window is bounded; the
// oldest key falls out first and re-executes on resubmission.
func TestIdemWindowEvictsLRU(t *testing.T) {
	s := New(Config{Workers: 2, IdempotencyWindow: 2})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.GD, "cri1", 2)
	for i := 0; i < 3; i++ {
		q.IdempotencyKey = fmt.Sprintf("key-%d", i)
		if _, err := s.Do(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Metrics().IdemEntries; n != 2 {
		t.Fatalf("window holds %d entries, want cap 2", n)
	}
	// key-0 was evicted: a resubmission executes again.
	before := s.Metrics().Executions
	q.IdempotencyKey = "key-0"
	res, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed {
		t.Fatal("evicted key replayed")
	}
	if got := s.Metrics().Executions; got != before+1 {
		t.Fatalf("evicted key: executions %d, want %d", got, before+1)
	}
	// key-2 is still resident and replays.
	q.IdempotencyKey = "key-2"
	res, err = s.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed {
		t.Fatal("resident key did not replay")
	}
}

// TestIdemDisabledWindow: a negative IdempotencyWindow turns the feature
// off — the same key executes every time.
func TestIdemDisabledWindow(t *testing.T) {
	s := New(Config{Workers: 2, IdempotencyWindow: -1})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.GD, "cri1", 2)
	q.IdempotencyKey = "key-x"
	for i := 0; i < 2; i++ {
		res, err := s.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Replayed {
			t.Fatal("disabled window replayed")
		}
	}
	if got := s.Metrics().Executions; got != 2 {
		t.Fatalf("executions = %d, want 2", got)
	}
}

// TestIdemWaiterCancellation: a waiter whose context dies while the
// leader runs gets a typed Canceled error; the leader's outcome still
// lands in the window.
func TestIdemWaiterCancellation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.DFP, "cri2", 6)
	q.IdempotencyKey = "key-wait"

	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		close(started)
		_, err := s.Do(context.Background(), q)
		leaderDone <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Do(ctx, q)
	if err == nil {
		// The leader may already have settled before the waiter arrived —
		// then the canceled context is never consulted and a replay is
		// legitimate. Only a non-nil error must be typed.
		t.Log("waiter arrived after settle; replay served")
	} else if !resilience.IsClass(err, resilience.Canceled) {
		t.Fatalf("canceled waiter error class = %v, want Canceled", err)
	}
	if err := <-leaderDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: %v", err)
	}
}
