package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"remac/internal/algorithms"
)

// TestInvalidateRacesBatchedQueries races InvalidateDataset bumps against
// a stream of MQO-batched queries (run under -race in CI). The contract
// under test: a version bump can never corrupt a result — every query,
// whichever side of a bump it lands on, returns bitwise the reference
// values, because each run binds the dataset version at query start and
// old-version cache keys become unreachable atomically with the bump.
func TestInvalidateRacesBatchedQueries(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, BatchWindow: 2 * time.Millisecond})
	defer s.Shutdown(context.Background())

	q := testQuery(t, algorithms.DFP, "cri1", 3)
	ref, err := s.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	const queries, bumps = 24, 8
	var wg sync.WaitGroup
	errs := make([]error, queries)
	results := make([]*QueryResult, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Do(context.Background(), testQuery(t, algorithms.DFP, "cri1", 3))
		}(i)
	}
	for i := 0; i < bumps; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.InvalidateDataset("cri1")
		}()
	}
	wg.Wait()

	for i := 0; i < queries; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d failed during invalidation storm: %v", i, errs[i])
		}
		bitwiseEqualValues(t, ref.Values, results[i].Values)
	}
	if v := s.DatasetVersion("cri1"); v != bumps {
		t.Fatalf("dataset version = %d after %d bumps, want %d", v, bumps, bumps)
	}

	// A final bump after the storm settles: the very next query must see a
	// cold intermediate cache and a fresh MQO index — zero cross-query
	// hits — proving the bump made every prior intermediate unreachable.
	s.InvalidateDataset("cri1")
	res, err := s.Do(context.Background(), testQuery(t, algorithms.DFP, "cri1", 3))
	if err != nil {
		t.Fatalf("post-bump query: %v", err)
	}
	if res.IntermediateHits != 0 || res.SharedHits != 0 {
		t.Fatalf("post-bump query reused stale work: %d intermediate hits, %d shared hits",
			res.IntermediateHits, res.SharedHits)
	}
	bitwiseEqualValues(t, ref.Values, res.Values)
}
