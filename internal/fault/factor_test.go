package fault

import (
	"errors"
	"testing"
)

// TestCheckedConstructorsRejectNonSlowdownFactors: a straggler factor in
// (0,1] or negative is set-but-meaningless and must come back as a typed
// *FactorError from both checked constructors, never be silently replaced.
func TestCheckedConstructorsRejectNonSlowdownFactors(t *testing.T) {
	for _, f := range []float64{-2, -0.5, 0.25, 0.999, 1} {
		_, err := NewChecked(Config{StragglersPerHour: 10, StragglerFactor: f, Workers: 4})
		var fe *FactorError
		if !errors.As(err, &fe) {
			t.Fatalf("NewChecked(factor=%g) err = %v, want *FactorError", f, err)
		}
		if fe.Factor != f {
			t.Fatalf("FactorError.Factor = %g, want %g", fe.Factor, f)
		}

		_, err = FromEventsChecked(Event{At: 1, Kind: Straggler, Factor: f})
		if !errors.As(err, &fe) {
			t.Fatalf("FromEventsChecked(factor=%g) err = %v, want *FactorError", f, err)
		}
	}
}

// TestUnsetFactorStillDefaults: factor 0 means unset and keeps selecting
// DefaultStragglerFactor in both constructors.
func TestUnsetFactorStillDefaults(t *testing.T) {
	p, err := NewChecked(Config{StragglersPerHour: 10, Workers: 4})
	if err != nil || p == nil {
		t.Fatalf("NewChecked with unset factor: plan=%v err=%v", p, err)
	}
	if p.cfg.StragglerFactor != DefaultStragglerFactor {
		t.Fatalf("unset factor = %g, want default %g", p.cfg.StragglerFactor, DefaultStragglerFactor)
	}
	p, err = FromEventsChecked(Event{At: 1, Kind: Straggler})
	if err != nil || p == nil {
		t.Fatalf("FromEventsChecked with unset factor: plan=%v err=%v", p, err)
	}
	if got := p.events[0].Factor; got != DefaultStragglerFactor {
		t.Fatalf("unset event factor = %g, want default %g", got, DefaultStragglerFactor)
	}
}

// TestValidFactorAccepted: a genuine slowdown passes through both checked
// constructors, and the panicking wrappers panic only on invalid input.
func TestValidFactorAccepted(t *testing.T) {
	if _, err := NewChecked(Config{StragglersPerHour: 10, StragglerFactor: 3.5, Workers: 4}); err != nil {
		t.Fatalf("NewChecked(factor=3.5) err = %v", err)
	}
	if _, err := FromEventsChecked(Event{At: 1, Kind: Straggler, Factor: 1.01}); err != nil {
		t.Fatalf("FromEventsChecked(factor=1.01) err = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromEvents must panic on an invalid factor")
		}
	}()
	FromEvents(Event{At: 1, Kind: Straggler, Factor: 0.5})
}
