package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestNewPlanDisabledWhenNoRates(t *testing.T) {
	if p := NewPlan(Config{Seed: 3}); p != nil {
		t.Fatal("zero-rate plan must be nil")
	}
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	if p.NewInjector() != nil {
		t.Fatal("nil plan must yield nil injector")
	}
	if got := p.NewInjector().Advance(0, 1e9); got != nil {
		t.Fatalf("nil injector fired %v", got)
	}
}

func TestRateStreamsDeterministic(t *testing.T) {
	cfg := Config{
		Seed:                  42,
		WorkerFailuresPerHour: 60,
		TransmitErrorsPerHour: 120,
		StragglersPerHour:     30,
		Workers:               6,
	}
	replay := func() []Event {
		inj := NewPlan(cfg).NewInjector()
		var all []Event
		// Advance in irregular windows; the schedule must not depend on how
		// the clock is sliced.
		for _, to := range []float64{13, 13.5, 400, 401, 3600, 7200} {
			all = append(all, inj.Advance(last(all), to)...)
		}
		return all
	}
	a, b := replay(), replay()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("no events over two simulated hours at these rates")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("events out of order: %v after %v", a[i], a[i-1])
		}
	}
	// A different seed must produce a different schedule.
	cfg2 := cfg
	cfg2.Seed = 43
	inj := NewPlan(cfg2).NewInjector()
	if c := inj.Advance(0, 7200); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func last(evs []Event) float64 {
	if len(evs) == 0 {
		return 0
	}
	return evs[len(evs)-1].At
}

func TestRatesApproximatePoissonIntensity(t *testing.T) {
	cfg := Config{Seed: 7, WorkerFailuresPerHour: 120, Workers: 6}
	inj := NewPlan(cfg).NewInjector()
	const hours = 50.0
	evs := inj.Advance(0, hours*3600)
	got := float64(len(evs)) / hours
	if math.Abs(got-120)/120 > 0.2 {
		t.Fatalf("observed rate %.1f/h, want ~120/h", got)
	}
	for _, ev := range evs {
		if ev.Kind != WorkerFailure {
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
		if ev.Worker < 0 || ev.Worker >= 6 {
			t.Fatalf("worker index %d out of range", ev.Worker)
		}
	}
}

func TestExplicitEventsReplayInOrder(t *testing.T) {
	p := FromEvents(
		Event{At: 30, Kind: Straggler},
		Event{At: 10, Kind: WorkerFailure, Worker: 2},
		Event{At: 20, Kind: TransmissionError},
	)
	inj := p.NewInjector()
	if evs := inj.Advance(0, 5); len(evs) != 0 {
		t.Fatalf("premature events %v", evs)
	}
	evs := inj.Advance(5, 25)
	if len(evs) != 2 || evs[0].Kind != WorkerFailure || evs[1].Kind != TransmissionError {
		t.Fatalf("window (5,25] = %v", evs)
	}
	evs = inj.Advance(25, 1000)
	if len(evs) != 1 || evs[0].Kind != Straggler {
		t.Fatalf("window (25,1000] = %v", evs)
	}
	if evs[0].Factor != DefaultStragglerFactor {
		t.Fatalf("straggler factor defaulted to %g", evs[0].Factor)
	}
	if evs := inj.Advance(1000, 1e12); len(evs) != 0 {
		t.Fatalf("exhausted plan fired %v", evs)
	}
}

func TestFromEventsEmpty(t *testing.T) {
	if FromEvents() != nil {
		t.Fatal("empty event list must yield nil plan")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		WorkerFailure:     "worker-failure",
		TransmissionError: "transmission-error",
		Straggler:         "straggler",
		Corruption:        "corruption",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// TestKindStringExhaustive catches a Kind added without a String case: every
// kind below numKinds must have a real name, not the Kind(%d) fallback.
func TestKindStringExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no String case", int(k))
		}
		if seen[s] {
			t.Errorf("Kind(%d) reuses the name %q", int(k), s)
		}
		seen[s] = true
	}
	if s := numKinds.String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("numKinds.String() = %q, want the Kind(%%d) fallback", s)
	}
}

func TestBackoffBaseDefaults(t *testing.T) {
	var p *Plan
	if p.BackoffBase() != DefaultBackoffBaseSec {
		t.Fatal("nil plan backoff default wrong")
	}
	q := NewPlan(Config{StragglersPerHour: 1, BackoffBaseSec: 2.5})
	if q.BackoffBase() != 2.5 {
		t.Fatal("configured backoff not honored")
	}
}

// TestDeriveSubStreams: derived plans are deterministic per index,
// decorrelated across indices, and independent of replay interleaving.
func TestDeriveSubStreams(t *testing.T) {
	root := NewPlan(Config{
		Seed:                  41,
		WorkerFailuresPerHour: 60,
		TransmitErrorsPerHour: 60,
		StragglersPerHour:     60,
		Workers:               4,
	})
	schedule := func(p *Plan) []Event {
		return p.NewInjector().Advance(0, 7200)
	}
	// Same index twice → identical schedule.
	if !reflect.DeepEqual(schedule(root.Derive(3)), schedule(root.Derive(3))) {
		t.Fatal("Derive(3) not deterministic")
	}
	// Distinct indices → distinct schedules (decorrelated sub-streams).
	a, b := schedule(root.Derive(0)), schedule(root.Derive(1))
	if reflect.DeepEqual(a, b) {
		t.Fatal("Derive(0) and Derive(1) produced identical schedules")
	}
	// Index 0 is not the root stream: queries never share the root's draws.
	if reflect.DeepEqual(schedule(root), a) {
		t.Fatal("Derive(0) aliases the root stream")
	}
	// Derivation order must not matter — only (seed, index) does.
	before := schedule(root.Derive(5))
	for i := 0; i < 100; i++ {
		root.Derive(i)
	}
	if !reflect.DeepEqual(before, schedule(root.Derive(5))) {
		t.Fatal("Derive(5) changed after unrelated derivations")
	}
}

// TestDeriveSeedSpread: nearby (seed, index) pairs land far apart, so
// sequential query indices don't produce correlated fault streams.
func TestDeriveSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for idx := 0; idx < 256; idx++ {
			s := DeriveSeed(seed, idx)
			if seen[s] {
				t.Fatalf("collision at seed=%d idx=%d", seed, idx)
			}
			seen[s] = true
		}
	}
}

// TestDeriveEdgeCases: nil plans and explicit-event plans pass through
// Derive unchanged.
func TestDeriveEdgeCases(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Derive(2) != nil {
		t.Fatal("nil plan derived into something")
	}
	explicit := FromEvents(Event{At: 5, Kind: Straggler})
	if explicit.Derive(2) != explicit {
		t.Fatal("explicit-event plan was rebuilt by Derive")
	}
	cfg := Config{Seed: 1, WorkerFailuresPerHour: 10}
	if NewPlan(cfg).Derive(0).cfg.Seed != DeriveSeed(1, 0) {
		t.Fatal("derived plan seed mismatch")
	}
}
