// Package fault implements the deterministic fault model of the simulated
// cluster: worker failures, transient transmission errors and straggler
// slowdowns scheduled against the simulated clock.
//
// A Plan describes *when* faults occur — either as seeded Poisson streams
// (one per fault kind, with exponential inter-arrival times) or as an
// explicit event list. An Injector replays a plan against an advancing
// clock: the cluster advances it across every charge's time window and
// receives the events that fired inside it. Everything is derived from the
// plan's seed, so two runs of the same program with the same plan observe
// the same fault sequence, charge the same recovery costs, and produce
// byte-identical Stats — the determinism guarantee DESIGN.md documents.
//
// The plan only schedules faults; their *consequences* are accounted
// elsewhere: internal/cluster charges retries, backoff and retransmission,
// and internal/distmat charges lineage recomputation (or checkpoint
// re-reads) for blocks lost to worker failures. Kernels always execute
// exactly once for real, so the fail-stop kinds never change numerical
// results. The one exception is Corruption: a flipped payload bit that
// escapes the run's verification mode (see internal/integrity) really does
// mutate the affected value, so undetected corruptions — and only those —
// surface as silently wrong answers.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind enumerates the fault kinds the model schedules.
type Kind int

const (
	// WorkerFailure loses one worker and the partitions it held; lost
	// blocks are lazily recomputed from lineage (or re-read from a
	// checkpoint) when next used.
	WorkerFailure Kind = iota
	// TransmissionError is a transient network fault during an operator's
	// transmission; the task retries after an exponential backoff and
	// re-transmits its data.
	TransmissionError
	// Straggler slows the operator executing when it fires: the stage waits
	// on its slowest task, so the operator's time stretches by the
	// straggler factor.
	Straggler
	// Corruption silently flips a bit in a block payload of the operator
	// executing when it fires — in flight on the wire or at rest under a
	// DFS read. Unlike the fail-stop kinds it carries no intrinsic cost:
	// whether it is caught (and repaired from lineage) or propagates into
	// results depends entirely on the verification mode the run enabled.
	Corruption
	numKinds
)

// String names the fault kind as it appears in trace span labels.
func (k Kind) String() string {
	switch k {
	case WorkerFailure:
		return "worker-failure"
	case TransmissionError:
		return "transmission-error"
	case Straggler:
		return "straggler"
	case Corruption:
		return "corruption"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault on the simulated timeline.
type Event struct {
	// At is the simulated clock second the fault fires.
	At float64
	// Kind selects the fault.
	Kind Kind
	// Worker is the failing worker's index (WorkerFailure only).
	Worker int
	// Factor is the slowdown multiplier (Straggler only): strictly greater
	// than 1, or 0 to select DefaultStragglerFactor. Values in (0,1] and
	// negatives are rejected by the constructors.
	Factor float64
	// Bits is the corruption entropy (Corruption only): which block, which
	// landing (in flight vs. at rest) and which bit are all derived from it,
	// so the damage a schedule does is as deterministic as its timing.
	Bits uint64
}

// DefaultStragglerFactor stretches a straggled operator to 2x its time,
// the common "slowest task takes about twice the median" observation.
const DefaultStragglerFactor = 2.0

// FactorError reports a straggler factor that is set but not a slowdown.
// A factor of 0 means "unset" and defaults to DefaultStragglerFactor;
// anything else must be strictly greater than 1 — a factor in (0,1] would
// be a speedup (or a no-op), and a negative one is meaningless. Checked
// constructors return it; the plain constructors panic with it.
type FactorError struct {
	// Factor is the rejected value.
	Factor float64
}

func (e *FactorError) Error() string {
	return fmt.Sprintf("fault: straggler factor %g: must be > 1 (0 selects the default %g)",
		e.Factor, DefaultStragglerFactor)
}

// checkFactor validates a straggler factor, treating 0 as unset.
func checkFactor(f float64) error {
	if f != 0 && f <= 1 {
		return &FactorError{Factor: f}
	}
	return nil
}

// DefaultBackoffBaseSec is the first retry delay; the k-th consecutive
// retry of one operator waits base·2^(k-1) seconds.
const DefaultBackoffBaseSec = 1.0

// Config parameterizes a rate-based plan. Rates are Poisson intensities in
// events per simulated hour; a zero rate disables that fault kind.
type Config struct {
	// Seed drives every random draw of the plan. Plans with equal Seed and
	// rates schedule identical event sequences.
	Seed int64
	// WorkerFailuresPerHour schedules whole-worker losses.
	WorkerFailuresPerHour float64
	// TransmitErrorsPerHour schedules transient transmission errors.
	TransmitErrorsPerHour float64
	// StragglersPerHour schedules straggler slowdowns.
	StragglersPerHour float64
	// CorruptionsPerHour schedules silent payload bit flips.
	CorruptionsPerHour float64
	// StragglerFactor is the slowdown multiplier: strictly greater than 1,
	// or 0 to select DefaultStragglerFactor. Values in (0,1] and negatives
	// are rejected (see FactorError) rather than silently replaced.
	StragglerFactor float64
	// BackoffBaseSec is the first retry delay (default
	// DefaultBackoffBaseSec).
	BackoffBaseSec float64
	// Workers bounds the failed-worker index draw (default 1).
	Workers int
}

// DeriveSeed maps a root seed and a query index to an independent
// sub-stream seed via a SplitMix64-style mix of seed ⊕ index. Concurrent
// runs sharing a root seed each draw from their own deterministic stream,
// so a chaos storm's fault schedules depend only on (root seed, query
// index) — never on goroutine scheduling order.
func DeriveSeed(seed int64, index int) int64 {
	x := uint64(seed) ^ (uint64(index)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Derive returns the config reseeded for the index-th member of a family
// of concurrent runs (see DeriveSeed). Rates and factors are unchanged.
func (c Config) Derive(index int) Config {
	c.Seed = DeriveSeed(c.Seed, index)
	return c
}

// Derive returns an independent per-query plan: rate-based plans are
// rebuilt on the derived seed; explicit-event plans replay the same
// authored schedule for every query (the author pinned exact times, so
// there is nothing to decorrelate). Nil-safe.
func (p *Plan) Derive(index int) *Plan {
	if p == nil || p.events != nil {
		return p
	}
	return NewPlan(p.cfg.Derive(index))
}

// Plan is an immutable fault schedule: rate streams or an explicit event
// list. A nil plan means a perfect cluster.
type Plan struct {
	cfg    Config
	events []Event // explicit schedule; nil for rate-based plans
}

// NewPlan builds a rate-based plan. It returns nil when every rate is zero,
// so callers can treat "no faults configured" and "no plan" uniformly. It
// panics on an invalid StragglerFactor (programmer error); front-ends taking
// user-supplied configurations should use NewChecked.
func NewPlan(cfg Config) *Plan {
	p, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// NewChecked is NewPlan returning the validation error instead of panicking:
// a StragglerFactor that is set (nonzero) but not > 1 yields a *FactorError.
// An unset (zero) factor still defaults to DefaultStragglerFactor.
func NewChecked(cfg Config) (*Plan, error) {
	if err := checkFactor(cfg.StragglerFactor); err != nil {
		return nil, err
	}
	if cfg.WorkerFailuresPerHour <= 0 && cfg.TransmitErrorsPerHour <= 0 &&
		cfg.StragglersPerHour <= 0 && cfg.CorruptionsPerHour <= 0 {
		return nil, nil
	}
	if cfg.StragglerFactor == 0 {
		cfg.StragglerFactor = DefaultStragglerFactor
	}
	if cfg.BackoffBaseSec <= 0 {
		cfg.BackoffBaseSec = DefaultBackoffBaseSec
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Plan{cfg: cfg}, nil
}

// FromEvents builds a plan from an explicit event list (tests and targeted
// what-if runs). Events are replayed in At order; the zero Factor defaults
// to DefaultStragglerFactor. It panics on a set-but-invalid Factor
// (programmer error); use FromEventsChecked for user-supplied schedules.
func FromEvents(events ...Event) *Plan {
	p, err := FromEventsChecked(events...)
	if err != nil {
		panic(err)
	}
	return p
}

// FromEventsChecked is FromEvents returning a *FactorError instead of
// panicking when a straggler event carries a Factor that is set (nonzero)
// but not > 1.
func FromEventsChecked(events ...Event) (*Plan, error) {
	if len(events) == 0 {
		return nil, nil
	}
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for i := range evs {
		if evs[i].Kind != Straggler {
			continue
		}
		if err := checkFactor(evs[i].Factor); err != nil {
			return nil, err
		}
		if evs[i].Factor == 0 {
			evs[i].Factor = DefaultStragglerFactor
		}
	}
	return &Plan{cfg: Config{BackoffBaseSec: DefaultBackoffBaseSec}, events: evs}, nil
}

// Enabled reports whether the plan schedules any faults. Nil-safe.
func (p *Plan) Enabled() bool { return p != nil }

// SchedulesCorruption reports whether the plan can fire payload-corruption
// events (rate-based or explicit). Nil-safe. The serving layer's MQO
// coordinator consults it: a query that may corrupt its own payloads only
// shares produced values when a verification mode can catch (and repair or
// fail) the damage.
func (p *Plan) SchedulesCorruption() bool {
	if p == nil {
		return false
	}
	if p.events != nil {
		for _, ev := range p.events {
			if ev.Kind == Corruption {
				return true
			}
		}
		return false
	}
	return p.cfg.CorruptionsPerHour > 0
}

// BackoffBase returns the first-retry delay in seconds. Nil-safe.
func (p *Plan) BackoffBase() float64 {
	if p == nil || p.cfg.BackoffBaseSec <= 0 {
		return DefaultBackoffBaseSec
	}
	return p.cfg.BackoffBaseSec
}

// NewInjector returns a fresh replay cursor over the plan. Nil-safe: a nil
// plan yields a nil injector, and a nil injector never fires.
func (p *Plan) NewInjector() *Injector {
	if p == nil {
		return nil
	}
	inj := &Injector{}
	if p.events != nil {
		inj.explicit = p.events
		return inj
	}
	add := func(kind Kind, perHour float64) {
		if perHour <= 0 {
			return
		}
		// Each kind owns an independent RNG stream so one kind's draw count
		// never perturbs another's schedule.
		s := &stream{
			kind: kind,
			rate: perHour / 3600,
			rng:  rand.New(rand.NewSource(p.cfg.Seed ^ int64(kind+1)*0x517CC1B727220A95)),
			cfg:  p.cfg,
		}
		s.draw(0)
		inj.streams = append(inj.streams, s)
	}
	add(WorkerFailure, p.cfg.WorkerFailuresPerHour)
	add(TransmissionError, p.cfg.TransmitErrorsPerHour)
	add(Straggler, p.cfg.StragglersPerHour)
	add(Corruption, p.cfg.CorruptionsPerHour)
	return inj
}

// stream lazily generates one kind's Poisson arrivals.
type stream struct {
	kind Kind
	rate float64 // events per simulated second
	rng  *rand.Rand
	cfg  Config
	next Event
}

// draw schedules the stream's next event strictly after t.
func (s *stream) draw(t float64) {
	gap := s.rng.ExpFloat64() / s.rate
	if gap <= 0 || math.IsInf(gap, 0) {
		gap = 1 / s.rate
	}
	ev := Event{At: t + gap, Kind: s.kind}
	switch s.kind {
	case WorkerFailure:
		ev.Worker = s.rng.Intn(s.cfg.Workers)
	case Straggler:
		ev.Factor = s.cfg.StragglerFactor
	case Corruption:
		ev.Bits = s.rng.Uint64()
	}
	s.next = ev
}

// Injector replays a plan's events against an advancing simulated clock.
// It is a single-run cursor: the cluster owns it and serializes access
// under its own lock.
type Injector struct {
	streams  []*stream
	explicit []Event
	cursor   int
}

// Advance returns the events firing in the window (from, to], in time
// order, and moves the cursor past them. Nil-safe.
func (i *Injector) Advance(from, to float64) []Event {
	if i == nil || to <= from {
		return nil
	}
	if i.explicit != nil {
		lo := i.cursor
		for i.cursor < len(i.explicit) && i.explicit[i.cursor].At <= to {
			i.cursor++
		}
		if lo == i.cursor {
			return nil
		}
		return i.explicit[lo:i.cursor:i.cursor]
	}
	var out []Event
	for {
		var best *stream
		for _, s := range i.streams {
			if s.next.At <= to && (best == nil || s.next.At < best.next.At) {
				best = s
			}
		}
		if best == nil {
			if out != nil {
				sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
			}
			return out
		}
		out = append(out, best.next)
		best.draw(best.next.At)
	}
}
