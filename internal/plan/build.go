package plan

import (
	"fmt"

	"remac/internal/lang"
)

// StmtPlan is a statement lowered to a plan tree.
type StmtPlan struct {
	// Target is the assigned variable.
	Target string
	// TargetSym is the versioned symbol this statement defines ("H#1" for a
	// shadowing reassignment); the engine binds it and promotes to Target at
	// iteration end, so inlined references to the pre-update value stay
	// correct.
	TargetSym string
	// Tree is the right-hand side with upstream definitions inlined (the
	// representation the redundancy search scans).
	Tree *Node
	// Raw is the right-hand side as written, without inlining — the form
	// the SystemDS-style baselines execute statement by statement.
	Raw *Node
	// Inlined reports that downstream statements absorbed this definition,
	// so the redundancy search does not treat it as a separate root.
	Inlined bool
	// Src is the original AST statement (the engine executes these).
	Src *lang.Assign
}

// Plans is a whole program lowered for optimization.
type Plans struct {
	Pre  []StmtPlan
	Body []StmtPlan
	Post []StmtPlan
	// Loop is the source while-loop, nil if the program is straight-line.
	Loop *lang.While
	// LoopConst holds symbols whose values cannot change inside the loop
	// (never assigned in the loop body) — the explicit loop-constant labels
	// of search step 1*.
	LoopConst map[string]bool
	// Symmetric holds symbols declared or inferred symmetric.
	Symmetric map[string]bool
}

// Build lowers a parsed program. Matrix inputs and their shapes are not
// needed at this stage; shape checking happens against a Resolver later.
//
// Inside the loop body, assignments whose definitions do not reference
// their own previous value are inlined into later statements (the paper's
// d = Hg substitution); loop-carried variables (H = H - ...) stay as leaf
// symbols, and any use after their re-assignment within the same iteration
// references a versioned symbol so values from different program points
// never unify.
func Build(prog *lang.Program) (*Plans, error) {
	pre, loop, post := prog.Loop()
	p := &Plans{Loop: loop, Symmetric: map[string]bool{}}
	for s := range prog.Symmetric {
		p.Symmetric[s] = true
	}

	p.LoopConst = map[string]bool{}
	var bodyAssigned map[string]bool
	if loop != nil {
		bodyAssigned = lang.AssignedIn(loop.Body)
	} else {
		bodyAssigned = map[string]bool{}
	}
	// Everything not assigned in the loop body is loop-constant.
	isLoopConst := func(sym string) bool { return !bodyAssigned[baseSym(sym)] }

	lower := func(stmts []lang.Stmt, inLoop bool) ([]StmtPlan, error) {
		b := &builder{
			inline:      map[string]*Node{},
			version:     map[string]int{},
			used:        map[string]bool{},
			referenced:  map[string]bool{},
			isLoopConst: isLoopConst,
			inLoop:      inLoop,
		}
		var out []StmtPlan
		for _, s := range stmts {
			a, ok := s.(*lang.Assign)
			if !ok {
				return nil, fmt.Errorf("plan: only one loop per program is supported")
			}
			sp, err := b.assign(a)
			if err != nil {
				return nil, err
			}
			out = append(out, sp)
		}
		// A statement absorbed into a downstream tree by inlining is not a
		// separate search root — its expression already appears downstream.
		for i := range out {
			if b.used[out[i].Target] {
				out[i].Inlined = true
			}
		}
		return out, nil
	}

	var err error
	if p.Pre, err = lower(pre, false); err != nil {
		return nil, err
	}
	if loop != nil {
		if p.Body, err = lower(loop.Body, true); err != nil {
			return nil, err
		}
	}
	if p.Post, err = lower(post, false); err != nil {
		return nil, err
	}
	// Record the loop-constant label of every symbol the loop body touches
	// (search step 1*).
	for _, sp := range p.Body {
		sp.Tree.Walk(func(n *Node) {
			if n.Kind == Leaf {
				p.LoopConst[baseSym(n.Sym)] = n.LoopConst
			}
		})
	}
	return p, nil
}

// baseSym strips the "#n" version suffix.
func baseSym(sym string) string {
	for i := 0; i < len(sym); i++ {
		if sym[i] == '#' {
			return sym[:i]
		}
	}
	return sym
}

type builder struct {
	inline      map[string]*Node // definitions eligible for substitution
	version     map[string]int   // re-assignment counters for loop-carried vars
	used        map[string]bool  // inlined definitions actually substituted
	referenced  map[string]bool  // symbols whose current value was referenced
	isLoopConst func(string) bool
	inLoop      bool
}

func (b *builder) assign(a *lang.Assign) (StmtPlan, error) {
	tree, err := b.expr(a.Expr)
	if err != nil {
		return StmtPlan{}, fmt.Errorf("plan: in %s = ...: %w", a.Name, err)
	}
	raw, err := (&builder{isLoopConst: b.isLoopConst, inline: map[string]*Node{}, used: map[string]bool{}, referenced: map[string]bool{}}).expr(a.Expr)
	if err != nil {
		return StmtPlan{}, fmt.Errorf("plan: in %s = ...: %w", a.Name, err)
	}
	sp := StmtPlan{Target: a.Name, Tree: tree, Raw: raw, Src: a}
	selfRef := false
	tree.Walk(func(n *Node) {
		if n.Kind == Leaf && baseSym(n.Sym) == a.Name {
			selfRef = true
		}
	})
	if b.inLoop && !selfRef && productChain(tree) {
		// Inlinable: later statements see the definition. Only pure
		// multiplication chains are substituted (the paper's d = Hg);
		// inlining additive definitions would explode the expansion into
		// exponentially many blocks without revealing new chain windows.
		b.inline[a.Name] = tree
	} else {
		delete(b.inline, a.Name)
		// If the variable's previous value was already referenced in this
		// body (a loop-carried update like H = H - ...), later uses must
		// not unify with those references: they get a versioned symbol.
		if b.inLoop && (selfRef || b.referenced[a.Name]) {
			b.version[a.Name]++
		}
		b.referenced[a.Name] = false
	}
	sp.TargetSym = b.symFor(a.Name)
	return sp, nil
}

func (b *builder) symFor(name string) string {
	if v := b.version[name]; v > 0 {
		return fmt.Sprintf("%s#%d", name, v)
	}
	return name
}

func (b *builder) expr(e lang.Expr) (*Node, error) {
	switch e := e.(type) {
	case *lang.Num:
		return NewConst(e.V), nil
	case *lang.Str:
		return nil, fmt.Errorf("string literal in expression")
	case *lang.Ref:
		if def, ok := b.inline[e.Name]; ok {
			b.used[e.Name] = true
			return def, nil
		}
		b.referenced[e.Name] = true
		sym := b.symFor(e.Name)
		return NewLeaf(sym, b.isLoopConst(sym)), nil
	case *lang.Un:
		x, err := b.expr(e.X)
		if err != nil {
			return nil, err
		}
		return NewUn(Neg, x), nil
	case *lang.Bin:
		l, err := b.expr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := b.expr(e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+":
			return NewBin(Add, l, r), nil
		case "-":
			return NewBin(Sub, l, r), nil
		case "*":
			return NewBin(EMul, l, r), nil
		case "/":
			return NewBin(EDiv, l, r), nil
		case "%*%":
			return NewBin(MMul, l, r), nil
		default:
			return nil, fmt.Errorf("operator %q not allowed in assignments", e.Op)
		}
	case *lang.Call:
		switch e.Fn {
		case "read":
			s, ok := e.Args[0].(*lang.Str)
			if !ok {
				return nil, fmt.Errorf("read() needs a string literal")
			}
			return NewLeaf(s.V, b.isLoopConst(s.V)), nil
		case "t":
			x, err := b.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			return NewUn(Trans, x), nil
		case "sum":
			x, err := b.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			return NewUn(SumAll, x), nil
		case "as.scalar":
			x, err := b.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			return NewUn(AsScalar, x), nil
		case "sqrt":
			x, err := b.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			return NewUn(Sqrt, x), nil
		case "abs":
			x, err := b.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			return NewUn(Abs, x), nil
		case "nrow", "ncol":
			x, err := b.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			if e.Fn == "nrow" {
				return NewUn(NRows, x), nil
			}
			return NewUn(NCols, x), nil
		}
		return nil, fmt.Errorf("unknown function %q", e.Fn)
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// SearchRoots returns the plan trees the redundancy search scans: the
// non-inlined loop-body statements (for loop programs) or all statements
// (straight-line programs).
func (p *Plans) SearchRoots() []*Node {
	stmts := p.Body
	if p.Loop == nil {
		stmts = p.Pre
	}
	var roots []*Node
	for _, sp := range stmts {
		if sp.Inlined {
			continue
		}
		roots = append(roots, sp.Tree)
	}
	return roots
}

// productChain reports whether a tree is a pure multiplication chain over
// leaves (transposes and scalar factors allowed) — the inlining-eligible
// shape.
func productChain(n *Node) bool {
	switch n.Kind {
	case Leaf, Const:
		return true
	case MMul, EMul:
		return productChain(n.L()) && productChain(n.R())
	case Trans, Neg:
		return productChain(n.L())
	default:
		return false
	}
}
