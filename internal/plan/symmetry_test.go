package plan

import (
	"testing"

	"remac/internal/lang"
)

func inferFor(t *testing.T, src string) SymTable {
	t.Helper()
	prog := lang.MustParse(src)
	p, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return InferSymmetry(p, SymTable(prog.Symmetric))
}

func TestInferATASymmetric(t *testing.T) {
	facts := inferFor(t, `
A = read("A")
G = t(A) %*% A
S = A %*% t(A)
N = A %*% A
`)
	if !facts["G"] || !facts["S"] {
		t.Errorf("AᵀA and AAᵀ should be inferred symmetric: %v", facts)
	}
	if facts["N"] {
		t.Error("A·A must not be inferred symmetric")
	}
}

func TestInferOuterProduct(t *testing.T) {
	facts := inferFor(t, `
d = read("d")
D = d %*% t(d)
`)
	if !facts["D"] {
		t.Error("ddᵀ should be symmetric")
	}
}

func TestInferSandwich(t *testing.T) {
	// H M H with H, M symmetric is symmetric; with M unknown it is not.
	facts := inferFor(t, `
#@symmetric H M
H = read("H")
M = read("M")
X = read("X")
S1 = H %*% M %*% H
S2 = H %*% X %*% H
S3 = t(X) %*% M %*% X
`)
	if !facts["S1"] {
		t.Error("HMH should be symmetric")
	}
	if facts["S2"] {
		t.Error("HXH must not be symmetric for unknown X")
	}
	if !facts["S3"] {
		t.Error("XᵀMX should be symmetric")
	}
}

func TestInferCombinations(t *testing.T) {
	facts := inferFor(t, `
#@symmetric P Q
P = read("P")
Q = read("Q")
A = read("A")
S1 = P + Q
S2 = P - 2 * Q
S3 = P + A
S4 = t(P)
`)
	for _, name := range []string{"S1", "S2", "S4"} {
		if !facts[name] {
			t.Errorf("%s should be symmetric", name)
		}
	}
	if facts["S3"] {
		t.Error("P + A must not be symmetric")
	}
}

func TestInferDFPHStaysSymmetric(t *testing.T) {
	// The paper's key invariant: the DFP update preserves H's symmetry, so
	// HAᵀ and AH unify in the search. Inference must confirm the update's
	// shape (given H0 declared symmetric, H's single assignment is a sum of
	// symmetric terms).
	facts := inferFor(t, `
#@symmetric H
A = read("A")
b = read("b")
H = read("H0")
x = read("x0")
i = 0
while (i < 3) {
    g = t(A) %*% (A %*% x - b)
    d = H %*% g
    H = H - (H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H) / as.scalar(t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + (d %*% t(d)) / as.scalar(2 * (t(d) %*% t(A) %*% A %*% d))
    x = x - 0.1 * d
    i = i + 1
}
`)
	if !facts["H"] {
		t.Fatalf("H should be verified symmetric through the DFP update; facts: %v", facts)
	}
	if facts["g"] || facts["x"] {
		t.Error("vectors must not be marked symmetric")
	}
}

func TestInferWithdrawsBrokenFacts(t *testing.T) {
	// Z starts symmetric-looking (first assignment) but a later assignment
	// breaks it: Z must not be in the final facts.
	facts := inferFor(t, `
A = read("A")
Z = t(A) %*% A
Z = A %*% Z
`)
	if facts["Z"] {
		t.Error("Z's second assignment breaks symmetry; fact must be withdrawn")
	}
}

func TestPalindromeEdgeCases(t *testing.T) {
	if !palindrome([]chainAtom{{sym: "A", t: true}, {sym: "A"}}) {
		t.Error("AᵀA palindrome")
	}
	if palindrome([]chainAtom{{sym: "A"}, {sym: "A"}}) {
		t.Error("AA is not a palindrome")
	}
	if !palindrome([]chainAtom{{sym: "H", s: true}}) {
		t.Error("single symmetric atom")
	}
	if palindrome([]chainAtom{{sym: "A"}}) {
		t.Error("single non-symmetric atom")
	}
	if !palindrome([]chainAtom{{sym: "A", t: true}, {sym: "M", s: true}, {sym: "A"}}) {
		t.Error("AᵀMA with symmetric middle")
	}
}
