package plan

import (
	"fmt"
	"math"

	"remac/internal/matrix"
)

// Eval computes the value of a plan tree over plain in-memory matrices.
// Scalars are represented as 1×1 matrices. This is the reference evaluator
// the tests use to assert that every transform and every optimized plan
// preserves values; the simulated-cluster execution path lives in the
// engine package.
func Eval(n *Node, env map[string]*matrix.Matrix) (*matrix.Matrix, error) {
	switch n.Kind {
	case Leaf:
		v, ok := env[baseSym(n.Sym)]
		if !ok {
			return nil, fmt.Errorf("plan: eval: unbound symbol %q", n.Sym)
		}
		return v, nil
	case Const:
		return matrix.Scalar(n.Val), nil
	case Trans:
		x, err := Eval(n.L(), env)
		if err != nil {
			return nil, err
		}
		return x.Transpose(), nil
	case Neg:
		x, err := Eval(n.L(), env)
		if err != nil {
			return nil, err
		}
		return x.Neg(), nil
	case SumAll:
		x, err := Eval(n.L(), env)
		if err != nil {
			return nil, err
		}
		return matrix.Scalar(x.Sum()), nil
	case AsScalar:
		x, err := Eval(n.L(), env)
		if err != nil {
			return nil, err
		}
		if !x.IsScalar() {
			return nil, fmt.Errorf("plan: as.scalar of %dx%d matrix", x.Rows(), x.Cols())
		}
		return x, nil
	case NRows, NCols:
		x, err := Eval(n.L(), env)
		if err != nil {
			return nil, err
		}
		if n.Kind == NRows {
			return matrix.Scalar(float64(x.Rows())), nil
		}
		return matrix.Scalar(float64(x.Cols())), nil
	case Sqrt, Abs:
		x, err := Eval(n.L(), env)
		if err != nil {
			return nil, err
		}
		if !x.IsScalar() {
			return nil, fmt.Errorf("plan: %v of non-scalar", n.Kind)
		}
		v := x.ScalarValue()
		if n.Kind == Sqrt {
			v = math.Sqrt(v)
		} else {
			v = math.Abs(v)
		}
		return matrix.Scalar(v), nil
	}
	l, err := Eval(n.L(), env)
	if err != nil {
		return nil, err
	}
	r, err := Eval(n.R(), env)
	if err != nil {
		return nil, err
	}
	return ApplyBin(n.Kind, l, r)
}

// ApplyBin applies a binary plan operator to two values, handling
// scalar-matrix broadcasting the way DML does.
func ApplyBin(k Kind, l, r *matrix.Matrix) (*matrix.Matrix, error) {
	switch k {
	case MMul:
		if l.IsScalar() || r.IsScalar() {
			// DML allows scalar %*% only through *; treat as scale for
			// robustness of synthetic plans.
			return scaleBy(l, r), nil
		}
		return l.Mul(r), nil
	case Add:
		if l.IsScalar() && !r.IsScalar() {
			return r.AddScalar(l.ScalarValue()), nil
		}
		if r.IsScalar() && !l.IsScalar() {
			return l.AddScalar(r.ScalarValue()), nil
		}
		return l.Add(r), nil
	case Sub:
		if r.IsScalar() && !l.IsScalar() {
			return l.AddScalar(-r.ScalarValue()), nil
		}
		if l.IsScalar() && !r.IsScalar() {
			return r.Neg().AddScalar(l.ScalarValue()), nil
		}
		return l.Sub(r), nil
	case EMul:
		if l.IsScalar() || r.IsScalar() {
			return scaleBy(l, r), nil
		}
		return l.ElemMul(r), nil
	case EDiv:
		if r.IsScalar() && !l.IsScalar() {
			return l.Scale(1 / r.ScalarValue()), nil
		}
		if l.IsScalar() && r.IsScalar() {
			return matrix.Scalar(l.ScalarValue() / r.ScalarValue()), nil
		}
		if l.IsScalar() {
			return nil, fmt.Errorf("plan: scalar / matrix is not supported")
		}
		return l.ElemDiv(r), nil
	}
	return nil, fmt.Errorf("plan: ApplyBin: not a binary op %v", k)
}

func scaleBy(l, r *matrix.Matrix) *matrix.Matrix {
	if l.IsScalar() {
		return r.Scale(l.ScalarValue())
	}
	return l.Scale(r.ScalarValue())
}
