package plan

// This file implements the algebraic transforms of the block-wise search's
// preparation steps: transposition push-down (step 1) and distributive
// expansion (step 2). Both follow algebraic equivalences, so transformed
// plans compute the same values (asserted by the property tests).

// SymTable answers symmetry queries during push-down; a nil table treats
// every symbol as non-symmetric.
type SymTable map[string]bool

// IsSymmetric implements a Resolver-compatible symmetry lookup.
func (t SymTable) IsSymmetric(sym string) bool { return t != nil && t[baseSym(sym)] }

// PushDownTranspose rewrites the tree so transpositions sit directly on
// leaves: t(AB) → t(B)t(A), t(A+B) → t(A)+t(B), t(t(A)) → A. Transposes of
// symmetric leaves and scalar-valued subtrees are dropped. The input tree
// is not modified.
func PushDownTranspose(n *Node, sym SymTable) *Node {
	return pushDown(n, false, sym)
}

// pushDown rewrites n with a pending transpose flag: the result is t(n) if
// flip is set, n otherwise.
func pushDown(n *Node, flip bool, sym SymTable) *Node {
	switch n.Kind {
	case Trans:
		return pushDown(n.L(), !flip, sym)
	case Leaf:
		if !flip || sym.IsSymmetric(n.Sym) {
			return &Node{Kind: Leaf, Sym: n.Sym, LoopConst: n.LoopConst}
		}
		return NewUn(Trans, &Node{Kind: Leaf, Sym: n.Sym, LoopConst: n.LoopConst})
	case Const:
		return NewConst(n.Val)
	case MMul:
		if flip {
			// t(AB) = t(B) t(A)
			return NewBin(MMul, pushDown(n.R(), true, sym), pushDown(n.L(), true, sym))
		}
		return NewBin(MMul, pushDown(n.L(), false, sym), pushDown(n.R(), false, sym))
	case Add, Sub, EMul, EDiv:
		return NewBin(n.Kind, pushDown(n.L(), flip, sym), pushDown(n.R(), flip, sym))
	case Neg:
		return NewUn(Neg, pushDown(n.L(), flip, sym))
	case SumAll, AsScalar, Sqrt, Abs, NRows, NCols:
		// Scalar-valued: a pending transpose is a no-op on the result.
		return NewUn(n.Kind, pushDown(n.L(), false, sym))
	}
	// Unknown kinds pass through unchanged.
	out := n.Clone()
	if flip {
		return NewUn(Trans, out)
	}
	return out
}

// Expand distributes matrix multiplication over addition and subtraction
// (A(B+C) → AB+AC), floats unary minus out of products, and flattens
// double negation. Transposes must already be pushed down. The input tree
// is not modified.
func Expand(n *Node) *Node {
	switch n.Kind {
	case Leaf:
		return &Node{Kind: Leaf, Sym: n.Sym, LoopConst: n.LoopConst}
	case Const:
		return NewConst(n.Val)
	case MMul:
		l, r := Expand(n.L()), Expand(n.R())
		return expandMul(l, r)
	case Neg:
		x := Expand(n.L())
		if x.Kind == Neg {
			return x.L()
		}
		return NewUn(Neg, x)
	case Add, Sub, EMul, EDiv:
		return NewBin(n.Kind, Expand(n.L()), Expand(n.R()))
	case Trans, SumAll, AsScalar, Sqrt, Abs, NRows, NCols:
		return NewUn(n.Kind, Expand(n.L()))
	}
	return n.Clone()
}

// expandMul multiplies two already-expanded subtrees, distributing over any
// additive structure and floating negation outward.
func expandMul(l, r *Node) *Node {
	switch {
	case l.Kind == Add || l.Kind == Sub:
		return NewBin(l.Kind, expandMul(l.L(), r), expandMul(l.R(), r))
	case r.Kind == Add || r.Kind == Sub:
		return NewBin(r.Kind, expandMul(l, r.L()), expandMul(l, r.R()))
	case l.Kind == Neg && r.Kind == Neg:
		return expandMul(l.L(), r.L())
	case l.Kind == Neg:
		return NewUn(Neg, expandMul(l.L(), r))
	case r.Kind == Neg:
		return NewUn(Neg, expandMul(l, r.L()))
	default:
		return NewBin(MMul, l, r)
	}
}

// Normalize applies push-down then expansion — the preparation the
// block-wise search runs before building coordinates.
func Normalize(n *Node, sym SymTable) *Node {
	return Expand(PushDownTranspose(n, sym))
}

// ExplicitCSEKeys returns the canonical keys of non-leaf, repeated subtrees
// across the given roots — the common subexpressions stock SystemDS finds
// without any plan transformation (identical subtrees only).
func ExplicitCSEKeys(roots []*Node) map[string]int {
	counts := map[string]int{}
	for _, root := range roots {
		root.Walk(func(n *Node) {
			if n.Kind == Leaf || n.Kind == Const {
				return
			}
			// Reusing a bare transpose or negation of a leaf buys nothing;
			// SystemDS does not materialize these.
			if (n.Kind == Trans || n.Kind == Neg) && n.L().Kind == Leaf {
				return
			}
			counts[n.Key()]++
		})
	}
	for k, c := range counts {
		if c < 2 {
			delete(counts, k)
		}
	}
	return counts
}
