package plan

import (
	"math/rand"
	"strings"
	"testing"

	"remac/internal/lang"
	"remac/internal/matrix"
	"remac/internal/sparsity"
)

const dfpSrc = `
#@symmetric H
A = read("A")
b = read("b")
H = read("H")
x = read("x")
i = 0
while (i < 3) {
    g = t(A) %*% (A %*% x - b)
    d = H %*% g
    H = H - (H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H) / as.scalar(t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + (d %*% t(d)) / as.scalar(2 * (t(d) %*% t(A) %*% A %*% d))
    x = x - 0.1 * d
    i = i + 1
}
`

func buildDFP(t *testing.T) *Plans {
	t.Helper()
	p, err := Build(lang.MustParse(dfpSrc))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildDFPStructure(t *testing.T) {
	p := buildDFP(t)
	if p.Loop == nil {
		t.Fatal("loop missing")
	}
	if len(p.Body) != 5 {
		t.Fatalf("body statements = %d, want 5", len(p.Body))
	}
	// g and d must be inlined (absorbed into the H update).
	byTarget := map[string]StmtPlan{}
	for _, sp := range p.Body {
		byTarget[sp.Target] = sp
	}
	if !byTarget["d"].Inlined {
		t.Error("d = Hg is a pure product and should be inlined (the paper's substitution)")
	}
	if byTarget["g"].Inlined {
		t.Error("g's definition contains a subtraction; inlining it would explode the expansion")
	}
	if byTarget["H"].Inlined || byTarget["x"].Inlined {
		t.Error("H and x are loop-carried, not inlined")
	}
	// Loop-constant labels: A and b are never assigned in the loop.
	if !p.LoopConst["A"] || !p.LoopConst["b"] {
		t.Error("A, b should be loop-constant")
	}
	if p.LoopConst["H"] || p.LoopConst["x"] {
		t.Error("H, x are assigned in the loop")
	}
	if !p.Symmetric["H"] {
		t.Error("symmetric pragma lost")
	}
}

func TestVersioningAfterReassign(t *testing.T) {
	// After H is reassigned in the body, later uses must reference H#1, so
	// values from different program points never unify.
	src := `
H = read("H")
x = read("x")
i = 0
while (i < 2) {
    H = H %*% H
    x = H %*% x
    i = i + 1
}
`
	p, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	xStmt := p.Body[1]
	var syms []string
	xStmt.Tree.Walk(func(n *Node) {
		if n.Kind == Leaf {
			syms = append(syms, n.Sym)
		}
	})
	found := false
	for _, s := range syms {
		if s == "H#1" {
			found = true
		}
		if s == "H" {
			t.Errorf("use after reassignment must be versioned, saw plain H")
		}
	}
	if !found {
		t.Errorf("versioned H#1 not found in %v", syms)
	}
}

func TestBuildRejectsTwoLoops(t *testing.T) {
	src := "i = 0\nwhile (i < 1) { i = i + 1 }\nwhile (i < 2) { i = i + 1 }"
	if _, err := Build(lang.MustParse(src)); err == nil {
		t.Fatal("expected error for two loops")
	}
}

// testResolver supplies shapes for symbolic tests.
type testResolver map[string]sparsity.Meta

func (r testResolver) MetaFor(sym string) (sparsity.Meta, bool) {
	m, ok := r[strings.SplitN(sym, "#", 2)[0]]
	return m, ok
}
func (r testResolver) IsSymmetric(string) bool { return false }

func TestInferMeta(t *testing.T) {
	r := testResolver{
		"A": sparsity.MetaDims(100, 20, 0.5),
		"x": sparsity.MetaDims(20, 1, 1),
	}
	tree := NewBin(MMul, NewUn(Trans, NewLeaf("A", true)), NewBin(MMul, NewLeaf("A", true), NewLeaf("x", false)))
	m, err := InferMeta(tree, r, sparsity.Metadata{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 20 || m.Cols != 1 {
		t.Fatalf("inferred %dx%d, want 20x1", m.Rows, m.Cols)
	}
}

func TestInferMetaErrors(t *testing.T) {
	r := testResolver{"A": sparsity.MetaDims(10, 5, 1)}
	bad := NewBin(MMul, NewLeaf("A", true), NewLeaf("A", true)) // 10x5 · 10x5
	if _, err := InferMeta(bad, r, sparsity.Metadata{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	unknown := NewLeaf("Z", true)
	if _, err := InferMeta(unknown, r, sparsity.Metadata{}); err == nil {
		t.Error("unknown symbol accepted")
	}
}

func TestPushDownTranspose(t *testing.T) {
	// t(A %*% d) → t(d) %*% t(A)
	tree := NewUn(Trans, NewBin(MMul, NewLeaf("A", true), NewLeaf("d", false)))
	got := PushDownTranspose(tree, nil)
	want := "%*%(t(d),t(A))"
	if got.Key() != want {
		t.Fatalf("Key = %q, want %q", got.Key(), want)
	}
}

func TestPushDownDoubleTranspose(t *testing.T) {
	tree := NewUn(Trans, NewUn(Trans, NewLeaf("A", true)))
	if got := PushDownTranspose(tree, nil); got.Key() != "A" {
		t.Fatalf("t(t(A)) should simplify to A, got %q", got.Key())
	}
}

func TestPushDownSymmetricDropsTranspose(t *testing.T) {
	tree := NewUn(Trans, NewLeaf("H", false))
	got := PushDownTranspose(tree, SymTable{"H": true})
	if got.Key() != "H" {
		t.Fatalf("t(H) with symmetric H should drop, got %q", got.Key())
	}
}

func TestPushDownThroughAddAndScalar(t *testing.T) {
	// t(A + B) → t(A) + t(B); t(sum(X)) → sum(X).
	tree := NewUn(Trans, NewBin(Add, NewLeaf("A", true), NewLeaf("B", true)))
	got := PushDownTranspose(tree, nil)
	if got.Key() != "+(t(A),t(B))" {
		t.Fatalf("got %q", got.Key())
	}
	s := NewUn(Trans, NewUn(SumAll, NewLeaf("X", true)))
	if got := PushDownTranspose(s, nil); got.Key() != "sum(X)" {
		t.Fatalf("scalar transpose should drop, got %q", got.Key())
	}
}

func TestExpandDistributes(t *testing.T) {
	// A %*% (B + C) → A%*%B + A%*%C
	tree := NewBin(MMul, NewLeaf("A", true), NewBin(Add, NewLeaf("B", true), NewLeaf("C", true)))
	got := Expand(tree)
	if got.Key() != "+(%*%(A,B),%*%(A,C))" {
		t.Fatalf("got %q", got.Key())
	}
}

func TestExpandFloatsNegation(t *testing.T) {
	tree := NewBin(MMul, NewUn(Neg, NewLeaf("A", true)), NewUn(Neg, NewLeaf("B", true)))
	if got := Expand(tree); got.Key() != "%*%(A,B)" {
		t.Fatalf("(-A)(-B) should expand to AB, got %q", got.Key())
	}
	one := NewBin(MMul, NewUn(Neg, NewLeaf("A", true)), NewLeaf("B", true))
	if got := Expand(one); got.Key() != "neg(%*%(A,B))" {
		t.Fatalf("(-A)B should expand to -(AB), got %q", got.Key())
	}
}

func TestExpandNested(t *testing.T) {
	// (A+B) %*% (C+D) → AC + AD + BC + BD (grouped)
	tree := NewBin(MMul,
		NewBin(Add, NewLeaf("A", true), NewLeaf("B", true)),
		NewBin(Add, NewLeaf("C", true), NewLeaf("D", true)))
	got := Expand(tree)
	leaves := 0
	muls := 0
	got.Walk(func(n *Node) {
		if n.Kind == Leaf {
			leaves++
		}
		if n.Kind == MMul {
			muls++
		}
	})
	if leaves != 8 || muls != 4 {
		t.Fatalf("expected 4 products over 8 leaves, got %d muls %d leaves", muls, leaves)
	}
}

func randomEnv(rng *rand.Rand) map[string]*matrix.Matrix {
	n := 6
	return map[string]*matrix.Matrix{
		"A": matrix.RandDense(rng, n, n),
		"B": matrix.RandDense(rng, n, n),
		"C": matrix.RandDense(rng, n, n),
		"H": matrix.RandSymmetric(rng, n),
		"d": matrix.RandVector(rng, n),
	}
}

// randomTree builds a random matrix expression over square matrices.
func randomTree(rng *rand.Rand, depth int) *Node {
	if depth == 0 || rng.Float64() < 0.3 {
		syms := []string{"A", "B", "C", "H", "d"}
		s := syms[rng.Intn(4)] // keep it square: skip d except explicitly
		return NewLeaf(s, true)
	}
	switch rng.Intn(5) {
	case 0:
		return NewUn(Trans, randomTree(rng, depth-1))
	case 1:
		return NewUn(Neg, randomTree(rng, depth-1))
	case 2:
		return NewBin(Add, randomTree(rng, depth-1), randomTree(rng, depth-1))
	case 3:
		return NewBin(Sub, randomTree(rng, depth-1), randomTree(rng, depth-1))
	default:
		return NewBin(MMul, randomTree(rng, depth-1), randomTree(rng, depth-1))
	}
}

func TestPropNormalizePreservesValues(t *testing.T) {
	// The central soundness property of §3: all transformations follow
	// algebraic equivalence, so normalized plans compute identical results.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := randomEnv(rng)
		tree := randomTree(rng, 4)
		want, err := Eval(tree, env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eval(Normalize(tree, SymTable{"H": true}), env)
		if err != nil {
			t.Fatal(err)
		}
		if !want.ApproxEqual(got, 1e-8) {
			t.Fatalf("seed %d: normalize changed values\ntree: %s", seed, tree.Key())
		}
	}
}

func TestEvalDFPPlansMatchSequentialExecution(t *testing.T) {
	// Evaluating the inlined H-update tree must equal evaluating g, d, H
	// sequentially.
	p := buildDFP(t)
	rng := rand.New(rand.NewSource(7))
	env := map[string]*matrix.Matrix{
		"A": matrix.RandDense(rng, 8, 4),
		"b": matrix.RandVector(rng, 8),
		"H": matrix.Identity(4),
		"x": matrix.RandVector(rng, 4),
		"i": matrix.Scalar(0),
	}
	// Sequential: g, d, then H.
	seq := map[string]*matrix.Matrix{}
	for k, v := range env {
		seq[k] = v
	}
	for _, name := range []string{"g", "d", "H"} {
		for _, sp := range p.Body {
			if sp.Target == name {
				v, err := Eval(sp.Tree, seq)
				if err != nil {
					t.Fatal(err)
				}
				seq[name] = v
			}
		}
	}
	// Inlined: the H statement's tree (with d = Hg substituted) evaluated
	// against the env plus g — d must not be needed.
	var hTree *Node
	for _, sp := range p.Body {
		if sp.Target == "H" {
			hTree = sp.Tree
		}
	}
	env2 := map[string]*matrix.Matrix{}
	for k, v := range env {
		env2[k] = v
	}
	env2["g"] = seq["g"]
	got, err := Eval(hTree, env2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(seq["H"], 1e-9) {
		t.Fatal("inlined H tree disagrees with sequential execution")
	}
}

func TestExplicitCSEKeys(t *testing.T) {
	// d %*% t(d) appearing twice is explicit; t(A)%*%A vs A%*%... is not.
	ddT := NewBin(MMul, NewLeaf("d", false), NewUn(Trans, NewLeaf("d", false)))
	root := NewBin(Add, ddT, ddT.Clone())
	keys := ExplicitCSEKeys([]*Node{root})
	if len(keys) != 1 {
		t.Fatalf("keys = %v, want exactly the ddT key", keys)
	}
	for k, c := range keys {
		if c != 2 {
			t.Errorf("key %q count %d, want 2", k, c)
		}
	}
}

func TestSearchRoots(t *testing.T) {
	p := buildDFP(t)
	roots := p.SearchRoots()
	// d is inlined; g, H, x, i remain.
	if len(roots) != 4 {
		t.Fatalf("roots = %d, want 4", len(roots))
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(NewLeaf("missing", false), nil); err == nil {
		t.Error("unbound symbol accepted")
	}
	rng := rand.New(rand.NewSource(1))
	env := map[string]*matrix.Matrix{"A": matrix.RandDense(rng, 3, 3)}
	if _, err := Eval(NewUn(AsScalar, NewLeaf("A", false)), env); err == nil {
		t.Error("as.scalar of matrix accepted")
	}
	if _, err := Eval(NewUn(Sqrt, NewLeaf("A", false)), env); err == nil {
		t.Error("sqrt of matrix accepted")
	}
}

func TestKindString(t *testing.T) {
	if MMul.String() != "%*%" || Trans.String() != "t" {
		t.Error("kind names wrong")
	}
}

func TestNodeCountAndClone(t *testing.T) {
	tree := NewBin(MMul, NewLeaf("A", true), NewUn(Trans, NewLeaf("B", true)))
	if tree.Count() != 4 {
		t.Fatalf("Count = %d, want 4", tree.Count())
	}
	c := tree.Clone()
	if c.Key() != tree.Key() {
		t.Fatal("clone key differs")
	}
	c.Kids[0].Sym = "Z"
	if tree.Kids[0].Sym != "A" {
		t.Fatal("clone aliases original")
	}
}
