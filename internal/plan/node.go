// Package plan implements ReMac's plan trees — the operator-tree
// representation between the parsed script and the runtime (SystemDS's HOP
// layer) — together with the algebraic transforms the block-wise search
// builds on: transposition push-down (§3.2 step 1) and distributive
// expansion (§3.2 step 2), plus the explicit-CSE detection stock SystemDS
// performs on identical subtrees.
package plan

import (
	"fmt"
	"strings"

	"remac/internal/sparsity"
)

// Kind enumerates plan operators.
type Kind int

const (
	// Leaf references a matrix (or scalar) symbol.
	Leaf Kind = iota
	// Const is a numeric literal (a scalar).
	Const
	// MMul is matrix multiplication.
	MMul
	// Add is element-wise addition (also scalar+scalar).
	Add
	// Sub is element-wise subtraction.
	Sub
	// EMul is element-wise (or scalar) multiplication.
	EMul
	// EDiv is element-wise (or scalar) division.
	EDiv
	// Trans is transposition.
	Trans
	// Neg is unary minus.
	Neg
	// SumAll reduces a matrix to the scalar sum of its elements.
	SumAll
	// AsScalar converts a 1×1 matrix to a scalar.
	AsScalar
	// Sqrt is scalar square root.
	Sqrt
	// Abs is scalar absolute value.
	Abs
	// NRows yields the row count of its operand as a scalar.
	NRows
	// NCols yields the column count of its operand as a scalar.
	NCols
)

var kindNames = map[Kind]string{
	Leaf: "leaf", Const: "const", MMul: "%*%", Add: "+", Sub: "-",
	EMul: "*", EDiv: "/", Trans: "t", Neg: "neg", SumAll: "sum",
	AsScalar: "as.scalar", Sqrt: "sqrt", Abs: "abs",
	NRows: "nrow", NCols: "ncol",
}

// String names the operator.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is a plan-tree node. Nodes are treated as immutable after
// construction; transforms build new trees.
type Node struct {
	Kind Kind
	// Sym is the symbol name for Leaf nodes. Versioned re-assignments of
	// loop-carried variables get distinct symbols ("H#2") so values from
	// different program points never unify.
	Sym string
	// Val is the literal value for Const nodes.
	Val float64
	// Kids are the operand subtrees.
	Kids []*Node
	// LoopConst marks subtrees whose value cannot change across loop
	// iterations (every referenced symbol is loop-constant).
	LoopConst bool
}

// NewLeaf returns a symbol reference.
func NewLeaf(sym string, loopConst bool) *Node {
	return &Node{Kind: Leaf, Sym: sym, LoopConst: loopConst}
}

// NewConst returns a literal node (always loop-constant).
func NewConst(v float64) *Node { return &Node{Kind: Const, Val: v, LoopConst: true} }

// NewBin returns a binary operator node.
func NewBin(k Kind, l, r *Node) *Node {
	return &Node{Kind: k, Kids: []*Node{l, r}, LoopConst: l.LoopConst && r.LoopConst}
}

// NewUn returns a unary operator node.
func NewUn(k Kind, x *Node) *Node {
	return &Node{Kind: k, Kids: []*Node{x}, LoopConst: x.LoopConst}
}

// L returns the first child.
func (n *Node) L() *Node { return n.Kids[0] }

// R returns the second child.
func (n *Node) R() *Node { return n.Kids[1] }

// IsScalarKind reports whether the node is scalar-valued regardless of
// operand shapes.
func (n *Node) IsScalarKind() bool {
	switch n.Kind {
	case Const, SumAll, AsScalar, Sqrt, Abs, NRows, NCols:
		return true
	}
	return false
}

// Key returns a canonical structural encoding: identical subtrees have
// identical keys. This is the identity explicit CSE matches on.
func (n *Node) Key() string {
	var b strings.Builder
	n.writeKey(&b)
	return b.String()
}

func (n *Node) writeKey(b *strings.Builder) {
	switch n.Kind {
	case Leaf:
		b.WriteString(n.Sym)
	case Const:
		fmt.Fprintf(b, "%g", n.Val)
	default:
		b.WriteString(n.Kind.String())
		b.WriteByte('(')
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteByte(',')
			}
			k.writeKey(b)
		}
		b.WriteByte(')')
	}
}

// Clone returns a deep copy.
func (n *Node) Clone() *Node {
	c := *n
	if n.Kids != nil {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return &c
}

// Walk visits the tree pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, k := range n.Kids {
		k.Walk(fn)
	}
}

// Count returns the number of nodes in the tree.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// Resolver supplies leaf metadata for shape/sparsity inference.
type Resolver interface {
	// MetaFor returns the estimation descriptor for a leaf symbol.
	MetaFor(sym string) (sparsity.Meta, bool)
	// IsSymmetric reports whether a symbol is a symmetric matrix.
	IsSymmetric(sym string) bool
}

// InferMeta computes the output shape/sparsity of a tree using an estimator
// for operator propagation. Unknown symbols yield an error.
func InferMeta(n *Node, r Resolver, est sparsity.Estimator) (sparsity.Meta, error) {
	switch n.Kind {
	case Leaf:
		m, ok := r.MetaFor(n.Sym)
		if !ok {
			return sparsity.Meta{}, fmt.Errorf("plan: unknown symbol %q", n.Sym)
		}
		return m, nil
	case Const:
		return sparsity.MetaDims(1, 1, 1), nil
	case Trans:
		m, err := InferMeta(n.L(), r, est)
		if err != nil {
			return m, err
		}
		return est.Transpose(m), nil
	case Neg, Sqrt, Abs:
		m, err := InferMeta(n.L(), r, est)
		if err != nil {
			return m, err
		}
		if n.Kind == Neg {
			return est.Scale(m), nil
		}
		return sparsity.MetaDims(1, 1, 1), nil
	case SumAll, AsScalar, NRows, NCols:
		if _, err := InferMeta(n.L(), r, est); err != nil {
			return sparsity.Meta{}, err
		}
		return sparsity.MetaDims(1, 1, 1), nil
	}
	l, err := InferMeta(n.L(), r, est)
	if err != nil {
		return l, err
	}
	rm, err := InferMeta(n.R(), r, est)
	if err != nil {
		return rm, err
	}
	switch n.Kind {
	case MMul:
		if l.Cols != rm.Rows {
			return sparsity.Meta{}, fmt.Errorf("plan: %%*%% dims %dx%d · %dx%d", l.Rows, l.Cols, rm.Rows, rm.Cols)
		}
		return est.Mul(l, rm), nil
	case Add, Sub:
		if scalarMeta(l) {
			return rm, nil
		}
		if scalarMeta(rm) {
			return l, nil
		}
		if l.Rows != rm.Rows || l.Cols != rm.Cols {
			return sparsity.Meta{}, fmt.Errorf("plan: %s dims %dx%d vs %dx%d", n.Kind, l.Rows, l.Cols, rm.Rows, rm.Cols)
		}
		return est.Add(l, rm), nil
	case EMul, EDiv:
		if scalarMeta(l) {
			return est.Scale(rm), nil
		}
		if scalarMeta(rm) {
			return est.Scale(l), nil
		}
		if l.Rows != rm.Rows || l.Cols != rm.Cols {
			return sparsity.Meta{}, fmt.Errorf("plan: %s dims %dx%d vs %dx%d", n.Kind, l.Rows, l.Cols, rm.Rows, rm.Cols)
		}
		if n.Kind == EMul {
			return est.ElemMul(l, rm), nil
		}
		return sparsity.MetaDims(l.Rows, l.Cols, 1), nil
	}
	return sparsity.Meta{}, fmt.Errorf("plan: cannot infer meta for %v", n.Kind)
}

func scalarMeta(m sparsity.Meta) bool { return m.Rows == 1 && m.Cols == 1 }

// IsScalar reports whether the tree is scalar-valued under the resolver.
func IsScalar(n *Node, r Resolver) bool {
	m, err := InferMeta(n, r, sparsity.Metadata{})
	return err == nil && scalarMeta(m)
}
