package plan

// This file infers symmetry facts for derived variables. The canonical-key
// normalization of the block-wise search exploits symmetry (AH and HAᵀ
// collide only when H is known symmetric), and requiring users to annotate
// every derived symbol would be brittle: DFP's H stays symmetric because
// its update adds symmetric rank terms, and that is provable from the
// script. Rules:
//
//   - a leaf is symmetric if declared (pragma) or already inferred;
//   - X + Y, X - Y are symmetric when both sides are;
//   - s·X, X/s, -X preserve symmetry for scalar s;
//   - t(X) is symmetric iff X is;
//   - a multiplication chain is symmetric when its atom sequence is a
//     transpose-palindrome: reversing the chain and transposing every atom
//     reproduces the chain (covers AᵀA, ddᵀ, HMH with M, H symmetric, …);
//   - scalar-valued expressions are trivially symmetric (1×1).
//
// Inference runs to a fixpoint over the statements: a variable is symmetric
// only if every assignment to it is provably symmetric.

// InferSymmetry extends the declared symmetry set with derived variables.
// The returned table contains the declared facts plus every variable whose
// assignments are all provably symmetric. Scalar variables are not
// recorded (symmetry is meaningless for them but harmless).
func InferSymmetry(p *Plans, declared SymTable) SymTable {
	facts := SymTable{}
	for s := range declared {
		facts[s] = true
	}
	stmts := append(append([]StmtPlan{}, p.Pre...), p.Body...)
	stmts = append(stmts, p.Post...)

	for pass := 0; pass < 4; pass++ {
		changed := false
		// candidate facts this pass: a variable assigned anywhere must be
		// symmetric under every assignment.
		verdict := map[string]bool{}
		for _, sp := range stmts {
			sym := symmetricTree(sp.Tree, facts)
			if prev, seen := verdict[sp.Target]; seen {
				verdict[sp.Target] = prev && sym
			} else {
				verdict[sp.Target] = sym
			}
		}
		for name, ok := range verdict {
			if ok && !facts[name] {
				facts[name] = true
				changed = true
			}
			if !ok && facts[name] && !declared[name] {
				// An assignment breaks the fact we inferred earlier:
				// withdraw it (declared facts are trusted as invariants).
				delete(facts, name)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return facts
}

// symmetricTree reports whether a tree provably yields a symmetric matrix
// under the given facts.
func symmetricTree(n *Node, facts SymTable) bool {
	switch n.Kind {
	case Leaf:
		return facts.IsSymmetric(n.Sym)
	case Const, SumAll, AsScalar, Sqrt, Abs, NRows, NCols:
		return true // scalar-valued
	case Add, Sub:
		return symmetricTree(n.L(), facts) && symmetricTree(n.R(), facts)
	case Neg:
		return symmetricTree(n.L(), facts)
	case Trans:
		return symmetricTree(n.L(), facts)
	case EMul, EDiv:
		// Scalar scaling preserves symmetry; a genuine element-wise
		// combination of two symmetric matrices does too.
		l, r := n.L(), n.R()
		lScalar, rScalar := scalarish(l), scalarish(r)
		switch {
		case lScalar && rScalar:
			return true
		case lScalar:
			return symmetricTree(r, facts)
		case rScalar:
			return symmetricTree(l, facts)
		default:
			return symmetricTree(l, facts) && symmetricTree(r, facts)
		}
	case MMul:
		atoms, ok := flattenChain(n, facts)
		if !ok {
			return false
		}
		return palindrome(atoms)
	}
	return false
}

// scalarish conservatively detects scalar-valued subtrees without a
// resolver: literals and the scalar-producing operators.
func scalarish(n *Node) bool {
	switch n.Kind {
	case Const, SumAll, AsScalar, Sqrt, Abs, NRows, NCols:
		return true
	case EMul, EDiv:
		return scalarish(n.L()) && scalarish(n.R())
	case Neg:
		return scalarish(n.L())
	}
	return false
}

// chainAtom is a leaf factor with its transpose flag.
type chainAtom struct {
	sym string
	t   bool
	s   bool // symmetric
}

// flattenChain decomposes a multiplication spine into leaf atoms; non-leaf
// factors give up (conservative).
func flattenChain(n *Node, facts SymTable) ([]chainAtom, bool) {
	switch n.Kind {
	case MMul:
		l, okL := flattenChain(n.L(), facts)
		if !okL {
			return nil, false
		}
		r, okR := flattenChain(n.R(), facts)
		if !okR {
			return nil, false
		}
		return append(l, r...), true
	case Leaf:
		return []chainAtom{{sym: n.Sym, s: facts.IsSymmetric(n.Sym)}}, true
	case Trans:
		if n.L().Kind == Leaf {
			leaf := n.L()
			s := facts.IsSymmetric(leaf.Sym)
			return []chainAtom{{sym: leaf.Sym, t: !s, s: s}}, true
		}
		return nil, false
	case EMul, EDiv:
		// Scalar factor inside a chain: ignore it for symmetry (scaling is
		// symmetric-preserving) if one side is scalar.
		if scalarish(n.L()) {
			return flattenChain(n.R(), facts)
		}
		if scalarish(n.R()) {
			return flattenChain(n.L(), facts)
		}
		return nil, false
	case Neg:
		return flattenChain(n.L(), facts)
	}
	return nil, false
}

// palindrome reports whether the chain equals its own transpose: reverse
// the sequence, flip every atom's transpose (symmetric atoms are
// self-transpose), and compare.
func palindrome(atoms []chainAtom) bool {
	n := len(atoms)
	for i := 0; i < n; i++ {
		a := atoms[i]
		b := atoms[n-1-i]
		if a.sym != b.sym {
			return false
		}
		if !a.s && !b.s && a.t == b.t && i != n-1-i {
			// Mirrored positions must carry opposite transposition unless
			// the atom is symmetric.
			return false
		}
		if i == n-1-i && !a.s {
			// The middle atom must itself be symmetric.
			return false
		}
	}
	return n > 0
}
