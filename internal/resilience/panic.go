package resilience

import (
	"fmt"
	"regexp"
	"strings"
)

// maxStackLines bounds a redacted stack: enough frames to locate the
// defect, small enough to ship in an error payload.
const maxStackLines = 24

var hexAddr = regexp.MustCompile(`0x[0-9a-fA-F]+`)

// RedactStack trims a debug.Stack dump for inclusion in a QueryError: the
// goroutine header goes, hex addresses (pointers, frame offsets, argument
// values) are scrubbed to "0x…" so no heap contents leak into logs or HTTP
// bodies, and the frame count is capped.
func RedactStack(stack []byte) string {
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	out := make([]string, 0, maxStackLines)
	for _, line := range lines {
		if strings.HasPrefix(line, "goroutine ") {
			continue
		}
		out = append(out, hexAddr.ReplaceAllString(line, "0x…"))
		if len(out) == maxStackLines {
			out = append(out, "\t…")
			break
		}
	}
	return strings.Join(out, "\n")
}

// PanicError converts a recovered panic value and its stack into an
// Internal-class QueryError. The worker pool calls it from its per-query
// recover so one poisonous query degrades into a structured error instead
// of a process crash.
func PanicError(queryID uint64, stage string, value any, stack []byte) *QueryError {
	return &QueryError{
		Class:   Internal,
		QueryID: queryID,
		Stage:   stage,
		Err:     fmt.Errorf("panic: %v", value),
		Stack:   RedactStack(stack),
	}
}
