package resilience

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestQueryErrorTaxonomy: every class matches its sentinel via errors.Is,
// the wrapped cause keeps matching, and errors.As recovers the fields.
func TestQueryErrorTaxonomy(t *testing.T) {
	cause := errors.New("root cause")
	classes := []Class{Internal, Overloaded, Canceled, Compile, Execution, MaxIterations, Quota}
	for _, c := range classes {
		err := fmt.Errorf("wrapped: %w", &QueryError{Class: c, QueryID: 7, Stage: "execute", Err: cause})
		if !errors.Is(err, c.Sentinel()) {
			t.Errorf("%v: errors.Is against own sentinel failed", c)
		}
		for _, other := range classes {
			if other != c && errors.Is(err, other.Sentinel()) {
				t.Errorf("%v matched %v's sentinel", c, other)
			}
		}
		if !errors.Is(err, cause) {
			t.Errorf("%v: wrapped cause no longer matches", c)
		}
		var qe *QueryError
		if !errors.As(err, &qe) || qe.QueryID != 7 || qe.Stage != "execute" {
			t.Errorf("%v: errors.As lost fields: %+v", c, qe)
		}
		if got, ok := ClassOf(err); !ok || got != c {
			t.Errorf("ClassOf = %v,%v, want %v,true", got, ok, c)
		}
	}
	if _, ok := ClassOf(errors.New("plain")); ok {
		t.Error("ClassOf claimed a plain error carried a class")
	}
}

// TestHTTPStatusMapping pins the class → status contract cmd/remac-serve
// relies on: only internal/execution collapse to 500.
func TestHTTPStatusMapping(t *testing.T) {
	want := map[Class]int{
		Internal:      http.StatusInternalServerError,
		Execution:     http.StatusInternalServerError,
		Overloaded:    http.StatusServiceUnavailable,
		Canceled:      http.StatusGatewayTimeout,
		Compile:       http.StatusBadRequest,
		MaxIterations: http.StatusUnprocessableEntity,
		Quota:         http.StatusTooManyRequests,
	}
	for c, status := range want {
		if got := c.HTTPStatus(); got != status {
			t.Errorf("%v.HTTPStatus() = %d, want %d", c, got, status)
		}
	}
}

// TestTransientMarking: MarkTransient survives wrapping, and a QueryError's
// Transient flag is honored.
func TestTransientMarking(t *testing.T) {
	err := fmt.Errorf("attempt: %w", MarkTransient(errors.New("flaky")))
	if !IsTransient(err) {
		t.Error("wrapped MarkTransient not detected")
	}
	if IsTransient(errors.New("solid")) {
		t.Error("plain error reported transient")
	}
	if !IsTransient(&QueryError{Class: Execution, Transient: true, Err: errors.New("x")}) {
		t.Error("QueryError.Transient not honored")
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
}

// TestBackoffDeterministicCappedJittered: equal (seed, id, attempt) give
// equal delays; delays grow exponentially, stay within [0.5, 1.0)× the
// capped base, and differ across query ids.
func TestBackoffDeterministicCappedJittered(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 3}
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Backoff(42, attempt)
		d2 := p.Backoff(42, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic backoff %v vs %v", attempt, d1, d2)
		}
		base := 10 * time.Millisecond << (attempt - 1)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d1 < base/2 || d1 >= base {
			t.Errorf("attempt %d: %v outside [%v, %v)", attempt, d1, base/2, base)
		}
	}
	if p.Backoff(1, 1) == p.Backoff(2, 1) {
		t.Error("different query ids drew identical jitter")
	}
	other := p
	other.Seed = 4
	if p.Backoff(42, 1) == other.Backoff(42, 1) {
		t.Error("different seeds drew identical jitter")
	}
}

// TestRetryPolicyDefaults: zero value fills in, negative MaxAttempts means
// one attempt.
func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 3 || p.BaseBackoff != 10*time.Millisecond || p.MaxBackoff != time.Second || p.Budget != 2*time.Second {
		t.Errorf("unexpected defaults: %+v", p)
	}
	if got := (RetryPolicy{MaxAttempts: -1}).WithDefaults().MaxAttempts; got != 1 {
		t.Errorf("negative MaxAttempts → %d, want 1", got)
	}
}

// TestHedgeDelay: disabled or signal-less policies never hedge; enabled
// ones scale the quantile and respect the floor.
func TestHedgeDelay(t *testing.T) {
	if d := (HedgePolicy{}).Delay(0.5); d != 0 {
		t.Errorf("disabled hedge produced delay %v", d)
	}
	h := HedgePolicy{Enabled: true}
	if d := h.Delay(0); d != 0 {
		t.Errorf("no latency signal produced delay %v", d)
	}
	if d := h.Delay(0.1); d != 200*time.Millisecond {
		t.Errorf("Delay(0.1) = %v, want 200ms (2x multiplier)", d)
	}
	if d := h.Delay(1e-6); d != h.WithDefaults().MinDelay {
		t.Errorf("tiny quantile delay = %v, want floor %v", d, h.WithDefaults().MinDelay)
	}
}

// TestRedactStack: headers gone, addresses scrubbed, frames capped.
func TestRedactStack(t *testing.T) {
	var b strings.Builder
	b.WriteString("goroutine 17 [running]:\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "pkg.fn%d(0xc000123456, 0x1f)\n\t/src/file%d.go:%d +0x45\n", i, i, i+10)
	}
	got := RedactStack([]byte(b.String()))
	if strings.Contains(got, "[running]") {
		t.Error("goroutine header survived redaction")
	}
	if strings.Contains(got, "0xc000123456") || strings.Contains(got, "+0x45") {
		t.Errorf("addresses survived redaction: %q", got)
	}
	if !strings.Contains(got, "pkg.fn0") {
		t.Error("function names lost")
	}
	if n := strings.Count(got, "\n"); n > maxStackLines+1 {
		t.Errorf("redacted stack has %d lines, want ≤ %d", n, maxStackLines+1)
	}
}
