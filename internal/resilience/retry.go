package resilience

import "time"

// RetryPolicy bounds server-side re-execution of transient failures:
// capped exponential backoff with deterministic seeded jitter and a total
// sleep budget per query. The zero value picks the defaults below; a
// negative MaxAttempts disables retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total execution attempts per query, the first
	// included. Default 3; negative means exactly one attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; the k-th retry
	// waits BaseBackoff·2^(k-1), jittered. Default 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps a single delay. Default 1s.
	MaxBackoff time.Duration
	// Budget caps the summed backoff delays of one query; a retry whose
	// delay would exceed the remainder is abandoned. Default 2s.
	Budget time.Duration
	// Seed drives the jitter. Equal seeds replay equal delay sequences for
	// equal (query id, attempt) pairs, which is what keeps chaos runs
	// reproducible.
	Seed int64
}

// WithDefaults returns the policy with zero fields replaced by defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 2 * time.Second
	}
	return p
}

// Backoff returns the delay before retry attempt (attempt 1 is the first
// retry): capped exponential, scaled by a deterministic jitter factor in
// [0.5, 1.0) derived from (Seed, queryID, attempt). No global RNG state is
// consulted, so concurrent queries never perturb each other's schedules.
func (p RetryPolicy) Backoff(queryID uint64, attempt int) time.Duration {
	p = p.WithDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseBackoff
	for k := 1; k < attempt && d < p.MaxBackoff; k++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	u := mix64(uint64(p.Seed) ^ queryID*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xBF58476D1CE4E5B9)
	frac := 0.5 + 0.5*float64(u>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// HedgePolicy re-submits a straggling query once its first attempt has run
// past a latency quantile of recent completions, racing the two and taking
// whichever settles first. Safe here because engine runs are deterministic
// and side-effect-free apart from shared caches, which tolerate duplicate
// fills.
type HedgePolicy struct {
	// Enabled turns hedging on (default off: hedges burn a worker's worth
	// of duplicate compute).
	Enabled bool
	// Quantile of the recent-latency window that defines a straggler.
	// Default 0.95.
	Quantile float64
	// Multiplier scales the quantile latency into the hedge trigger delay.
	// Default 2.
	Multiplier float64
	// MinDelay floors the trigger delay so cold windows don't hedge
	// instantly. Default 10ms.
	MinDelay time.Duration
	// MaxOutstanding caps concurrent hedge executions server-wide.
	// Default 2.
	MaxOutstanding int
}

// WithDefaults returns the policy with zero fields replaced by defaults.
func (h HedgePolicy) WithDefaults() HedgePolicy {
	if h.Quantile <= 0 || h.Quantile >= 1 {
		h.Quantile = 0.95
	}
	if h.Multiplier <= 0 {
		h.Multiplier = 2
	}
	if h.MinDelay <= 0 {
		h.MinDelay = 10 * time.Millisecond
	}
	if h.MaxOutstanding <= 0 {
		h.MaxOutstanding = 2
	}
	return h
}

// Delay converts an observed quantile latency (seconds) into the hedge
// trigger delay, or 0 when hedging should not fire (disabled or no
// latency signal yet).
func (h HedgePolicy) Delay(quantileSec float64) time.Duration {
	if !h.Enabled || quantileSec <= 0 {
		return 0
	}
	h = h.WithDefaults()
	d := time.Duration(quantileSec * h.Multiplier * float64(time.Second))
	if d < h.MinDelay {
		d = h.MinDelay
	}
	return d
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed hash used
// for jitter and for deriving per-query fault sub-streams.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
