package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits traffic normally (with adaptive shedding as the
	// observed failure rate climbs).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects everything until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a handful of probe queries; their outcomes
	// decide whether to close again or re-open.
	BreakerHalfOpen
)

// String names the state as it appears in metrics and health payloads.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker. The zero value picks the defaults
// noted per field.
type BreakerConfig struct {
	// Window is the rolling outcome window the failure rate is computed
	// over. Default 64.
	Window int
	// MinSamples gates the failure rate: with fewer recorded outcomes the
	// breaker stays closed and sheds nothing. Default 16.
	MinSamples int
	// FailureThreshold opens the breaker when the windowed failure rate
	// reaches it. Default 0.5.
	FailureThreshold float64
	// Cooldown is how long the breaker stays open before admitting probes.
	// Default 1s.
	Cooldown time.Duration
	// HalfOpenProbes is both the concurrent probe budget while half-open
	// and the consecutive successes required to close. Default 3.
	HalfOpenProbes int
	// Now is the clock (tests inject a fake one). Default time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		c.FailureThreshold = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerCounters are cumulative state-transition counts, exposed through
// the serving metrics snapshot.
type BreakerCounters struct {
	Opened     uint64 `json:"opened"`
	HalfOpened uint64 `json:"half_opened"`
	Closed     uint64 `json:"closed"`
	Shed       uint64 `json:"shed"`
}

// Breaker is a circuit breaker fused with a queue-depth-aware load
// shedder: the same rolling failure rate that trips the breaker also
// shrinks the effective admission queue while still closed, so overload
// pressure is relieved gradually before the hard trip. All methods are
// nil-safe (a nil breaker admits everything), letting callers disable it
// without branching.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state    BreakerState
	window   []bool // ring of outcomes, true = failure
	idx      int
	filled   int
	failures int

	openedAt       time.Time
	probesInFlight int
	probeSuccesses int

	counters BreakerCounters
}

// NewBreaker returns a closed breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// State returns the current position. Nil-safe (nil reads closed).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Counters returns cumulative transition and shed counts. Nil-safe.
func (b *Breaker) Counters() BreakerCounters {
	if b == nil {
		return BreakerCounters{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counters
}

// FailureRate returns the windowed failure rate (0 when under MinSamples).
// Nil-safe.
func (b *Breaker) FailureRate() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failureRateLocked()
}

func (b *Breaker) failureRateLocked() float64 {
	if b.filled < b.cfg.MinSamples {
		return 0
	}
	return float64(b.failures) / float64(b.filled)
}

// maybeHalfOpenLocked moves an expired open state to half-open.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probesInFlight = 0
		b.probeSuccesses = 0
		b.counters.HalfOpened++
	}
}

// Admit decides whether a query may join the admission queue given its
// current depth and capacity. On rejection it returns a Retry-After hint:
// the remaining cooldown when open, a fraction of it when shedding.
// Nil-safe: a nil breaker admits everything.
func (b *Breaker) Admit(depth, capacity int) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerOpen:
		b.counters.Shed++
		return false, b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	case BreakerHalfOpen:
		if b.probesInFlight >= b.cfg.HalfOpenProbes {
			b.counters.Shed++
			return false, b.cfg.Cooldown / 4
		}
		b.probesInFlight++
		return true, 0
	}
	// Closed: shed adaptively. The effective queue shrinks in proportion
	// to the observed failure rate, so a degrading backend sees pressure
	// relief before the breaker trips outright.
	if capacity > 0 {
		limit := capacity - int(b.failureRateLocked()*float64(capacity))
		if limit < 1 {
			limit = 1
		}
		if depth >= limit && depth < capacity {
			// Only count adaptive sheds here; a full queue is the caller's
			// hard ErrOverloaded path.
			b.counters.Shed++
			return false, b.cfg.Cooldown / 8
		}
	}
	return true, 0
}

// Record feeds one settled query outcome back. Failures here are
// server-attributable ones (execution and internal errors); canceled,
// compile-error and divergent queries should go through Forgive instead so
// client bugs never open the breaker. Nil-safe.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerHalfOpen:
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		if !success {
			b.openLocked()
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.HalfOpenProbes {
			b.closeLocked()
		}
	case BreakerClosed:
		b.pushLocked(!success)
		if b.filled >= b.cfg.MinSamples && b.failureRateLocked() >= b.cfg.FailureThreshold {
			b.openLocked()
		}
	case BreakerOpen:
		// A straggler settling after the trip: its outcome is stale.
	}
}

// Forgive releases an admitted query's accounting without recording an
// outcome — used for canceled and client-caused failures. Nil-safe.
func (b *Breaker) Forgive() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probesInFlight > 0 {
		b.probesInFlight--
	}
}

func (b *Breaker) pushLocked(failure bool) {
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.failures--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = failure
	if failure {
		b.failures++
	}
	b.idx = (b.idx + 1) % len(b.window)
}

func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.counters.Opened++
}

func (b *Breaker) closeLocked() {
	b.state = BreakerClosed
	b.counters.Closed++
	// A fresh window: the failures that tripped the breaker are history.
	b.window = make([]bool, b.cfg.Window)
	b.idx, b.filled, b.failures = 0, 0, 0
}
