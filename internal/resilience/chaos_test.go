// Chaos soak harness for the resilient serving path. It lives in package
// resilience_test so it can drive internal/serve end to end (serve imports
// resilience, so an internal test here would cycle).
//
// The storm is fully deterministic: query kinds, fault sub-streams and retry
// jitter all derive from ChaosSeed, so a failure reproduces bit-for-bit.
// Run it under -race (CI does) — the assertions are as much about what the
// race detector stays silent on as about the explicit checks.
package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/data"
	"remac/internal/engine"
	"remac/internal/fault"
	"remac/internal/integrity"
	"remac/internal/matrix"
	"remac/internal/resilience"
	"remac/internal/serve"
)

const chaosSeed int64 = 0x5EED_CA05

// queryKind partitions the storm by behavior.
type queryKind int

const (
	kindHealthy   queryKind = iota // fault-injected but well-formed: must succeed bitwise-correct
	kindFlaky                      // transient probe failure on attempt 0: retried to success
	kindPanic                      // probe panics every attempt: structured Internal error
	kindTimeout                    // microsecond deadline: canceled, queued or running
	kindDivergent                  // MaxIterations=1 bomb: typed MaxIterations error
	kindCorrupt                    // silent corruption + ABFT: bitwise-repaired or typed Integrity error
	kindNaN                        // overflowing loop + per-op guard: typed Numeric error
	kindCoded                      // straggler-heavy + coded recovery: tolerance-correct success
)

// kindOf deterministically assigns a kind to a storm index: ~46% healthy,
// ~8% each of the seven chaos modes.
func kindOf(i int) queryKind {
	switch h := uint64(fault.DeriveSeed(chaosSeed, i)) % 13; {
	case h < 6:
		return kindHealthy
	case h < 7:
		return kindFlaky
	case h < 8:
		return kindPanic
	case h < 9:
		return kindTimeout
	case h < 10:
		return kindDivergent
	case h < 11:
		return kindCorrupt
	case h < 12:
		return kindNaN
	default:
		return kindCoded
	}
}

// variant picks one of the four healthy workload shapes for an index.
type variant struct {
	alg   algorithms.Name
	iters int
}

func variantOf(i int) variant {
	h := uint64(fault.DeriveSeed(^chaosSeed, i))
	v := variant{alg: algorithms.GD, iters: 2 + int(h>>1)%2}
	if h&1 == 1 {
		v.alg = algorithms.DFP
	}
	return v
}

// chaosQuery builds the serve query for a variant over cri1.
func chaosQuery(t testing.TB, v variant) serve.Query {
	t.Helper()
	src, err := algorithms.Script(v.alg, v.iters)
	if err != nil {
		t.Fatal(err)
	}
	ds := data.MustLoad("cri1")
	q := serve.NewQuery(src, map[string]engine.Input{
		"A":  {Data: ds.A, VRows: ds.VRows, VCols: ds.VCols},
		"b":  {Data: ds.Label(), VRows: ds.VRows, VCols: 1},
		"H0": {Data: ds.InitialH(), VRows: ds.VCols, VCols: ds.VCols},
		"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1},
	})
	q.Dataset = "cri1"
	q.Iterations = v.iters
	return q
}

// nanQuery builds a numerically divergent query: x0 is nonzero, so repeated
// scaling by 1e200 overflows to Inf within two iterations.
func nanQuery(t testing.TB) serve.Query {
	t.Helper()
	const src = "x = read(\"x0\")\ni = 0\nwhile (i < 6) {\n x = x * 1e200\n i = i + 1\n}"
	ds := data.MustLoad("cri1")
	q := serve.NewQuery(src, map[string]engine.Input{
		"x0": {Data: ds.InitialX(), VRows: ds.VCols, VCols: 1},
	})
	q.Dataset = "cri1-nan"
	q.Iterations = 6
	return q
}

// tolerantEqualValues compares two value sets entry-wise within a relative
// tolerance — the contract of the coded parity-decode path, whose
// reconstructed blocks carry float residue instead of bitwise identity.
func tolerantEqualValues(a, b map[string]*matrix.Matrix, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("variable sets differ: %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Errorf("variable %s missing", name)
		}
		if av.Rows() != bv.Rows() || av.Cols() != bv.Cols() {
			return fmt.Errorf("variable %s shape differs", name)
		}
		var maxDiff, maxAbs float64
		for i := 0; i < av.Rows(); i++ {
			for j := 0; j < av.Cols(); j++ {
				if d := math.Abs(av.At(i, j) - bv.At(i, j)); d > maxDiff {
					maxDiff = d
				}
				if m := math.Abs(bv.At(i, j)); m > maxAbs {
					maxAbs = m
				}
			}
		}
		if maxAbs > 0 && maxDiff/maxAbs > tol {
			return fmt.Errorf("variable %s deviates by %g relative, tolerance %g", name, maxDiff/maxAbs, tol)
		}
	}
	return nil
}

func bitwiseEqualValues(a, b map[string]*matrix.Matrix) error {
	if len(a) != len(b) {
		return fmt.Errorf("variable sets differ: %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Errorf("variable %s missing", name)
		}
		if av.Rows() != bv.Rows() || av.Cols() != bv.Cols() {
			return fmt.Errorf("variable %s shape differs", name)
		}
		for i := 0; i < av.Rows(); i++ {
			for j := 0; j < av.Cols(); j++ {
				if math.Float64bits(av.At(i, j)) != math.Float64bits(bv.At(i, j)) {
					return fmt.Errorf("variable %s differs bitwise at (%d,%d)", name, i, j)
				}
			}
		}
	}
	return nil
}

// TestChaosSoak is the acceptance harness: a seeded storm of concurrent
// queries — healthy ones carrying derived fault sub-streams, plus flaky,
// panicking, canceled and divergent ones — against a server with retry,
// hedging and the circuit breaker all enabled. It asserts the process
// survives, every Do returns (shedding, never deadlock), successes are
// bitwise identical to fault-free serial references, failures carry the
// right taxonomy class, the server still serves after the storm, and
// Shutdown drains without leaking goroutines.
func TestChaosSoak(t *testing.T) {
	storm := 80
	if testing.Short() {
		storm = 32
	}
	const clients = 8

	goroutinesBefore := runtime.NumGoroutine()

	// Fault-free serial references, one per healthy variant, computed on a
	// plain single-worker server with every resilience feature off.
	ref := serve.New(serve.Config{
		Workers: 1, NoBreaker: true,
		Retry: resilience.RetryPolicy{MaxAttempts: -1},
	})
	refs := map[variant]map[string]*matrix.Matrix{}
	for _, alg := range []algorithms.Name{algorithms.GD, algorithms.DFP} {
		for _, iters := range []int{2, 3} {
			v := variant{alg: alg, iters: iters}
			res, err := ref.Do(context.Background(), chaosQuery(t, v))
			if err != nil {
				t.Fatalf("reference %v/%d: %v", alg, iters, err)
			}
			refs[v] = res.Values
		}
	}
	if err := ref.Shutdown(context.Background()); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}

	// The root fault plan every healthy query derives its sub-stream from.
	rootFaults := fault.NewPlan(fault.Config{
		Seed:                  chaosSeed,
		WorkerFailuresPerHour: 120,
		TransmitErrorsPerHour: 240,
		StragglersPerHour:     120,
		Workers:               8,
	})
	// A separate root for the corruption clients: silent bit flips at a rate
	// that lands multiple events per query, verified end to end by ABFT.
	corruptFaults := fault.NewPlan(fault.Config{
		Seed:               chaosSeed ^ 0xC0DE,
		CorruptionsPerHour: 720,
		Workers:            8,
	})
	// A straggler-heavy root for the coded clients: k-of-n recovery masks
	// stragglers by decoding their blocks from parity, so this is the
	// schedule that exercises the decode path hardest.
	stragglerFaults := fault.NewPlan(fault.Config{
		Seed:                  chaosSeed ^ 0x0DED,
		WorkerFailuresPerHour: 120,
		StragglersPerHour:     720,
		Workers:               8,
	})

	s := serve.New(serve.Config{
		Workers:    4,
		QueueDepth: 16,
		Retry:      resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: chaosSeed},
		Hedge:      resilience.HedgePolicy{Enabled: true, MinDelay: 5 * time.Millisecond, MaxOutstanding: 4},
		Breaker: resilience.BreakerConfig{
			Window: 64, MinSamples: 16, FailureThreshold: 0.5, Cooldown: 100 * time.Millisecond,
		},
	})

	type outcome struct {
		idx  int
		kind queryKind
		res  *serve.QueryResult
		err  error
	}
	outcomes := make([]outcome, storm)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				kind := kindOf(i)
				v := variantOf(i)
				q := chaosQuery(t, v)
				q.Faults = rootFaults.Derive(i)
				ctx := context.Background()
				switch kind {
				case kindFlaky:
					q.Probe = func(attempt int) error {
						if attempt == 0 {
							return resilience.MarkTransient(errors.New("chaos: transient fault"))
						}
						return nil
					}
				case kindPanic:
					q.Probe = func(int) error { panic("chaos: panic probe") }
				case kindTimeout:
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				case kindDivergent:
					q.MaxIterations = 1
				case kindCorrupt:
					q.Faults = corruptFaults.Derive(i)
					q.Verify = integrity.VerifyABFT
				case kindNaN:
					q = nanQuery(t)
					q.NaNGuard = integrity.GuardPerOp
				case kindCoded:
					q.Faults = stragglerFaults.Derive(i)
					q.Recovery = engine.RecoveryPolicy{Kind: engine.RecoverCoded}
				}
				res, err := s.Do(ctx, q)
				outcomes[i] = outcome{idx: i, kind: kind, res: res, err: err}
			}
		}()
	}
	for i := 0; i < storm; i++ {
		idxCh <- i
	}
	close(idxCh)

	// Shedding, never deadlock: the whole storm must settle promptly.
	settled := make(chan struct{})
	go func() {
		defer close(settled)
		wg.Wait()
	}()
	select {
	case <-settled:
	case <-time.After(4 * time.Minute):
		t.Fatal("storm did not settle: a Do call is stuck")
	}

	var ok, shed, canceled, internal, divergent, repaired, unrepaired, numeric, coded, decoded int
	for _, o := range outcomes {
		// Any kind may be shed by admission control; that is an availability
		// cost, never a correctness one.
		if o.err != nil && errors.Is(o.err, resilience.ErrOverloaded) {
			shed++
			continue
		}
		switch o.kind {
		case kindHealthy, kindFlaky:
			if o.err != nil {
				t.Errorf("query %d (%v): %v", o.idx, o.kind, o.err)
				continue
			}
			ok++
			if o.kind == kindFlaky && o.res.Attempts < 2 {
				t.Errorf("query %d: flaky query succeeded in %d attempts, want a retry", o.idx, o.res.Attempts)
			}
			if err := bitwiseEqualValues(o.res.Values, refs[variantOf(o.idx)]); err != nil {
				t.Errorf("query %d: fault-injected result diverged from serial reference: %v", o.idx, err)
			}
		case kindPanic:
			var qe *resilience.QueryError
			if !errors.As(o.err, &qe) || qe.Class != resilience.Internal {
				t.Errorf("query %d: panic probe returned %v, want Internal-class QueryError", o.idx, o.err)
				continue
			}
			internal++
			if qe.Stack == "" {
				t.Errorf("query %d: panic error carried no stack", o.idx)
			}
		case kindTimeout:
			// A microsecond deadline occasionally races a warm plan-cache hit;
			// success is legal, anything else must be typed Canceled.
			if o.err == nil {
				ok++
				continue
			}
			if !errors.Is(o.err, resilience.ErrCanceled) || !errors.Is(o.err, engine.ErrCanceled) {
				t.Errorf("query %d: timeout query returned %v, want canceled class", o.idx, o.err)
				continue
			}
			canceled++
		case kindDivergent:
			if !errors.Is(o.err, resilience.ErrMaxIterations) || !errors.Is(o.err, engine.ErrMaxIterations) {
				t.Errorf("query %d: divergent query returned %v, want max-iterations class", o.idx, o.err)
				continue
			}
			divergent++
		case kindCorrupt:
			// The integrity contract: a corrupted query either repairs to the
			// bitwise-identical fault-free result or fails with a typed
			// Integrity error — never a silently wrong success.
			if o.err != nil {
				if !errors.Is(o.err, resilience.ErrIntegrity) || !errors.Is(o.err, integrity.ErrCorruption) {
					t.Errorf("query %d: corrupted query returned %v, want integrity class", o.idx, o.err)
					continue
				}
				unrepaired++
				continue
			}
			ok++
			repaired++
			if err := bitwiseEqualValues(o.res.Values, refs[variantOf(o.idx)]); err != nil {
				t.Errorf("query %d: corrupted query succeeded with a wrong result: %v", o.idx, err)
			}
		case kindNaN:
			if o.err == nil {
				t.Errorf("query %d: NaN-divergent query returned silent success", o.idx)
				continue
			}
			if !errors.Is(o.err, resilience.ErrNumeric) || !errors.Is(o.err, integrity.ErrNonFinite) {
				t.Errorf("query %d: NaN query returned %v, want numeric class", o.idx, o.err)
				continue
			}
			numeric++
		case kindCoded:
			// The coded contract: straggler-heavy queries succeed without
			// recomputation-style divergence — bitwise identical to the
			// serial reference when no decode ran, within 1e-9 relative
			// when the parity-decode path reconstructed blocks.
			if o.err != nil {
				t.Errorf("query %d (coded): %v", o.idx, o.err)
				continue
			}
			ok++
			coded++
			if o.res.EncodeFLOP == 0 {
				t.Errorf("query %d: coded query charged no parity encoding", o.idx)
			}
			if o.res.CodedRecoveries > 0 {
				decoded++
				if err := tolerantEqualValues(o.res.Values, refs[variantOf(o.idx)], 1e-9); err != nil {
					t.Errorf("query %d: coded decode left a wrong result: %v", o.idx, err)
				}
			} else if err := bitwiseEqualValues(o.res.Values, refs[variantOf(o.idx)]); err != nil {
				t.Errorf("query %d: coded query without decodes diverged from serial reference: %v", o.idx, err)
			}
		}
	}
	if ok == 0 {
		t.Fatal("no query in the storm succeeded")
	}
	if internal == 0 && !testing.Short() {
		t.Error("no panic probe surfaced an Internal error (storm mixture broken?)")
	}
	t.Logf("storm: %d ok, %d shed, %d canceled, %d internal, %d divergent, %d repaired, %d unrepaired, %d numeric, %d coded (%d with decodes) of %d",
		ok, shed, canceled, internal, divergent, repaired, unrepaired, numeric, coded, decoded, storm)

	// The server must still serve after the storm — panic probes and an
	// open-then-recovered breaker may not wedge it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := variant{alg: algorithms.GD, iters: 2}
		res, err := s.Do(context.Background(), chaosQuery(t, v))
		if err == nil {
			if berr := bitwiseEqualValues(res.Values, refs[v]); berr != nil {
				t.Fatalf("post-storm query diverged: %v", berr)
			}
			break
		}
		// The breaker may still be open or half-open saturated right after
		// the storm; it must recover within its cooldown.
		if !errors.Is(err, resilience.ErrOverloaded) || time.Now().After(deadline) {
			t.Fatalf("post-storm query failed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap := s.Metrics()
	if snap.PanicsRecovered == 0 && internal > 0 {
		t.Error("panics recovered counter is zero despite Internal outcomes")
	}
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Errorf("storm drained but in-flight %d / queued %d", snap.InFlight, snap.QueueDepth)
	}

	// Clean drain, no goroutine leaks.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= goroutinesBefore {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosStormDeterministicMixture pins the storm composition: the kind
// and variant assignments are pure functions of the seed, so a red chaos
// run reproduces exactly.
func TestChaosStormDeterministicMixture(t *testing.T) {
	counts := map[queryKind]int{}
	for i := 0; i < 1000; i++ {
		if kindOf(i) != kindOf(i) || variantOf(i) != variantOf(i) {
			t.Fatalf("index %d: kind/variant not deterministic", i)
		}
		counts[kindOf(i)]++
	}
	if h := counts[kindHealthy]; h < 400 || h > 600 {
		t.Errorf("healthy fraction %d/1000, want ~500", h)
	}
	for _, k := range []queryKind{kindFlaky, kindPanic, kindTimeout, kindDivergent, kindCorrupt, kindNaN, kindCoded} {
		if c := counts[k]; c < 40 || c > 140 {
			t.Errorf("kind %d fraction %d/1000, want ~77", k, c)
		}
	}
}
