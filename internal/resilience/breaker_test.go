package resilience

import (
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock tests advance by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func testBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.Now = clk.now
	return NewBreaker(cfg)
}

// TestBreakerTripRecoverCycle drives the full closed → open → half-open →
// closed cycle and checks states, admission verdicts, Retry-After hints and
// transition counters at each step.
func TestBreakerTripRecoverCycle(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		Window: 8, MinSamples: 4, FailureThreshold: 0.5,
		Cooldown: time.Second, HalfOpenProbes: 2,
	})

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Under MinSamples the breaker must not trip even at a 100% failure rate.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped below MinSamples")
	}
	// The fourth failure crosses MinSamples with rate 1.0 ≥ 0.5: open.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if c := b.Counters(); c.Opened != 1 {
		t.Fatalf("Opened = %d, want 1", c.Opened)
	}

	// Open: everything rejected, Retry-After counts down with the clock.
	ok, ra := b.Admit(0, 16)
	if ok {
		t.Fatal("open breaker admitted a query")
	}
	if ra != time.Second {
		t.Fatalf("Retry-After = %v, want full cooldown", ra)
	}
	clk.advance(600 * time.Millisecond)
	if _, ra = b.Admit(0, 16); ra != 400*time.Millisecond {
		t.Fatalf("Retry-After after 600ms = %v, want 400ms", ra)
	}

	// Cooldown elapses: half-open, with a probe budget of 2.
	clk.advance(400 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if c := b.Counters(); c.HalfOpened != 1 {
		t.Fatalf("HalfOpened = %d, want 1", c.HalfOpened)
	}
	for i := 0; i < 2; i++ {
		if ok, _ := b.Admit(0, 16); !ok {
			t.Fatalf("half-open rejected probe %d", i)
		}
	}
	if ok, _ := b.Admit(0, 16); ok {
		t.Fatal("half-open admitted past probe budget")
	}

	// Both probes succeed: closed again, with a fresh outcome window.
	b.Record(true)
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe successes = %v, want closed", b.State())
	}
	if c := b.Counters(); c.Closed != 1 {
		t.Fatalf("Closed = %d, want 1", c.Closed)
	}
	if r := b.FailureRate(); r != 0 {
		t.Fatalf("failure window not reset: rate = %v", r)
	}
}

// TestBreakerHalfOpenFailureReopens: one failed probe sends it straight
// back to open for another full cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		Window: 8, MinSamples: 2, FailureThreshold: 0.5,
		Cooldown: time.Second, HalfOpenProbes: 2,
	})
	b.Record(false)
	b.Record(false)
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.Admit(0, 16)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if c := b.Counters(); c.Opened != 2 {
		t.Fatalf("Opened = %d, want 2", c.Opened)
	}
	// The re-open restarts the cooldown from the failure's timestamp.
	if ok, _ := b.Admit(0, 16); ok {
		t.Fatal("re-opened breaker admitted a query")
	}
}

// TestBreakerForgiveReleasesProbeSlot: a canceled probe must hand its
// half-open slot back without counting as an outcome.
func TestBreakerForgiveReleasesProbeSlot(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		Window: 8, MinSamples: 2, FailureThreshold: 0.5,
		Cooldown: time.Second, HalfOpenProbes: 1,
	})
	b.Record(false)
	b.Record(false)
	clk.advance(time.Second)
	if ok, _ := b.Admit(0, 16); !ok {
		t.Fatal("half-open rejected the only probe")
	}
	if ok, _ := b.Admit(0, 16); ok {
		t.Fatal("probe budget of 1 admitted twice")
	}
	b.Forgive()
	if ok, _ := b.Admit(0, 16); !ok {
		t.Fatal("Forgive did not release the probe slot")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open (Forgive is not an outcome)", b.State())
	}
}

// TestBreakerAdaptiveShedding: while still closed, a rising failure rate
// shrinks the effective queue; a clean window restores full capacity.
func TestBreakerAdaptiveShedding(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		Window: 16, MinSamples: 8, FailureThreshold: 0.9,
		Cooldown: time.Second, HalfOpenProbes: 1,
	})
	// 4 failures in 16 → rate 0.25 → effective limit 16-4 = 12 of 16.
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	for i := 0; i < 12; i++ {
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (rate under threshold)", b.State())
	}
	if ok, _ := b.Admit(11, 16); !ok {
		t.Fatal("shed below the effective limit")
	}
	ok, ra := b.Admit(12, 16)
	if ok {
		t.Fatal("admitted at the shrunken limit")
	}
	if ra <= 0 {
		t.Fatal("shed rejection carried no Retry-After hint")
	}
	if c := b.Counters(); c.Shed == 0 {
		t.Fatal("Shed counter not incremented")
	}
	// A full queue is the caller's hard-overload path, not a breaker shed.
	shedBefore := b.Counters().Shed
	if ok, _ := b.Admit(16, 16); !ok {
		t.Fatal("breaker claimed a full queue (caller's path)")
	}
	if b.Counters().Shed != shedBefore {
		t.Fatal("full queue wrongly counted as a breaker shed")
	}
	// Wash the failures out of the window: full capacity again.
	for i := 0; i < 16; i++ {
		b.Record(true)
	}
	if ok, _ := b.Admit(15, 16); !ok {
		t.Fatal("clean window still shedding")
	}
}

// TestBreakerStaleOutcomeWhileOpen: results settling after the trip are
// ignored rather than corrupting the next half-open round.
func TestBreakerStaleOutcomeWhileOpen(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		Window: 8, MinSamples: 2, FailureThreshold: 0.5,
		Cooldown: time.Second, HalfOpenProbes: 1,
	})
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not open")
	}
	b.Record(true) // straggler from before the trip
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("stale outcome moved the state")
	}
	if c := b.Counters(); c.Opened != 1 {
		t.Fatalf("Opened = %d, want 1", c.Opened)
	}
}

// TestNilBreaker: every method on a nil breaker is a safe no-op that admits
// everything — this is how serve disables the breaker.
func TestNilBreaker(t *testing.T) {
	var b *Breaker
	if ok, ra := b.Admit(100, 1); !ok || ra != 0 {
		t.Fatal("nil breaker rejected")
	}
	b.Record(false)
	b.Forgive()
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker not closed")
	}
	if b.FailureRate() != 0 {
		t.Fatal("nil breaker failure rate != 0")
	}
	if b.Counters() != (BreakerCounters{}) {
		t.Fatal("nil breaker counters != zero")
	}
}
