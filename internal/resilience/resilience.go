// Package resilience is the serving layer's fault-handling toolkit: a typed
// query-error taxonomy with errors.Is/As support, capped-backoff retry and
// hedged-execution policies with deterministic seeded jitter, a
// closed/open/half-open circuit breaker with queue-depth-aware load
// shedding, and panic capture with stack redaction.
//
// The package mirrors what SystemDS inherits from Spark's driver/executor
// recovery: a single misbehaving query — a panic, a runaway loop, a
// transient failure — must degrade into a structured error on that query
// alone, never into a process crash or a wedged admission queue. It is
// deliberately dependency-free (standard library only) so internal/serve,
// cmd/remac-serve and the bench harness can all consume it; classification
// of engine errors into classes happens at the serving layer, which knows
// the sentinels.
//
// Everything policy-driven is deterministic: retry jitter derives from a
// seed, a query id and an attempt number, and the breaker takes an
// injectable clock, so the chaos soak harness replays identical storms.
package resilience

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Class partitions query failures by what the caller should do about them.
type Class int

const (
	// Internal is a server-side defect: a recovered panic or an invariant
	// violation. Not retryable by policy (the bug is deterministic).
	Internal Class = iota
	// Overloaded is an admission rejection: breaker open or queue shed.
	// Retryable by the client after the error's RetryAfter hint.
	Overloaded
	// Canceled is a query abandoned by its own context (client gone or
	// deadline passed), whether it was still queued or already running.
	Canceled
	// Compile is a front-end failure: parse or plan-compilation error in
	// the submitted program. A client bug; retrying the same text is futile.
	Compile
	// Execution is a run-time failure inside the engine. Transient
	// execution errors (see MarkTransient) are retried by the server.
	Execution
	// MaxIterations is a loop that never met its condition before the
	// iteration cap — a divergent program, not a server fault.
	MaxIterations
	// Integrity is a detected data corruption that lineage repair could not
	// clear within its bounded budget — an infrastructure fault, so it
	// counts against the breaker like Internal. Not retryable by policy:
	// an at-rest corruption re-reads the same bad bytes on every attempt.
	Integrity
	// Numeric is a non-finite value (NaN/Inf) caught by the engine's guard
	// — a divergent program like MaxIterations, not a server fault.
	Numeric
	// Quota is a per-tenant admission rejection at the gateway tier: the
	// tenant's token bucket is empty or its concurrent-query cap is reached.
	// Unlike Overloaded (the whole instance is saturated), the server has
	// capacity — this tenant specifically must back off, so HTTP maps it to
	// 429 rather than 503. Retryable after the error's RetryAfter hint.
	Quota
)

// String names the class as it appears in error text and JSON bodies.
func (c Class) String() string {
	switch c {
	case Internal:
		return "internal"
	case Overloaded:
		return "overloaded"
	case Canceled:
		return "canceled"
	case Compile:
		return "compile"
	case Execution:
		return "execution"
	case MaxIterations:
		return "max-iterations"
	case Integrity:
		return "integrity"
	case Numeric:
		return "numeric"
	case Quota:
		return "quota"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassFromString is the inverse of Class.String: it parses the wire name
// an HTTP front-end wrote into a JSON error body back into the class. ok
// is false for names that are not a taxonomy class (e.g. the "closed"
// drain marker), letting callers fall back to status-code mapping.
func ClassFromString(s string) (Class, bool) {
	switch s {
	case "internal":
		return Internal, true
	case "overloaded":
		return Overloaded, true
	case "canceled":
		return Canceled, true
	case "compile":
		return Compile, true
	case "execution":
		return Execution, true
	case "max-iterations":
		return MaxIterations, true
	case "integrity":
		return Integrity, true
	case "numeric":
		return Numeric, true
	case "quota":
		return Quota, true
	default:
		return Internal, false
	}
}

// Class sentinels: errors.Is(err, resilience.ErrOverloaded) matches any
// QueryError of that class, regardless of the wrapped cause.
var (
	ErrInternal      = errors.New("resilience: internal error")
	ErrOverloaded    = errors.New("resilience: overloaded")
	ErrCanceled      = errors.New("resilience: canceled")
	ErrCompile       = errors.New("resilience: compile error")
	ErrExecution     = errors.New("resilience: execution error")
	ErrMaxIterations = errors.New("resilience: max iterations exceeded")
	ErrIntegrity     = errors.New("resilience: integrity error")
	ErrNumeric       = errors.New("resilience: numeric error")
	ErrQuota         = errors.New("resilience: tenant quota exceeded")
)

// Sentinel returns the class's matchable sentinel error.
func (c Class) Sentinel() error {
	switch c {
	case Overloaded:
		return ErrOverloaded
	case Canceled:
		return ErrCanceled
	case Compile:
		return ErrCompile
	case Execution:
		return ErrExecution
	case MaxIterations:
		return ErrMaxIterations
	case Integrity:
		return ErrIntegrity
	case Numeric:
		return ErrNumeric
	case Quota:
		return ErrQuota
	default:
		return ErrInternal
	}
}

// HTTPStatus maps the class to the status an HTTP front-end should return.
// Only Internal and non-transient Execution collapse to 500; client-caused
// failures get distinct 4xx codes and overload gets 503 so clients can key
// backoff off the status alone.
func (c Class) HTTPStatus() int {
	switch c {
	case Quota:
		return http.StatusTooManyRequests // 429 + Retry-After
	case Overloaded:
		return http.StatusServiceUnavailable // 503 + Retry-After
	case Canceled:
		return http.StatusGatewayTimeout // 504
	case Compile:
		return http.StatusBadRequest // 400
	case MaxIterations, Numeric:
		return http.StatusUnprocessableEntity // 422: valid program, divergent
	default:
		// Internal, unrepaired Integrity and non-transient Execution are
		// server-side faults: 500.
		return http.StatusInternalServerError
	}
}

// QueryError is the structured failure of one served query: the taxonomy
// class, which query and pipeline stage failed, the wrapped cause, and —
// for recovered panics — a redacted stack. It supports errors.Is against
// the class sentinels and errors.As for field access.
type QueryError struct {
	// Class is the taxonomy bucket.
	Class Class
	// QueryID is the server-assigned id of the failed query.
	QueryID uint64
	// Stage is where the failure happened: "admission", "queued",
	// "compile", "execute", "panic".
	Stage string
	// Err is the underlying cause (nil only for recovered panics, whose
	// cause is the panic value rendered into Err by PanicError).
	Err error
	// Stack is the redacted goroutine stack of a recovered panic ("" for
	// ordinary errors). Addresses and pointer arguments are scrubbed; see
	// RedactStack.
	Stack string
	// Transient marks an execution failure worth retrying server-side.
	Transient bool
	// RetryAfter hints when an Overloaded rejection is worth retrying.
	RetryAfter time.Duration
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("query %d: %s: %s: %v", e.QueryID, e.Stage, e.Class, e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// Is matches the class sentinel, so errors.Is(err, resilience.ErrExecution)
// holds for every execution-class QueryError. Causes wrapped in Err keep
// matching through the normal Unwrap chain.
func (e *QueryError) Is(target error) bool { return target == e.Class.Sentinel() }

// ClassOf extracts the taxonomy class from an error chain. ok reports
// whether a QueryError was found; otherwise the class defaults to Internal.
func ClassOf(err error) (Class, bool) {
	var qe *QueryError
	if errors.As(err, &qe) {
		return qe.Class, true
	}
	return Internal, false
}

// IsClass reports whether err carries a QueryError of the given class.
func IsClass(err error, c Class) bool {
	got, ok := ClassOf(err)
	return ok && got == c
}

// transientError marks a failure as transient (retry-worthy).
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// MarkTransient wraps err so IsTransient reports true through any further
// wrapping. Used by fault probes and by any engine path that distinguishes
// recoverable failures.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) is marked
// transient, either via MarkTransient or a QueryError's Transient flag.
func IsTransient(err error) bool {
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var qe *QueryError
	return errors.As(err, &qe) && qe.Transient
}
