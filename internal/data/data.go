// Package data generates the evaluation datasets: deterministic synthetic
// analogues of the paper's criteo and reddit matrices (Table 2) and the
// zipf-skewed variants of §6.5. Matrices are materialized at a reduced
// scale but carry the paper-scale virtual dimensions the cost model and the
// simulated clock use (see the substitution table in DESIGN.md); sparsity
// and tall/fat aspect — the properties the evaluation's crossovers depend
// on — match Table 2 exactly.
package data

import (
	"fmt"
	"math/rand"

	"remac/internal/matrix"
)

// Dataset is one evaluation input: the materialized design matrix plus its
// virtual (paper-scale) dimensions and the derived model inputs.
type Dataset struct {
	Name string
	// A is the materialized design matrix.
	A *matrix.Matrix
	// VRows and VCols are the paper-scale dimensions.
	VRows, VCols int64
	// Sparsity is the nominal sparsity (Table 2).
	Sparsity float64
	// Dense reports the storage class Table 2 implies.
	Dense bool
	// FootprintGB is Table 2's reported memory footprint.
	FootprintGB float64
}

// Spec describes a dataset before materialization.
type Spec struct {
	Name         string
	VRows, VCols int64
	Sparsity     float64
	FootprintGB  float64
	// ZipfExp skews the nonzero distribution (0 = uniform).
	ZipfExp float64
	// ScaleRows is the materialized row count.
	ScaleRows int
	// ScaleCols is the materialized column count (0 = VCols).
	ScaleCols int
}

// Specs lists the Table 2 datasets and the §6.5 zipf variants. The
// materialized sizes keep every kernel laptop-fast while preserving aspect
// ratio class (tall-narrow vs fat) and exact sparsity.
var Specs = map[string]Spec{
	"cri1": {Name: "cri1", VRows: 116_800_000, VCols: 47, Sparsity: 0.6, FootprintGB: 40.9, ScaleRows: 4000},
	"cri2": {Name: "cri2", VRows: 58_400_000, VCols: 8_700, Sparsity: 4.5e-3, FootprintGB: 30.0, ScaleRows: 2000, ScaleCols: 870},
	"cri3": {Name: "cri3", VRows: 58_400_000, VCols: 15_000, Sparsity: 2.6e-3, FootprintGB: 30.0, ScaleRows: 2000, ScaleCols: 1500},
	"red1": {Name: "red1", VRows: 120_000_000, VCols: 34, Sparsity: 0.51, FootprintGB: 30.4, ScaleRows: 4000},
	"red2": {Name: "red2", VRows: 104_500_000, VCols: 5_000, Sparsity: 3.9e-3, FootprintGB: 31.5, ScaleRows: 2000, ScaleCols: 500},
	"red3": {Name: "red3", VRows: 104_500_000, VCols: 20_000, Sparsity: 9.6e-4, FootprintGB: 31.5, ScaleRows: 2000, ScaleCols: 2000},

	"zipf-0.0": zipfSpec(0.0),
	"zipf-0.7": zipfSpec(0.7),
	"zipf-1.4": zipfSpec(1.4),
	"zipf-2.1": zipfSpec(2.1),
	"zipf-2.8": zipfSpec(2.8),
}

// zipfSpec builds a cri2-shaped skewed dataset (§6.5: "the same row and
// column numbers as well as the sparsity of cri2").
func zipfSpec(exp float64) Spec {
	return Spec{
		Name:  fmt.Sprintf("zipf-%.1f", exp),
		VRows: 58_400_000, VCols: 8_700, Sparsity: 4.5e-3, FootprintGB: 30.0,
		ZipfExp: exp, ScaleRows: 2000, ScaleCols: 870,
	}
}

// Names lists the Table 2 datasets in presentation order.
var Names = []string{"cri1", "cri2", "cri3", "red1", "red2", "red3"}

// ZipfNames lists the §6.5 datasets in presentation order.
var ZipfNames = []string{"zipf-0.0", "zipf-0.7", "zipf-1.4", "zipf-2.1", "zipf-2.8"}

// Load materializes a dataset deterministically (same name → same data).
func Load(name string) (*Dataset, error) {
	spec, ok := Specs[name]
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q", name)
	}
	return Generate(spec), nil
}

// MustLoad is Load that panics on unknown names.
func MustLoad(name string) *Dataset {
	d, err := Load(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Generate materializes a spec.
func Generate(spec Spec) *Dataset {
	rng := rand.New(rand.NewSource(seedFor(spec.Name)))
	cols := spec.ScaleCols
	if cols == 0 {
		cols = int(spec.VCols)
	}
	var a *matrix.Matrix
	switch {
	case spec.ZipfExp > 0:
		a = matrix.ZipfSparse(rng, spec.ScaleRows, cols, spec.Sparsity, spec.ZipfExp)
	case spec.Sparsity > matrix.DenseThreshold:
		a = denseWithSparsity(rng, spec.ScaleRows, cols, spec.Sparsity)
	default:
		a = matrix.RandSparse(rng, spec.ScaleRows, cols, spec.Sparsity)
	}
	return &Dataset{
		Name:        spec.Name,
		A:           a,
		VRows:       spec.VRows,
		VCols:       spec.VCols,
		Sparsity:    spec.Sparsity,
		Dense:       spec.Sparsity > matrix.DenseThreshold,
		FootprintGB: spec.FootprintGB,
	}
}

// denseWithSparsity builds a dense-format matrix with the target fraction
// of nonzeros (cri1/red1 are dense-stored but not fully filled).
func denseWithSparsity(rng *rand.Rand, rows, cols int, s float64) *matrix.Matrix {
	m := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < s {
				m.Set(i, j, 2*rng.Float64()-1)
			}
		}
	}
	return m
}

func seedFor(name string) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// Label returns a deterministic b vector (rows×1 dense) for least-squares
// workloads, with virtual rows matching the dataset.
func (d *Dataset) Label() *matrix.Matrix {
	rng := rand.New(rand.NewSource(seedFor(d.Name + "/label")))
	return matrix.RandVector(rng, d.A.Rows())
}

// InitialX returns a deterministic starting point x0 (cols×1).
func (d *Dataset) InitialX() *matrix.Matrix {
	rng := rand.New(rand.NewSource(seedFor(d.Name + "/x0")))
	return matrix.RandVector(rng, d.A.Cols()).Scale(0.01)
}

// InitialH returns the identity inverse-Hessian approximation (cols×cols).
func (d *Dataset) InitialH() *matrix.Matrix {
	return matrix.Identity(d.A.Cols())
}

// GNMFFactors returns deterministic non-negative W0 (rows×k) and H0 (k×cols)
// factors for GNMF.
func (d *Dataset) GNMFFactors(k int) (*matrix.Matrix, *matrix.Matrix) {
	rng := rand.New(rand.NewSource(seedFor(d.Name + "/gnmf")))
	w := matrix.RandDense(rng, d.A.Rows(), k)
	h := matrix.RandDense(rng, k, d.A.Cols())
	return absAll(w), absAll(h)
}

func absAll(m *matrix.Matrix) *matrix.Matrix {
	out := m.Clone()
	for i := 0; i < out.Rows(); i++ {
		for j := 0; j < out.Cols(); j++ {
			v := out.At(i, j)
			if v < 0 {
				out.Set(i, j, -v)
			}
		}
	}
	return out
}

// Table2Row is one row of the dataset-statistics table.
type Table2Row struct {
	Dataset     string
	Rows, Cols  int64
	Sparsity    float64
	FootprintGB float64
}

// Table2 returns the paper's Table 2.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, name := range Names {
		s := Specs[name]
		rows = append(rows, Table2Row{
			Dataset: name, Rows: s.VRows, Cols: s.VCols,
			Sparsity: s.Sparsity, FootprintGB: s.FootprintGB,
		})
	}
	return rows
}
