package data

import (
	"math"
	"testing"

	"remac/internal/matrix"
)

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(rows))
	}
	want := map[string][3]float64{ // rows, cols, sparsity
		"cri1": {116_800_000, 47, 0.6},
		"cri2": {58_400_000, 8_700, 4.5e-3},
		"cri3": {58_400_000, 15_000, 2.6e-3},
		"red1": {120_000_000, 34, 0.51},
		"red2": {104_500_000, 5_000, 3.9e-3},
		"red3": {104_500_000, 20_000, 9.6e-4},
	}
	for _, r := range rows {
		w, ok := want[r.Dataset]
		if !ok {
			t.Errorf("unexpected dataset %q", r.Dataset)
			continue
		}
		if float64(r.Rows) != w[0] || float64(r.Cols) != w[1] || r.Sparsity != w[2] {
			t.Errorf("%s: got (%d, %d, %g), want %v", r.Dataset, r.Rows, r.Cols, r.Sparsity, w)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad("cri2")
	b := MustLoad("cri2")
	if !a.A.Equal(b.A) {
		t.Fatal("dataset generation not deterministic")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSparsityNearNominal(t *testing.T) {
	for _, name := range Names {
		ds := MustLoad(name)
		got := ds.A.Sparsity()
		if rel := math.Abs(got-ds.Sparsity) / ds.Sparsity; rel > 0.25 {
			t.Errorf("%s: materialized sparsity %g vs nominal %g", name, got, ds.Sparsity)
		}
	}
}

func TestDenseClassMatchesTable(t *testing.T) {
	for _, name := range Names {
		ds := MustLoad(name)
		if ds.Dense != (ds.Sparsity > matrix.DenseThreshold) {
			t.Errorf("%s: Dense flag inconsistent", name)
		}
		if ds.Dense && ds.A.Format() != matrix.Dense {
			t.Errorf("%s should be dense-formatted", name)
		}
		if !ds.Dense && ds.A.Format() != matrix.CSR {
			t.Errorf("%s should be CSR", name)
		}
	}
}

func TestZipfSeriesIncreasinglySkewed(t *testing.T) {
	prevTop := 0.0
	for _, name := range ZipfNames {
		ds := MustLoad(name)
		counts := ds.A.RowNNZCounts()
		// Fraction of nonzeros in the top 5% of rows.
		sortDesc(counts)
		top := 0
		for i := 0; i < len(counts)/20; i++ {
			top += counts[i]
		}
		frac := float64(top) / float64(ds.A.NNZ())
		if frac+0.02 < prevTop {
			t.Errorf("%s: skew fraction %.3f decreased from previous %.3f", name, frac, prevTop)
		}
		prevTop = frac
	}
	// Per-row quotas are capped at cols/10, so the row-axis concentration
	// tops out slightly below the paper's joint row+column 95% figure.
	if prevTop < 0.85 {
		t.Errorf("zipf-2.8 top-5%% rows hold %.2f of nonzeros, want > 0.85", prevTop)
	}
}

func sortDesc(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] < v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func TestDerivedInputs(t *testing.T) {
	ds := MustLoad("cri1")
	if ds.Label().Rows() != ds.A.Rows() || ds.Label().Cols() != 1 {
		t.Error("label shape wrong")
	}
	if ds.InitialX().Rows() != ds.A.Cols() {
		t.Error("x0 shape wrong")
	}
	h := ds.InitialH()
	if h.Rows() != ds.A.Cols() || !h.IsSymmetric(0) {
		t.Error("H0 must be a symmetric cols×cols matrix")
	}
	w, hf := ds.GNMFFactors(8)
	if w.Rows() != ds.A.Rows() || w.Cols() != 8 || hf.Rows() != 8 || hf.Cols() != ds.A.Cols() {
		t.Error("GNMF factor shapes wrong")
	}
	// Non-negative factors.
	w.ForEachNonzero(func(_, _ int, v float64) {
		if v < 0 {
			t.Error("W0 has negative entries")
		}
	})
}

func TestZipfKeepsCri2Shape(t *testing.T) {
	z := MustLoad("zipf-1.4")
	c := MustLoad("cri2")
	if z.VRows != c.VRows || z.VCols != c.VCols || z.Sparsity != c.Sparsity {
		t.Fatal("zipf datasets must mirror cri2's shape and sparsity (§6.5)")
	}
}
