package gateway

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"remac/internal/algorithms"
	"remac/internal/resilience"
	"remac/internal/serve"
)

// shardChaosSeed fixes every choice the storm makes (ring placement and
// victim selection), so a failure replays exactly.
const shardChaosSeed uint64 = 0xC0FFEE_5EED

// chaosMix is SplitMix64: the storm's only source of "randomness".
func chaosMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// chaosResultHash collapses a result to one FNV-64a hash over the exact
// float bits of every value, so bitwise identity is one comparison.
func chaosResultHash(res *serve.QueryResult) uint64 {
	names := make([]string, 0, len(res.Values))
	for name := range res.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	var buf [8]byte
	for _, name := range names {
		h.Write([]byte(name))
		m := res.Values[name]
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				bits := math.Float64bits(m.At(i, j))
				for b := 0; b < 8; b++ {
					buf[b] = byte(bits >> (8 * b))
				}
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

// TestShardKillChaosStorm kills and respawns real serve.Server shards
// mid-traffic (run under -race in CI): concurrent clients replay two
// workloads through a 3-shard gateway while a controller repeatedly kills
// a seeded victim, drives ejection through probe rounds, broadcasts an
// invalidation the corpse must miss, and verifies the respawned shard is
// readmitted only after catch-up. Every successful query must be bitwise
// identical to a single-instance serial reference, every failure must be
// a typed QueryError (zero silent failures), and shutdown must release
// every goroutine.
func TestShardKillChaosStorm(t *testing.T) {
	type workload struct {
		alg   algorithms.Name
		iters int
	}
	workloads := []workload{{algorithms.DFP, 2}, {algorithms.GD, 2}}

	// Serial single-instance reference hashes.
	ref := make([]uint64, len(workloads))
	direct := serve.New(serve.Config{Workers: 2, ShardID: "reference"})
	for wi, w := range workloads {
		res, err := direct.Do(context.Background(), serveTestQuery(t, w.alg, "cri1", w.iters))
		if err != nil {
			t.Fatalf("reference %v: %v", w.alg, err)
		}
		ref[wi] = chaosResultHash(res)
	}
	if err := direct.Shutdown(context.Background()); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}

	goroutinesBefore := runtime.NumGoroutine()

	const shards = 3
	var slotMu sync.Mutex
	slots := make([]*Killable, shards)
	mkShard := func(id string) *Killable {
		return NewKillable(serve.New(serve.Config{Workers: 2, QueueDepth: 64, ShardID: id}))
	}
	insts := make([]Instance, shards)
	for i := range insts {
		slots[i] = mkShard(fmt.Sprintf("shard-%d", i))
		insts[i] = slots[i]
	}
	slot := func(i int) *Killable {
		slotMu.Lock()
		defer slotMu.Unlock()
		return slots[i]
	}

	sink := &recordingSink{}
	cfg := Config{
		Seed:            shardChaosSeed,
		SpillOver:       1,
		Failover:        2,
		EjectAfter:      2,
		PassiveFailures: 2,
		RejoinProbes:    1,
		ProbeTimeout:    250 * time.Millisecond,
		AuditSink:       sink,
		Respawn: func(i int, id string) Instance {
			k := mkShard(id)
			slotMu.Lock()
			slots[i] = k
			slotMu.Unlock()
			return k
		},
	}
	g := NewWithInstances(cfg, insts)

	// Concurrent clients: each outcome is either a bitwise-checked success
	// or a typed error — anything else is a silent failure.
	type outcome struct {
		wi       int
		hash     uint64
		failover bool
		err      error
	}
	const clients, perClient = 6, 12
	outcomes := make([]outcome, 0, clients*perClient)
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				wi := (c + k) % len(workloads)
				q := serveTestQuery(t, workloads[wi].alg, "cri1", workloads[wi].iters)
				res, err := g.Do(context.Background(), Request{
					Tenant:    fmt.Sprintf("tenant-%d", c),
					RequestID: fmt.Sprintf("storm-%d-%d", c, k),
					Query:     q,
				})
				o := outcome{wi: wi, err: err}
				if err == nil {
					o.hash = chaosResultHash(res.QueryResult)
					o.failover = res.Failover
				}
				outMu.Lock()
				outcomes = append(outcomes, o)
				outMu.Unlock()
			}
		}(c)
	}

	// Controller: three seeded kill → eject → invalidate → respawn →
	// rejoin cycles while the clients hammer the tier.
	for cycle := 0; cycle < 3; cycle++ {
		victim := int(chaosMix(shardChaosSeed+uint64(cycle)) % shards)
		ejBefore := g.Stats().Ejections
		slot(victim).Kill(KillErrors)

		// Ejection within the probe budget. Passive detection racing ahead
		// of the prober is fine — then the counter has already moved and no
		// probe rounds are spent; what is not fine is the corpse surviving
		// the full active budget.
		for r := 0; r < cfg.EjectAfter && g.Stats().Ejections == ejBefore; r++ {
			g.ProbeNow()
		}
		if g.Stats().Ejections == ejBefore {
			t.Fatalf("cycle %d: victim %d not ejected within EjectAfter=%d probe rounds",
				cycle, victim, cfg.EjectAfter)
		}

		// A broadcast the corpse must miss — and the rejoined instance must
		// replay before taking traffic.
		want := g.InvalidateDataset("cri1")

		// Worst case from here: eject-confirm, respawn, catch-up, readmit.
		for r := 0; r < 6 && g.ShardState(victim) != ShardHealthy; r++ {
			g.ProbeNow()
		}
		if got := g.ShardState(victim); got != ShardHealthy {
			t.Fatalf("cycle %d: victim %d state %v after respawn rounds, want healthy", cycle, victim, got)
		}
		if got := g.ShardVersions("cri1")[victim]; got != want {
			t.Fatalf("cycle %d: victim readmitted at version %d, want broadcast version %d", cycle, victim, got)
		}
	}
	wg.Wait()

	// Every success bitwise-identical; every failure typed; no third kind.
	success, failures, failovers := 0, 0, 0
	for _, o := range outcomes {
		if o.err == nil {
			success++
			if o.failover {
				failovers++
			}
			if o.hash != ref[o.wi] {
				t.Fatalf("successful query for workload %d differs bitwise from the serial reference", o.wi)
			}
			continue
		}
		failures++
		var qe *resilience.QueryError
		if !errors.As(o.err, &qe) {
			t.Fatalf("silent failure: untyped error %v", o.err)
		}
		switch qe.Class {
		case resilience.Internal, resilience.Overloaded, resilience.Canceled:
		default:
			t.Fatalf("unexpected failure class %v: %v", qe.Class, o.err)
		}
	}
	if len(outcomes) != clients*perClient {
		t.Fatalf("lost outcomes: %d recorded, want %d", len(outcomes), clients*perClient)
	}
	if success == 0 {
		t.Fatal("storm produced zero successes")
	}
	t.Logf("storm: %d ok (%d failed over), %d typed failures", success, failovers, failures)

	st := g.Stats()
	if st.Ejections < 3 || st.Respawns < 3 || st.Rejoins < 3 {
		t.Fatalf("stats ejections=%d respawns=%d rejoins=%d, want >=3 each", st.Ejections, st.Respawns, st.Rejoins)
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The audit trail must let an operator reconstruct each outage.
	ejects, rejoins := 0, 0
	for _, e := range sink.all() {
		if e.Kind != EventTransition {
			continue
		}
		switch e.To {
		case "ejected":
			ejects++
		case "healthy":
			rejoins++
		}
	}
	if ejects < 3 || rejoins < 3 {
		t.Fatalf("audit trail has %d ejections and %d rejoins, want >=3 each", ejects, rejoins)
	}

	// Zero goroutine leaks: everything the storm started must unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gor := runtime.NumGoroutine(); gor <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
