package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"remac/internal/resilience"
	"remac/internal/serve"
)

// ErrShardDown is the root cause inside the Internal-class error a killed
// Killable returns for every query.
var ErrShardDown = errors.New("gateway: shard down")

// KillMode selects how a killed Killable misbehaves.
type KillMode int

const (
	// KillErrors makes the shard fail fast: every Do returns an
	// Internal-class error and probes report not-OK — a crashed process.
	KillErrors KillMode = iota
	// KillHang makes the shard wedge: Do and probes block until the shard
	// is revived or shut down — a deadlocked or partitioned process. The
	// gateway's probe timeout is what detects this mode.
	KillHang
	// KillPartition makes the shard unreachable over the wire without
	// killing it: queries fail with the same Internal-class wire error a
	// partitioned RemoteInstance produces (ErrNetPartition at the root),
	// probes report a wire failure, and version reads return -1 — the
	// shard itself keeps running, so Revive models the partition healing
	// with all shard state intact.
	KillPartition
)

// Killable wraps an Instance with a kill switch for chaos tests and the
// failover bench: Kill makes the shard fail or hang, Revive restores it.
// While dead the shard stops acknowledging invalidations (a crashed
// process cannot), so its dataset versions fall behind the broadcast —
// exactly the staleness the rejoin catch-up gate exists to repair.
type Killable struct {
	mu     sync.Mutex
	inner  Instance
	dead   bool
	mode   KillMode
	revive chan struct{} // non-nil while dead; closed by Revive/Shutdown
	closed chan struct{}
}

// NewKillable wraps an instance; it starts alive.
func NewKillable(inner Instance) *Killable {
	return &Killable{inner: inner, closed: make(chan struct{})}
}

// Inner returns the wrapped instance.
func (k *Killable) Inner() Instance {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.inner
}

// Kill takes the shard down in the given mode. Idempotent while dead.
func (k *Killable) Kill(mode KillMode) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.dead {
		k.mode = mode
		return
	}
	k.dead = true
	k.mode = mode
	k.revive = make(chan struct{})
}

// Revive brings the shard back; callers blocked in hang mode resume
// against the live instance.
func (k *Killable) Revive() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.dead {
		return
	}
	k.dead = false
	close(k.revive)
	k.revive = nil
}

// state snapshots the kill switch.
func (k *Killable) state() (dead bool, mode KillMode, revive chan struct{}) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.dead, k.mode, k.revive
}

// Do serves through the inner instance while alive; dead shards fail with
// a typed Internal-class error (KillErrors) or block until revived,
// canceled or shut down (KillHang).
func (k *Killable) Do(ctx context.Context, q serve.Query) (*serve.QueryResult, error) {
	dead, mode, revive := k.state()
	if !dead {
		return k.Inner().Do(ctx, q)
	}
	switch mode {
	case KillErrors:
		return nil, &resilience.QueryError{Class: resilience.Internal, Stage: "shard", Err: ErrShardDown}
	case KillPartition:
		return nil, &resilience.QueryError{Class: resilience.Internal, Stage: "wire",
			Err: fmt.Errorf("gateway: %w", ErrNetPartition)}
	}
	select {
	case <-revive:
		return k.Inner().Do(ctx, q)
	case <-ctx.Done():
		return nil, &resilience.QueryError{Class: resilience.Canceled, Stage: "shard",
			Err: fmt.Errorf("gateway: hung shard: %w", ctx.Err())}
	case <-k.closed:
		return nil, &resilience.QueryError{Class: resilience.Internal, Stage: "shard", Err: ErrShardDown}
	}
}

// Healthz reports the inner probe while alive; dead shards report not-OK
// (KillErrors) or block like a wedged process (KillHang) until revived or
// shut down — the gateway's probe timeout converts the block into a
// liveness failure.
func (k *Killable) Healthz() serve.Health {
	dead, mode, revive := k.state()
	if !dead {
		return k.Inner().Healthz()
	}
	switch mode {
	case KillErrors:
		return serve.Health{OK: false, Status: "dead"}
	case KillPartition:
		return serve.Health{OK: false, Status: "partitioned"}
	}
	select {
	case <-revive:
		return k.Inner().Healthz()
	case <-k.closed:
		return serve.Health{OK: false, Status: "dead"}
	}
}

// Readyz mirrors Healthz's kill behavior.
func (k *Killable) Readyz() serve.Health {
	dead, mode, revive := k.state()
	if !dead {
		return k.Inner().Readyz()
	}
	switch mode {
	case KillErrors:
		return serve.Health{OK: false, Status: "dead"}
	case KillPartition:
		return serve.Health{OK: false, Status: "partitioned"}
	}
	select {
	case <-revive:
		return k.Inner().Readyz()
	case <-k.closed:
		return serve.Health{OK: false, Status: "dead"}
	}
}

// InvalidateDataset is dropped while dead — a crashed process cannot
// acknowledge a broadcast. The version gap this opens is what the rejoin
// catch-up closes before readmission.
func (k *Killable) InvalidateDataset(id string) {
	dead, _, _ := k.state()
	if dead {
		return
	}
	k.Inner().InvalidateDataset(id)
}

// DatasetVersion reads through to the inner instance: it is the
// supervisor's last known state for the shard, readable even while the
// shard itself is down. Under KillPartition there is no supervisor-side
// state — the read is a wire round-trip — so it fails to -1 like a
// partitioned RemoteInstance, which keeps the rejoin catch-up gate shut
// until the partition heals.
func (k *Killable) DatasetVersion(id string) int64 {
	if dead, mode, _ := k.state(); dead && mode == KillPartition {
		return -1
	}
	return k.Inner().DatasetVersion(id)
}

// Metrics reads through to the inner instance.
func (k *Killable) Metrics() serve.Snapshot { return k.Inner().Metrics() }

// Shutdown releases any hang-blocked callers and stops the inner
// instance.
func (k *Killable) Shutdown(ctx context.Context) error {
	k.mu.Lock()
	select {
	case <-k.closed:
	default:
		close(k.closed)
	}
	k.mu.Unlock()
	return k.Inner().Shutdown(ctx)
}

var _ Instance = (*Killable)(nil)
