package gateway

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingOrderDeterministicAndComplete: a preference order is a
// permutation of all shards, identical across rings built with the same
// parameters (placement must be stable across processes).
func TestRingOrderDeterministicAndComplete(t *testing.T) {
	const shards, vnodes = 4, 64
	a := newRing(shards, vnodes, 42)
	b := newRing(shards, vnodes, 42)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("dataset-%d@0", i)
		oa, ob := a.order(key), b.order(key)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %q: order differs across identical rings: %v vs %v", key, oa, ob)
		}
		if len(oa) != shards {
			t.Fatalf("key %q: order has %d entries, want %d", key, len(oa), shards)
		}
		seen := map[int]bool{}
		for _, s := range oa {
			if s < 0 || s >= shards || seen[s] {
				t.Fatalf("key %q: order %v is not a permutation of shards", key, oa)
			}
			seen[s] = true
		}
	}
}

// TestRingSpreadsKeys: with virtual nodes, a modest key population
// touches every shard (no shard is starved of ownership).
func TestRingSpreadsKeys(t *testing.T) {
	const shards = 4
	r := newRing(shards, 64, 7)
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[r.order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for s := 0; s < shards; s++ {
		if counts[s] == 0 {
			t.Fatalf("shard %d owns no keys out of 200: %v", s, counts)
		}
	}
}

// TestRingSeedChangesPlacement: different seeds re-roll placement for at
// least some keys (seeded placement is a real knob, not decorative).
func TestRingSeedChangesPlacement(t *testing.T) {
	a := newRing(4, 64, 1)
	b := newRing(4, 64, 2)
	moved := 0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.order(key)[0] != b.order(key)[0] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys at all")
	}
}

// TestRingVersionMovesKey: bumping the version in a dataset@version key
// may re-home the dataset — and whatever the new home is, it is stable.
func TestRingVersionStableWithinVersion(t *testing.T) {
	r := newRing(4, 64, 3)
	for v := 0; v < 5; v++ {
		key := fmt.Sprintf("cri1@%d", v)
		first := r.order(key)[0]
		for i := 0; i < 10; i++ {
			if got := r.order(key)[0]; got != first {
				t.Fatalf("key %q: home flapped %d -> %d", key, first, got)
			}
		}
	}
}
