package gateway

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestRingOrderDeterministicAndComplete: a preference order is a
// permutation of all shards, identical across rings built with the same
// parameters (placement must be stable across processes).
func TestRingOrderDeterministicAndComplete(t *testing.T) {
	const shards, vnodes = 4, 64
	a := newRing(shards, vnodes, 42)
	b := newRing(shards, vnodes, 42)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("dataset-%d@0", i)
		oa, ob := a.order(key), b.order(key)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %q: order differs across identical rings: %v vs %v", key, oa, ob)
		}
		if len(oa) != shards {
			t.Fatalf("key %q: order has %d entries, want %d", key, len(oa), shards)
		}
		seen := map[int]bool{}
		for _, s := range oa {
			if s < 0 || s >= shards || seen[s] {
				t.Fatalf("key %q: order %v is not a permutation of shards", key, oa)
			}
			seen[s] = true
		}
	}
}

// TestRingSpreadsKeys: with virtual nodes, a modest key population
// touches every shard (no shard is starved of ownership).
func TestRingSpreadsKeys(t *testing.T) {
	const shards = 4
	r := newRing(shards, 64, 7)
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[r.order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for s := 0; s < shards; s++ {
		if counts[s] == 0 {
			t.Fatalf("shard %d owns no keys out of 200: %v", s, counts)
		}
	}
}

// TestRingSeedChangesPlacement: different seeds re-roll placement for at
// least some keys (seeded placement is a real knob, not decorative).
func TestRingSeedChangesPlacement(t *testing.T) {
	a := newRing(4, 64, 1)
	b := newRing(4, 64, 2)
	moved := 0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.order(key)[0] != b.order(key)[0] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys at all")
	}
}

// TestRingVersionMovesKey: bumping the version in a dataset@version key
// may re-home the dataset — and whatever the new home is, it is stable.
func TestRingVersionStableWithinVersion(t *testing.T) {
	r := newRing(4, 64, 3)
	for v := 0; v < 5; v++ {
		key := fmt.Sprintf("cri1@%d", v)
		first := r.order(key)[0]
		for i := 0; i < 10; i++ {
			if got := r.order(key)[0]; got != first {
				t.Fatalf("key %q: home flapped %d -> %d", key, first, got)
			}
		}
	}
}

// ejectByProbes drives a gateway's shard to ejected via failed probes.
func ejectByProbes(t *testing.T, g *Gateway, fakes []*fakeShard, victim int) {
	t.Helper()
	fakes[victim].setDown(true)
	for i := 0; i < 3 && g.ShardState(victim) != ShardEjected; i++ {
		g.ProbeNow()
	}
	if got := g.ShardState(victim); got != ShardEjected {
		t.Fatalf("victim %d state %v after probe budget, want ejected", victim, got)
	}
}

// TestEjectionRedistributionDeterministic: ejecting a shard moves only
// that shard's keys — each to the next shard in its own preference order
// — while every surviving shard's keys keep their placement; two gateways
// with identical config and ejection history route identically; and
// rejoin restores the original placement exactly.
func TestEjectionRedistributionDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, EjectAfter: 1, RejoinProbes: 1, PassiveFailures: -1}
	build := func() (*Gateway, []*fakeShard) {
		insts, fakes := fakeFleet(4)
		return NewWithInstances(cfg, insts), fakes
	}
	g1, f1 := build()
	defer g1.Shutdown(context.Background())
	g2, f2 := build()
	defer g2.Shutdown(context.Background())

	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("ds-%d", i)
	}
	baseHome := map[string]int{}
	baseOrder := map[string][]int{}
	for _, key := range keys {
		order := g1.routableOrder(gatewayQuery(key))
		baseHome[key] = order[0]
		baseOrder[key] = order
	}

	victim := 2
	ejectByProbes(t, g1, f1, victim)
	ejectByProbes(t, g2, f2, victim)

	moved := 0
	for _, key := range keys {
		o1 := g1.routableOrder(gatewayQuery(key))
		o2 := g2.routableOrder(gatewayQuery(key))
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("key %q: identical gateways diverged after identical ejection history: %v vs %v", key, o1, o2)
		}
		if baseHome[key] != victim {
			// Surviving-shard keys never move.
			if o1[0] != baseHome[key] {
				t.Fatalf("key %q homed on surviving shard %d moved to %d", key, baseHome[key], o1[0])
			}
			continue
		}
		// The ejected shard's keys move to the next preference — nothing
		// random, nothing rebalanced wholesale.
		moved++
		if want := baseOrder[key][1]; o1[0] != want {
			t.Fatalf("key %q: ejected home %d should hand off to next preference %d, got %d", key, victim, want, o1[0])
		}
	}
	if moved == 0 {
		t.Fatal("no key homed on the victim; test covers nothing")
	}

	// Rejoin restores the original placement bit for bit.
	for _, pair := range []struct {
		g *Gateway
		f []*fakeShard
	}{{g1, f1}, {g2, f2}} {
		pair.f[victim].setDown(false)
		for i := 0; i < 3 && pair.g.ShardState(victim) != ShardHealthy; i++ {
			pair.g.ProbeNow()
		}
		if got := pair.g.ShardState(victim); got != ShardHealthy {
			t.Fatalf("victim state %v after rejoin probes, want healthy", got)
		}
	}
	for _, key := range keys {
		if got := g1.routableOrder(gatewayQuery(key)); !reflect.DeepEqual(got, baseOrder[key]) {
			t.Fatalf("key %q: rejoin did not restore original order %v, got %v", key, baseOrder[key], got)
		}
	}
}
