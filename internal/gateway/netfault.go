package gateway

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Wire-fault root causes. http.Client wraps transport errors in
// *url.Error, which unwraps, so errors.Is matches through the client.
var (
	// ErrNetReset is a connection reset before the request reached the
	// server: the query was never executed.
	ErrNetReset = errors.New("netfault: connection reset")
	// ErrNetDropped is a response lost after the server committed the
	// work: the query executed exactly once, but the caller cannot know —
	// the failure mode idempotent replay exists for.
	ErrNetDropped = errors.New("netfault: response dropped after commit")
	// ErrNetPartition is a request blackholed by a network partition.
	ErrNetPartition = errors.New("netfault: network partition")
)

// PartitionMode selects which paths a partition severs. Asymmetric modes
// model the nasty cases: a prober that thinks a shard is fine while
// clients cannot reach it, and the reverse.
type PartitionMode int

const (
	// PartitionNone: no partition.
	PartitionNone PartitionMode = iota
	// PartitionAll severs both the probe path and the data path.
	PartitionAll
	// PartitionData severs queries/stats/invalidations but lets health
	// probes through — the prober believes the shard is healthy while
	// every query fails. Passive failure detection is what catches this.
	PartitionData
	// PartitionProbe severs health probes but lets queries through —
	// active probing ejects a shard that is actually still serving.
	PartitionProbe
)

// NetFaultConfig parameterizes a NetFault. Rates are per-request
// probabilities in [0,1], drawn from a seeded deterministic stream: the
// multiset of fault decisions over N requests is fixed by the seed (the
// assignment to particular requests follows arrival order).
type NetFaultConfig struct {
	Seed uint64
	// ResetRate: connection reset before the request is sent (no
	// server-side effect).
	ResetRate float64
	// DropRate: POST /query responses dropped after the server committed
	// (the request executes; the reply is lost).
	DropRate float64
	// GarbleRate: successful POST /query response bodies truncated and
	// corrupted in flight.
	GarbleRate float64
	// LatencyRate / Latency: a latency spike of Latency before the
	// request proceeds (context-respecting).
	LatencyRate float64
	Latency     time.Duration
}

// NetFaultCounters reports what a NetFault actually injected.
type NetFaultCounters struct {
	Resets      uint64 `json:"resets"`
	Drops       uint64 `json:"drops"`
	Garbles     uint64 `json:"garbles"`
	Spikes      uint64 `json:"spikes"`
	Partitioned uint64 `json:"partitioned"`
}

// NetFault is a deterministic fault-injecting http.RoundTripper wrapped
// around a real transport: latency spikes, connection resets, responses
// dropped after the server committed, garbled JSON bodies, and
// asymmetric partitions that split the prober from the data path. The
// chaos storm and the remote bench stack it under a RemoteInstance's
// client so every wire pathology flows through exactly the retry/replay/
// lifecycle machinery production traffic would use.
type NetFault struct {
	inner http.RoundTripper
	cfg   NetFaultConfig

	seq       atomic.Uint64
	mu        sync.Mutex
	partition PartitionMode
	forceDrop int

	resets      atomic.Uint64
	drops       atomic.Uint64
	garbles     atomic.Uint64
	spikes      atomic.Uint64
	partitioned atomic.Uint64
}

// NewNetFault wraps a transport (nil: http.DefaultTransport's clone).
func NewNetFault(inner http.RoundTripper, cfg NetFaultConfig) *NetFault {
	if inner == nil {
		inner = http.DefaultTransport.(*http.Transport).Clone()
	}
	return &NetFault{inner: inner, cfg: cfg}
}

// SetPartition switches the partition mode (PartitionNone heals).
func (f *NetFault) SetPartition(m PartitionMode) {
	f.mu.Lock()
	f.partition = m
	f.mu.Unlock()
}

// Partition reads the current partition mode.
func (f *NetFault) Partition() PartitionMode {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partition
}

// ForceDropNext makes the next n POST /query responses drop after commit,
// regardless of rates — the deterministic hook for replay assertions.
func (f *NetFault) ForceDropNext(n int) {
	f.mu.Lock()
	f.forceDrop += n
	f.mu.Unlock()
}

func (f *NetFault) takeForceDrop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.forceDrop > 0 {
		f.forceDrop--
		return true
	}
	return false
}

// Counters snapshots the injected-fault counts.
func (f *NetFault) Counters() NetFaultCounters {
	return NetFaultCounters{
		Resets:      f.resets.Load(),
		Drops:       f.drops.Load(),
		Garbles:     f.garbles.Load(),
		Spikes:      f.spikes.Load(),
		Partitioned: f.partitioned.Load(),
	}
}

// isProbePath splits the wire into the prober's view (/healthz, /readyz)
// and the data path (everything else: queries, stats, invalidations,
// version catch-up).
func isProbePath(path string) bool {
	return path == "/healthz" || path == "/readyz"
}

// next draws the request's fault roll from the seeded SplitMix64 stream.
func (f *NetFault) next() float64 {
	x := f.cfg.Seed + 0x9e3779b97f4a7c15*f.seq.Add(1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// RoundTrip injects at most one fault per request, decided by the seeded
// stream (partition and ForceDropNext take precedence).
func (f *NetFault) RoundTrip(req *http.Request) (*http.Response, error) {
	probe := isProbePath(req.URL.Path)
	blocked := false
	switch f.Partition() {
	case PartitionAll:
		blocked = true
	case PartitionData:
		blocked = !probe
	case PartitionProbe:
		blocked = probe
	}
	if blocked {
		f.partitioned.Add(1)
		return nil, ErrNetPartition
	}
	isQuery := req.Method == http.MethodPost && req.URL.Path == "/query"
	if isQuery && f.takeForceDrop() {
		return f.dropAfterCommit(req)
	}
	roll := f.next()
	c := f.cfg
	switch {
	case roll < c.ResetRate:
		f.resets.Add(1)
		return nil, ErrNetReset
	case isQuery && roll < c.ResetRate+c.DropRate:
		return f.dropAfterCommit(req)
	case isQuery && roll < c.ResetRate+c.DropRate+c.GarbleRate:
		resp, err := f.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return f.garble(resp)
	case roll < c.ResetRate+c.DropRate+c.GarbleRate+c.LatencyRate && c.Latency > 0:
		f.spikes.Add(1)
		t := time.NewTimer(c.Latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	return f.inner.RoundTrip(req)
}

// dropAfterCommit lets the request reach the server — the plan executes,
// state commits — then loses the response on the way back.
func (f *NetFault) dropAfterCommit(req *http.Request) (*http.Response, error) {
	resp, err := f.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	f.drops.Add(1)
	return nil, ErrNetDropped
}

// garble truncates a successful response body at the midpoint and flips a
// byte, producing the torn JSON a half-closed connection yields. Error
// responses pass through untouched (their status already carries the
// taxonomy).
func (f *NetFault) garble(resp *http.Response) (*http.Response, error) {
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	f.garbles.Add(1)
	cut := body[:len(body)/2]
	if len(cut) > 0 {
		cut[len(cut)-1] ^= 0x5a
	}
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	resp.Header.Del("Content-Length")
	return resp, nil
}
