package gateway

import (
	"context"
	"fmt"
	"sync"
	"time"

	"remac/internal/resilience"
)

// ShardState is one shard's position in the gateway's membership state
// machine: healthy → suspect → ejected → rejoining → healthy. Healthy and
// suspect shards take traffic; ejected and rejoining shards are skipped in
// ring preference order (surviving shards keep their placement — only the
// dead shard's keys move, deterministically, to the next shard in each
// key's preference order).
type ShardState int

const (
	// ShardHealthy takes traffic and passes probes.
	ShardHealthy ShardState = iota
	// ShardSuspect failed its last probe(s) but has not yet exhausted the
	// ejection budget. It still takes traffic: a single missed probe is not
	// evidence enough to move keys.
	ShardSuspect
	// ShardEjected is out of the routing order. The supervisor respawns the
	// instance (when a Respawn hook is configured) or waits for it to come
	// back on its own.
	ShardEjected
	// ShardRejoining is live again but not yet readmitted: it must pass
	// probes and catch its dataset versions up to the gateway's broadcast
	// versions first, so a stale cache can never serve.
	ShardRejoining
)

// String names the state as it appears in stats, health payloads and audit
// events.
func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardSuspect:
		return "suspect"
	case ShardEjected:
		return "ejected"
	case ShardRejoining:
		return "rejoining"
	default:
		return "unknown"
	}
}

// takesTraffic reports whether a shard in this state stays in the ring
// preference order.
func (s ShardState) takesTraffic() bool {
	return s == ShardHealthy || s == ShardSuspect
}

// ShardLifecycle is one shard's lifecycle view in Stats and Health.
type ShardLifecycle struct {
	State string `json:"state"`
	// ProbeFailures is the current consecutive failed-probe count (resets
	// on a passed probe).
	ProbeFailures int `json:"probe_failures"`
	// Ejections / Respawns / Rejoins count this shard's lifetime
	// transitions through the cycle.
	Ejections uint64 `json:"ejections"`
	Respawns  uint64 `json:"respawns"`
	Rejoins   uint64 `json:"rejoins"`
}

// shardLife is one shard's mutable lifecycle record, guarded by
// lifecycle.mu.
type shardLife struct {
	state      ShardState
	probeFails int // consecutive failed probes
	probeOKs   int // consecutive passed probes while rejoining
	// passive is the consecutive-Internal-failure window: a breaker
	// configured so Window == MinSamples == PassiveFailures and
	// FailureThreshold == 1.0 opens exactly when that many consecutive
	// server-attributable failures are observed with no success between
	// them — the same mechanics the shard's own breaker uses, reused one
	// layer up as the gateway's passive failure detector.
	passive *resilience.Breaker

	ejections uint64
	respawns  uint64
	rejoins   uint64
}

// lifecycle drives the per-shard state machines: active probing (an
// injectable clock; a background prober only when ProbeInterval > 0),
// passive detection from query outcomes, ejection, respawn and
// catch-up-gated rejoin.
type lifecycle struct {
	g *Gateway

	mu sync.Mutex
	st []*shardLife

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // prober goroutine + async old-instance shutdowns
}

func newLifecycle(g *Gateway) *lifecycle {
	lc := &lifecycle{
		g:    g,
		st:   make([]*shardLife, len(g.ids)),
		stop: make(chan struct{}),
	}
	for i := range lc.st {
		lc.st[i] = &shardLife{state: ShardHealthy, passive: lc.newPassiveWindow()}
	}
	if g.cfg.ProbeInterval > 0 {
		lc.wg.Add(1)
		go lc.prober()
	}
	return lc
}

// newPassiveWindow builds the consecutive-failure breaker for one shard
// (nil when passive detection is disabled).
func (lc *lifecycle) newPassiveWindow() *resilience.Breaker {
	n := lc.g.cfg.PassiveFailures
	if n <= 0 {
		return nil
	}
	return resilience.NewBreaker(resilience.BreakerConfig{
		Window:           n,
		MinSamples:       n,
		FailureThreshold: 1.0,
		// The breaker must never half-open on its own: ejection is a
		// lifecycle transition, and only a probed catch-up readmits.
		Cooldown: 24 * time.Hour,
		Now:      lc.g.cfg.Clock,
	})
}

// prober is the background probe loop (started only when ProbeInterval is
// positive). ProbeNow drives the same rounds synchronously for tests and
// manual operation.
func (lc *lifecycle) prober() {
	defer lc.wg.Done()
	t := time.NewTicker(lc.g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-lc.stop:
			return
		case <-t.C:
			lc.probeRound()
		}
	}
}

// shutdown stops the prober and waits for it plus any in-flight async
// old-instance shutdowns.
func (lc *lifecycle) shutdown() {
	lc.stopOnce.Do(func() { close(lc.stop) })
	lc.wg.Wait()
}

// snapshotStates returns every shard's current state, in shard order.
func (lc *lifecycle) snapshotStates() []ShardState {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]ShardState, len(lc.st))
	for i, s := range lc.st {
		out[i] = s.state
	}
	return out
}

// view returns one shard's lifecycle view for stats.
func (lc *lifecycle) view(i int) ShardLifecycle {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	s := lc.st[i]
	return ShardLifecycle{
		State:         s.state.String(),
		ProbeFailures: s.probeFails,
		Ejections:     s.ejections,
		Respawns:      s.respawns,
		Rejoins:       s.rejoins,
	}
}

// observe is the passive detector: Do reports every shard attempt's
// outcome here. Only Internal-class failures (shard crashes, panics,
// abandoned shared producers) count against the window — overload,
// cancellation and client-caused errors never eject a shard. A success
// resets the window. When the window fills with consecutive failures the
// shard is ejected, with the triggering request id as evidence.
func (lc *lifecycle) observe(shard int, err error, requestID string) {
	if lc.g.cfg.PassiveFailures <= 0 {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	s := lc.st[shard]
	if !s.state.takesTraffic() {
		return
	}
	switch {
	case err == nil:
		s.passive.Record(true)
	case resilience.IsClass(err, resilience.Internal):
		s.passive.Record(false)
		if s.passive.State() == resilience.BreakerOpen {
			lc.ejectLocked(shard, "passive",
				fmt.Sprintf("%d consecutive internal-class failures", lc.g.cfg.PassiveFailures),
				requestID)
		}
	}
}

// ejectLocked moves a shard to ejected (from healthy or suspect), records
// the transition on the audit plane, and arms a fresh passive window for
// the eventual rejoin. Caller holds lc.mu.
func (lc *lifecycle) ejectLocked(shard int, reason, evidence, requestID string) {
	s := lc.st[shard]
	from := s.state
	s.state = ShardEjected
	s.probeFails = 0
	s.probeOKs = 0
	s.ejections++
	s.passive = lc.newPassiveWindow()
	lc.g.ejections.Add(1)
	lc.g.recordTransition(shard, from, ShardEjected, reason, evidence, requestID)
}

// probeResult is one shard probe's outcome.
type probeResult struct {
	live   bool
	detail string
}

// probe runs one shard's liveness probe with a timeout and panic
// isolation: a probe that hangs past ProbeTimeout or panics counts as a
// liveness failure, exactly like Healthz reporting not-OK. Readiness
// (Readyz) is deliberately not part of liveness — a shard with an open
// breaker or full queue is overloaded, not dead, and spill-over already
// handles that.
func (lc *lifecycle) probe(inst Instance) probeResult {
	ch := make(chan probeResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- probeResult{live: false, detail: fmt.Sprintf("probe panicked: %v", r)}
			}
		}()
		h := inst.Healthz()
		if !h.OK {
			ch <- probeResult{live: false, detail: "healthz not ok: " + h.Status}
			return
		}
		ch <- probeResult{live: true}
	}()
	t := time.NewTimer(lc.g.cfg.ProbeTimeout)
	defer t.Stop()
	select {
	case pr := <-ch:
		return pr
	case <-t.C:
		return probeResult{live: false, detail: fmt.Sprintf("probe timed out after %s", lc.g.cfg.ProbeTimeout)}
	case <-lc.stop:
		return probeResult{live: false, detail: "gateway shutting down"}
	}
}

// probeRound probes every shard once and applies the state machine. A
// no-op when active detection is disabled (EjectAfter < 0).
func (lc *lifecycle) probeRound() {
	if lc.g.cfg.EjectAfter <= 0 {
		return
	}
	for i := range lc.g.ids {
		pr := lc.probe(lc.g.instance(i))
		lc.apply(i, pr)
	}
}

// apply folds one probe outcome into shard i's state machine.
func (lc *lifecycle) apply(i int, pr probeResult) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	s := lc.st[i]
	switch s.state {
	case ShardHealthy, ShardSuspect:
		if pr.live {
			if s.state == ShardSuspect {
				s.state = ShardHealthy
				lc.g.recordTransition(i, ShardSuspect, ShardHealthy, "probe", "probe passed", "")
			}
			s.probeFails = 0
			return
		}
		s.probeFails++
		if s.probeFails >= lc.g.cfg.EjectAfter {
			lc.ejectLocked(i, "probe",
				fmt.Sprintf("%d consecutive failed probes; last: %s", s.probeFails, pr.detail), "")
			return
		}
		if s.state == ShardHealthy {
			s.state = ShardSuspect
			lc.g.recordTransition(i, ShardHealthy, ShardSuspect, "probe", pr.detail, "")
		}
	case ShardEjected:
		if pr.live {
			// The instance came back on its own (a hung shard unwedged, or an
			// operator revived it): begin the probation-and-catch-up rejoin.
			s.state = ShardRejoining
			s.probeOKs = 0
			lc.g.recordTransition(i, ShardEjected, ShardRejoining, "probe", "instance live again", "")
			return
		}
		lc.respawnLocked(i, s)
	case ShardRejoining:
		if !pr.live {
			s.state = ShardEjected
			s.probeOKs = 0
			lc.g.recordTransition(i, ShardRejoining, ShardEjected, "probe",
				"rejoining instance failed probe: "+pr.detail, "")
			return
		}
		// Catch-up gate: the shard must reach the gateway's broadcast
		// version for every invalidated dataset before it can take traffic
		// again — readmitting early would let intermediates cached under a
		// stale version serve. The catch-up and the final readmission run
		// under the broadcast lock so no invalidation can interleave between
		// "caught up" and "healthy".
		if !lc.g.catchUp(i, func() bool {
			s.probeOKs++
			if s.probeOKs < lc.g.cfg.RejoinProbes {
				return false
			}
			s.state = ShardHealthy
			s.probeFails = 0
			s.rejoins++
			s.passive = lc.newPassiveWindow()
			lc.g.rejoins.Add(1)
			lc.g.recordTransition(i, ShardRejoining, ShardHealthy, "rejoin",
				"dataset versions caught up to broadcast", "")
			return true
		}) {
			s.probeOKs = 0
		}
	}
}

// respawnLocked replaces a dead ejected instance with a fresh one from the
// Respawn hook (if configured) and moves the shard to rejoining. The old
// instance is shut down asynchronously — it may be wedged, and the probe
// loop must not block on it. Caller holds lc.mu.
func (lc *lifecycle) respawnLocked(i int, s *shardLife) {
	if lc.g.cfg.Respawn == nil {
		return
	}
	fresh := lc.safeRespawn(i)
	if fresh == nil {
		return
	}
	old := lc.g.swapInstance(i, fresh)
	s.state = ShardRejoining
	s.probeOKs = 0
	s.respawns++
	lc.g.respawns.Add(1)
	lc.g.recordTransition(i, ShardEjected, ShardRejoining, "respawn", "supervisor respawned instance", "")
	lc.wg.Add(1)
	go func() {
		defer lc.wg.Done()
		defer func() { recover() }() // a wedged instance may panic on Shutdown
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = old.Shutdown(ctx)
	}()
}

// safeRespawn calls the Respawn hook with panic isolation (a hook that
// panics leaves the shard ejected; the next round retries).
func (lc *lifecycle) safeRespawn(i int) (inst Instance) {
	defer func() {
		if r := recover(); r != nil {
			inst = nil
		}
	}()
	return lc.g.cfg.Respawn(i, lc.g.ids[i])
}
