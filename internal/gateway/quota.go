package gateway

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"remac/internal/resilience"
)

// ErrQuotaExceeded is the cause wrapped by Quota-class rejections; match
// it with errors.Is, or match the class sentinel resilience.ErrQuota.
var ErrQuotaExceeded = errors.New("gateway: tenant quota exceeded")

// TenantQuota is one tenant's admission budget, layered above each
// shard's circuit breaker: the breaker protects an instance from its
// aggregate load, the quota protects every other tenant from one noisy
// one. The zero value is unlimited.
type TenantQuota struct {
	// QPS is the sustained token-bucket refill rate (queries per second);
	// 0 means no rate limit.
	QPS float64
	// Burst is the bucket capacity; defaults to max(1, ceil(QPS)) when a
	// rate limit is set.
	Burst int
	// MaxConcurrent caps the tenant's in-flight queries across all shards;
	// 0 means no concurrency limit.
	MaxConcurrent int
}

// limited reports whether the quota constrains anything.
func (q TenantQuota) limited() bool { return q.QPS > 0 || q.MaxConcurrent > 0 }

func (q TenantQuota) withDefaults() TenantQuota {
	if q.QPS > 0 && q.Burst <= 0 {
		q.Burst = int(math.Ceil(q.QPS))
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	return q
}

// tenantBucket is one tenant's live admission state.
type tenantBucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// quotas is the per-tenant admission layer: a token bucket (QPS + burst)
// and a concurrent-query counter per tenant. Rejections are typed
// Quota-class QueryErrors carrying a Retry-After hint, which the HTTP
// front-ends map to 429.
type quotas struct {
	mu  sync.Mutex
	cfg map[string]TenantQuota
	def TenantQuota
	st  map[string]*tenantBucket
	now func() time.Time
}

func newQuotas(perTenant map[string]TenantQuota, def TenantQuota, now func() time.Time) *quotas {
	if now == nil {
		now = time.Now
	}
	cfg := make(map[string]TenantQuota, len(perTenant))
	for t, q := range perTenant {
		cfg[t] = q.withDefaults()
	}
	return &quotas{cfg: cfg, def: def.withDefaults(), st: map[string]*tenantBucket{}, now: now}
}

// quotaFor resolves the quota applying to a tenant: its own entry if
// configured, else the default.
func (qs *quotas) quotaFor(tenant string) TenantQuota {
	if q, ok := qs.cfg[tenant]; ok {
		return q
	}
	return qs.def
}

// admit charges one query against tenant's quota. On success it returns a
// release func that must be called exactly once when the query settles
// (it frees the concurrency slot; the consumed token is gone for good).
// On rejection it returns a Quota-class *resilience.QueryError whose
// RetryAfter hints when the bucket will next hold a token.
func (qs *quotas) admit(tenant string) (release func(), err error) {
	q := qs.quotaFor(tenant)
	if !q.limited() {
		return func() {}, nil
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	b, ok := qs.st[tenant]
	now := qs.now()
	if !ok {
		b = &tenantBucket{tokens: float64(q.Burst), last: now}
		qs.st[tenant] = b
	}
	if q.QPS > 0 {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(float64(q.Burst), b.tokens+elapsed*q.QPS)
			b.last = now
		}
	}
	if q.MaxConcurrent > 0 && b.inflight >= q.MaxConcurrent {
		// The slot frees when some in-flight query settles; there is no
		// schedule to read a precise hint off, so hint one typical query.
		return nil, quotaErr(tenant, "concurrent-query quota reached", 100*time.Millisecond)
	}
	if q.QPS > 0 {
		if b.tokens < 1 {
			wait := time.Duration((1 - b.tokens) / q.QPS * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			return nil, quotaErr(tenant, "rate quota exhausted", wait)
		}
		b.tokens--
	}
	b.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			qs.mu.Lock()
			b.inflight--
			qs.mu.Unlock()
		})
	}, nil
}

// quotaErr builds the typed rejection: Quota class, admission stage, a
// cause wrapping ErrQuotaExceeded, and the Retry-After hint.
func quotaErr(tenant, reason string, retryAfter time.Duration) error {
	return &resilience.QueryError{
		Class:      resilience.Quota,
		Stage:      "quota",
		Err:        fmt.Errorf("tenant %q: %s: %w", tenant, reason, ErrQuotaExceeded),
		RetryAfter: retryAfter,
	}
}
